package powergraph

// The benchmark harness regenerates every experiment in EXPERIMENTS.md
// (one bench per theorem/figure of the paper; see DESIGN.md §4 for the
// index). Custom metrics attach the distributed cost measures that wall
// time does not capture: simulated rounds, delivered bits, cut traffic,
// and approximation ratios.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"powergraph/internal/verify"
)

// E1 (Theorem 1): CONGEST (1+ε)-approximate G²-MVC — rounds scale as
// O(n/ε), ratio stays within 1+ε.
func BenchmarkE1MVCCongest(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		for _, eps := range []float64{1, 0.5, 0.25} {
			b.Run(fmt.Sprintf("n=%d/eps=%.2f", n, eps), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				g := ConnectedGNP(n, 8/float64(n), rng)
				sq := g.Square()
				// Exact reference is affordable at n ≤ 64; beyond that the
				// matching bound documents feasibility-side quality only.
				var ref int64
				exactRef := n <= 64
				if exactRef {
					ref = Cost(sq, ExactVC(sq))
				} else {
					ref = verify.MatchingLowerBound(sq)
				}
				var rounds, bits int64
				var ratio float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := MVCCongest(g, eps, &Options{Seed: int64(i)})
					if err != nil {
						b.Fatal(err)
					}
					rounds += int64(res.Stats.Rounds)
					bits += res.Stats.TotalBits
					ratio = RatioOf(Cost(sq, res.Solution), ref).Value
					if exactRef && ratio > 1+eps+1e-9 {
						b.Fatalf("ratio %f exceeds 1+ε", ratio)
					}
				}
				b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
				b.ReportMetric(float64(bits)/float64(b.N), "msgbits/op")
				if exactRef {
					b.ReportMetric(ratio, "ratio-vs-opt")
				} else {
					b.ReportMetric(ratio, "ratio-vs-matchingLB")
				}
			})
		}
	}
}

// E2 (Theorem 7): weighted variant.
func BenchmarkE2MWVCCongest(b *testing.B) {
	for _, n := range []int{32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			g := WithRandomWeights(ConnectedGNP(n, 8/float64(n), rng), 50, rng)
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := MWVCCongest(g, 0.5, &Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(res.Stats.Rounds)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// E3 (Corollary 10 / Theorem 11): CONGESTED CLIQUE variants — deterministic
// O(εn + 1/ε) vs randomized O(log n + 1/ε) rounds.
func BenchmarkE3Clique(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		for _, mode := range []string{"det", "rand"} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				rng := rand.New(rand.NewSource(3))
				g := ConnectedGNP(n, 8/float64(n), rng)
				var rounds int64
				for i := 0; i < b.N; i++ {
					var res *Result
					var err error
					if mode == "det" {
						res, err = MVCCliqueDeterministic(g, 0.5, &Options{Seed: int64(i)})
					} else {
						res, err = MVCCliqueRandomized(g, 0.5, &Options{Seed: int64(i)})
					}
					if err != nil {
						b.Fatal(err)
					}
					rounds += int64(res.Stats.Rounds)
				}
				b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			})
		}
	}
}

// E4 (Theorem 12): centralized 5/3-approximation vs Gavril's 2-approx vs
// the exact optimum on squares.
func BenchmarkE4Centralized53(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := ConnectedGNP(24, 0.15, rng)
	sq := g.Square()
	opt := Cost(sq, ExactVC(sq))
	var r53, r2 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := FiveThirdsSquareMVC(g)
		gav := Gavril2Approx(sq)
		r53 = RatioOf(Cost(sq, res.Cover), opt).Value
		r2 = RatioOf(Cost(sq, gav), opt).Value
	}
	b.ReportMetric(r53, "ratio-5/3alg")
	b.ReportMetric(r2, "ratio-gavril")
}

// E5 (Lemma 6): the all-vertices solution on Gʳ.
func BenchmarkE5TrivialPower(b *testing.B) {
	for _, r := range []int{2, 3, 4, 6} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			g := ConnectedGNP(20, 0.12, rng)
			gr := g.Power(r)
			opt := Cost(gr, ExactVC(gr))
			var ratio float64
			for i := 0; i < b.N; i++ {
				all := AllVerticesPowerMVC(g)
				ratio = RatioOf(Cost(gr, all), opt).Value
			}
			b.ReportMetric(ratio, "ratio")
			b.ReportMetric(Lemma6Bound(r), "lemma6-bound")
		})
	}
}

// E6 (Theorem 20, Figures 1–2): weighted gadget family — MWVC(H²) must
// equal MVC(G), flipping with DISJ.
func BenchmarkE6WeightedGadget(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < b.N; i++ {
		x, y := RandomIntersectingPair(4, rng)
		w, err := BuildWeightedMVCGadget(x, y)
		if err != nil {
			b.Fatal(err)
		}
		h2 := w.H.Square()
		if Cost(h2, ExactVC(h2)) != Cost(w.Base.G, ExactVC(w.Base.G)) {
			b.Fatal("Lemma 21 equality violated")
		}
	}
}

// E7 (Theorem 22, Figure 3): unweighted gadget family with its 2·#gadgets
// offset, plus the logarithmic cut.
func BenchmarkE7UnweightedGadget(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var cut float64
	for i := 0; i < b.N; i++ {
		x, y := RandomIntersectingPair(2, rng)
		u, err := BuildUnweightedMVCGadget(x, y)
		if err != nil {
			b.Fatal(err)
		}
		h2 := u.H.Square()
		want := Cost(u.Base.G, ExactVC(u.Base.G)) + 2*int64(u.GadgetCount())
		if Cost(h2, ExactVC(h2)) != want {
			b.Fatal("Lemma 24 equality violated")
		}
		cut = float64(u.Base.CutSize())
	}
	b.ReportMetric(cut, "cut-edges")
}

// E8 (Theorem 31, Figures 4–5): MDS gadget family via the verified
// normal-form reduction.
func BenchmarkE8MDSGadget(b *testing.B) {
	for _, k := range []int{2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			var vertices float64
			for i := 0; i < b.N; i++ {
				x, y := RandomIntersectingPair(k, rng)
				m, err := BuildMDSGadget(x, y)
				if err != nil {
					b.Fatal(err)
				}
				structural := m.StructuralOptimum()
				base := int(Cost(m.BaseFamily.G, ExactDS(m.BaseFamily.G)))
				if structural != base+m.GadgetCount() {
					b.Fatal("Lemma 34 equality violated")
				}
				vertices = float64(m.H.N())
			}
			b.ReportMetric(vertices, "H-vertices")
		})
	}
}

// E9 (Theorems 35/41, Figures 6–7): set-gadget gap 6 vs 7 (weighted) and
// 8 vs 9 (unweighted) on exact optima.
func BenchmarkE9SetGadgetGap(b *testing.B) {
	for _, weighted := range []bool{true, false} {
		name := "weighted"
		if !weighted {
			name = "unweighted"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			f := CubeFamily(3)
			for i := 0; i < b.N; i++ {
				intersecting := i%2 == 0
				var x, y DisjMatrix
				if intersecting {
					x, y = RandomIntersectingPair(3, rng)
				} else {
					x, y = RandomDisjointPair(3, rng)
				}
				g, err := BuildSetGadgetMDS(x, y, f, weighted, 9)
				if err != nil {
					b.Fatal(err)
				}
				h2 := g.H.Square()
				opt := Cost(h2, ExactDS(h2))
				if intersecting && opt > g.GapLow() {
					b.Fatal("gap-low violated")
				}
				if !intersecting && opt <= g.GapLow() {
					b.Fatal("gap-high violated")
				}
			}
		})
	}
}

// E10 (Theorem 28): randomized G²-MDS — polylog rounds, O(log Δ) ratio.
func BenchmarkE10MDSCongest(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(10))
			g := ConnectedGNP(n, 8/float64(n), rng)
			sq := g.Square()
			greedy := Cost(sq, GreedyMDS(sq))
			var rounds int64
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := MDSCongest(g, &MDSOptions{Options: Options{Seed: int64(i)}})
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(res.Stats.Rounds)
				ratio = RatioOf(Cost(sq, res.Solution), greedy).Value
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(ratio, "ratio-vs-greedy")
		})
	}
}

// E11 (Lemma 29/30): estimator accuracy vs repetition count.
func BenchmarkE11Estimator(b *testing.B) {
	for _, r := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			const k = 100
			var errSum float64
			var trials int
			for i := 0; i < b.N; i++ {
				est := estimateCardinality(k, r, rng)
				errSum += math.Abs(est-k) / k
				trials++
			}
			b.ReportMetric(errSum/float64(trials), "mean-rel-err")
		})
	}
}

// E12 (Theorem 26): the conditional reduction pipeline G → H → (1+ε)
// G²-MVC → (1+δ)-approximate cover of G.
func BenchmarkE12ConditionalReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	g := ConnectedGNP(12, 0.25, rng)
	r := BuildDanglingPathReduction(g)
	optG := Cost(g, ExactVC(g))
	delta := 0.5
	eps := r.ReductionEpsilon(delta, verify.MatchingLowerBound(g))
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := MVCCongest(r.H, eps, &Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		proj := r.ProjectCover(res.Solution)
		if ok, _ := IsVertexCover(g, proj); !ok {
			b.Fatal("projected cover infeasible")
		}
		ratio = RatioOf(Cost(g, proj), optG).Value
		if ratio > 1+delta+1e-9 {
			b.Fatalf("ratio %f exceeds 1+δ", ratio)
		}
	}
	b.ReportMetric(ratio, "projected-ratio")
}

// E13 (Theorems 44/45): centralized reductions.
func BenchmarkE13CentralizedReductions(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < b.N; i++ {
		g := GNP(8, 0.4, rng)
		if g.M() == 0 {
			continue
		}
		r := BuildDanglingPathReduction(g)
		h2 := r.H.Square()
		if Cost(h2, ExactVC(h2)) != Cost(g, ExactVC(g))+2*int64(g.M()) {
			b.Fatal("Theorem 44 equality violated")
		}
		mr, err := BuildMergedPathReduction(g)
		if err != nil {
			b.Fatal(err)
		}
		mh2 := mr.H.Square()
		if Cost(mh2, ExactDS(mh2)) != Cost(g, ExactDS(g))+1 {
			b.Fatal("Theorem 45 equality violated")
		}
	}
}

// E14 (Theorem 19 / Lemma 25): cut traffic across the Alice/Bob partition
// of the gadget family, approximate algorithm vs the near-exact regime,
// and the Lemma 25 protocol's O(log n) bits.
func BenchmarkE14CutTraffic(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	x, y := RandomIntersectingPair(2, rng)
	u, err := BuildUnweightedMVCGadget(x, y)
	if err != nil {
		b.Fatal(err)
	}
	for _, eps := range []float64{1, 0.02} {
		b.Run(fmt.Sprintf("alg1-eps=%.2f", eps), func(b *testing.B) {
			var cutBits int64
			for i := 0; i < b.N; i++ {
				res, err := MVCCongest(u.H, eps, &Options{Seed: int64(i), CutA: u.Alice})
				if err != nil {
					b.Fatal(err)
				}
				cutBits = res.Stats.CutBits
			}
			b.ReportMetric(float64(cutBits), "cut-bits")
		})
	}
	b.Run("lemma25", func(b *testing.B) {
		var bits int64
		for i := 0; i < b.N; i++ {
			cover, tr := Lemma25Cover(u.H, u.Alice)
			if ok, _ := IsSquareVertexCover(u.H, cover); !ok {
				b.Fatal("Lemma 25 cover infeasible")
			}
			bits = tr.Total()
		}
		b.ReportMetric(float64(bits), "cut-bits")
	})
}

// Ablation: the exact VC solver's dominance reduction makes path squares
// polynomial — scaling check.
func BenchmarkAblationExactVCOnSquares(b *testing.B) {
	for _, n := range []int{40, 80, 160} {
		b.Run(fmt.Sprintf("pathsq-n=%d", n), func(b *testing.B) {
			sq := Path(n).Square()
			for i := 0; i < b.N; i++ {
				if s := ExactVC(sq); s.Empty() {
					b.Fatal("empty cover")
				}
			}
		})
	}
}

// Ablation: estimator sample factor vs MDS solution quality.
func BenchmarkAblationMDSSampleFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	g := ConnectedGNP(24, 0.25, rng)
	sq := g.Square()
	opt := Cost(sq, ExactDS(sq))
	for _, sf := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("samples=%dlogn", sf), func(b *testing.B) {
			var ratio float64
			var rounds int64
			for i := 0; i < b.N; i++ {
				res, err := MDSCongest(g, &MDSOptions{
					Options:      Options{Seed: int64(i)},
					SampleFactor: sf,
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = RatioOf(Cost(sq, res.Solution), opt).Value
				rounds += int64(res.Stats.Rounds)
			}
			b.ReportMetric(ratio, "ratio")
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// Ablation: Phase I symmetry breaking in CONGEST — deterministic 2-hop
// max-ID (Theorem 1) vs randomized voting (Section 3.3). The voting
// variant retires heavy neighborhoods in O(log n) iterations; the overall
// rounds stay comparable because Phase II dominates (the paper's remark).
func BenchmarkAblationPhase1(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	g := ConnectedGNP(96, 0.25, rng)
	for _, mode := range []string{"deterministic", "voting"} {
		b.Run(mode, func(b *testing.B) {
			var rounds, phase1 int64
			for i := 0; i < b.N; i++ {
				var res *Result
				var err error
				if mode == "deterministic" {
					res, err = MVCCongest(g, 0.5, &Options{Seed: int64(i)})
				} else {
					res, err = MVCCongestRandomized(g, 0.5, &Options{Seed: int64(i)})
				}
				if err != nil {
					b.Fatal(err)
				}
				if ok, _ := IsSquareVertexCover(g, res.Solution); !ok {
					b.Fatal("infeasible")
				}
				rounds += int64(res.Stats.Rounds)
				phase1 += int64(res.PhaseISize)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(phase1)/float64(b.N), "phaseI-size")
		})
	}
}

// Ablation: simulator engine throughput (barrier + delivery cost per
// node-round).
func BenchmarkAblationEngineThroughput(b *testing.B) {
	g := Grid(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := MVCCongest(g, 1, &Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Rounds == 0 {
			b.Fatal("no rounds")
		}
	}
}

// estimateCardinality re-runs the Lemma 29 estimator centrally (the
// distributed version is exercised by E10).
func estimateCardinality(k, r int, rng *rand.Rand) float64 {
	minima := make([]float64, r)
	for j := range minima {
		m := math.Inf(1)
		for i := 0; i < k; i++ {
			if w := rng.ExpFloat64(); w < m {
				m = w
			}
		}
		minima[j] = m
	}
	var sum float64
	for _, w := range minima {
		sum += w
	}
	return float64(r) / sum
}
