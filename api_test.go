package powergraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestFacadeQuickstartFlow mirrors the README quick start.
func TestFacadeQuickstartFlow(t *testing.T) {
	g := ConnectedGNP(48, 0.1, rand.New(rand.NewSource(1)))
	res, err := MVCCongest(g, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := IsSquareVertexCover(g, res.Solution); !ok {
		t.Fatalf("uncovered pair %v", w)
	}
	if res.Stats.Rounds == 0 || res.Stats.TotalBits == 0 {
		t.Fatal("no cost recorded")
	}
}

func TestFacadeBuilderAndIO(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.SetWeight(3, 9)
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 4 || g2.M() != 3 || g2.Weight(3) != 9 {
		t.Fatal("round trip mangled graph")
	}

	s := NewVertexSet(4)
	s.Add(1)
	s.Add(3)
	if ok, _ := IsVertexCover(g, s); !ok {
		t.Fatal("cover check failed")
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gens := []*Graph{
		Path(5), Cycle(5), Complete(5), Star(5), Grid(2, 3),
		Caterpillar(3, 2), RandomTree(8, rng), GNP(8, 0.5, rng),
		ConnectedGNP(8, 0.2, rng), UnitDisk(8, 0.5, rng),
		ConnectedUnitDisk(8, 0.4, rng),
	}
	for i, g := range gens {
		if g.N() == 0 {
			t.Fatalf("generator %d produced empty graph", i)
		}
	}
	w := WithRandomWeights(Path(5), 10, rng)
	if !w.Weighted() {
		t.Fatal("weights missing")
	}
}

func TestFacadeAllMVCAlgorithmsAgreeOnFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ConnectedGNP(24, 0.2, rng)
	sq := g.Square()
	opt := Cost(sq, ExactVC(sq))

	type run struct {
		name  string
		f     func() (*Result, error)
		bound float64
	}
	runs := []run{
		{"congest", func() (*Result, error) { return MVCCongest(g, 0.5, nil) }, 1.5},
		{"clique-det", func() (*Result, error) { return MVCCliqueDeterministic(g, 0.5, nil) }, 1.5},
		{"clique-rand", func() (*Result, error) { return MVCCliqueRandomized(g, 0.5, nil) }, 1.5},
		{"cor17", func() (*Result, error) { return MVCCongest53(g, nil) }, 5.0 / 3},
	}
	for _, r := range runs {
		res, err := r.f()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if ok, w := IsSquareVertexCover(g, res.Solution); !ok {
			t.Fatalf("%s: uncovered %v", r.name, w)
		}
		ratio := RatioOf(Cost(sq, res.Solution), opt).Value
		if ratio > r.bound+1e-9 {
			t.Fatalf("%s: ratio %.4f exceeds %.4f", r.name, ratio, r.bound)
		}
	}
}

func TestFacadeWeightedRun(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := WithRandomWeights(ConnectedGNP(16, 0.2, rng), 20, rng)
	res, err := MWVCCongest(g, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	sq := g.Square()
	opt := Cost(sq, ExactVC(sq))
	if got := Cost(sq, res.Solution); float64(got) > 1.5*float64(opt)+1e-9 {
		t.Fatalf("weighted ratio %d/%d", got, opt)
	}
}

func TestFacadeMDSRun(t *testing.T) {
	g := Grid(4, 4)
	res, err := MDSCongest(g, &MDSOptions{Options: Options{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := IsSquareDominatingSet(g, res.Solution); !ok {
		t.Fatalf("undominated %d", v)
	}
	greedy := GreedyMDS(g.Square())
	if ok, _ := IsDominatingSet(g.Square(), greedy); !ok {
		t.Fatal("greedy infeasible")
	}
}

func TestFacadeCentralized(t *testing.T) {
	g := Caterpillar(5, 3)
	sq := g.Square()
	ft := FiveThirdsSquareMVC(g)
	if ok, _ := IsVertexCover(sq, ft.Cover); !ok {
		t.Fatal("5/3 infeasible")
	}
	gav := Gavril2Approx(sq)
	if ok, _ := IsVertexCover(sq, gav); !ok {
		t.Fatal("Gavril infeasible")
	}
	all := AllVerticesPowerMVC(g)
	if all.Count() != g.N() {
		t.Fatal("all-vertices wrong")
	}
	if Lemma6Bound(2) != 2 {
		t.Fatal("bound wrong")
	}
}

func TestFacadeExactBounded(t *testing.T) {
	// Odd cycles are triangle-free with no degree-1 vertices, so no
	// reduction applies and the solver must branch — tripping a 1-node
	// budget. (Cliques, by contrast, collapse entirely under the dominance
	// reduction without any branching.)
	if _, err := ExactVCBounded(Cycle(9), 1); err == nil {
		t.Fatal("expected budget error")
	}
	// A spider (center with three 2-paths) makes greedy MDS suboptimal
	// (greedy takes the center, 4 total; optimal takes the three middles),
	// so the bounded search must branch and trip a 1-node budget.
	sb := NewBuilder(7)
	for i := 0; i < 3; i++ {
		sb.MustAddEdge(0, 1+2*i)     // center – middle
		sb.MustAddEdge(1+2*i, 2+2*i) // middle – leaf
	}
	spider := sb.Build()
	if _, err := ExactDSBounded(spider, 1); err == nil {
		t.Fatal("expected budget error")
	}
	if s := ExactDS(spider); Cost(spider, s) != 3 {
		t.Fatalf("spider MDS = %d, want 3", Cost(spider, s))
	}
	s, err := ExactVCBounded(Path(6), 0)
	if err != nil || Cost(Path(6), s) != 3 { // MVC(P_n) = ⌊n/2⌋
		t.Fatalf("P6 MVC: %v %v", s, err)
	}
}

func TestFacadeLowerBoundFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := RandomIntersectingPair(2, rng)
	if Disj(x.Bits, y.Bits) {
		t.Fatal("intersecting pair is disjoint")
	}

	c, err := BuildCKP17MVC(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if Cost(c.G, ExactVC(c.G)) != c.CoverTarget() {
		t.Fatal("CKP17 predicate broken via facade")
	}

	if _, err := BuildWeightedMVCGadget(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildUnweightedMVCGadget(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildBCD19MDS(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildMDSGadget(x, y); err != nil {
		t.Fatal(err)
	}

	f := CubeFamily(2)
	if _, err := BuildSetGadgetMDS(x, y, f, true, 9); err != nil {
		t.Fatal(err)
	}

	r := BuildDanglingPathReduction(Path(4))
	if r.H.N() != 4+3*3 {
		t.Fatal("dangling reduction size")
	}
	mr, err := BuildMergedPathReduction(Path(4))
	if err != nil || mr.H.N() != 4+2*3+3 {
		t.Fatalf("merged reduction: %v", err)
	}
}

func TestFacadeTwoParty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ConnectedGNP(12, 0.3, rng)
	alice := NewVertexSet(12)
	for v := 0; v < 6; v++ {
		alice.Add(v)
	}
	cover, tr := Lemma25Cover(g, alice)
	if ok, _ := IsSquareVertexCover(g, cover); !ok {
		t.Fatal("Lemma 25 cover infeasible")
	}
	if tr.Total() <= 0 || tr.Total() > 32 {
		t.Fatalf("transcript %d bits", tr.Total())
	}
	if Theorem19RoundLB(1<<20, 10, 1024) <= 0 {
		t.Fatal("LB arithmetic broken")
	}
}

// TestIntegrationDistributedOnGadgetFamilies runs the distributed
// algorithms on the lower-bound graphs themselves — the families are
// legitimate connected CONGEST inputs, closing the loop between the
// upper-bound and lower-bound halves of the paper.
func TestIntegrationDistributedOnGadgetFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := RandomIntersectingPair(2, rng)

	// Algorithm 1 on the Figure 3 (unweighted MVC) family.
	u, err := BuildUnweightedMVCGadget(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !u.H.Connected() {
		t.Fatal("family graph disconnected")
	}
	res, err := MVCCongest(u.H, 0.5, &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := IsSquareVertexCover(u.H, res.Solution); !ok {
		t.Fatalf("uncovered %v", w)
	}
	sq := u.H.Square()
	opt := Cost(sq, ExactVC(sq))
	if got := Cost(sq, res.Solution); float64(got) > 1.5*float64(opt)+1e-9 {
		t.Fatalf("ratio %d/%d exceeds 1.5 on gadget family", got, opt)
	}

	// The weighted algorithm on the Figure 2 (weighted) family — its
	// zero-weight path vertices exercise the Section 3.2 WLOG handling.
	w, err := BuildWeightedMVCGadget(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := MWVCCongest(w.H, 0.5, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, e := IsSquareVertexCover(w.H, wres.Solution); !ok {
		t.Fatalf("weighted run uncovered %v", e)
	}
	wsq := w.H.Square()
	wopt := Cost(wsq, ExactVC(wsq))
	if got := Cost(wsq, wres.Solution); float64(got) > 1.5*float64(wopt)+1e-9 {
		t.Fatalf("weighted ratio %d/%d on gadget family", got, wopt)
	}

	// MDS simulation on the Figure 4 base family.
	c, err := BuildBCD19MDS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := MDSCongest(c.G, &MDSOptions{Options: Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := IsSquareDominatingSet(c.G, mres.Solution); !ok {
		t.Fatalf("undominated %d", v)
	}
}

// TestIntegrationCutInstrumentation runs Algorithm 1 with cut accounting
// on a partitioned family and checks the cut totals are consistent.
func TestIntegrationCutInstrumentation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := RandomDisjointPair(2, rng)
	u, err := BuildUnweightedMVCGadget(x, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MVCCongest(u.H, 1, &Options{Seed: 1, CutA: u.Alice})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CutBits <= 0 || res.Stats.CutBits > res.Stats.TotalBits {
		t.Fatalf("cut accounting inconsistent: %d of %d", res.Stats.CutBits, res.Stats.TotalBits)
	}
	if res.Stats.CutMessages <= 0 || res.Stats.CutMessages > res.Stats.Messages {
		t.Fatal("cut message accounting inconsistent")
	}
}
