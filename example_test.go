package powergraph_test

import (
	"fmt"
	"math/rand"

	"powergraph"
)

// The flagship algorithm: a deterministic (1+ε)-approximate minimum vertex
// cover of G², computed over G in the CONGEST model (Theorem 1).
func ExampleMVCCongest() {
	g := powergraph.Caterpillar(4, 3) // deterministic 16-vertex input
	res, err := powergraph.MVCCongest(g, 0.5, &powergraph.Options{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	ok, _ := powergraph.IsSquareVertexCover(g, res.Solution)
	sq := g.Square()
	opt := powergraph.Cost(sq, powergraph.ExactVC(sq))
	fmt.Printf("feasible=%v within-guarantee=%v\n",
		ok, float64(res.Solution.Count()) <= 1.5*float64(opt))
	// Output: feasible=true within-guarantee=true
}

// The square of a graph connects every pair at distance ≤ 2; a star's
// square is a clique.
func ExampleGraph_Square() {
	star := powergraph.Star(5)
	sq := star.Square()
	fmt.Printf("star edges=%d square edges=%d\n", star.M(), sq.M())
	// Output: star edges=4 square edges=10
}

// Lemma 6: taking every vertex is already a 2-approximation for MVC on G²,
// with zero communication.
func ExampleLemma6Bound() {
	fmt.Printf("r=2: %.2f  r=4: %.2f  r=6: %.2f\n",
		powergraph.Lemma6Bound(2), powergraph.Lemma6Bound(4), powergraph.Lemma6Bound(6))
	// Output: r=2: 2.00  r=4: 1.50  r=6: 1.33
}

// The centralized Algorithm 2 (Theorem 12) gives a 5/3-approximation for
// MVC on squares — beating the factor-2 barrier that is UGC-hard on
// general graphs.
func ExampleFiveThirdsSquareMVC() {
	g := powergraph.Path(9)
	res := powergraph.FiveThirdsSquareMVC(g)
	sq := g.Square()
	ok, _ := powergraph.IsVertexCover(sq, res.Cover)
	opt := powergraph.Cost(sq, powergraph.ExactVC(sq))
	fmt.Printf("feasible=%v ratio-ok=%v\n",
		ok, float64(res.Cover.Count()) <= 5.0/3.0*float64(opt))
	// Output: feasible=true ratio-ok=true
}

// The lower-bound families encode two-party set disjointness: the optimum
// flips across the predicate threshold exactly with DISJ(x, y).
func ExampleBuildCKP17MVC() {
	x, y := powergraph.NewDisjMatrix(2), powergraph.NewDisjMatrix(2)
	x.Set(1, 1, true)
	y.Set(1, 1, true) // intersecting ⇒ DISJ = false ⇒ MVC = W
	c, err := powergraph.BuildCKP17MVC(x, y)
	if err != nil {
		fmt.Println(err)
		return
	}
	opt := powergraph.Cost(c.G, powergraph.ExactVC(c.G))
	fmt.Printf("DISJ=%v MVC=%d W=%d\n", powergraph.Disj(x.Bits, y.Bits), opt, c.CoverTarget())
	// Output: DISJ=false MVC=8 W=8
}

// Theorem 45's reduction: merging all dangling gadgets shifts the MDS
// optimum by exactly one.
func ExampleBuildMergedPathReduction() {
	g := powergraph.Cycle(6)
	r, err := powergraph.BuildMergedPathReduction(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	h2 := r.H.Square()
	fmt.Printf("MDS(G)=%d MDS(H²)=%d\n",
		powergraph.Cost(g, powergraph.ExactDS(g)),
		powergraph.Cost(h2, powergraph.ExactDS(h2)))
	// Output: MDS(G)=2 MDS(H²)=3
}

// Randomized voting in the CONGESTED CLIQUE (Theorem 11) needs only
// O(log n + 1/ε) rounds — far fewer than the same computation in CONGEST.
func ExampleMVCCliqueRandomized() {
	rng := rand.New(rand.NewSource(4))
	g := powergraph.ConnectedGNP(64, 0.15, rng)
	clique, _ := powergraph.MVCCliqueRandomized(g, 0.5, &powergraph.Options{Seed: 1})
	congest, _ := powergraph.MVCCongest(g, 0.5, &powergraph.Options{Seed: 1})
	fmt.Printf("clique rounds < congest rounds: %v\n",
		clique.Stats.Rounds < congest.Stats.Rounds)
	// Output: clique rounds < congest rounds: true
}
