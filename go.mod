module powergraph

go 1.24
