// Quickstart: build a random communication network, run the paper's
// flagship algorithm — the deterministic (1+ε)-approximation for minimum
// vertex cover on G² in the CONGEST model (Theorem 1) — and verify the
// result against the exact optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powergraph"
)

func main() {
	// A connected random network of 48 nodes. The algorithms communicate
	// over G but solve the problem on G² (nodes at distance ≤ 2).
	rng := rand.New(rand.NewSource(42))
	g := powergraph.ConnectedGNP(48, 0.1, rng)
	fmt.Printf("network: %d nodes, %d links, max degree %d, diameter %d\n",
		g.N(), g.M(), g.MaxDegree(), g.Diameter())
	sq := g.Square()
	fmt.Printf("square:  %d conflict pairs (vs %d links in G)\n", sq.M(), g.M())

	// Run Algorithm 1 with ε = 1/4: every node ends up knowing whether it
	// is in the cover; the simulator accounts every round and message bit.
	const eps = 0.25
	res, err := powergraph.MVCCongest(g, eps, &powergraph.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlgorithm 1 (Theorem 1), ε = %.2f:\n", eps)
	fmt.Printf("  rounds:        %d (O(n/ε) guarantee)\n", res.Stats.Rounds)
	fmt.Printf("  messages:      %d (%d bits total, %d-bit budget/message)\n",
		res.Stats.Messages, res.Stats.TotalBits, res.Stats.Bandwidth)
	fmt.Printf("  cover size:    %d (%d committed by Phase I)\n",
		res.Solution.Count(), res.PhaseISize)

	// Verify: the solution must cover every edge of G²…
	if ok, witness := powergraph.IsSquareVertexCover(g, res.Solution); !ok {
		log.Fatalf("infeasible! uncovered pair %v", witness)
	}
	// …and be within (1+ε) of the optimum.
	opt := powergraph.Cost(sq, powergraph.ExactVC(sq))
	ratio := powergraph.RatioOf(int64(res.Solution.Count()), opt)
	fmt.Printf("  exact optimum: %d\n", opt)
	fmt.Printf("  ratio:         %s (guarantee ≤ %.2f)\n", ratio, 1+eps)
}
