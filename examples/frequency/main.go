// Frequency assignment / radio interference: the paper's motivating domain
// for computing on G² (Section 1: "coloring G², which arises in frequency
// assignment in radio networks").
//
// Scenario: transmitters in the plane form a unit-disk network G; two
// transmitters can interfere whenever they are within two hops (they share
// a listener). A regulator wants a minimum set of "coordinated"
// transmitters such that every potential interference pair contains a
// coordinated one — a minimum vertex cover of G². We run Corollary 17's
// 5/3-approximation, which needs only O(n) CONGEST rounds and polynomial
// local computation, and compare it with the trivial all-vertices
// 2-approximation of Lemma 6 and the exact optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powergraph"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	g := powergraph.ConnectedUnitDisk(60, 0.22, rng)
	sq := g.Square()
	fmt.Printf("radio network: %d transmitters, %d links, %d interference pairs in G²\n",
		g.N(), g.M(), sq.M())

	// Corollary 17: Phase I of Algorithm 1 with ε = 1/2, then the
	// centralized 5/3-approximation (Algorithm 2) at the leader.
	res, err := powergraph.MVCCongest53(g, &powergraph.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if ok, w := powergraph.IsSquareVertexCover(g, res.Solution); !ok {
		log.Fatalf("uncovered interference pair %v", w)
	}
	fmt.Printf("\nCorollary 17 (5/3-approx, poly local work):\n")
	fmt.Printf("  coordinated transmitters: %d\n", res.Solution.Count())
	fmt.Printf("  rounds: %d   message bits: %d\n", res.Stats.Rounds, res.Stats.TotalBits)

	// Lemma 6 baseline: coordinating everyone is within factor 2 — free,
	// but wasteful.
	fmt.Printf("\nLemma 6 baseline (all transmitters): %d\n", g.N())

	// Exact optimum (centralized; the leader could afford this too, at
	// exponential worst-case cost — Theorem 44 shows no FPTAS exists).
	opt := powergraph.Cost(sq, powergraph.ExactVC(sq))
	fmt.Printf("\nexact optimum: %d\n", opt)
	fmt.Printf("ratios: Cor17 %s · all-vertices %s\n",
		powergraph.RatioOf(int64(res.Solution.Count()), opt),
		powergraph.RatioOf(int64(g.N()), opt))

	// The centralized Algorithm 2 on its own (Theorem 12), with its
	// per-part accounting.
	ft := powergraph.FiveThirdsSquareMVC(g)
	fmt.Printf("\ncentralized Algorithm 2 parts: |V1|=%d (triangles) |V2|=%d (low degree) |V3|=%d (matching)\n",
		ft.V1.Count(), ft.V2.Count(), ft.V3.Count())
	fmt.Printf("centralized cover: %d (ratio %s, guarantee 5/3)\n",
		ft.Cover.Count(), powergraph.RatioOf(int64(ft.Cover.Count()), opt))
}
