// CONGESTED CLIQUE speed-up: the same (1+ε)-approximate G²-MVC computed
// three ways — Theorem 1's CONGEST algorithm (O(n/ε) rounds), Corollary
// 10's deterministic clique algorithm (O(εn + 1/ε) rounds), and Theorem
// 11's randomized voting scheme (O(log n + 1/ε) rounds w.h.p.) — across a
// range of network sizes, demonstrating where each model's rounds go.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"powergraph"
)

func main() {
	const eps = 0.5
	fmt.Printf("(1+ε)-approximate G²-MVC, ε = %.1f\n\n", eps)
	fmt.Printf("%6s %14s %14s %14s %16s\n",
		"n", "CONGEST", "clique-det", "clique-rand", "rand/log2(n)")

	for _, n := range []int{32, 64, 128, 256} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := powergraph.ConnectedGNP(n, 8/float64(n), rng)

		congest, err := powergraph.MVCCongest(g, eps, &powergraph.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		det, err := powergraph.MVCCliqueDeterministic(g, eps, &powergraph.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		rnd, err := powergraph.MVCCliqueRandomized(g, eps, &powergraph.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range []*powergraph.Result{congest, det, rnd} {
			if ok, _ := powergraph.IsSquareVertexCover(g, r.Solution); !ok {
				log.Fatalf("n=%d: infeasible cover", n)
			}
		}
		fmt.Printf("%6d %14d %14d %14d %16.2f\n",
			n, congest.Stats.Rounds, det.Stats.Rounds, rnd.Stats.Rounds,
			float64(rnd.Stats.Rounds)/math.Log2(float64(n)))
	}

	fmt.Println("\nThe CONGEST column grows linearly (Phase II ships O(n/ε) edges")
	fmt.Println("through one leader over a BFS tree); the clique columns stay flat")
	fmt.Println("or logarithmic because Lemma 9 ships every node's ≤1/ε edges to")
	fmt.Println("the leader in parallel, and the voting scheme needs only O(log n)")
	fmt.Println("iterations to drain every heavy neighborhood.")
}
