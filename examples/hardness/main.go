// Hardness constructions, live: the lower-bound graph families of
// Sections 5 and 7 encode two-party set disjointness into gap instances of
// G²-MVC and G²-MDS. This example builds each family for an intersecting
// and a disjoint input pair and shows the optimum flipping across the
// predicate threshold — the finitely-checkable heart of the Ω̃(n²) round
// lower bounds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powergraph"
)

func main() {
	rng := rand.New(rand.NewSource(9))

	fmt.Println("=== Figure 1 (CKP17): exact G-MVC encodes DISJ ===")
	for _, intersecting := range []bool{true, false} {
		x, y := pair(4, intersecting, rng)
		c, err := powergraph.BuildCKP17MVC(x, y)
		if err != nil {
			log.Fatal(err)
		}
		opt := powergraph.Cost(c.G, powergraph.ExactVC(c.G))
		fmt.Printf("  DISJ=%-5v  MVC=%d  target W=%d  (cut %d edges)\n",
			!intersecting, opt, c.CoverTarget(), c.CutSize())
	}

	fmt.Println("\n=== Figure 3 (Thm 22): the G² gadget shifts the gap by 2·#gadgets ===")
	for _, intersecting := range []bool{true, false} {
		x, y := pair(2, intersecting, rng)
		u, err := powergraph.BuildUnweightedMVCGadget(x, y)
		if err != nil {
			log.Fatal(err)
		}
		h2 := u.H.Square()
		base := powergraph.Cost(u.Base.G, powergraph.ExactVC(u.Base.G))
		lifted := powergraph.Cost(h2, powergraph.ExactVC(h2))
		fmt.Printf("  DISJ=%-5v  MVC(G)=%d  MVC(H²)=%d = MVC(G)+%d\n",
			!intersecting, base, lifted, 2*u.GadgetCount())
	}

	fmt.Println("\n=== Figure 4 (BCD+19): exact G-MDS encodes DISJ ===")
	for _, intersecting := range []bool{true, false} {
		x, y := pair(4, intersecting, rng)
		c, err := powergraph.BuildBCD19MDS(x, y)
		if err != nil {
			log.Fatal(err)
		}
		opt := powergraph.Cost(c.G, powergraph.ExactDS(c.G))
		fmt.Printf("  DISJ=%-5v  MDS=%d  target W=%d\n", !intersecting, opt, c.DomTarget())
	}

	fmt.Println("\n=== Figures 6–7 (Thms 35/41): constant-factor MDS gaps on G² ===")
	f := powergraph.CubeFamily(3)
	for _, weighted := range []bool{true, false} {
		for _, intersecting := range []bool{true, false} {
			x, y := pair(3, intersecting, rng)
			g, err := powergraph.BuildSetGadgetMDS(x, y, f, weighted, 9)
			if err != nil {
				log.Fatal(err)
			}
			h2 := g.H.Square()
			opt := powergraph.Cost(h2, powergraph.ExactDS(h2))
			kind := "unweighted"
			if weighted {
				kind = "weighted  "
			}
			fmt.Printf("  %s DISJ=%-5v  MDS(H²)=%d  gap threshold=%d\n",
				kind, !intersecting, opt, g.GapLow())
		}
	}

	fmt.Println("\n=== Theorem 19 arithmetic: what these gaps buy ===")
	// At scale k, deciding the predicate solves DISJ on k² bits; the cut
	// carries O(log k) edges of O(log n) bits per round.
	for _, k := range []int{1 << 8, 1 << 10, 1 << 12} {
		n := 4*k + 12*int(log2(k)) // Figure 4 family size
		lb := powergraph.Theorem19RoundLB(int64(k)*int64(k), 4*int(log2(k)), n)
		fmt.Printf("  k=%-6d n≈%-7d  round LB ≈ %d (Ω̃(n²))\n", k, n, lb)
	}
}

func pair(k int, intersecting bool, rng *rand.Rand) (powergraph.DisjMatrix, powergraph.DisjMatrix) {
	if intersecting {
		return powergraph.RandomIntersectingPair(k, rng)
	}
	return powergraph.RandomDisjointPair(k, rng)
}

func log2(k int) float64 {
	l := 0.0
	for v := 1; v < k; v <<= 1 {
		l++
	}
	return l
}
