// Sweep: drive the experiment harness from code — declare a scenario
// matrix, fan it out across the worker pool, stream JSONL to stdout, and
// read the aggregated per-cell statistics off the report.
//
// The same root seed always reproduces the same results byte-for-byte,
// whatever the worker count; re-run with a different -workers value and
// diff the output to see for yourself.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"powergraph"
)

func main() {
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	// Three workloads × two sizes × two algorithms × two trials: the
	// paper's Theorem 1 CONGEST algorithm against the Theorem 11
	// CONGESTED CLIQUE one, with exact oracle ratios up to n = 32.
	spec := &powergraph.Spec{
		Name:     "example",
		RootSeed: 1,
		Trials:   2,
		Generators: []powergraph.GeneratorSpec{
			{Name: "connected-gnp"},
			{Name: "caterpillar"},
			{Name: "random-tree"},
		},
		Sizes:      []int{24, 32},
		Algorithms: []string{"mvc-congest", "mvc-clique-rand"},
		Epsilons:   []float64{0.5},
		OracleN:    32,
	}

	report, err := powergraph.Run(context.Background(), spec, powergraph.RunOptions{
		Workers: *workers,
		Sinks:   []powergraph.Sink{powergraph.NewJSONLSink(os.Stdout)},
		OnProgress: func(p powergraph.SweepProgress) {
			fmt.Fprintf(os.Stderr, "done %d/%d\r", p.Done, p.Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(os.Stderr, "\n%d jobs -> %d scenario cells in %s\n",
		len(report.Results), len(report.Cells), report.Elapsed.Round(1e6))
	for _, c := range report.Cells {
		fmt.Fprintf(os.Stderr,
			"  %-22s n=%-3d %-16s ratio p95 %.3f  rounds p95 %.0f  verified %d/%d\n",
			c.Generator.Key(), c.N, c.Algorithm,
			c.Ratio.P95, c.Rounds.P95, c.Verified, c.Trials)
	}
}
