// Network monitoring: place the fewest monitors so that every node is
// within two hops of one — a minimum dominating set of G². This is the
// G²-MDS problem of Theorem 28; we run the randomized O(log Δ)-
// approximation (a CONGEST simulation of the [CD18] algorithm driven by
// the Lemma 29 exponential-sketch estimator) and compare it against the
// centralized greedy baseline and the exact optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powergraph"
)

func main() {
	// A grid-like datacenter fabric with some random rewiring.
	rng := rand.New(rand.NewSource(11))
	g := powergraph.ConnectedGNP(36, 0.12, rng)
	sq := g.Square()
	fmt.Printf("fabric: %d switches, %d links, Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	res, err := powergraph.MDSCongest(g, &powergraph.MDSOptions{
		Options: powergraph.Options{Seed: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	if ok, v := powergraph.IsSquareDominatingSet(g, res.Solution); !ok {
		log.Fatalf("switch %d is more than 2 hops from every monitor", v)
	}
	fmt.Printf("\nTheorem 28 (randomized O(log Δ)-approx):\n")
	fmt.Printf("  monitors: %d  %v\n", res.Solution.Count(), res.Solution)
	fmt.Printf("  rounds: %d (polylog guarantee)  bits: %d\n",
		res.Stats.Rounds, res.Stats.TotalBits)
	fmt.Printf("  fallback joins: %d (0 = the w.h.p. phase budget sufficed)\n",
		res.FallbackJoins)

	greedy := powergraph.GreedyMDS(sq)
	opt := powergraph.Cost(sq, powergraph.ExactDS(sq))
	fmt.Printf("\ncentralized greedy on G²: %d monitors\n", greedy.Count())
	fmt.Printf("exact optimum:            %d monitors\n", opt)
	fmt.Printf("ratios: distributed %s · greedy %s\n",
		powergraph.RatioOf(int64(res.Solution.Count()), opt),
		powergraph.RatioOf(int64(greedy.Count()), opt))

	// Why distance-2 domination in one sentence: a monitor sees its own
	// traffic, its neighbors', and — via neighbor mirroring — its
	// neighbors' neighbors'. Verify that claim for the computed placement.
	covered := 0
	for v := 0; v < g.N(); v++ {
		if res.Solution.Contains(v) || g.TwoHopNeighborhood(v).Intersects(res.Solution) {
			covered++
		}
	}
	fmt.Printf("\ncoverage check: %d/%d switches within two hops of a monitor\n",
		covered, g.N())
}
