// Package powergraph is a Go implementation of "Distributed Approximation
// on Power Graphs" (Bar-Yehuda, Censor-Hillel, Maus, Pai, Pemmaraju,
// PODC 2020): algorithms and lower-bound constructions for minimum vertex
// cover and minimum dominating set on the square G² of a communication
// network G, in the CONGEST and CONGESTED CLIQUE models.
//
// The package is a facade over the implementation packages:
//
//   - graph substrate with G²/Gʳ computation and generators;
//   - a bit-accounting CONGEST / CONGESTED CLIQUE round simulator with two
//     interchangeable execution engines (EngineGoroutine: one goroutine per
//     node with barrier rounds; EngineBatch: batched event-driven, the fast
//     choice at large n) and enforced O(log n)-bit messages;
//   - the paper's distributed algorithms (Theorems 1, 7, 11, 28,
//     Corollaries 10, 17) and centralized algorithms (Theorem 12,
//     Lemma 6);
//   - exact branch-and-bound solvers used as the leader-side oracle and
//     for verification;
//   - every lower-bound family of Sections 5, 7 and 8 (Figures 1–7) with
//     machine-checkable predicates;
//   - the Alice–Bob communication framework of Section 5.1.
//
// Quick start:
//
//	g := powergraph.ConnectedGNP(64, 0.1, rand.New(rand.NewSource(1)))
//	res, err := powergraph.MVCCongest(g, 0.5, nil)  // (1+ε)-approx of MVC(G²)
//	ok, _ := powergraph.IsSquareVertexCover(g, res.Solution)
//
// # Experiment harness
//
// The harness turns a declarative scenario matrix into a sharded parallel
// sweep with deterministic per-job seeds: identical specs (including the
// root seed) produce byte-identical JSONL results regardless of worker
// count, and cancelling a run flushes the completed prefix.  Declare a
// Spec, pick sinks, and Run:
//
//	spec := &powergraph.Spec{
//		Name:       "demo",
//		RootSeed:   1,
//		Trials:     3,
//		Generators: []powergraph.GeneratorSpec{{Name: "connected-gnp"}, {Name: "random-tree"}},
//		Sizes:      []int{32, 64},
//		Algorithms: []string{"mvc-congest", "mvc-clique-rand"},
//		Epsilons:   []float64{0.5},
//		OracleN:    48, // solve exactly and report ratios up to n=48
//	}
//	report, err := powergraph.Run(ctx, spec, powergraph.RunOptions{
//		Sinks: []powergraph.Sink{powergraph.NewJSONLSink(os.Stdout)},
//	})
//	// report.Cells holds per-scenario mean/p50/p95 ratio, round, message
//	// and bit statistics.
//
// The same machinery backs the command-line sweeper:
//
//	go run ./cmd/powerbench -spec specs/podc20-sweep.json
//	go run ./cmd/powerbench -generators connected-gnp,random-tree,caterpillar \
//	    -sizes 32,64 -algorithms mvc-congest,mvc-clique-rand -trials 3
//
// which writes <name>.jsonl, <name>.csv and an aggregated
// BENCH_<name>.json summary, and the EXPERIMENTS.md presets in
// ./cmd/experiments, which pin explicit per-job seeds through RunJobs.
package powergraph

import (
	"context"
	"io"
	"math/rand"

	"powergraph/internal/bitset"
	"powergraph/internal/centralized"
	"powergraph/internal/congest"
	"powergraph/internal/core"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/harness"
	"powergraph/internal/kernel"
	"powergraph/internal/lowerbound"
	"powergraph/internal/twoparty"
	"powergraph/internal/verify"
)

// Core types, re-exported.
type (
	// Graph is an immutable simple undirected graph with optional vertex
	// weights; see Builder for construction and the methods on Graph for
	// Square/Power computation and traversal.
	Graph = graph.Graph
	// Builder accumulates edges and produces an immutable Graph.
	Builder = graph.Builder
	// VertexSet is a bitset over vertex ids; all solutions are VertexSets.
	VertexSet = bitset.Set
	// Result is the outcome of a distributed computation: the solution
	// set, Phase-I accounting, and simulator statistics.
	Result = core.Result
	// Options tunes distributed runs (seed, bandwidth, local solver, cut).
	Options = core.Options
	// MDSOptions additionally tunes the Theorem 28 estimator and phase
	// budget.
	MDSOptions = core.MDSOptions
	// Stats is the simulator's cost accounting (rounds, messages, bits,
	// cut traffic).
	Stats = congest.Stats
	// EngineMode selects the simulator's execution engine (see
	// EngineGoroutine and EngineBatch); set it via Options.Engine or a
	// Spec's EngineModes axis.
	EngineMode = congest.EngineMode
	// FiveThirdsResult carries Algorithm 2's cover and per-part sets.
	FiveThirdsResult = centralized.FiveThirdsResult
	// Ratio reports solution cost against a reference optimum.
	Ratio = verify.Ratio
	// KernelConfig tunes the kernelize-then-solve ladder (direct-solve
	// threshold, branch-and-bound budget).
	KernelConfig = kernel.Config
	// KernelReport describes one kernelize-then-solve run: path taken,
	// kernel size, committed cost, lower bound, rule tallies. Distributed
	// Results carry one as LeaderSolve when the default solver ran.
	KernelReport = kernel.Report
	// KernelSolver is the configured kernelize-then-solve solver.
	KernelSolver = kernel.Solver
)

// Simulator execution engines: both produce identical results for identical
// seeds; EngineBatch is markedly faster at large n (see ARCHITECTURE.md).
const (
	// EngineGoroutine runs one goroutine per node with barrier rounds (the
	// default).
	EngineGoroutine = congest.EngineGoroutine
	// EngineBatch advances all nodes round-by-round on one scheduler over
	// flat message buffers — the engine that makes n ≥ 2000 sweeps
	// practical.
	EngineBatch = congest.EngineBatch
)

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewVertexSet returns an empty vertex set over n vertices.
func NewVertexSet(n int) *VertexSet { return bitset.New(n) }

// ReadGraph decodes a graph from the line-oriented edge-list format
// ("n <count>", "e <u> <v>", optional "w <v> <weight>").
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph encodes a graph in the edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Generators (deterministic and seeded-random workloads).

// Path returns the path graph P_n.
func Path(n int) *Graph { return graph.Path(n) }

// Cycle returns the cycle graph C_n.
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// Star returns the star on n vertices centered at vertex 0.
func Star(n int) *Graph { return graph.Star(n) }

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// Caterpillar returns a spine path with pendant legs — the structure on
// which G² is dramatically denser than G.
func Caterpillar(spine, legs int) *Graph { return graph.Caterpillar(spine, legs) }

// RandomTree returns a random labelled tree.
func RandomTree(n int, rng *rand.Rand) *Graph { return graph.RandomTree(n, rng) }

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, rng *rand.Rand) *Graph { return graph.GNP(n, p, rng) }

// ConnectedGNP returns G(n, p) conditioned on connectivity.
func ConnectedGNP(n int, p float64, rng *rand.Rand) *Graph {
	return graph.ConnectedGNP(n, p, rng)
}

// UnitDisk returns a random unit-disk (radio-network) graph.
func UnitDisk(n int, radius float64, rng *rand.Rand) *Graph {
	return graph.UnitDisk(n, radius, rng)
}

// ConnectedUnitDisk retries UnitDisk until connected.
func ConnectedUnitDisk(n int, radius float64, rng *rand.Rand) *Graph {
	return graph.ConnectedUnitDisk(n, radius, rng)
}

// WithRandomWeights copies g with uniform random vertex weights in
// [1, maxW].
func WithRandomWeights(g *Graph, maxW int64, rng *rand.Rand) *Graph {
	return graph.WithRandomWeights(g, maxW, rng)
}

// Distributed algorithms (the paper's contributions).

// MVCCongest runs Algorithm 1 (Theorem 1): deterministic
// (1+ε)-approximate MVC on G² in O(n/ε) CONGEST rounds over G.
func MVCCongest(g *Graph, eps float64, opts *Options) (*Result, error) {
	return core.ApproxMVCCongest(g, eps, opts)
}

// MWVCCongest runs the weighted variant (Theorem 7): deterministic
// (1+ε)-approximate weighted MVC on G² in O(n·log n/ε) CONGEST rounds.
func MWVCCongest(g *Graph, eps float64, opts *Options) (*Result, error) {
	return core.ApproxMWVCCongest(g, eps, opts)
}

// MVCCliqueDeterministic runs Corollary 10: deterministic (1+ε)-approximate
// MVC on G² in O(εn + 1/ε) CONGESTED CLIQUE rounds.
func MVCCliqueDeterministic(g *Graph, eps float64, opts *Options) (*Result, error) {
	return core.ApproxMVCCliqueDeterministic(g, eps, opts)
}

// MVCCliqueRandomized runs Theorem 11: randomized (1+ε)-approximate MVC on
// G² in O(log n + 1/ε) CONGESTED CLIQUE rounds w.h.p.
func MVCCliqueRandomized(g *Graph, eps float64, opts *Options) (*Result, error) {
	return core.ApproxMVCCliqueRandomized(g, eps, opts)
}

// MVCCongestRandomized runs Algorithm 1 with the Section 3.3 randomized
// voting Phase I in plain CONGEST: Phase I drains heavy neighborhoods in
// O(log n) iterations w.h.p. (the overall bound stays O(n/ε) — Phase II's
// leader gather dominates, as the paper notes).
func MVCCongestRandomized(g *Graph, eps float64, opts *Options) (*Result, error) {
	return core.ApproxMVCCongestRandomized(g, eps, opts)
}

// MVCCongest53 runs Corollary 17: a 5/3-approximation for MVC on G² in
// O(n) CONGEST rounds using only polynomial local computation (Phase I
// with ε = 1/2, the centralized 5/3-approximation at the leader).
func MVCCongest53(g *Graph, opts *Options) (*Result, error) {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	o.LocalSolver = func(h *Graph) *VertexSet {
		return centralized.FiveThirdsOnGraph(h).Cover
	}
	return core.ApproxMVCCongest(g, 0.5, &o)
}

// MDSCongest runs Theorem 28: randomized O(log Δ)-approximate MDS on G²
// in polylog(n) CONGEST rounds.
func MDSCongest(g *Graph, opts *MDSOptions) (*Result, error) {
	return core.ApproxMDSCongest(g, opts)
}

// Centralized algorithms.

// FiveThirdsSquareMVC runs Algorithm 2 (Theorem 12): a centralized
// polynomial-time 5/3-approximation for MVC on G².
func FiveThirdsSquareMVC(g *Graph) FiveThirdsResult {
	return centralized.FiveThirdsSquareMVC(g)
}

// Gavril2Approx returns the classical maximal-matching 2-approximation for
// MVC of the given (explicit) graph.
func Gavril2Approx(g *Graph) *VertexSet { return centralized.Gavril2Approx(g) }

// AllVerticesPowerMVC returns all vertices — by Lemma 6 a
// (1 + 1/⌊r/2⌋)-approximation for MVC on Gʳ with zero communication.
func AllVerticesPowerMVC(g *Graph) *VertexSet {
	return centralized.AllVerticesPowerMVC(g)
}

// Lemma6Bound returns Lemma 6's all-vertices approximation factor for Gʳ.
func Lemma6Bound(r int) float64 { return centralized.Lemma6Bound(r) }

// GreedyMDS returns the classical greedy ln(Δ+1)-approximate dominating
// set of the given (explicit) graph — the baseline for Theorem 28.
func GreedyMDS(g *Graph) *VertexSet { return exact.GreedyDominatingSet(g) }

// Exact solvers (the leader-side oracle; exponential worst case).

// ExactVC returns a minimum-weight vertex cover of g.
func ExactVC(g *Graph) *VertexSet { return exact.VertexCover(g) }

// ExactVCBounded is ExactVC with a search-node budget (0 = unlimited).
func ExactVCBounded(g *Graph, maxNodes int64) (*VertexSet, error) {
	return exact.VertexCoverBounded(g, maxNodes)
}

// ExactDS returns a minimum-weight dominating set of g.
func ExactDS(g *Graph) *VertexSet { return exact.DominatingSet(g) }

// ExactDSBounded is ExactDS with a search-node budget (0 = unlimited).
func ExactDSBounded(g *Graph, maxNodes int64) (*VertexSet, error) {
	return exact.DominatingSetBounded(g, maxNodes)
}

// Kernelize-then-solve (the default Phase-II leader solver; see
// ARCHITECTURE.md, "Leader-solve pipeline").

// KernelVC solves minimum (weighted) vertex cover through the
// kernelize-then-solve ladder with an unlimited search budget: reduction
// rules shrink the instance to its hard core before the exact search, which
// cracks sparse power-graph instances the raw branch and bound cannot.
func KernelVC(g *Graph) *VertexSet { return kernel.VertexCover(g) }

// KernelMDS is KernelVC for minimum (weighted) dominating set.
func KernelMDS(g *Graph) *VertexSet { return kernel.DominatingSet(g) }

// NewKernelSolver returns a configured kernelize-then-solve solver; its
// VertexCover/DominatingSet methods also return the KernelReport describing
// which ladder rung ran (direct, kernel-exact, kernel-fallback), the kernel
// size, and the proven lower bound.
func NewKernelSolver(cfg KernelConfig) *KernelSolver { return kernel.NewSolver(cfg) }

// Verification.

// IsSquareVertexCover reports whether s covers every edge of g².
func IsSquareVertexCover(g *Graph, s *VertexSet) (bool, [2]int) {
	return verify.IsSquareVertexCover(g, s)
}

// IsSquareDominatingSet reports whether s dominates g².
func IsSquareDominatingSet(g *Graph, s *VertexSet) (bool, int) {
	return verify.IsSquareDominatingSet(g, s)
}

// IsPowerVertexCover reports whether s covers every edge of gʳ — the MVC
// checker for runs with Options.Power ≠ 2.
func IsPowerVertexCover(g *Graph, r int, s *VertexSet) (bool, [2]int) {
	return verify.IsPowerVertexCover(g, r, s)
}

// IsPowerDominatingSet reports whether s dominates gʳ — the MDS checker
// for runs with Options.Power ≠ 2.
func IsPowerDominatingSet(g *Graph, r int, s *VertexSet) (bool, int) {
	return verify.IsPowerDominatingSet(g, r, s)
}

// IsVertexCover reports whether s covers every edge of g itself.
func IsVertexCover(g *Graph, s *VertexSet) (bool, [2]int) {
	return verify.IsVertexCover(g, s)
}

// IsDominatingSet reports whether s dominates g itself.
func IsDominatingSet(g *Graph, s *VertexSet) (bool, int) {
	return verify.IsDominatingSet(g, s)
}

// Cost returns the weight of a solution under g's vertex weights.
func Cost(g *Graph, s *VertexSet) int64 { return verify.Cost(g, s) }

// RatioOf forms an approximation ratio from a cost and a reference.
func RatioOf(cost, reference int64) Ratio { return verify.RatioOf(cost, reference) }

// Lower-bound families (Sections 5, 7, 8; Figures 1–7).
type (
	// DisjMatrix is a k×k set-disjointness input.
	DisjMatrix = lowerbound.Matrix
	// CKP17MVC is the Figure 1 MVC family.
	CKP17MVC = lowerbound.CKP17MVC
	// WeightedMVCGadget is the Figure 2 / Theorem 20 family.
	WeightedMVCGadget = lowerbound.WeightedMVCGadget
	// UnweightedMVCGadget is the Figure 3 / Theorem 22 family.
	UnweightedMVCGadget = lowerbound.UnweightedMVCGadget
	// BCD19MDS is the Figure 4 MDS family.
	BCD19MDS = lowerbound.BCD19MDS
	// MDSGadget is the Figure 5 / Theorem 31 family.
	MDSGadget = lowerbound.MDSGadget
	// SetGadgetMDS is the Figure 6–7 / Theorems 35, 41 family.
	SetGadgetMDS = lowerbound.SetGadgetMDS
	// CoveringFamily is an r-covering set system (Definition 37).
	CoveringFamily = lowerbound.CoveringFamily
	// DanglingPathReduction is the Theorem 26/44 edge-gadget reduction.
	DanglingPathReduction = lowerbound.DanglingPathReduction
	// MergedPathReduction is the Theorem 45 merged-gadget reduction.
	MergedPathReduction = lowerbound.MergedPathReduction
)

// NewDisjMatrix returns an all-zeros k×k disjointness input.
func NewDisjMatrix(k int) DisjMatrix { return lowerbound.NewMatrix(k) }

// Disj evaluates set disjointness (false iff some common 1-bit exists).
func Disj(x, y []bool) bool { return lowerbound.Disj(x, y) }

// BuildCKP17MVC constructs the Figure 1 family for inputs x, y.
func BuildCKP17MVC(x, y DisjMatrix) (*CKP17MVC, error) {
	return lowerbound.BuildCKP17MVC(x, y)
}

// BuildWeightedMVCGadget constructs the Figure 2 family.
func BuildWeightedMVCGadget(x, y DisjMatrix) (*WeightedMVCGadget, error) {
	return lowerbound.BuildWeightedMVCGadget(x, y)
}

// BuildUnweightedMVCGadget constructs the Figure 3 family.
func BuildUnweightedMVCGadget(x, y DisjMatrix) (*UnweightedMVCGadget, error) {
	return lowerbound.BuildUnweightedMVCGadget(x, y)
}

// BuildBCD19MDS constructs the Figure 4 family.
func BuildBCD19MDS(x, y DisjMatrix) (*BCD19MDS, error) {
	return lowerbound.BuildBCD19MDS(x, y)
}

// BuildMDSGadget constructs the Figure 5 family.
func BuildMDSGadget(x, y DisjMatrix) (*MDSGadget, error) {
	return lowerbound.BuildMDSGadget(x, y)
}

// CubeFamily returns the perfect covering family over {0,1}^T.
func CubeFamily(T int) *CoveringFamily { return lowerbound.CubeFamily(T) }

// BuildSetGadgetMDS constructs the Figure 6–7 family.
func BuildSetGadgetMDS(x, y DisjMatrix, f *CoveringFamily, weighted bool, heavyWeight int64) (*SetGadgetMDS, error) {
	return lowerbound.BuildSetGadgetMDS(x, y, f, weighted, heavyWeight)
}

// BuildDanglingPathReduction constructs the Theorem 26/44 reduction.
func BuildDanglingPathReduction(g *Graph) *DanglingPathReduction {
	return lowerbound.BuildDanglingPathReduction(g)
}

// BuildMergedPathReduction constructs the Theorem 45 reduction.
func BuildMergedPathReduction(g *Graph) (*MergedPathReduction, error) {
	return lowerbound.BuildMergedPathReduction(g)
}

// RandomIntersectingPair draws disjointness inputs with DISJ = false.
func RandomIntersectingPair(k int, rng *rand.Rand) (DisjMatrix, DisjMatrix) {
	return lowerbound.RandomIntersectingPair(k, rng)
}

// RandomDisjointPair draws disjointness inputs with DISJ = true.
func RandomDisjointPair(k int, rng *rand.Rand) (DisjMatrix, DisjMatrix) {
	return lowerbound.RandomDisjointPair(k, rng)
}

// Experiment harness (internal/harness), re-exported.
type (
	// Spec declares a scenario matrix (generators × sizes × powers ×
	// algorithms × ε grid × trials) that expands into seeded Jobs.
	Spec = harness.Spec
	// GeneratorSpec names a graph workload plus its parameters.
	GeneratorSpec = harness.GeneratorSpec
	// Job is one fully bound scenario point with its derived seed.
	Job = harness.Job
	// JobResult is one executed job's measurements.
	JobResult = harness.JobResult
	// CellSummary aggregates every trial of one scenario cell.
	CellSummary = harness.CellSummary
	// BenchSummary is the BENCH_*.json payload written by cmd/powerbench.
	BenchSummary = harness.Summary
	// Report is a run's results, per-cell aggregates, and diagnostics.
	Report = harness.Report
	// RunOptions tunes a harness run (worker count, sinks, progress).
	RunOptions = harness.RunOptions
	// Sink receives results in job-index order.
	Sink = harness.Sink
	// SweepProgress is delivered once per completed job.
	SweepProgress = harness.Progress
)

// Run expands spec and executes every job across a worker pool; see
// harness.Run.  Identical specs yield byte-identical sink output for any
// worker count.
func Run(ctx context.Context, spec *Spec, opts RunOptions) (*Report, error) {
	return harness.Run(ctx, spec, opts)
}

// RunJobs executes an explicit job list with pinned seeds; see
// harness.RunJobs.
func RunJobs(ctx context.Context, jobs []Job, opts RunOptions) (*Report, error) {
	return harness.RunJobs(ctx, jobs, opts)
}

// NewJSONLSink streams results as JSON Lines to w.
func NewJSONLSink(w io.Writer) Sink { return harness.NewJSONLSink(w) }

// NewCSVSink streams results as CSV with a fixed header to w.
func NewCSVSink(w io.Writer) Sink { return harness.NewCSVSink(w) }

// SweepAlgorithms lists the algorithm registry available to Specs.
func SweepAlgorithms() []string { return harness.AlgorithmNames() }

// SweepGenerators lists the generator registry available to Specs.
func SweepGenerators() []string { return harness.GeneratorNames() }

// Two-party framework (Section 5.1).

// Lemma25Cover runs the O(log n)-bit two-party protocol of Lemma 25 on a
// vertex-partitioned graph, returning a cover of G² within cut-size of
// optimal plus the transcript.
func Lemma25Cover(g *Graph, alice *VertexSet) (*VertexSet, twoparty.Transcript) {
	return twoparty.Lemma25Cover(g, alice)
}

// Theorem19RoundLB evaluates the framework's Ω(CC/(|C|·log n)) round bound.
func Theorem19RoundLB(ccBits int64, cutEdges, n int) int64 {
	return twoparty.Theorem19RoundLB(ccBits, cutEdges, n)
}
