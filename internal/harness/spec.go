// Package harness is the experiment-orchestration subsystem: it expands a
// declarative scenario matrix (generator × n × algorithm × ε × power r ×
// engine mode × trial) into concrete jobs with deterministic per-job seeds,
// shards them across a worker pool with cancellation and per-job panic
// isolation, and streams results into pluggable sinks (JSONL, CSV) before
// aggregating approximation-ratio and round/message/bit statistics per
// scenario cell.
//
// The subsystem exists so that every sweep in the repo — the EXPERIMENTS.md
// presets, cmd/powerbench, and future perf PRs — reports numbers through the
// same deterministic machinery instead of hand-rolled serial loops.
//
// Determinism contract: a fixed Spec (including RootSeed) produces
// byte-identical JSONL output regardless of worker count.  Per-job seeds are
// derived from the root seed by hashing the job's scenario coordinates, so
// adding or removing cells never perturbs the seeds of unrelated cells.
//
// Three coordinates are deliberately excluded from seed derivation:
//
//   - The engine mode (Spec.EngineModes): the same cell under "goroutine"
//     and "batch" replays the identical run, so a two-engine sweep is a
//     built-in differential test of the simulator — measurements must
//     match, only wall clock may differ.
//   - The gather mode (Spec.Gathers): "legacy" and "sparsified" replay the
//     identical instance and Phase-I run and must produce the same
//     solution, so a two-mode sweep is a built-in differential test of the
//     Phase-II sparsifier — only rounds/messages/bits may differ.
//   - The graph instance seed (Job.InstanceSeed) depends only on
//     (generator, n, power, trial), never on algorithm or ε, so every
//     algorithm in a scenario runs on the identical instance.
//
// Shared instances are what make the oracle cache work: when the exact
// oracle is enabled (Spec.OracleN), the runner memoizes optima per
// (generator, n, power, instance seed, problem) for the duration of one
// run, so a matrix with k algorithms pays for each exponential exact solve
// once instead of k times — roughly halving small-n sweep cost.
package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"powergraph/internal/congest"
)

// Spec declares a scenario matrix.  Every combination of Generators × Sizes
// × Powers × Algorithms × Epsilons × Trials expands into one Job (epsilon is
// skipped for algorithms that do not take ε; combinations an algorithm
// cannot serve — e.g. a CONGEST G² algorithm asked for r = 3 — are dropped
// and reported in ExpandReport.Skipped).
type Spec struct {
	// Name labels output files (BENCH_<Name>.json) and summaries.
	Name string `json:"name"`
	// RootSeed derives every per-job seed; identical specs with identical
	// root seeds produce identical results.
	RootSeed int64 `json:"rootSeed"`
	// Trials is the number of independent seeded repetitions per scenario
	// cell (default 1).
	Trials int `json:"trials,omitempty"`
	// Generators lists the graph workloads to sweep.
	Generators []GeneratorSpec `json:"generators"`
	// Sizes lists the vertex counts n.
	Sizes []int `json:"sizes"`
	// Powers lists the graph powers r (default [2], the paper's G²).
	Powers []int `json:"powers,omitempty"`
	// Algorithms names entries of the algorithm registry (see Algorithms()).
	Algorithms []string `json:"algorithms"`
	// Epsilons is the ε grid for (1+ε)-approximation algorithms
	// (default [0.5]); ignored by algorithms without an ε knob.
	Epsilons []float64 `json:"epsilons,omitempty"`
	// EngineModes lists the simulator execution engines to sweep
	// ("goroutine", "batch"; default [""] = the engine default). The mode
	// never enters seed derivation — the same cell under two engines runs
	// the same seeds and must produce identical measurements, which makes a
	// two-engine sweep a live differential test — but it does split
	// aggregation cells, so BENCH summaries compare the engines' wall
	// clocks side by side. Centralized baselines ignore the axis (they run
	// once, with the empty mode).
	EngineModes []string `json:"engineModes,omitempty"`
	// OracleN enables the exact oracle: cells with n ≤ OracleN also solve
	// the instance exactly and report the approximation ratio (default 0 =
	// never; the exact solvers are exponential in the worst case).
	OracleN int `json:"oracleN,omitempty"`
	// BandwidthFactor overrides the simulator's per-message budget
	// multiplier (0 = per-algorithm default).
	BandwidthFactor int `json:"bandwidthFactor,omitempty"`
	// MaxRounds aborts runaway distributed executions (0 = engine default).
	MaxRounds int `json:"maxRounds,omitempty"`
	// Shards splits the batch engine's per-round node sweep across that
	// many workers inside each job (congest.Config.Shards; 0/1 = the
	// sequential sweep, the goroutine engine ignores it). Like the engine
	// mode it never enters seed derivation and must never change any
	// measurement — a multi-shard sweep is a live determinism test of the
	// shard barrier — so it only trades wall clock, which is what makes it
	// worthwhile for the single huge jobs of the mega sweeps where
	// job-level parallelism has nothing left to parallelize.
	Shards int `json:"shards,omitempty"`
	// ShardCounts sweeps the shard count as an axis (default [Shards]):
	// one job per count for batch-engine cells, aggregated into separate
	// BENCH cells so their wall clocks compare side by side — the mega
	// sweep's shard-scaling curve. Like Shards itself the axis never
	// enters seed derivation and must never change measurements, so a
	// multi-count sweep doubles as a live determinism test of the shard
	// barrier. Cells that ignore shards (non-batch engines, centralized
	// baselines) collapse the axis to its first entry.
	ShardCounts []int `json:"shardCounts,omitempty"`
	// Gathers sweeps the generalized Phase-II gather mode as an axis:
	// "sparsified" (or "", the default) ships each near node's bounded
	// StepSparsify certificate edges; "legacy" pins the PR-4 wire format
	// (one-bit near flood, all incident edges). Like the engine mode the
	// axis never enters seed derivation — both modes replay the identical
	// instance and Phase-I run and must produce the same solution, which
	// makes a two-mode sweep a live differential test of the sparsifier —
	// but it splits aggregation cells, so BENCH summaries compare the modes'
	// message counts side by side. Cells where the knob is inert
	// (centralized baselines, and r = 2's paper wire format) collapse the
	// axis to its first entry.
	Gathers []string `json:"gathers,omitempty"`
	// LocalSolver picks the Phase-II leader solver of the MVC algorithms:
	// "" or "kernel-exact" (the default kernelize-then-solve ladder of
	// internal/kernel: reduction rules, bounded branch and bound, local-
	// ratio fallback), "exact" (the legacy raw branch and bound, exponential
	// worst case — the pre-kernel default), or "five-thirds" (Corollary 17's
	// polynomial 5/3-approximation). Sparse thousand-node sweeps that hand
	// the leader essentially all of Gʳ — the randomized variants' usual
	// fate — are exactly what "kernel-exact" exists for; MDS and the
	// centralized baselines ignore the knob.
	LocalSolver string `json:"localSolver,omitempty"`
	// TraceDir, when non-empty, streams one JSONL trace file per job into
	// the directory (see RunOptions.TraceDir; the powerbench -trace flag
	// overrides it).
	TraceDir string `json:"traceDir,omitempty"`
}

// Job is one concrete experiment: a fully bound scenario point with its
// derived seed.  Jobs are self-contained — two equal Jobs produce equal
// JobResults regardless of which worker runs them or when.
type Job struct {
	// Index is the job's position in spec-expansion order; sinks emit
	// results in Index order, which is what makes parallel runs
	// byte-identical to serial ones.
	Index     int           `json:"index"`
	Generator GeneratorSpec `json:"generator"`
	N         int           `json:"n"`
	Power     int           `json:"power"`
	Algorithm string        `json:"algorithm"`
	// Epsilon is 0 for algorithms without an ε parameter.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Engine is the simulator execution engine ("" = default goroutine;
	// "batch" = the batched event-driven engine). It deliberately does not
	// influence the derived seed: both engines replay the identical run.
	Engine string `json:"engine,omitempty"`
	Trial  int    `json:"trial"`
	// Seed drives the algorithm's randomness.
	Seed int64 `json:"seed"`
	// InstanceSeed drives graph generation. Expand derives it from
	// (generator, n, power, trial) only, so every algorithm (and engine
	// mode) in a scenario cell runs on the identical instance — the paired
	// design that makes cross-algorithm ratios meaningful and lets the
	// runner's oracle cache solve each instance exactly once. Zero means
	// "use Seed" (hand-built job lists keep their original behavior).
	InstanceSeed int64 `json:"instanceSeed,omitempty"`
	// OracleN, BandwidthFactor, MaxRounds, Shards, LocalSolver are copied
	// from the Spec.
	OracleN         int    `json:"oracleN,omitempty"`
	BandwidthFactor int    `json:"bandwidthFactor,omitempty"`
	MaxRounds       int    `json:"maxRounds,omitempty"`
	Shards          int    `json:"shards,omitempty"`
	LocalSolver     string `json:"localSolver,omitempty"`
	// Gather is the generalized Phase-II gather mode ("" = "sparsified",
	// "legacy" pins the PR-4 all-incident-edges path). Like the engine mode
	// it never enters seed derivation: both modes replay the identical run
	// and must produce the same solution.
	Gather string `json:"gather,omitempty"`
}

// ExpandReport describes what Expand produced.
type ExpandReport struct {
	// Skipped lists matrix combinations dropped because the algorithm
	// cannot serve them (wrong power), one human-readable line each.
	Skipped []string
}

// Validate checks the spec against the registries without expanding it.
func (s *Spec) Validate() error {
	if len(s.Generators) == 0 {
		return fmt.Errorf("harness: spec %q has no generators", s.Name)
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("harness: spec %q has no sizes", s.Name)
	}
	if len(s.Algorithms) == 0 {
		return fmt.Errorf("harness: spec %q has no algorithms", s.Name)
	}
	for _, g := range s.Generators {
		if err := g.validate(); err != nil {
			return err
		}
	}
	for _, a := range s.Algorithms {
		if _, ok := lookupAlgorithm(a); !ok {
			return fmt.Errorf("harness: unknown algorithm %q (known: %v)", a, AlgorithmNames())
		}
	}
	for _, n := range s.Sizes {
		if n <= 0 {
			return fmt.Errorf("harness: non-positive size %d", n)
		}
	}
	for _, r := range s.powers() {
		if r < 1 {
			return fmt.Errorf("harness: non-positive power %d", r)
		}
	}
	for _, e := range s.epsilons() {
		if e <= 0 {
			return fmt.Errorf("harness: non-positive epsilon %v", e)
		}
	}
	for _, m := range s.engineModes() {
		if _, err := congest.ParseEngineMode(m); err != nil {
			return err
		}
	}
	if s.Trials < 0 {
		return fmt.Errorf("harness: negative trial count %d", s.Trials)
	}
	if s.Shards < 0 {
		return fmt.Errorf("harness: negative shard count %d", s.Shards)
	}
	for _, c := range s.shardCounts() {
		if c < 0 {
			return fmt.Errorf("harness: negative shard count %d in shardCounts", c)
		}
	}
	if _, err := parseLocalSolver(s.LocalSolver); err != nil {
		return err
	}
	for _, gm := range s.gathers() {
		if _, err := parseGather(gm); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spec) trials() int {
	if s.Trials <= 0 {
		return 1
	}
	return s.Trials
}

func (s *Spec) powers() []int {
	if len(s.Powers) == 0 {
		return []int{2}
	}
	return s.Powers
}

func (s *Spec) epsilons() []float64 {
	if len(s.Epsilons) == 0 {
		return []float64{0.5}
	}
	return s.Epsilons
}

func (s *Spec) engineModes() []string {
	if len(s.EngineModes) == 0 {
		return []string{""}
	}
	return s.EngineModes
}

func (s *Spec) gathers() []string {
	if len(s.Gathers) == 0 {
		return []string{""}
	}
	return s.Gathers
}

func (s *Spec) shardCounts() []int {
	if len(s.ShardCounts) == 0 {
		return []int{s.Shards}
	}
	return s.ShardCounts
}

// Expand materializes the matrix into jobs in canonical order
// (generator, size, power, algorithm, ε, trial — innermost last).
func (s *Spec) Expand() ([]Job, ExpandReport, error) {
	if err := s.Validate(); err != nil {
		return nil, ExpandReport{}, err
	}
	var jobs []Job
	var rep ExpandReport
	for _, gen := range s.Generators {
		for _, n := range s.Sizes {
			for _, r := range s.powers() {
				for _, name := range s.Algorithms {
					alg, _ := lookupAlgorithm(name)
					if !alg.SupportsPower(r) {
						rep.Skipped = append(rep.Skipped, fmt.Sprintf(
							"%s × n=%d × r=%d: algorithm %s only supports r=%s",
							gen.Key(), n, r, name, alg.PowersLabel()))
						continue
					}
					epsGrid := []float64{0}
					if alg.NeedsEps {
						epsGrid = s.epsilons()
					}
					// The gather axis only exists where the generalized
					// Phase II runs: centralized baselines have no gather,
					// and r = 2 always uses the paper's F-edge wire format.
					gathers := s.gathers()
					if alg.Model == ModelCentralized || r == 2 {
						if len(gathers) > 1 {
							rep.Skipped = append(rep.Skipped, fmt.Sprintf(
								"%s × n=%d × r=%d: algorithm %s ignores the gather axis (ran once)",
								gen.Key(), n, r, name))
						}
						gathers = gathers[:1]
					}
					// Centralized baselines have no simulator, so the
					// engine axis collapses to one mode-less job; extra
					// modes are reported, not silently multiplied.
					engines := s.engineModes()
					if alg.Model == ModelCentralized {
						if len(engines) > 1 {
							rep.Skipped = append(rep.Skipped, fmt.Sprintf(
								"%s × n=%d × r=%d: centralized algorithm %s ignores the engine axis (ran once)",
								gen.Key(), n, r, name))
						}
						engines = []string{""}
					}
					for _, engine := range engines {
						// The shard axis only moves wall clock on the batch
						// engine; everywhere else it collapses to its first
						// entry, reported like the engine collapse above.
						counts := s.shardCounts()
						if mode, err := congest.ParseEngineMode(engine); alg.Model == ModelCentralized ||
							err != nil || mode != congest.EngineBatch {
							if len(counts) > 1 {
								rep.Skipped = append(rep.Skipped, fmt.Sprintf(
									"%s × n=%d × r=%d: %s engine %q ignores the shard axis (ran once)",
									gen.Key(), n, r, name, engine))
							}
							counts = counts[:1]
						}
						for _, shards := range counts {
							for _, gather := range gathers {
								for _, eps := range epsGrid {
									for t := 0; t < s.trials(); t++ {
										j := Job{
											Index:           len(jobs),
											Generator:       gen,
											N:               n,
											Power:           r,
											Algorithm:       name,
											Epsilon:         eps,
											Engine:          engine,
											Trial:           t,
											OracleN:         s.OracleN,
											BandwidthFactor: s.BandwidthFactor,
											MaxRounds:       s.MaxRounds,
											Shards:          shards,
											LocalSolver:     s.LocalSolver,
											Gather:          gather,
										}
										// Neither the engine mode, the shard
										// count, nor the gather mode is part
										// of the seed: every (engine, shards,
										// gather) triple replays the same run.
										j.Seed = deriveSeed(s.RootSeed, j.cellKey(), t)
										j.InstanceSeed = deriveSeed(s.RootSeed, j.instanceKey(), t)
										jobs = append(jobs, j)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if len(jobs) == 0 {
		return nil, rep, fmt.Errorf("harness: spec %q expanded to zero jobs (all %d combinations skipped)",
			s.Name, len(rep.Skipped))
	}
	return jobs, rep, nil
}

// scenarioKey is the canonical scenario-cell coordinate string shared by
// seed derivation (Job) and aggregation grouping (JobResult).  It
// deliberately excludes the trial index and the seed itself.
func scenarioKey(gen GeneratorSpec, n, power int, algorithm string, eps float64) string {
	return fmt.Sprintf("%s|n=%d|r=%d|%s|eps=%g", gen.Key(), n, power, algorithm, eps)
}

func (j *Job) cellKey() string {
	return scenarioKey(j.Generator, j.N, j.Power, j.Algorithm, j.Epsilon)
}

// instanceKey is the coordinate of the graph instance alone — no
// algorithm, ε, or engine — so all algorithms of a scenario share it.
func (j *Job) instanceKey() string {
	return fmt.Sprintf("%s|n=%d|r=%d|instance", j.Generator.Key(), j.N, j.Power)
}

// instanceSeed returns the seed that generates the job's graph.
func (j *Job) instanceSeed() int64 {
	if j.InstanceSeed != 0 {
		return j.InstanceSeed
	}
	return j.Seed
}

// deriveSeed maps (root, cell, trial) to a seed via FNV-1a followed by a
// splitmix64 finalizer.  The mapping depends only on the job's coordinates,
// never on expansion order, so editing one axis of a spec leaves the seeds
// of untouched cells intact.
func deriveSeed(root int64, cellKey string, trial int) int64 {
	h := fnv.New64a()
	io.WriteString(h, cellKey)
	fmt.Fprintf(h, "|t=%d", trial)
	z := h.Sum64() ^ uint64(root)*0x9e3779b97f4a7c15
	// splitmix64 finalizer — full-avalanche so nearby cells get unrelated
	// streams even under the weak FNV mix.
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// LoadSpec reads a Spec from a JSON file, rejecting unknown fields so typos
// in a scenario matrix fail loudly instead of silently shrinking the sweep.
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("harness: parsing spec %s: %w", path, err)
	}
	// Decode parses exactly one JSON value; anything after it (a concatenated
	// second spec, shell garbage from a bad redirect, a truncated merge) must
	// fail loudly instead of silently loading the first value as valid.
	if tok, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("harness: parsing spec %s: trailing content after spec object (next token %v)", path, tok)
	}
	if s.Name == "" {
		s.Name = "sweep"
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
