package harness

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"powergraph/internal/graph"
)

// GeneratorSpec names a graph workload plus its parameters.  The zero value
// of every parameter selects a sensible per-generator default, so a spec
// file can say just {"name": "connected-gnp"}.
type GeneratorSpec struct {
	// Name selects the generator; see GeneratorNames().
	Name string `json:"name"`
	// P is the edge probability for gnp/connected-gnp/bipartite
	// (0 → 8/n, sparse with constant average degree 8).
	P float64 `json:"p,omitempty"`
	// AvgDeg, when positive, selects p = AvgDeg/n for the gnp generators —
	// the natural way to hold sparsity constant across a size axis (the
	// kernel-sweep uses it to pin the leader-ceiling regime). Mutually
	// exclusive with P.
	AvgDeg float64 `json:"avgDeg,omitempty"`
	// Radius is the unit-disk connection radius
	// (0 → sqrt(3·ln n / n), above the connectivity threshold).
	Radius float64 `json:"radius,omitempty"`
	// Legs is the pendant count per spine vertex for caterpillar (0 → 3).
	Legs int `json:"legs,omitempty"`
	// MaxWeight, when positive, overlays uniform random vertex weights in
	// [1, MaxWeight] drawn from the same stream as the topology.
	MaxWeight int64 `json:"maxWeight,omitempty"`
}

// Key is the canonical cell-coordinate string for the generator, stable
// across runs: parameters render in a fixed order and defaulted (zero)
// parameters are omitted entirely.
func (g GeneratorSpec) Key() string {
	k := g.Name
	if g.P != 0 {
		k += fmt.Sprintf(",p=%g", g.P)
	}
	if g.AvgDeg != 0 {
		k += fmt.Sprintf(",d=%g", g.AvgDeg)
	}
	if g.Radius != 0 {
		k += fmt.Sprintf(",rad=%g", g.Radius)
	}
	if g.Legs != 0 {
		k += fmt.Sprintf(",legs=%d", g.Legs)
	}
	if g.MaxWeight != 0 {
		k += fmt.Sprintf(",w=%d", g.MaxWeight)
	}
	return k
}

// generatorFn builds an n-vertex graph; rng is the job's private stream.
type generatorFn func(n int, spec GeneratorSpec, rng *rand.Rand) *graph.Graph

var generators = map[string]generatorFn{
	"path":     func(n int, _ GeneratorSpec, _ *rand.Rand) *graph.Graph { return graph.Path(n) },
	"cycle":    func(n int, _ GeneratorSpec, _ *rand.Rand) *graph.Graph { return graph.Cycle(n) },
	"complete": func(n int, _ GeneratorSpec, _ *rand.Rand) *graph.Graph { return graph.Complete(n) },
	"star":     func(n int, _ GeneratorSpec, _ *rand.Rand) *graph.Graph { return graph.Star(n) },
	"grid": func(n int, _ GeneratorSpec, _ *rand.Rand) *graph.Graph {
		rows := int(math.Sqrt(float64(n)))
		if rows < 1 {
			rows = 1
		}
		cols := (n + rows - 1) / rows
		return graph.Grid(rows, cols)
	},
	"caterpillar": func(n int, spec GeneratorSpec, _ *rand.Rand) *graph.Graph {
		legs := spec.Legs
		if legs <= 0 {
			legs = 3
		}
		spine := n / (1 + legs)
		if spine < 1 {
			spine = 1
		}
		return graph.Caterpillar(spine, legs)
	},
	"random-tree": func(n int, _ GeneratorSpec, rng *rand.Rand) *graph.Graph {
		return graph.RandomTree(n, rng)
	},
	"gnp": func(n int, spec GeneratorSpec, rng *rand.Rand) *graph.Graph {
		return graph.GNP(n, spec.gnpP(n), rng)
	},
	"connected-gnp": func(n int, spec GeneratorSpec, rng *rand.Rand) *graph.Graph {
		return graph.ConnectedGNP(n, spec.gnpP(n), rng)
	},
	"gnm": func(n int, spec GeneratorSpec, rng *rand.Rand) *graph.Graph {
		return graph.GNM(n, spec.gnmM(n), rng)
	},
	"connected-gnm": func(n int, spec GeneratorSpec, rng *rand.Rand) *graph.Graph {
		return graph.ConnectedGNM(n, spec.gnmM(n), rng)
	},
	"unit-disk": func(n int, spec GeneratorSpec, rng *rand.Rand) *graph.Graph {
		return graph.UnitDisk(n, spec.diskRadius(n), rng)
	},
	"connected-unit-disk": func(n int, spec GeneratorSpec, rng *rand.Rand) *graph.Graph {
		return graph.ConnectedUnitDisk(n, spec.diskRadius(n), rng)
	},
}

func (g GeneratorSpec) gnpP(n int) float64 {
	if g.P > 0 {
		return g.P
	}
	if g.AvgDeg > 0 {
		return math.Min(1, g.AvgDeg/float64(n))
	}
	return math.Min(1, 8/float64(n))
}

// gnmM resolves the edge-count target of the gnm generators: avgDeg·n/2
// edges, matching gnp's expected count at the same average degree (default
// average degree 8, like gnpP).
func (g GeneratorSpec) gnmM(n int) int {
	d := g.AvgDeg
	if d <= 0 {
		d = 8
	}
	m := int(d * float64(n) / 2)
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	return m
}

func (g GeneratorSpec) diskRadius(n int) float64 {
	if g.Radius > 0 {
		return g.Radius
	}
	if n < 2 {
		return 1
	}
	return math.Sqrt(3 * math.Log(float64(n)) / float64(n))
}

func (g GeneratorSpec) validate() error {
	if _, ok := generators[g.Name]; !ok {
		return fmt.Errorf("harness: unknown generator %q (known: %s)",
			g.Name, strings.Join(GeneratorNames(), ", "))
	}
	if g.P < 0 || g.P > 1 {
		return fmt.Errorf("harness: generator %s: p must be in [0,1], got %v", g.Name, g.P)
	}
	if g.AvgDeg < 0 {
		return fmt.Errorf("harness: generator %s: negative avgDeg %v", g.Name, g.AvgDeg)
	}
	if g.AvgDeg > 0 && g.P > 0 {
		return fmt.Errorf("harness: generator %s: p and avgDeg are mutually exclusive", g.Name)
	}
	if g.Radius < 0 {
		return fmt.Errorf("harness: generator %s: negative radius %v", g.Name, g.Radius)
	}
	if g.Legs < 0 {
		return fmt.Errorf("harness: generator %s: negative legs %d", g.Name, g.Legs)
	}
	if g.MaxWeight < 0 {
		return fmt.Errorf("harness: generator %s: negative maxWeight %d", g.Name, g.MaxWeight)
	}
	return nil
}

// Build materializes the workload graph on n vertices.  The topology and the
// optional weight overlay consume the single rng stream in a fixed order, so
// a (spec, n, seed) triple pins the instance exactly.
func (g GeneratorSpec) Build(n int, rng *rand.Rand) (*graph.Graph, error) {
	fn, ok := generators[g.Name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown generator %q", g.Name)
	}
	built := fn(n, g, rng)
	if g.MaxWeight > 0 {
		built = graph.WithRandomWeights(built, g.MaxWeight, rng)
	}
	return built, nil
}

// generatorDescriptions holds the one-line summaries printed by powerbench
// -list; every entry in generators must have one (TestGeneratorDescriptions).
var generatorDescriptions = map[string]string{
	"path":                "path P_n (diameter n-1, the pipelining worst case)",
	"cycle":               "cycle C_n",
	"complete":            "complete graph K_n (G² = G)",
	"star":                "star K_{1,n-1} (one hub dominates G²)",
	"grid":                "near-square 2D grid",
	"caterpillar":         "caterpillar: spine path with `legs` pendant vertices each (default 3)",
	"random-tree":         "uniform random labeled tree (Prüfer sequence)",
	"gnp":                 "Erdős–Rényi G(n,p) (default p = 8/n, constant average degree; may be disconnected)",
	"connected-gnp":       "G(n,p) resampled/patched until connected (default p = 8/n)",
	"gnm":                 "sparse random G(n,m) by edge sampling, m = avgDeg·n/2 (default avgDeg 8) — O(m) build, the million-node workload",
	"connected-gnm":       "random spanning tree + G(n,m) extra edges: connected, O(m) build at any scale",
	"unit-disk":           "random unit-disk graph (default radius above the connectivity threshold)",
	"connected-unit-disk": "unit-disk graph conditioned on connectivity",
}

// GeneratorDescription returns the one-line summary for a registered
// generator ("" for unknown names).
func GeneratorDescription(name string) string { return generatorDescriptions[name] }

// GeneratorNames lists the registered generators, sorted.
func GeneratorNames() []string {
	names := make([]string, 0, len(generators))
	for n := range generators {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseGenerators turns a comma-separated list of generator names (CLI
// shorthand, no parameters) into GeneratorSpecs.
func ParseGenerators(csv string) ([]GeneratorSpec, error) {
	var specs []GeneratorSpec
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g := GeneratorSpec{Name: name}
		if err := g.validate(); err != nil {
			return nil, err
		}
		specs = append(specs, g)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("harness: empty generator list")
	}
	return specs, nil
}
