package harness

import (
	"sort"

	"powergraph/internal/congest"

	"powergraph/internal/bitset"
	"powergraph/internal/centralized"
	"powergraph/internal/core"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
)

// Model names the computation model an algorithm runs in.
const (
	ModelCongest     = "congest"
	ModelClique      = "clique"
	ModelCentralized = "centralized"
)

// Problem names what the algorithm computes on the power graph.
const (
	ProblemMVC = "mvc"
	ProblemMDS = "mds"
)

// Algorithm is a registry entry: one of the paper's distributed algorithms
// or a centralized baseline, adapted to the harness job signature.
type Algorithm struct {
	Name    string
	Model   string
	Problem string
	// NeedsEps marks (1+ε)-style algorithms; the spec's ε grid only
	// multiplies jobs for these.
	NeedsEps bool
	// AnyPower marks algorithms that accept any r ≥ 1 (the centralized
	// baselines, which run on the materialized Gʳ).  The distributed
	// algorithms communicate over G and target exactly G².
	AnyPower bool
	// Exact marks entries whose own output is the optimum; the harness
	// oracle reuses their cost instead of solving the instance twice.
	Exact bool
	// Run executes the algorithm for the job's power/epsilon.  g is the
	// communication graph; power is the pre-materialized Gʳ (centralized
	// baselines run on it directly — the distributed algorithms ignore it
	// and communicate over G only).  Centralized baselines report zero
	// simulator stats.
	Run func(g, power *graph.Graph, job Job) (*core.Result, error)
}

// SupportsPower reports whether the algorithm can serve power r.
func (a *Algorithm) SupportsPower(r int) bool { return a.AnyPower || r == 2 }

func distOpts(job Job) (*core.Options, error) {
	engine, err := congest.ParseEngineMode(job.Engine)
	if err != nil {
		return nil, err
	}
	return &core.Options{
		Seed:            job.Seed,
		Engine:          engine,
		BandwidthFactor: job.BandwidthFactor,
		MaxRounds:       job.MaxRounds,
	}, nil
}

// centralizedResult wraps a plain solution as a core.Result with no
// communication cost, so sinks and aggregation treat both kinds uniformly.
func centralizedResult(sol *bitset.Set) *core.Result {
	return &core.Result{Solution: sol, PhaseISize: -1}
}

var algorithms = map[string]*Algorithm{
	"mvc-congest": {
		Name: "mvc-congest", Model: ModelCongest, Problem: ProblemMVC, NeedsEps: true,
		Run: func(g, _ *graph.Graph, job Job) (*core.Result, error) {
			opts, err := distOpts(job)
			if err != nil {
				return nil, err
			}
			return core.ApproxMVCCongest(g, job.Epsilon, opts)
		},
	},
	"mvc-congest-rand": {
		Name: "mvc-congest-rand", Model: ModelCongest, Problem: ProblemMVC, NeedsEps: true,
		Run: func(g, _ *graph.Graph, job Job) (*core.Result, error) {
			opts, err := distOpts(job)
			if err != nil {
				return nil, err
			}
			return core.ApproxMVCCongestRandomized(g, job.Epsilon, opts)
		},
	},
	"mwvc-congest": {
		Name: "mwvc-congest", Model: ModelCongest, Problem: ProblemMVC, NeedsEps: true,
		Run: func(g, _ *graph.Graph, job Job) (*core.Result, error) {
			opts, err := distOpts(job)
			if err != nil {
				return nil, err
			}
			return core.ApproxMWVCCongest(g, job.Epsilon, opts)
		},
	},
	"mvc-congest-53": {
		Name: "mvc-congest-53", Model: ModelCongest, Problem: ProblemMVC,
		Run: func(g, _ *graph.Graph, job Job) (*core.Result, error) {
			o, err := distOpts(job)
			if err != nil {
				return nil, err
			}
			o.LocalSolver = func(h *graph.Graph) *bitset.Set {
				return centralized.FiveThirdsOnGraph(h).Cover
			}
			return core.ApproxMVCCongest(g, 0.5, o)
		},
	},
	"mvc-clique-det": {
		Name: "mvc-clique-det", Model: ModelClique, Problem: ProblemMVC, NeedsEps: true,
		Run: func(g, _ *graph.Graph, job Job) (*core.Result, error) {
			opts, err := distOpts(job)
			if err != nil {
				return nil, err
			}
			return core.ApproxMVCCliqueDeterministic(g, job.Epsilon, opts)
		},
	},
	"mvc-clique-rand": {
		Name: "mvc-clique-rand", Model: ModelClique, Problem: ProblemMVC, NeedsEps: true,
		Run: func(g, _ *graph.Graph, job Job) (*core.Result, error) {
			opts, err := distOpts(job)
			if err != nil {
				return nil, err
			}
			return core.ApproxMVCCliqueRandomized(g, job.Epsilon, opts)
		},
	},
	"mds-congest": {
		Name: "mds-congest", Model: ModelCongest, Problem: ProblemMDS,
		Run: func(g, _ *graph.Graph, job Job) (*core.Result, error) {
			opts, err := distOpts(job)
			if err != nil {
				return nil, err
			}
			return core.ApproxMDSCongest(g, &core.MDSOptions{Options: *opts})
		},
	},
	"five-thirds": {
		Name: "five-thirds", Model: ModelCentralized, Problem: ProblemMVC,
		Run: func(_, power *graph.Graph, _ Job) (*core.Result, error) {
			return centralizedResult(centralized.FiveThirdsOnGraph(power).Cover), nil
		},
	},
	"gavril": {
		Name: "gavril", Model: ModelCentralized, Problem: ProblemMVC, AnyPower: true,
		Run: func(_, power *graph.Graph, _ Job) (*core.Result, error) {
			return centralizedResult(centralized.Gavril2Approx(power)), nil
		},
	},
	"all-vertices": {
		Name: "all-vertices", Model: ModelCentralized, Problem: ProblemMVC, AnyPower: true,
		Run: func(g, _ *graph.Graph, _ Job) (*core.Result, error) {
			return centralizedResult(centralized.AllVerticesPowerMVC(g)), nil
		},
	},
	"greedy-mds": {
		Name: "greedy-mds", Model: ModelCentralized, Problem: ProblemMDS, AnyPower: true,
		Run: func(_, power *graph.Graph, _ Job) (*core.Result, error) {
			return centralizedResult(exact.GreedyDominatingSet(power)), nil
		},
	},
	"exact": {
		Name: "exact", Model: ModelCentralized, Problem: ProblemMVC, AnyPower: true, Exact: true,
		Run: func(_, power *graph.Graph, _ Job) (*core.Result, error) {
			return centralizedResult(exact.VertexCover(power)), nil
		},
	},
	"exact-mds": {
		Name: "exact-mds", Model: ModelCentralized, Problem: ProblemMDS, AnyPower: true, Exact: true,
		Run: func(_, power *graph.Graph, _ Job) (*core.Result, error) {
			return centralizedResult(exact.DominatingSet(power)), nil
		},
	},
}

func lookupAlgorithm(name string) (*Algorithm, bool) {
	a, ok := algorithms[name]
	return a, ok
}

// AlgorithmNames lists the registered algorithms, sorted.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithms))
	for n := range algorithms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
