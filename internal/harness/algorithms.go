package harness

import (
	"context"
	"fmt"
	"sort"

	"powergraph/internal/congest"

	"powergraph/internal/bitset"
	"powergraph/internal/centralized"
	"powergraph/internal/core"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/obs"
)

// Model names the computation model an algorithm runs in.
const (
	ModelCongest     = "congest"
	ModelClique      = "clique"
	ModelCentralized = "centralized"
)

// Problem names what the algorithm computes on the power graph.
const (
	ProblemMVC = "mvc"
	ProblemMDS = "mds"
)

// Algorithm is a registry entry: one of the paper's distributed algorithms
// or a centralized baseline, adapted to the harness job signature.
type Algorithm struct {
	Name    string
	Model   string
	Problem string
	// Description is the one-line summary printed by powerbench -list.
	Description string
	// NeedsEps marks (1+ε)-style algorithms; the spec's ε grid only
	// multiplies jobs for these.
	NeedsEps bool
	// AnyPower marks algorithms that accept any r ≥ 1 (the centralized
	// baselines, which run on the materialized Gʳ).
	AnyPower bool
	// MinPower/MaxPower bound the supported power range for entries that
	// are not AnyPower. Both zero means the legacy "exactly r = 2" gate
	// (kept for entries whose guarantee is square-specific, e.g. the
	// centralized 5/3-approximation). The distributed algorithms serve
	// r ∈ [1, 4]: they communicate over G and build their solution on Gʳ
	// via the parametric collectives of congest/primitives.
	MinPower, MaxPower int
	// Exact marks entries whose own output is the optimum; the harness
	// oracle reuses their cost instead of solving the instance twice.
	Exact bool
	// NativeStep marks distributed algorithms implemented as native
	// congest.StepPrograms: the batch engine drives them with plain
	// per-round function calls, no goroutine or coroutine adapter anywhere
	// (TestRegistryRunsNativelyOnBatchEngine enforces the claim).
	NativeStep bool
	// Spans declares the phase-span names this algorithm may emit when
	// traced — the superset over every supported power and engine; any one
	// run closes a subset (r = 1 skips Phase I entirely, for instance). Nil
	// for centralized baselines, which never touch the simulator.
	// TestRegistryTraceConformance pins emitted ⊆ declared.
	Spans []string
	// Estimator states, per power, how exactly the algorithm's distributed
	// aggregation reconstructs what it claims (the Gʳ[U] remainder for the
	// leader algorithms, the vote minimum for the Theorem-28 estimator) —
	// powerbench -list surfaces it so exact-vs-conservative is visible per
	// entry. Empty for centralized baselines.
	Estimator string
	// Run executes the algorithm for the job's power/epsilon.  g is the
	// communication graph; power is the pre-materialized Gʳ (centralized
	// baselines run on it directly — the distributed algorithms ignore it
	// and communicate over G only).  Centralized baselines report zero
	// simulator stats and ignore tr, the job's tracer (nil = untraced).
	// ctx cancels an in-flight distributed run at its next round barrier
	// (core.Options.Ctx); centralized baselines ignore it.
	Run func(ctx context.Context, g, power *graph.Graph, job Job, tr obs.Tracer) (*core.Result, error)
}

// SupportsPower reports whether the algorithm can serve power r.
func (a *Algorithm) SupportsPower(r int) bool {
	if a.AnyPower {
		return r >= 1
	}
	if a.MinPower == 0 && a.MaxPower == 0 {
		return r == 2
	}
	return r >= a.MinPower && r <= a.MaxPower
}

// PowersLabel renders the supported power range for listings and skip
// diagnostics ("any", "1-4", or "2").
func (a *Algorithm) PowersLabel() string {
	switch {
	case a.AnyPower:
		return "any"
	case a.MinPower == 0 && a.MaxPower == 0:
		return "2"
	case a.MinPower == a.MaxPower:
		return fmt.Sprintf("%d", a.MinPower)
	default:
		return fmt.Sprintf("%d-%d", a.MinPower, a.MaxPower)
	}
}

// distPowers is the power range every distributed registry entry serves,
// exercised end to end by the cross-power differential suite
// (power_differential_test.go) and the power-smoke CI sweep.
const (
	distMinPower = 1
	distMaxPower = 4
)

func distOpts(ctx context.Context, job Job, tr obs.Tracer) (*core.Options, error) {
	engine, err := congest.ParseEngineMode(job.Engine)
	if err != nil {
		return nil, err
	}
	solver, err := parseLocalSolver(job.LocalSolver)
	if err != nil {
		return nil, err
	}
	gather, err := parseGather(job.Gather)
	if err != nil {
		return nil, err
	}
	return &core.Options{
		Ctx:             ctx,
		Seed:            job.Seed,
		Engine:          engine,
		Shards:          job.Shards,
		BandwidthFactor: job.BandwidthFactor,
		MaxRounds:       job.MaxRounds,
		Power:           job.Power,
		LocalSolver:     solver,
		Gather:          gather,
		Tracer:          tr,
	}, nil
}

// Span taxonomies shared by the registry entries (see Algorithm.Spans and
// the Observability section of ARCHITECTURE.md). The congest pipeline
// algorithms run Phase II through StepLeaderPipeline (BFS tree + convergecast
// over G); the clique algorithms gather at the leader in O(1) hops and have
// no tree.
// "phase2-sparsify" is the default near-U certificate labeling of the
// generalized Phase II (power ≠ 2); "phase2-near" is its GatherLegacy
// counterpart, the PR-4 one-bit near flood.
var (
	pipelineSpans = []string{
		"phase1", "phase1-iter", "phase2-sparsify", "phase2-near",
		"leader-elect", "bfs-tree", "phase2-gather", "leader-solve", "phase2-flood",
	}
	cliqueSpans = []string{
		"phase1", "phase1-iter", "phase2-sparsify", "phase2-near",
		"leader-elect", "phase2-gather", "leader-solve", "phase2-flood",
	}
	mdsSpans = []string{"mds-phase", "mds-estimate", "mds-votes"}
)

// LocalSolverInfo describes one value of the spec/job localSolver knob for
// listings (powerbench -list) and flag help.
type LocalSolverInfo struct {
	Name, Description string
}

// LocalSolverInfos lists the localSolver knob values with their one-line
// summaries, in display order. parseLocalSolver and this list must stay in
// step (TestLocalSolverRegistryInSync enforces it).
func LocalSolverInfos() []LocalSolverInfo {
	return []LocalSolverInfo{
		{"kernel-exact", "kernelize-then-solve ladder (default): reduction rules + bounded branch and bound + local-ratio fallback"},
		{"exact", "legacy raw branch and bound (exponential worst case; the pre-kernel default)"},
		{"five-thirds", "Corollary 17's polynomial 5/3-approximation (r = 2 guarantee)"},
	}
}

// LocalSolverNames lists the spec/job localSolver knob values.
func LocalSolverNames() []string {
	infos := LocalSolverInfos()
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return names
}

// parseLocalSolver maps a job/spec solver name to a core.LocalSolver; nil
// means "the algorithm's default", which since the kernelize-then-solve
// subsystem landed is exactly "kernel-exact" (reduction rules + bounded
// branch and bound + polynomial fallback). "exact" pins the legacy raw
// branch and bound — the pre-kernel default, kept for regression baselines
// and the leader-ceiling stress test.
func parseLocalSolver(name string) (core.LocalSolver, error) {
	switch name {
	case "", "kernel-exact":
		return nil, nil
	case "exact":
		return exact.VertexCover, nil
	case "five-thirds":
		return func(h *graph.Graph) *bitset.Set {
			return centralized.FiveThirdsOnGraph(h).Cover
		}, nil
	default:
		return nil, fmt.Errorf("harness: unknown local solver %q (want one of %v)", name, LocalSolverNames())
	}
}

// GatherInfo describes one value of the spec/job gather knob for listings
// (powerbench -list) and flag help.
type GatherInfo struct {
	Name, Description string
}

// GatherInfos lists the gather knob values with their one-line summaries, in
// display order. parseGather and this list must stay in step
// (TestGatherRegistryInSync enforces it).
func GatherInfos() []GatherInfo {
	return []GatherInfo{
		{"sparsified", "bounded-round StepSparsify certificate gather (default): near nodes ship a deduped edge subset preserving Gʳ[U] exactly"},
		{"legacy", "PR-4 wire format: one-bit near flood, every near node ships all incident edges (r = 2 always uses the paper's F-edge path)"},
	}
}

// GatherNames lists the spec/job gather knob values.
func GatherNames() []string {
	infos := GatherInfos()
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return names
}

// parseGather maps a job/spec gather-mode name to a core.GatherMode; the
// empty name is the sparsified default. r = 2 ignores the knob entirely (the
// paper's F-edge wire format is the only r = 2 path).
func parseGather(name string) (core.GatherMode, error) {
	switch name {
	case "", "sparsified":
		return core.GatherSparsified, nil
	case "legacy":
		return core.GatherLegacy, nil
	default:
		return 0, fmt.Errorf("harness: unknown gather mode %q (want one of %v)", name, GatherNames())
	}
}

// Estimator statements shared by the distributed registry entries (see
// Algorithm.Estimator): every leader algorithm reconstructs Gʳ[U] exactly at
// every supported power, and the Theorem-28 vote estimator is exact at every
// power since the sparsified relay schedule replaced the conservative spread.
const (
	leaderEstimator = "exact Gʳ[U] at every r: paper F-edges at r=2, sparsified certificate gather otherwise"
	mdsEstimator    = "vote minima exact at every r: broadcast schedule at r<=2, routed relay schedule at r>=3 (conservative before sparsification)"
)

// centralizedResult wraps a plain solution as a core.Result with no
// communication cost, so sinks and aggregation treat both kinds uniformly.
func centralizedResult(sol *bitset.Set) *core.Result {
	return &core.Result{Solution: sol, PhaseISize: -1}
}

var algorithms = map[string]*Algorithm{
	"mvc-congest": {
		Name: "mvc-congest", Model: ModelCongest, Problem: ProblemMVC, NeedsEps: true, NativeStep: true,
		MinPower: distMinPower, MaxPower: distMaxPower,
		Spans:    pipelineSpans, Estimator: leaderEstimator,
		Description: "Algorithm 1 (Thm 1): deterministic (1+eps)-approx Gʳ-MVC (O(n/eps) CONGEST rounds at r=2)",
		Run: func(ctx context.Context, g, _ *graph.Graph, job Job, tr obs.Tracer) (*core.Result, error) {
			opts, err := distOpts(ctx, job, tr)
			if err != nil {
				return nil, err
			}
			return core.ApproxMVCCongest(g, job.Epsilon, opts)
		},
	},
	"mvc-congest-rand": {
		Name: "mvc-congest-rand", Model: ModelCongest, Problem: ProblemMVC, NeedsEps: true, NativeStep: true,
		MinPower: distMinPower, MaxPower: distMaxPower,
		Spans:    pipelineSpans, Estimator: leaderEstimator,
		Description: "Section 3.3: randomized voting Phase I in plain CONGEST (O(log n) heavy-neighborhood drain), Gʳ Phase II",
		Run: func(ctx context.Context, g, _ *graph.Graph, job Job, tr obs.Tracer) (*core.Result, error) {
			opts, err := distOpts(ctx, job, tr)
			if err != nil {
				return nil, err
			}
			return core.ApproxMVCCongestRandomized(g, job.Epsilon, opts)
		},
	},
	"mwvc-congest": {
		Name: "mwvc-congest", Model: ModelCongest, Problem: ProblemMVC, NeedsEps: true, NativeStep: true,
		MinPower: distMinPower, MaxPower: distMaxPower,
		Spans:    pipelineSpans, Estimator: leaderEstimator,
		Description: "Theorem 7: deterministic (1+eps)-approx weighted Gʳ-MVC via ripe weight classes",
		Run: func(ctx context.Context, g, _ *graph.Graph, job Job, tr obs.Tracer) (*core.Result, error) {
			opts, err := distOpts(ctx, job, tr)
			if err != nil {
				return nil, err
			}
			return core.ApproxMWVCCongest(g, job.Epsilon, opts)
		},
	},
	"mvc-congest-53": {
		Name: "mvc-congest-53", Model: ModelCongest, Problem: ProblemMVC, NativeStep: true,
		MinPower: distMinPower, MaxPower: distMaxPower,
		Spans:    pipelineSpans, Estimator: leaderEstimator,
		Description: "Corollary 17: 5/3-approx G²-MVC with polynomial local work (heuristic local solver at other r)",
		Run: func(ctx context.Context, g, _ *graph.Graph, job Job, tr obs.Tracer) (*core.Result, error) {
			o, err := distOpts(ctx, job, tr)
			if err != nil {
				return nil, err
			}
			o.LocalSolver = func(h *graph.Graph) *bitset.Set {
				return centralized.FiveThirdsOnGraph(h).Cover
			}
			return core.ApproxMVCCongest(g, 0.5, o)
		},
	},
	"mvc-clique-det": {
		Name: "mvc-clique-det", Model: ModelClique, Problem: ProblemMVC, NeedsEps: true, NativeStep: true,
		MinPower: distMinPower, MaxPower: distMaxPower,
		Spans:    cliqueSpans, Estimator: leaderEstimator,
		Description: "Corollary 10: deterministic (1+eps)-approx Gʳ-MVC (O(eps·n + 1/eps) CONGESTED CLIQUE rounds at r=2)",
		Run: func(ctx context.Context, g, _ *graph.Graph, job Job, tr obs.Tracer) (*core.Result, error) {
			opts, err := distOpts(ctx, job, tr)
			if err != nil {
				return nil, err
			}
			return core.ApproxMVCCliqueDeterministic(g, job.Epsilon, opts)
		},
	},
	"mvc-clique-rand": {
		Name: "mvc-clique-rand", Model: ModelClique, Problem: ProblemMVC, NeedsEps: true, NativeStep: true,
		MinPower: distMinPower, MaxPower: distMaxPower,
		Spans:    cliqueSpans, Estimator: leaderEstimator,
		Description: "Theorem 11: randomized (1+eps)-approx Gʳ-MVC (O(log n + 1/eps) CONGESTED CLIQUE rounds at r=2)",
		Run: func(ctx context.Context, g, _ *graph.Graph, job Job, tr obs.Tracer) (*core.Result, error) {
			opts, err := distOpts(ctx, job, tr)
			if err != nil {
				return nil, err
			}
			return core.ApproxMVCCliqueRandomized(g, job.Epsilon, opts)
		},
	},
	"mds-congest": {
		Name: "mds-congest", Model: ModelCongest, Problem: ProblemMDS, NativeStep: true,
		MinPower: distMinPower, MaxPower: distMaxPower,
		Spans:    mdsSpans, Estimator: mdsEstimator,
		Description: "Theorem 28: randomized O(log Δʳ)-approx Gʳ-MDS in polylog(n) CONGEST rounds (sketch estimator)",
		Run: func(ctx context.Context, g, _ *graph.Graph, job Job, tr obs.Tracer) (*core.Result, error) {
			opts, err := distOpts(ctx, job, tr)
			if err != nil {
				return nil, err
			}
			return core.ApproxMDSCongest(g, &core.MDSOptions{Options: *opts})
		},
	},
	"five-thirds": {
		Name: "five-thirds", Model: ModelCentralized, Problem: ProblemMVC,
		Description: "centralized 5/3-approximation for MVC on the materialized G²",
		Run: func(_ context.Context, _, power *graph.Graph, _ Job, _ obs.Tracer) (*core.Result, error) {
			return centralizedResult(centralized.FiveThirdsOnGraph(power).Cover), nil
		},
	},
	"gavril": {
		Name: "gavril", Model: ModelCentralized, Problem: ProblemMVC, AnyPower: true,
		Description: "centralized Gavril 2-approximation (maximal matching) on the materialized Gʳ",
		Run: func(_ context.Context, _, power *graph.Graph, _ Job, _ obs.Tracer) (*core.Result, error) {
			return centralizedResult(centralized.Gavril2Approx(power)), nil
		},
	},
	"all-vertices": {
		Name: "all-vertices", Model: ModelCentralized, Problem: ProblemMVC, AnyPower: true,
		Description: "trivial all-vertices cover (Lemma 6 upper bound)",
		Run: func(_ context.Context, g, _ *graph.Graph, _ Job, _ obs.Tracer) (*core.Result, error) {
			return centralizedResult(centralized.AllVerticesPowerMVC(g)), nil
		},
	},
	"greedy-mds": {
		Name: "greedy-mds", Model: ModelCentralized, Problem: ProblemMDS, AnyPower: true,
		Description: "centralized greedy set-cover ln(Δ)-approximation for MDS on Gʳ",
		Run: func(_ context.Context, _, power *graph.Graph, _ Job, _ obs.Tracer) (*core.Result, error) {
			return centralizedResult(exact.GreedyDominatingSet(power)), nil
		},
	},
	"exact": {
		Name: "exact", Model: ModelCentralized, Problem: ProblemMVC, AnyPower: true, Exact: true,
		Description: "exact MVC on Gʳ (exponential branch-and-bound; the ratio oracle)",
		Run: func(_ context.Context, _, power *graph.Graph, _ Job, _ obs.Tracer) (*core.Result, error) {
			return centralizedResult(exact.VertexCover(power)), nil
		},
	},
	"exact-mds": {
		Name: "exact-mds", Model: ModelCentralized, Problem: ProblemMDS, AnyPower: true, Exact: true,
		Description: "exact MDS on Gʳ (exponential set-cover solve; the ratio oracle)",
		Run: func(_ context.Context, _, power *graph.Graph, _ Job, _ obs.Tracer) (*core.Result, error) {
			return centralizedResult(exact.DominatingSet(power)), nil
		},
	},
}

// Info is a read-only view of one registry entry for listings (powerbench
// -list) and tests.
type Info struct {
	Name, Model, Problem, Description string
	NeedsEps, AnyPower, Exact         bool
	NativeStep                        bool
	// Powers is the supported power range as a label ("any", "1-4", "2");
	// SupportsPower answers the per-r question from the copied bounds.
	Powers             string
	MinPower, MaxPower int
	// Spans is the declared phase-span taxonomy (nil for centralized
	// entries); powerbench -list renders it as its own column.
	Spans []string
	// Estimator is the per-power exactness statement of the algorithm's
	// distributed aggregation (empty for centralized entries).
	Estimator string
}

// SupportsPower reports whether the listed algorithm can serve power r.
func (i Info) SupportsPower(r int) bool {
	return (&Algorithm{AnyPower: i.AnyPower, MinPower: i.MinPower, MaxPower: i.MaxPower}).SupportsPower(r)
}

// AlgorithmInfos lists every registered algorithm's metadata, sorted by
// name.
func AlgorithmInfos() []Info {
	out := make([]Info, 0, len(algorithms))
	for _, name := range AlgorithmNames() {
		a := algorithms[name]
		out = append(out, Info{
			Name: a.Name, Model: a.Model, Problem: a.Problem, Description: a.Description,
			NeedsEps: a.NeedsEps, AnyPower: a.AnyPower, Exact: a.Exact, NativeStep: a.NativeStep,
			Powers: a.PowersLabel(), MinPower: a.MinPower, MaxPower: a.MaxPower,
			Spans: append([]string(nil), a.Spans...), Estimator: a.Estimator,
		})
	}
	return out
}

func lookupAlgorithm(name string) (*Algorithm, bool) {
	a, ok := algorithms[name]
	return a, ok
}

// AlgorithmNames lists the registered algorithms, sorted.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithms))
	for n := range algorithms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
