package harness

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// differentialJob builds one job for the given algorithm and engine with a
// fixed seed pair, the way Expand would.
func differentialJob(alg string, engine string, n int, eps float64) Job {
	gen := GeneratorSpec{Name: "connected-gnp"}
	j := Job{
		Generator: gen, N: n, Power: 2, Algorithm: alg,
		Epsilon: eps, Engine: engine, Trial: 0, OracleN: 26,
	}
	j.Seed = deriveSeed(1, j.cellKey(), 0)
	j.InstanceSeed = deriveSeed(1, j.instanceKey(), 0)
	return j
}

// TestShardedEngineDeterministic runs every registered distributed
// algorithm on the batch engine across its full supported power range at
// several shard counts — sequential, 2, a count that does not divide n,
// and GOMAXPROCS — and requires byte-identical JobResults: solutions,
// Stats, and span summaries all serialize to the same JSON at every shard
// count. The shard barrier must be invisible in everything but wall clock.
func TestShardedEngineDeterministic(t *testing.T) {
	shardCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	for _, alg := range AlgorithmNames() {
		entry, _ := lookupAlgorithm(alg)
		if entry.Model == ModelCentralized {
			continue
		}
		t.Run(alg, func(t *testing.T) {
			for r := 1; r <= 4; r++ {
				if !entry.SupportsPower(r) {
					continue
				}
				var want *JobResult
				var wantJSON []byte
				for _, sc := range shardCounts {
					job := differentialJob(alg, "batch", 26, 0.5)
					job.Power = r
					job.Seed = deriveSeed(1, job.cellKey(), 0)
					job.InstanceSeed = deriveSeed(1, job.instanceKey(), 0)
					job.Shards = sc
					got := executeJob(job, nil)
					if got.Error != "" {
						t.Fatalf("r=%d shards=%d: %s", r, sc, got.Error)
					}
					got.Elapsed, got.Metrics, got.Shards = 0, nil, 0
					gotJSON, err := json.Marshal(got)
					if err != nil {
						t.Fatal(err)
					}
					if want == nil {
						want, wantJSON = got, gotJSON
						if !got.Verified {
							t.Fatalf("r=%d: solution failed feasibility", r)
						}
						continue
					}
					if *want != *got {
						t.Fatalf("r=%d: shards=%d diverges from shards=%d:\n%+v\n%+v",
							r, sc, shardCounts[0], *want, *got)
					}
					if string(wantJSON) != string(gotJSON) {
						t.Fatalf("r=%d: serialized results diverge at shards=%d", r, sc)
					}
				}
			}
		})
	}
}

// TestEngineDifferentialAllAlgorithms runs every registered distributed
// algorithm under both execution engines on identical seeds and requires
// identical measurements: solutions (cost and size), round counts, and all
// message statistics. This is the acceptance gate for the batch engine —
// the engines must be observationally indistinguishable on the paper's
// algorithms, not just on microbenchmarks.
func TestEngineDifferentialAllAlgorithms(t *testing.T) {
	for _, alg := range AlgorithmNames() {
		entry, _ := lookupAlgorithm(alg)
		if entry.Model == ModelCentralized {
			continue
		}
		t.Run(alg, func(t *testing.T) {
			for _, n := range []int{9, 26} {
				gor := executeJob(differentialJob(alg, "goroutine", n, 0.5), nil)
				bat := executeJob(differentialJob(alg, "batch", n, 0.5), nil)
				if gor.Error != "" || bat.Error != "" {
					t.Fatalf("n=%d: errors: goroutine=%q batch=%q", n, gor.Error, bat.Error)
				}
				// Neutralize the fields that legitimately differ, then
				// require everything else to match exactly.
				gor.Engine, bat.Engine = "", ""
				gor.Elapsed, bat.Elapsed = 0, 0
				gor.Metrics, bat.Metrics = nil, nil
				if *gor != *bat {
					t.Fatalf("n=%d: engines diverge:\ngoroutine: %+v\nbatch:     %+v", n, *gor, *bat)
				}
				if !gor.Verified {
					t.Fatalf("n=%d: solution failed feasibility", n)
				}
			}
		})
	}
}

// TestEngineAxisSweepIsDifferential runs a two-engine sweep through the
// full Run path and checks that each (cell, trial) pair produced identical
// measurements under both engines — the spec-level form of the
// differential guarantee.
func TestEngineAxisSweepIsDifferential(t *testing.T) {
	spec := &Spec{
		Name:     "diff",
		RootSeed: 3,
		Trials:   2,
		Generators: []GeneratorSpec{
			{Name: "connected-gnp"}, {Name: "random-tree"},
		},
		Sizes:       []int{14},
		Algorithms:  []string{"mvc-congest", "mds-congest", "exact"},
		EngineModes: []string{"goroutine", "batch"},
		OracleN:     14,
	}
	rep, err := Run(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d jobs failed", rep.Failed)
	}
	type key struct {
		cell  string
		trial int
	}
	seen := map[key]JobResult{}
	distributed := 0
	for _, r := range rep.Results {
		if r.Model == ModelCentralized {
			if r.Engine != "" {
				t.Fatalf("centralized job carries engine %q", r.Engine)
			}
			continue
		}
		distributed++
		k := key{scenarioKey(r.Generator, r.N, r.Power, r.Algorithm, r.Epsilon), r.Trial}
		prev, ok := seen[k]
		if !ok {
			seen[k] = r
			continue
		}
		if prev.Engine == r.Engine {
			t.Fatalf("duplicate engine %q for %v", r.Engine, k)
		}
		prev.Engine, r.Engine = "", ""
		prev.Elapsed, r.Elapsed = 0, 0
		prev.Metrics, r.Metrics = nil, nil
		prev.Index, r.Index = 0, 0
		if prev != r {
			t.Fatalf("engines diverge for %v:\n%+v\n%+v", k, prev, r)
		}
	}
	if want := 2 * 2 * 2; len(seen) != want || distributed != 2*want {
		t.Fatalf("distributed results = %d over %d cells, want %d over %d",
			distributed, len(seen), 2*want, want)
	}
	// The centralized exact baseline must appear once per scenario, not
	// once per engine, and the expansion must say so.
	if len(rep.Skipped) == 0 {
		t.Fatal("expected engine-axis collapse notes for the centralized baseline")
	}
}

// TestOracleCacheSharesInstanceAcrossAlgorithms checks the memoization
// contract end to end: algorithms of one scenario cell run on the identical
// graph (same InstanceSeed), so the per-run oracle solves each instance
// once, and every algorithm reports the same optimum.
func TestOracleCacheSharesInstanceAcrossAlgorithms(t *testing.T) {
	spec := &Spec{
		Name:       "oracle",
		RootSeed:   5,
		Trials:     2,
		Generators: []GeneratorSpec{{Name: "connected-gnp"}},
		Sizes:      []int{12, 16},
		Algorithms: []string{"mvc-congest", "mvc-clique-rand", "gavril", "exact"},
		OracleN:    16,
	}
	rep, err := Run(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d jobs failed", rep.Failed)
	}
	type ik struct {
		n     int
		trial int
	}
	optima := map[ik]int64{}
	for _, r := range rep.Results {
		if r.InstanceSeed == 0 {
			t.Fatalf("job %d has no instance seed", r.Index)
		}
		if r.Optimum < 0 {
			t.Fatalf("job %d missing oracle optimum", r.Index)
		}
		k := ik{r.N, r.Trial}
		if prev, ok := optima[k]; ok && prev != r.Optimum {
			t.Fatalf("instance %v: optima differ across algorithms: %d vs %d", k, prev, r.Optimum)
		}
		optima[k] = r.Optimum
	}
}

// TestOracleCacheSolvesOnce checks the cache mechanics directly: concurrent
// lookups of one key run the solver exactly once.
func TestOracleCacheSolvesOnce(t *testing.T) {
	c := newOracleCache()
	key := oracleKey{gen: "g", n: 5, power: 2, seed: 9, problem: ProblemMVC}
	calls := 0
	for i := 0; i < 4; i++ {
		if got := c.optimum(key, func() int64 { calls++; return 42 }); got != 42 {
			t.Fatalf("optimum = %d", got)
		}
	}
	if calls != 1 {
		t.Fatalf("solver ran %d times, want 1", calls)
	}
	other := key
	other.problem = ProblemMDS
	if got := c.optimum(other, func() int64 { return 7 }); got != 7 {
		t.Fatalf("distinct key returned %d", got)
	}
	// A nil cache (direct executeJob use) still solves.
	var nilCache *oracleCache
	if got := nilCache.optimum(key, func() int64 { return 3 }); got != 3 {
		t.Fatalf("nil cache returned %d", got)
	}
}
