package harness

import (
	"testing"

	"powergraph/internal/kernel"
)

// The acceptance gate of the kernelize-then-solve subsystem: on a sparse
// random instance at n = 1000 — squarely inside the regime ROADMAP named as
// the scale ceiling, where the randomized variants' candidacy threshold
// never fires and the leader receives essentially all of G² — the
// randomized congest MVC with localSolver "kernel-exact" must complete its
// Phase-II leader solve, and the harness oracle must confirm the reported
// ratio against the true optimum.

// ceilingJob builds the pinned thousand-node job the way Expand would.
func ceilingJob(alg, gen string, maxWeight int64, n int) Job {
	j := Job{
		Generator:   GeneratorSpec{Name: gen, MaxWeight: maxWeight},
		N:           n,
		Power:       2,
		Algorithm:   alg,
		Epsilon:     0.5,
		Engine:      "batch",
		Trial:       0,
		OracleN:     n,
		LocalSolver: "kernel-exact",
	}
	j.Seed = deriveSeed(41, j.cellKey(), 0)
	j.InstanceSeed = deriveSeed(41, j.instanceKey(), 0)
	return j
}

func TestKernelExactReopensLeaderCeiling(t *testing.T) {
	res := executeJob(ceilingJob("mvc-congest-rand", "random-tree", 0, 1000), nil)
	if res.Error != "" {
		t.Fatalf("job failed: %s", res.Error)
	}
	if !res.Verified {
		t.Fatal("solution is not a feasible G² cover")
	}
	if res.PhaseISize != 0 {
		t.Fatalf("Phase I committed %d vertices; the τ-never-fires regime did not hold", res.PhaseISize)
	}
	if res.LeaderPath != kernel.PathKernelExact {
		t.Fatalf("leader solve path %q, want %q", res.LeaderPath, kernel.PathKernelExact)
	}
	// The oracle solved the same thousand-node G² exactly — the quantity
	// that was unobtainable at n ≥ 500 before the kernel — and since Phase
	// I committed nothing, the exact leader solve must land exactly on it
	// (ratio 1, not merely ≤ 1+ε).
	if res.Optimum <= 0 {
		t.Fatalf("oracle did not produce a true optimum: %d", res.Optimum)
	}
	if res.Cost != res.Optimum {
		t.Fatalf("kernel-exact leader solve cost %d differs from the true optimum %d (ratio %.4f)",
			res.Cost, res.Optimum, res.Ratio)
	}
}

// TestKernelExactCeilingMore widens the gate: the deterministic congest MVC
// on the same unweighted thousand-node tree, and the weighted variant
// (whose Phase-II wire format ships weights, so the weighted kernel rules —
// pendant transfer, weighted folding, NT — run at the leader) against the
// weighted oracle.
func TestKernelExactCeilingMore(t *testing.T) {
	if testing.Short() {
		t.Skip("additional thousand-node runs in -short mode")
	}
	for _, tc := range []struct {
		alg       string
		maxWeight int64
	}{
		{"mvc-congest", 0},
		{"mwvc-congest", 16},
	} {
		res := executeJob(ceilingJob(tc.alg, "random-tree", tc.maxWeight, 1000), nil)
		if res.Error != "" {
			t.Fatalf("%s: %s", tc.alg, res.Error)
		}
		if !res.Verified || res.Optimum <= 0 {
			t.Fatalf("%s: verified=%v optimum=%d", tc.alg, res.Verified, res.Optimum)
		}
		if res.Ratio > 1.5+1e-9 {
			t.Fatalf("%s: ratio %.4f exceeds 1+ε", tc.alg, res.Ratio)
		}
		if res.LeaderPath == "" {
			t.Fatalf("%s: no leader-solve report", tc.alg)
		}
	}
}
