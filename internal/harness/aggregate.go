package harness

import (
	"math"
	"sort"
	"time"
)

// Dist summarizes one metric's distribution over a scenario cell's trials.
type Dist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
}

// CellSummary aggregates every trial of one scenario cell
// (generator × n × r × algorithm × ε).
type CellSummary struct {
	Generator GeneratorSpec `json:"generator"`
	N         int           `json:"n"`
	Power     int           `json:"power"`
	Algorithm string        `json:"algorithm"`
	Model     string        `json:"model"`
	Problem   string        `json:"problem"`
	Epsilon   float64       `json:"epsilon,omitempty"`
	// Engine is the simulator execution engine the cell ran under (empty
	// for the default engine and for centralized baselines). A two-engine
	// sweep produces one cell per engine with identical measurement
	// distributions; only WallMS may differ.
	Engine string `json:"engine,omitempty"`
	// Gather is the generalized Phase-II gather mode the cell ran under
	// (empty = the sparsified default). A two-mode sweep produces one cell
	// per mode with identical solutions but different rounds/messages/bits —
	// the sparsifier's measured win.
	Gather string `json:"gather,omitempty"`
	// Shards is the batch engine's shard count for this cell (0 = the
	// sequential sweep). Like Engine it splits cells without touching
	// measurements; a ShardCounts sweep compares the cells' WallMS.
	Shards int `json:"shards,omitempty"`

	// Trials counts results in the cell; Errors the failed subset.
	Trials int `json:"trials"`
	Errors int `json:"errors"`
	// Verified counts successful trials whose solution passed the
	// feasibility check (should equal Trials − Errors).
	Verified int `json:"verified"`
	// OracleTrials counts trials with an exact optimum available; Ratio is
	// aggregated over exactly those.
	OracleTrials int `json:"oracleTrials"`
	// LeaderPaths counts trials per Phase-II leader-solve path ("direct",
	// "kernel-exact", "kernel-fallback"); empty for cells whose algorithm
	// has no leader solve or runs a custom solver. A "kernel-fallback"
	// entry flags cells whose reported quality is no longer exact.
	LeaderPaths map[string]int `json:"leaderPaths,omitempty"`

	Cost     Dist `json:"cost"`
	Ratio    Dist `json:"ratio"`
	Rounds   Dist `json:"rounds"`
	Messages Dist `json:"messages"`
	Bits     Dist `json:"bits"`
	// MaxRoundMessages is the per-trial peak single-round message count —
	// the congestion spike a sweep like specs/sparsify-sweep.json compares
	// across gather modes (the legacy near flood's burst vs the certificate
	// gather's bounded relays).
	MaxRoundMessages Dist `json:"maxRoundMessages"`
	// GatherMessages is the Phase-II gather's own message count
	// (JobResult.GatherMsgs): the metric the gather axis varies, which
	// Messages — dominated by Phase I — hides. Zero-valued for cells with
	// no gather stage.
	GatherMessages Dist `json:"gatherMessages"`
	// WallMS is the per-job wall-clock distribution in milliseconds. Like
	// the summary's ElapsedMS it is machine-dependent, which is why it
	// appears only in BENCH summaries and never in the deterministic
	// JSONL/CSV streams; it is what the engine-mode cells of a scale sweep
	// are compared on.
	WallMS Dist `json:"wallMS"`
}

// Aggregate groups results by scenario cell and computes per-cell
// distributions.  Failed trials contribute to Errors only.  Cells come back
// in first-appearance (job-index) order, so aggregation is as deterministic
// as the result stream.
func Aggregate(results []JobResult) []CellSummary {
	type acc struct {
		summary                                                        CellSummary
		cost, ratio, rounds, messages, bits, maxMsgs, gatherMsgs, wall []float64
	}
	var order []string
	cells := map[string]*acc{}
	for i := range results {
		r := &results[i]
		key := r.cellKey()
		a, ok := cells[key]
		if !ok {
			a = &acc{summary: CellSummary{
				Generator: r.Generator, N: r.N, Power: r.Power,
				Algorithm: r.Algorithm, Model: r.Model, Problem: r.Problem,
				Epsilon: r.Epsilon, Engine: r.Engine, Gather: r.Gather, Shards: r.Shards,
			}}
			cells[key] = a
			order = append(order, key)
		}
		a.summary.Trials++
		if r.Error != "" {
			a.summary.Errors++
			continue
		}
		if a.summary.Model == "" {
			a.summary.Model, a.summary.Problem = r.Model, r.Problem
		}
		if r.Verified {
			a.summary.Verified++
		}
		if r.LeaderPath != "" {
			if a.summary.LeaderPaths == nil {
				a.summary.LeaderPaths = make(map[string]int)
			}
			a.summary.LeaderPaths[r.LeaderPath]++
		}
		a.cost = append(a.cost, float64(r.Cost))
		a.rounds = append(a.rounds, float64(r.Rounds))
		a.messages = append(a.messages, float64(r.Messages))
		a.bits = append(a.bits, float64(r.TotalBits))
		a.maxMsgs = append(a.maxMsgs, float64(r.MaxRoundMessages))
		a.gatherMsgs = append(a.gatherMsgs, float64(r.GatherMsgs))
		a.wall = append(a.wall, float64(r.Elapsed)/float64(time.Millisecond))
		if r.Optimum >= 0 {
			a.summary.OracleTrials++
			a.ratio = append(a.ratio, r.Ratio)
		}
	}
	out := make([]CellSummary, 0, len(order))
	for _, key := range order {
		a := cells[key]
		a.summary.Cost = distOf(a.cost)
		a.summary.Ratio = distOf(a.ratio)
		a.summary.Rounds = distOf(a.rounds)
		a.summary.Messages = distOf(a.messages)
		a.summary.Bits = distOf(a.bits)
		a.summary.MaxRoundMessages = distOf(a.maxMsgs)
		a.summary.GatherMessages = distOf(a.gatherMsgs)
		a.summary.WallMS = distOf(a.wall)
		out = append(out, a.summary)
	}
	return out
}

// distOf computes mean/p50/p95/max; an empty sample yields the zero Dist.
func distOf(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Dist{
		Mean: sum / float64(len(sorted)),
		P50:  percentile(sorted, 0.50),
		P95:  percentile(sorted, 0.95),
		Max:  sorted[len(sorted)-1],
	}
}

// percentile uses the nearest-rank definition on a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Summary is the BENCH_*.json payload: the run's identity plus per-cell
// aggregates, small enough to diff across PRs as a perf trajectory.
type Summary struct {
	Name      string `json:"name"`
	RootSeed  int64  `json:"rootSeed"`
	Jobs      int    `json:"jobs"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// ElapsedMS is wall-clock and machine-dependent; it lives only in the
	// summary file, never in the deterministic JSONL stream.
	ElapsedMS int64         `json:"elapsedMS"`
	Skipped   []string      `json:"skipped,omitempty"`
	Cells     []CellSummary `json:"cells"`
}

// Summarize builds the BENCH summary from a finished report.
func (rep *Report) Summarize() *Summary {
	s := &Summary{
		Jobs:      len(rep.Results),
		Completed: rep.Completed,
		Failed:    rep.Failed,
		ElapsedMS: rep.Elapsed.Milliseconds(),
		Skipped:   rep.Skipped,
		Cells:     rep.Cells,
	}
	if rep.Spec != nil {
		s.Name = rep.Spec.Name
		s.RootSeed = rep.Spec.RootSeed
	}
	return s
}
