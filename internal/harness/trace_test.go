package harness

import (
	"bufio"
	"context"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"powergraph/internal/core"
	"powergraph/internal/graph"
	"powergraph/internal/obs"
)

// TestRegistryTraceConformance runs every distributed registry entry on both
// engines across the full supported power range with a rounds-subscribed
// collector attached, and checks the trace-completeness contract: one round
// event per counted round, event sums reproducing the end-of-run Stats
// exactly, every closed span drawn from the entry's declared taxonomy, and
// span summaries agreeing across engines.
func TestRegistryTraceConformance(t *testing.T) {
	for _, info := range AlgorithmInfos() {
		if info.Model == ModelCentralized {
			continue
		}
		alg, _ := lookupAlgorithm(info.Name)
		declared := map[string]bool{}
		for _, s := range info.Spans {
			declared[s] = true
		}
		if len(declared) == 0 {
			t.Fatalf("%s: distributed entry declares no spans", info.Name)
		}
		for r := info.MinPower; r <= info.MaxPower; r++ {
			summaries := map[string]string{}
			for _, engine := range []string{"goroutine", "batch"} {
				job := Job{
					Generator: GeneratorSpec{Name: "connected-gnp"},
					N:         20, Power: r,
					Algorithm: info.Name, Epsilon: 0.5,
					Seed: 101, Engine: engine,
				}
				rng := rand.New(rand.NewSource(job.instanceSeed()))
				g, err := job.Generator.Build(job.N, rng)
				if err != nil {
					t.Fatal(err)
				}
				col := &obs.Collector{CollectRounds: true}
				res, err := alg.Run(context.Background(), g, g.Power(r), job, col)
				if err != nil {
					t.Fatalf("%s r=%d %s: %v", info.Name, r, engine, err)
				}

				evs := col.RoundEvents()
				if len(evs) != res.Stats.Rounds {
					t.Fatalf("%s r=%d %s: %d round events for %d counted rounds",
						info.Name, r, engine, len(evs), res.Stats.Rounds)
				}
				var bits, msgs int64
				for i, ev := range evs {
					if ev.Round != i {
						t.Fatalf("%s r=%d %s: event %d carries round %d",
							info.Name, r, engine, i, ev.Round)
					}
					bits += ev.Bits
					msgs += ev.Messages
				}
				if bits != res.Stats.TotalBits || msgs != res.Stats.Messages {
					t.Fatalf("%s r=%d %s: event sums bits=%d msgs=%d vs stats bits=%d msgs=%d",
						info.Name, r, engine, bits, msgs, res.Stats.TotalBits, res.Stats.Messages)
				}

				if open := col.OpenSpans(); len(open) != 0 {
					t.Fatalf("%s r=%d %s: unclosed spans %v", info.Name, r, engine, open)
				}
				for _, name := range col.SpanNames() {
					if !declared[name] {
						t.Fatalf("%s r=%d %s: emitted span %q not in declared taxonomy %v",
							info.Name, r, engine, name, info.Spans)
					}
				}
				if _, end, ok := col.Run(); !ok || end.Rounds != res.Stats.Rounds {
					t.Fatalf("%s r=%d %s: run-end missing or wrong: ok=%v end=%+v",
						info.Name, r, engine, ok, end)
				}
				summaries[engine] = col.SpanSummary()
			}
			if summaries["goroutine"] != summaries["batch"] {
				t.Fatalf("%s r=%d: span summaries diverge:\n goroutine %q\n batch     %q",
					info.Name, r, summaries["goroutine"], summaries["batch"])
			}
		}
	}
}

// TestTracingDoesNotPerturbSweep is the determinism-under-observation
// contract, with the shard axis folded in: the same spec produces
// byte-identical JSONL and CSV result streams with per-job trace files
// enabled and disabled, sequential and sharded — all four combinations —
// and the trace directory holds one well-formed file per job. The sweep
// runs both engines so the sharded batch path is genuinely exercised
// (shards are a no-op on the goroutine engine).
func TestTracingDoesNotPerturbSweep(t *testing.T) {
	tracedSpec := func(shards int) *Spec {
		spec := testSpec()
		spec.EngineModes = []string{"goroutine", "batch"}
		spec.Shards = shards
		return spec
	}
	run := func(traceDir string, shards int) (jsonl, csv []byte) {
		var jb, cb bytes.Buffer
		_, err := Run(t.Context(), tracedSpec(shards), RunOptions{
			Workers:  2,
			Sinks:    []Sink{NewJSONLSink(&jb), NewCSVSink(&cb)},
			TraceDir: traceDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return jb.Bytes(), cb.Bytes()
	}
	plainJSONL, plainCSV := run("", 0)
	dir := t.TempDir()
	tracedJSONL, tracedCSV := run(dir, 0)
	if !bytes.Equal(plainJSONL, tracedJSONL) {
		t.Fatal("enabling -trace changed the JSONL result stream")
	}
	if !bytes.Equal(plainCSV, tracedCSV) {
		t.Fatal("enabling -trace changed the CSV result stream")
	}
	for _, shards := range []int{3, runtime.GOMAXPROCS(0)} {
		shardDir := t.TempDir()
		shardedJSONL, shardedCSV := run(shardDir, shards)
		if !bytes.Equal(plainJSONL, shardedJSONL) {
			t.Fatalf("shards=%d changed the JSONL result stream", shards)
		}
		if !bytes.Equal(plainCSV, shardedCSV) {
			t.Fatalf("shards=%d changed the CSV result stream", shards)
		}
	}

	jobs, _, err := tracedSpec(0).Expand()
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "job-*.jsonl"))
	if err != nil || len(files) != len(jobs) {
		t.Fatalf("trace dir holds %d files for %d jobs (err %v)", len(files), len(jobs), err)
	}
	for _, f := range files {
		checkTraceFile(t, f)
	}
}

// checkTraceFile parses one per-job trace file: every line is a typed JSON
// object, the file opens with a job record and closes with a job-end record,
// and round events (if any) are monotone from zero.
func checkTraceFile(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var types []string
	nextRound := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec struct {
			Type  string `json:"type"`
			Round *int   `json:"round"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("%s: bad line %q: %v", path, sc.Text(), err)
		}
		if rec.Type == "round" {
			if rec.Round == nil || *rec.Round != nextRound {
				t.Fatalf("%s: round event out of order at %s", path, sc.Text())
			}
			nextRound++
		}
		types = append(types, rec.Type)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) < 2 || types[0] != "job" || types[len(types)-1] != "job-end" {
		t.Fatalf("%s: not sealed job…job-end: %v", path, types)
	}
}

// TestCSVHeaderPinned pins the CSV column order: downstream analysis scripts
// parse these files by name, so column changes must be deliberate.
func TestCSVHeaderPinned(t *testing.T) {
	want := []string{
		"index", "generator", "n", "power", "algorithm", "model", "problem",
		"epsilon", "engine", "gather", "trial", "seed", "instanceSeed", "cost",
		"solutionSize", "verified", "optimum", "ratio", "rounds", "messages",
		"totalBits", "maxRoundBits", "maxRoundMessages", "bandwidth",
		"phaseISize", "fallbackJoins", "leaderPath", "leaderKernelN", "spans",
		"gatherMsgs", "error",
	}
	if !reflect.DeepEqual(csvHeader, want) {
		t.Fatalf("csvHeader changed:\n got  %v\n want %v", csvHeader, want)
	}
	// Every JobResult field that serializes must have a column (Spans and
	// MaxRoundMessages regressions hide silently otherwise).
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	if err := s.Write(&JobResult{}); err != nil {
		t.Fatal(err)
	}
	line, _, _ := strings.Cut(buf.String(), "\n")
	if got := len(strings.Split(line, ",")); got != len(want) {
		t.Fatalf("header row has %d columns, want %d", got, len(want))
	}
}

// TestTraceFileCarriesSpansAndStack checks the per-job trace file's job-end
// record: a panicking job's error field carries the deterministic stack
// summary (function names and file:line, no addresses), and a healthy
// distributed job's spans field is non-empty.
func TestTraceFileCarriesSpansAndStack(t *testing.T) {
	algorithms["test-panic"] = &Algorithm{
		Name: "test-panic", Model: ModelCentralized, Problem: ProblemMVC,
		Run: func(context.Context, *graph.Graph, *graph.Graph, Job, obs.Tracer) (*core.Result, error) {
			panic("kaboom")
		},
	}
	defer delete(algorithms, "test-panic")

	dir := t.TempDir()
	jobs := []Job{
		{Index: 0, Generator: GeneratorSpec{Name: "connected-gnp"}, N: 16,
			Power: 2, Algorithm: "mvc-congest", Epsilon: 0.5, Seed: 3},
		{Index: 1, Generator: GeneratorSpec{Name: "path"}, N: 8,
			Power: 2, Algorithm: "test-panic", Seed: 4},
	}
	rep, err := RunJobs(t.Context(), jobs, RunOptions{TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	healthy, panicked := rep.Results[0], rep.Results[1]
	if healthy.Spans == "" || !strings.Contains(healthy.Spans, "leader-solve") {
		t.Fatalf("distributed job's span summary missing: %q", healthy.Spans)
	}
	wantErr := panicked.Error
	if !strings.Contains(wantErr, "panic: kaboom [") || !strings.Contains(wantErr, ".go:") {
		t.Fatalf("panic error lacks stack summary: %q", wantErr)
	}
	if strings.Contains(wantErr, "0x") {
		t.Fatalf("panic stack summary carries addresses: %q", wantErr)
	}
	if panicked.Metrics == nil || healthy.Metrics == nil || healthy.Metrics.WallNS <= 0 {
		t.Fatal("runner metrics not attached to results")
	}

	// The job-end record in each trace file mirrors the result's error/spans.
	for _, r := range rep.Results {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("job-%06d.jsonl", r.Index)))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		var end struct {
			Type    string          `json:"type"`
			Error   string          `json:"error"`
			Spans   string          `json:"spans"`
			Metrics *obs.JobMetrics `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &end); err != nil {
			t.Fatal(err)
		}
		if end.Type != "job-end" || end.Error != r.Error || end.Spans != r.Spans {
			t.Fatalf("job-end record diverges from result: %+v vs %+v", end, r)
		}
		if end.Metrics == nil || end.Metrics.Goroutines <= 0 {
			t.Fatalf("job-end record missing runtime metrics: %s", lines[len(lines)-1])
		}
	}
}
