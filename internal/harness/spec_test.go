package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSpec() *Spec {
	return &Spec{
		Name:     "t",
		RootSeed: 7,
		Trials:   2,
		Generators: []GeneratorSpec{
			{Name: "path"},
			{Name: "connected-gnp"},
			{Name: "random-tree"},
		},
		Sizes:      []int{12, 16},
		Algorithms: []string{"mvc-congest", "gavril"},
		Epsilons:   []float64{0.5},
		OracleN:    16,
	}
}

func TestExpandCountAndOrder(t *testing.T) {
	jobs, rep, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 3 generators × 2 sizes × 1 power × 2 algorithms × 1 eps × 2 trials.
	if want := 3 * 2 * 2 * 2; len(jobs) != want {
		t.Fatalf("got %d jobs, want %d", len(jobs), want)
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("unexpected skips: %v", rep.Skipped)
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d has Index %d", i, j.Index)
		}
	}
}

func TestExpandSkipsIncompatiblePowers(t *testing.T) {
	s := testSpec()
	s.Powers = []int{2, 3, 5}
	s.Algorithms = []string{"mvc-congest", "five-thirds", "gavril"}
	jobs, rep, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// The distributed algorithms serve r ∈ [1, 4] via the parametric Gʳ
	// pipeline, so mvc-congest expands at r = 3 but not r = 5; the
	// centralized 5/3-approximation keeps its square-only guarantee and
	// only expands at r = 2; gavril is any-power.
	count := map[string]map[int]int{}
	for _, j := range jobs {
		if count[j.Algorithm] == nil {
			count[j.Algorithm] = map[int]int{}
		}
		count[j.Algorithm][j.Power]++
	}
	perCell := 3 * 2 * 2 // generators × sizes × trials
	for alg, want := range map[string]map[int]int{
		"mvc-congest": {2: perCell, 3: perCell, 5: 0},
		"five-thirds": {2: perCell, 3: 0, 5: 0},
		"gavril":      {2: perCell, 3: perCell, 5: perCell},
	} {
		for r, n := range want {
			if got := count[alg][r]; got != n {
				t.Errorf("%s at r=%d: expanded %d jobs, want %d", alg, r, got, n)
			}
		}
	}
	// One skip line per generator×size per dropped (algorithm, power) pair:
	// mvc-congest at r=5 and five-thirds at r ∈ {3, 5}.
	if want := 3 * 3 * 2; len(rep.Skipped) != want {
		t.Fatalf("got %d skips, want %d: %v", len(rep.Skipped), want, rep.Skipped)
	}
	for _, line := range rep.Skipped {
		if !strings.Contains(line, "only supports r=") {
			t.Fatalf("skip line missing the supported-power label: %q", line)
		}
	}
}

func TestSeedsAreCellLocal(t *testing.T) {
	// Removing an axis value must not change the seeds of surviving cells.
	full, _, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	trimmed := testSpec()
	trimmed.Generators = trimmed.Generators[1:]
	sub, _, err := trimmed.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[string]int64{}
	for _, j := range full {
		seeds[j.cellKey()+string(rune(j.Trial))] = j.Seed
	}
	for _, j := range sub {
		want, ok := seeds[j.cellKey()+string(rune(j.Trial))]
		if !ok {
			t.Fatalf("cell %s missing from full expansion", j.cellKey())
		}
		if j.Seed != want {
			t.Fatalf("cell %s trial %d: seed changed %d -> %d after trimming spec",
				j.cellKey(), j.Trial, want, j.Seed)
		}
	}
	// And different trials of one cell must get different seeds.
	if full[0].Seed == full[1].Seed {
		t.Fatalf("trials 0 and 1 share seed %d", full[0].Seed)
	}
}

func TestValidateRejectsUnknownNames(t *testing.T) {
	s := testSpec()
	s.Algorithms = []string{"no-such-algorithm"}
	if _, _, err := s.Expand(); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	s = testSpec()
	s.Generators = []GeneratorSpec{{Name: "no-such-generator"}}
	if _, _, err := s.Expand(); err == nil {
		t.Fatal("expected error for unknown generator")
	}
}

func TestLoadSpecRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	good := `{"name":"x","rootSeed":1,"generators":[{"name":"path"}],"sizes":[8],"algorithms":["gavril"]}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := strings.Replace(good, `"sizes"`, `"sizs"`, 1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestLoadSpecRejectsTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	good := `{"name":"x","rootSeed":1,"generators":[{"name":"path"}],"sizes":[8],"algorithms":["gavril"]}`
	for _, trailing := range []string{
		good,       // a concatenated second spec
		`{}`,       // a second JSON value
		`garbage]`, // plain corruption
		`0`,        // a stray scalar
	} {
		if err := os.WriteFile(path, []byte(good+"\n"+trailing), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSpec(path); err == nil {
			t.Errorf("spec with trailing %q loaded without error", trailing)
		}
	}
	// Trailing whitespace and newlines are not garbage.
	if err := os.WriteFile(path, []byte(good+"\n\n  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err != nil {
		t.Errorf("spec with trailing whitespace rejected: %v", err)
	}
}

func TestGeneratorBuildSizes(t *testing.T) {
	for _, name := range GeneratorNames() {
		g := GeneratorSpec{Name: name}
		built, err := g.Build(16, newTestRng(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if built.N() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
	// Weighted overlay draws from the same stream deterministically.
	w := GeneratorSpec{Name: "connected-gnp", MaxWeight: 50}
	a, _ := w.Build(20, newTestRng(3))
	b, _ := w.Build(20, newTestRng(3))
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("weighted generator not deterministic")
	}
}
