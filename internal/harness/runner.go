package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"powergraph/internal/congest"
	"powergraph/internal/graph"
	"powergraph/internal/kernel"
	"powergraph/internal/obs"
	"powergraph/internal/verify"
)

// JobResult is one executed job's measurements.  Every field that is
// serialized is a pure function of the Job, so JSONL output is reproducible;
// wall-clock duration is kept out of the serialized form on purpose.
type JobResult struct {
	Index     int           `json:"index"`
	Generator GeneratorSpec `json:"generator"`
	N         int           `json:"n"`
	Power     int           `json:"power"`
	Algorithm string        `json:"algorithm"`
	Model     string        `json:"model"`
	Problem   string        `json:"problem"`
	Epsilon   float64       `json:"epsilon,omitempty"`
	Engine    string        `json:"engine,omitempty"`
	// Gather is the generalized Phase-II gather mode the job ran with
	// (empty = the sparsified default; see Spec.Gathers).
	Gather string `json:"gather,omitempty"`
	Trial  int    `json:"trial"`
	Seed   int64  `json:"seed"`
	// InstanceSeed is the seed that generated the graph (see
	// Job.InstanceSeed); omitted for hand-built jobs that use Seed.
	InstanceSeed int64 `json:"instanceSeed,omitempty"`

	// Cost is the solution's weight on the power graph Gʳ.
	Cost int64 `json:"cost"`
	// SolutionSize is the solution's cardinality.
	SolutionSize int `json:"solutionSize"`
	// Verified reports the feasibility check (cover / domination on Gʳ).
	Verified bool `json:"verified"`
	// Optimum is the exact optimum when n ≤ OracleN, else -1.
	Optimum int64 `json:"optimum"`
	// Ratio is Cost/Optimum when the oracle ran, else 0.
	Ratio float64 `json:"ratio,omitempty"`

	// Simulator accounting (zero for centralized baselines).
	Rounds           int   `json:"rounds"`
	Messages         int64 `json:"messages"`
	TotalBits        int64 `json:"totalBits"`
	MaxRoundBits     int64 `json:"maxRoundBits"`
	MaxRoundMessages int64 `json:"maxRoundMessages"`
	Bandwidth        int   `json:"bandwidth"`
	// PhaseISize is Algorithm 1's committed set S (-1 when not applicable).
	PhaseISize int `json:"phaseISize"`
	// FallbackJoins is Theorem 28's feasibility-fallback count.
	FallbackJoins int `json:"fallbackJoins"`
	// LeaderPath is the Phase-II leader-solve path taken by the default
	// kernelize-then-solve solver ("direct", "kernel-exact",
	// "kernel-fallback"; empty for custom solvers and non-leader runs), and
	// LeaderKernelN the kernel size it branched on. Deterministic per job,
	// so the fields survive the byte-identical JSONL contract.
	LeaderPath    string `json:"leaderPath,omitempty"`
	LeaderKernelN int    `json:"leaderKernelN,omitempty"`
	// Spans is the deterministic phase-span summary collected by the
	// always-attached span-only tracer: "name*count:rounds" entries ordered
	// by first-begin round (see obs.Collector.SpanSummary). Empty for
	// centralized baselines.
	Spans string `json:"spans,omitempty"`
	// GatherMsgs is the network message count of the Phase-II gather alone:
	// the traffic inside the phase2-sparsify / phase2-near / phase2-gather
	// spans (from the engines' round-boundary snapshots, see
	// obs.Collector.SpanMessages). It isolates the cost the gather axis
	// varies — Phase I dwarfs it in Messages — and is deterministic per
	// seed, so it lives in the serialized record. Zero when the algorithm
	// has no gather stage (MDS, centralized, r = 2's F-edge path).
	GatherMsgs int64 `json:"gatherMsgs,omitempty"`

	// Error is set when the job failed (including recovered panics, which
	// carry a deterministic stack summary); all measurement fields are zero
	// in that case.
	Error string `json:"error,omitempty"`

	// Canceled marks a job whose run was aborted by context cancellation
	// (congest.ErrCanceled) rather than by a fault of its own. RunJobs drops
	// canceled in-flight results from the report — a canceled sweep keeps
	// only what completed — so the field never reaches serialized output.
	Canceled bool `json:"-"`
	// Shards is the shard count the job ran with. Deliberately not
	// serialized — sweeps at any shard count must stay byte-identical —
	// but it does split aggregation cells, so a shard-count sweep's BENCH
	// summary compares wall clocks per count (the mega sweep's scaling
	// curve).
	Shards int `json:"-"`
	// Elapsed is the job's wall-clock duration.  It is intentionally not
	// serialized: timing is machine-dependent and would break the
	// byte-identical-output determinism contract.
	Elapsed time.Duration `json:"-"`
	// Metrics is the per-job runner metrics record (queue latency, wall
	// time, runtime/metrics snapshot). Wall-clock and machine state, so like
	// Elapsed it never enters serialized output, and differential tests
	// neutralize it before comparing.
	Metrics *obs.JobMetrics `json:"-"`
}

// cellKey groups results into scenario cells for aggregation. Unlike
// Job.cellKey (the seed-derivation key), it includes the engine mode, the
// gather mode, and the shard count, so a two-engine, two-gather, or
// multi-shard sweep aggregates each mode's measurements into separate,
// comparable cells.
func (r *JobResult) cellKey() string {
	return fmt.Sprintf("%s|eng=%s|gm=%s|sh=%d",
		scenarioKey(r.Generator, r.N, r.Power, r.Algorithm, r.Epsilon), r.Engine, r.Gather, r.Shards)
}

// Progress is delivered once per completed job, in emission (job-index)
// order, from a single goroutine.
type Progress struct {
	Done   int // jobs emitted so far, including this one
	Total  int
	Result *JobResult
}

// RunOptions tunes a harness run.
type RunOptions struct {
	// Workers is the worker-pool size (≤0 → GOMAXPROCS).
	Workers int
	// Sinks receive every result in job-index order.  Sink errors abort
	// the run.
	Sinks []Sink
	// OnProgress, when non-nil, is called after each result is emitted.
	OnProgress func(Progress)
	// TraceDir, when non-empty, writes one JSONL trace file per job
	// (job-<index>.jsonl) into the directory, creating it if needed. Each
	// file carries the job header, every engine/kernel trace event, and a
	// job-end record with the runner metrics.
	TraceDir string
}

func (o *RunOptions) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Report is the outcome of a run: per-job results (in job-index order,
// possibly a subset under cancellation), their per-cell aggregation, and
// expansion diagnostics.
type Report struct {
	Spec    *Spec         `json:"spec,omitempty"`
	Results []JobResult   `json:"results"`
	Cells   []CellSummary `json:"cells"`
	Skipped []string      `json:"skipped,omitempty"`
	// Completed and Failed partition Results.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Elapsed is the whole run's wall-clock time (not deterministic).
	Elapsed time.Duration `json:"-"`
	// Utilization is the worker pool's duty cycle: summed per-job wall time
	// over workers × run wall time. Wall-clock, so never serialized.
	Utilization float64 `json:"-"`
}

// Run expands the spec and executes every job across the worker pool.
// On context cancellation it returns ctx.Err() alongside a report holding
// the results completed before the cut, flushed to the sinks in index order.
func Run(ctx context.Context, spec *Spec, opts RunOptions) (*Report, error) {
	jobs, expRep, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if opts.TraceDir == "" {
		opts.TraceDir = spec.TraceDir
	}
	report, err := RunJobs(ctx, jobs, opts)
	if report != nil {
		report.Spec = spec
		report.Skipped = expRep.Skipped
	}
	return report, err
}

// RunJobs executes an explicit job list (the layer presets like
// cmd/experiments use to pin seeds exactly).  Results are emitted to sinks
// and the progress callback in ascending Job.Index order regardless of
// worker interleaving — this is what makes output byte-identical across
// worker counts.  Job indices must be unique; emission order is the sorted
// index order, with gaps allowed (cancellation, sparse hand-built lists).
func RunJobs(ctx context.Context, jobs []Job, opts RunOptions) (*Report, error) {
	start := time.Now()
	workers := opts.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	// rank[pos] is the emission slot of the job at slice position pos:
	// ascending Job.Index order, whatever order the slice arrived in.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return jobs[order[a]].Index < jobs[order[b]].Index })
	rank := make([]int, len(jobs))
	for k, pos := range order {
		if k > 0 && jobs[pos].Index == jobs[order[k-1]].Index {
			return nil, fmt.Errorf("harness: duplicate job index %d", jobs[pos].Index)
		}
		rank[pos] = k
	}

	// A sink failure cancels this inner context so the feeder and workers
	// stop immediately instead of computing results nobody will read.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()

	type ranked struct {
		rank int
		res  *JobResult
	}
	jobCh := make(chan int)
	resCh := make(chan ranked)

	// One oracle cache per run: every job that needs the exact optimum of
	// the same instance — all algorithms of one scenario cell share
	// (generator, n, power, seed) — reuses a single exponential solve.
	oracle := newOracleCache()
	exec := &jobExec{oracle: oracle, traceDir: opts.TraceDir, runStart: start}
	if exec.traceDir != "" {
		if err := os.MkdirAll(exec.traceDir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: trace dir: %w", err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for pos := range jobCh {
				res := exec.run(runCtx, jobs[pos])
				if res.Canceled {
					// The engine aborted mid-run on runCtx; the job produced
					// no measurement, so it must not enter the report (a
					// canceled sweep keeps exactly what completed).
					continue
				}
				select {
				case resCh <- ranked{rank[pos], res}:
				case <-runCtx.Done():
					return
				}
			}
		}()
	}

	// Feeder: stops handing out work as soon as the run is cancelled.
	go func() {
		defer close(jobCh)
		for pos := range jobs {
			select {
			case jobCh <- pos:
			case <-runCtx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Collector: reorder buffer keyed by emission rank so results flow to
	// sinks in Job.Index order even though workers finish out of order.
	pending := make(map[int]*JobResult, workers)
	next := 0
	var emitted []JobResult
	emit := func(r *JobResult) error {
		emitted = append(emitted, *r)
		for _, s := range opts.Sinks {
			if err := s.Write(r); err != nil {
				return fmt.Errorf("harness: sink: %w", err)
			}
		}
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{Done: len(emitted), Total: len(jobs), Result: r})
		}
		return nil
	}

	var sinkErr error
	for ir := range resCh {
		pending[ir.rank] = ir.res
		for sinkErr == nil {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			sinkErr = emit(r)
		}
		if sinkErr != nil {
			break
		}
	}
	if sinkErr != nil {
		// Stop the feeder and workers, then drain what's in flight.
		stopRun()
		for range resCh {
		}
		return nil, sinkErr
	}

	// Under cancellation some completed results may sit beyond a gap in the
	// buffer; flush them too, still in ascending index order, so partial
	// runs lose nothing that finished.
	if len(pending) > 0 {
		rest := make([]int, 0, len(pending))
		for rk := range pending {
			rest = append(rest, rk)
		}
		sort.Ints(rest)
		for _, rk := range rest {
			if err := emit(pending[rk]); err != nil {
				return nil, err
			}
		}
	}

	report := &Report{
		Results: emitted,
		Cells:   Aggregate(emitted),
		Elapsed: time.Since(start),
	}
	var busy time.Duration
	for i := range emitted {
		busy += emitted[i].Elapsed
		if emitted[i].Error != "" {
			report.Failed++
		} else {
			report.Completed++
		}
	}
	if report.Elapsed > 0 && workers > 0 {
		report.Utilization = float64(busy) / (float64(report.Elapsed) * float64(workers))
	}
	return report, ctx.Err()
}

// oracleKey identifies one instance for oracle memoization: the generator
// (including parameters), n, power and seed pin the graph Gʳ exactly, and
// the problem picks the solver.
type oracleKey struct {
	gen     string
	n       int
	power   int
	seed    int64
	problem string
}

// oracleCache memoizes exact-oracle optima across the jobs of one run.
// Entries resolve through a per-key sync.Once, so concurrent workers
// hitting the same instance block on one exponential solve instead of
// duplicating it; the cached value is a pure function of the key, which
// keeps results independent of worker interleaving.
type oracleCache struct {
	mu sync.Mutex
	m  map[oracleKey]*oracleEntry
	// solves counts solver-closure invocations — exactly one per distinct
	// key, however many jobs share the instance (tested by
	// TestOracleCacheSolvesOncePerInstance).
	solves atomic.Int64
}

type oracleEntry struct {
	once sync.Once
	opt  int64
}

func newOracleCache() *oracleCache {
	return &oracleCache{m: make(map[oracleKey]*oracleEntry)}
}

// optimum returns the memoized optimum for key, computing it with solve on
// first use. A nil cache (direct executeJob calls in tests) just solves.
func (c *oracleCache) optimum(key oracleKey, solve func() int64) int64 {
	if c == nil {
		return solve()
	}
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &oracleEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.solves.Add(1)
		e.opt = solve()
	})
	return e.opt
}

// jobExec is the per-run execution context the workers share: the oracle
// cache, the trace directory, and the run start time that per-job queue
// latency is measured against.
type jobExec struct {
	oracle   *oracleCache
	traceDir string
	runStart time.Time
}

// executeJob runs one job with a fresh execution context (no tracing to
// disk) — the entry point the differential and registry tests use; RunJobs
// routes workers through one shared jobExec instead.
func executeJob(job Job, oracle *oracleCache) *JobResult {
	return (&jobExec{oracle: oracle, runStart: time.Now()}).run(context.Background(), job)
}

// OracleCache memoizes exact-oracle optima across SolveInstance calls, the
// way RunJobs shares one cache across a sweep's workers. The type is opaque
// to other packages: construct with NewOracleCache, pass to SolveInstance.
type OracleCache = oracleCache

// NewOracleCache returns an empty oracle cache safe for concurrent use.
func NewOracleCache() *OracleCache { return newOracleCache() }

// SolveInstance runs one job's algorithm on an already-built instance —
// g with its pre-materialized power graph — and returns the same JobResult
// a sweep would produce for that (instance, job) pair: algorithm stats,
// feasibility verification, and (when job.OracleN allows) the exact-oracle
// ratio through the shared cache. This is the serving layer's entry point:
// the server holds graphs resident and cannot go through generator
// expansion, but must produce byte-identical results to a fresh
// build-and-solve.
//
// ctx cancels an in-flight distributed run at its next round barrier
// (Canceled is set on the result). tr receives the run's trace events; when
// it is an *obs.Collector the result's Spans/GatherMsgs fields are filled
// from it, as jobExec.run fills them for sweep jobs. Panics are isolated
// into the Error field. oracle may be nil (each oracle consult then solves).
func SolveInstance(ctx context.Context, g, power *graph.Graph, job Job, tr obs.Tracer, oracle *OracleCache) (out *JobResult) {
	start := time.Now()
	out = newJobResult(job)
	defer func() {
		out.Elapsed = time.Since(start)
		if col, ok := tr.(*obs.Collector); ok && col != nil {
			out.Spans = col.SpanSummary()
			spanMsgs := col.SpanMessages()
			out.GatherMsgs = spanMsgs["phase2-sparsify"] + spanMsgs["phase2-near"] + spanMsgs["phase2-gather"]
		}
	}()
	defer func() {
		if rec := recover(); rec != nil {
			*out = *newJobResult(job)
			out.Error = fmt.Sprintf("panic: %v [%s]", rec, obs.StackSummary(1, 6))
		}
	}()
	fillSolve(ctx, out, g, power, job, tr, oracle)
	return out
}

// newJobResult seeds a JobResult with the job's coordinates and the "not
// measured" sentinels.
func newJobResult(job Job) *JobResult {
	return &JobResult{
		Index:        job.Index,
		Generator:    job.Generator,
		N:            job.N,
		Power:        job.Power,
		Algorithm:    job.Algorithm,
		Epsilon:      job.Epsilon,
		Engine:       job.Engine,
		Gather:       job.Gather,
		Trial:        job.Trial,
		Seed:         job.Seed,
		InstanceSeed: job.InstanceSeed,
		Shards:       job.Shards,
		Optimum:      -1,
	}
}

// fillSolve is the execution core shared by sweep jobs (jobExec.run) and
// resident-instance solves (SolveInstance): run the job's algorithm on the
// given graph and power graph, verify feasibility on Gʳ, record simulator
// stats, and consult the exact oracle when enabled.
func fillSolve(ctx context.Context, out *JobResult, g, power *graph.Graph, job Job, tracer obs.Tracer, oracle *oracleCache) {
	alg, ok := lookupAlgorithm(job.Algorithm)
	if !ok {
		out.Error = fmt.Sprintf("unknown algorithm %q", job.Algorithm)
		return
	}
	out.Model = alg.Model
	out.Problem = alg.Problem

	res, err := alg.Run(ctx, g, power, job, tracer)
	if err != nil {
		out.Error = err.Error()
		out.Canceled = errors.Is(err, congest.ErrCanceled)
		return
	}

	out.Cost = verify.Cost(power, res.Solution)
	out.SolutionSize = res.Solution.Count()
	switch alg.Problem {
	case ProblemMDS:
		out.Verified, _ = verify.IsDominatingSet(power, res.Solution)
	default:
		out.Verified, _ = verify.IsVertexCover(power, res.Solution)
	}
	out.Rounds = res.Stats.Rounds
	out.Messages = res.Stats.Messages
	out.TotalBits = res.Stats.TotalBits
	out.MaxRoundBits = res.Stats.MaxRoundBits
	out.MaxRoundMessages = res.Stats.MaxRoundMessages
	out.Bandwidth = res.Stats.Bandwidth
	out.PhaseISize = res.PhaseISize
	out.FallbackJoins = res.FallbackJoins
	if res.LeaderSolve != nil {
		out.LeaderPath = res.LeaderSolve.Path
		out.LeaderKernelN = res.LeaderSolve.KernelN
	}

	if job.OracleN > 0 && job.N <= job.OracleN {
		key := oracleKey{
			gen: job.Generator.Key(), n: job.N, power: job.Power,
			seed: job.instanceSeed(), problem: alg.Problem,
		}
		var opt int64
		switch {
		case alg.Exact:
			// The algorithm's own output is the optimum — don't pay the
			// exponential solve a second time, and seed the cache for the
			// other algorithms on this instance.
			opt = oracle.optimum(key, func() int64 { return out.Cost })
		case alg.Problem == ProblemMDS:
			opt = oracle.optimum(key, func() int64 {
				return verify.Cost(power, kernel.DominatingSet(power))
			})
		default:
			opt = oracle.optimum(key, func() int64 {
				return verify.Cost(power, kernel.VertexCover(power))
			})
		}
		out.Optimum = opt
		out.Ratio = verify.RatioOf(out.Cost, opt).Value
	}
}

// run executes one job start to finish: build the instance from the job's
// seed, run the algorithm, verify feasibility on Gʳ, and consult the exact
// oracle when enabled.  Panics anywhere inside are isolated into the
// result's Error field — with a deterministic stack summary — so one bad
// cell cannot take down a sweep. A span-only obs.Collector is attached to
// every job (JobResult.Spans); with a trace directory, a JSONLWriter
// streams the full event feed to job-<index>.jsonl alongside it.
func (x *jobExec) run(ctx context.Context, job Job) (out *JobResult) {
	start := time.Now()
	out = newJobResult(job)

	col := &obs.Collector{}
	var tracer obs.Tracer = col
	var tw *obs.JSONLWriter
	var tf *os.File
	if x.traceDir != "" {
		f, err := os.Create(filepath.Join(x.traceDir, fmt.Sprintf("job-%06d.jsonl", job.Index)))
		if err != nil {
			out.Error = fmt.Sprintf("trace: %v", err)
			return out
		}
		tf, tw = f, obs.NewJSONLWriter(f)
		tracer = obs.Multi{tw, col}
		tw.Emit("job", &job)
	}

	// Finish hook: registered before the panic recovery below, so it runs
	// last and sees the recovered result. It stamps the wall-clock fields,
	// the span summary, and the runtime snapshot, then seals the trace file
	// with a job-end record.
	defer func() {
		out.Elapsed = time.Since(start)
		out.Spans = col.SpanSummary()
		spanMsgs := col.SpanMessages()
		out.GatherMsgs = spanMsgs["phase2-sparsify"] + spanMsgs["phase2-near"] + spanMsgs["phase2-gather"]
		snap := obs.ReadRuntime()
		out.Metrics = &obs.JobMetrics{
			QueueNS:    start.Sub(x.runStart).Nanoseconds(),
			WallNS:     out.Elapsed.Nanoseconds(),
			HeapBytes:  snap.HeapBytes,
			AllocBytes: snap.AllocBytes,
			GCCycles:   snap.GCCycles,
			Goroutines: snap.Goroutines,
		}
		if tw != nil {
			tw.Emit("job-end", struct {
				Error   string          `json:"error,omitempty"`
				Spans   string          `json:"spans,omitempty"`
				Metrics *obs.JobMetrics `json:"metrics"`
			}{out.Error, out.Spans, out.Metrics})
			tw.Close()
			tf.Close()
		}
	}()
	defer func() {
		if rec := recover(); rec != nil {
			*out = *newJobResult(job)
			out.Shards = 0
			out.Error = fmt.Sprintf("panic: %v [%s]", rec, obs.StackSummary(1, 6))
		}
	}()

	rng := rand.New(rand.NewSource(job.instanceSeed()))
	g, err := job.Generator.Build(job.N, rng)
	if err != nil {
		out.Error = err.Error()
		return out
	}

	// Materialize Gʳ once: the centralized baselines run on it, and the
	// feasibility check and oracle below need it either way.
	power := g.Power(job.Power)
	fillSolve(ctx, out, g, power, job, tracer, x.oracle)
	return out
}
