package harness

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// The cross-power differential suite is the acceptance gate of the Gʳ
// generalization: for every distributed registry algorithm and every power
// it claims to support, the solution must
//
//   - be a feasible cover / dominating set of the materialized Gʳ,
//   - stay within the algorithm's oracle-checked approximation bound, and
//   - be identical — solution, rounds, messages, bits — under both
//     simulator engines (the per-power form of the engine differential).
//
// The r = 2 cells additionally stay bit-identical to the pre-generalization
// implementation via core's TestGoldenR2Regression; together the two suites
// pin both axes of the refactor (old-vs-new at r = 2, and correctness at
// every other r).

// powerJob builds one job for the given algorithm, engine, and power with
// seeds derived the way Expand would derive them.
func powerJob(alg, engine string, gen GeneratorSpec, n, r int, eps float64) Job {
	return powerJobSolver(alg, engine, "", gen, n, r, eps)
}

// powerJobSolver is powerJob with an explicit localSolver knob. The solver
// deliberately stays out of seed derivation (like the engine), so jobs that
// differ only in the solver replay the identical run — which is what lets
// the suite assert solver-differential equalities below.
func powerJobSolver(alg, engine, solver string, gen GeneratorSpec, n, r int, eps float64) Job {
	j := Job{
		Generator: gen, N: n, Power: r, Algorithm: alg,
		Epsilon: eps, Engine: engine, Trial: 0, OracleN: n,
		LocalSolver: solver,
	}
	j.Seed = deriveSeed(23, j.cellKey(), 0)
	j.InstanceSeed = deriveSeed(23, j.instanceKey(), 0)
	return j
}

// powerJobGather is powerJob with an explicit gather knob. Like the solver
// and the engine, the gather mode stays out of seed derivation, so the
// legacy and sparsified jobs replay the identical instance and Phase-I run.
func powerJobGather(alg, engine, gather string, gen GeneratorSpec, n, r int, eps float64) Job {
	j := powerJob(alg, engine, gen, n, r, eps)
	j.Gather = gather
	return j
}

// sparsifySpan extracts the "phase2-sparsify*count:rounds" entry from a
// JobResult span summary.
func sparsifySpan(spans string) (count, rounds int, ok bool) {
	for _, e := range strings.Split(spans, ";") {
		var c, rd int
		if n, _ := fmt.Sscanf(e, "phase2-sparsify*%d:%d", &c, &rd); n == 2 {
			return c, rd, true
		}
	}
	return 0, 0, false
}

// powerRatioBound returns the per-run approximation bound asserted for an
// algorithm at power r, given the instance's Gʳ (for degree-dependent MDS
// bounds). The deterministic and randomized MVC variants guarantee (1+ε)
// per run (the randomized ones through the unconditional rank = id
// fallback); the 5/3 pipeline is 5/3 on squares and bounded by its
// matching-fallback factor 2 elsewhere; MDS gets the greedy-style
// 8·H_{Δ(Gʳ)+1} bound of the [CD18] simulation.
func powerRatioBound(t *testing.T, alg string, r int, eps float64, power *graph.Graph) float64 {
	t.Helper()
	switch alg {
	case "mvc-congest", "mvc-congest-rand", "mwvc-congest", "mvc-clique-det", "mvc-clique-rand":
		return 1 + eps
	case "mvc-congest-53":
		if r == 2 {
			return 5.0 / 3
		}
		return 2
	case "mds-congest":
		h := 0.0
		for i := 1; i <= power.MaxDegree()+1; i++ {
			h += 1.0 / float64(i)
		}
		return 8 * h
	default:
		t.Fatalf("no ratio bound registered for algorithm %q", alg)
		return 0
	}
}

// TestCrossPowerDifferentialSuite sweeps every distributed algorithm over
// every supported power on unweighted and weighted instances, under both
// engines.
func TestCrossPowerDifferentialSuite(t *testing.T) {
	gens := []GeneratorSpec{
		{Name: "connected-gnp"},
		{Name: "connected-gnp", MaxWeight: 12},
		{Name: "caterpillar", Legs: 3},
	}
	const (
		n   = 15
		eps = 0.5
	)
	for _, info := range AlgorithmInfos() {
		if info.Model == ModelCentralized {
			continue
		}
		t.Run(info.Name, func(t *testing.T) {
			for r := 1; r <= 6; r++ {
				supported := info.SupportsPower(r)
				if wantRange := r >= 1 && r <= 4; supported != wantRange {
					t.Fatalf("SupportsPower(%d) = %v, want %v (distributed algorithms serve r ∈ [1,4])",
						r, supported, wantRange)
				}
				if !supported {
					continue
				}
				for _, gen := range gens {
					jobEps := 0.0
					if info.NeedsEps {
						jobEps = eps
					}
					gor := executeJob(powerJob(info.Name, "goroutine", gen, n, r, jobEps), nil)
					bat := executeJob(powerJob(info.Name, "batch", gen, n, r, jobEps), nil)
					cell := fmt.Sprintf("%s r=%d", gen.Key(), r)
					if gor.Error != "" || bat.Error != "" {
						t.Fatalf("%s: errors: goroutine=%q batch=%q", cell, gor.Error, bat.Error)
					}
					// Engine differential: identical measurements at every r.
					gor.Engine, bat.Engine = "", ""
					gor.Elapsed, bat.Elapsed = 0, 0
					gor.Metrics, bat.Metrics = nil, nil
					if *gor != *bat {
						t.Fatalf("%s: engines diverge:\ngoroutine: %+v\nbatch:     %+v", cell, *gor, *bat)
					}
					// Solver differential: the explicit "kernel-exact" knob
					// must replay the default ("") run identically, and the
					// pinned legacy "exact" solver must agree on everything
					// except the leader-solve report (custom solvers have
					// none) — at this size the ladder's direct path IS the
					// legacy solver.
					ker := executeJob(powerJobSolver(info.Name, "batch", "kernel-exact", gen, n, r, jobEps), nil)
					ker.Engine, ker.Elapsed, ker.Metrics = "", 0, nil
					if *ker != *bat {
						t.Fatalf("%s: kernel-exact knob diverges from the default:\ndefault:      %+v\nkernel-exact: %+v",
							cell, *bat, *ker)
					}
					leg := executeJob(powerJobSolver(info.Name, "batch", "exact", gen, n, r, jobEps), nil)
					leg.Engine, leg.Elapsed, leg.Metrics = "", 0, nil
					ker.LeaderPath, ker.LeaderKernelN = "", 0
					if *leg != *ker {
						t.Fatalf("%s: legacy exact solver diverges from kernel-exact:\nkernel-exact: %+v\nlegacy:       %+v",
							cell, *ker, *leg)
					}
					// Gather differential (r ≠ 2 only; r = 2 has no gather
					// knob): the pinned legacy wire format replays the
					// identical instance and Phase-I run, so the solution
					// must match exactly — only the Phase-II accounting
					// (rounds/messages/bits and the near-U span) may move.
					if r != 2 {
						leg := executeJob(powerJobGather(info.Name, "batch", "legacy", gen, n, r, jobEps), nil)
						if leg.Error != "" {
							t.Fatalf("%s: legacy gather: %s", cell, leg.Error)
						}
						if leg.Cost != bat.Cost || leg.SolutionSize != bat.SolutionSize ||
							leg.Verified != bat.Verified || leg.Optimum != bat.Optimum {
							t.Fatalf("%s: legacy gather changes the solution:\nsparsified: %+v\nlegacy:     %+v",
								cell, *bat, *leg)
						}
						if info.Problem == ProblemMVC {
							// Per-r round bound of the sparsified near-U
							// labeling: exactly SparsifyRounds(r) label
							// rounds; the end mark lands in the handoff
							// slice shared with the item stage, so the span
							// covers exactly SparsifyRounds(r) rounds.
							cnt, rd, ok := sparsifySpan(bat.Spans)
							if !ok {
								t.Fatalf("%s: no phase2-sparsify span in %q", cell, bat.Spans)
							}
							if want := primitives.SparsifyRounds(r); cnt != 1 || rd != want {
								t.Fatalf("%s: phase2-sparsify span *%d:%d, want *1:%d", cell, cnt, rd, want)
							}
							if _, _, ok := sparsifySpan(leg.Spans); ok {
								t.Fatalf("%s: legacy gather emitted a phase2-sparsify span: %q", cell, leg.Spans)
							}
						} else {
							// MDS has no power gather: the knob must be
							// fully inert.
							leg2 := *leg
							leg2.Gather, leg2.Engine, leg2.Elapsed, leg2.Metrics = "", "", 0, nil
							if leg2 != *bat {
								t.Fatalf("%s: gather knob perturbed the gather-free MDS run:\ndefault: %+v\nlegacy:  %+v",
									cell, *bat, leg2)
							}
						}
						// Sharding the batch sweep must not change any
						// sparsified measurement (the candidate flood and
						// certificate exchange under the shard barrier).
						shJob := powerJob(info.Name, "batch", gen, n, r, jobEps)
						shJob.Shards = 3
						sh := executeJob(shJob, nil)
						sh.Engine, sh.Shards, sh.Elapsed, sh.Metrics = "", 0, 0, nil
						if *sh != *bat {
							t.Fatalf("%s: sharded run diverges:\nsequential: %+v\nsharded:    %+v", cell, *bat, *sh)
						}
					}
					// Feasibility on the materialized Gʳ.
					if !gor.Verified {
						t.Fatalf("%s: solution is not feasible on G^%d", cell, r)
					}
					// Oracle-checked approximation bound.
					if gor.Optimum < 0 {
						t.Fatalf("%s: oracle did not run", cell)
					}
					power := buildPowerInstance(t, gen, n, r, gor.InstanceSeed)
					bound := powerRatioBound(t, info.Name, r, eps, power)
					if gor.Optimum == 0 {
						if gor.Cost != 0 {
							t.Fatalf("%s: OPT=0 but cost=%d", cell, gor.Cost)
						}
					} else if gor.Ratio > bound+1e-9 {
						t.Fatalf("%s: ratio %.4f (cost %d / opt %d) exceeds bound %.4f",
							cell, gor.Ratio, gor.Cost, gor.Optimum, bound)
					}
				}
			}
		})
	}
}

// buildPowerInstance rebuilds the job's materialized Gʳ (the differential
// suite needs its max degree for the MDS bound).
func buildPowerInstance(t *testing.T, gen GeneratorSpec, n, r int, instanceSeed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Build(n, rand.New(rand.NewSource(instanceSeed)))
	if err != nil {
		t.Fatal(err)
	}
	return g.Power(r)
}

// TestCrossPowerSolutionsTrackPower pins the semantic of the power axis on
// a closed form: on the path Pₙ the optimal Gʳ cover is n − ⌈n/(r+1)⌉
// (complement of the maximum distance-(r+1) independent set), strictly
// growing in r — four distinct optima prove the whole pipeline, oracle
// included, actually targets Gʳ rather than a fixed power.
func TestCrossPowerSolutionsTrackPower(t *testing.T) {
	gen := GeneratorSpec{Name: "path"}
	opts := make(map[int]int64)
	for _, r := range []int{1, 2, 3, 4} {
		res := executeJob(powerJob("mvc-congest", "batch", gen, 13, r, 0.5), nil)
		if res.Error != "" {
			t.Fatalf("r=%d: %s", r, res.Error)
		}
		if !res.Verified {
			t.Fatalf("r=%d: infeasible", r)
		}
		opts[r] = res.Optimum
	}
	// On P₁₃: opt(G¹)=6, opt(G²)=8, opt(G³)=9, opt(G⁴)=10 — all distinct.
	want := map[int]int64{1: 6, 2: 8, 3: 9, 4: 10}
	for r, w := range want {
		if opts[r] != w {
			t.Errorf("path n=13 r=%d: oracle optimum %d, want %d", r, opts[r], w)
		}
	}
}

// TestPowerSweepSpecCrossPower is the spec-level acceptance test: the
// checked-in specs/power-sweep.json must exercise at least three distributed
// algorithms at r ∈ {1, 2, 3, 4} under both engines, with every job feasible
// and every oracle-checked distributed MVC job within its ratio bound.
func TestPowerSweepSpecCrossPower(t *testing.T) {
	if testing.Short() {
		t.Skip("full spec sweep in -short mode")
	}
	spec, err := LoadSpec("../../specs/power-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(t.Context(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		for _, r := range rep.Results {
			if r.Error != "" {
				t.Errorf("%s n=%d r=%d eng=%s: %s", r.Algorithm, r.N, r.Power, r.Engine, r.Error)
			}
		}
		t.Fatalf("%d jobs failed", rep.Failed)
	}
	distAlgs := map[string]bool{}
	powers := map[int]bool{}
	engines := map[string]bool{}
	for _, r := range rep.Results {
		if !r.Verified {
			t.Errorf("%s n=%d r=%d eng=%s: infeasible on Gʳ", r.Algorithm, r.N, r.Power, r.Engine)
		}
		if r.Model == ModelCentralized {
			continue
		}
		distAlgs[r.Algorithm] = true
		powers[r.Power] = true
		engines[r.Engine] = true
		if r.Optimum > 0 && r.Problem == ProblemMVC {
			bound := powerRatioBound(t, r.Algorithm, r.Power, maxEps(spec), nil)
			if r.Ratio > bound+1e-9 {
				t.Errorf("%s n=%d r=%d eng=%s: ratio %.4f exceeds %.4f",
					r.Algorithm, r.N, r.Power, r.Engine, r.Ratio, bound)
			}
		}
	}
	if len(distAlgs) < 3 {
		t.Errorf("power-sweep exercises %d distributed algorithms, want ≥ 3 (%v)", len(distAlgs), distAlgs)
	}
	for _, r := range []int{1, 2, 3, 4} {
		if !powers[r] {
			t.Errorf("power-sweep has no distributed jobs at r=%d", r)
		}
	}
	for _, e := range []string{"goroutine", "batch"} {
		if !engines[e] {
			t.Errorf("power-sweep has no distributed jobs under the %s engine", e)
		}
	}
}

// maxEps returns the largest ε of the spec's grid (the loosest bound any of
// its (1+ε) jobs is entitled to).
func maxEps(s *Spec) float64 {
	m := 0.0
	for _, e := range s.epsilons() {
		m = math.Max(m, e)
	}
	return m
}
