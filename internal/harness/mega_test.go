package harness

import (
	"os"
	"testing"
)

// megaGolden pins the summary of the mega sweep's seeded 100k-vertex MDS
// cell (specs/mega-sweep.json, rootSeed 20: connected-gnm n=100000 r=2
// mds-congest, batch engine, trial 0).  The values were produced by
// `make sweep-mega` and are shard-independent by the determinism
// contract — the test runs the cell at 8 shards and must reproduce the
// shards=1 sweep row bit for bit.
const (
	megaGoldenCost         = int64(4287)
	megaGoldenSolutionSize = 4287
	megaGoldenRounds       = 83952
	megaGoldenMessages     = int64(1_595_049_091)
	megaGoldenTotalBits    = int64(39_227_288_980)
	megaGoldenSpans        = "mds-estimate*396:40392;mds-phase*396:83952;mds-votes*396:40392"
)

// TestMegaGoldenSummary replays the mega sweep's 100k MDS job exactly —
// same seed derivation as Spec.Expand under rootSeed 20 — and asserts
// the golden run summary.  A drift in rounds, messages, bits, solution,
// or span structure here means the checked-in BENCH_mega.json no longer
// describes the code.  Gated behind MEGA_SMOKE (the cell runs the full
// w.h.p. MDS phase budget, ~10 minutes on one core); run via
// `make sweep-mega-smoke`.
func TestMegaGoldenSummary(t *testing.T) {
	if os.Getenv("MEGA_SMOKE") == "" {
		t.Skip("golden 100k MDS cell: ~10 minutes; run via make sweep-mega-smoke")
	}
	j := Job{
		Generator: GeneratorSpec{Name: "connected-gnm"},
		N:         100_000,
		Power:     2,
		Algorithm: "mds-congest",
		Epsilon:   0,
		Engine:    "batch",
		Trial:     0,
		Shards:    8,
	}
	j.Seed = deriveSeed(20, j.cellKey(), 0)
	j.InstanceSeed = deriveSeed(20, j.instanceKey(), 0)
	res := executeJob(j, nil)
	if res.Error != "" {
		t.Fatalf("job failed: %s", res.Error)
	}
	if !res.Verified {
		t.Fatal("solution failed feasibility verification on G²")
	}
	if res.Cost != megaGoldenCost || res.SolutionSize != megaGoldenSolutionSize {
		t.Errorf("solution drifted: cost=%d size=%d, golden cost=%d size=%d",
			res.Cost, res.SolutionSize, megaGoldenCost, megaGoldenSolutionSize)
	}
	if res.Rounds != megaGoldenRounds {
		t.Errorf("rounds = %d, golden %d", res.Rounds, megaGoldenRounds)
	}
	if res.Messages != megaGoldenMessages || res.TotalBits != megaGoldenTotalBits {
		t.Errorf("traffic drifted: messages=%d bits=%d, golden messages=%d bits=%d",
			res.Messages, res.TotalBits, megaGoldenMessages, megaGoldenTotalBits)
	}
	if res.Spans != megaGoldenSpans {
		t.Errorf("span summary drifted:\n got: %s\nwant: %s", res.Spans, megaGoldenSpans)
	}
}
