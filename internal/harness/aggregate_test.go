package harness

import (
	"math"
	"testing"
)

func TestAggregateGroupsAndStats(t *testing.T) {
	gen := GeneratorSpec{Name: "path"}
	mk := func(idx, trial, rounds int, cost, opt int64, errStr string) JobResult {
		r := JobResult{
			Index: idx, Generator: gen, N: 8, Power: 2,
			Algorithm: "mvc-congest", Model: ModelCongest, Problem: ProblemMVC,
			Epsilon: 0.5, Trial: trial,
			Cost: cost, Rounds: rounds, Verified: errStr == "",
			Optimum: opt, Error: errStr,
		}
		if opt >= 0 && errStr == "" {
			r.Ratio = float64(cost) / float64(opt)
		}
		return r
	}
	results := []JobResult{
		mk(0, 0, 10, 4, 4, ""),
		mk(1, 1, 20, 6, 4, ""),
		mk(2, 2, 30, 5, -1, ""), // no oracle for this trial
		mk(3, 3, 0, 0, -1, "boom"),
		{Index: 4, Generator: gen, N: 16, Power: 2, Algorithm: "mvc-congest",
			Epsilon: 0.5, Cost: 9, Rounds: 40, Verified: true, Optimum: -1},
	}
	cells := Aggregate(results)
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	c := cells[0]
	if c.N != 8 || c.Trials != 4 || c.Errors != 1 || c.Verified != 3 {
		t.Fatalf("cell 0 counts wrong: %+v", c)
	}
	if c.OracleTrials != 2 {
		t.Fatalf("oracle trials = %d, want 2", c.OracleTrials)
	}
	if got, want := c.Rounds.Mean, 20.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("rounds mean = %v, want %v", got, want)
	}
	if got, want := c.Rounds.P50, 20.0; got != want {
		t.Fatalf("rounds p50 = %v, want %v", got, want)
	}
	if got, want := c.Rounds.P95, 30.0; got != want {
		t.Fatalf("rounds p95 = %v, want %v", got, want)
	}
	if got, want := c.Rounds.Max, 30.0; got != want {
		t.Fatalf("rounds max = %v, want %v", got, want)
	}
	if got, want := c.Ratio.Mean, (1.0+1.5)/2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ratio mean = %v, want %v", got, want)
	}
	// Second cell (n=16) keeps first-appearance ordering.
	if cells[1].N != 16 || cells[1].Trials != 1 {
		t.Fatalf("cell 1 wrong: %+v", cells[1])
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(xs, 0.5); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(xs, 0.95); got != 10 {
		t.Fatalf("p95 = %v", got)
	}
	if got := percentile(xs[:1], 0.95); got != 1 {
		t.Fatalf("p95 of singleton = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	spec := testSpec()
	rep := &Report{
		Spec:      spec,
		Results:   []JobResult{{Index: 0}},
		Completed: 1,
	}
	s := rep.Summarize()
	if s.Name != spec.Name || s.RootSeed != spec.RootSeed || s.Jobs != 1 || s.Completed != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
}
