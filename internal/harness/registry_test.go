package harness

import (
	"testing"

	"powergraph/internal/congest"
)

// TestRegistryRunsNativelyOnBatchEngine proves the "zero coroutine
// adaptations" claim: every distributed registry algorithm is flagged
// NativeStep, and actually running each one on the batch engine never trips
// the blocking-handler coroutine adapter (congest.AdapterRuns stays flat).
func TestRegistryRunsNativelyOnBatchEngine(t *testing.T) {
	before := congest.AdapterRuns()
	for _, info := range AlgorithmInfos() {
		if info.Model == ModelCentralized {
			if info.NativeStep {
				t.Errorf("%s: centralized entry flagged NativeStep", info.Name)
			}
			continue
		}
		if !info.NativeStep {
			t.Errorf("%s: distributed entry not flagged NativeStep", info.Name)
		}
		for _, n := range []int{9, 20} {
			res := executeJob(differentialJob(info.Name, "batch", n, 0.5), nil)
			if res.Error != "" {
				t.Fatalf("%s n=%d: %s", info.Name, n, res.Error)
			}
		}
	}
	if after := congest.AdapterRuns(); after != before {
		t.Fatalf("batch runs used the coroutine adapter %d times; registry algorithms must step natively", after-before)
	}
}

// TestRegistryDescriptions keeps the powerbench -list output complete: every
// algorithm and generator carries a one-line description.
func TestRegistryDescriptions(t *testing.T) {
	for _, info := range AlgorithmInfos() {
		if info.Description == "" {
			t.Errorf("algorithm %s has no description", info.Name)
		}
	}
	for _, g := range GeneratorNames() {
		if GeneratorDescription(g) == "" {
			t.Errorf("generator %s has no description", g)
		}
	}
}

// TestOracleCacheSolvesOncePerInstance pins the oracle-cache contract under
// the widest sharing the harness produces: multiple algorithms, both
// engines, and the full power axis in one sweep still trigger exactly one
// exact solve per (generator, n, power, instance-seed, problem) tuple — the
// Gʳ cells (power ≠ 2) are cache cells of their own, never conflated with
// the r = 2 solves of the same instance seed.
func TestOracleCacheSolvesOncePerInstance(t *testing.T) {
	spec := &Spec{
		Name:       "oracle-count",
		RootSeed:   9,
		Trials:     2,
		Generators: []GeneratorSpec{{Name: "connected-gnp"}},
		Sizes:      []int{12, 16},
		Powers:     []int{1, 2, 3},
		Algorithms: []string{"mvc-congest", "mwvc-congest", "mds-congest", "gavril", "exact", "exact-mds"},
		// Both engines double every distributed job without changing the
		// instance set — the cache must not solve anything twice for it.
		EngineModes: []string{"goroutine", "batch"},
		OracleN:     16,
	}
	jobs, _, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cache := newOracleCache()
	distinct := map[oracleKey]bool{}
	powerCells := map[int]int{}
	for _, job := range jobs {
		alg, ok := lookupAlgorithm(job.Algorithm)
		if !ok {
			t.Fatalf("unknown algorithm %q", job.Algorithm)
		}
		key := oracleKey{
			gen: job.Generator.Key(), n: job.N, power: job.Power,
			seed: job.instanceSeed(), problem: alg.Problem,
		}
		if !distinct[key] {
			distinct[key] = true
			powerCells[job.Power]++
		}
		if res := executeJob(job, cache); res.Error != "" {
			t.Fatalf("job %d (%s): %s", job.Index, job.Algorithm, res.Error)
		}
	}
	// 2 sizes × 2 trials × 2 problems (mvc, mds) per power, 3 powers = 24
	// distinct instances.
	if want := 24; len(distinct) != want {
		t.Fatalf("expanded to %d distinct oracle keys, want %d", len(distinct), want)
	}
	for _, r := range []int{1, 2, 3} {
		if want := 8; powerCells[r] != want {
			t.Errorf("power r=%d contributed %d oracle cells, want %d", r, powerCells[r], want)
		}
	}
	if got := cache.solves.Load(); got != int64(len(distinct)) {
		t.Fatalf("oracle solved %d times for %d distinct instances", got, len(distinct))
	}
	if got := len(cache.m); got != len(distinct) {
		t.Fatalf("cache holds %d entries for %d distinct instances", got, len(distinct))
	}
}
