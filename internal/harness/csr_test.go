package harness

import (
	"math/rand"
	"testing"

	"powergraph/internal/graph"
)

// csrReference rebuilds an adjacency-map view of g straight from the raw CSR
// arrays, verifying the representation invariants on the way: indptr is a
// monotone length-(n+1) prefix array covering indices exactly, every row is
// strictly increasing (sorted, no duplicate neighbors), self-loop free, and
// symmetric. The returned map is the ground truth the accessor checks
// compare against.
func csrReference(t *testing.T, g *graph.Graph) map[int]map[int]bool {
	t.Helper()
	n := g.N()
	indptr, indices := g.IndPtr(), g.Indices()
	if len(indptr) != n+1 || indptr[0] != 0 || int(indptr[n]) != len(indices) {
		t.Fatalf("indptr shape: len=%d first=%d last=%d indices=%d",
			len(indptr), indptr[0], indptr[n], len(indices))
	}
	if len(indices) != 2*g.M() {
		t.Fatalf("indices holds %d entries for m=%d", len(indices), g.M())
	}
	adj := make(map[int]map[int]bool, n)
	for v := 0; v < n; v++ {
		lo, hi := indptr[v], indptr[v+1]
		if lo > hi {
			t.Fatalf("indptr not monotone at %d: %d > %d", v, lo, hi)
		}
		row := indices[lo:hi]
		set := make(map[int]bool, len(row))
		for i, u := range row {
			if int(u) < 0 || int(u) >= n || int(u) == v {
				t.Fatalf("row %d: bad neighbor %d", v, u)
			}
			if i > 0 && row[i-1] >= u {
				t.Fatalf("row %d not strictly increasing: %v", v, row)
			}
			set[int(u)] = true
		}
		adj[v] = set
	}
	for v, set := range adj {
		for u := range set {
			if !adj[u][v] {
				t.Fatalf("asymmetric edge {%d,%d}", v, u)
			}
		}
	}
	return adj
}

// checkCSRAccessors verifies every neighbor-access surface of g — Adj,
// Neighbors, Degree, NeighborRange, AdjRow, HasEdge, MaxDegree, Edges,
// Weight — against the reference adjacency map.
func checkCSRAccessors(t *testing.T, g *graph.Graph, rng *rand.Rand) {
	t.Helper()
	adj := csrReference(t, g)
	n := g.N()
	maxDeg, edges := 0, 0
	for v := 0; v < n; v++ {
		row := g.Adj(v)
		deg := g.Degree(v)
		if deg != len(adj[v]) || deg != len(row) {
			t.Fatalf("Degree(%d) = %d, row len %d, want %d", v, deg, len(row), len(adj[v]))
		}
		if deg > maxDeg {
			maxDeg = deg
		}
		edges += len(row)
		lo, hi := g.NeighborRange(v)
		if int(hi-lo) != len(row) {
			t.Fatalf("NeighborRange(%d) spans %d, Adj has %d", v, hi-lo, len(row))
		}
		rowSet := g.AdjRow(v)
		for i, u := range row {
			if !adj[v][u] {
				t.Fatalf("Adj(%d) holds non-neighbor %d", v, u)
			}
			if int(g.Indices()[int(lo)+i]) != u {
				t.Fatalf("Indices row of %d diverges from Adj at %d", v, i)
			}
			if !rowSet.Contains(u) {
				t.Fatalf("AdjRow(%d) missing %d", v, u)
			}
		}
		if rowSet.Count() != len(row) {
			t.Fatalf("AdjRow(%d) holds %d bits for %d neighbors", v, rowSet.Count(), len(row))
		}
		cp := g.Neighbors(v)
		for i, u := range cp {
			if row[i] != u {
				t.Fatalf("Neighbors(%d) diverges from Adj", v)
			}
		}
	}
	if g.MaxDegree() != maxDeg || edges != 2*g.M() {
		t.Fatalf("MaxDegree=%d (want %d), degree sum %d for m=%d",
			g.MaxDegree(), maxDeg, edges, g.M())
	}
	for _, e := range g.Edges() {
		if !adj[e[0]][e[1]] || e[0] >= e[1] {
			t.Fatalf("Edges() emitted bad pair %v", e)
		}
	}
	// HasEdge: exhaustive on small graphs, sampled plus every real edge on
	// large ones (so both present and absent probes are covered either way).
	probe := func(u, v int) {
		if g.HasEdge(u, v) != adj[u][v] || g.HasEdge(v, u) != adj[u][v] {
			t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, g.HasEdge(u, v), adj[u][v])
		}
	}
	if n <= 260 {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				probe(u, v)
			}
		}
	} else {
		for i := 0; i < 4000; i++ {
			probe(rng.Intn(n), rng.Intn(n))
		}
		for _, e := range g.Edges() {
			probe(e[0], e[1])
		}
	}
	var total int64
	for v := 0; v < n; v++ {
		w := g.Weight(v)
		if w <= 0 {
			t.Fatalf("non-positive weight %d at %d", w, v)
		}
		if !g.Weighted() && w != 1 {
			t.Fatalf("unweighted graph reports weight %d at %d", w, v)
		}
		total += w
	}
	if total != g.TotalWeight() {
		t.Fatalf("TotalWeight = %d, sum of Weight = %d", g.TotalWeight(), total)
	}
}

// TestCSRMatchesAdjacency is the flat-core differential: for every registry
// generator across sizes up to 5000 and random seeds (plus graphs past the
// bitset-row cutoff, where HasEdge switches to binary search), the CSR
// arrays must describe a simple symmetric sorted adjacency and every
// accessor must agree with it — including after Builder edge-dedup and
// weight overlays.
func TestCSRMatchesAdjacency(t *testing.T) {
	big := map[string]bool{
		"path": true, "cycle": true, "star": true, "grid": true,
		"random-tree": true, "gnm": true, "connected-gnm": true,
		"gnp": true, "connected-gnp": true,
	}
	for _, name := range GeneratorNames() {
		t.Run(name, func(t *testing.T) {
			sizes := []int{3, 4, 29, 240}
			if big[name] {
				sizes = append(sizes, 1201, 5000)
			}
			for _, n := range sizes {
				for seed := int64(0); seed < 2; seed++ {
					spec := GeneratorSpec{Name: name}
					if seed == 1 {
						spec.MaxWeight = 50 // exercise the weight overlay
					}
					rng := rand.New(rand.NewSource(seed*7919 + int64(n)))
					g, err := spec.Build(n, rng)
					if err != nil {
						t.Fatalf("n=%d seed=%d: %v", n, seed, err)
					}
					checkCSRAccessors(t, g, rng)
				}
			}
		})
	}

	// Past the bitset-row cutoff (n > 1<<14) AdjRow materializes on demand
	// and HasEdge binary-searches the smaller CSR row; same contract.
	t.Run("beyond-rows-cutoff", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		checkCSRAccessors(t, graph.GNM(20000, 60000, rng), rng)
		checkCSRAccessors(t, graph.Star(17000), rng)
	})

	// Builder dedup: AddEdgeIfAbsent tolerates duplicates without double
	// edges, AddEdge rejects them loudly, and the built CSR matches the
	// deduplicated ground truth exactly.
	t.Run("builder-dedup", func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		const n = 700
		b := graph.NewBuilder(n)
		truth := map[[2]int]bool{}
		for i := 0; i < 4000; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			added, err := b.AddEdgeIfAbsent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if added == truth[[2]int{u, v}] {
				t.Fatalf("AddEdgeIfAbsent({%d,%d}) = %v on duplicate=%v",
					u, v, added, truth[[2]int{u, v}])
			}
			if truth[[2]int{u, v}] {
				if err := b.AddEdge(u, v); err == nil {
					t.Fatalf("AddEdge accepted duplicate {%d,%d}", u, v)
				}
			}
			truth[[2]int{u, v}] = true
		}
		for v := 0; v < n; v++ {
			b.SetWeight(v, int64(1+v%9))
		}
		g := b.Build()
		if g.M() != len(truth) {
			t.Fatalf("built m=%d, ground truth has %d edges", g.M(), len(truth))
		}
		adj := csrReference(t, g)
		for e := range truth {
			if !adj[e[0]][e[1]] {
				t.Fatalf("edge %v lost in Build", e)
			}
		}
		for v := 0; v < n; v++ {
			if g.Weight(v) != int64(1+v%9) {
				t.Fatalf("weight of %d = %d", v, g.Weight(v))
			}
		}
		checkCSRAccessors(t, g, rng)
	})
}
