package harness

import "testing"

// TestLocalSolverRegistryInSync keeps the listing registry and the parser in
// step: every listed solver must parse, every solver must carry a
// description, and unknown names must fail loudly.
func TestLocalSolverRegistryInSync(t *testing.T) {
	infos := LocalSolverInfos()
	if len(infos) == 0 {
		t.Fatal("no local solvers registered")
	}
	for _, s := range infos {
		if _, err := parseLocalSolver(s.Name); err != nil {
			t.Errorf("listed solver %q does not parse: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("solver %q has no description", s.Name)
		}
	}
	if infos[0].Name != "kernel-exact" {
		t.Errorf("the default (kernel-exact) must lead the listing, got %q", infos[0].Name)
	}
	if _, err := parseLocalSolver(""); err != nil {
		t.Errorf("empty solver name must select the default: %v", err)
	}
	if _, err := parseLocalSolver("no-such-solver"); err == nil {
		t.Error("unknown solver name must be rejected")
	}
}
