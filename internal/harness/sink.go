package harness

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Sink receives results in job-index order.  Implementations need not be
// concurrency-safe: the runner writes from a single collector goroutine.
type Sink interface {
	Write(*JobResult) error
	// Close flushes buffered output.  The runner does NOT close sinks —
	// the caller that opened the underlying files does, so sinks compose
	// with MultiWriter-style setups and partial flushes under cancellation.
	Close() error
}

// JSONLSink streams one JSON object per result per line.  Output is a pure
// function of the results: identical runs produce byte-identical files.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing JSON Lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Write encodes one result as a single line.
func (s *JSONLSink) Write(r *JobResult) error { return s.enc.Encode(r) }

// Close is a no-op: the encoder does not buffer across lines.
func (s *JSONLSink) Close() error { return nil }

// csvHeader is the fixed column order of CSVSink.
var csvHeader = []string{
	"index", "generator", "n", "power", "algorithm", "model", "problem",
	"epsilon", "engine", "gather", "trial", "seed", "instanceSeed", "cost",
	"solutionSize", "verified", "optimum", "ratio", "rounds", "messages",
	"totalBits", "maxRoundBits", "maxRoundMessages", "bandwidth",
	"phaseISize", "fallbackJoins", "leaderPath", "leaderKernelN", "spans",
	"gatherMsgs", "error",
}

// CSVSink streams results as CSV with a fixed header row.
type CSVSink struct {
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVSink returns a sink writing CSV to w; the header is emitted with
// the first record so an empty run produces an empty file.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Write appends one CSV record.
func (s *CSVSink) Write(r *JobResult) error {
	if !s.wroteHeader {
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
		s.wroteHeader = true
	}
	rec := []string{
		strconv.Itoa(r.Index),
		r.Generator.Key(),
		strconv.Itoa(r.N),
		strconv.Itoa(r.Power),
		r.Algorithm,
		r.Model,
		r.Problem,
		formatFloat(r.Epsilon),
		r.Engine,
		r.Gather,
		strconv.Itoa(r.Trial),
		strconv.FormatInt(r.Seed, 10),
		strconv.FormatInt(r.InstanceSeed, 10),
		strconv.FormatInt(r.Cost, 10),
		strconv.Itoa(r.SolutionSize),
		strconv.FormatBool(r.Verified),
		strconv.FormatInt(r.Optimum, 10),
		formatFloat(r.Ratio),
		strconv.Itoa(r.Rounds),
		strconv.FormatInt(r.Messages, 10),
		strconv.FormatInt(r.TotalBits, 10),
		strconv.FormatInt(r.MaxRoundBits, 10),
		strconv.FormatInt(r.MaxRoundMessages, 10),
		strconv.Itoa(r.Bandwidth),
		strconv.Itoa(r.PhaseISize),
		strconv.Itoa(r.FallbackJoins),
		r.LeaderPath,
		strconv.Itoa(r.LeaderKernelN),
		r.Spans,
		strconv.FormatInt(r.GatherMsgs, 10),
		r.Error,
	}
	if err := s.w.Write(rec); err != nil {
		return err
	}
	// Flush per record so cancellation mid-run leaves complete rows behind.
	s.w.Flush()
	return s.w.Error()
}

// Close flushes any buffered records.
func (s *CSVSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// MultiSink fans every result out to the given sinks in order.
type MultiSink []Sink

// Write forwards to each sink, stopping at the first error.
func (m MultiSink) Write(r *JobResult) error {
	for _, s := range m {
		if err := s.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every sink and returns the first error.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
