package harness

import (
	"bytes"
	"context"
	"errors"
	"encoding/json"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"powergraph/internal/core"
	"powergraph/internal/graph"
	"powergraph/internal/obs"
)

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// runToJSONL executes the spec with the given worker count and returns the
// JSONL bytes plus the report.
func runToJSONL(t *testing.T, spec *Spec, workers int) ([]byte, *Report) {
	t.Helper()
	var buf bytes.Buffer
	rep, err := Run(context.Background(), spec, RunOptions{
		Workers: workers,
		Sinks:   []Sink{NewJSONLSink(&buf)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestDeterminismAcrossWorkerCounts is the harness's core contract: the same
// root seed yields byte-identical JSONL whether the sweep runs serially or
// across GOMAXPROCS workers, and across repeated runs.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	spec := testSpec()
	serial, repSerial := runToJSONL(t, spec, 1)
	again, _ := runToJSONL(t, spec, 1)
	parallel, repPar := runToJSONL(t, spec, runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, again) {
		t.Fatal("two serial runs with the same root seed differ")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serial and parallel output differ:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if repSerial.Failed != 0 || repPar.Failed != 0 {
		t.Fatalf("unexpected failures: serial=%d parallel=%d", repSerial.Failed, repPar.Failed)
	}
	if len(serial) == 0 {
		t.Fatal("no output produced")
	}
	// A different root seed must actually change the stream.
	other := testSpec()
	other.RootSeed = spec.RootSeed + 1
	otherOut, _ := runToJSONL(t, other, 1)
	if bytes.Equal(serial, otherOut) {
		t.Fatal("different root seeds produced identical output")
	}
}

func TestResultsVerifiedAndOracleChecked(t *testing.T) {
	_, rep := runToJSONL(t, testSpec(), 0)
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("job %d failed: %s", r.Index, r.Error)
		}
		if !r.Verified {
			t.Fatalf("job %d (%s on %s n=%d) produced an infeasible solution",
				r.Index, r.Algorithm, r.Generator.Key(), r.N)
		}
		if r.Optimum < 0 {
			t.Fatalf("job %d missing oracle optimum (OracleN=%d, n=%d)", r.Index, testSpec().OracleN, r.N)
		}
		if r.Ratio < 1-1e-9 {
			t.Fatalf("job %d reports ratio %v < 1 vs exact optimum", r.Index, r.Ratio)
		}
		if r.Algorithm == "mvc-congest" && r.Ratio > 1.5+1e-9 {
			t.Fatalf("job %d: (1+ε)=1.5 guarantee violated: ratio %v", r.Index, r.Ratio)
		}
		if r.Algorithm == "gavril" && r.Ratio > 2+1e-9 {
			t.Fatalf("job %d: Gavril 2-approx guarantee violated: ratio %v", r.Index, r.Ratio)
		}
	}
}

// TestCancellationFlushesPartialResults cancels mid-run and checks that the
// run returns context.Canceled with a clean, ordered partial result set
// flushed to the sink.
func TestCancellationFlushesPartialResults(t *testing.T) {
	spec := testSpec()
	spec.Trials = 4 // enough jobs to still be running at cancel time
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	stopAfter := 3
	rep, err := Run(ctx, spec, RunOptions{
		Workers: 2,
		Sinks:   []Sink{NewJSONLSink(&buf)},
		OnProgress: func(p Progress) {
			if p.Done == stopAfter {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled run must still return its partial report")
	}
	if len(rep.Results) < stopAfter {
		t.Fatalf("flushed %d results, want at least %d", len(rep.Results), stopAfter)
	}
	jobs, _, _ := spec.Expand()
	if len(rep.Results) == len(jobs) {
		t.Fatalf("cancellation had no effect: all %d jobs completed", len(jobs))
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rep.Results) {
		t.Fatalf("sink saw %d lines, report has %d results", len(lines), len(rep.Results))
	}
	for i := 1; i < len(rep.Results); i++ {
		if rep.Results[i].Index <= rep.Results[i-1].Index {
			t.Fatalf("partial results not in ascending index order: %d after %d",
				rep.Results[i].Index, rep.Results[i-1].Index)
		}
	}
}

// TestPanicIsolation registers a deliberately panicking algorithm and checks
// that the failure is contained in its own JobResult while every other job
// still completes.
func TestPanicIsolation(t *testing.T) {
	algorithms["test-panic"] = &Algorithm{
		Name: "test-panic", Model: ModelCentralized, Problem: ProblemMVC,
		Run: func(context.Context, *graph.Graph, *graph.Graph, Job, obs.Tracer) (*core.Result, error) {
			panic("boom")
		},
	}
	defer delete(algorithms, "test-panic")

	spec := testSpec()
	spec.Algorithms = []string{"test-panic", "gavril"}
	spec.Trials = 1
	_, rep := runToJSONL(t, spec, 0)
	var panics, clean int
	for _, r := range rep.Results {
		switch r.Algorithm {
		case "test-panic":
			if !strings.Contains(r.Error, "panic: boom") {
				t.Fatalf("panic not captured: %+v", r)
			}
			panics++
		default:
			if r.Error != "" {
				t.Fatalf("healthy job poisoned: %+v", r)
			}
			clean++
		}
	}
	if panics == 0 || clean == 0 {
		t.Fatalf("want both panicking and clean jobs, got %d/%d", panics, clean)
	}
	if rep.Failed != panics || rep.Completed != clean {
		t.Fatalf("report counts wrong: %+v", rep)
	}
}

// TestRunJobsPinnedSeeds checks the preset path: explicit jobs with
// hand-picked seeds run exactly as the same call made directly.
func TestRunJobsPinnedSeeds(t *testing.T) {
	job := Job{
		Index:     0,
		Generator: GeneratorSpec{Name: "connected-gnp"},
		N:         24, Power: 2,
		Algorithm: "mvc-congest", Epsilon: 0.5,
		Seed: 42, OracleN: 24,
	}
	rep, err := RunJobs(context.Background(), []Job{job}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	// Reproduce by hand with the same seed discipline.
	rng := newTestRng(42)
	g, _ := job.Generator.Build(24, rng)
	res, err := core.ApproxMVCCongest(g, 0.5, &core.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(res.Solution.Count()); got != r.Cost {
		t.Fatalf("harness cost %d != direct run cost %d", r.Cost, got)
	}
	if res.Stats.Rounds != r.Rounds {
		t.Fatalf("harness rounds %d != direct rounds %d", r.Rounds, res.Stats.Rounds)
	}
}

// TestRunJobsEmitsInIndexOrder hands RunJobs a shuffled job slice and
// checks emission follows Job.Index, not slice position.
func TestRunJobsEmitsInIndexOrder(t *testing.T) {
	mk := func(idx, n int) Job {
		return Job{Index: idx, Generator: GeneratorSpec{Name: "path"}, N: n,
			Power: 2, Algorithm: "gavril", Seed: int64(idx)}
	}
	jobs := []Job{mk(2, 8), mk(0, 10), mk(1, 12)}
	rep, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rep.Results {
		if r.Index != i {
			t.Fatalf("emission position %d got index %d; want ascending Job.Index order", i, r.Index)
		}
	}
	if rep.Results[0].N != 10 || rep.Results[2].N != 8 {
		t.Fatalf("results not matched to their jobs: %+v", rep.Results)
	}
	dup := []Job{mk(1, 8), mk(1, 10)}
	if _, err := RunJobs(context.Background(), dup, RunOptions{}); err == nil {
		t.Fatal("expected error for duplicate job indices")
	}
}

func TestSinkErrorAbortsRun(t *testing.T) {
	spec := testSpec()
	_, err := Run(context.Background(), spec, RunOptions{
		Workers: 2,
		Sinks:   []Sink{failSink{}},
	})
	if err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("want sink error, got %v", err)
	}
}

type failSink struct{}

func (failSink) Write(*JobResult) error { return errors.New("disk full") }
func (failSink) Close() error           { return nil }

// TestSolveInstanceMatchesExecuteJob: solving a pre-built instance through
// the serving entry point must serialize byte-for-byte like the sweep path
// building the same instance from the job's seed — the contract that lets
// the server hold graphs resident without perturbing results.
func TestSolveInstanceMatchesExecuteJob(t *testing.T) {
	for _, algName := range []string{"mvc-congest", "mds-congest", "gavril"} {
		job := Job{
			Generator: GeneratorSpec{Name: "connected-gnp"},
			N:         20, Power: 2,
			Algorithm: algName, Epsilon: 0.5,
			Seed: 404, Engine: "batch", OracleN: 20,
		}
		want := executeJob(job, nil)
		if want.Error != "" {
			t.Fatalf("%s: sweep path failed: %s", algName, want.Error)
		}

		rng := rand.New(rand.NewSource(job.instanceSeed()))
		g, err := job.Generator.Build(job.N, rng)
		if err != nil {
			t.Fatal(err)
		}
		col := &obs.Collector{}
		got := SolveInstance(context.Background(), g, g.Power(job.Power), job, col, NewOracleCache())
		if got.Canceled {
			t.Fatalf("%s: spurious Canceled flag", algName)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("%s: SolveInstance diverged from executeJob:\n sweep: %s\n serve: %s",
				algName, wantJSON, gotJSON)
		}
	}
}

// TestSolveInstanceCanceled: a canceled context aborts a distributed solve
// at the round barrier and flags the result as Canceled (so callers drop it)
// rather than reporting it as an algorithm fault.
func TestSolveInstanceCanceled(t *testing.T) {
	job := Job{
		Generator: GeneratorSpec{Name: "connected-gnp"},
		N:         24, Power: 2,
		Algorithm: "mvc-congest", Epsilon: 0.5,
		Seed: 7, Engine: "batch",
	}
	rng := rand.New(rand.NewSource(job.instanceSeed()))
	g, err := job.Generator.Build(job.N, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := SolveInstance(ctx, g, g.Power(job.Power), job, nil, nil)
	if !res.Canceled {
		t.Fatalf("want Canceled, got error=%q", res.Error)
	}
	if !strings.Contains(res.Error, "canceled") {
		t.Fatalf("error %q does not mention cancellation", res.Error)
	}

	// Centralized baselines have no round barrier: they run to completion
	// regardless of the context, and must not be flagged.
	job.Algorithm = "gavril"
	res = SolveInstance(ctx, g, g.Power(job.Power), job, nil, nil)
	if res.Canceled || res.Error != "" {
		t.Fatalf("centralized solve under canceled ctx: canceled=%v err=%q", res.Canceled, res.Error)
	}
}
