package exact

import (
	"math"
	"sort"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// DominatingSet returns a minimum-weight dominating set of g (minimum
// cardinality when g is unweighted). For the G²-MDS problem callers pass
// g.Square().
func DominatingSet(g *graph.Graph) *bitset.Set {
	s, err := DominatingSetBounded(g, 0)
	if err != nil {
		panic("exact: unreachable: unbounded search returned error")
	}
	return s
}

// DominatingSetCounted is DominatingSet plus the number of branch-and-bound
// nodes the search expanded — the observability counter behind
// kernel.Report.SearchNodes. The returned set is bit-identical with
// DominatingSet's.
func DominatingSetCounted(g *graph.Graph) (*bitset.Set, int64) {
	s, nodes, err := dominatingSetBounded(g, 0)
	if err != nil {
		panic("exact: unreachable: unbounded search returned error")
	}
	return s, nodes
}

// DominatingSetBounded is DominatingSet with a branch-and-bound node budget;
// maxNodes == 0 means unlimited.
func DominatingSetBounded(g *graph.Graph, maxNodes int64) (*bitset.Set, error) {
	s, _, err := dominatingSetBounded(g, maxNodes)
	return s, err
}

func dominatingSetBounded(g *graph.Graph, maxNodes int64) (*bitset.Set, int64, error) {
	n := g.N()
	s := &dsSolver{
		g:        g,
		n:        n,
		closed:   make([]*bitset.Set, n),
		maxNodes: maxNodes,
		bestCost: math.MaxInt64,
	}
	for v := 0; v < n; v++ {
		s.closed[v] = g.ClosedNeighborhood(v)
	}
	// Initial incumbent from the greedy heuristic (always feasible).
	init := GreedyDominatingSet(g)
	s.bestSet = init
	s.bestCost = g.SetWeightOf(init)

	// minWeight feeds the lower bound; zero-weight vertices are committed
	// upfront (below) and never branch, so only positive weights matter.
	s.minWeight = math.MaxInt64
	for v := 0; v < n; v++ {
		if w := g.Weight(v); w > 0 && w < s.minWeight {
			s.minWeight = w
		}
	}
	if s.minWeight == math.MaxInt64 {
		s.minWeight = 0
	}

	dominated := bitset.New(n)
	available := bitset.Full(n)
	cur := bitset.New(n)
	// Zero-weight vertices dominate for free: committing them upfront can
	// only help (the gadget constructions of Section 7 rely on this, cf.
	// Lemma 36's "we can assume A*[3] is in the dominating set because its
	// weight is zero").
	for v := 0; v < n; v++ {
		if g.Weight(v) == 0 {
			cur.Add(v)
			dominated.Or(s.closed[v])
			available.Remove(v)
		}
	}
	if err := s.solve(dominated, available, cur, 0); err != nil {
		return nil, s.nodes, err
	}
	return s.bestSet, s.nodes, nil
}

type dsSolver struct {
	g         *graph.Graph
	n         int
	closed    []*bitset.Set // closed[v] = N[v]
	bestSet   *bitset.Set
	bestCost  int64
	minWeight int64
	nodes     int64
	maxNodes  int64
}

// lowerBound combines two admissible bounds and takes the larger:
//
//   - density: each chosen vertex newly dominates at most maxCover
//     vertices, so ⌈remaining/maxCover⌉·minWeight more weight is needed;
//   - packing: undominated vertices whose available-dominator sets are
//     pairwise disjoint each require a distinct dominator, costing at
//     least the cheapest vertex in their own dominator set. This bound is
//     what makes the Section 7 gadget squares tractable — every dangling
//     path leaf contributes a disjoint {P3,P4,P5} dominator set.
func (s *dsSolver) lowerBound(dominated, available *bitset.Set) int64 {
	remaining := s.n - dominated.Count()
	if remaining == 0 {
		return 0
	}
	maxCover := 0
	for v := available.First(); v != -1; v = available.NextAfter(v) {
		if c := s.closed[v].Count() - s.closed[v].IntersectionCount(dominated); c > maxCover {
			maxCover = c
		}
	}
	if maxCover == 0 {
		return math.MaxInt64 / 4 // infeasible from here
	}
	need := (remaining + maxCover - 1) / maxCover
	density := int64(need) * s.minWeight

	marked := bitset.New(s.n)
	var packing int64
	for v := 0; v < s.n; v++ {
		if dominated.Contains(v) {
			continue
		}
		doms := s.closed[v].Intersect(available)
		if doms.Empty() {
			return math.MaxInt64 / 4
		}
		if doms.Intersects(marked) {
			continue
		}
		cheapest := int64(math.MaxInt64)
		doms.ForEach(func(d int) bool {
			if w := s.g.Weight(d); w < cheapest {
				cheapest = w
			}
			return true
		})
		packing += cheapest
		marked.Or(doms)
	}
	if packing > density {
		return packing
	}
	return density
}

func (s *dsSolver) solve(dominated, available, cur *bitset.Set, cost int64) error {
	s.nodes++
	if s.maxNodes > 0 && s.nodes > s.maxNodes {
		return ErrBudgetExceeded
	}
	if cost >= s.bestCost {
		return nil
	}
	if dominated.Count() == s.n {
		s.bestCost = cost
		s.bestSet = cur.Clone()
		return nil
	}
	if cost+s.lowerBound(dominated, available) >= s.bestCost {
		return nil
	}

	// Branch on the undominated vertex with the fewest available dominators
	// (its closed neighborhood intersected with available): small branching
	// factor, and zero candidates prunes an infeasible subtree immediately.
	pick, pickCount := -1, math.MaxInt32
	for v := 0; v < s.n; v++ {
		if dominated.Contains(v) {
			continue
		}
		c := s.closed[v].IntersectionCount(available)
		if c < pickCount {
			pick, pickCount = v, c
		}
		if c == 0 {
			break
		}
	}
	if pickCount == 0 {
		return nil // the picked vertex can never be dominated on this path
	}

	candidates := s.closed[pick].Intersect(available).Elements()
	// Try high-coverage, low-weight candidates first so the incumbent
	// improves early and pruning bites.
	type cand struct {
		v     int
		gain  int
		score float64
	}
	cs := make([]cand, 0, len(candidates))
	for _, c := range candidates {
		gain := s.closed[c].Count() - s.closed[c].IntersectionCount(dominated)
		cs = append(cs, cand{v: c, gain: gain, score: float64(gain) / float64(s.g.Weight(c))})
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].score > cs[j].score })

	// Inclusion/exclusion branching: child i includes cs[i].v and excludes
	// cs[0..i-1].v, which partitions the solution space without duplicates.
	excluded := make([]int, 0, len(cs))
	for _, c := range cs {
		d := dominated.Union(s.closed[c.v])
		a := available.Clone()
		a.Remove(c.v)
		cur.Add(c.v)
		err := s.solve(d, a, cur, cost+s.g.Weight(c.v))
		cur.Remove(c.v)
		if err != nil {
			return err
		}
		available.Remove(c.v)
		excluded = append(excluded, c.v)
	}
	for _, v := range excluded {
		available.Add(v)
	}
	return nil
}

// GreedyDominatingSet returns the classical greedy dominating set: repeatedly
// take the vertex maximizing newly-dominated-count per unit weight. This is
// the ln(Δ+1)-approximation baseline the paper's Theorem 28 is compared
// against, and the initial incumbent for the exact solver.
func GreedyDominatingSet(g *graph.Graph) *bitset.Set {
	n := g.N()
	dominated := bitset.New(n)
	out := bitset.New(n)
	closed := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		closed[v] = g.ClosedNeighborhood(v)
	}
	for dominated.Count() < n {
		best, bestScore := -1, -1.0
		for v := 0; v < n; v++ {
			if out.Contains(v) {
				continue
			}
			gain := closed[v].Count() - closed[v].IntersectionCount(dominated)
			if gain == 0 {
				continue
			}
			score := float64(gain) / float64(g.Weight(v))
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		if best == -1 {
			break // unreachable for any graph: every undominated v has gain ≥ 1 via itself
		}
		out.Add(best)
		dominated.Or(closed[best])
	}
	return out
}
