package exact

import (
	"fmt"
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// maxBruteN bounds the brute-force solvers: they enumerate all 2^n subsets.
const maxBruteN = 22

// BruteVertexCover finds a minimum-weight vertex cover by enumerating all
// subsets. It panics if g has more than 22 vertices; it exists only to
// validate the branch-and-bound solvers in tests.
func BruteVertexCover(g *graph.Graph) *bitset.Set {
	return bruteMin(g, func(s *bitset.Set) bool {
		for _, e := range g.Edges() {
			if !s.Contains(e[0]) && !s.Contains(e[1]) {
				return false
			}
		}
		return true
	})
}

// BruteDominatingSet finds a minimum-weight dominating set by enumerating
// all subsets; same size restriction as BruteVertexCover.
func BruteDominatingSet(g *graph.Graph) *bitset.Set {
	return bruteMin(g, func(s *bitset.Set) bool {
		for v := 0; v < g.N(); v++ {
			if !s.Contains(v) && !g.AdjRow(v).Intersects(s) {
				return false
			}
		}
		return true
	})
}

func bruteMin(g *graph.Graph, feasible func(*bitset.Set) bool) *bitset.Set {
	n := g.N()
	if n > maxBruteN {
		panic(fmt.Sprintf("exact: brute force limited to %d vertices, got %d", maxBruteN, n))
	}
	var best *bitset.Set
	bestCost := int64(math.MaxInt64)
	s := bitset.New(n)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		s.Clear()
		var cost int64
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				s.Add(v)
				cost += g.Weight(v)
			}
		}
		if cost >= bestCost {
			continue
		}
		if feasible(s) {
			best = s.Clone()
			bestCost = cost
		}
	}
	return best
}
