// Package exact provides exact (optimal) solvers for minimum (weighted)
// vertex cover and minimum (weighted) dominating set, via branch and bound
// over bitsets, plus brute-force reference solvers used to validate them.
//
// The paper's algorithms repeatedly assume an exact oracle: Algorithm 1's
// Phase II has a leader "compute an optimal solution R* of the VC problem on
// H = G²[U]" with unbounded local computation, and every lower-bound lemma
// (Lemmas 21, 24, 34, 40, 43) is a statement about exact optima of gadget
// graphs. These solvers are that oracle. They are tuned for the graph sizes
// that appear in those roles (≈ up to a few hundred vertices for VC with
// small covers, and structured gadget graphs for DS), not for arbitrary
// dense instances.
package exact

import (
	"errors"
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// ErrBudgetExceeded is returned by the bounded solvers when the search
// explores more branch-and-bound nodes than the caller allowed.
var ErrBudgetExceeded = errors.New("exact: search budget exceeded")

// VertexCover returns a minimum-weight vertex cover of g (minimum
// cardinality when g is unweighted). The search is exhaustive.
func VertexCover(g *graph.Graph) *bitset.Set {
	s, err := VertexCoverBounded(g, 0)
	if err != nil {
		panic("exact: unreachable: unbounded search returned error")
	}
	return s
}

// VertexCoverCounted is VertexCover plus the number of branch-and-bound
// nodes the search expanded — the observability counter behind
// kernel.Report.SearchNodes. The returned cover is bit-identical with
// VertexCover's.
func VertexCoverCounted(g *graph.Graph) (*bitset.Set, int64) {
	s, nodes, err := vertexCoverSearch(g, 0, nil, false)
	if err != nil {
		panic("exact: unreachable: unbounded search returned error")
	}
	return s, nodes
}

// VertexCoverBounded is VertexCover with a branch-and-bound node budget;
// maxNodes == 0 means unlimited. On budget exhaustion it returns
// ErrBudgetExceeded and no solution.
func VertexCoverBounded(g *graph.Graph, maxNodes int64) (*bitset.Set, error) {
	return VertexCoverBoundedFrom(g, maxNodes, nil)
}

// VertexCoverBoundedFrom is VertexCoverBounded seeded with a feasible
// incumbent cover (nil selects the trivial all-non-isolated-vertices
// incumbent). A near-optimal seed — the kernelize-then-solve pipeline passes
// its polynomial 2-approximation — lets the lower bounds prune from the
// first node, which is often the difference between cracking a hard kernel
// and exhausting the budget. The search still returns an exact optimum; the
// seed itself is returned only when nothing strictly better exists.
func VertexCoverBoundedFrom(g *graph.Graph, maxNodes int64, incumbent *bitset.Set) (*bitset.Set, error) {
	s, _, err := vertexCoverSearch(g, maxNodes, incumbent, false)
	return s, err
}

// VertexCoverBoundedSplit is VertexCoverBoundedFrom with in-search connected
// component decomposition: whenever branching (plus reductions) disconnects
// the active subproblem, each component is solved independently and the
// optima are summed. On the band-and-junction structures that survive
// kernelization of sparse power graphs, one junction branch splits the
// instance into many short chains, turning an exponential search into a
// near-linear one. Decomposition changes only tie-breaking among equal-cost
// covers, so it lives behind its own entry point and the legacy
// VertexCover/VertexCoverBounded outputs stay bit-identical.
//
// Unlike the legacy entry points, on budget exhaustion it returns the best
// feasible cover found so far (never worse than the seed incumbent)
// alongside ErrBudgetExceeded, so an interrupted search still pays out the
// improvements it made.
func VertexCoverBoundedSplit(g *graph.Graph, maxNodes int64, incumbent *bitset.Set) (*bitset.Set, error) {
	s, _, err := vertexCoverSearch(g, maxNodes, incumbent, true)
	return s, err
}

// VertexCoverBoundedSplitCounted is VertexCoverBoundedSplit plus the global
// branch-and-bound node count (shared across the splitting search's
// sub-solvers). On budget exhaustion the best-so-far cover is still
// returned alongside the error, exactly like VertexCoverBoundedSplit.
func VertexCoverBoundedSplitCounted(g *graph.Graph, maxNodes int64, incumbent *bitset.Set) (*bitset.Set, int64, error) {
	return vertexCoverSearch(g, maxNodes, incumbent, true)
}

// vertexCoverSearch runs the branch and bound and additionally reports how
// many search nodes it expanded (the budget counter, global across split
// sub-solvers).
func vertexCoverSearch(g *graph.Graph, maxNodes int64, incumbent *bitset.Set, split bool) (*bitset.Set, int64, error) {
	s := &vcSolver{
		g:        g,
		n:        g.N(),
		budget:   &vcBudget{max: maxNodes},
		split:    split,
		bestCost: math.MaxInt64,
	}
	init := incumbent
	if init == nil {
		// Trivial incumbent: all non-isolated vertices (always feasible).
		init = bitset.New(g.N())
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) > 0 {
				init.Add(v)
			}
		}
	}
	s.bestSet = init
	s.bestCost = g.SetWeightOf(init)

	active := bitset.Full(g.N())
	cover := bitset.New(g.N())
	if err := s.solve(active, cover, 0); err != nil {
		if split {
			// Best-so-far: feasible, and no worse than the seed incumbent.
			return s.bestSet, s.budget.nodes, err
		}
		return nil, s.budget.nodes, err
	}
	return s.bestSet, s.budget.nodes, nil
}

// vcBudget is the search-node budget, shared across the sub-solvers the
// splitting search spawns so the cap stays global.
type vcBudget struct {
	nodes int64
	max   int64
}

func (b *vcBudget) spend() error {
	b.nodes++
	if b.max > 0 && b.nodes > b.max {
		return ErrBudgetExceeded
	}
	return nil
}

type vcSolver struct {
	g        *graph.Graph
	n        int
	bestSet  *bitset.Set
	bestCost int64
	budget   *vcBudget
	split    bool
}

// activeDegree is |N(v) ∩ active|.
func (s *vcSolver) activeDegree(v int, active *bitset.Set) int {
	return s.g.AdjRow(v).IntersectionCount(active)
}

// matchingLB greedily matches active edges; each matched edge forces at
// least min(w(u), w(v)) additional cover weight, and the edges are disjoint,
// so the sum is a valid lower bound on the cost of covering what remains.
func (s *vcSolver) matchingLB(active *bitset.Set) int64 {
	avail := active.Clone()
	var lb int64
	for u := avail.First(); u != -1; u = avail.NextAfter(u) {
		nbrs := s.g.AdjRow(u).Intersect(avail)
		v := nbrs.First()
		if v == -1 {
			continue
		}
		wu, wv := s.g.Weight(u), s.g.Weight(v)
		if wu < wv {
			lb += wu
		} else {
			lb += wv
		}
		avail.Remove(u)
		avail.Remove(v)
	}
	return lb
}

// cliqueCoverLB greedily partitions the active vertices into cliques; a
// clique must put all members but one into any cover, so each contributes
// its total weight minus its heaviest member, and disjointness makes the sum
// admissible. On triangle-rich instances — power graphs above all, where
// every 1-hop neighborhood is a clique of Gʳ — this is nearly twice the
// matching bound (k−1 versus ⌊k/2⌋ per clique of size k), which is what lets
// the branch and bound crack the kernels of thousand-node leader instances.
//
// Both bounds are admissible, so taking their maximum never prunes a
// strictly-improving leaf: the returned cover is bit-identical with or
// without this bound — only the visited node count changes. It still runs
// only on the splitting search (the kernelize-then-solve path), so the
// legacy entry points keep their pre-kernel node counts exactly: the
// leader-ceiling stress test relies on VertexCoverBounded exhausting the
// same budgets it always exhausted.
func (s *vcSolver) cliqueCoverLB(active *bitset.Set) int64 {
	avail := active.Clone()
	var lb int64
	for u := avail.First(); u != -1; u = avail.NextAfter(u) {
		// Grow a clique around u: candidates stay adjacent to every member.
		common := s.g.AdjRow(u).Intersect(avail)
		sum, max := s.g.Weight(u), s.g.Weight(u)
		avail.Remove(u)
		for v := common.First(); v != -1; v = common.NextAfter(v) {
			w := s.g.Weight(v)
			sum += w
			if w > max {
				max = w
			}
			avail.Remove(v)
			common.And(s.g.AdjRow(v))
		}
		lb += sum - max
	}
	return lb
}

// lowerBound is the matching bound, strengthened by the clique-cover bound
// on the splitting search.
func (s *vcSolver) lowerBound(active *bitset.Set) int64 {
	lb := s.matchingLB(active)
	if !s.split {
		return lb
	}
	if c := s.cliqueCoverLB(active); c > lb {
		lb = c
	}
	return lb
}

// solve explores the subproblem where `active` vertices remain and `cover`
// (cost `cost`) has been committed. It mutates its arguments; callers pass
// clones when branching.
func (s *vcSolver) solve(active, cover *bitset.Set, cost int64) error {
	if err := s.budget.spend(); err != nil {
		return err
	}
	if cost >= s.bestCost {
		return nil
	}

	// Reductions (repeat to fixpoint): drop isolated vertices; apply the
	// dominance rule — for an edge {u,v} with N[v] ∩ active ⊆ N[u] ∩ active
	// and w(u) ≤ w(v), some optimal cover of the subproblem contains u
	// (swap v for u in any cover avoiding u: v's other neighbors are all
	// u's neighbors, hence already in the cover). Degree-1 is the special
	// case where v's closed active neighborhood is exactly {u, v}. Squares
	// of graphs are triangle-rich, where this rule collapses most of the
	// instance without branching.
	for {
		changed := false
		for v := active.First(); v != -1; v = active.NextAfter(v) {
			if !active.Contains(v) {
				continue // removed earlier in this sweep
			}
			nv := s.g.AdjRow(v).Intersect(active)
			if nv.Empty() {
				active.Remove(v)
				changed = true
				continue
			}
			// Zero-weight vertices cover their edges for free.
			if s.g.Weight(v) == 0 {
				cover.Add(v)
				active.Remove(v)
				changed = true
				continue
			}
			for u := nv.First(); u != -1; u = nv.NextAfter(u) {
				if s.g.Weight(u) > s.g.Weight(v) {
					continue
				}
				rest := nv.Clone()
				rest.Remove(u)
				nu := s.g.AdjRow(u).Intersect(active)
				if rest.SubsetOf(nu) {
					cover.Add(u)
					cost += s.g.Weight(u)
					active.Remove(u)
					changed = true
					if cost >= s.bestCost {
						return nil
					}
					break // v's neighborhood changed; rescan
				}
			}
		}
		if !changed {
			break
		}
	}

	// Find the highest-active-degree vertex; if no active edges remain the
	// committed cover is feasible for the whole graph.
	branch, branchDeg := -1, 0
	for v := active.First(); v != -1; v = active.NextAfter(v) {
		if d := s.activeDegree(v, active); d > branchDeg {
			branch, branchDeg = v, d
		}
	}
	if branch == -1 {
		if cost < s.bestCost {
			s.bestCost = cost
			s.bestSet = cover.Clone()
		}
		return nil
	}

	if cost+s.lowerBound(active) >= s.bestCost {
		return nil
	}

	if s.split {
		if done, err := s.solveSplit(active, cover, cost); done || err != nil {
			return err
		}
	}

	// Branch A: take `branch` into the cover.
	{
		a := active.Clone()
		c := cover.Clone()
		a.Remove(branch)
		c.Add(branch)
		if err := s.solve(a, c, cost+s.g.Weight(branch)); err != nil {
			return err
		}
	}
	// Branch B: exclude `branch` ⇒ all of its active neighbors enter.
	{
		a := active.Clone()
		c := cover.Clone()
		extra := int64(0)
		nbrs := s.g.AdjRow(branch).Intersect(active)
		nbrs.ForEach(func(u int) bool {
			c.Add(u)
			a.Remove(u)
			extra += s.g.Weight(u)
			return true
		})
		a.Remove(branch)
		if err := s.solve(a, c, cost+extra); err != nil {
			return err
		}
	}
	return nil
}

// solveSplit decomposes a disconnected active set into components, solves
// each with an independent sub-search (shared node budget), and combines the
// optima. Reports done = true when it handled the subproblem (i.e., there
// was more than one component); the caller then skips branching entirely.
func (s *vcSolver) solveSplit(active, cover *bitset.Set, cost int64) (done bool, err error) {
	comps := s.components(active)
	if len(comps) < 2 {
		return false, nil
	}
	total := cost
	union := cover.Clone()
	for _, comp := range comps {
		if total >= s.bestCost {
			return true, nil // partial sums already beat by the incumbent
		}
		sub := &vcSolver{
			g: s.g, n: s.n, budget: s.budget, split: true,
			// Trivial per-component incumbent: the whole component.
			bestSet:  comp.Clone(),
			bestCost: s.g.SetWeightOf(comp),
		}
		if err := sub.solve(comp.Clone(), bitset.New(s.n), 0); err != nil {
			return true, err
		}
		total += sub.bestCost
		union.Or(sub.bestSet)
	}
	if total < s.bestCost {
		s.bestCost = total
		s.bestSet = union
	}
	return true, nil
}

// components returns the connected components of the active set, in
// first-vertex order (deterministic).
func (s *vcSolver) components(active *bitset.Set) []*bitset.Set {
	seen := bitset.New(s.n)
	var comps []*bitset.Set
	for v := active.First(); v != -1; v = active.NextAfter(v) {
		if seen.Contains(v) {
			continue
		}
		comp := bitset.New(s.n)
		frontier := []int{v}
		comp.Add(v)
		seen.Add(v)
		for len(frontier) > 0 {
			u := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			nbrs := s.g.AdjRow(u).Intersect(active)
			for w := nbrs.First(); w != -1; w = nbrs.NextAfter(w) {
				if !seen.Contains(w) {
					seen.Add(w)
					comp.Add(w)
					frontier = append(frontier, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
