// Package exact provides exact (optimal) solvers for minimum (weighted)
// vertex cover and minimum (weighted) dominating set, via branch and bound
// over bitsets, plus brute-force reference solvers used to validate them.
//
// The paper's algorithms repeatedly assume an exact oracle: Algorithm 1's
// Phase II has a leader "compute an optimal solution R* of the VC problem on
// H = G²[U]" with unbounded local computation, and every lower-bound lemma
// (Lemmas 21, 24, 34, 40, 43) is a statement about exact optima of gadget
// graphs. These solvers are that oracle. They are tuned for the graph sizes
// that appear in those roles (≈ up to a few hundred vertices for VC with
// small covers, and structured gadget graphs for DS), not for arbitrary
// dense instances.
package exact

import (
	"errors"
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// ErrBudgetExceeded is returned by the bounded solvers when the search
// explores more branch-and-bound nodes than the caller allowed.
var ErrBudgetExceeded = errors.New("exact: search budget exceeded")

// VertexCover returns a minimum-weight vertex cover of g (minimum
// cardinality when g is unweighted). The search is exhaustive.
func VertexCover(g *graph.Graph) *bitset.Set {
	s, err := VertexCoverBounded(g, 0)
	if err != nil {
		panic("exact: unreachable: unbounded search returned error")
	}
	return s
}

// VertexCoverBounded is VertexCover with a branch-and-bound node budget;
// maxNodes == 0 means unlimited. On budget exhaustion it returns
// ErrBudgetExceeded and no solution.
func VertexCoverBounded(g *graph.Graph, maxNodes int64) (*bitset.Set, error) {
	s := &vcSolver{
		g:        g,
		n:        g.N(),
		maxNodes: maxNodes,
		bestCost: math.MaxInt64,
	}
	// Initial incumbent: all non-isolated vertices (always feasible).
	init := bitset.New(g.N())
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 0 {
			init.Add(v)
		}
	}
	s.bestSet = init
	s.bestCost = g.SetWeightOf(init)

	active := bitset.Full(g.N())
	cover := bitset.New(g.N())
	if err := s.solve(active, cover, 0); err != nil {
		return nil, err
	}
	return s.bestSet, nil
}

type vcSolver struct {
	g        *graph.Graph
	n        int
	bestSet  *bitset.Set
	bestCost int64
	nodes    int64
	maxNodes int64
}

// activeDegree is |N(v) ∩ active|.
func (s *vcSolver) activeDegree(v int, active *bitset.Set) int {
	return s.g.AdjRow(v).IntersectionCount(active)
}

// matchingLB greedily matches active edges; each matched edge forces at
// least min(w(u), w(v)) additional cover weight, and the edges are disjoint,
// so the sum is a valid lower bound on the cost of covering what remains.
func (s *vcSolver) matchingLB(active *bitset.Set) int64 {
	avail := active.Clone()
	var lb int64
	for u := avail.First(); u != -1; u = avail.NextAfter(u) {
		nbrs := s.g.AdjRow(u).Intersect(avail)
		v := nbrs.First()
		if v == -1 {
			continue
		}
		wu, wv := s.g.Weight(u), s.g.Weight(v)
		if wu < wv {
			lb += wu
		} else {
			lb += wv
		}
		avail.Remove(u)
		avail.Remove(v)
	}
	return lb
}

// solve explores the subproblem where `active` vertices remain and `cover`
// (cost `cost`) has been committed. It mutates its arguments; callers pass
// clones when branching.
func (s *vcSolver) solve(active, cover *bitset.Set, cost int64) error {
	s.nodes++
	if s.maxNodes > 0 && s.nodes > s.maxNodes {
		return ErrBudgetExceeded
	}
	if cost >= s.bestCost {
		return nil
	}

	// Reductions (repeat to fixpoint): drop isolated vertices; apply the
	// dominance rule — for an edge {u,v} with N[v] ∩ active ⊆ N[u] ∩ active
	// and w(u) ≤ w(v), some optimal cover of the subproblem contains u
	// (swap v for u in any cover avoiding u: v's other neighbors are all
	// u's neighbors, hence already in the cover). Degree-1 is the special
	// case where v's closed active neighborhood is exactly {u, v}. Squares
	// of graphs are triangle-rich, where this rule collapses most of the
	// instance without branching.
	for {
		changed := false
		for v := active.First(); v != -1; v = active.NextAfter(v) {
			if !active.Contains(v) {
				continue // removed earlier in this sweep
			}
			nv := s.g.AdjRow(v).Intersect(active)
			if nv.Empty() {
				active.Remove(v)
				changed = true
				continue
			}
			// Zero-weight vertices cover their edges for free.
			if s.g.Weight(v) == 0 {
				cover.Add(v)
				active.Remove(v)
				changed = true
				continue
			}
			for u := nv.First(); u != -1; u = nv.NextAfter(u) {
				if s.g.Weight(u) > s.g.Weight(v) {
					continue
				}
				rest := nv.Clone()
				rest.Remove(u)
				nu := s.g.AdjRow(u).Intersect(active)
				if rest.SubsetOf(nu) {
					cover.Add(u)
					cost += s.g.Weight(u)
					active.Remove(u)
					changed = true
					if cost >= s.bestCost {
						return nil
					}
					break // v's neighborhood changed; rescan
				}
			}
		}
		if !changed {
			break
		}
	}

	// Find the highest-active-degree vertex; if no active edges remain the
	// committed cover is feasible for the whole graph.
	branch, branchDeg := -1, 0
	for v := active.First(); v != -1; v = active.NextAfter(v) {
		if d := s.activeDegree(v, active); d > branchDeg {
			branch, branchDeg = v, d
		}
	}
	if branch == -1 {
		if cost < s.bestCost {
			s.bestCost = cost
			s.bestSet = cover.Clone()
		}
		return nil
	}

	if cost+s.matchingLB(active) >= s.bestCost {
		return nil
	}

	// Branch A: take `branch` into the cover.
	{
		a := active.Clone()
		c := cover.Clone()
		a.Remove(branch)
		c.Add(branch)
		if err := s.solve(a, c, cost+s.g.Weight(branch)); err != nil {
			return err
		}
	}
	// Branch B: exclude `branch` ⇒ all of its active neighbors enter.
	{
		a := active.Clone()
		c := cover.Clone()
		extra := int64(0)
		nbrs := s.g.AdjRow(branch).Intersect(active)
		nbrs.ForEach(func(u int) bool {
			c.Add(u)
			a.Remove(u)
			extra += s.g.Weight(u)
			return true
		})
		a.Remove(branch)
		if err := s.solve(a, c, cost+extra); err != nil {
			return err
		}
	}
	return nil
}
