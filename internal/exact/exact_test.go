package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func TestVertexCoverSmallKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"empty", graph.NewBuilder(5).Build(), 0},
		{"single edge", graph.Path(2), 1},
		{"P4", graph.Path(4), 2},
		{"P5", graph.Path(5), 2},
		{"C5", graph.Cycle(5), 3},
		{"K4", graph.Complete(4), 3},
		{"K6", graph.Complete(6), 5},
		{"star", graph.Star(8), 1},
		{"C6", graph.Cycle(6), 3},
		{"grid 2x3", graph.Grid(2, 3), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := VertexCover(tc.g)
			if ok, w := verify.IsVertexCover(tc.g, s); !ok {
				t.Fatalf("not a cover, witness %v", w)
			}
			if got := verify.Cost(tc.g, s); got != tc.want {
				t.Fatalf("cost = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestDominatingSetSmallKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"single vertex", graph.NewBuilder(1).Build(), 1},
		{"two isolated", graph.NewBuilder(2).Build(), 2},
		{"star", graph.Star(8), 1},
		{"P2", graph.Path(2), 1},
		{"P4", graph.Path(4), 2},
		{"P7", graph.Path(7), 3},
		{"C4", graph.Cycle(4), 2},
		{"C7", graph.Cycle(7), 3},
		{"K5", graph.Complete(5), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DominatingSet(tc.g)
			if ok, w := verify.IsDominatingSet(tc.g, s); !ok {
				t.Fatalf("not dominating, witness %d", w)
			}
			if got := verify.Cost(tc.g, s); got != tc.want {
				t.Fatalf("cost = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestQuickVertexCoverMatchesBrute(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := graph.GNP(n, 0.35, rng)
		a := verify.Cost(g, VertexCover(g))
		b := verify.Cost(g, BruteVertexCover(g))
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWeightedVertexCoverMatchesBrute(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(11)
		g := graph.WithRandomWeights(graph.GNP(n, 0.35, rng), 20, rng)
		a := verify.Cost(g, VertexCover(g))
		b := verify.Cost(g, BruteVertexCover(g))
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDominatingSetMatchesBrute(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(11)
		g := graph.GNP(n, 0.3, rng)
		a := verify.Cost(g, DominatingSet(g))
		b := verify.Cost(g, BruteDominatingSet(g))
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWeightedDominatingSetMatchesBrute(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		g := graph.WithRandomWeights(graph.GNP(n, 0.3, rng), 15, rng)
		a := verify.Cost(g, DominatingSet(g))
		b := verify.Cost(g, BruteDominatingSet(g))
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexCoverOnSquares(t *testing.T) {
	// The exact solver is mostly used on squares of graphs; check a few.
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 15; i++ {
		n := 4 + rng.Intn(10)
		g := graph.ConnectedGNP(n, 0.2, rng)
		sq := g.Square()
		s := VertexCover(sq)
		if ok, _ := verify.IsSquareVertexCover(g, s); !ok {
			t.Fatal("exact VC of square fails square checker")
		}
		want := verify.Cost(sq, BruteVertexCover(sq))
		if got := verify.Cost(sq, s); got != want {
			t.Fatalf("square VC cost %d, want %d", got, want)
		}
	}
}

func TestVertexCoverBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(40, 0.5, rng)
	if _, err := VertexCoverBounded(g, 2); err != ErrBudgetExceeded {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	if _, err := VertexCoverBounded(graph.Path(4), 0); err != nil {
		t.Fatalf("unlimited budget errored: %v", err)
	}
}

func TestDominatingSetBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(60, 0.1, rng)
	if _, err := DominatingSetBounded(g, 1); err != ErrBudgetExceeded {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
}

func TestGreedyDominatingSetFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 20; i++ {
		n := 3 + rng.Intn(14)
		g := graph.GNP(n, 0.3, rng)
		s := GreedyDominatingSet(g)
		if ok, w := verify.IsDominatingSet(g, s); !ok {
			t.Fatalf("greedy not dominating, witness %d", w)
		}
		// ln-approximation sanity: greedy ≤ (ln Δ+1 + 1) · OPT + 1.
		opt := verify.Cost(g, BruteDominatingSet(g))
		if opt > 0 {
			// Very loose sanity bound: greedy never exceeds H_{Δ+1}·OPT.
			h := 0.0
			for k := 1; k <= g.MaxDegree()+1; k++ {
				h += 1.0 / float64(k)
			}
			if float64(verify.Cost(g, s)) > h*float64(opt)+1e-9 {
				t.Fatalf("greedy %d exceeds H_(Δ+1)=%f times opt %d", verify.Cost(g, s), h, opt)
			}
		}
	}
}

func TestBruteForcePanicsOnLargeGraphs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BruteVertexCover(graph.Path(30))
}

func TestExactSolverModerateSize(t *testing.T) {
	// Exercise B&B well beyond brute-force range: a 60-vertex sparse graph.
	rng := rand.New(rand.NewSource(51))
	g := graph.ConnectedGNP(60, 0.05, rng)
	s := VertexCover(g)
	if ok, _ := verify.IsVertexCover(g, s); !ok {
		t.Fatal("infeasible")
	}
	if lb := verify.MatchingLowerBound(g); verify.Cost(g, s) < lb {
		t.Fatalf("cover %d below matching LB %d", verify.Cost(g, s), lb)
	}
	d := DominatingSet(g)
	if ok, _ := verify.IsDominatingSet(g, d); !ok {
		t.Fatal("DS infeasible")
	}
}
