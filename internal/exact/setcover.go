package exact

import (
	"math"
	"sort"

	"powergraph/internal/bitset"
)

// SetCoverInstance is a weighted set-cover problem: choose candidate sets
// covering all of {0,…,UniverseSize-1} at minimum total weight. The
// lower-bound verifications use it for "dominate these vertices using only
// those candidates" subproblems that arise from gadget normal forms
// (Lemmas 32/33), where plain graph domination does not apply.
type SetCoverInstance struct {
	UniverseSize int
	Sets         []*bitset.Set // Sets[i] ⊆ universe
	Weights      []int64       // nil means unit weights
}

func (in *SetCoverInstance) weight(i int) int64 {
	if in.Weights == nil {
		return 1
	}
	return in.Weights[i]
}

// SetCover returns the indices of a minimum-weight cover, or nil if the
// instance is infeasible (some element is in no set). The search is
// exhaustive branch and bound.
func SetCover(in *SetCoverInstance) []int {
	chosen, err := SetCoverBounded(in, 0)
	if err != nil {
		panic("exact: unreachable: unbounded set cover returned error")
	}
	return chosen
}

// SetCoverBounded is SetCover with a branch-and-bound node budget
// (0 = unlimited).
func SetCoverBounded(in *SetCoverInstance, maxNodes int64) ([]int, error) {
	chosen, _, err := setCoverBounded(in, maxNodes)
	return chosen, err
}

// SetCoverBoundedCounted is SetCoverBounded plus the number of
// branch-and-bound nodes the search expanded — the observability counter
// behind kernel.Report.SearchNodes on the dominating-set path. The chosen
// cover is bit-identical with SetCoverBounded's.
func SetCoverBoundedCounted(in *SetCoverInstance, maxNodes int64) ([]int, int64, error) {
	return setCoverBounded(in, maxNodes)
}

func setCoverBounded(in *SetCoverInstance, maxNodes int64) ([]int, int64, error) {
	s := &scSolver{in: in, maxNodes: maxNodes, bestCost: math.MaxInt64}
	s.coverers = make([][]int, in.UniverseSize)
	for i, set := range in.Sets {
		set.ForEach(func(e int) bool {
			s.coverers[e] = append(s.coverers[e], i)
			return true
		})
	}
	for e := 0; e < in.UniverseSize; e++ {
		if len(s.coverers[e]) == 0 {
			return nil, 0, nil // infeasible: no set covers e
		}
	}
	// Greedy incumbent.
	if greedy := s.greedy(); greedy != nil {
		s.best = greedy
		s.bestCost = 0
		for _, i := range greedy {
			s.bestCost += in.weight(i)
		}
	}
	s.minWeight = math.MaxInt64
	for i := range in.Sets {
		if w := in.weight(i); w > 0 && w < s.minWeight {
			s.minWeight = w
		}
	}
	if s.minWeight == math.MaxInt64 {
		s.minWeight = 0
	}

	covered := bitset.New(in.UniverseSize)
	avail := bitset.New(len(in.Sets))
	for i := range in.Sets {
		avail.Add(i)
		// Zero-weight sets are free: commit them upfront.
		if in.weight(i) == 0 {
			covered.Or(in.Sets[i])
			avail.Remove(i)
			s.zero = append(s.zero, i)
		}
	}
	if err := s.solve(covered, avail, nil, 0); err != nil {
		return nil, s.nodes, err
	}
	out := append([]int(nil), s.zero...)
	out = append(out, s.best...)
	sort.Ints(out)
	// Deduplicate (a zero set may also appear in the greedy incumbent).
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup, s.nodes, nil
}

type scSolver struct {
	in        *SetCoverInstance
	coverers  [][]int
	best      []int
	bestCost  int64
	minWeight int64
	zero      []int
	nodes     int64
	maxNodes  int64
}

func (s *scSolver) greedy() []int {
	covered := bitset.New(s.in.UniverseSize)
	var out []int
	for covered.Count() < s.in.UniverseSize {
		bestI, bestScore := -1, -1.0
		for i, set := range s.in.Sets {
			gain := set.Count() - set.IntersectionCount(covered)
			if gain == 0 {
				continue
			}
			w := s.in.weight(i)
			score := math.Inf(1)
			if w > 0 {
				score = float64(gain) / float64(w)
			}
			if score > bestScore {
				bestI, bestScore = i, score
			}
		}
		if bestI == -1 {
			return nil
		}
		out = append(out, bestI)
		covered.Or(s.in.Sets[bestI])
	}
	return out
}

// lowerBound is the larger of the density bound (remaining/maxCover) and
// the element-packing bound (elements with pairwise-disjoint coverer sets
// each need their own set).
func (s *scSolver) lowerBound(covered, avail *bitset.Set) int64 {
	remaining := s.in.UniverseSize - covered.Count()
	if remaining == 0 {
		return 0
	}
	maxCover := 0
	for i := avail.First(); i != -1; i = avail.NextAfter(i) {
		if c := s.in.Sets[i].Count() - s.in.Sets[i].IntersectionCount(covered); c > maxCover {
			maxCover = c
		}
	}
	if maxCover == 0 {
		return math.MaxInt64 / 4
	}
	need := (remaining + maxCover - 1) / maxCover
	density := int64(need) * s.minWeight

	marked := bitset.New(len(s.in.Sets))
	var packing int64
	for e := 0; e < s.in.UniverseSize; e++ {
		if covered.Contains(e) {
			continue
		}
		disjoint := true
		cheapest := int64(math.MaxInt64)
		anyAvail := false
		for _, i := range s.coverers[e] {
			if !avail.Contains(i) {
				continue
			}
			anyAvail = true
			if marked.Contains(i) {
				disjoint = false
				break
			}
			if w := s.in.weight(i); w < cheapest {
				cheapest = w
			}
		}
		if !anyAvail {
			return math.MaxInt64 / 4
		}
		if !disjoint {
			continue
		}
		packing += cheapest
		for _, i := range s.coverers[e] {
			if avail.Contains(i) {
				marked.Add(i)
			}
		}
	}
	if packing > density {
		return packing
	}
	return density
}

func (s *scSolver) solve(covered, avail *bitset.Set, cur []int, cost int64) error {
	s.nodes++
	if s.maxNodes > 0 && s.nodes > s.maxNodes {
		return ErrBudgetExceeded
	}
	if cost >= s.bestCost {
		return nil
	}
	if covered.Count() == s.in.UniverseSize {
		s.bestCost = cost
		s.best = append([]int(nil), cur...)
		return nil
	}
	if cost+s.lowerBound(covered, avail) >= s.bestCost {
		return nil
	}

	// Branch on the uncovered element with the fewest available coverers.
	pick, pickCount := -1, math.MaxInt32
	for e := 0; e < s.in.UniverseSize; e++ {
		if covered.Contains(e) {
			continue
		}
		c := 0
		for _, i := range s.coverers[e] {
			if avail.Contains(i) {
				c++
			}
		}
		if c < pickCount {
			pick, pickCount = e, c
		}
		if c == 0 {
			break
		}
	}
	if pickCount == 0 {
		return nil
	}

	cands := make([]int, 0, pickCount)
	for _, i := range s.coverers[pick] {
		if avail.Contains(i) {
			cands = append(cands, i)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		ga := s.in.Sets[cands[a]].Count() - s.in.Sets[cands[a]].IntersectionCount(covered)
		gb := s.in.Sets[cands[b]].Count() - s.in.Sets[cands[b]].IntersectionCount(covered)
		wa, wb := s.in.weight(cands[a]), s.in.weight(cands[b])
		return float64(ga)*float64(wb) > float64(gb)*float64(wa)
	})
	var excluded []int
	for _, i := range cands {
		c2 := covered.Union(s.in.Sets[i])
		avail.Remove(i)
		if err := s.solve(c2, avail, append(cur, i), cost+s.in.weight(i)); err != nil {
			return err
		}
		excluded = append(excluded, i)
	}
	for _, i := range excluded {
		avail.Add(i)
	}
	return nil
}
