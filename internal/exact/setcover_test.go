package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

func instFromSets(universe int, sets ...[]int) *SetCoverInstance {
	in := &SetCoverInstance{UniverseSize: universe}
	for _, s := range sets {
		in.Sets = append(in.Sets, bitset.FromIndices(universe, s...))
	}
	return in
}

func coverWeight(in *SetCoverInstance, chosen []int) int64 {
	var w int64
	for _, i := range chosen {
		w += in.weight(i)
	}
	return w
}

func coversAll(in *SetCoverInstance, chosen []int) bool {
	c := bitset.New(in.UniverseSize)
	for _, i := range chosen {
		c.Or(in.Sets[i])
	}
	return c.Count() == in.UniverseSize
}

func TestSetCoverKnownInstances(t *testing.T) {
	cases := []struct {
		name string
		in   *SetCoverInstance
		want int64
	}{
		{"single set", instFromSets(3, []int{0, 1, 2}), 1},
		{"two halves", instFromSets(4, []int{0, 1}, []int{2, 3}, []int{0, 2}), 2},
		{"greedy trap", instFromSets(6,
			[]int{0, 1, 2, 3}, // greedy takes this...
			[]int{0, 1, 4},    // ...but these two are also needed
			[]int{2, 3, 5},
		), 2},
		{"singletons", instFromSets(3, []int{0}, []int{1}, []int{2}), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chosen := SetCover(tc.in)
			if chosen == nil {
				t.Fatal("infeasible?")
			}
			if !coversAll(tc.in, chosen) {
				t.Fatal("not a cover")
			}
			if got := coverWeight(tc.in, chosen); got != tc.want {
				t.Fatalf("weight %d, want %d", got, tc.want)
			}
		})
	}
}

func TestSetCoverWeighted(t *testing.T) {
	// One big expensive set vs two cheap ones.
	in := instFromSets(4, []int{0, 1, 2, 3}, []int{0, 1}, []int{2, 3})
	in.Weights = []int64{5, 2, 2}
	chosen := SetCover(in)
	if got := coverWeight(in, chosen); got != 4 {
		t.Fatalf("weight %d, want 4 (two cheap sets)", got)
	}
	// Flip: big set becomes cheap.
	in.Weights = []int64{3, 2, 2}
	chosen = SetCover(in)
	if got := coverWeight(in, chosen); got != 3 {
		t.Fatalf("weight %d, want 3 (single big set)", got)
	}
}

func TestSetCoverZeroWeightPrecommit(t *testing.T) {
	in := instFromSets(4, []int{0, 1}, []int{2}, []int{3})
	in.Weights = []int64{0, 1, 1}
	chosen := SetCover(in)
	if !coversAll(in, chosen) {
		t.Fatal("not a cover")
	}
	if got := coverWeight(in, chosen); got != 2 {
		t.Fatalf("weight %d, want 2", got)
	}
	found := false
	for _, i := range chosen {
		if i == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("zero-weight set not pre-committed")
	}
}

func TestSetCoverInfeasible(t *testing.T) {
	in := instFromSets(3, []int{0, 1}) // element 2 uncoverable
	if chosen := SetCover(in); chosen != nil {
		t.Fatalf("expected nil for infeasible, got %v", chosen)
	}
}

func TestSetCoverEmptyUniverse(t *testing.T) {
	in := instFromSets(0)
	chosen := SetCover(in)
	if len(chosen) != 0 {
		t.Fatalf("empty universe needs no sets, got %v", chosen)
	}
}

func TestSetCoverBudget(t *testing.T) {
	// A universe requiring branching: pairwise overlapping sets.
	rng := rand.New(rand.NewSource(1))
	in := &SetCoverInstance{UniverseSize: 30}
	for i := 0; i < 25; i++ {
		s := bitset.New(30)
		for e := 0; e < 30; e++ {
			if rng.Intn(3) == 0 {
				s.Add(e)
			}
		}
		in.Sets = append(in.Sets, s)
	}
	if _, err := SetCoverBounded(in, 1); err == nil {
		// Possible to solve at the root only if greedy was optimal AND the
		// bound proves it; with random overlapping sets that is unlikely,
		// but tolerate it by requiring a solve with a bigger budget to
		// agree.
		a, err := SetCoverBounded(in, 0)
		if err != nil || a == nil {
			t.Fatalf("unlimited solve failed: %v", err)
		}
	}
}

func TestQuickSetCoverMatchesDominatingSet(t *testing.T) {
	// MDS(g) is exactly set cover with closed neighborhoods: the two exact
	// solvers must agree.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := graph.GNP(n, 0.3, rng)
		in := &SetCoverInstance{UniverseSize: n}
		for v := 0; v < n; v++ {
			in.Sets = append(in.Sets, g.ClosedNeighborhood(v))
		}
		chosen := SetCover(in)
		ds := DominatingSet(g)
		return len(chosen) == ds.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWeightedSetCoverMatchesWeightedDS(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		g := graph.WithRandomWeights(graph.GNP(n, 0.3, rng), 12, rng)
		in := &SetCoverInstance{UniverseSize: n}
		for v := 0; v < n; v++ {
			in.Sets = append(in.Sets, g.ClosedNeighborhood(v))
			in.Weights = append(in.Weights, g.Weight(v))
		}
		chosen := SetCover(in)
		var scW int64
		for _, i := range chosen {
			scW += g.Weight(i)
		}
		var dsW int64
		DominatingSet(g).ForEach(func(v int) bool {
			dsW += g.Weight(v)
			return true
		})
		return scW == dsW
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
