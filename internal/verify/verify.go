// Package verify provides solution checkers and approximation-ratio
// reporting for the vertex cover and dominating set problems on G, G², and
// general powers Gʳ.
//
// The paper (Section 2) defines feasibility of a G²-solution with respect to
// the edge set of the square while distances are measured in G; the checkers
// here follow that definition exactly and are cross-validated against
// brute-force in tests, so every algorithm in internal/core and
// internal/centralized can be validated against a single trusted oracle.
package verify

import (
	"fmt"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// IsVertexCover reports whether s covers every edge of g: for each
// {u,v} ∈ E(g), u ∈ s or v ∈ s. The first uncovered edge (if any) is
// returned for diagnostics.
func IsVertexCover(g *graph.Graph, s *bitset.Set) (ok bool, witness [2]int) {
	for u := 0; u < g.N(); u++ {
		if s.Contains(u) {
			continue
		}
		for _, v := range g.Adj(u) {
			if v > u && !s.Contains(v) {
				return false, [2]int{u, v}
			}
		}
	}
	return true, [2]int{}
}

// IsSquareVertexCover reports whether s is a vertex cover of g².
func IsSquareVertexCover(g *graph.Graph, s *bitset.Set) (ok bool, witness [2]int) {
	return IsPowerVertexCover(g, 2, s)
}

// IsPowerVertexCover reports whether s is a vertex cover of gʳ, checked
// directly from g using 2-hop reachability (without materializing gʳ when
// r == 2; larger r falls back to Power).
func IsPowerVertexCover(g *graph.Graph, r int, s *bitset.Set) (ok bool, witness [2]int) {
	if r == 1 {
		return IsVertexCover(g, s)
	}
	if r == 2 {
		for u := 0; u < g.N(); u++ {
			if s.Contains(u) {
				continue
			}
			// Walk u's 2-hop neighborhood over the CSR rows directly (no
			// per-vertex bitset materialization, so the check stays O(Σ deg²)
			// at million-node scale): every 2-hop neighbor must be in s.
			for _, v := range g.Adj(u) {
				if v != u && !s.Contains(v) {
					return false, [2]int{u, v}
				}
				for _, w := range g.Adj(v) {
					if w != u && !s.Contains(w) {
						return false, [2]int{u, w}
					}
				}
			}
		}
		return true, [2]int{}
	}
	return IsVertexCover(g.Power(r), s)
}

// IsDominatingSet reports whether every vertex of g is in s or has a
// g-neighbor in s. The first undominated vertex (if any) is returned.
func IsDominatingSet(g *graph.Graph, s *bitset.Set) (ok bool, witness int) {
	for v := 0; v < g.N(); v++ {
		if s.Contains(v) || anyInSet(g.Adj(v), s) {
			continue
		}
		return false, v
	}
	return true, -1
}

// anyInSet reports whether any vertex of vs is a member of s.
func anyInSet(vs []int, s *bitset.Set) bool {
	for _, v := range vs {
		if s.Contains(v) {
			return true
		}
	}
	return false
}

// IsSquareDominatingSet reports whether s dominates g²: every vertex is in s
// or within distance 2 (in g) of a member of s.
func IsSquareDominatingSet(g *graph.Graph, s *bitset.Set) (ok bool, witness int) {
	for v := 0; v < g.N(); v++ {
		if s.Contains(v) || twoHopIntersects(g, v, s) {
			continue
		}
		return false, v
	}
	return true, -1
}

// twoHopIntersects reports whether any vertex within distance 2 of v (in g,
// excluding v itself) belongs to s, walking the CSR rows directly so no
// per-vertex neighborhood bitset is ever materialized.
func twoHopIntersects(g *graph.Graph, v int, s *bitset.Set) bool {
	for _, u := range g.Adj(v) {
		if s.Contains(u) || anyInSet(g.Adj(u), s) {
			return true
		}
	}
	return false
}

// IsPowerDominatingSet reports whether s dominates gʳ: every vertex is in s
// or within distance r (in g) of a member of s.
func IsPowerDominatingSet(g *graph.Graph, r int, s *bitset.Set) (ok bool, witness int) {
	switch r {
	case 1:
		return IsDominatingSet(g, s)
	case 2:
		return IsSquareDominatingSet(g, s)
	default:
		return IsDominatingSet(g.Power(r), s)
	}
}

// Cost returns the total weight of the solution set under g's vertex
// weights (its cardinality for unweighted graphs).
func Cost(g *graph.Graph, s *bitset.Set) int64 {
	return g.SetWeightOf(s)
}

// Ratio describes the quality of a solution against a reference optimum or
// lower bound.
type Ratio struct {
	Cost      int64   // weight of the checked solution
	Reference int64   // optimum (or lower bound) it is compared against
	Value     float64 // Cost / Reference; +Inf when Reference is 0 and Cost > 0
}

// RatioOf computes the approximation ratio of cost against reference.
// A zero reference with zero cost yields ratio 1 (both optimal and empty).
func RatioOf(cost, reference int64) Ratio {
	r := Ratio{Cost: cost, Reference: reference}
	switch {
	case reference > 0:
		r.Value = float64(cost) / float64(reference)
	case cost == 0:
		r.Value = 1
	default:
		r.Value = float64(cost) // reference 0, cost > 0: report cost itself as "∞-like"
	}
	return r
}

func (r Ratio) String() string {
	return fmt.Sprintf("%d/%d = %.4f", r.Cost, r.Reference, r.Value)
}

// MatchingLowerBound returns a lower bound on the size of any vertex cover
// of g: the size of a maximal matching (each matched edge needs a distinct
// cover vertex). Used for fast sanity ratios when exact solving is too slow.
func MatchingLowerBound(g *graph.Graph) int64 {
	return int64(len(g.GreedyMaximalMatching()))
}
