package verify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

func TestIsVertexCoverBasic(t *testing.T) {
	g := graph.Path(4) // edges 01 12 23
	ok, _ := IsVertexCover(g, bitset.FromIndices(4, 1, 3))
	if !ok {
		t.Fatal("{1,3} should cover P4")
	}
	ok, w := IsVertexCover(g, bitset.FromIndices(4, 0))
	if ok {
		t.Fatal("{0} should not cover P4")
	}
	if w != [2]int{1, 2} {
		t.Fatalf("witness = %v", w)
	}
	ok, _ = IsVertexCover(g, bitset.New(4))
	if ok {
		t.Fatal("empty set covers nothing")
	}
	// Empty graph: empty cover suffices.
	eg := graph.NewBuilder(3).Build()
	if ok, _ := IsVertexCover(eg, bitset.New(3)); !ok {
		t.Fatal("empty graph needs no cover")
	}
}

func TestIsSquareVertexCover(t *testing.T) {
	g := graph.Path(5)
	// In P5², vertex 2 covers all edges incident to 0..4 within distance 2 of
	// 2, but edge {3,4} and {0,1} are also in P5² — {2} alone leaves {0,1}
	// uncovered? No: {0,1} has endpoint 1, dist(1,2)=1, 1∉S, 0∉S ⇒ uncovered.
	ok, _ := IsSquareVertexCover(g, bitset.FromIndices(5, 2))
	if ok {
		t.Fatal("{2} is not a VC of P5²")
	}
	ok, _ = IsSquareVertexCover(g, bitset.FromIndices(5, 1, 2, 3))
	if !ok {
		t.Fatal("{1,2,3} is a VC of P5²")
	}
}

func TestIsDominatingSet(t *testing.T) {
	g := graph.Star(6)
	if ok, _ := IsDominatingSet(g, bitset.FromIndices(6, 0)); !ok {
		t.Fatal("center dominates star")
	}
	ok, w := IsDominatingSet(g, bitset.FromIndices(6, 1))
	if ok {
		t.Fatal("leaf does not dominate star")
	}
	if w != 2 {
		t.Fatalf("witness = %d, want 2", w)
	}
}

func TestIsSquareDominatingSet(t *testing.T) {
	g := graph.Path(5)
	if ok, _ := IsSquareDominatingSet(g, bitset.FromIndices(5, 2)); !ok {
		t.Fatal("{2} dominates P5²")
	}
	g7 := graph.Path(7)
	ok, w := IsSquareDominatingSet(g7, bitset.FromIndices(7, 2))
	if ok {
		t.Fatal("{2} should not dominate P7²")
	}
	if w != 5 {
		t.Fatalf("witness = %d, want 5", w)
	}
}

// Brute-force reference checkers.
func bruteIsVC(g *graph.Graph, s *bitset.Set) bool {
	for _, e := range g.Edges() {
		if !s.Contains(e[0]) && !s.Contains(e[1]) {
			return false
		}
	}
	return true
}

func bruteIsDS(g *graph.Graph, s *bitset.Set) bool {
	for v := 0; v < g.N(); v++ {
		if s.Contains(v) {
			continue
		}
		found := false
		for _, u := range g.Adj(v) {
			if s.Contains(u) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestQuickCheckersAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(14)
		g := graph.GNP(n, 0.3, rng)
		g2 := g.Square()
		s := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				s.Add(v)
			}
		}
		okVC, _ := IsVertexCover(g, s)
		okVC2, _ := IsSquareVertexCover(g, s)
		okDS, _ := IsDominatingSet(g, s)
		okDS2, _ := IsSquareDominatingSet(g, s)
		return okVC == bruteIsVC(g, s) &&
			okVC2 == bruteIsVC(g2, s) &&
			okDS == bruteIsDS(g, s) &&
			okDS2 == bruteIsDS(g2, s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerVertexCoverMatchesExplicitPower(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		n := 3 + rng.Intn(12)
		g := graph.GNP(n, 0.25, rng)
		r := 1 + rng.Intn(4)
		s := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				s.Add(v)
			}
		}
		got, _ := IsPowerVertexCover(g, r, s)
		want := bruteIsVC(g.Power(r), s)
		if got != want {
			t.Fatalf("n=%d r=%d: got %v want %v", n, r, got, want)
		}
	}
}

func TestCostAndRatio(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.SetWeight(0, 5)
	b.SetWeight(1, 7)
	g := b.Build()
	if c := Cost(g, bitset.FromIndices(3, 0, 2)); c != 6 {
		t.Fatalf("Cost = %d, want 6", c)
	}

	r := RatioOf(15, 10)
	if r.Value != 1.5 {
		t.Fatalf("ratio = %v", r.Value)
	}
	if r.String() != "15/10 = 1.5000" {
		t.Fatalf("String = %q", r.String())
	}
	if RatioOf(0, 0).Value != 1 {
		t.Fatal("0/0 should be 1")
	}
	if v := RatioOf(3, 0).Value; v != 3 {
		t.Fatalf("3/0 = %v", v)
	}
	if math.IsNaN(RatioOf(0, 5).Value) {
		t.Fatal("0/5 is NaN")
	}
}

func TestMatchingLowerBound(t *testing.T) {
	// Any vertex cover of K4 has ≥ 2 vertices; maximal matching size 2.
	if lb := MatchingLowerBound(graph.Complete(4)); lb != 2 {
		t.Fatalf("lb = %d", lb)
	}
	if lb := MatchingLowerBound(graph.Path(2)); lb != 1 {
		t.Fatalf("lb = %d", lb)
	}
}

func TestIsPowerDominatingSet(t *testing.T) {
	g := graph.Path(7)
	for r := 1; r <= 4; r++ {
		gr := g.Power(r)
		for mask := 0; mask < 1<<7; mask++ {
			s := bitset.New(7)
			for v := 0; v < 7; v++ {
				if mask&(1<<v) != 0 {
					s.Add(v)
				}
			}
			got, _ := IsPowerDominatingSet(g, r, s)
			want, _ := IsDominatingSet(gr, s)
			if got != want {
				t.Fatalf("r=%d mask=%07b: IsPowerDominatingSet=%v, materialized check=%v", r, mask, got, want)
			}
		}
	}
}
