package twoparty

import (
	"math/rand"
	"testing"

	"powergraph/internal/bitset"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/lowerbound"
	"powergraph/internal/verify"
)

func TestCutVertices(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	alice := bitset.FromIndices(4, 0, 1)
	ca, cb := CutVertices(g, alice)
	if ca.String() != "{1}" || cb.String() != "{2}" {
		t.Fatalf("ca=%v cb=%v", ca, cb)
	}
}

func TestLemma25CoverFeasibleAndCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(10)
		g := graph.ConnectedGNP(n, 0.25, rng)
		// Random balanced-ish partition.
		alice := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				alice.Add(v)
			}
		}
		cover, tr := Lemma25Cover(g, alice)
		sq := g.Square()
		if ok, e := verify.IsVertexCover(sq, cover); !ok {
			t.Fatalf("Lemma 25 cover misses %v", e)
		}
		ca, cb := CutVertices(g, alice)
		opt := verify.Cost(sq, exact.VertexCover(sq))
		if got := int64(cover.Count()); got > opt+int64(ca.Count()+cb.Count()) {
			t.Fatalf("cover %d exceeds OPT (%d) + cut vertices (%d)",
				got, opt, ca.Count()+cb.Count())
		}
		// O(log n) bits only.
		if tr.Total() > 2*int64(countBits(n+1)) {
			t.Fatalf("transcript %d bits", tr.Total())
		}
	}
}

func TestLemma25OnLowerBoundFamily(t *testing.T) {
	// On the CKP17 gadget family with its logarithmic cut, the Lemma 25
	// protocol is a (1+o(1))-approximation — this is exactly why Theorem 19
	// cannot give super-constant bounds for approximate G²-MVC.
	rng := rand.New(rand.NewSource(2))
	x, y := lowerbound.RandomIntersectingPair(4, rng)
	u, err := lowerbound.BuildUnweightedMVCGadget(x, y)
	if err != nil {
		t.Fatal(err)
	}
	cover, tr := Lemma25Cover(u.H, u.Alice)
	sq := u.H.Square()
	if ok, e := verify.IsVertexCover(sq, cover); !ok {
		t.Fatalf("cover misses %v", e)
	}
	opt := verify.Cost(sq, exact.VertexCover(sq))
	got := int64(cover.Count())
	ca, cb := CutVertices(u.H, u.Alice)
	if got > opt+int64(ca.Count()+cb.Count()) {
		t.Fatalf("cover %d vs opt %d + cut %d", got, opt, ca.Count()+cb.Count())
	}
	if tr.Total() > 20 {
		t.Fatalf("transcript too large: %d bits", tr.Total())
	}
}

func TestTheorem19RoundLB(t *testing.T) {
	// k² bits over O(log k) cut edges with log n bit messages
	// (countBits(4096) = 13).
	lb := Theorem19RoundLB(DisjCCBits(1024*1024), 40, 4096)
	if lb != 1024*1024/(40*13) {
		t.Fatalf("lb = %d", lb)
	}
	if Theorem19RoundLB(100, 0, 10) != 0 {
		t.Fatal("zero cut should yield 0")
	}
}

func TestTheorem19ScalesQuadratically(t *testing.T) {
	// With |C| = Θ(log k) and CC = Θ(k²), the bound is Ω̃(k²): doubling k
	// must roughly quadruple it.
	lb1 := Theorem19RoundLB(DisjCCBits(64*64), 24, 512)
	lb2 := Theorem19RoundLB(DisjCCBits(128*128), 28, 1024)
	if lb2 < 3*lb1 {
		t.Fatalf("scaling broken: %d -> %d", lb1, lb2)
	}
}
