// Package twoparty implements the Alice–Bob communication framework of
// Section 5.1: vertex-partitioned graphs, cut accounting, the Theorem 19
// round lower-bound arithmetic, and the Lemma 25 O(log n)-bit protocol
// that rules out super-constant lower bounds for (1+ε)-approximate G²-MVC
// from small-cut families.
//
// Live cut traffic of distributed runs is measured by the simulator itself
// (congest.Config.CutA); this package supplies the centralized sides of the
// argument.
package twoparty

import (
	"powergraph/internal/bitset"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

// Transcript records the bits a two-party protocol exchanged.
type Transcript struct {
	AliceToBobBits int64
	BobToAliceBits int64
	Messages       int
}

// Total returns the total bits exchanged.
func (t Transcript) Total() int64 { return t.AliceToBobBits + t.BobToAliceBits }

// CutVertices returns the endpoints of cut edges on each side of the
// partition (C_A ⊆ A, C_B ⊆ V∖A).
func CutVertices(g *graph.Graph, alice *bitset.Set) (ca, cb *bitset.Set) {
	ca = bitset.New(g.N())
	cb = bitset.New(g.N())
	for _, e := range g.Edges() {
		ia, ib := alice.Contains(e[0]), alice.Contains(e[1])
		if ia != ib {
			if ia {
				ca.Add(e[0])
				cb.Add(e[1])
			} else {
				ca.Add(e[1])
				cb.Add(e[0])
			}
		}
	}
	return ca, cb
}

// Lemma25Cover runs the protocol from Lemma 25: each player takes all of
// its cut vertices plus an optimal cover of the G²-edges that remain
// strictly inside its side, then the players exchange their counts
// (O(log n) bits). The result is a vertex cover of G² whose size exceeds
// the optimum by at most |C_A| + |C_B| — a (1+o(1))-approximation whenever
// the cut is o(n), which is why Theorem 19 cannot prove super-constant
// lower bounds for (1+ε)-approximate G²-MVC (Section 5.4).
//
// A G²-edge between two non-cut vertices of one side cannot have its
// 2-path witness on the other side (both witness edges would be cut edges,
// making the endpoints cut vertices), so each player's subproblem is
// computable from its own view.
func Lemma25Cover(g *graph.Graph, alice *bitset.Set) (*bitset.Set, Transcript) {
	n := g.N()
	ca, cb := CutVertices(g, alice)

	cover := bitset.New(n)
	cover.Or(ca)
	cover.Or(cb)

	sideCover := func(side *bitset.Set, cut *bitset.Set) int64 {
		inner := side.Clone()
		inner.AndNot(cut)
		sub, orig := g.SquareInduced(inner)
		local := exact.VertexCover(sub)
		local.ForEach(func(i int) bool {
			cover.Add(orig[i])
			return true
		})
		return verify.Cost(sub, local)
	}
	bob := alice.Clone()
	bob.Complement()
	aCount := sideCover(alice, ca) + int64(ca.Count())
	bCount := sideCover(bob, cb) + int64(cb.Count())
	_ = aCount
	_ = bCount

	// The only communication: each player announces its count.
	idBits := int64(countBits(n + 1))
	tr := Transcript{
		AliceToBobBits: idBits,
		BobToAliceBits: idBits,
		Messages:       2,
	}
	return cover, tr
}

// Theorem19RoundLB evaluates the framework's round lower bound
// Ω(CC(f) / (|C|·log n)): with ccBits of communication complexity forced
// over cutEdges edges carrying logN-bit messages per round, at least this
// many rounds are needed.
func Theorem19RoundLB(ccBits int64, cutEdges, n int) int64 {
	if cutEdges <= 0 {
		return 0
	}
	per := int64(cutEdges * countBits(n))
	if per == 0 {
		return 0
	}
	return ccBits / per
}

// DisjCCBits returns the Θ(K) communication-complexity lower bound for
// set disjointness on K-bit inputs ([KN97]), the ccBits feeding
// Theorem19RoundLB in all of the paper's reductions.
func DisjCCBits(k int) int64 { return int64(k) }

func countBits(n int) int {
	b := 0
	for v := n; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
