package lowerbound

import (
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/verify"
)

func TestBCD19Structure(t *testing.T) {
	x, y := NewMatrix(4), NewMatrix(4)
	c, err := BuildBCD19MDS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if c.G.N() != 4*4+12*2 {
		t.Fatalf("n = %d, want 40", c.G.N())
	}
	// Complement encoding: a¹₁ connects to all t's, never f's.
	for j := 0; j < c.LogK; j++ {
		if !c.G.HasEdge(c.A1[0], c.TA1[j]) || c.G.HasEdge(c.A1[0], c.FA1[j]) {
			t.Fatal("complement encoding wrong for a1_1")
		}
	}
	// Rows are independent sets (no clique edges, unlike the MVC family).
	if c.G.HasEdge(c.A1[0], c.A1[1]) {
		t.Fatal("row set is not independent")
	}
	// Cut is O(log k): two crossing edges per 6-cycle.
	if cut := c.CutSize(); cut != 4*c.LogK {
		t.Fatalf("cut = %d, want %d", cut, 4*c.LogK)
	}
	if _, err := BuildBCD19MDS(NewMatrix(3), NewMatrix(3)); err == nil {
		t.Fatal("k=3 accepted")
	}
}

func TestBCD19SixCycleDominatingPairs(t *testing.T) {
	// The 6-cycle's 2-vertex dominating sets must be exactly the three
	// antipodal letter pairs — that is what encodes a consistent bit.
	c, err := BuildBCD19MDS(NewMatrix(2), NewMatrix(2))
	if err != nil {
		t.Fatal(err)
	}
	cyc := []int{c.FA1[0], c.TA1[0], c.UA1[0], c.FB1[0], c.TB1[0], c.UB1[0]}
	inCycle := map[int]bool{}
	for _, v := range cyc {
		inCycle[v] = true
	}
	dominatesCycle := func(a, b int) bool {
		for _, v := range cyc {
			if v == a || v == b || c.G.HasEdge(v, a) || c.G.HasEdge(v, b) {
				continue
			}
			return false
		}
		return true
	}
	want := map[[2]int]bool{
		{c.FA1[0], c.FB1[0]}: true,
		{c.TA1[0], c.TB1[0]}: true,
		{c.UA1[0], c.UB1[0]}: true,
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			a, b := cyc[i], cyc[j]
			key := [2]int{min2(a, b), max2(a, b)}
			wantOK := want[key] || want[[2]int{max2(a, b), min2(a, b)}]
			if got := dominatesCycle(a, b); got != wantOK {
				t.Fatalf("pair (%s,%s): dominates=%v want %v",
					c.G.Name(a), c.G.Name(b), got, wantOK)
			}
		}
	}
}

// TestBCD19PredicateExhaustive verifies the Figure 4 predicate for all 256
// input pairs at k=2: MDS(G_{x,y}) ≤ 4·log₂k+2 iff DISJ(x,y) = false.
func TestBCD19PredicateExhaustive(t *testing.T) {
	k := 2
	EnumerateMatrices(k, func(x Matrix) {
		EnumerateMatrices(k, func(y Matrix) {
			c, err := BuildBCD19MDS(x, y)
			if err != nil {
				t.Fatal(err)
			}
			opt := verify.Cost(c.G, exact.DominatingSet(c.G))
			disj := Disj(x.Bits, y.Bits)
			if (opt <= c.DomTarget()) == disj {
				t.Fatalf("x=%v y=%v: MDS=%d, W=%d, DISJ=%v — predicate misaligned",
					x.Bits, y.Bits, opt, c.DomTarget(), disj)
			}
		})
	})
}

func TestBCD19WitnessDomSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		k := []int{2, 4}[trial%2]
		x, y := RandomIntersectingPair(k, rng)
		var wi, wj int
		for i := 1; i <= k && wi == 0; i++ {
			for j := 1; j <= k; j++ {
				if x.At(i, j) && y.At(i, j) {
					wi, wj = i, j
					break
				}
			}
		}
		c, err := BuildBCD19MDS(x, y)
		if err != nil {
			t.Fatal(err)
		}
		ds := c.WitnessDomSet(wi, wj)
		if ok, v := verify.IsDominatingSet(c.G, ds); !ok {
			t.Fatalf("witness not dominating: %s undominated", c.G.Name(v))
		}
		if got := int64(ds.Count()); got != c.DomTarget() {
			t.Fatalf("witness size %d, want %d", got, c.DomTarget())
		}
	}
}

func TestBCD19PredicateSampledK4(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		var x, y Matrix
		if trial%2 == 0 {
			x, y = RandomIntersectingPair(4, rng)
		} else {
			x, y = RandomDisjointPair(4, rng)
		}
		c, err := BuildBCD19MDS(x, y)
		if err != nil {
			t.Fatal(err)
		}
		opt := verify.Cost(c.G, exact.DominatingSet(c.G))
		disj := Disj(x.Bits, y.Bits)
		if (opt <= c.DomTarget()) == disj {
			t.Fatalf("k=4 trial %d: MDS=%d W=%d DISJ=%v", trial, opt, c.DomTarget(), disj)
		}
	}
}
