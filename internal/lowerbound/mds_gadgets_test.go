package lowerbound

import (
	"math/rand"
	"testing"

	"powergraph/internal/bitset"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func TestMDSGadgetStructure(t *testing.T) {
	m, err := BuildMDSGadget(NewMatrix(2), NewMatrix(2))
	if err != nil {
		t.Fatal(err)
	}
	k, lk := m.BaseFamily.K, m.BaseFamily.LogK
	// Gadget count: one per bit-incident edge + one shared per row vertex.
	// Bit-incident edges: 12·logk cycle edges + 4k·logk row edges.
	want := 12*lk + 4*k*lk + 4*k
	if m.GadgetCount() != want {
		t.Fatalf("gadgets = %d, want %d", m.GadgetCount(), want)
	}
	if m.H.N() != m.BaseFamily.G.N()+5*want {
		t.Fatalf("n = %d", m.H.N())
	}
	// Every row vertex has a shared head; bit vertices do not.
	for _, v := range m.BaseFamily.A1 {
		if _, ok := m.SharedHead[v]; !ok {
			t.Fatal("row vertex missing shared head")
		}
	}
	if _, ok := m.SharedHead[m.BaseFamily.TA1[0]]; ok {
		t.Fatal("bit vertex has shared head")
	}
	// Original input edges are gone from H (they are routed through heads).
	for _, e := range m.BaseFamily.XEdges {
		if m.H.HasEdge(e[0], e[1]) {
			t.Fatal("input edge not replaced")
		}
		if !m.H.HasEdge(m.SharedHead[e[0]], m.SharedHead[e[1]]) {
			t.Fatal("head-to-head edge missing")
		}
	}
}

// TestLemma34UpperDirectionExhaustive checks, for all 256 pairs at k=2,
// that lifting a normal-form optimal base dominating set yields a feasible
// dominating set of H² of size MDS(G) + #gadgets — the "reverse direction"
// of Lemma 34's proof, and an unconditional upper bound on MDS(H²). The
// lift requires the [BCD+19] normal form (bit vertices dominated by bit
// vertices), whose costlessness is asserted here too.
func TestLemma34UpperDirectionExhaustive(t *testing.T) {
	k := 2
	EnumerateMatrices(k, func(x Matrix) {
		EnumerateMatrices(k, func(y Matrix) {
			m, err := BuildMDSGadget(x, y)
			if err != nil {
				t.Fatal(err)
			}
			plain := exact.DominatingSet(m.BaseFamily.G).Count()
			baseDS := m.BaseFamily.NormalFormDomSet()
			if ok, v := verify.IsDominatingSet(m.BaseFamily.G, baseDS); !ok {
				t.Fatalf("normal form not dominating: %d", v)
			}
			if baseDS.Count() != plain {
				t.Fatalf("x=%v y=%v: normal form costs %d ≠ optimum %d",
					x.Bits, y.Bits, baseDS.Count(), plain)
			}
			lifted := m.WitnessDomSet(baseDS)
			h2 := m.H.Square()
			if ok, v := verify.IsDominatingSet(h2, lifted); !ok {
				t.Fatalf("x=%v y=%v: lifted DS leaves %s undominated",
					x.Bits, y.Bits, m.H.Name(v))
			}
			want := baseDS.Count() + m.GadgetCount()
			if lifted.Count() != want {
				t.Fatalf("lifted size %d, want %d", lifted.Count(), want)
			}
		})
	})
}

// TestLemma34ReducedEqualsBaseExhaustive checks, for all 256 pairs at k=2,
// that the Lemma 32/33 normal-form residual problem (dominate the original
// vertices using originals and shared heads in H²) has optimum exactly
// MDS(G) — the engine of Lemma 34.
func TestLemma34ReducedEqualsBaseExhaustive(t *testing.T) {
	k := 2
	EnumerateMatrices(k, func(x Matrix) {
		EnumerateMatrices(k, func(y Matrix) {
			m, err := BuildMDSGadget(x, y)
			if err != nil {
				t.Fatal(err)
			}
			inst, _ := m.ReducedSetCover()
			chosen := exact.SetCover(inst)
			if chosen == nil {
				t.Fatal("reduced instance infeasible")
			}
			baseOpt := int(verify.Cost(m.BaseFamily.G, exact.DominatingSet(m.BaseFamily.G)))
			if len(chosen) != baseOpt {
				t.Fatalf("x=%v y=%v: reduced optimum %d ≠ MDS(G) = %d",
					x.Bits, y.Bits, len(chosen), baseOpt)
			}
		})
	})
}

// TestGenericGadgetStructuralLaw is the unconditional machine check of the
// Lemma 32/33 normal-form machinery: on arbitrary small bases, the direct
// exact optimum of H² equals #gadgets + the reduced set-cover optimum.
// (The full BCD+19 instance at k=2 is a 160-vertex square whose direct
// solve is impractical; the transformation is base-agnostic, so verifying
// the law on random bases and the reduction on the real family together
// pin Lemma 34.)
func TestGenericGadgetStructuralLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(4)
		base := graph.GNP(n, 0.45, rng)
		if base.M() == 0 {
			continue
		}
		rows := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				rows.Add(v)
			}
		}
		m := BuildGenericMDSGadget(base, rows)
		h2 := m.H.Square()
		ds, err := exact.DominatingSetBounded(h2, 50_000_000)
		if err != nil {
			t.Fatalf("trial %d (n=%d, %d gadgets): %v", trial, n, m.GadgetCount(), err)
		}
		direct := int(verify.Cost(h2, ds))
		structural := m.StructuralOptimum()
		if direct != structural {
			t.Fatalf("trial %d: direct MDS(H²)=%d ≠ structural %d (=%d gadgets + reduced)",
				trial, direct, structural, m.GadgetCount())
		}
	}
}

// TestGenericGadgetWitnessFeasible checks the lift on generic bases with a
// row-free dominating set requirement relaxed: committing P[3]s plus any
// reduced-set-cover solution is always feasible.
func TestGenericGadgetReducedSolutionsLift(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(5)
		base := graph.GNP(n, 0.4, rng)
		rows := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				rows.Add(v)
			}
		}
		m := BuildGenericMDSGadget(base, rows)
		inst, candidates := m.ReducedSetCover()
		chosen := exact.SetCover(inst)
		if chosen == nil {
			t.Fatal("infeasible reduced instance")
		}
		ds := bitset.New(m.H.N())
		for _, g := range m.Gadgets {
			ds.Add(g[2])
		}
		for _, i := range chosen {
			ds.Add(candidates[i])
		}
		h2 := m.H.Square()
		if ok, v := verify.IsDominatingSet(h2, ds); !ok {
			t.Fatalf("trial %d: lifted reduced solution leaves %s undominated",
				trial, m.H.Name(v))
		}
	}
}

// TestLemma34PredicateAlignment combines the verified directions: the
// H-family's dominating-set size tracks DISJ with the gadget offset.
func TestLemma34PredicateAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 6; trial++ {
		var x, y Matrix
		if trial%2 == 0 {
			x, y = RandomIntersectingPair(2, rng)
		} else {
			x, y = RandomDisjointPair(2, rng)
		}
		m, err := BuildMDSGadget(x, y)
		if err != nil {
			t.Fatal(err)
		}
		inst, _ := m.ReducedSetCover()
		reduced := len(exact.SetCover(inst))
		total := int64(reduced + m.GadgetCount())
		threshold := m.BaseFamily.DomTarget() + int64(m.GadgetCount())
		disj := Disj(x.Bits, y.Bits)
		if (total <= threshold) == disj {
			t.Fatalf("trial %d: size %d threshold %d DISJ=%v", trial, total, threshold, disj)
		}
	}
}
