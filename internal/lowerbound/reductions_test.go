package lowerbound

import (
	"math/rand"
	"testing"

	"powergraph/internal/core"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

// TestTheorem44VCReduction verifies VC(H²) = VC(G) + 2m on random graphs.
func TestTheorem44VCReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(6)
		g := graph.GNP(n, 0.4, rng)
		if g.M() == 0 {
			continue
		}
		r := BuildDanglingPathReduction(g)
		h2 := r.H.Square()
		optG := verify.Cost(g, exact.VertexCover(g))
		optH2 := verify.Cost(h2, exact.VertexCover(h2))
		if optH2 != optG+2*int64(g.M()) {
			t.Fatalf("n=%d m=%d: VC(H²)=%d, want VC(G)+2m = %d",
				n, g.M(), optH2, optG+2*int64(g.M()))
		}
	}
}

func TestTheorem44SquareRestrictsToG(t *testing.T) {
	// The crux: H² induced on the original vertices is exactly G.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(3+rng.Intn(8), 0.5, rng)
		r := BuildDanglingPathReduction(g)
		h2 := r.H.Square()
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				if g.HasEdge(u, v) != h2.HasEdge(u, v) {
					t.Fatalf("H²[V_G] ≠ G at {%d,%d}", u, v)
				}
			}
		}
	}
}

func TestTheorem44LiftAndProject(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.ConnectedGNP(8, 0.3, rng)
	r := BuildDanglingPathReduction(g)
	h2 := r.H.Square()

	lifted := r.LiftCover(exact.VertexCover(g))
	if ok, e := verify.IsVertexCover(h2, lifted); !ok {
		t.Fatalf("lifted cover misses %v", e)
	}
	projected := r.ProjectCover(exact.VertexCover(h2))
	if ok, e := verify.IsVertexCover(g, projected); !ok {
		t.Fatalf("projected cover misses %v", e)
	}
}

// TestTheorem45MDSReduction verifies MDS(H²) = MDS(G) + 1.
func TestTheorem45MDSReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(6)
		g := graph.GNP(n, 0.4, rng)
		if g.M() == 0 {
			continue
		}
		r, err := BuildMergedPathReduction(g)
		if err != nil {
			t.Fatal(err)
		}
		h2 := r.H.Square()
		optG := verify.Cost(g, exact.DominatingSet(g))
		optH2 := verify.Cost(h2, exact.DominatingSet(h2))
		if optH2 != optG+1 {
			t.Fatalf("n=%d: MDS(H²)=%d, want MDS(G)+1 = %d", n, optH2, optG+1)
		}
		// Lift feasibility.
		lifted := r.LiftDomSet(exact.DominatingSet(g))
		if ok, v := verify.IsDominatingSet(h2, lifted); !ok {
			t.Fatalf("lifted DS leaves %s undominated", r.H.Name(v))
		}
	}
}

func TestMergedReductionRejectsEdgeless(t *testing.T) {
	if _, err := BuildMergedPathReduction(graph.NewBuilder(3).Build()); err == nil {
		t.Fatal("edgeless graph accepted")
	}
}

// TestTheorem26Pipeline runs the conditional-hardness reduction end to
// end: G → H (dangling paths) → distributed (1+ε)-approximate G²-MVC on H
// → projected cover of G, which must be feasible and (1+δ)-approximate.
func TestTheorem26Pipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	delta := 0.5
	for trial := 0; trial < 5; trial++ {
		n := 6 + rng.Intn(8)
		g := graph.ConnectedGNP(n, 0.3, rng)
		r := BuildDanglingPathReduction(g)

		optLB := verify.MatchingLowerBound(g)
		eps := r.ReductionEpsilon(delta, optLB)
		if eps <= 0 {
			t.Fatal("non-positive epsilon")
		}
		res, err := core.ApproxMVCCongest(r.H, eps, &core.Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := verify.IsSquareVertexCover(r.H, res.Solution); !ok {
			t.Fatal("H² cover infeasible")
		}
		projected := r.ProjectCover(res.Solution)
		if ok, e := verify.IsVertexCover(g, projected); !ok {
			t.Fatalf("projected cover misses %v", e)
		}
		optG := verify.Cost(g, exact.VertexCover(g))
		got := verify.Cost(g, projected)
		if optG > 0 && float64(got) > (1+delta)*float64(optG)+1e-9 {
			t.Fatalf("projected ratio %d/%d exceeds 1+δ", got, optG)
		}
	}
}

// TestTheorem26CostAccounting checks the proof's central inequality on
// actual runs: |C| ≤ |C_H| − 2m, and OPT_H = OPT_G + 2m.
func TestTheorem26CostAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := graph.ConnectedGNP(9, 0.3, rng)
	r := BuildDanglingPathReduction(g)
	h2 := r.H.Square()

	optG := verify.Cost(g, exact.VertexCover(g))
	optH := verify.Cost(h2, exact.VertexCover(h2))
	if optH != optG+2*int64(g.M()) {
		t.Fatalf("OPT_H = %d, want %d", optH, optG+2*int64(g.M()))
	}

	res, err := core.ApproxMVCCongest(r.H, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	projected := r.ProjectCover(res.Solution)
	if int64(projected.Count()) > verify.Cost(h2, res.Solution)-2*int64(g.M()) {
		t.Fatal("|C| > |C_H| - 2m: gadgets under-covered?")
	}
}
