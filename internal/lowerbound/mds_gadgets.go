package lowerbound

import (
	"fmt"
	"sort"

	"powergraph/internal/bitset"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
)

// GenericMDSGadget applies the Theorem 31 transformation to an arbitrary
// base graph: every edge with both endpoints in the designated row set is
// rewired head-to-head between 5-vertex shared path gadgets, every other
// edge is replaced by a 5-vertex dangling path gadget, and every row vertex
// receives a shared gadget.
//
// Its structural law — verified by direct exact solves on small random
// bases, which is the machine check of Lemmas 32/33 —
//
//	MDS(H²) = #gadgets + OPT(ReducedSetCover)
//
// holds for any base: optimal solutions normalize to all gadget midpoints
// P[3] plus a selection of original vertices and shared heads.
type GenericMDSGadget struct {
	Base *graph.Graph
	Rows *bitset.Set
	H    *graph.Graph
	// Gadgets lists every 5-vertex path gadget [P1 P2 P3 P4 P5].
	Gadgets [][5]int
	// SharedHead[v] is the [1] vertex of the shared gadget of row vertex v.
	SharedHead map[int]int
	// DanglingFor[i] gives, for Gadgets[i], the base edge it replaced
	// ([-1,-1] for shared gadgets).
	DanglingFor [][2]int
}

// GadgetCount returns the number of path gadgets (the offset in the
// structural law).
func (m *GenericMDSGadget) GadgetCount() int { return len(m.Gadgets) }

// BuildGenericMDSGadget constructs the transformation. rows may be empty
// (then every edge gets a dangling gadget and there are no shared gadgets).
func BuildGenericMDSGadget(base *graph.Graph, rows *bitset.Set) *GenericMDSGadget {
	nG := base.N()
	var rowEdges, otherEdges [][2]int
	for _, e := range base.Edges() {
		if rows.Contains(e[0]) && rows.Contains(e[1]) {
			rowEdges = append(rowEdges, e)
		} else {
			otherEdges = append(otherEdges, e)
		}
	}
	gadgets := len(otherEdges) + rows.Count()
	n := nG + 5*gadgets
	b := graph.NewBuilder(n)
	for v := 0; v < nG; v++ {
		b.SetName(v, base.Name(v))
	}

	m := &GenericMDSGadget{Base: base, Rows: rows.Clone(), SharedHead: make(map[int]int)}
	next := nG
	newGadget := func(name string, replaced [2]int) [5]int {
		var g [5]int
		for i := 0; i < 5; i++ {
			g[i] = next
			b.SetName(next, fmt.Sprintf("%s[%d]", name, i+1))
			next++
		}
		for i := 0; i < 4; i++ {
			b.MustAddEdge(g[i], g[i+1])
		}
		m.Gadgets = append(m.Gadgets, g)
		m.DanglingFor = append(m.DanglingFor, replaced)
		return g
	}

	for idx, e := range otherEdges {
		g := newGadget(fmt.Sprintf("DP%d", idx), e)
		b.MustAddEdge(g[0], e[0])
		b.MustAddEdge(g[0], e[1])
	}
	rows.ForEach(func(v int) bool {
		g := newGadget(fmt.Sprintf("SH%d", v), [2]int{-1, -1})
		b.MustAddEdge(g[0], v)
		m.SharedHead[v] = g[0]
		return true
	})
	for _, e := range rowEdges {
		b.MustAddEdge(m.SharedHead[e[0]], m.SharedHead[e[1]])
	}
	m.H = b.Build()
	return m
}

// WitnessDomSet lifts a dominating set of the base graph to one of H² of
// size |ds| + #gadgets, provided ds dominates every non-row vertex without
// using row-to-nonrow edges (the normal form the BCD+19 instance supplies;
// see BCD19MDS.NormalFormDomSet): every gadget midpoint P[3] joins, and
// selected row vertices are replaced by their shared heads.
func (m *GenericMDSGadget) WitnessDomSet(baseDS *bitset.Set) *bitset.Set {
	s := bitset.New(m.H.N())
	for _, g := range m.Gadgets {
		s.Add(g[2])
	}
	baseDS.ForEach(func(v int) bool {
		if head, ok := m.SharedHead[v]; ok {
			s.Add(head)
		} else {
			s.Add(v)
		}
		return true
	})
	return s
}

// ReducedSetCover is the Lemma 32/33 residual problem: with all gadget
// midpoints committed (covering every gadget vertex of H²), dominate the
// original base vertices using only original vertices and shared heads.
// candidates[i] names the H-vertex behind set i.
func (m *GenericMDSGadget) ReducedSetCover() (inst *exact.SetCoverInstance, candidates []int) {
	h2 := m.H.Square()
	nG := m.Base.N()
	for v := 0; v < nG; v++ {
		candidates = append(candidates, v)
	}
	heads := make([]int, 0, len(m.SharedHead))
	for _, head := range m.SharedHead {
		heads = append(heads, head)
	}
	sort.Ints(heads)
	candidates = append(candidates, heads...)

	inst = &exact.SetCoverInstance{UniverseSize: nG}
	for _, c := range candidates {
		cov := bitset.New(nG)
		if c < nG {
			cov.Add(c)
		}
		h2.AdjRow(c).ForEach(func(u int) bool {
			if u < nG {
				cov.Add(u)
			}
			return true
		})
		inst.Sets = append(inst.Sets, cov)
	}
	return inst, candidates
}

// StructuralOptimum returns #gadgets + OPT(ReducedSetCover), which equals
// MDS(H²) by the (test-verified) structural law.
func (m *GenericMDSGadget) StructuralOptimum() int {
	inst, _ := m.ReducedSetCover()
	chosen := exact.SetCover(inst)
	if chosen == nil {
		return -1
	}
	return m.GadgetCount() + len(chosen)
}

// MDSGadget is the Theorem 31 family H_{x,y} (Figure 5): the generic
// transformation applied to the BCD+19 graph with the four row sets as
// rows. Lemma 34 (verified in tests): MDS(H²_{x,y}) = MDS(G_{x,y}) +
// #gadgets.
//
// Note: the paper states the offset as 2k + 4k·log₂k + 12·log₂k, but its
// own construction attaches shared gadgets to all four row sets (4k of
// them, matching Figure 5); the first term should read 4k. Tests pin the
// machine-checked count.
type MDSGadget struct {
	*GenericMDSGadget
	BaseFamily *BCD19MDS
	Alice      *bitset.Set
}

// BuildMDSGadget constructs the Figure 5 family.
func BuildMDSGadget(x, y Matrix) (*MDSGadget, error) {
	base, err := BuildBCD19MDS(x, y)
	if err != nil {
		return nil, err
	}
	rows := bitset.New(base.G.N())
	for _, set := range [][]int{base.A1, base.A2, base.B1, base.B2} {
		for _, v := range set {
			rows.Add(v)
		}
	}
	gen := BuildGenericMDSGadget(base.G, rows)

	m := &MDSGadget{GenericMDSGadget: gen, BaseFamily: base}
	m.Alice = bitset.New(gen.H.N())
	base.Alice.ForEach(func(v int) bool {
		m.Alice.Add(v)
		return true
	})
	// Gadgets whose anchors are entirely on Alice's side join her.
	for i, g := range gen.Gadgets {
		e := gen.DanglingFor[i]
		aliceGadget := false
		if e[0] >= 0 {
			aliceGadget = base.Alice.Contains(e[0]) && base.Alice.Contains(e[1])
		} else {
			// Shared gadget: find its owner.
			owner := -1
			for v, head := range gen.SharedHead {
				if head == g[0] {
					owner = v
					break
				}
			}
			aliceGadget = owner >= 0 && base.Alice.Contains(owner)
		}
		if aliceGadget {
			for _, v := range g {
				m.Alice.Add(v)
			}
		}
	}
	return m, nil
}
