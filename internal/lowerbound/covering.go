package lowerbound

import (
	"fmt"
	"math"
	"math/rand"

	"powergraph/internal/bitset"
)

// CoveringFamily is a system of sets S_1,…,S_T over the universe {0,…,L-1},
// used by the set gadgets of Section 7.2 (Definition 37 / Lemma 38).
type CoveringFamily struct {
	T, L int
	Sets []*bitset.Set
}

// Complement returns the complement S̄_i within the universe.
func (f *CoveringFamily) Complement(i int) *bitset.Set {
	c := f.Sets[i].Clone()
	c.Complement()
	return c
}

// CubeFamily returns the canonical family with a perfect covering property:
// the universe is {0,1}^T (L = 2^T) and S_i contains the points whose i-th
// coordinate is 1. Every collection of sets that avoids complementary pairs
// misses the point encoding the complementary sign pattern, so the
// r-covering property holds for every r ≤ T — the strongest possible
// instantiation of Definition 37 for small T.
func CubeFamily(T int) *CoveringFamily {
	if T < 1 || T > 20 {
		panic(fmt.Sprintf("lowerbound: CubeFamily T=%d out of range", T))
	}
	L := 1 << uint(T)
	f := &CoveringFamily{T: T, L: L}
	for i := 0; i < T; i++ {
		s := bitset.New(L)
		for p := 0; p < L; p++ {
			if p>>uint(i)&1 == 1 {
				s.Add(p)
			}
		}
		f.Sets = append(f.Sets, s)
	}
	return f
}

// RandomFamily draws each membership independently with probability 1/2 —
// the probabilistic construction behind Lemma 38. Callers must check
// VerifyRCovering and retry; Lemma 38 guarantees success for
// L ≥ r·2^r·ln T + O(1).
func RandomFamily(T, L int, rng *rand.Rand) *CoveringFamily {
	f := &CoveringFamily{T: T, L: L}
	for i := 0; i < T; i++ {
		s := bitset.New(L)
		for p := 0; p < L; p++ {
			if rng.Intn(2) == 0 {
				s.Add(p)
			}
		}
		f.Sets = append(f.Sets, s)
	}
	return f
}

// VerifyRCovering exhaustively checks Definition 37: every collection of
// exactly r sets drawn from {S_i, S̄_i} with no complementary pair leaves
// at least one universe element uncovered. Cost: C(T,r)·2^r subset checks.
func (f *CoveringFamily) VerifyRCovering(r int) bool {
	if r > f.T {
		return true // no legal collection of r sets exists
	}
	idx := make([]int, r)
	var rec func(pos, start int) bool
	union := make([]*bitset.Set, r+1)
	union[0] = bitset.New(f.L)
	rec = func(pos, start int) bool {
		if pos == r {
			return union[r].Count() < f.L
		}
		for i := start; i < f.T; i++ {
			idx[pos] = i
			for _, signed := range []*bitset.Set{f.Sets[i], f.Complement(i)} {
				union[pos+1] = union[pos].Union(signed)
				if !rec(pos+1, i+1) {
					return false
				}
			}
		}
		return true
	}
	return rec(0, 0)
}

// FindRCoveringFamily retries RandomFamily until VerifyRCovering(r)
// succeeds, growing L by 25% every maxTries failures. It demonstrates the
// Lemma 38 existence argument constructively.
func FindRCoveringFamily(T, r int, rng *rand.Rand) *CoveringFamily {
	// Lemma 38's inversion: L ≈ r·2^r·ln T suffices w.h.p.
	l := 4
	if T > 1 {
		approx := float64(r) * float64(int(1)<<uint(r)) * math.Log(float64(T))
		l = int(approx) + 4
	}
	const maxTries = 30
	for {
		for try := 0; try < maxTries; try++ {
			f := RandomFamily(T, l, rng)
			if f.VerifyRCovering(r) {
				return f
			}
		}
		l += l/4 + 1
	}
}
