package lowerbound

import (
	"fmt"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// SetGadgetMDS is the approximation-hardness family H_{x,y} of Sections
// 7.2–7.3 (Figures 6–7): row sets A, A', B, B' of size T; two set gadgets
// (G_MDS for A/B, G'_MDS for A'/B') built from an r-covering family; two
// shared path-gadget heads per row vertex, all merged into one tail per
// player (A*, B*); and the disjointness edges routed head-to-head.
//
// In the weighted variant (Theorem 35) the element vertices α_p, β_p and
// the hubs α, β carry weight HeavyWeight, the merged tails' midpoints
// A*[3], B*[3] weigh 0, and everything else weighs 1; the minimum weighted
// dominating set of H² weighs ≤ 6 iff DISJ(x,y) = false and ≥ 7 otherwise.
//
// In the unweighted variant (Theorem 41) the hubs are replaced by the
// pendant q-vertices wired to the merged tails, and the gap becomes
// 8 vs 9.
type SetGadgetMDS struct {
	T        int
	Weighted bool
	// HeavyWeight is the weight of element vertices in the weighted
	// variant (the paper's r, chosen > 6 so heavy vertices are never
	// affordable).
	HeavyWeight int64
	Family      *CoveringFamily
	H           *graph.Graph

	// Rows (ids by 0-based index).
	A, APrime, B, BPrime []int
	// Heads: for each row vertex v, HeadInput[v] is the [1] vertex of its
	// input gadget (a/a'/b/b') and HeadSet[v] the [1] of its set gadget.
	HeadInput, HeadSet map[int]int
	// Merged tails [3],[4],[5].
	AStar, BStar [3]int
	// Set gadget vertices (unprimed and primed copies).
	S, Sbar, SPrime, SbarPrime         []int
	Alpha, Beta, AlphaPrime, BetaPrime []int
	// Hubs (weighted variant only; -1 otherwise).
	AlphaHub, BetaHub, AlphaHubPrime, BetaHubPrime int
	// Pendants (unweighted variant only).
	Q, Qbar, QPrime, QbarPrime []int

	Alice *bitset.Set
}

// GapLow returns the dominating-set cost achievable when DISJ = false
// (6 weighted, 8 unweighted); GapHigh = GapLow+1 is the minimum when
// DISJ = true.
func (s *SetGadgetMDS) GapLow() int64 {
	if s.Weighted {
		return 6
	}
	return 8
}

// BuildSetGadgetMDS constructs the family. The family f must satisfy the
// covering property for the relevant r (CubeFamily(T) always works);
// heavyWeight must exceed 6 in the weighted variant.
func BuildSetGadgetMDS(x, y Matrix, f *CoveringFamily, weighted bool, heavyWeight int64) (*SetGadgetMDS, error) {
	T := x.K
	if y.K != T || f.T != T {
		return nil, fmt.Errorf("lowerbound: size mismatch: x=%d y=%d family=%d", x.K, y.K, f.T)
	}
	if T < 2 {
		return nil, fmt.Errorf("lowerbound: need T ≥ 2, got %d", T)
	}
	if weighted && heavyWeight <= 6 {
		return nil, fmt.Errorf("lowerbound: heavy weight %d must exceed the gap bound 6", heavyWeight)
	}
	L := f.L

	// Vertex budget: 4T rows + 4T heads ([1]+[2] each → 16T) + 6 tails +
	// 2·(2T sets + 2L elements) + hubs (4, weighted) or pendants (4T).
	n := 4*T + 16*T + 6 + 2*(2*T+2*L)
	if weighted {
		n += 4
	} else {
		n += 4 * T
	}
	b := graph.NewBuilder(n)
	g := &SetGadgetMDS{
		T: T, Weighted: weighted, HeavyWeight: heavyWeight, Family: f,
		HeadInput: make(map[int]int), HeadSet: make(map[int]int),
		AlphaHub: -1, BetaHub: -1, AlphaHubPrime: -1, BetaHubPrime: -1,
	}
	next := 0
	alloc := func(name string, weight int64) int {
		id := next
		next++
		b.SetName(id, name)
		if weighted {
			b.SetWeight(id, weight)
		}
		return id
	}
	mkRows := func(name string) []int {
		ids := make([]int, T)
		for i := range ids {
			ids[i] = alloc(fmt.Sprintf("%s_%d", name, i+1), 1)
		}
		return ids
	}
	g.A, g.APrime = mkRows("a"), mkRows("a'")
	g.B, g.BPrime = mkRows("b"), mkRows("b'")

	// Merged tails.
	tail := func(name string) [3]int {
		var t [3]int
		t[0] = alloc(name+"[3]", 0)
		t[1] = alloc(name+"[4]", 1)
		t[2] = alloc(name+"[5]", 1)
		b.MustAddEdge(t[0], t[1])
		b.MustAddEdge(t[1], t[2])
		return t
	}
	g.AStar = tail("A*")
	g.BStar = tail("B*")

	// Heads: two per row, each a [1]–[2] pair with [2] wired to the
	// player's merged tail midpoint.
	head := func(name string, owner int, star [3]int) int {
		h1 := alloc(name+"[1]", 1)
		h2 := alloc(name+"[2]", 1)
		b.MustAddEdge(h1, h2)
		b.MustAddEdge(h2, star[0])
		b.MustAddEdge(h1, owner)
		return h1
	}
	for i, v := range g.A {
		g.HeadInput[v] = head(fmt.Sprintf("Aa%d", i+1), v, g.AStar)
		g.HeadSet[v] = head(fmt.Sprintf("AS%d", i+1), v, g.AStar)
	}
	for i, v := range g.APrime {
		g.HeadInput[v] = head(fmt.Sprintf("Aa'%d", i+1), v, g.AStar)
		g.HeadSet[v] = head(fmt.Sprintf("AS'%d", i+1), v, g.AStar)
	}
	for i, v := range g.B {
		g.HeadInput[v] = head(fmt.Sprintf("Bb%d", i+1), v, g.BStar)
		g.HeadSet[v] = head(fmt.Sprintf("BS%d", i+1), v, g.BStar)
	}
	for i, v := range g.BPrime {
		g.HeadInput[v] = head(fmt.Sprintf("Bb'%d", i+1), v, g.BStar)
		g.HeadSet[v] = head(fmt.Sprintf("BS'%d", i+1), v, g.BStar)
	}

	// Set gadget copies.
	mkSetGadget := func(prefix string) (S, Sbar, alpha, beta []int) {
		S = make([]int, T)
		Sbar = make([]int, T)
		for i := 0; i < T; i++ {
			S[i] = alloc(fmt.Sprintf("%sS%d", prefix, i+1), 1)
			Sbar[i] = alloc(fmt.Sprintf("%sS̄%d", prefix, i+1), 1)
		}
		alpha = make([]int, L)
		beta = make([]int, L)
		for p := 0; p < L; p++ {
			alpha[p] = alloc(fmt.Sprintf("%sα%d", prefix, p), heavyWeight)
			beta[p] = alloc(fmt.Sprintf("%sβ%d", prefix, p), heavyWeight)
			b.MustAddEdge(alpha[p], beta[p])
		}
		for i := 0; i < T; i++ {
			for p := 0; p < L; p++ {
				if f.Sets[i].Contains(p) {
					b.MustAddEdge(S[i], alpha[p])
				} else {
					b.MustAddEdge(Sbar[i], beta[p])
				}
			}
		}
		return S, Sbar, alpha, beta
	}
	g.S, g.Sbar, g.Alpha, g.Beta = mkSetGadget("")
	g.SPrime, g.SbarPrime, g.AlphaPrime, g.BetaPrime = mkSetGadget("'")

	if weighted {
		g.AlphaHub = alloc("α", heavyWeight)
		g.BetaHub = alloc("β", heavyWeight)
		g.AlphaHubPrime = alloc("α'", heavyWeight)
		g.BetaHubPrime = alloc("β'", heavyWeight)
		for i := 0; i < T; i++ {
			b.MustAddEdge(g.AlphaHub, g.S[i])
			b.MustAddEdge(g.BetaHub, g.Sbar[i])
			b.MustAddEdge(g.AlphaHubPrime, g.SPrime[i])
			b.MustAddEdge(g.BetaHubPrime, g.SbarPrime[i])
		}
	} else {
		mkPendants := func(sets []int, star [3]int, name string) []int {
			q := make([]int, T)
			for i := 0; i < T; i++ {
				q[i] = alloc(fmt.Sprintf("%s%d", name, i+1), 1)
				b.MustAddEdge(q[i], sets[i])
				b.MustAddEdge(q[i], star[0])
			}
			return q
		}
		g.Q = mkPendants(g.S, g.AStar, "q")
		g.QPrime = mkPendants(g.SPrime, g.AStar, "q'")
		g.Qbar = mkPendants(g.Sbar, g.BStar, "q̄")
		g.QbarPrime = mkPendants(g.SbarPrime, g.BStar, "q̄'")
	}

	// Set-selection edges: the set-head of row i reaches every S_j, j ≠ i
	// (A-side selects from S, B-side from S̄; primed rows from the primed
	// copy).
	for i, v := range g.A {
		for j := 0; j < T; j++ {
			if j != i {
				b.MustAddEdge(g.HeadSet[v], g.S[j])
			}
		}
	}
	for i, v := range g.APrime {
		for j := 0; j < T; j++ {
			if j != i {
				b.MustAddEdge(g.HeadSet[v], g.SPrime[j])
			}
		}
	}
	for i, v := range g.B {
		for j := 0; j < T; j++ {
			if j != i {
				b.MustAddEdge(g.HeadSet[v], g.Sbar[j])
			}
		}
	}
	for i, v := range g.BPrime {
		for j := 0; j < T; j++ {
			if j != i {
				b.MustAddEdge(g.HeadSet[v], g.SbarPrime[j])
			}
		}
	}

	// Disjointness edges head-to-head.
	for i := 1; i <= T; i++ {
		for j := 1; j <= T; j++ {
			if x.At(i, j) {
				b.MustAddEdge(g.HeadInput[g.A[i-1]], g.HeadInput[g.APrime[j-1]])
			}
			if y.At(i, j) {
				b.MustAddEdge(g.HeadInput[g.B[i-1]], g.HeadInput[g.BPrime[j-1]])
			}
		}
	}

	g.H = b.Build()

	// Alice hosts A, A', A*, all A-heads, and the "left half" of both set
	// gadgets: S, S', α-elements, α-hubs, q/q' pendants.
	g.Alice = bitset.New(n)
	add := func(vs ...int) {
		for _, v := range vs {
			if v >= 0 {
				g.Alice.Add(v)
			}
		}
	}
	add(g.A...)
	add(g.APrime...)
	add(g.AStar[0], g.AStar[1], g.AStar[2])
	for _, v := range append(append([]int{}, g.A...), g.APrime...) {
		h1 := g.HeadInput[v]
		h2 := g.HeadSet[v]
		add(h1, h1+1, h2, h2+1) // [1] and [2] are allocated consecutively
	}
	add(g.S...)
	add(g.SPrime...)
	add(g.Alpha...)
	add(g.AlphaPrime...)
	add(g.AlphaHub, g.AlphaHubPrime)
	add(g.Q...)
	add(g.QPrime...)
	return g, nil
}

// WitnessDomSet returns the gap-low dominating set of H² that exists when
// x_{ij} = y_{ij} = 1 (Lemma 40 / Lemma 43): the free or cheap tails
// A*[3], B*[3], the input heads of aᵢ and bᵢ, and the index-i/j set pairs.
func (g *SetGadgetMDS) WitnessDomSet(i, j int) *bitset.Set {
	s := bitset.New(g.H.N())
	s.Add(g.AStar[0])
	s.Add(g.BStar[0])
	s.Add(g.HeadInput[g.A[i-1]])
	s.Add(g.HeadInput[g.B[i-1]])
	s.Add(g.S[i-1])
	s.Add(g.Sbar[i-1])
	s.Add(g.SPrime[j-1])
	s.Add(g.SbarPrime[j-1])
	return s
}

// CutSize returns the number of Alice/Bob crossing edges (O(L) = O(log T)
// for Lemma 38 families: only the α_p–β_p rungs cross).
func (g *SetGadgetMDS) CutSize() int {
	cut := 0
	for _, e := range g.H.Edges() {
		if g.Alice.Contains(e[0]) != g.Alice.Contains(e[1]) {
			cut++
		}
	}
	return cut
}
