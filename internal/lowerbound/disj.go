// Package lowerbound implements every lower-bound graph family in the paper
// as an executable constructor, together with the normal-form
// transformations and reductions their proofs rely on:
//
//   - the [CKP17] MVC family G_{x,y} (Figure 1) and its two G²-variants:
//     the weighted path-gadget family of Theorem 20 (Figure 2) and the
//     unweighted dangling-path family of Theorem 22 (Figure 3);
//   - the [BCD+19] MDS family (Figure 4) and its 5-vertex-gadget variant of
//     Theorem 31 (Figure 5);
//   - the set-gadget families of Theorems 35 and 41 (Figures 6–7), with
//     r-covering set systems (Definition 37 / Lemma 38);
//   - the centralized reductions of Section 8 (Theorems 44 and 45) and the
//     conditional-hardness reduction of Theorem 26.
//
// Every family is parameterized by the two-party set-disjointness inputs
// x, y; tests verify mechanically that the relevant graph predicate flips
// exactly with DISJ(x, y), which is the finitely-checkable content of each
// lower bound.
package lowerbound

import (
	"fmt"
	"math/rand"
)

// Disj evaluates the set-disjointness function DISJ_K: it is false iff
// there is an index i with x_i = y_i = 1 (Section 5.1).
func Disj(x, y []bool) bool {
	for i := range x {
		if i < len(y) && x[i] && y[i] {
			return false
		}
	}
	return true
}

// Matrix indexes a length-k² bit vector as a k×k matrix, matching the
// paper's x_{ij} notation (1-based rows/columns i, j ∈ {1,…,k}).
type Matrix struct {
	K    int
	Bits []bool
}

// NewMatrix returns an all-zeros k×k bit matrix.
func NewMatrix(k int) Matrix {
	return Matrix{K: k, Bits: make([]bool, k*k)}
}

// At returns the bit x_{ij} (1-based).
func (m Matrix) At(i, j int) bool {
	return m.Bits[(i-1)*m.K+(j-1)]
}

// Set sets the bit x_{ij} (1-based).
func (m Matrix) Set(i, j int, v bool) {
	m.Bits[(i-1)*m.K+(j-1)] = v
}

// RandomDisjointPair draws x, y ∈ {0,1}^(k²) with DISJ(x,y) = true: y's
// support is disjoint from x's.
func RandomDisjointPair(k int, rng *rand.Rand) (Matrix, Matrix) {
	x, y := NewMatrix(k), NewMatrix(k)
	for i := range x.Bits {
		switch rng.Intn(3) {
		case 0:
			x.Bits[i] = true
		case 1:
			y.Bits[i] = true
		}
	}
	return x, y
}

// RandomIntersectingPair draws x, y ∈ {0,1}^(k²) with DISJ(x,y) = false:
// random bits plus one forced common index.
func RandomIntersectingPair(k int, rng *rand.Rand) (Matrix, Matrix) {
	x, y := NewMatrix(k), NewMatrix(k)
	for i := range x.Bits {
		x.Bits[i] = rng.Intn(2) == 0
		y.Bits[i] = rng.Intn(2) == 0
	}
	p := rng.Intn(k * k)
	x.Bits[p] = true
	y.Bits[p] = true
	return x, y
}

// EnumerateMatrices calls fn with every k×k bit matrix; feasible only for
// k² ≤ ~16. Used for exhaustive small-k verification.
func EnumerateMatrices(k int, fn func(Matrix)) {
	total := k * k
	if total > 16 {
		panic(fmt.Sprintf("lowerbound: refusing to enumerate 2^%d matrices", total))
	}
	for mask := 0; mask < 1<<uint(total); mask++ {
		m := NewMatrix(k)
		for b := 0; b < total; b++ {
			m.Bits[b] = mask&(1<<uint(b)) != 0
		}
		fn(m)
	}
}

// isPow2 reports whether k is a positive power of two.
func isPow2(k int) bool {
	return k > 0 && k&(k-1) == 0
}

// log2 returns ⌈log₂ k⌉ for powers of two (the paper's log k).
func log2(k int) int {
	l := 0
	for 1<<uint(l) < k {
		l++
	}
	return l
}
