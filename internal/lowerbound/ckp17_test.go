package lowerbound

import (
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/verify"
)

func TestDisj(t *testing.T) {
	if !Disj([]bool{1 == 0, true}, []bool{true, false}) {
		t.Fatal("disjoint pair reported intersecting")
	}
	if Disj([]bool{true, true}, []bool{false, true}) {
		t.Fatal("intersecting pair reported disjoint")
	}
	if !Disj(nil, nil) {
		t.Fatal("empty inputs are disjoint")
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(3)
	m.Set(2, 3, true)
	if !m.At(2, 3) || m.At(3, 2) {
		t.Fatal("matrix indexing broken")
	}
	if len(m.Bits) != 9 {
		t.Fatal("size wrong")
	}
}

func TestRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		x, y := RandomDisjointPair(4, rng)
		if !Disj(x.Bits, y.Bits) {
			t.Fatal("RandomDisjointPair not disjoint")
		}
		x, y = RandomIntersectingPair(4, rng)
		if Disj(x.Bits, y.Bits) {
			t.Fatal("RandomIntersectingPair disjoint")
		}
	}
}

func TestCKP17Structure(t *testing.T) {
	x, y := NewMatrix(4), NewMatrix(4)
	c, err := BuildCKP17MVC(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if c.G.N() != 4*4+8*2 {
		t.Fatalf("n = %d, want %d", c.G.N(), 32)
	}
	// a¹₁ must connect to all f-vertices of pair 1 (binary rep of 0).
	for j := 0; j < c.LogK; j++ {
		if !c.G.HasEdge(c.A1[0], c.FA1[j]) {
			t.Fatal("a1_1 missing f edge")
		}
		if c.G.HasEdge(c.A1[0], c.TA1[j]) {
			t.Fatal("a1_1 has spurious t edge")
		}
	}
	// Last row a¹ₖ connects to all t-vertices.
	for j := 0; j < c.LogK; j++ {
		if !c.G.HasEdge(c.A1[3], c.TA1[j]) {
			t.Fatal("a1_k missing t edge")
		}
	}
	// Cut is O(log k): only the 4-cycle crossing edges.
	if cut := c.CutSize(); cut != 4*c.LogK {
		t.Fatalf("cut = %d, want %d", cut, 4*c.LogK)
	}
	// k must be a power of two.
	if _, err := BuildCKP17MVC(NewMatrix(3), NewMatrix(3)); err == nil {
		t.Fatal("k=3 accepted")
	}
	if _, err := BuildCKP17MVC(NewMatrix(2), NewMatrix(4)); err == nil {
		t.Fatal("mismatched k accepted")
	}
}

// TestCKP17PredicateExhaustive verifies, for every input pair at k=2, the
// defining property of the family: MVC(G_{x,y}) = W iff DISJ(x,y) = false,
// and MVC ≥ W always (Section 5.2's predicate P_G).
func TestCKP17PredicateExhaustive(t *testing.T) {
	k := 2
	EnumerateMatrices(k, func(x Matrix) {
		EnumerateMatrices(k, func(y Matrix) {
			c, err := BuildCKP17MVC(x, y)
			if err != nil {
				t.Fatal(err)
			}
			opt := verify.Cost(c.G, exact.VertexCover(c.G))
			w := c.CoverTarget()
			if opt < w {
				t.Fatalf("x=%v y=%v: MVC %d below floor %d", x.Bits, y.Bits, opt, w)
			}
			disj := Disj(x.Bits, y.Bits)
			if (opt == w) == disj {
				t.Fatalf("x=%v y=%v: MVC=%d, W=%d, DISJ=%v — predicate misaligned",
					x.Bits, y.Bits, opt, w, disj)
			}
		})
	})
}

func TestCKP17WitnessCover(t *testing.T) {
	// Whenever x_{ij} = y_{ij} = 1, the witness cover must be feasible and
	// of size exactly W.
	k := 4
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		x, y := RandomIntersectingPair(k, rng)
		var wi, wj int
		for i := 1; i <= k && wi == 0; i++ {
			for j := 1; j <= k; j++ {
				if x.At(i, j) && y.At(i, j) {
					wi, wj = i, j
					break
				}
			}
		}
		c, err := BuildCKP17MVC(x, y)
		if err != nil {
			t.Fatal(err)
		}
		cover := c.WitnessCover(wi, wj)
		if ok, e := verify.IsVertexCover(c.G, cover); !ok {
			t.Fatalf("witness cover infeasible at edge %v (%s-%s)",
				e, c.G.Name(e[0]), c.G.Name(e[1]))
		}
		if got := int64(cover.Count()); got != c.CoverTarget() {
			t.Fatalf("witness size %d, want %d", got, c.CoverTarget())
		}
	}
}

func TestCKP17PredicateSampledK4(t *testing.T) {
	// At k=4 exhaustive enumeration is 2³², so sample instead.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		var x, y Matrix
		if trial%2 == 0 {
			x, y = RandomIntersectingPair(4, rng)
		} else {
			x, y = RandomDisjointPair(4, rng)
		}
		c, err := BuildCKP17MVC(x, y)
		if err != nil {
			t.Fatal(err)
		}
		opt := verify.Cost(c.G, exact.VertexCover(c.G))
		disj := Disj(x.Bits, y.Bits)
		if (opt == c.CoverTarget()) == disj {
			t.Fatalf("k=4 trial %d: MVC=%d W=%d DISJ=%v", trial, opt, c.CoverTarget(), disj)
		}
	}
}
