package lowerbound

import (
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/verify"
)

// TestLemma21WeightedGadgetExhaustive verifies Lemma 21 for every input
// pair at k=2: the square of the weighted gadget graph has a minimum
// weighted vertex cover of exactly the same weight as G_{x,y}'s minimum
// vertex cover.
func TestLemma21WeightedGadgetExhaustive(t *testing.T) {
	k := 2
	EnumerateMatrices(k, func(x Matrix) {
		EnumerateMatrices(k, func(y Matrix) {
			w, err := BuildWeightedMVCGadget(x, y)
			if err != nil {
				t.Fatal(err)
			}
			baseOpt := verify.Cost(w.Base.G, exact.VertexCover(w.Base.G))
			h2 := w.H.Square()
			gadgetOpt := verify.Cost(h2, exact.VertexCover(h2))
			if baseOpt != gadgetOpt {
				t.Fatalf("x=%v y=%v: MWVC(H²)=%d ≠ MVC(G)=%d",
					x.Bits, y.Bits, gadgetOpt, baseOpt)
			}
		})
	})
}

func TestLemma21WeightedGadgetSampledK4(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 4; trial++ {
		var x, y Matrix
		if trial%2 == 0 {
			x, y = RandomIntersectingPair(4, rng)
		} else {
			x, y = RandomDisjointPair(4, rng)
		}
		w, err := BuildWeightedMVCGadget(x, y)
		if err != nil {
			t.Fatal(err)
		}
		baseOpt := verify.Cost(w.Base.G, exact.VertexCover(w.Base.G))
		h2 := w.H.Square()
		gadgetOpt := verify.Cost(h2, exact.VertexCover(h2))
		if baseOpt != gadgetOpt {
			t.Fatalf("k=4 trial %d: MWVC(H²)=%d ≠ MVC(G)=%d", trial, gadgetOpt, baseOpt)
		}
	}
}

func TestWeightedGadgetStructure(t *testing.T) {
	x, y := NewMatrix(2), NewMatrix(2)
	w, err := BuildWeightedMVCGadget(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// All original vertices weigh 1, all path vertices 0.
	for v := 0; v < w.Base.G.N(); v++ {
		if w.H.Weight(v) != 1 {
			t.Fatalf("original %d has weight %d", v, w.H.Weight(v))
		}
	}
	for _, p := range w.PathVertices {
		if w.H.Weight(p) != 0 {
			t.Fatalf("path vertex %d has weight %d", p, w.H.Weight(p))
		}
	}
	// Vertex count: originals + bit-incident edges + 2k shared.
	want := w.Base.G.N() + len(w.Base.BitEdges) + 2*2
	if w.H.N() != want {
		t.Fatalf("n = %d, want %d", w.H.N(), want)
	}
	// H² restricted to positive-weight vertices must reproduce G_{x,y}
	// exactly (the crux of Lemma 21's proof).
	h2 := w.H.Square()
	g := w.Base.G
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.HasEdge(u, v) != h2.HasEdge(u, v) {
				t.Fatalf("H² and G disagree on originals {%s,%s}: G=%v H²=%v",
					g.Name(u), g.Name(v), g.HasEdge(u, v), h2.HasEdge(u, v))
			}
		}
	}
	// The cut stays logarithmic: count H-edges across the partition.
	cut := 0
	for _, e := range w.H.Edges() {
		if w.Alice.Contains(e[0]) != w.Alice.Contains(e[1]) {
			cut++
		}
	}
	if cut > 8*w.Base.LogK {
		t.Fatalf("cut %d not logarithmic", cut)
	}
}

// TestLemma24UnweightedGadgetExhaustive verifies Lemma 24 at k=2 for all
// 256 input pairs: MVC(H²) = MVC(G) + 2·#gadgets.
func TestLemma24UnweightedGadgetExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 256-instance exact solve")
	}
	k := 2
	EnumerateMatrices(k, func(x Matrix) {
		EnumerateMatrices(k, func(y Matrix) {
			u, err := BuildUnweightedMVCGadget(x, y)
			if err != nil {
				t.Fatal(err)
			}
			baseOpt := verify.Cost(u.Base.G, exact.VertexCover(u.Base.G))
			h2 := u.H.Square()
			gadgetOpt := verify.Cost(h2, exact.VertexCover(h2))
			want := baseOpt + 2*int64(u.GadgetCount())
			if gadgetOpt != want {
				t.Fatalf("x=%v y=%v: MVC(H²)=%d, want MVC(G)+2·%d = %d",
					x.Bits, y.Bits, gadgetOpt, u.GadgetCount(), want)
			}
		})
	})
}

func TestUnweightedGadgetCounts(t *testing.T) {
	for _, k := range []int{2, 4} {
		u, err := BuildUnweightedMVCGadget(NewMatrix(k), NewMatrix(k))
		if err != nil {
			t.Fatal(err)
		}
		lk := u.Base.LogK
		want := 2*k + 4*k*lk + 8*lk
		if u.GadgetCount() != want {
			t.Fatalf("k=%d: %d gadgets, want 2k+4k·logk+8·logk = %d", k, u.GadgetCount(), want)
		}
		if u.H.N() != u.Base.G.N()+3*want {
			t.Fatalf("k=%d: vertex count %d", k, u.H.N())
		}
	}
}

func TestLemma23NormalForm(t *testing.T) {
	// Normalizing any optimal cover must keep it feasible, not increase
	// its size, and leave no gadget leaf inside.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		var x, y Matrix
		if trial%2 == 0 {
			x, y = RandomIntersectingPair(2, rng)
		} else {
			x, y = RandomDisjointPair(2, rng)
		}
		u, err := BuildUnweightedMVCGadget(x, y)
		if err != nil {
			t.Fatal(err)
		}
		h2 := u.H.Square()
		cover := exact.VertexCover(h2)
		norm := u.NormalizeCoverLemma23(h2, cover)
		if ok, e := verify.IsVertexCover(h2, norm); !ok {
			t.Fatalf("normalized cover infeasible at %v", e)
		}
		if norm.Count() > cover.Count() {
			t.Fatalf("normalization grew the cover: %d > %d", norm.Count(), cover.Count())
		}
		for _, g := range u.Gadgets {
			if norm.Contains(g[2]) {
				t.Fatal("leaf survived normalization")
			}
			if !norm.Contains(g[0]) || !norm.Contains(g[1]) {
				t.Fatal("normal form missing DP[1]/DP[2]")
			}
		}
	}
}

func TestUnweightedGadgetLeafIsolation(t *testing.T) {
	// Lemma 23's premise: a gadget leaf DP[3] has exactly DP[1], DP[2] as
	// its H²-neighbors.
	u, err := BuildUnweightedMVCGadget(NewMatrix(2), NewMatrix(2))
	if err != nil {
		t.Fatal(err)
	}
	h2 := u.H.Square()
	for _, g := range u.Gadgets {
		nbrs := h2.Neighbors(g[2])
		if len(nbrs) != 2 || nbrs[0] != min2(g[0], g[1]) || nbrs[1] != max2(g[0], g[1]) {
			t.Fatalf("leaf %d has H²-neighbors %v, want exactly {%d,%d}", g[2], nbrs, g[0], g[1])
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
