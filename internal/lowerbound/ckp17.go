package lowerbound

import (
	"fmt"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// CKP17MVC is the [CKP17] minimum-vertex-cover lower-bound graph G_{x,y}
// (Figure 1): four size-k cliques of row vertices (A1, A2, B1, B2), one
// 4-cycle bit gadget per bit and side pair, binary-representation edges
// from rows to bit gadgets, and input edges a¹ᵢ–a²ⱼ iff x_{ij}=0 (resp.
// b¹ᵢ–b²ⱼ iff y_{ij}=0).
//
// Its defining property (verified exhaustively in tests): G_{x,y} has a
// vertex cover of size W = 4(k-1) + 4·log₂k iff DISJ(x,y) = false, and
// every vertex cover has size ≥ W.
type CKP17MVC struct {
	K    int
	LogK int
	G    *graph.Graph

	// Row vertex ids; index i-1 holds row i's vertex.
	A1, A2, B1, B2 []int
	// Bit gadget vertex ids per bit j (0-based); pair 1 couples A1/B1,
	// pair 2 couples A2/B2.
	TA1, FA1, TB1, FB1 []int
	TA2, FA2, TB2, FB2 []int

	// Alice is the V_A side of the two-party partition (rows A1, A2 and
	// the A-side bit vertices); the B side is its complement.
	Alice *bitset.Set
	// BitEdges are the edges incident on bit-gadget vertices (the edges
	// the G²-variants replace with path gadgets).
	BitEdges [][2]int
	// XEdges and YEdges are the input-dependent clique-to-clique edges.
	XEdges, YEdges [][2]int
}

// CoverTarget returns W = 4(k-1) + 4·log₂k, the cover size that witnesses
// DISJ(x,y) = false.
func (c *CKP17MVC) CoverTarget() int64 {
	return int64(4*(c.K-1) + 4*c.LogK)
}

// BuildCKP17MVC constructs G_{x,y} for the given k×k disjointness inputs.
// k must be a power of two (so rows are indexed by exactly log₂k bits).
func BuildCKP17MVC(x, y Matrix) (*CKP17MVC, error) {
	k := x.K
	if y.K != k {
		return nil, fmt.Errorf("lowerbound: mismatched input sizes %d vs %d", x.K, y.K)
	}
	if !isPow2(k) || k < 2 {
		return nil, fmt.Errorf("lowerbound: k must be a power of two ≥ 2, got %d", k)
	}
	lk := log2(k)
	n := 4*k + 8*lk
	b := graph.NewBuilder(n)
	c := &CKP17MVC{K: k, LogK: lk}

	next := 0
	mkRow := func(name string) []int {
		ids := make([]int, k)
		for i := range ids {
			ids[i] = next
			b.SetName(next, fmt.Sprintf("%s_%d", name, i+1))
			next++
		}
		return ids
	}
	c.A1, c.A2 = mkRow("a1"), mkRow("a2")
	c.B1, c.B2 = mkRow("b1"), mkRow("b2")
	mkBits := func(name string) []int {
		ids := make([]int, lk)
		for j := range ids {
			ids[j] = next
			b.SetName(next, fmt.Sprintf("%s^%d", name, j))
			next++
		}
		return ids
	}
	c.TA1, c.FA1 = mkBits("tA1"), mkBits("fA1")
	c.TB1, c.FB1 = mkBits("tB1"), mkBits("fB1")
	c.TA2, c.FA2 = mkBits("tA2"), mkBits("fA2")
	c.TB2, c.FB2 = mkBits("tB2"), mkBits("fB2")

	// Row cliques.
	for _, rows := range [][]int{c.A1, c.A2, c.B1, c.B2} {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.MustAddEdge(rows[i], rows[j])
			}
		}
	}

	bitEdge := func(u, v int) {
		b.MustAddEdge(u, v)
		c.BitEdges = append(c.BitEdges, [2]int{u, v})
	}
	// Bit gadgets: the 4-cycle t_A – f_A – t_B – f_B – t_A, whose only
	// 2-vertex covers are the consistent pairs {t_A, t_B} and {f_A, f_B}.
	for j := 0; j < lk; j++ {
		bitEdge(c.TA1[j], c.FA1[j])
		bitEdge(c.FA1[j], c.TB1[j])
		bitEdge(c.TB1[j], c.FB1[j])
		bitEdge(c.FB1[j], c.TA1[j])

		bitEdge(c.TA2[j], c.FA2[j])
		bitEdge(c.FA2[j], c.TB2[j])
		bitEdge(c.TB2[j], c.FB2[j])
		bitEdge(c.FB2[j], c.TA2[j])
	}
	// Row-to-bit edges: row i connects per bit j to t if bit j of i-1 is
	// set, else to f.
	rowBits := func(rows, t, f []int) {
		for i := 1; i <= k; i++ {
			for j := 0; j < lk; j++ {
				if (i-1)>>uint(j)&1 == 1 {
					bitEdge(rows[i-1], t[j])
				} else {
					bitEdge(rows[i-1], f[j])
				}
			}
		}
	}
	rowBits(c.A1, c.TA1, c.FA1)
	rowBits(c.B1, c.TB1, c.FB1)
	rowBits(c.A2, c.TA2, c.FA2)
	rowBits(c.B2, c.TB2, c.FB2)

	// Input edges: a¹ᵢ–a²ⱼ iff x_{ij}=0 and b¹ᵢ–b²ⱼ iff y_{ij}=0.
	for i := 1; i <= k; i++ {
		for j := 1; j <= k; j++ {
			if !x.At(i, j) {
				b.MustAddEdge(c.A1[i-1], c.A2[j-1])
				c.XEdges = append(c.XEdges, [2]int{c.A1[i-1], c.A2[j-1]})
			}
			if !y.At(i, j) {
				b.MustAddEdge(c.B1[i-1], c.B2[j-1])
				c.YEdges = append(c.YEdges, [2]int{c.B1[i-1], c.B2[j-1]})
			}
		}
	}

	c.G = b.Build()
	c.Alice = bitset.New(n)
	for _, vs := range [][]int{c.A1, c.A2, c.TA1, c.FA1, c.TA2, c.FA2} {
		for _, v := range vs {
			c.Alice.Add(v)
		}
	}
	return c, nil
}

// WitnessCover returns the size-W vertex cover that exists when
// x_{ij} = y_{ij} = 1 (1-based i, j): all rows except a¹ᵢ, a²ⱼ, b¹ᵢ, b²ⱼ,
// plus the bit-gadget pair matching the binary encodings of i-1 and j-1.
// It is the constructive half of the predicate (Section 5.2) and is used
// by tests to cross-check the exact solver.
func (c *CKP17MVC) WitnessCover(i, j int) *bitset.Set {
	s := bitset.New(c.G.N())
	addAllBut := func(rows []int, skip int) {
		for idx, v := range rows {
			if idx+1 != skip {
				s.Add(v)
			}
		}
	}
	addAllBut(c.A1, i)
	addAllBut(c.B1, i)
	addAllBut(c.A2, j)
	addAllBut(c.B2, j)
	for bit := 0; bit < c.LogK; bit++ {
		if (i-1)>>uint(bit)&1 == 1 {
			s.Add(c.TA1[bit])
			s.Add(c.TB1[bit])
		} else {
			s.Add(c.FA1[bit])
			s.Add(c.FB1[bit])
		}
		if (j-1)>>uint(bit)&1 == 1 {
			s.Add(c.TA2[bit])
			s.Add(c.TB2[bit])
		} else {
			s.Add(c.FA2[bit])
			s.Add(c.FB2[bit])
		}
	}
	return s
}

// CutSize returns the number of edges crossing the Alice/Bob partition;
// the framework needs it to be O(log k).
func (c *CKP17MVC) CutSize() int {
	cut := 0
	for _, e := range c.G.Edges() {
		if c.Alice.Contains(e[0]) != c.Alice.Contains(e[1]) {
			cut++
		}
	}
	return cut
}
