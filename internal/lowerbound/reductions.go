package lowerbound

import (
	"fmt"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// DanglingPathReduction is the Section 8 / Theorem 26 construction: every
// edge e = {u,v} of G is replaced by a dangling 3-path gadget
// p¹_e (adjacent to u and v) – p²_e – p³_e. The square of the result H
// restricted to the original vertices is exactly G, which yields
// VC(H²) = VC(G) + 2m (Theorem 44) and drives the conditional hardness of
// Theorem 26.
type DanglingPathReduction struct {
	G *graph.Graph
	H *graph.Graph
	// Gadgets[i] holds the 3 gadget vertex ids for G's i-th edge (in
	// G.Edges() order).
	Gadgets [][3]int
}

// BuildDanglingPathReduction constructs H from G.
func BuildDanglingPathReduction(g *graph.Graph) *DanglingPathReduction {
	edges := g.Edges()
	n := g.N() + 3*len(edges)
	b := graph.NewBuilder(n)
	for v := 0; v < g.N(); v++ {
		b.SetName(v, g.Name(v))
	}
	r := &DanglingPathReduction{G: g}
	next := g.N()
	for i, e := range edges {
		gd := [3]int{next, next + 1, next + 2}
		next += 3
		b.SetName(gd[0], fmt.Sprintf("p1_e%d", i))
		b.SetName(gd[1], fmt.Sprintf("p2_e%d", i))
		b.SetName(gd[2], fmt.Sprintf("p3_e%d", i))
		b.MustAddEdge(gd[0], e[0])
		b.MustAddEdge(gd[0], e[1])
		b.MustAddEdge(gd[0], gd[1])
		b.MustAddEdge(gd[1], gd[2])
		r.Gadgets = append(r.Gadgets, gd)
	}
	r.H = b.Build()
	return r
}

// LiftCover turns a vertex cover of G into a cover of H² of size
// |cover| + 2m by adding p¹_e, p²_e of every gadget (the forward direction
// of Theorem 44's proof).
func (r *DanglingPathReduction) LiftCover(cover *bitset.Set) *bitset.Set {
	out := bitset.New(r.H.N())
	cover.ForEach(func(v int) bool {
		out.Add(v)
		return true
	})
	for _, gd := range r.Gadgets {
		out.Add(gd[0])
		out.Add(gd[1])
	}
	return out
}

// ProjectCover extracts the original-vertex part of a cover of H², which
// Theorem 26's proof shows is a vertex cover of G (every G-edge survives
// as an H²-edge between its endpoints).
func (r *DanglingPathReduction) ProjectCover(hCover *bitset.Set) *bitset.Set {
	out := bitset.New(r.G.N())
	for v := 0; v < r.G.N(); v++ {
		if hCover.Contains(v) {
			out.Add(v)
		}
	}
	return out
}

// ReductionEpsilon returns the ε Theorem 26 feeds the G²-MVC algorithm so
// the projected cover is a (1+δ)-approximation on G: ε = δ·OPTlb/(3m),
// where OPTlb ≤ OPT(G) is any vertex-cover lower bound (a maximal matching
// in practice) and m = |E(G)|. The proof's accounting
// (C ≤ OPT·(1 + ε(1+2m/OPT))) then gives ratio ≤ 1 + δ.
func (r *DanglingPathReduction) ReductionEpsilon(delta float64, optLowerBound int64) float64 {
	m := r.G.M()
	if m == 0 {
		return 1
	}
	return delta * float64(optLowerBound) / (3 * float64(m))
}

// MergedPathReduction is the Theorem 45 construction for MDS hardness:
// every edge e of G is replaced by p¹_e (adjacent to both endpoints) and
// p²_e, with all p²_e attached to one shared tail P3–P4–P5. Then
// MDS(H²) = MDS(G) + 1 (the tail midpoint P3 is the +1).
type MergedPathReduction struct {
	G *graph.Graph
	H *graph.Graph
	// P1[i], P2[i] are the per-edge gadget vertices for G's i-th edge.
	P1, P2 []int
	// Tail holds the shared P3, P4, P5.
	Tail [3]int
}

// BuildMergedPathReduction constructs H from G. G must have at least one
// edge (the merged tail needs an anchor).
func BuildMergedPathReduction(g *graph.Graph) (*MergedPathReduction, error) {
	edges := g.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("lowerbound: merged reduction needs at least one edge")
	}
	n := g.N() + 2*len(edges) + 3
	b := graph.NewBuilder(n)
	for v := 0; v < g.N(); v++ {
		b.SetName(v, g.Name(v))
	}
	r := &MergedPathReduction{G: g}
	next := g.N()
	r.Tail = [3]int{next, next + 1, next + 2}
	next += 3
	b.SetName(r.Tail[0], "P3")
	b.SetName(r.Tail[1], "P4")
	b.SetName(r.Tail[2], "P5")
	b.MustAddEdge(r.Tail[0], r.Tail[1])
	b.MustAddEdge(r.Tail[1], r.Tail[2])
	for i, e := range edges {
		p1, p2 := next, next+1
		next += 2
		b.SetName(p1, fmt.Sprintf("p1_e%d", i))
		b.SetName(p2, fmt.Sprintf("p2_e%d", i))
		b.MustAddEdge(p1, e[0])
		b.MustAddEdge(p1, e[1])
		b.MustAddEdge(p1, p2)
		b.MustAddEdge(p2, r.Tail[0])
		r.P1 = append(r.P1, p1)
		r.P2 = append(r.P2, p2)
	}
	r.H = b.Build()
	return r, nil
}

// LiftDomSet turns a dominating set of G into one of H² of size |ds|+1 by
// adding the shared tail midpoint P3 (which dominates every gadget vertex
// within two hops).
func (r *MergedPathReduction) LiftDomSet(ds *bitset.Set) *bitset.Set {
	out := bitset.New(r.H.N())
	ds.ForEach(func(v int) bool {
		out.Add(v)
		return true
	})
	out.Add(r.Tail[0])
	return out
}

// ProjectDomSet extracts the original-vertex part of a dominating set of
// H²; per Theorem 45's proof it dominates G when the input is optimal in
// the P3 normal form.
func (r *MergedPathReduction) ProjectDomSet(hDS *bitset.Set) *bitset.Set {
	out := bitset.New(r.G.N())
	for v := 0; v < r.G.N(); v++ {
		if hDS.Contains(v) {
			out.Add(v)
		}
	}
	return out
}
