package lowerbound

import (
	"fmt"

	"powergraph/internal/bitset"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
)

// BCD19MDS is the [BCD+19] minimum-dominating-set lower-bound graph G_{x,y}
// (Figure 4): four size-k independent row sets, one 6-cycle bit gadget per
// bit and side pair (f–t–u–f'–t'–u'), complement-encoding edges from rows
// to bit gadgets, and input edges a¹ᵢ–a²ⱼ iff x_{ij}=1 (b¹ᵢ–b²ⱼ iff
// y_{ij}=1).
//
// Its defining property (verified exhaustively in tests): G_{x,y} has a
// dominating set of size W = 4·log₂k + 2 iff DISJ(x,y) = false.
type BCD19MDS struct {
	K    int
	LogK int
	G    *graph.Graph

	A1, A2, B1, B2 []int
	// 6-cycle vertices per bit j for side pair 1 (A1/B1) and 2 (A2/B2).
	FA1, TA1, UA1, FB1, TB1, UB1 []int
	FA2, TA2, UA2, FB2, TB2, UB2 []int

	Alice    *bitset.Set
	BitEdges [][2]int
	XEdges   [][2]int
	YEdges   [][2]int
}

// DomTarget returns W = 4·log₂k + 2.
func (c *BCD19MDS) DomTarget() int64 {
	return int64(4*c.LogK + 2)
}

// BuildBCD19MDS constructs the Figure 4 family; k must be a power of two.
func BuildBCD19MDS(x, y Matrix) (*BCD19MDS, error) {
	k := x.K
	if y.K != k {
		return nil, fmt.Errorf("lowerbound: mismatched input sizes %d vs %d", x.K, y.K)
	}
	if !isPow2(k) || k < 2 {
		return nil, fmt.Errorf("lowerbound: k must be a power of two ≥ 2, got %d", k)
	}
	lk := log2(k)
	n := 4*k + 12*lk
	b := graph.NewBuilder(n)
	c := &BCD19MDS{K: k, LogK: lk}

	next := 0
	mk := func(count int, name string) []int {
		ids := make([]int, count)
		for i := range ids {
			ids[i] = next
			b.SetName(next, fmt.Sprintf("%s_%d", name, i+1))
			next++
		}
		return ids
	}
	c.A1, c.A2 = mk(k, "a1"), mk(k, "a2")
	c.B1, c.B2 = mk(k, "b1"), mk(k, "b2")
	c.FA1, c.TA1, c.UA1 = mk(lk, "fA1"), mk(lk, "tA1"), mk(lk, "uA1")
	c.FB1, c.TB1, c.UB1 = mk(lk, "fB1"), mk(lk, "tB1"), mk(lk, "uB1")
	c.FA2, c.TA2, c.UA2 = mk(lk, "fA2"), mk(lk, "tA2"), mk(lk, "uA2")
	c.FB2, c.TB2, c.UB2 = mk(lk, "fB2"), mk(lk, "tB2"), mk(lk, "uB2")

	bitEdge := func(u, v int) {
		b.MustAddEdge(u, v)
		c.BitEdges = append(c.BitEdges, [2]int{u, v})
	}
	// 6-cycles f_A – t_A – u_A – f_B – t_B – u_B – f_A: the antipodal
	// dominating pairs are exactly {f_A,f_B}, {t_A,t_B}, {u_A,u_B}.
	cycle6 := func(fa, ta, ua, fb, tb, ub int) {
		bitEdge(fa, ta)
		bitEdge(ta, ua)
		bitEdge(ua, fb)
		bitEdge(fb, tb)
		bitEdge(tb, ub)
		bitEdge(ub, fa)
	}
	for j := 0; j < lk; j++ {
		cycle6(c.FA1[j], c.TA1[j], c.UA1[j], c.FB1[j], c.TB1[j], c.UB1[j])
		cycle6(c.FA2[j], c.TA2[j], c.UA2[j], c.FB2[j], c.TB2[j], c.UB2[j])
	}
	// Complement-encoding row-to-bit edges: row i connects per bit j to t
	// if bit j of i-1 is zero, else to f (a¹₁ connects to all t's).
	rowBits := func(rows, t, f []int) {
		for i := 1; i <= k; i++ {
			for j := 0; j < lk; j++ {
				if (i-1)>>uint(j)&1 == 0 {
					bitEdge(rows[i-1], t[j])
				} else {
					bitEdge(rows[i-1], f[j])
				}
			}
		}
	}
	rowBits(c.A1, c.TA1, c.FA1)
	rowBits(c.B1, c.TB1, c.FB1)
	rowBits(c.A2, c.TA2, c.FA2)
	rowBits(c.B2, c.TB2, c.FB2)

	// Input edges (present iff the bit is one — opposite polarity to MVC).
	for i := 1; i <= k; i++ {
		for j := 1; j <= k; j++ {
			if x.At(i, j) {
				b.MustAddEdge(c.A1[i-1], c.A2[j-1])
				c.XEdges = append(c.XEdges, [2]int{c.A1[i-1], c.A2[j-1]})
			}
			if y.At(i, j) {
				b.MustAddEdge(c.B1[i-1], c.B2[j-1])
				c.YEdges = append(c.YEdges, [2]int{c.B1[i-1], c.B2[j-1]})
			}
		}
	}

	c.G = b.Build()
	c.Alice = bitset.New(n)
	for _, vs := range [][]int{c.A1, c.A2, c.FA1, c.TA1, c.UA1, c.FA2, c.TA2, c.UA2} {
		for _, v := range vs {
			c.Alice.Add(v)
		}
	}
	return c, nil
}

// WitnessDomSet returns the size-W dominating set that exists when
// x_{ij} = y_{ij} = 1: per pair-1 gadget the antipodal pair opposite to
// i's encoding, per pair-2 gadget opposite to j's, plus {a¹ᵢ, b¹ᵢ}.
func (c *BCD19MDS) WitnessDomSet(i, j int) *bitset.Set {
	s := bitset.New(c.G.N())
	for bit := 0; bit < c.LogK; bit++ {
		// Row i is connected to t (bit 0) / f (bit 1); choose the OTHER
		// letter so that exactly row i is left undominated by the gadgets.
		if (i-1)>>uint(bit)&1 == 0 {
			s.Add(c.FA1[bit])
			s.Add(c.FB1[bit])
		} else {
			s.Add(c.TA1[bit])
			s.Add(c.TB1[bit])
		}
		if (j-1)>>uint(bit)&1 == 0 {
			s.Add(c.FA2[bit])
			s.Add(c.FB2[bit])
		} else {
			s.Add(c.TA2[bit])
			s.Add(c.TB2[bit])
		}
	}
	s.Add(c.A1[i-1])
	s.Add(c.B1[i-1])
	return s
}

// CutSize returns the number of Alice/Bob crossing edges (O(log k): the
// 6-cycle crossing edges only).
func (c *BCD19MDS) CutSize() int {
	cut := 0
	for _, e := range c.G.Edges() {
		if c.Alice.Contains(e[0]) != c.Alice.Contains(e[1]) {
			cut++
		}
	}
	return cut
}

// isBitVertex reports whether v belongs to a bit gadget.
func (c *BCD19MDS) isBitVertex(v int) bool {
	return v >= 4*c.K
}

// NormalFormDomSet returns a minimum dominating set of G in the [BCD+19]
// normal form, where every bit-gadget vertex is dominated by bit-gadget
// vertices only ("the bit gadget vertices provide coverage for all bit
// gadget vertices", used by Lemma 34's proof). It solves a constrained set
// cover in which row candidates are stripped of their bit coverage. Tests
// verify that the normal form costs no more than the unconstrained optimum,
// which is the machine check of that structural claim.
func (c *BCD19MDS) NormalFormDomSet() *bitset.Set {
	n := c.G.N()
	inst := &exact.SetCoverInstance{UniverseSize: n}
	for v := 0; v < n; v++ {
		cov := c.G.ClosedNeighborhood(v)
		if !c.isBitVertex(v) {
			// Row candidates may not be charged with dominating bit
			// vertices (except themselves, which are rows anyway).
			for _, e := range c.BitEdges {
				if e[0] == v {
					cov.Remove(e[1])
				}
				if e[1] == v {
					cov.Remove(e[0])
				}
			}
		}
		inst.Sets = append(inst.Sets, cov)
	}
	chosen := exact.SetCover(inst)
	out := bitset.New(n)
	for _, v := range chosen {
		out.Add(v)
	}
	return out
}
