package lowerbound

import (
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/verify"
)

func TestCubeFamily(t *testing.T) {
	f := CubeFamily(3)
	if f.L != 8 || f.T != 3 {
		t.Fatalf("dims: T=%d L=%d", f.T, f.L)
	}
	// Each set has exactly half the universe.
	for i, s := range f.Sets {
		if s.Count() != 4 {
			t.Fatalf("set %d has %d elements", i, s.Count())
		}
	}
	// Perfect covering property: every r up to T.
	for r := 1; r <= 3; r++ {
		if !f.VerifyRCovering(r) {
			t.Fatalf("cube family fails %d-covering", r)
		}
	}
}

func TestVerifyRCoveringNegative(t *testing.T) {
	// A family whose sets cover everything in one signed choice must fail.
	f := CubeFamily(2)
	// Add the universe itself as a third "set": {S3 = U} means the single
	// choice {S3} covers U, so 1-covering fails.
	full := f.Sets[0].Union(f.Complement(0))
	f.Sets = append(f.Sets, full)
	f.T = 3
	if f.VerifyRCovering(1) {
		t.Fatal("family with a universal set passed 1-covering")
	}
	// r > T is vacuous.
	if !CubeFamily(2).VerifyRCovering(5) {
		t.Fatal("vacuous case failed")
	}
}

func TestFindRCoveringFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := FindRCoveringFamily(6, 2, rng)
	if !f.VerifyRCovering(2) {
		t.Fatal("found family does not verify")
	}
	if f.T != 6 {
		t.Fatalf("T = %d", f.T)
	}
}

func buildSG(t *testing.T, x, y Matrix, weighted bool) *SetGadgetMDS {
	t.Helper()
	f := CubeFamily(x.K)
	g, err := BuildSetGadgetMDS(x, y, f, weighted, 9)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSetGadgetStructure(t *testing.T) {
	x, y := NewMatrix(3), NewMatrix(3)
	for _, weighted := range []bool{true, false} {
		g := buildSG(t, x, y, weighted)
		// The cut is exactly the 2L element rungs.
		if cut := g.CutSize(); cut != 2*g.Family.L {
			t.Fatalf("weighted=%v: cut %d, want %d", weighted, cut, 2*g.Family.L)
		}
		if weighted {
			if g.H.Weight(g.AStar[0]) != 0 || g.H.Weight(g.BStar[0]) != 0 {
				t.Fatal("merged midpoints must weigh 0")
			}
			if g.H.Weight(g.Alpha[0]) != 9 {
				t.Fatal("element weight wrong")
			}
			if g.AlphaHub < 0 || len(g.Q) != 0 {
				t.Fatal("weighted variant wiring wrong")
			}
		} else {
			if g.H.Weighted() {
				t.Fatal("unweighted variant has weights")
			}
			if g.AlphaHub != -1 || len(g.Q) != 3 {
				t.Fatal("unweighted variant wiring wrong")
			}
		}
	}
}

func TestSetGadgetRejectsBadInput(t *testing.T) {
	f := CubeFamily(3)
	if _, err := BuildSetGadgetMDS(NewMatrix(3), NewMatrix(2), f, true, 9); err == nil {
		t.Fatal("mismatched sizes accepted")
	}
	if _, err := BuildSetGadgetMDS(NewMatrix(3), NewMatrix(3), f, true, 5); err == nil {
		t.Fatal("insufficient heavy weight accepted")
	}
	if _, err := BuildSetGadgetMDS(NewMatrix(2), NewMatrix(2), f, true, 9); err == nil {
		t.Fatal("family size mismatch accepted")
	}
}

// TestLemma40WitnessFeasible: when DISJ=false the gap-low witness must
// dominate H² at cost 6 (weighted) / 8 (unweighted).
func TestGapWitnessFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, weighted := range []bool{true, false} {
		for trial := 0; trial < 4; trial++ {
			x, y := RandomIntersectingPair(3, rng)
			var wi, wj int
			for i := 1; i <= 3 && wi == 0; i++ {
				for j := 1; j <= 3; j++ {
					if x.At(i, j) && y.At(i, j) {
						wi, wj = i, j
						break
					}
				}
			}
			g := buildSG(t, x, y, weighted)
			h2 := g.H.Square()
			ds := g.WitnessDomSet(wi, wj)
			if ok, v := verify.IsDominatingSet(h2, ds); !ok {
				t.Fatalf("weighted=%v: witness leaves %s undominated", weighted, g.H.Name(v))
			}
			if got := verify.Cost(h2, ds); got != g.GapLow() {
				t.Fatalf("weighted=%v: witness cost %d, want %d", weighted, got, g.GapLow())
			}
		}
	}
}

// TestLemma40Gap verifies the full gap on exact optima: MDS(H²) ≤ GapLow
// iff DISJ(x,y) = false, and ≥ GapLow+1 otherwise (Lemmas 40 and 43).
func TestSetGadgetGapExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, weighted := range []bool{true, false} {
		for trial := 0; trial < 4; trial++ {
			var x, y Matrix
			if trial%2 == 0 {
				x, y = RandomIntersectingPair(3, rng)
			} else {
				x, y = RandomDisjointPair(3, rng)
			}
			g := buildSG(t, x, y, weighted)
			h2 := g.H.Square()
			ds, err := exact.DominatingSetBounded(h2, 80_000_000)
			if err != nil {
				t.Skipf("weighted=%v trial %d: %v", weighted, trial, err)
			}
			opt := verify.Cost(h2, ds)
			disj := Disj(x.Bits, y.Bits)
			if disj && opt <= g.GapLow() {
				t.Fatalf("weighted=%v: DISJ=true but MDS=%d ≤ %d", weighted, opt, g.GapLow())
			}
			if !disj && opt > g.GapLow() {
				t.Fatalf("weighted=%v: DISJ=false but MDS=%d > %d", weighted, opt, g.GapLow())
			}
		}
	}
}
