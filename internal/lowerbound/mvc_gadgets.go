package lowerbound

import (
	"fmt"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// WeightedMVCGadget is the Theorem 20 family H_{x,y} (Figure 2): the
// CKP17 graph with every bit-incident edge replaced by a zero-weight path
// vertex p_e, and the clique-to-clique input edges routed through shared
// zero-weight vertices p_aⁱ (attached to a¹ᵢ) and p_bⁱ (attached to b¹ᵢ).
// Clique-internal edges remain direct. All original vertices weigh 1.
//
// Lemma 21 (verified in tests): H²_{x,y} has a minimum weighted vertex
// cover of weight W iff G_{x,y} has a minimum vertex cover of size W.
type WeightedMVCGadget struct {
	Base *CKP17MVC
	H    *graph.Graph
	// PathVertices lists all zero-weight gadget vertices.
	PathVertices []int
	// Alice is the V'_A partition side of H (Alice's originals plus the
	// gadgets she hosts).
	Alice *bitset.Set
}

// BuildWeightedMVCGadget constructs the Figure 2 family.
func BuildWeightedMVCGadget(x, y Matrix) (*WeightedMVCGadget, error) {
	base, err := BuildCKP17MVC(x, y)
	if err != nil {
		return nil, err
	}
	k, nG := base.K, base.G.N()
	// Vertices: originals (ids preserved) + one p_e per bit-incident edge
	// + 2k shared path vertices.
	n := nG + len(base.BitEdges) + 2*k
	b := graph.NewBuilder(n)
	for v := 0; v < nG; v++ {
		b.SetWeight(v, 1)
		b.SetName(v, base.G.Name(v))
	}

	w := &WeightedMVCGadget{Base: base}
	next := nG
	newPath := func(name string) int {
		id := next
		next++
		b.SetWeight(id, 0)
		b.SetName(id, name)
		w.PathVertices = append(w.PathVertices, id)
		return id
	}

	// Clique edges stay direct.
	for _, rows := range [][]int{base.A1, base.A2, base.B1, base.B2} {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.MustAddEdge(rows[i], rows[j])
			}
		}
	}
	// Bit-incident edges become 2-paths through p_e.
	for idx, e := range base.BitEdges {
		pe := newPath(fmt.Sprintf("p_e%d", idx))
		b.MustAddEdge(pe, e[0])
		b.MustAddEdge(pe, e[1])
	}
	// Shared gadgets: p_aⁱ ~ a¹ᵢ, with p_aⁱ ~ a²ⱼ iff x_{ij}=0.
	pa := make([]int, k)
	pb := make([]int, k)
	for i := 1; i <= k; i++ {
		pa[i-1] = newPath(fmt.Sprintf("p_a%d", i))
		b.MustAddEdge(pa[i-1], base.A1[i-1])
		pb[i-1] = newPath(fmt.Sprintf("p_b%d", i))
		b.MustAddEdge(pb[i-1], base.B1[i-1])
	}
	for i := 1; i <= k; i++ {
		for j := 1; j <= k; j++ {
			if !x.At(i, j) {
				b.MustAddEdge(pa[i-1], base.A2[j-1])
			}
			if !y.At(i, j) {
				b.MustAddEdge(pb[i-1], base.B2[j-1])
			}
		}
	}
	w.H = b.Build()

	w.Alice = bitset.New(n)
	base.Alice.ForEach(func(v int) bool {
		w.Alice.Add(v)
		return true
	})
	// Gadgets with both endpoints on Alice's side, and all p_aⁱ, belong to
	// Alice (matching the partition in the proof of Theorem 20).
	for idx, e := range base.BitEdges {
		if base.Alice.Contains(e[0]) && base.Alice.Contains(e[1]) {
			w.Alice.Add(nG + idx)
		}
	}
	for _, p := range pa {
		w.Alice.Add(p)
	}
	return w, nil
}

// UnweightedMVCGadget is the Theorem 22 family H_{x,y} (Figure 3): the
// CKP17 graph with every bit-incident edge replaced by a 3-vertex dangling
// path gadget DP_e (DP_e[1] adjacent to both endpoints), and input edges
// routed through 3-vertex shared gadgets Aⁱ (attached to a¹ᵢ) and Bⁱ
// (attached to b¹ᵢ). No weights.
//
// Lemma 24 (verified in tests): MVC(H²_{x,y}) = MVC(G_{x,y}) + 2·#gadgets,
// where #gadgets = 2k + 4k·log₂k + 8·log₂k.
type UnweightedMVCGadget struct {
	Base *CKP17MVC
	H    *graph.Graph
	// Gadgets lists every dangling/shared path gadget as its three vertex
	// ids [DP[1], DP[2], DP[3]].
	Gadgets [][3]int
	Alice   *bitset.Set
}

// GadgetCount returns the number of path gadgets (the Lemma 24 offset is
// twice this).
func (u *UnweightedMVCGadget) GadgetCount() int { return len(u.Gadgets) }

// BuildUnweightedMVCGadget constructs the Figure 3 family.
func BuildUnweightedMVCGadget(x, y Matrix) (*UnweightedMVCGadget, error) {
	base, err := BuildCKP17MVC(x, y)
	if err != nil {
		return nil, err
	}
	k, nG := base.K, base.G.N()
	gadgets := len(base.BitEdges) + 2*k
	n := nG + 3*gadgets
	b := graph.NewBuilder(n)
	for v := 0; v < nG; v++ {
		b.SetName(v, base.G.Name(v))
	}

	u := &UnweightedMVCGadget{Base: base}
	next := nG
	newGadget := func(name string) [3]int {
		g := [3]int{next, next + 1, next + 2}
		next += 3
		b.SetName(g[0], name+"[1]")
		b.SetName(g[1], name+"[2]")
		b.SetName(g[2], name+"[3]")
		b.MustAddEdge(g[0], g[1])
		b.MustAddEdge(g[1], g[2])
		u.Gadgets = append(u.Gadgets, g)
		return g
	}

	for _, rows := range [][]int{base.A1, base.A2, base.B1, base.B2} {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.MustAddEdge(rows[i], rows[j])
			}
		}
	}
	aliceGadgets := bitset.New(n)
	for idx, e := range base.BitEdges {
		g := newGadget(fmt.Sprintf("DP%d", idx))
		b.MustAddEdge(g[0], e[0])
		b.MustAddEdge(g[0], e[1])
		if base.Alice.Contains(e[0]) && base.Alice.Contains(e[1]) {
			for _, v := range g {
				aliceGadgets.Add(v)
			}
		}
	}
	sharedA := make([][3]int, k)
	sharedB := make([][3]int, k)
	for i := 1; i <= k; i++ {
		sharedA[i-1] = newGadget(fmt.Sprintf("A%d", i))
		b.MustAddEdge(sharedA[i-1][0], base.A1[i-1])
		for _, v := range sharedA[i-1] {
			aliceGadgets.Add(v)
		}
		sharedB[i-1] = newGadget(fmt.Sprintf("B%d", i))
		b.MustAddEdge(sharedB[i-1][0], base.B1[i-1])
	}
	for i := 1; i <= k; i++ {
		for j := 1; j <= k; j++ {
			if !x.At(i, j) {
				b.MustAddEdge(sharedA[i-1][0], base.A2[j-1])
			}
			if !y.At(i, j) {
				b.MustAddEdge(sharedB[i-1][0], base.B2[j-1])
			}
		}
	}
	u.H = b.Build()

	u.Alice = bitset.New(n)
	base.Alice.ForEach(func(v int) bool {
		u.Alice.Add(v)
		return true
	})
	u.Alice.Or(aliceGadgets)
	return u, nil
}

// NormalizeCoverLemma23 transforms any vertex cover of H² into one of at
// most the same size that contains, from every gadget, exactly the vertices
// DP[1] and DP[2] (never the leaf DP[3]) — the normal form of Lemma 23.
// The input must be a feasible cover of hSquare; the output remains one.
func (u *UnweightedMVCGadget) NormalizeCoverLemma23(hSquare *graph.Graph, cover *bitset.Set) *bitset.Set {
	out := cover.Clone()
	for _, g := range u.Gadgets {
		// DP[1], DP[2], DP[3] form a triangle in H²; any cover has ≥ 2 of
		// them. Swap the leaf out for whichever of DP[1], DP[2] is missing.
		if out.Contains(g[2]) {
			out.Remove(g[2])
			if !out.Contains(g[0]) {
				out.Add(g[0])
			} else if !out.Contains(g[1]) {
				out.Add(g[1])
			}
		}
		// The leaf's edges (to DP[1], DP[2] and 2-hop partners) must now be
		// covered by DP[1]/DP[2]; ensure both are present (Lemma 23 forces
		// them since {DP[2], DP[3]} and {DP[1], DP[3]} are H²-edges).
		out.Add(g[0])
		out.Add(g[1])
	}
	return out
}
