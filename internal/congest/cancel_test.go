package congest

import (
	"context"
	"errors"
	"testing"
	"time"

	"powergraph/internal/graph"
)

// chatterProgram broadcasts every round and never finishes on its own: the
// run only ends via MaxRounds or cancellation, which is exactly what the
// cancellation tests need.
type chatterProgram struct{ out int }

func (p *chatterProgram) Step(nd *Node) (bool, error) {
	nd.BroadcastNeighbors(NewInt(int64(nd.Round() % 4)))
	return false, nil
}

func (p *chatterProgram) Output() int { return p.out }

// runChatter starts an endless run under the given config and returns its
// error (nil never happens: the program cannot terminate before MaxRounds).
func runChatter(cfg Config) error {
	_, err := RunProgram(cfg, func(nd *Node) StepProgram[int] { return &chatterProgram{} })
	return err
}

func cancelConfigs(g *graph.Graph) map[string]Config {
	return map[string]Config{
		"goroutine":     {Graph: g, Engine: EngineGoroutine},
		"batch":         {Graph: g, Engine: EngineBatch},
		"batch-sharded": {Graph: g, Engine: EngineBatch, Shards: 4},
	}
}

// TestCancelPreCanceledContext: a context that is already done aborts the
// run at the first round barrier on every driver.
func TestCancelPreCanceledContext(t *testing.T) {
	g := graph.Cycle(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, cfg := range cancelConfigs(g) {
		cfg.Ctx = ctx
		err := runChatter(cfg)
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want wrapped context.Canceled cause", name, err)
		}
	}
}

// TestCancelMidRun: a deadline expiring while the simulation is in flight
// aborts it cleanly — the run returns (instead of spinning to MaxRounds),
// the error wraps both ErrCanceled and the deadline cause, and no node
// goroutine outlives Run on any driver.
func TestCancelMidRun(t *testing.T) {
	g := graph.Cycle(64)
	for name, cfg := range cancelConfigs(g) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		cfg.Ctx = ctx
		cfg.MaxRounds = 1 << 30 // far beyond what 10ms allows: only the ctx can stop it
		start := time.Now()
		err := runChatter(cfg)
		cancel()
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want ErrCanceled wrapping DeadlineExceeded", name, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("%s: run took %v after a 10ms deadline", name, elapsed)
		}
	}
}

// TestCancelBlockingHandler covers the coroutine-adapted path (blocking
// handler on the batch engine) and the goroutine engine's parked-node
// unwinding: every node is blocked in NextRound when the cancel lands.
func TestCancelBlockingHandler(t *testing.T) {
	g := graph.Cycle(16)
	for _, engine := range []EngineMode{EngineGoroutine, EngineBatch} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := Run(Config{Graph: g, Engine: engine, Ctx: ctx}, func(nd *Node) (int, error) {
				for {
					nd.BroadcastNeighbors(NewInt(1))
					nd.NextRound()
				}
			})
			done <- err
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("%s: err = %v, want ErrCanceled", engine, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: run did not abort after cancellation", engine)
		}
	}
}

// TestNilCtxUnchanged: the zero-config path (no context) still terminates
// via MaxRounds exactly as before.
func TestNilCtxUnchanged(t *testing.T) {
	g := graph.Path(4)
	err := runChatter(Config{Graph: g, Engine: EngineBatch, MaxRounds: 50})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}
