package congest_test

import (
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/harness"
)

// TestRegistryBandwidthStaysLogarithmic is the CONGEST-budget property test:
// every distributed registry algorithm, run under both engines at several
// sizes and at every supported power r ∈ {1, 2, 3, 4}, must keep its
// enforced per-message budget within a constant multiple of ⌈log₂ n⌉ bits —
// the "O(log n)-bit messages" assumption all of the paper's round bounds
// rely on, which the Gʳ generalization must not erode (its depth-r
// collectives re-flood fixed-width payloads; depth never widens a message).
// The simulator already rejects any single message over the budget, so a
// clean run plus a bounded budget pins both sides; a rewrite that
// accidentally fattens a payload (or inflates its declared width) fails here
// before it can skew any benchmark.
//
// The constant 8 is the largest bandwidth factor any algorithm requests
// (Theorem 28's estimator payloads); everything else runs at the default 4.
//
// The gather axis runs every r ≠ 2 cell under both the sparsified
// certificate gather and the legacy near flood, so the sparsified
// primitives (StepSparsify labels, the routed candidate-min relays) prove
// their O(log n)-bit claim on both engines at r ∈ {1, 3, 4} alongside the
// legacy baseline.
func TestRegistryBandwidthStaysLogarithmic(t *testing.T) {
	const maxFactor = 8
	var distributed []string
	for _, info := range harness.AlgorithmInfos() {
		if info.Model != harness.ModelCentralized {
			distributed = append(distributed, info.Name)
		}
	}
	spec := &harness.Spec{
		Name:     "bandwidth",
		RootSeed: 11,
		Trials:   1,
		Generators: []harness.GeneratorSpec{
			// Weighted instances exercise the weight reports of Theorem 7.
			{Name: "connected-gnp", MaxWeight: 20},
			{Name: "random-tree"},
		},
		Sizes:       []int{10, 17, 33},
		Powers:      []int{1, 2, 3, 4},
		Algorithms:  distributed,
		Epsilons:    []float64{0.5},
		EngineModes: []string{"goroutine", "batch"},
		Gathers:     []string{"sparsified", "legacy"},
		OracleN:     0,
	}
	rep, err := harness.Run(t.Context(), spec, harness.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		for _, r := range rep.Results {
			if r.Error != "" {
				t.Errorf("%s n=%d eng=%s: %s", r.Algorithm, r.N, r.Engine, r.Error)
			}
		}
		t.Fatalf("%d jobs failed", rep.Failed)
	}
	seenPowers := map[int]bool{}
	for _, r := range rep.Results {
		seenPowers[r.Power] = true
		idw := congest.IDBits(r.N)
		if r.Bandwidth > maxFactor*idw {
			t.Errorf("%s n=%d r=%d eng=%s: budget %d bits exceeds %d·⌈log₂ n⌉ = %d",
				r.Algorithm, r.N, r.Power, r.Engine, r.Bandwidth, maxFactor, maxFactor*idw)
		}
		if !r.Verified {
			t.Errorf("%s n=%d r=%d eng=%s: solution failed feasibility", r.Algorithm, r.N, r.Power, r.Engine)
		}
		// Internal consistency of the accounting: no round (and no total)
		// can exceed what its message count allows under the budget.
		if r.TotalBits > r.Messages*int64(r.Bandwidth) {
			t.Errorf("%s n=%d r=%d eng=%s: totalBits %d > messages %d × budget %d",
				r.Algorithm, r.N, r.Power, r.Engine, r.TotalBits, r.Messages, r.Bandwidth)
		}
		if r.MaxRoundBits > r.TotalBits {
			t.Errorf("%s n=%d r=%d eng=%s: maxRoundBits %d > totalBits %d",
				r.Algorithm, r.N, r.Power, r.Engine, r.MaxRoundBits, r.TotalBits)
		}
	}
	for _, r := range []int{1, 2, 3, 4} {
		if !seenPowers[r] {
			t.Errorf("no distributed jobs ran at power r=%d", r)
		}
	}
}
