package congest

import (
	"fmt"
	"testing"

	"powergraph/internal/graph"
)

// BenchmarkEngineModes compares the two execution engines (and the native
// step path) on the simulator's canonical hot loop: R rounds of full
// neighbor exchange. This isolates engine overhead — scheduling, barriers,
// outbox/inbox management — from algorithm-local work. Run it with
// `make bench-engine`.
func BenchmarkEngineModes(b *testing.B) {
	const rounds = 50
	for _, n := range []int{256, 1024, 2048} {
		g := graph.ConnectedGNP(n, 8/float64(n), newRand(1))
		w := IDBits(n)
		handler := func(nd *Node) (int, error) {
			sum := 0
			for r := 0; r < rounds; r++ {
				nd.Broadcast(NewIntWidth(int64(nd.ID()), w))
				nd.NextRound()
				sum += len(nd.Recv())
			}
			return sum, nil
		}
		for _, mode := range []EngineMode{EngineGoroutine, EngineBatch} {
			b.Run(fmt.Sprintf("n=%d/handler/%s", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Run(Config{Graph: g, Engine: mode}, handler); err != nil {
						b.Fatal(err)
					}
				}
				reportNodeRounds(b, n, rounds)
			})
		}
		b.Run(fmt.Sprintf("n=%d/program/batch", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := RunProgram(Config{Graph: g, Engine: EngineBatch},
					func(nd *Node) StepProgram[int] { return &exchangeProgram{rounds: rounds, width: w} })
				if err != nil {
					b.Fatal(err)
				}
			}
			reportNodeRounds(b, n, rounds)
		})
	}
}

func reportNodeRounds(b *testing.B, n, rounds int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n*rounds), "ns/node-round")
}

// exchangeProgram is the step-structured form of the benchmark handler.
type exchangeProgram struct {
	rounds int
	width  int
	sum    int
}

func (p *exchangeProgram) Step(nd *Node) (bool, error) {
	if nd.Round() > 0 {
		p.sum += len(nd.Recv())
	}
	if nd.Round() == p.rounds {
		return true, nil
	}
	nd.Broadcast(NewIntWidth(int64(nd.ID()), p.width))
	return false, nil
}

func (p *exchangeProgram) Output() int { return p.sum }
