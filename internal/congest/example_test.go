package congest_test

import (
	"fmt"

	"powergraph/internal/congest"
	"powergraph/internal/graph"
)

// Example runs a one-round neighbor id exchange on a 4-cycle: every node
// broadcasts its id, crosses the round barrier, and counts what arrived.
// The same handler runs unchanged on either engine; here the batched
// event-driven engine drives it.
func Example() {
	g := graph.Cycle(4)
	cfg := congest.Config{Graph: g, Engine: congest.EngineBatch}
	res, err := congest.Run(cfg, func(nd *congest.Node) (int, error) {
		nd.Broadcast(congest.NewIntWidth(int64(nd.ID()), congest.IDBits(nd.N())))
		nd.NextRound()
		sum := 0
		for _, in := range nd.Recv() {
			sum += int(in.Msg.(congest.Int).V)
		}
		return sum, nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", res.Stats.Rounds)
	fmt.Println("messages:", res.Stats.Messages)
	fmt.Println("node 0 neighbor-id sum:", res.Outputs[0])
	// Output:
	// rounds: 1
	// messages: 8
	// node 0 neighbor-id sum: 4
}

// minProgram is a step-structured node program: Step runs once per round as
// a plain function call (no goroutine per node on the batch engine). It
// floods the minimum id for n rounds.
type minProgram struct {
	best   int64
	rounds int
}

func (p *minProgram) Step(nd *congest.Node) (bool, error) {
	for _, in := range nd.Recv() {
		if v := in.Msg.(congest.Int).V; v < p.best {
			p.best = v
		}
	}
	if p.rounds == nd.N() {
		return true, nil
	}
	nd.BroadcastNeighbors(congest.NewIntWidth(p.best, congest.IDBits(nd.N())))
	p.rounds++
	return false, nil
}

func (p *minProgram) Output() int64 { return p.best }

// ExampleRunProgram elects a leader (the minimum id) with a step program —
// the shape the batch engine executes fastest.
func ExampleRunProgram() {
	g := graph.Path(5)
	cfg := congest.Config{Graph: g, Engine: congest.EngineBatch}
	res, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[int64] {
		return &minProgram{best: int64(nd.ID())}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("every node agrees on leader:", res.Outputs[0], res.Outputs[4])
	fmt.Println("rounds:", res.Stats.Rounds)
	// Output:
	// every node agrees on leader: 0 0
	// rounds: 5
}
