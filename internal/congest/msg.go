package congest

import "math/bits"

// Shared small message types. Algorithms with richer payloads define their
// own Message implementations; these cover the common cases and keep bit
// accounting honest.

// Flag is a 1-bit message (presence/absence signals, wave tokens).
type Flag struct{}

// Bits returns the size of the flag message.
func (Flag) Bits() int { return 1 }

// Int carries a single non-negative integer of explicit width. Width must
// be at least the value's natural length; constructors below compute it.
type Int struct {
	V     int64
	Width int
}

// Bits returns the declared width.
func (m Int) Bits() int { return m.Width }

// NewInt packs v into its natural width (minimum 1 bit). v must be ≥ 0.
func NewInt(v int64) Int {
	w := bits.Len64(uint64(v))
	if w == 0 {
		w = 1
	}
	return Int{V: v, Width: w}
}

// NewIntWidth packs v with a fixed width, for protocols whose analysis
// charges a fixed field size (e.g. an id field of ⌈log₂ n⌉ bits).
func NewIntWidth(v int64, width int) Int {
	return Int{V: v, Width: width}
}

// Pair carries two non-negative integers with explicit widths (e.g. an
// (id, value) report).
type Pair struct {
	A, B           int64
	WidthA, WidthB int
}

// Bits returns the total declared width.
func (m Pair) Bits() int { return m.WidthA + m.WidthB }

// NewPair packs two values with id-width fields for a network of n nodes.
func NewPair(n int, a, b int64) Pair {
	w := IDBits(n)
	return Pair{A: a, B: b, WidthA: w, WidthB: w}
}
