// Package primitives provides the reusable distributed building blocks the
// paper's CONGEST algorithms are assembled from: leader election, BFS tree
// construction, convergecast aggregation, root broadcast, pipelined gather
// of arbitrary item streams at a root (the "leader learns F" step of
// Lemma 2), and 2-hop maxima (the Phase-I symmetry breaking of Theorem 1).
//
// Every function here is a collective operation: it must be called by every
// node of the network in the same round, with consistent arguments, and it
// consumes the same number of rounds at every node (round counts depend
// only on n and on values made common knowledge beforehand). This lockstep
// contract is what keeps the barrier-synchronized simulation deadlock-free.
//
// All primitives communicate strictly over G-edges (Node.BroadcastNeighbors
// and explicit neighbor sends, never Node.Broadcast), so they keep their
// G-structure semantics even when the network runs in CONGESTED CLIQUE
// mode.
//
// Each blocking primitive has a step-form twin in step.go (StepMinIDLeader,
// StepBFSTree, …) for use inside congest.StepProgram implementations; the
// two forms send byte-identical messages in identical rounds.
package primitives

import (
	"fmt"

	"powergraph/internal/congest"
)

// Tree is a node-local view of a rooted spanning tree.
type Tree struct {
	Root     int
	Parent   int // -1 at the root
	Depth    int // distance from the root
	Children []int
}

// MinIDLeader floods the minimum id through the network and returns it; on
// a connected graph every node returns the same leader after exactly n
// rounds (n ≥ diameter+1 guarantees quiescence).
// Rounds consumed: n. Message size: one id.
func MinIDLeader(nd *congest.Node) int {
	n := nd.N()
	w := congest.IDBits(n)
	best := int64(nd.ID())
	for r := 0; r < n; r++ {
		nd.BroadcastNeighbors(congest.NewIntWidth(best, w))
		nd.NextRound()
		for _, in := range nd.Recv() {
			if v := in.Msg.(congest.Int).V; v < best {
				best = v
			}
		}
	}
	return int(best)
}

// BFSTree builds a BFS spanning tree rooted at root and returns each node's
// local view: depths equal BFS distances in G, and every parent is a
// G-neighbor one level closer to the root (ties toward the smallest id).
// The graph must be connected. Rounds consumed: n+1.
func BFSTree(nd *congest.Node, root int) Tree {
	n := nd.N()
	t := Tree{Root: root, Parent: -1, Depth: -1}
	joined := nd.ID() == root
	if joined {
		t.Depth = 0
	}
	announce := joined // send the join wave this round?
	for r := 0; r < n; r++ {
		if announce {
			nd.BroadcastNeighbors(congest.Flag{})
			announce = false
		}
		nd.NextRound()
		if !joined {
			for _, in := range nd.Recv() {
				// First wave to arrive: sender is at depth r, we join at r+1.
				// Inbox is sorted by sender, so the first is the minimum id.
				t.Parent = in.From
				t.Depth = r + 1
				joined = true
				announce = true
				break
			}
		}
	}
	// Child notification round.
	if t.Parent != -1 {
		nd.MustSend(t.Parent, congest.Flag{})
	}
	nd.NextRound()
	for _, in := range nd.Recv() {
		t.Children = append(t.Children, in.From)
	}
	return t
}

// ConvergecastSum aggregates the sum of every node's value at the root of
// the tree; the root returns the total, every other node returns 0.
// Values must be non-negative and small enough that the global sum fits in
// the bandwidth budget.
// Rounds consumed: n.
func ConvergecastSum(nd *congest.Node, t Tree, value int64) int64 {
	pending := len(t.Children)
	acc := value
	sent := false
	for r := 0; r < nd.N(); r++ {
		if !sent && pending == 0 && t.Parent != -1 {
			nd.MustSend(t.Parent, congest.NewInt(acc))
			sent = true
		}
		nd.NextRound()
		for _, in := range nd.Recv() {
			if m, ok := in.Msg.(congest.Int); ok && contains(t.Children, in.From) {
				acc += m.V
				pending--
			}
		}
	}
	if t.Parent == -1 {
		return acc
	}
	return 0
}

// BroadcastFromRoot floods a value from the tree's root to every node; all
// nodes return it.
// Rounds consumed: n.
func BroadcastFromRoot(nd *congest.Node, t Tree, value int64) int64 {
	var have bool
	var v int64
	if t.Parent == -1 {
		have, v = true, value
	}
	relay := have
	for r := 0; r < nd.N(); r++ {
		if relay {
			for _, c := range t.Children {
				nd.MustSend(c, congest.NewInt(v))
			}
			relay = false
		}
		nd.NextRound()
		if !have {
			if m, ok := nd.RecvFrom(t.Parent); ok {
				v = m.(congest.Int).V
				have = true
				relay = true
			}
		}
	}
	return v
}

// GatherAtRoot pipelines every node's items up the tree to the root, which
// returns the concatenation of all items (in arbitrary but deterministic
// order); other nodes return nil. Each item must individually fit in the
// bandwidth budget. This is the pipelined upward gather of Lemma 2: with c
// items per node it takes O(c·n) rounds.
//
// Rounds consumed: 2n + T where T = total item count (made common
// knowledge via an internal convergecast + broadcast).
func GatherAtRoot(nd *congest.Node, t Tree, items []congest.Message) []congest.Message {
	for i, it := range items {
		if it.Bits() > nd.Bandwidth() {
			panicCollective(fmt.Sprintf("primitives: item %d of node %d has %d bits > budget %d",
				i, nd.ID(), it.Bits(), nd.Bandwidth()))
		}
	}
	total := ConvergecastSum(nd, t, int64(len(items)))
	total = BroadcastFromRoot(nd, t, total)

	queue := make([]congest.Message, len(items))
	copy(queue, items)
	var collected []congest.Message
	rounds := int(total) + nd.N()
	for r := 0; r < rounds; r++ {
		if len(queue) > 0 && t.Parent != -1 {
			nd.MustSend(t.Parent, queue[0])
			queue = queue[1:]
		}
		nd.NextRound()
		for _, in := range nd.Recv() {
			if contains(t.Children, in.From) {
				if t.Parent == -1 {
					collected = append(collected, in.Msg)
				} else {
					queue = append(queue, in.Msg)
				}
			}
		}
	}
	if t.Parent == -1 {
		collected = append(collected, items...)
		return collected
	}
	return nil
}

// FloodItemsFromRoot pipelines the root's items down the tree; every node
// returns the full item list in the root's order. Non-root callers pass
// nil items (their argument is ignored). Each item must fit the bandwidth
// budget. This implements the "solution can be distributed to all nodes in
// O(n) rounds" step of Theorem 1's Phase II.
//
// Rounds consumed: 2n + T where T is the root's item count.
func FloodItemsFromRoot(nd *congest.Node, t Tree, items []congest.Message) []congest.Message {
	var total int64
	if t.Parent == -1 {
		total = int64(len(items))
	}
	total = ConvergecastSum(nd, t, total)
	total = BroadcastFromRoot(nd, t, total)

	var queue []congest.Message
	var got []congest.Message
	if t.Parent == -1 {
		queue = append(queue, items...)
		got = append(got, items...)
	}
	sendIdx := 0 // next queue index to forward to children
	rounds := int(total) + nd.N()
	for r := 0; r < rounds; r++ {
		if sendIdx < len(queue) {
			for _, c := range t.Children {
				nd.MustSend(c, queue[sendIdx])
			}
			sendIdx++
		}
		nd.NextRound()
		if t.Parent != -1 {
			if m, ok := nd.RecvFrom(t.Parent); ok {
				queue = append(queue, m)
				got = append(got, m)
			}
		}
	}
	return got
}

// TwoHopMax returns the maximum of value over the closed 2-hop neighborhood
// of this node (self, neighbors, and neighbors' neighbors). It implements
// the "maximum ID in its two hop neighborhood" test of Theorem 1's Phase I.
// Values must be non-negative.
// Rounds consumed: 2.
func TwoHopMax(nd *congest.Node, value int64) int64 {
	nd.BroadcastNeighbors(congest.NewInt(value))
	nd.NextRound()
	m1 := value
	for _, in := range nd.Recv() {
		if v := in.Msg.(congest.Int).V; v > m1 {
			m1 = v
		}
	}
	nd.BroadcastNeighbors(congest.NewInt(m1))
	nd.NextRound()
	m2 := m1
	for _, in := range nd.Recv() {
		if v := in.Msg.(congest.Int).V; v > m2 {
			m2 = v
		}
	}
	return m2
}

// Idle consumes the given number of rounds without sending anything, so a
// node can stay in lockstep with peers executing a fixed-round primitive it
// does not participate in.
func Idle(nd *congest.Node, rounds int) {
	for i := 0; i < rounds; i++ {
		nd.NextRound()
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// panicCollective aborts the run through the handler-panic path (recovered
// by the engine and surfaced as an error from congest.Run).
func panicCollective(msg string) {
	panic(msg)
}
