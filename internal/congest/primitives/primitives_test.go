package primitives

import (
	"fmt"
	"math/rand"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/graph"
)

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return map[string]*graph.Graph{
		"single":      graph.NewBuilder(1).Build(),
		"edge":        graph.Path(2),
		"path10":      graph.Path(10),
		"cycle9":      graph.Cycle(9),
		"star12":      graph.Star(12),
		"grid4x5":     graph.Grid(4, 5),
		"gnp30":       graph.ConnectedGNP(30, 0.1, rng),
		"caterpillar": graph.Caterpillar(6, 2),
		"tree25":      graph.RandomTree(25, rng),
	}
}

func TestMinIDLeader(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (int, error) {
				return MinIDLeader(nd), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for v, l := range res.Outputs {
				if l != 0 {
					t.Fatalf("node %d elected %d, want 0", v, l)
				}
			}
			if res.Stats.Rounds != g.N() {
				t.Fatalf("rounds = %d, want n = %d", res.Stats.Rounds, g.N())
			}
		})
	}
}

func TestBFSTree(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			root := g.N() / 2
			res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (Tree, error) {
				return BFSTree(nd, root), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			dist, _ := g.BFS(root)
			childCount := 0
			for v, tr := range res.Outputs {
				if tr.Depth != dist[v] {
					t.Fatalf("node %d: depth %d, want %d", v, tr.Depth, dist[v])
				}
				if v == root {
					if tr.Parent != -1 {
						t.Fatalf("root has parent %d", tr.Parent)
					}
				} else {
					if tr.Parent == -1 {
						t.Fatalf("node %d has no parent", v)
					}
					if !g.HasEdge(v, tr.Parent) {
						t.Fatalf("node %d: parent %d is not a neighbor", v, tr.Parent)
					}
					if dist[tr.Parent] != dist[v]-1 {
						t.Fatalf("node %d: parent depth mismatch", v)
					}
					// Child lists are consistent with parents.
					found := false
					for _, c := range res.Outputs[tr.Parent].Children {
						if c == v {
							found = true
						}
					}
					if !found {
						t.Fatalf("node %d missing from its parent's child list", v)
					}
				}
				childCount += len(tr.Children)
			}
			if childCount != g.N()-1 {
				t.Fatalf("total children = %d, want %d", childCount, g.N()-1)
			}
		})
	}
}

func TestConvergecastSum(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (int64, error) {
				tr := BFSTree(nd, 0)
				return ConvergecastSum(nd, tr, int64(nd.ID()+1)), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			n := int64(g.N())
			want := n * (n + 1) / 2
			if res.Outputs[0] != want {
				t.Fatalf("root sum = %d, want %d", res.Outputs[0], want)
			}
			for v := 1; v < g.N(); v++ {
				if res.Outputs[v] != 0 {
					t.Fatalf("non-root %d returned %d", v, res.Outputs[v])
				}
			}
		})
	}
}

func TestBroadcastFromRoot(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			// The value must fit the bandwidth budget even on tiny graphs
			// (n=2 ⇒ B=4 bits), as the primitive's contract requires.
			res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (int64, error) {
				tr := BFSTree(nd, 0)
				return BroadcastFromRoot(nd, tr, 13), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for v, got := range res.Outputs {
				if got != 13 {
					t.Fatalf("node %d got %d", v, got)
				}
			}
		})
	}
}

func TestGatherAtRoot(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (int, error) {
				tr := BFSTree(nd, 0)
				// Every node contributes (id+1) items carrying its id.
				items := make([]congest.Message, nd.ID()+1)
				for i := range items {
					items[i] = congest.NewIntWidth(int64(nd.ID()), congest.IDBits(nd.N()))
				}
				got := GatherAtRoot(nd, tr, items)
				if nd.ID() != 0 {
					if got != nil {
						return 0, fmt.Errorf("non-root received items")
					}
					return 0, nil
				}
				return len(got), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			want := n * (n + 1) / 2
			if res.Outputs[0] != want {
				t.Fatalf("root collected %d items, want %d", res.Outputs[0], want)
			}
		})
	}
}

func TestGatherAtRootContentIntegrity(t *testing.T) {
	g := graph.ConnectedGNP(20, 0.15, rand.New(rand.NewSource(3)))
	res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (map[int64]int, error) {
		tr := BFSTree(nd, 0)
		items := []congest.Message{congest.NewIntWidth(int64(nd.ID()), congest.IDBits(nd.N()))}
		got := GatherAtRoot(nd, tr, items)
		if nd.ID() != 0 {
			return nil, nil
		}
		counts := map[int64]int{}
		for _, m := range got {
			counts[m.(congest.Int).V]++
		}
		return counts, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Outputs[0]
	for v := 0; v < g.N(); v++ {
		if counts[int64(v)] != 1 {
			t.Fatalf("item from node %d seen %d times", v, counts[int64(v)])
		}
	}
}

func TestGatherRoundsLinearInItems(t *testing.T) {
	// Lemma 2: gathering c items/node takes O(c·n) rounds. Measure total
	// rounds for c=1 vs c=4 on a fixed path and check growth is ≈ linear in
	// the total item count, not quadratic.
	rounds := func(c int) int {
		g := graph.Path(30)
		res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (int, error) {
			tr := BFSTree(nd, 0)
			items := make([]congest.Message, c)
			for i := range items {
				items[i] = congest.Flag{}
			}
			GatherAtRoot(nd, tr, items)
			return 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	r1, r4 := rounds(1), rounds(4)
	// Fixed overhead (tree + convergecast + broadcast) is ~3n; the variable
	// part is the item count (30 vs 120). So r4 - r1 should be ≈ 90.
	if d := r4 - r1; d < 80 || d > 120 {
		t.Fatalf("r1=%d r4=%d: delta %d outside linear-pipelining range", r1, r4, d)
	}
}

func TestTwoHopMax(t *testing.T) {
	g := graph.Path(7)
	res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (int64, error) {
		return TwoHopMax(nd, int64(nd.ID())), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// On a path, max over closed 2-hop ball of i is min(i+2, 6).
	for v, got := range res.Outputs {
		want := int64(v + 2)
		if want > 6 {
			want = 6
		}
		if got != want {
			t.Fatalf("node %d: two-hop max %d, want %d", v, got, want)
		}
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Stats.Rounds)
	}
}

func TestTwoHopMaxMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		g := graph.ConnectedGNP(25, 0.12, rng)
		vals := make([]int64, g.N())
		for i := range vals {
			vals[i] = rng.Int63n(1000)
		}
		res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (int64, error) {
			return TwoHopMax(nd, vals[nd.ID()]), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			ball := g.TwoHopNeighborhood(v)
			want := vals[v]
			ball.ForEach(func(u int) bool {
				if vals[u] > want {
					want = vals[u]
				}
				return true
			})
			if res.Outputs[v] != want {
				t.Fatalf("node %d: %d, want %d", v, res.Outputs[v], want)
			}
		}
	}
}

func TestFloodItemsFromRoot(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			res, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) ([]int64, error) {
				tr := BFSTree(nd, 0)
				var items []congest.Message
				if nd.ID() == 0 {
					// Root floods three ordered values.
					for _, v := range []int64{7, 3, 11} {
						items = append(items, congest.NewIntWidth(v, 4))
					}
				}
				got := FloodItemsFromRoot(nd, tr, items)
				out := make([]int64, 0, len(got))
				for _, m := range got {
					out = append(out, m.(congest.Int).V)
				}
				return out, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for v, got := range res.Outputs {
				if len(got) != 3 || got[0] != 7 || got[1] != 3 || got[2] != 11 {
					t.Fatalf("node %d received %v (order must be preserved)", v, got)
				}
			}
		})
	}
}

func TestGatherRejectsOversizedItems(t *testing.T) {
	// An item beyond the bandwidth budget must abort the run with an error
	// (via the engine's panic-recovery path), not hang or truncate.
	g := graph.Path(3)
	_, err := congest.Run(congest.Config{Graph: g, BandwidthFactor: 1},
		func(nd *congest.Node) (int, error) {
			tr := BFSTree(nd, 0)
			var items []congest.Message
			if nd.ID() == 2 {
				items = []congest.Message{congest.NewIntWidth(123456, 30)}
			}
			GatherAtRoot(nd, tr, items)
			return 0, nil
		})
	if err == nil {
		t.Fatal("oversized gather item accepted")
	}
}

func TestPrimitivesWorkInCliqueModel(t *testing.T) {
	// The primitives speak strictly over G-edges, so their semantics must
	// be identical under the CONGESTED CLIQUE model.
	g := graph.Grid(3, 4)
	for _, model := range []congest.Model{congest.CONGEST, congest.CongestedClique} {
		res, err := congest.Run(congest.Config{Graph: g, Model: model},
			func(nd *congest.Node) (int64, error) {
				tr := BFSTree(nd, 0)
				sum := ConvergecastSum(nd, tr, int64(nd.ID()))
				return BroadcastFromRoot(nd, tr, sum), nil
			})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		n := int64(g.N())
		want := n * (n - 1) / 2
		for v, got := range res.Outputs {
			if got != want {
				t.Fatalf("%v: node %d got %d, want %d", model, v, got, want)
			}
		}
	}
}

func TestIdleKeepsLockstep(t *testing.T) {
	g := graph.Path(4)
	_, err := congest.Run(congest.Config{Graph: g}, func(nd *congest.Node) (int, error) {
		if nd.ID() == 0 {
			Idle(nd, 3)
			return 0, nil
		}
		for i := 0; i < 3; i++ {
			nd.NextRound()
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
