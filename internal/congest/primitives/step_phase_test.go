package primitives

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/graph"
)

// cliqueOut is the observable outcome of the clique-collective chain.
type cliqueOut struct {
	Hop2      int64
	Leader    int
	On        string
	Collected string
}

// blockingCliqueChain chains the blocking counterparts of the clique-model
// step primitives: a 2-hop max, a one-round clique leader election, a
// status exchange, and Lemma 9's direct gather at the leader.
func blockingCliqueChain(nd *congest.Node) (cliqueOut, error) {
	out := cliqueOut{Hop2: TwoHopMax(nd, int64(nd.ID()*7%13))}

	nd.Broadcast(congest.Flag{})
	nd.NextRound()
	leader := nd.ID()
	for _, in := range nd.Recv() {
		if in.From < leader {
			leader = in.From
		}
	}
	out.Leader = leader

	status := nd.ID()%3 == 0
	bit := int64(0)
	if status {
		bit = 1
	}
	nd.BroadcastNeighbors(congest.NewIntWidth(bit, 1))
	nd.NextRound()
	var on []int
	for _, in := range nd.Recv() {
		if in.Msg.(congest.Int).V == 1 {
			on = append(on, in.From)
		}
	}
	out.On = fmt.Sprint(on)

	items := []congest.Message{congest.NewInt(int64(nd.ID()))}
	if nd.ID()%2 == 0 {
		items = append(items, congest.NewInt(int64(nd.ID()+100)))
	}
	const maxItems = 2
	var gathered []congest.Message
	for j := 0; j < maxItems; j++ {
		if j < len(items) && nd.ID() != leader {
			nd.MustSend(leader, items[j])
		}
		nd.NextRound()
		if nd.ID() == leader {
			for _, in := range nd.Recv() {
				gathered = append(gathered, in.Msg)
			}
		}
	}
	if nd.ID() == leader {
		gathered = append(gathered, items...)
	}
	out.Collected = fmt.Sprint(gathered)
	return out, nil
}

// stepCliqueChain is the same chain assembled from the step-form twins.
type stepCliqueChain struct {
	stage  int
	hop    *StepHopMax
	leader *StepCliqueLeader
	status *StepStatusExchange
	gather *StepDirectGather
	out    cliqueOut
}

func (p *stepCliqueChain) Step(nd *congest.Node) (bool, error) {
	for {
		switch p.stage {
		case 0:
			if p.hop == nil {
				p.hop = NewStepTwoHopMax(int64(nd.ID() * 7 % 13))
			}
			if !p.hop.Step(nd) {
				return false, nil
			}
			p.out.Hop2 = p.hop.Max()
			p.leader = NewStepCliqueLeader(nd)
			p.stage = 1
		case 1:
			if !p.leader.Step(nd) {
				return false, nil
			}
			p.out.Leader = p.leader.Leader()
			p.status = NewStepStatusExchange(nd.ID()%3 == 0)
			p.stage = 2
		case 2:
			if !p.status.Step(nd) {
				return false, nil
			}
			p.out.On = fmt.Sprint(p.status.On())
			items := []congest.Message{congest.NewInt(int64(nd.ID()))}
			if nd.ID()%2 == 0 {
				items = append(items, congest.NewInt(int64(nd.ID()+100)))
			}
			p.gather = NewStepDirectGather(p.out.Leader, items, 2)
			p.stage = 3
		default:
			if !p.gather.Step(nd) {
				return false, nil
			}
			p.out.Collected = fmt.Sprint(p.gather.Collected())
			return true, nil
		}
	}
}

func (p *stepCliqueChain) Output() cliqueOut { return p.out }

// TestStepCliquePrimitivesMatchBlocking proves the clique-model step
// primitives (StepTwoHopMax, StepCliqueLeader, StepStatusExchange,
// StepDirectGather) message-for-message equivalent to their blocking
// counterparts: identical outputs and simulator statistics on both engines.
func TestStepCliquePrimitivesMatchBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	graphs := map[string]*graph.Graph{
		"single": graph.NewBuilder(1).Build(),
		"edge":   graph.Path(2),
		"path8":  graph.Path(8),
		"star10": graph.Star(10),
		"gnp20":  graph.ConnectedGNP(20, 0.2, rng),
	}
	for name, g := range graphs {
		var results []*congest.Result[cliqueOut]
		for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
			cfg := congest.Config{Graph: g, Model: congest.CongestedClique, Seed: 6, Engine: mode}
			blk, err := congest.Run(cfg, blockingCliqueChain)
			if err != nil {
				t.Fatalf("%s/%v blocking: %v", name, mode, err)
			}
			stp, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[cliqueOut] {
				return &stepCliqueChain{}
			})
			if err != nil {
				t.Fatalf("%s/%v step: %v", name, mode, err)
			}
			results = append(results, blk, stp)
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0].Outputs, results[i].Outputs) {
				t.Fatalf("%s: variant %d outputs differ:\n%v\n%v",
					name, i, results[0].Outputs, results[i].Outputs)
			}
			if results[0].Stats != results[i].Stats {
				t.Fatalf("%s: variant %d stats differ:\n%+v\n%+v",
					name, i, results[0].Stats, results[i].Stats)
			}
		}
		for v, out := range results[0].Outputs {
			if out.Leader != 0 {
				t.Fatalf("%s: node %d elected %d", name, v, out.Leader)
			}
		}
	}
}

// TestStepEstimatorFloods exercises StepMinFlood, StepHopMax, and
// StepRankFlood directly on a known topology: a path where exactly one node
// holds a sample.
func TestStepEstimatorFloods(t *testing.T) {
	g := graph.Path(5)
	prog := func(nd *congest.Node) congest.StepProgram[estimatorOut] {
		return &estimatorProbe{}
	}
	for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
		res, err := congest.RunProgram(congest.Config{Graph: g, Seed: 1, Engine: mode}, prog)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for v, o := range res.Outputs {
			// Node 2 holds sample 42; after one flood its G-neighbors see it.
			wantMin := int64(-1)
			if v >= 1 && v <= 3 {
				wantMin = 42
			}
			if o.Min != wantMin {
				t.Errorf("%v: node %d min = %d, want %d", mode, v, o.Min, wantMin)
			}
			// 2 hops of max over values = id: nodes see max id within 2 hops.
			wantHop := int64(min(v+2, 4))
			if o.HopMax != wantHop {
				t.Errorf("%v: node %d hopMax = %d, want %d", mode, v, o.HopMax, wantHop)
			}
			// Only node 3 holds rank 5; neighbors learn (5, 3).
			if v >= 2 && v <= 4 {
				if o.Rank != 5 || o.RankID != 3 {
					t.Errorf("%v: node %d rank = (%d,%d), want (5,3)", mode, v, o.Rank, o.RankID)
				}
				if v != 3 && o.Senders != 1 {
					t.Errorf("%v: node %d saw %d rank senders, want 1", mode, v, o.Senders)
				}
			} else if o.RankID != -1 {
				t.Errorf("%v: node %d rankID = %d, want -1", mode, v, o.RankID)
			}
		}
	}
}

type estimatorOut struct {
	Min     int64
	HopMax  int64
	Rank    int64
	RankID  int64
	Senders int
}

type estimatorProbe struct {
	stage int
	mf    *StepMinFlood
	hm    *StepHopMax
	rf    *StepRankFlood
	out   estimatorOut
}

func (p *estimatorProbe) Step(nd *congest.Node) (bool, error) {
	for {
		switch p.stage {
		case 0:
			if p.mf == nil {
				own := int64(-1)
				if nd.ID() == 2 {
					own = 42
				}
				p.mf = NewStepMinFlood(own, 8)
			}
			if !p.mf.Step(nd) {
				return false, nil
			}
			p.out.Min = p.mf.Min()
			p.hm = NewStepHopMax(int64(nd.ID()), 4, 2)
			p.stage = 1
		case 1:
			if !p.hm.Step(nd) {
				return false, nil
			}
			p.out.HopMax = p.hm.Max()
			rank := int64(-1)
			if nd.ID() == 3 {
				rank = 5
			}
			p.rf = NewStepRankFlood(rank, int64(nd.ID()), 8, 4)
			p.stage = 2
		default:
			if !p.rf.Step(nd) {
				return false, nil
			}
			p.out.Rank, p.out.RankID = p.rf.Best()
			p.out.Senders = len(p.rf.Senders())
			return true, nil
		}
	}
}

func (p *estimatorProbe) Output() estimatorOut { return p.out }
