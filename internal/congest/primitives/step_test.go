package primitives

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/graph"
)

// pipelineOut is the observable outcome of the composed primitive chain.
type pipelineOut struct {
	Leader    int
	Depth     int
	Gathered  int    // root's collected item count (0 elsewhere)
	FloodView string // every node's view of the flooded items
}

// blockingPipeline chains every blocking primitive: elect a leader, build
// its BFS tree, gather one item per node at the root, flood a derived item
// list back down.
func blockingPipeline(nd *congest.Node) (pipelineOut, error) {
	n := nd.N()
	w := congest.IDBits(n)
	leader := MinIDLeader(nd)
	tree := BFSTree(nd, leader)
	items := []congest.Message{congest.NewIntWidth(int64(nd.ID()), w)}
	gathered := GatherAtRoot(nd, tree, items)
	var down []congest.Message
	if nd.ID() == leader {
		sum := int64(0)
		for _, m := range gathered {
			sum += m.(congest.Int).V
		}
		down = []congest.Message{congest.NewInt(sum), congest.NewIntWidth(int64(len(gathered)), w)}
	}
	got := FloodItemsFromRoot(nd, tree, down)
	return pipelineOut{
		Leader:    leader,
		Depth:     tree.Depth,
		Gathered:  len(gathered),
		FloodView: fmt.Sprint(got),
	}, nil
}

// stepPipeline is the same chain assembled from the step-form twins.
type stepPipeline struct {
	stage  int
	minID  *StepMinIDLeader
	bfs    *StepBFSTree
	tree   Tree
	gather *StepGatherAtRoot
	flood  *StepFloodItemsFromRoot
	out    pipelineOut
}

func (p *stepPipeline) Step(nd *congest.Node) (bool, error) {
	n := nd.N()
	w := congest.IDBits(n)
	for {
		switch p.stage {
		case 0:
			if p.minID == nil {
				p.minID = NewStepMinIDLeader(nd)
			}
			if !p.minID.Step(nd) {
				return false, nil
			}
			p.out.Leader = p.minID.Leader()
			p.bfs = NewStepBFSTree(nd, p.out.Leader)
			p.stage = 1
		case 1:
			if !p.bfs.Step(nd) {
				return false, nil
			}
			p.tree = p.bfs.Tree()
			p.out.Depth = p.tree.Depth
			items := []congest.Message{congest.NewIntWidth(int64(nd.ID()), w)}
			p.gather = NewStepGatherAtRoot(nd, &p.tree, items)
			p.stage = 2
		case 2:
			if !p.gather.Step(nd) {
				return false, nil
			}
			gathered := p.gather.Collected()
			p.out.Gathered = len(gathered)
			var down []congest.Message
			if nd.ID() == p.out.Leader {
				sum := int64(0)
				for _, m := range gathered {
					sum += m.(congest.Int).V
				}
				down = []congest.Message{congest.NewInt(sum), congest.NewIntWidth(int64(len(gathered)), w)}
			}
			p.flood = NewStepFloodItemsFromRoot(nd, &p.tree, down)
			p.stage = 3
		default:
			if !p.flood.Step(nd) {
				return false, nil
			}
			p.out.FloodView = fmt.Sprint(p.flood.Items())
			return true, nil
		}
	}
}

func (p *stepPipeline) Output() pipelineOut { return p.out }

// TestStepPrimitivesMatchBlocking proves the step-form primitives are
// message-for-message equivalent to their blocking twins: the composed
// chain produces identical outputs and identical simulator statistics on
// both engines, across topologies that stress every primitive (deep trees,
// stars, random graphs).
func TestStepPrimitivesMatchBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	graphs := map[string]*graph.Graph{
		"single": graph.NewBuilder(1).Build(),
		"edge":   graph.Path(2),
		"path13": graph.Path(13),
		"star9":  graph.Star(9),
		"grid45": graph.Grid(4, 5),
		"gnp25":  graph.ConnectedGNP(25, 0.15, rng),
		"tree30": graph.RandomTree(30, rng),
	}
	for name, g := range graphs {
		var results []*congest.Result[pipelineOut]
		for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
			cfg := congest.Config{Graph: g, Seed: 4, Engine: mode}
			blk, err := congest.Run(cfg, blockingPipeline)
			if err != nil {
				t.Fatalf("%s/%v blocking: %v", name, mode, err)
			}
			stp, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[pipelineOut] {
				return &stepPipeline{}
			})
			if err != nil {
				t.Fatalf("%s/%v step: %v", name, mode, err)
			}
			results = append(results, blk, stp)
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0].Outputs, results[i].Outputs) {
				t.Fatalf("%s: variant %d outputs differ:\n%v\n%v",
					name, i, results[0].Outputs, results[i].Outputs)
			}
			if results[0].Stats != results[i].Stats {
				t.Fatalf("%s: variant %d stats differ:\n%+v\n%+v",
					name, i, results[0].Stats, results[i].Stats)
			}
		}
		// Sanity: the chain did real work — everyone agrees on leader 0,
		// and the root gathered one item per node.
		for v, out := range results[0].Outputs {
			if out.Leader != 0 {
				t.Fatalf("%s: node %d elected %d", name, v, out.Leader)
			}
			if v == 0 && out.Gathered != g.N() {
				t.Fatalf("%s: root gathered %d items, want %d", name, out.Gathered, g.N())
			}
		}
	}
}
