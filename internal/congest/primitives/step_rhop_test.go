package primitives

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/graph"
)

// Property tests for the depth-r collectives behind the Gʳ pipeline: on
// random graphs, every primitive must agree with a direct BFS-computed
// r-neighborhood reference, for r = 1…5, under both engines.

// rhopOut is one node's observable outcome of the chained depth-r stages.
type rhopOut struct {
	HopMax   int64  // StepRHopMax over the closed r-ball
	MinFlood int64  // r chained StepMinFloods (-1 = saw nothing)
	RankBest string // r chained StepRankFloods: "rank/id"
	CandNbrs string // first rank-flood senders (the candidate neighbors)
	Near     bool   // StepNearFlood grown r hops from the seed set
	CandMin  int64  // depth-r StepCandidateMinFlood at candidates (-1 else)
}

// rhopInputs derives every node's deterministic test inputs from its id:
// which nodes hold min-flood samples, which are rank candidates, which seed
// the near flood, and who votes for whom in the candidate flood.
type rhopInputs struct {
	r int
}

func (in rhopInputs) hopVal(v int) int64 { return int64((v*7919 + 13) % 257) }
func (in rhopInputs) holder(v int) bool  { return v%3 == 0 }
func (in rhopInputs) sample(v int) int64 {
	if !in.holder(v) {
		return -1
	}
	return int64((v*104729 + 7) % 509)
}
func (in rhopInputs) candidate(v int) bool { return v%4 == 1 }
func (in rhopInputs) rank(v int) int64 {
	if !in.candidate(v) {
		return -1
	}
	return int64((v*31 + 5) % 64)
}
func (in rhopInputs) nearSeed(v int) bool { return v%5 == 2 }

// voteFor picks, for every node, the reference-best candidate within r hops
// (the way the MDS pipeline votes after its chained rank floods); -1 when
// none is reachable.
func (in rhopInputs) voteFor(g *graph.Graph, v int) int {
	dist, _ := g.BFS(v)
	bestRank, best := int64(-1), -1
	for u := 0; u < g.N(); u++ {
		if dist[u] < 0 || dist[u] > in.r || !in.candidate(u) {
			continue
		}
		r := in.rank(u)
		if best == -1 || r < bestRank || (r == bestRank && u < best) {
			bestRank, best = r, u
		}
	}
	return best
}

func (in rhopInputs) voteSample(v int) int64 { return int64((v*65537 + 11) % 1021) }

// rhopProgram chains every depth-r primitive at one node. The chained rank
// floods double as the route recorder for the exact candidate flood: each
// adoption of a new running best is kept as a CandRoute, exactly the way
// the MDS program captures its relay trees.
type rhopProgram struct {
	in      rhopInputs
	voteFor int

	stage     int
	hop       *StepHopMax
	flood     *StepMinFlood
	floodHops int
	rank      *StepRankFlood
	rankHops  int
	candNbrs  map[int]bool
	routes    []CandRoute
	prevBest  int
	near      *StepNearFlood
	votes     *StepCandidateMinFlood
	out       rhopOut
}

func (p *rhopProgram) Step(nd *congest.Node) (bool, error) {
	for {
		switch p.stage {
		case 0:
			if p.hop == nil {
				p.hop = NewStepRHopMax(p.in.hopVal(nd.ID()), p.in.r)
			}
			if !p.hop.Step(nd) {
				return false, nil
			}
			p.out.HopMax = p.hop.Max()
			p.flood = NewStepMinFlood(p.in.sample(nd.ID()), 12)
			p.floodHops = 1
			p.stage = 1
		case 1:
			if !p.flood.Step(nd) {
				return false, nil
			}
			if p.floodHops < p.in.r {
				p.flood = NewStepMinFlood(p.flood.Min(), 12)
				p.floodHops++
				continue
			}
			p.out.MinFlood = p.flood.Min()
			p.rank = NewStepRankFlood(p.in.rank(nd.ID()), int64(nd.ID()), 8, congest.IDBits(nd.N()))
			p.rankHops = 1
			p.prevBest = -1
			if p.in.candidate(nd.ID()) {
				p.routes = append(p.routes, CandRoute{Cand: nd.ID(), From: -1, Lvl: 0})
				p.prevBest = nd.ID()
			}
			p.stage = 2
		case 2:
			if !p.rank.Step(nd) {
				return false, nil
			}
			if p.rankHops == 1 {
				p.candNbrs = p.rank.Senders()
			}
			if _, id := p.rank.Best(); id >= 0 && int(id) != p.prevBest {
				p.routes = append(p.routes, CandRoute{Cand: int(id), From: p.rank.BestFrom(), Lvl: p.rankHops})
				p.prevBest = int(id)
			}
			if p.rankHops < p.in.r {
				r, id := p.rank.Best()
				p.rank = NewStepRankFlood(r, id, 8, congest.IDBits(nd.N()))
				p.rankHops++
				continue
			}
			r, id := p.rank.Best()
			p.out.RankBest = fmt.Sprintf("%d/%d", r, id)
			p.out.CandNbrs = fmt.Sprint(sortedKeys(p.candNbrs))
			p.near = NewStepNearFlood(p.in.nearSeed(nd.ID()), p.in.r)
			p.stage = 3
		case 3:
			if !p.near.Step(nd) {
				return false, nil
			}
			p.out.Near = p.near.Near()
			own := int64(-1)
			if p.voteFor >= 0 {
				own = p.in.voteSample(nd.ID())
			}
			if p.in.r <= 2 {
				p.votes = NewStepCandidateMinFloodR(p.voteFor, own, p.candNbrs,
					p.in.candidate(nd.ID()), congest.IDBits(nd.N()), 12, p.in.r)
			} else {
				p.votes = NewStepCandidateMinFloodRoutes(p.voteFor, own, p.routes,
					p.in.candidate(nd.ID()), congest.IDBits(nd.N()), 12, p.in.r)
			}
			p.stage = 4
		default:
			if !p.votes.Step(nd) {
				return false, nil
			}
			p.out.CandMin = p.votes.Min()
			return true, nil
		}
	}
}

func (p *rhopProgram) Output() rhopOut { return p.out }

func sortedKeys(m map[int]bool) []int {
	out := []int{}
	for v := 0; v < 1<<20; v++ {
		if len(out) == len(m) {
			break
		}
		if m[v] {
			out = append(out, v)
		}
	}
	return out
}

// rhopReference computes every node's expected outcome straight from BFS
// distances.
func rhopReference(g *graph.Graph, in rhopInputs, voteFor []int) []rhopOut {
	n := g.N()
	out := make([]rhopOut, n)
	for v := 0; v < n; v++ {
		dist, _ := g.BFS(v)
		o := &out[v]
		o.MinFlood, o.CandMin = -1, -1
		bestRank, bestID := int64(-1), int64(-1)
		for u := 0; u < n; u++ {
			if dist[u] < 0 || dist[u] > in.r {
				continue
			}
			if val := in.hopVal(u); val > o.HopMax {
				o.HopMax = val
			}
			if s := in.sample(u); s >= 0 && (o.MinFlood < 0 || s < o.MinFlood) {
				o.MinFlood = s
			}
			if r := in.rank(u); r >= 0 {
				if bestRank < 0 || r < bestRank || (r == bestRank && int64(u) < bestID) {
					bestRank, bestID = r, int64(u)
				}
			}
			if in.nearSeed(u) {
				o.Near = true
			}
		}
		o.RankBest = fmt.Sprintf("%d/%d", bestRank, bestID)
		var cand []int
		for _, u := range g.Adj(v) {
			if in.candidate(u) {
				cand = append(cand, u)
			}
		}
		if cand == nil {
			cand = []int{}
		}
		o.CandNbrs = fmt.Sprint(cand)
	}
	// Candidate vote minima: exact at every depth (the legacy broadcast
	// schedule serves r ≤ 2, the routed relay schedule serves r ≥ 3).
	for c := 0; c < n; c++ {
		if !in.candidate(c) {
			continue
		}
		dist, _ := g.BFS(c)
		for v := 0; v < n; v++ {
			if dist[v] < 0 || dist[v] > in.r || voteFor[v] != c {
				continue
			}
			if s := in.voteSample(v); out[c].CandMin < 0 || s < out[c].CandMin {
				out[c].CandMin = s
			}
		}
	}
	return out
}

// TestRHopPrimitivesMatchBFSReference is the satellite property test: on
// random connected graphs, the depth-r collectives agree with the BFS
// reference for r = 1…5 under both engines. The candidate flood is asserted
// EXACT at every depth: the legacy broadcast schedule at r ≤ 2, the routed
// relay schedule (NewStepCandidateMinFloodRoutes over the adoption routes
// recorded from the chained rank floods) at r ≥ 3.
func TestRHopPrimitivesMatchBFSReference(t *testing.T) {
	for _, n := range []int{9, 17, 26} {
		for r := 1; r <= 5; r++ {
			g := graph.ConnectedGNP(n, 2.5/float64(n), rand.New(rand.NewSource(int64(100*n+r))))
			in := rhopInputs{r: r}
			voteFor := make([]int, n)
			for v := 0; v < n; v++ {
				voteFor[v] = in.voteFor(g, v)
			}
			want := rhopReference(g, in, voteFor)

			// Both engines plus a sharded batch sweep: the routed candidate
			// flood must be exact under the shard barrier too.
			cfgs := []congest.Config{
				{Graph: g, Model: congest.CONGEST, Engine: congest.EngineGoroutine, BandwidthFactor: 8},
				{Graph: g, Model: congest.CONGEST, Engine: congest.EngineBatch, BandwidthFactor: 8},
				{Graph: g, Model: congest.CONGEST, Engine: congest.EngineBatch, Shards: 3, BandwidthFactor: 8},
			}
			engineOuts := make([][]rhopOut, len(cfgs))
			for i, cfg := range cfgs {
				res, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[rhopOut] {
					return &rhopProgram{in: in, voteFor: voteFor[nd.ID()]}
				})
				if err != nil {
					t.Fatalf("n=%d r=%d %v sh=%d: %v", n, r, cfg.Engine, cfg.Shards, err)
				}
				engineOuts[i] = res.Outputs
				if i > 0 && !reflect.DeepEqual(engineOuts[0], engineOuts[i]) {
					t.Fatalf("n=%d r=%d: engine config %d diverges from goroutine", n, r, i)
				}
			}

			for v, got := range engineOuts[0] {
				w := want[v]
				if got.HopMax != w.HopMax || got.MinFlood != w.MinFlood ||
					got.RankBest != w.RankBest || got.CandNbrs != w.CandNbrs || got.Near != w.Near {
					t.Fatalf("n=%d r=%d node %d:\ngot  %+v\nwant %+v", n, r, v, got, w)
				}
				if !in.candidate(v) {
					if got.CandMin != -1 {
						t.Fatalf("n=%d r=%d node %d: non-candidate reported vote min %d", n, r, v, got.CandMin)
					}
					continue
				}
				if got.CandMin != w.CandMin {
					t.Fatalf("n=%d r=%d candidate %d: vote min %d, want exact %d", n, r, v, got.CandMin, w.CandMin)
				}
			}
		}
	}
}
