package primitives

import (
	"fmt"
	"math/bits"

	"powergraph/internal/congest"
)

// Power-graph sparsification (after Maus–Peltonen–Uitto, arXiv 2302.06878,
// and the CONGEST power-graph speedups of Barenboim–Goldenberg,
// arXiv 2305.04358): instead of every near-U node shipping all of its
// incident edges to the leader, each node deterministically selects a
// certificate subset of them that still preserves every ≤ r-hop U-to-U
// path. The selection wants exact U-distances (the one-bit StepNearFlood
// only yields membership in the grown set), so the primitive layers
// dist(·, U) truncated at ⌊r/2⌋ — the deepest distance any endpoint of a
// useful edge can have (on a shortest U-to-U path of length k ≤ r, the node
// at position i sits at distance ≤ min(i, k−i) ≤ ⌊r/2⌋ from U).
//
// The layering is almost free. Phase I's final U-status exchange already
// tells every node whether it is in U and which neighbors are, so labels 0
// and 1 are local knowledge and layer 0 never spends a message — label 0 is
// seeded into each neighbor table instead. On top of that the schedule is
// r-dependent:
//
//	r ≤ 2   silent: every certificate decision resolves from the seeded
//	        1-ball alone (U-members infer unheard neighbors as dist-1).
//	r = 3   the label-1 shell announces once, to non-U neighbors only —
//	        the single round that buys the (1,1) reporter tiebreak and
//	        drops every edge leaving the 1-ball.
//	r = 4   silent again: reporters are still the 1-ball, but edges into
//	        layer 2 are now useful, and shipping each unresolved edge
//	        blind costs exactly one gathered item — strictly cheaper than
//	        any announce-and-reply scheme that would classify it first
//	        (see Certificate; the leader's rebuild dedups).
//	r ≥ 5   the full layered flood: freshly labeled nodes broadcast their
//	        label each slice so receivers adopt the next layer, except the
//	        deepest layer at even r, which answers only the senders it
//	        heard (see StepSparsify.targets).
//
// Every announcement is one ⌈log₂(⌊r/2⌋+1)⌉-bit label per link, far inside
// the O(log n) budget, and the whole exchange takes exactly
// SparsifyRounds(r) communication rounds on any graph — the bounded-round
// guarantee the O(m)-round legacy gather lacked, and (at r ∈ {3, 4})
// cheaper than the legacy gather's edge stream by the margin
// BENCH_sparsify.json prices.
//
// Certificate rule. A near node x (label dx ≤ d, d = ⌊(r-1)/2⌋ the
// reporting radius) keeps its edge {x, y} iff
//
//	dx + dy + 1 ≤ r                         (the edge can lie on a ≤ r-hop
//	                                         U-to-U path; dy is y's label)
//	and y is not also a designated reporter  (when dy ≤ d, only the endpoint
//	                                         with the lexicographically
//	                                         smaller (label, id) reports, so
//	                                         near-near edges ship once)
//
// with two label-free resolutions: a U-member treats an unheard neighbor as
// dist-1 (any neighbor of U is, and U-neighbors were seeded), and at r = 4
// the label-1 shell keeps every unheard neighbor outright — the edge is
// real, so the leader's rebuild can only gain witnesses, never invent
// paths.
//
// Exactness: on a shortest U-to-U path u = x₀, …, x_k = v with k ≤ r, every
// xᵢ has dist(xᵢ, U) ≤ min(i, k−i), so each edge {xᵢ, xᵢ₊₁} satisfies
// dx + dy + 1 ≤ min(i, k−i) + min(i+1, k−i−1) + 1 ≤ k ≤ r, has both labels
// within the ⌊r/2⌋ truncation, and has an endpoint with label ≤ ⌊(k−1)/2⌋
// ≤ d that keeps it (its designated reporter at announcing powers, either
// endpoint under the r = 4 blind keep) — so every certificate-filtered
// gather still contains a witness for every Gʳ[U] edge. Conversely every
// reported pair is a real G-edge, so the leader's rebuild-power-induce tail
// reconstructs Gʳ[U] exactly. Edges whose far endpoint never announced and
// is not blind-kept are dropped: no shortest ≤ r-hop U-to-U path can use
// them, because some witness path with all-near endpoints always exists.

// StepSparsify computes the truncated U-distance layering and the resulting
// certificate edge set at this node. Done on slice SparsifyRounds(r); the
// final slice consumes the deepest labels and queues nothing.
type StepSparsify struct {
	r, d     int
	maxLabel int // ⌊r/2⌋: the deepest layer of the truncation
	announce int // deepest label that announces itself (0 = silent schedule)
	rounds   int // SparsifyRounds(r)
	w        int // bits of one label message
	label    int // dist(this, U) truncated at maxLabel; -1 while unknown
	nbrLabel map[int]int
	// targets, when non-nil, restricts this node's label announcement to the
	// listed neighbors instead of a full broadcast: at even r ≥ 6 the deepest
	// layer is never a reporter and its layer-internal edges are never kept
	// (r/2 + r/2 + 1 > r), so its label only matters to the layer-(r/2 − 1)
	// senders it heard — everyone else would discard the message. And fewer
	// than two such senders means the node cannot be the midpoint of any
	// length-r U-to-U path (the only role the deepest layer plays at even
	// r), so it stays silent entirely and its dead-end star edges never
	// enter any certificate.
	targets []int
	slice   int
}

// NewStepSparsify starts the layered flood; inU and uNbrs come from Phase
// I's final U-status exchange. Distance ≤ 1 is already local knowledge, so
// labels 0 and 1 are seeded for free and U-neighbor entries pre-fill the
// label table — layer 0 never broadcasts at all.
func NewStepSparsify(r int, inU bool, uNbrs []int) *StepSparsify {
	if r < 1 {
		panicCollective(fmt.Sprintf("primitives: NewStepSparsify with power %d < 1", r))
	}
	s := &StepSparsify{r: r, d: (r - 1) / 2, maxLabel: r / 2, rounds: SparsifyRounds(r), label: -1}
	if r == 3 || r >= 5 {
		// r ≤ 2 resolves from the seeded 1-ball; r = 4 blind-keeps instead
		// of classifying (see the schedule table above). Everything else
		// floods to the truncation depth.
		s.announce = s.maxLabel
	}
	s.w = bits.Len(uint(s.maxLabel))
	if s.w < 1 {
		s.w = 1
	}
	switch {
	case inU:
		s.label = 0
	case len(uNbrs) > 0:
		s.label = 1
	}
	if len(uNbrs) > 0 {
		s.nbrLabel = make(map[int]int, len(uNbrs))
		for _, u := range uNbrs {
			s.nbrLabel[u] = 0
		}
	}
	return s
}

// SparsifyRounds returns the exact number of communication rounds
// StepSparsify spends at power r: one broadcast round per announcing label
// layer (none announce at r ∈ {1, 2, 4}, layers 1..⌊r/2⌋ otherwise),
// floored at one round so the stage always spans distinct handler
// activations (the span-determinism requirement of the goroutine engine).
// The Phase-II gather's begin and end marks straddle exactly this many
// rounds; tests assert against it.
func SparsifyRounds(r int) int {
	if r <= 4 {
		return 1
	}
	return r / 2
}

// Step advances one round-slice.
func (s *StepSparsify) Step(nd *congest.Node) bool {
	if s.slice >= 1 {
		adopted := false
		for _, in := range nd.Recv() {
			m, ok := in.Msg.(congest.Int)
			if !ok {
				continue
			}
			if s.nbrLabel == nil {
				s.nbrLabel = make(map[int]int)
			}
			s.nbrLabel[in.From] = int(m.V)
			if s.label < 0 && s.slice+1 <= s.maxLabel {
				// Senders of the previous slice carry label slice, so this
				// node sits at the next layer (beyond ⌊r/2⌋ the layering is
				// truncated and the node stays unlabeled).
				s.label = s.slice + 1
				adopted = true
			}
		}
		if adopted && s.label == s.maxLabel && s.r%2 == 0 {
			// Every label sender of the adoption slice sits one layer up —
			// exactly the nodes this deepest layer must announce itself to.
			for _, in := range nd.Recv() {
				if _, ok := in.Msg.(congest.Int); ok {
					s.targets = append(s.targets, in.From)
				}
			}
		}
	}
	if s.slice == s.rounds {
		return true
	}
	if s.label == s.slice+1 && s.label <= s.announce {
		msg := congest.NewIntWidth(int64(s.label), s.w)
		switch {
		case s.targets != nil:
			// Even-r deepest layer: a midpoint needs two distinct upper-layer
			// neighbors; with fewer this node is a dead end and stays silent.
			if len(s.targets) >= 2 {
				for _, to := range s.targets {
					nd.MustSend(to, msg)
				}
			}
		case s.label == 1:
			// U-members infer unheard neighbors as dist-1 locally (see
			// Certificate), so the label-1 shell announces to non-U
			// neighbors only — seeded zero entries are exactly uNbrs.
			for _, y := range nd.Neighbors() {
				if dy, ok := s.nbrLabel[y]; ok && dy == 0 {
					continue
				}
				nd.MustSend(y, msg)
			}
		default:
			nd.BroadcastNeighbors(msg)
		}
	}
	s.slice++
	return false
}

// Near reports whether this node is a designated reporter (dist(·, U) ≤ d);
// valid once done. It matches the set the legacy one-bit flood grows.
func (s *StepSparsify) Near() bool { return s.label >= 0 && s.label <= s.d }

// Label returns dist(this, U) truncated at ⌊r/2⌋, or -1 when the node is
// farther than every announced label layer; valid once done.
func (s *StepSparsify) Label() int { return s.label }

// Certificate returns the neighbors whose edges this node reports: the
// deterministic certificate subset preserving ≤ r-hop U-to-U reachability.
// Empty unless the node is near. Valid once done.
func (s *StepSparsify) Certificate(nd *congest.Node) []int {
	if !s.Near() {
		return nil
	}
	dx := s.label
	var keep []int
	for _, y := range nd.Neighbors() {
		dy, heard := s.nbrLabel[y]
		if !heard {
			switch {
			case dx == 0:
				// x ∈ U, so every unheard neighbor sits at distance exactly
				// 1 (a U-neighbor would have been seeded) — no announcement
				// needed.
				dy = 1
			case s.r == 4:
				// Blind keep: y is dist ≥ 2 and unclassified (nothing
				// announces at r = 4). If y is a path midpoint the edge is a
				// needed witness; if not, one spurious-but-real G-edge
				// reaches the leader — still exact, and one gathered item is
				// cheaper than the announce-and-reply round trip that would
				// tell them apart.
				keep = append(keep, y)
				continue
			default:
				// y neither announced nor is a U-neighbor: dist(y, U) lies
				// beyond every announcing layer (or y is a silent even-r
				// dead end) — no shortest ≤ r-hop U-to-U path routes
				// through {x, y}.
				continue
			}
		}
		if dx+dy+1 > s.r {
			continue
		}
		if dy < dx || (dy == dx && y < nd.ID()) {
			// y is a designated reporter closer to U (or the id tiebreak
			// winner at equal distance); it reports this edge instead.
			continue
		}
		keep = append(keep, y)
	}
	return keep
}
