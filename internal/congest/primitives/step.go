package primitives

import (
	"fmt"

	"powergraph/internal/congest"
)

// Step-form primitives.
//
// Each Step* type is the explicit state-machine form of the blocking
// primitive of the same name, for use inside congest.StepProgram
// implementations: the per-round logic runs as a plain method call, which
// is what lets the batch engine drive thousand-node networks without any
// per-node goroutine or channel.
//
// The composition contract mirrors how the blocking primitives chain
// between two NextRound calls:
//
//   - Step is called exactly once per round-slice; it first consumes the
//     messages delivered this round that belong to it, then queues this
//     round's sends.
//   - Step returns true in the slice after its final receive, having queued
//     nothing, so the caller must start the next stage within the same
//     slice (the same way blocking code calls the next primitive right
//     after the previous one returns, before the next NextRound).
//
// Every stage consumes the same rounds and sends byte-identical messages as
// its blocking counterpart, so a program assembled from these stages is
// indistinguishable — outputs and statistics — from the blocking handler it
// replaces; TestStepPrimitivesMatchBlocking checks exactly that.

// StepMinIDLeader is the step form of MinIDLeader: n slices of minimum-id
// flooding, done on slice n.
type StepMinIDLeader struct {
	n, w int
	best int64
	r    int
}

// NewStepMinIDLeader starts a leader election at this node.
func NewStepMinIDLeader(nd *congest.Node) *StepMinIDLeader {
	return &StepMinIDLeader{n: nd.N(), w: congest.IDBits(nd.N()), best: int64(nd.ID())}
}

// Step advances one round-slice.
func (s *StepMinIDLeader) Step(nd *congest.Node) bool {
	if s.r > 0 {
		for _, in := range nd.Recv() {
			if v := in.Msg.(congest.Int).V; v < s.best {
				s.best = v
			}
		}
	}
	if s.r == s.n {
		return true
	}
	nd.BroadcastNeighbors(congest.NewIntWidth(s.best, s.w))
	s.r++
	return false
}

// Leader returns the elected minimum id; valid once Step reported done.
func (s *StepMinIDLeader) Leader() int { return int(s.best) }

// StepBFSTree is the step form of BFSTree: n flood slices plus the child
// notification round, done on slice n+1.
type StepBFSTree struct {
	n        int
	t        Tree
	joined   bool
	announce bool
	r        int
}

// NewStepBFSTree starts BFS tree construction rooted at root.
func NewStepBFSTree(nd *congest.Node, root int) *StepBFSTree {
	s := &StepBFSTree{n: nd.N(), t: Tree{Root: root, Parent: -1, Depth: -1}}
	if nd.ID() == root {
		s.t.Depth = 0
		s.joined = true
		s.announce = true
	}
	return s
}

// Step advances one round-slice.
func (s *StepBFSTree) Step(nd *congest.Node) bool {
	if s.r == s.n+1 {
		for _, in := range nd.Recv() {
			s.t.Children = append(s.t.Children, in.From)
		}
		return true
	}
	if s.r >= 1 && !s.joined {
		for _, in := range nd.Recv() {
			// First wave to arrive: sender is at depth r-1, we join at r.
			// Inbox is sorted by sender, so the first is the minimum id.
			s.t.Parent = in.From
			s.t.Depth = s.r
			s.joined = true
			s.announce = true
			break
		}
	}
	if s.r < s.n && s.announce {
		nd.BroadcastNeighbors(congest.Flag{})
		s.announce = false
	}
	if s.r == s.n && s.t.Parent != -1 {
		nd.MustSend(s.t.Parent, congest.Flag{})
	}
	s.r++
	return false
}

// Tree returns this node's local tree view; valid once Step reported done.
func (s *StepBFSTree) Tree() Tree { return s.t }

// StepConvergecastSum is the step form of ConvergecastSum: n slices, done
// on slice n.
type StepConvergecastSum struct {
	n       int
	t       *Tree
	acc     int64
	pending int
	sent    bool
	r       int
}

// NewStepConvergecastSum starts a sum aggregation of value toward the root
// of t.
func NewStepConvergecastSum(nd *congest.Node, t *Tree, value int64) *StepConvergecastSum {
	return &StepConvergecastSum{n: nd.N(), t: t, acc: value, pending: len(t.Children)}
}

// Step advances one round-slice.
func (s *StepConvergecastSum) Step(nd *congest.Node) bool {
	if s.r >= 1 {
		for _, in := range nd.Recv() {
			if m, ok := in.Msg.(congest.Int); ok && contains(s.t.Children, in.From) {
				s.acc += m.V
				s.pending--
			}
		}
	}
	if s.r == s.n {
		return true
	}
	if !s.sent && s.pending == 0 && s.t.Parent != -1 {
		nd.MustSend(s.t.Parent, congest.NewInt(s.acc))
		s.sent = true
	}
	s.r++
	return false
}

// Sum returns the total at the root and 0 elsewhere; valid once done.
func (s *StepConvergecastSum) Sum() int64 {
	if s.t.Parent == -1 {
		return s.acc
	}
	return 0
}

// StepBroadcastFromRoot is the step form of BroadcastFromRoot: n slices,
// done on slice n.
type StepBroadcastFromRoot struct {
	n     int
	t     *Tree
	have  bool
	relay bool
	v     int64
	r     int
}

// NewStepBroadcastFromRoot starts flooding value down from the root of t
// (non-root callers pass anything; their argument is ignored).
func NewStepBroadcastFromRoot(nd *congest.Node, t *Tree, value int64) *StepBroadcastFromRoot {
	s := &StepBroadcastFromRoot{n: nd.N(), t: t}
	if t.Parent == -1 {
		s.have, s.relay, s.v = true, true, value
	}
	return s
}

// Step advances one round-slice.
func (s *StepBroadcastFromRoot) Step(nd *congest.Node) bool {
	if s.r >= 1 && !s.have {
		if m, ok := nd.RecvFrom(s.t.Parent); ok {
			s.v = m.(congest.Int).V
			s.have = true
			s.relay = true
		}
	}
	if s.r == s.n {
		return true
	}
	if s.relay {
		for _, c := range s.t.Children {
			nd.MustSend(c, congest.NewInt(s.v))
		}
		s.relay = false
	}
	s.r++
	return false
}

// Value returns the flooded value; valid once done.
func (s *StepBroadcastFromRoot) Value() int64 { return s.v }

// StepGatherAtRoot is the step form of GatherAtRoot: an internal
// convergecast and broadcast make the total item count common knowledge,
// then total+n pipeline slices stream every item to the root.
type StepGatherAtRoot struct {
	t         *Tree
	items     []congest.Message
	sub       int
	conv      *StepConvergecastSum
	bcast     *StepBroadcastFromRoot
	queue     []congest.Message
	collected []congest.Message
	r, rounds int
}

// NewStepGatherAtRoot starts gathering this node's items at the root of t.
func NewStepGatherAtRoot(nd *congest.Node, t *Tree, items []congest.Message) *StepGatherAtRoot {
	for i, it := range items {
		if it.Bits() > nd.Bandwidth() {
			panicCollective(fmt.Sprintf("primitives: item %d of node %d has %d bits > budget %d",
				i, nd.ID(), it.Bits(), nd.Bandwidth()))
		}
	}
	return &StepGatherAtRoot{t: t, items: items, conv: NewStepConvergecastSum(nd, t, int64(len(items)))}
}

// Step advances one round-slice.
func (s *StepGatherAtRoot) Step(nd *congest.Node) bool {
	for {
		switch s.sub {
		case 0:
			if !s.conv.Step(nd) {
				return false
			}
			s.bcast = NewStepBroadcastFromRoot(nd, s.t, s.conv.Sum())
			s.sub = 1
		case 1:
			if !s.bcast.Step(nd) {
				return false
			}
			s.rounds = int(s.bcast.Value()) + nd.N()
			s.queue = make([]congest.Message, len(s.items))
			copy(s.queue, s.items)
			s.sub = 2
		default:
			if s.r >= 1 {
				for _, in := range nd.Recv() {
					if contains(s.t.Children, in.From) {
						if s.t.Parent == -1 {
							s.collected = append(s.collected, in.Msg)
						} else {
							s.queue = append(s.queue, in.Msg)
						}
					}
				}
			}
			if s.r == s.rounds {
				if s.t.Parent == -1 {
					s.collected = append(s.collected, s.items...)
				}
				return true
			}
			if len(s.queue) > 0 && s.t.Parent != -1 {
				nd.MustSend(s.t.Parent, s.queue[0])
				s.queue = s.queue[1:]
			}
			s.r++
			return false
		}
	}
}

// Collected returns every gathered item at the root (nil elsewhere); valid
// once done.
func (s *StepGatherAtRoot) Collected() []congest.Message {
	if s.t.Parent == -1 {
		return s.collected
	}
	return nil
}

// StepFloodItemsFromRoot is the step form of FloodItemsFromRoot: the item
// count becomes common knowledge, then total+n pipeline slices stream the
// root's items to every node.
type StepFloodItemsFromRoot struct {
	t         *Tree
	sub       int
	conv      *StepConvergecastSum
	bcast     *StepBroadcastFromRoot
	queue     []congest.Message
	got       []congest.Message
	sendIdx   int
	r, rounds int
}

// NewStepFloodItemsFromRoot starts flooding the root's items down the tree;
// non-root callers pass nil items.
func NewStepFloodItemsFromRoot(nd *congest.Node, t *Tree, items []congest.Message) *StepFloodItemsFromRoot {
	s := &StepFloodItemsFromRoot{t: t}
	var total int64
	if t.Parent == -1 {
		total = int64(len(items))
		s.queue = append(s.queue, items...)
		s.got = append(s.got, items...)
	}
	s.conv = NewStepConvergecastSum(nd, t, total)
	return s
}

// Step advances one round-slice.
func (s *StepFloodItemsFromRoot) Step(nd *congest.Node) bool {
	for {
		switch s.sub {
		case 0:
			if !s.conv.Step(nd) {
				return false
			}
			s.bcast = NewStepBroadcastFromRoot(nd, s.t, s.conv.Sum())
			s.sub = 1
		case 1:
			if !s.bcast.Step(nd) {
				return false
			}
			s.rounds = int(s.bcast.Value()) + nd.N()
			s.sub = 2
		default:
			if s.r >= 1 && s.t.Parent != -1 {
				if m, ok := nd.RecvFrom(s.t.Parent); ok {
					s.queue = append(s.queue, m)
					s.got = append(s.got, m)
				}
			}
			if s.r == s.rounds {
				return true
			}
			if s.sendIdx < len(s.queue) {
				for _, c := range s.t.Children {
					nd.MustSend(c, s.queue[s.sendIdx])
				}
				s.sendIdx++
			}
			s.r++
			return false
		}
	}
}

// Items returns the root's items in root order; valid once done.
func (s *StepFloodItemsFromRoot) Items() []congest.Message { return s.got }

// StepHopMax floods a running maximum for a fixed number of hops (every
// node sends every hop). After k hops each node holds the maximum over its
// closed k-hop neighborhood. A positive width fixes the message size;
// width ≤ 0 sends natural-width messages, the wire format of TwoHopMax.
// Done on slice k.
type StepHopMax struct {
	m    int64
	w, k int
	r    int
}

// NewStepHopMax starts a k-hop maximum of value with width-bit messages.
func NewStepHopMax(value int64, width, hops int) *StepHopMax {
	return &StepHopMax{m: value, w: width, k: hops}
}

// NewStepTwoHopMax is the step form of TwoHopMax (2 natural-width flood
// slices, done on slice 2): the "maximum ID in its two hop neighborhood"
// test of Theorem 1's Phase I.
func NewStepTwoHopMax(value int64) *StepHopMax { return NewStepRHopMax(value, 2) }

// NewStepRHopMax is the depth-parametric form of NewStepTwoHopMax: r
// natural-width flood slices leave every node with the maximum over its
// closed r-hop neighborhood (done on slice r); at r = 2 it is
// message-for-message NewStepTwoHopMax. Fixed-width depth-r maxima (the
// MDS ρ̃ selection over 2r hops) use NewStepHopMax instead.
func NewStepRHopMax(value int64, hops int) *StepHopMax {
	if hops < 1 {
		panicCollective(fmt.Sprintf("primitives: NewStepRHopMax with hops %d < 1", hops))
	}
	return &StepHopMax{m: value, k: hops}
}

// Step advances one round-slice.
func (s *StepHopMax) Step(nd *congest.Node) bool {
	if s.r >= 1 {
		for _, in := range nd.Recv() {
			if v := in.Msg.(congest.Int).V; v > s.m {
				s.m = v
			}
		}
	}
	if s.r == s.k {
		return true
	}
	if s.w > 0 {
		nd.BroadcastNeighbors(congest.NewIntWidth(s.m, s.w))
	} else {
		nd.BroadcastNeighbors(congest.NewInt(s.m))
	}
	s.r++
	return false
}

// Max returns the k-hop maximum; valid once done.
func (s *StepHopMax) Max() int64 { return s.m }

// StepMinFlood is one round of minimum aggregation over G-neighbors, the
// estimator building block of Theorem 28's greedy-cover simulation: nodes
// holding a sample (own ≥ 0) broadcast it with a fixed width, and every node
// ends with the minimum of its own value and everything received (-1 when it
// saw nothing). Done on slice 1.
type StepMinFlood struct {
	best  int64
	width int
	r     int
}

// NewStepMinFlood starts a min-flood contributing own (-1 = no sample).
func NewStepMinFlood(own int64, width int) *StepMinFlood {
	return &StepMinFlood{best: own, width: width}
}

// Step advances one round-slice.
func (s *StepMinFlood) Step(nd *congest.Node) bool {
	if s.r == 1 {
		for _, in := range nd.Recv() {
			m, ok := in.Msg.(congest.Int)
			if !ok {
				continue
			}
			if s.best < 0 || m.V < s.best {
				s.best = m.V
			}
		}
		return true
	}
	if s.best >= 0 {
		nd.BroadcastNeighbors(congest.NewIntWidth(s.best, s.width))
	}
	s.r = 1
	return false
}

// Min returns the aggregated minimum (-1 if nothing was seen); valid once
// done.
func (s *StepMinFlood) Min() int64 { return s.best }

// RankID is StepRankFlood's message: a (rank, id) pair with explicit widths.
type RankID struct {
	Rank, ID       int64
	WidthR, WidthI int
}

// Bits returns the total declared width.
func (m RankID) Bits() int { return m.WidthR + m.WidthI }

// StepRankFlood is one round of lexicographic (rank, id) minimum aggregation
// over G-neighbors; rank < 0 means "no value". It also records which
// neighbors sent a value (the first hop of Theorem 28's voting uses this to
// detect neighboring candidates). Done on slice 1.
type StepRankFlood struct {
	rank, id int64
	wR, wI   int
	senders  map[int]bool
	bestFrom int
	r        int
}

// NewStepRankFlood starts a rank-flood contributing (rank, id).
func NewStepRankFlood(rank, id int64, rankW, idW int) *StepRankFlood {
	return &StepRankFlood{rank: rank, id: id, wR: rankW, wI: idW, bestFrom: -1}
}

// Step advances one round-slice.
func (s *StepRankFlood) Step(nd *congest.Node) bool {
	if s.r == 1 {
		s.senders = make(map[int]bool)
		for _, in := range nd.Recv() {
			m, ok := in.Msg.(RankID)
			if !ok {
				continue
			}
			s.senders[in.From] = true
			if s.rank < 0 || m.Rank < s.rank || (m.Rank == s.rank && m.ID < s.id) {
				s.rank, s.id = m.Rank, m.ID
				s.bestFrom = in.From
			}
		}
		if s.rank < 0 {
			s.id = -1
		}
		return true
	}
	if s.rank >= 0 {
		nd.BroadcastNeighbors(RankID{Rank: s.rank, ID: s.id, WidthR: s.wR, WidthI: s.wI})
	}
	s.r = 1
	return false
}

// Best returns the lexicographic minimum (rank, id); id is -1 when nothing
// was seen. Valid once done.
func (s *StepRankFlood) Best() (rank, id int64) { return s.rank, s.id }

// Senders reports which neighbors sent a value this flood; valid once done.
func (s *StepRankFlood) Senders() map[int]bool { return s.senders }

// BestFrom returns the neighbor whose message set the final best this flood,
// or -1 when the flood left the best unchanged. Chained rank floods use it
// to record adoption parents — the per-candidate in-trees the exact depth-r
// vote estimator routes along (see NewStepCandidateMinFloodRoutes). Valid
// once done.
func (s *StepRankFlood) BestFrom() int { return s.bestFrom }

// CandMin is StepCandidateMinFlood's message: a candidate id plus a
// quantized sample.
type CandMin struct {
	Cand, Q        int64
	WidthC, WidthQ int
}

// Bits returns the total declared width.
func (m CandMin) Bits() int { return m.WidthC + m.WidthQ }

// CandRoute records one adoption event of the chained rank floods: this
// node first held candidate Cand as its running best after Lvl flood stages,
// having heard it from neighbor From (-1 at the candidate itself, which
// holds its own id at Lvl 0). Because a node's running best only ever
// improves, it adopts at most one new candidate per stage, so the Lvl
// values of a node's routes are pairwise distinct — the property the exact
// vote estimator's relay schedule is built on.
type CandRoute struct {
	Cand, From, Lvl int
}

// StepCandidateMinFlood is the r-round per-candidate minimum flood of
// Theorem 28's vote estimation (the congestion-avoiding trick of
// Section 6.1), generalized to depth-r collection for the Gʳ pipeline:
// voters hold a sample tagged with their chosen candidate, relays forward
// per-candidate running minima toward the candidate, and candidates read
// their own minimum. Done on slice hops+1, estimates exact at every depth.
//
// At hops ≤ 2 (the paper's G² case) the flood is byte-identical to the
// original two-round trick: voters broadcast, the single relay slice
// forwards each neighboring candidate its minimum, candidates read. For
// hops ≥ 3 broadcasting every candidate's minimum would exceed one message
// per link per round, so the flood instead routes along the adoption
// in-trees of the preceding chained rank floods (CandRoute): a node that
// first adopted candidate c after lvl stages sends its accumulated minimum
// for c to its adoption parent exactly in slice hops − lvl. Adoption
// parents adopted strictly earlier (lvl' < lvl), hence send strictly later,
// so every child minimum is merged before the parent forwards — and since a
// node's route levels are pairwise distinct, it sends at most one message
// per slice: zero congestion, every sample delivered, the Theorem-28
// estimate exact for every supported r (the conservative hops ≥ 3 spread
// this schedule replaces survives only in git history).
type StepCandidateMinFlood struct {
	voteFor   int
	own       int64
	candNbrs  map[int]bool
	byLvl     map[int]CandRoute
	candidate bool
	wC, wQ    int
	hops      int
	perCand   map[int64]int64
	best      int64
	r         int
}

// NewStepCandidateMinFlood starts one two-hop vote-estimation flood (the
// paper's G² case): voteFor is the candidate this node contributes to
// (-1 = none), own its quantized sample (-1 = none), candNbrs the
// G-neighbors known to be candidates, and candidate whether this node
// collects a minimum for itself.
func NewStepCandidateMinFlood(voteFor int, own int64, candNbrs map[int]bool, candidate bool, candW, sampleW int) *StepCandidateMinFlood {
	return NewStepCandidateMinFloodR(voteFor, own, candNbrs, candidate, candW, sampleW, 2)
}

// NewStepCandidateMinFloodR is the depth-r form of NewStepCandidateMinFlood
// for hops ∈ {1, 2}, where voter broadcasts reach every relevant relay and
// the schedule needs no routing state. Deeper floods must supply adoption
// routes via NewStepCandidateMinFloodRoutes — the broadcast schedule cannot
// carry every candidate's minimum across ≥ 3 hops within the bandwidth
// budget, and the conservative fallback it used to degrade to is retired.
func NewStepCandidateMinFloodR(voteFor int, own int64, candNbrs map[int]bool, candidate bool, candW, sampleW, hops int) *StepCandidateMinFlood {
	if hops < 1 {
		panicCollective(fmt.Sprintf("primitives: NewStepCandidateMinFloodR with hops %d < 1", hops))
	}
	if hops > 2 {
		panicCollective(fmt.Sprintf("primitives: NewStepCandidateMinFloodR with hops %d > 2 (use NewStepCandidateMinFloodRoutes)", hops))
	}
	return &StepCandidateMinFlood{
		voteFor: voteFor, own: own, candNbrs: candNbrs, candidate: candidate,
		wC: candW, wQ: sampleW, hops: hops, best: -1,
	}
}

// NewStepCandidateMinFloodRoutes starts the routed exact flood for any
// depth hops ≥ 1: routes are this node's adoption events from the hops
// chained rank floods that selected voteFor (one per candidate ever held,
// levels pairwise distinct in 0..hops, From = -1 exactly at level 0). A
// voter must hold a route for its own voteFor — it adopted that candidate
// by definition — so a missing route is a protocol bug, not data.
func NewStepCandidateMinFloodRoutes(voteFor int, own int64, routes []CandRoute, candidate bool, candW, sampleW, hops int) *StepCandidateMinFlood {
	if hops < 1 {
		panicCollective(fmt.Sprintf("primitives: NewStepCandidateMinFloodRoutes with hops %d < 1", hops))
	}
	byLvl := make(map[int]CandRoute, len(routes))
	voteRouted := voteFor < 0 || own < 0
	for _, rt := range routes {
		if rt.Lvl < 0 || rt.Lvl > hops {
			panicCollective(fmt.Sprintf("primitives: candidate route level %d outside 0..%d", rt.Lvl, hops))
		}
		if (rt.From < 0) != (rt.Lvl == 0) {
			panicCollective(fmt.Sprintf("primitives: candidate route %+v: From must be -1 exactly at level 0", rt))
		}
		if _, dup := byLvl[rt.Lvl]; dup {
			panicCollective(fmt.Sprintf("primitives: duplicate candidate route level %d", rt.Lvl))
		}
		byLvl[rt.Lvl] = rt
		if rt.Cand == voteFor {
			voteRouted = true
		}
	}
	if !voteRouted {
		panicCollective(fmt.Sprintf("primitives: voter for candidate %d has no adoption route to it", voteFor))
	}
	return &StepCandidateMinFlood{
		voteFor: voteFor, own: own, byLvl: byLvl, candidate: candidate,
		wC: candW, wQ: sampleW, hops: hops, best: -1,
	}
}

// Step advances one round-slice.
func (s *StepCandidateMinFlood) Step(nd *congest.Node) bool {
	if s.byLvl != nil {
		return s.stepRouted(nd)
	}
	switch {
	case s.r == 0:
		s.perCand = map[int64]int64{}
		if s.own >= 0 {
			s.perCand[int64(s.voteFor)] = s.own
			nd.BroadcastNeighbors(CandMin{Cand: int64(s.voteFor), Q: s.own, WidthC: s.wC, WidthQ: s.wQ})
		}
	case s.r < s.hops:
		s.mergeRecv(nd)
		for _, u := range nd.Neighbors() {
			if !s.candNbrs[u] {
				continue
			}
			if q, ok := s.perCand[int64(u)]; ok {
				nd.MustSend(u, CandMin{Cand: int64(u), Q: q, WidthC: s.wC, WidthQ: s.wQ})
			}
		}
	default:
		if s.candidate {
			if q, ok := s.perCand[int64(nd.ID())]; ok {
				s.best = q
			}
			for _, in := range nd.Recv() {
				m, ok := in.Msg.(CandMin)
				if !ok || m.Cand != int64(nd.ID()) {
					continue
				}
				if s.best < 0 || m.Q < s.best {
					s.best = m.Q
				}
			}
		}
		return true
	}
	s.r++
	return false
}

// stepRouted advances the routed exact schedule: slice τ < hops sends the
// accumulated minimum of the level-(hops−τ) route (if any) to its adoption
// parent; the closing slice folds the last deliveries and lets candidates
// read their own minimum.
func (s *StepCandidateMinFlood) stepRouted(nd *congest.Node) bool {
	if s.r == 0 {
		s.perCand = map[int64]int64{}
		if s.own >= 0 {
			s.perCand[int64(s.voteFor)] = s.own
		}
	} else {
		s.mergeRecv(nd)
	}
	if s.r == s.hops {
		if s.candidate {
			if q, ok := s.perCand[int64(nd.ID())]; ok {
				s.best = q
			}
		}
		return true
	}
	if rt, ok := s.byLvl[s.hops-s.r]; ok && rt.From >= 0 {
		if q, have := s.perCand[int64(rt.Cand)]; have {
			nd.MustSend(rt.From, CandMin{Cand: int64(rt.Cand), Q: q, WidthC: s.wC, WidthQ: s.wQ})
		}
	}
	s.r++
	return false
}

// mergeRecv folds this slice's deliveries into the per-candidate minima.
func (s *StepCandidateMinFlood) mergeRecv(nd *congest.Node) {
	for _, in := range nd.Recv() {
		m, ok := in.Msg.(CandMin)
		if !ok {
			continue
		}
		if cur, seen := s.perCand[m.Cand]; !seen || m.Q < cur {
			s.perCand[m.Cand] = m.Q
		}
	}
}

// Min returns this candidate's vote minimum (-1 when it saw none, or when
// the node is not a candidate); valid once done.
func (s *StepCandidateMinFlood) Min() int64 { return s.best }

// StepStatusExchange broadcasts a one-bit status to every G-neighbor and
// collects the neighbors that reported 1 (the R/U-status exchanges of
// Algorithm 1 and its variants). Done on slice 1.
type StepStatusExchange struct {
	status bool
	on     []int
	r      int
}

// NewStepStatusExchange starts a status exchange reporting status.
func NewStepStatusExchange(status bool) *StepStatusExchange {
	return &StepStatusExchange{status: status}
}

// Step advances one round-slice.
func (s *StepStatusExchange) Step(nd *congest.Node) bool {
	if s.r == 1 {
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				s.on = append(s.on, in.From)
			}
		}
		return true
	}
	nd.BroadcastNeighbors(congest.NewIntWidth(bit(s.status), 1))
	s.r = 1
	return false
}

// On returns the neighbors that reported 1, in id order; valid once done.
func (s *StepStatusExchange) On() []int { return s.on }

// StepNearFlood grows a vertex set by a fixed number of G-hops: every slice,
// marked nodes broadcast a one-bit flag and receivers become marked, so after
// hops slices a node is marked iff it started marked or is within hops
// G-hops of a marked node. The Gʳ Phase II uses it to find the nodes within
// ⌊(r-1)/2⌋ hops of U, whose incident edges suffice to reconstruct Gʳ[U] at
// the leader. Done on slice hops (hops = 0 is a no-op finishing immediately,
// consuming and sending nothing).
type StepNearFlood struct {
	near bool
	hops int
	r    int
}

// NewStepNearFlood starts the flood; near marks this node as initially in
// the set.
func NewStepNearFlood(near bool, hops int) *StepNearFlood {
	if hops < 0 {
		panicCollective(fmt.Sprintf("primitives: NewStepNearFlood with hops %d < 0", hops))
	}
	return &StepNearFlood{near: near, hops: hops}
}

// Step advances one round-slice.
func (s *StepNearFlood) Step(nd *congest.Node) bool {
	if s.r >= 1 && len(nd.Recv()) > 0 {
		s.near = true
	}
	if s.r == s.hops {
		return true
	}
	if s.near {
		nd.BroadcastNeighbors(congest.Flag{})
	}
	s.r++
	return false
}

// Near reports whether this node ended up in the grown set; valid once done.
func (s *StepNearFlood) Near() bool { return s.near }

// VotingConfig parameterizes StepVotingPhase.
type VotingConfig struct {
	// Tau is the candidacy threshold: a node is a candidate while its live
	// degree exceeds Tau (and it has not yet succeeded).
	Tau int
	// RandomIters is the number of iterations drawing random ranks before
	// ranks deterministically become node ids (the unconditional-termination
	// switch of Theorem 11 / Section 3.3).
	RandomIters int
	// MaxIters is the fixed iteration count of the CONGEST variant (which
	// has no cheap global OR); ignored when Clique is set.
	MaxIters int
	// Clique inserts the CONGESTED CLIQUE's global-OR round after each
	// status exchange and terminates as soon as no candidate remains.
	Clique bool
	// RankWidth and IDWidth are the bit widths of rank and vote messages.
	RankWidth int
	IDWidth   int
}

// StepVotingPhase is the step form of the randomized-rounding Phase I shared
// by Section 3.3 (plain CONGEST) and Theorem 11 (CONGESTED CLIQUE): each
// iteration exchanges live status, lets candidates announce random ranks,
// has live vertices vote for their highest-ranked incident candidate, and
// moves the neighborhoods of sufficiently-voted candidates into the cover.
// The clique variant spends one extra all-to-all round per iteration on the
// global "any candidate left?" OR and stops on it; the CONGEST variant runs
// a fixed iteration schedule instead. Done in the slice that collects the
// final iteration's join flags (queuing nothing, so the next stage starts in
// that same slice).
type StepVotingPhase struct {
	cfg     VotingConfig
	rankMax int64

	it, sub             int
	inR, inS, succeeded bool
	dR                  int
	candidate           bool
	voteFor             int
}

// NewStepVotingPhase starts the voting phase at this node.
func NewStepVotingPhase(cfg VotingConfig) *StepVotingPhase {
	return &StepVotingPhase{cfg: cfg, rankMax: int64(1) << uint(cfg.RankWidth), inR: true}
}

// Step advances one round-slice.
func (s *StepVotingPhase) Step(nd *congest.Node) bool {
	switch s.sub {
	case 0: // iteration start: collect joins, then exchange live status
		if s.it > 0 && len(nd.Recv()) > 0 {
			s.inS, s.inR = true, false
		}
		if !s.cfg.Clique && s.it == s.cfg.MaxIters {
			nd.SpanEnd("phase1", 0) // no-op when MaxIters == 0
			return true
		}
		if s.it == 0 {
			nd.SpanBegin("phase1", 0)
		}
		nd.SpanBegin("phase1-iter", s.it)
		nd.BroadcastNeighbors(congest.NewIntWidth(bit(s.inR), 1))
		s.sub = 1
	case 1: // count live neighbors; clique: start the global OR
		s.dR = 0
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				s.dR++
			}
		}
		s.candidate = !s.succeeded && s.dR > s.cfg.Tau
		if s.cfg.Clique {
			nd.Broadcast(congest.NewIntWidth(bit(s.candidate), 1))
			s.sub = 2
		} else {
			s.sendRank(nd)
			s.sub = 3
		}
	case 2: // clique only: read the OR; terminate, or announce ranks
		any := s.candidate
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				any = true
			}
		}
		if !any {
			nd.SpanEnd("phase1-iter", s.it)
			nd.SpanEnd("phase1", 0)
			return true
		}
		s.sendRank(nd)
		s.sub = 3
	case 3: // live vertices vote for the best incident rank
		s.voteFor = -1
		var bestRank int64 = -1
		if s.inR {
			for _, in := range nd.Recv() {
				m, ok := in.Msg.(congest.Int)
				if !ok {
					continue
				}
				// Highest rank wins; ties break toward the higher id
				// (deterministic, consistent at every voter).
				if m.V > bestRank || (m.V == bestRank && in.From > s.voteFor) {
					bestRank = m.V
					s.voteFor = in.From
				}
			}
		}
		if s.voteFor != -1 {
			nd.BroadcastNeighbors(congest.NewIntWidth(int64(s.voteFor), s.cfg.IDWidth))
		}
		s.sub = 4
	default: // count votes; successful candidates retire their neighborhoods
		votes := 0
		for _, in := range nd.Recv() {
			if m, ok := in.Msg.(congest.Int); ok && int(m.V) == nd.ID() {
				votes++
			}
		}
		if s.candidate && votes*8 >= s.dR {
			nd.BroadcastNeighbors(congest.Flag{})
			s.succeeded = true
		}
		nd.SpanEnd("phase1-iter", s.it)
		s.it++
		s.sub = 0
	}
	return false
}

// sendRank announces this candidate's rank: random below the w.h.p. horizon,
// then deterministically the node id.
func (s *StepVotingPhase) sendRank(nd *congest.Node) {
	if !s.candidate {
		return
	}
	var rank int64
	if s.it < s.cfg.RandomIters {
		rank = nd.Rand().Int63n(s.rankMax)
	} else {
		rank = int64(nd.ID())
	}
	nd.BroadcastNeighbors(congest.NewIntWidth(rank, s.cfg.RankWidth))
}

// InR reports whether this node is still live (in R); valid once done.
func (s *StepVotingPhase) InR() bool { return s.inR }

// InS reports whether this node was moved into the cover during the phase;
// valid once done.
func (s *StepVotingPhase) InS() bool { return s.inS }

// PayeeSelector chooses, from this node's neighbor weights and live
// statuses, the neighbors a selected center would pay into the cover this
// iteration (the ripe weight classes of Theorem 7). An empty result means
// the node is not a candidate. The selector must be a pure function of its
// arguments — it is consulted once per iteration at every node.
type PayeeSelector func(nd *congest.Node, nbrWeight map[int]int64, inRNbr map[int]bool) []int

// StepWeightedLocalRatio is the step form of Theorem 7's Phase I, the
// weighted local-ratio payment loop: after one round learning neighbor
// weights, each of the fixed lockstep iterations exchanges live status,
// breaks symmetry between candidates with a 2-hop maximum, and lets each
// selected center pay its chosen neighbors (the selector's ripe-class
// members) into the cover; a final status exchange then collects the live
// neighborhood U. A node starts live iff its own weight is positive
// (zero-weight vertices are pre-covered, Section 3.2). Done in the slice
// that collects the final U-status exchange.
type StepWeightedLocalRatio struct {
	iterations, wBits int
	selector          PayeeSelector

	sub, it   int
	inR, inS  bool
	nbrWeight map[int]int64
	inRNbr    map[int]bool
	ripe      []int
	hop       *StepHopMax
	uNbrs     []int
}

// Phase states of StepWeightedLocalRatio.
const (
	wlrWeights = iota // initial weight broadcast sent, awaiting delivery
	wlrStatus         // status read + candidate selection + 2-hop max start
	wlrHop            // 2-hop max in flight, payments on its final slice
	wlrJoin           // join flags read + next status broadcast
	wlrFinal          // final U-status read
)

// NewStepWeightedLocalRatio starts the weighted Phase I at this node; wBits
// is the fixed width of a weight report.
func NewStepWeightedLocalRatio(nd *congest.Node, iterations, wBits int, selector PayeeSelector) *StepWeightedLocalRatio {
	inR := nd.Weight() > 0
	return &StepWeightedLocalRatio{
		iterations: iterations, wBits: wBits, selector: selector,
		inR: inR, inS: !inR,
	}
}

// Step advances one round-slice.
func (s *StepWeightedLocalRatio) Step(nd *congest.Node) bool {
	switch s.sub {
	case wlrWeights:
		nd.SpanBegin("phase1", 0)
		nd.BroadcastNeighbors(congest.NewIntWidth(nd.Weight(), s.wBits))
		// The weight read happens at the top of the next slice, which also
		// broadcasts iteration 0's status — model it as iteration -1's join
		// slice so the shared wlrJoin path handles both.
		s.sub = wlrJoin
		s.it = -1
	case wlrJoin:
		if s.it < 0 {
			s.nbrWeight = make(map[int]int64, nd.Degree())
			for _, in := range nd.Recv() {
				s.nbrWeight[in.From] = in.Msg.(congest.Int).V
			}
			s.inRNbr = make(map[int]bool, nd.Degree())
			for _, u := range nd.Neighbors() {
				s.inRNbr[u] = s.nbrWeight[u] > 0
			}
		} else if len(nd.Recv()) > 0 {
			s.inS, s.inR = true, false
		}
		if s.it >= 0 {
			nd.SpanEnd("phase1-iter", s.it)
		}
		s.it++
		nd.BroadcastNeighbors(congest.NewIntWidth(bit(s.inR), 1))
		if s.it == s.iterations {
			s.sub = wlrFinal
		} else {
			nd.SpanBegin("phase1-iter", s.it)
			s.sub = wlrStatus
		}
	case wlrStatus:
		for _, in := range nd.Recv() {
			s.inRNbr[in.From] = in.Msg.(congest.Int).V == 1
		}
		s.ripe = s.selector(nd, s.nbrWeight, s.inRNbr)
		val := int64(0)
		if len(s.ripe) > 0 {
			val = int64(nd.ID()) + 1
		}
		s.hop = NewStepTwoHopMax(val)
		s.hop.Step(nd)
		s.sub = wlrHop
	case wlrHop:
		if !s.hop.Step(nd) {
			return false
		}
		if len(s.ripe) > 0 && s.hop.Max() == int64(nd.ID())+1 {
			for _, u := range s.ripe {
				nd.MustSend(u, congest.Flag{})
			}
		}
		s.sub = wlrJoin
	default: // wlrFinal
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				s.uNbrs = append(s.uNbrs, in.From)
			}
		}
		nd.SpanEnd("phase1", 0)
		return true
	}
	return false
}

// InR reports whether this node is still live; valid once done.
func (s *StepWeightedLocalRatio) InR() bool { return s.inR }

// InS reports whether this node was paid into the cover during Phase I;
// valid once done.
func (s *StepWeightedLocalRatio) InS() bool { return s.inS }

// UNbrs returns the neighbors still live after Phase I (the F-edge
// endpoints of Lemma 8), in id order; valid once done.
func (s *StepWeightedLocalRatio) UNbrs() []int { return s.uNbrs }

// NbrWeight returns the learned neighbor weights; valid once the first two
// slices completed (it is what the PayeeSelector receives).
func (s *StepWeightedLocalRatio) NbrWeight() map[int]int64 { return s.nbrWeight }

// StepLeaderPipeline chains the CONGEST Phase II of Theorem 1 and its
// variants: elect the minimum-id leader, build its BFS tree, pipeline every
// node's items to the leader, let the leader turn the gathered items into an
// answer (the solve callback, invoked only at the leader), and flood that
// answer back to every node. Done when the flood finishes.
type StepLeaderPipeline struct {
	items []congest.Message
	solve func(gathered []congest.Message) []congest.Message

	sub      int
	started  bool
	leader   *StepMinIDLeader
	bfs      *StepBFSTree
	tree     Tree
	gather   *StepGatherAtRoot
	flood    *StepFloodItemsFromRoot
	leaderID int
}

// NewStepLeaderPipeline starts the pipeline: items are this node's
// contributions to the leader gather; solve runs once at the leader over
// everything gathered and returns the items to flood back.
func NewStepLeaderPipeline(nd *congest.Node, items []congest.Message, solve func(gathered []congest.Message) []congest.Message) *StepLeaderPipeline {
	return &StepLeaderPipeline{items: items, solve: solve, leader: NewStepMinIDLeader(nd)}
}

// Step advances one round-slice.
func (s *StepLeaderPipeline) Step(nd *congest.Node) bool {
	for {
		switch s.sub {
		case 0:
			if !s.started {
				s.started = true
				nd.SpanBegin("leader-elect", 0)
			}
			if !s.leader.Step(nd) {
				return false
			}
			nd.SpanEnd("leader-elect", 0)
			s.leaderID = s.leader.Leader()
			s.bfs = NewStepBFSTree(nd, s.leaderID)
			nd.SpanBegin("bfs-tree", 0)
			s.sub = 1
		case 1:
			if !s.bfs.Step(nd) {
				return false
			}
			nd.SpanEnd("bfs-tree", 0)
			s.tree = s.bfs.Tree()
			s.gather = NewStepGatherAtRoot(nd, &s.tree, s.items)
			nd.SpanBegin("phase2-gather", 0)
			s.sub = 2
		case 2:
			if !s.gather.Step(nd) {
				return false
			}
			nd.SpanEnd("phase2-gather", 0)
			var down []congest.Message
			if nd.ID() == s.leaderID {
				nd.SpanBegin("leader-solve", 0)
				down = s.solve(s.gather.Collected())
				nd.SpanEnd("leader-solve", 0)
			}
			s.flood = NewStepFloodItemsFromRoot(nd, &s.tree, down)
			nd.SpanBegin("phase2-flood", 0)
			s.sub = 3
		default:
			done := s.flood.Step(nd)
			if done {
				nd.SpanEnd("phase2-flood", 0)
			}
			return done
		}
	}
}

// Leader returns the elected leader id; valid once the election finished.
func (s *StepLeaderPipeline) Leader() int { return s.leaderID }

// Items returns the flooded answer in leader order; valid once done.
func (s *StepLeaderPipeline) Items() []congest.Message { return s.flood.Items() }

// StepCliqueLeader is the CONGESTED CLIQUE's one-round leader election
// (Lemma 9): everyone flags everyone, the minimum id wins. Done on slice 1.
type StepCliqueLeader struct {
	leader int
	r      int
}

// NewStepCliqueLeader starts the election at this node.
func NewStepCliqueLeader(nd *congest.Node) *StepCliqueLeader {
	return &StepCliqueLeader{leader: nd.ID()}
}

// Step advances one round-slice.
func (s *StepCliqueLeader) Step(nd *congest.Node) bool {
	if s.r == 1 {
		for _, in := range nd.Recv() {
			if in.From < s.leader {
				s.leader = in.From
			}
		}
		return true
	}
	nd.Broadcast(congest.Flag{})
	s.r = 1
	return false
}

// Leader returns the elected minimum id; valid once done.
func (s *StepCliqueLeader) Leader() int { return s.leader }

// StepDirectGather is Lemma 9's parallel direct shipping over the clique's
// all-to-all links: in shipping slice j every non-root node sends its j-th
// item straight to the root. maxItems must upper-bound every node's item
// count and be common knowledge. The root ends with every item (its own
// appended last); done on slice maxItems.
type StepDirectGather struct {
	root, maxItems int
	items          []congest.Message
	collected      []congest.Message
	r              int
}

// NewStepDirectGather starts shipping this node's items to root.
func NewStepDirectGather(root int, items []congest.Message, maxItems int) *StepDirectGather {
	return &StepDirectGather{root: root, items: items, maxItems: maxItems}
}

// Step advances one round-slice.
func (s *StepDirectGather) Step(nd *congest.Node) bool {
	if s.r >= 1 && nd.ID() == s.root {
		for _, in := range nd.Recv() {
			s.collected = append(s.collected, in.Msg)
		}
	}
	if s.r == s.maxItems {
		if nd.ID() == s.root {
			s.collected = append(s.collected, s.items...)
		}
		return true
	}
	if s.r < len(s.items) && nd.ID() != s.root {
		nd.MustSend(s.root, s.items[s.r])
	}
	s.r++
	return false
}

// Collected returns every gathered item at the root (nil elsewhere); valid
// once done.
func (s *StepDirectGather) Collected() []congest.Message {
	return s.collected
}

func bit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
