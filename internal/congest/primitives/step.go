package primitives

import (
	"fmt"

	"powergraph/internal/congest"
)

// Step-form primitives.
//
// Each Step* type is the explicit state-machine form of the blocking
// primitive of the same name, for use inside congest.StepProgram
// implementations: the per-round logic runs as a plain method call, which
// is what lets the batch engine drive thousand-node networks without any
// per-node goroutine or channel.
//
// The composition contract mirrors how the blocking primitives chain
// between two NextRound calls:
//
//   - Step is called exactly once per round-slice; it first consumes the
//     messages delivered this round that belong to it, then queues this
//     round's sends.
//   - Step returns true in the slice after its final receive, having queued
//     nothing, so the caller must start the next stage within the same
//     slice (the same way blocking code calls the next primitive right
//     after the previous one returns, before the next NextRound).
//
// Every stage consumes the same rounds and sends byte-identical messages as
// its blocking counterpart, so a program assembled from these stages is
// indistinguishable — outputs and statistics — from the blocking handler it
// replaces; TestStepPrimitivesMatchBlocking checks exactly that.

// StepMinIDLeader is the step form of MinIDLeader: n slices of minimum-id
// flooding, done on slice n.
type StepMinIDLeader struct {
	n, w int
	best int64
	r    int
}

// NewStepMinIDLeader starts a leader election at this node.
func NewStepMinIDLeader(nd *congest.Node) *StepMinIDLeader {
	return &StepMinIDLeader{n: nd.N(), w: congest.IDBits(nd.N()), best: int64(nd.ID())}
}

// Step advances one round-slice.
func (s *StepMinIDLeader) Step(nd *congest.Node) bool {
	if s.r > 0 {
		for _, in := range nd.Recv() {
			if v := in.Msg.(congest.Int).V; v < s.best {
				s.best = v
			}
		}
	}
	if s.r == s.n {
		return true
	}
	nd.BroadcastNeighbors(congest.NewIntWidth(s.best, s.w))
	s.r++
	return false
}

// Leader returns the elected minimum id; valid once Step reported done.
func (s *StepMinIDLeader) Leader() int { return int(s.best) }

// StepBFSTree is the step form of BFSTree: n flood slices plus the child
// notification round, done on slice n+1.
type StepBFSTree struct {
	n        int
	t        Tree
	joined   bool
	announce bool
	r        int
}

// NewStepBFSTree starts BFS tree construction rooted at root.
func NewStepBFSTree(nd *congest.Node, root int) *StepBFSTree {
	s := &StepBFSTree{n: nd.N(), t: Tree{Root: root, Parent: -1, Depth: -1}}
	if nd.ID() == root {
		s.t.Depth = 0
		s.joined = true
		s.announce = true
	}
	return s
}

// Step advances one round-slice.
func (s *StepBFSTree) Step(nd *congest.Node) bool {
	if s.r == s.n+1 {
		for _, in := range nd.Recv() {
			s.t.Children = append(s.t.Children, in.From)
		}
		return true
	}
	if s.r >= 1 && !s.joined {
		for _, in := range nd.Recv() {
			// First wave to arrive: sender is at depth r-1, we join at r.
			// Inbox is sorted by sender, so the first is the minimum id.
			s.t.Parent = in.From
			s.t.Depth = s.r
			s.joined = true
			s.announce = true
			break
		}
	}
	if s.r < s.n && s.announce {
		nd.BroadcastNeighbors(congest.Flag{})
		s.announce = false
	}
	if s.r == s.n && s.t.Parent != -1 {
		nd.MustSend(s.t.Parent, congest.Flag{})
	}
	s.r++
	return false
}

// Tree returns this node's local tree view; valid once Step reported done.
func (s *StepBFSTree) Tree() Tree { return s.t }

// StepConvergecastSum is the step form of ConvergecastSum: n slices, done
// on slice n.
type StepConvergecastSum struct {
	n       int
	t       *Tree
	acc     int64
	pending int
	sent    bool
	r       int
}

// NewStepConvergecastSum starts a sum aggregation of value toward the root
// of t.
func NewStepConvergecastSum(nd *congest.Node, t *Tree, value int64) *StepConvergecastSum {
	return &StepConvergecastSum{n: nd.N(), t: t, acc: value, pending: len(t.Children)}
}

// Step advances one round-slice.
func (s *StepConvergecastSum) Step(nd *congest.Node) bool {
	if s.r >= 1 {
		for _, in := range nd.Recv() {
			if m, ok := in.Msg.(congest.Int); ok && contains(s.t.Children, in.From) {
				s.acc += m.V
				s.pending--
			}
		}
	}
	if s.r == s.n {
		return true
	}
	if !s.sent && s.pending == 0 && s.t.Parent != -1 {
		nd.MustSend(s.t.Parent, congest.NewInt(s.acc))
		s.sent = true
	}
	s.r++
	return false
}

// Sum returns the total at the root and 0 elsewhere; valid once done.
func (s *StepConvergecastSum) Sum() int64 {
	if s.t.Parent == -1 {
		return s.acc
	}
	return 0
}

// StepBroadcastFromRoot is the step form of BroadcastFromRoot: n slices,
// done on slice n.
type StepBroadcastFromRoot struct {
	n     int
	t     *Tree
	have  bool
	relay bool
	v     int64
	r     int
}

// NewStepBroadcastFromRoot starts flooding value down from the root of t
// (non-root callers pass anything; their argument is ignored).
func NewStepBroadcastFromRoot(nd *congest.Node, t *Tree, value int64) *StepBroadcastFromRoot {
	s := &StepBroadcastFromRoot{n: nd.N(), t: t}
	if t.Parent == -1 {
		s.have, s.relay, s.v = true, true, value
	}
	return s
}

// Step advances one round-slice.
func (s *StepBroadcastFromRoot) Step(nd *congest.Node) bool {
	if s.r >= 1 && !s.have {
		if m, ok := nd.RecvFrom(s.t.Parent); ok {
			s.v = m.(congest.Int).V
			s.have = true
			s.relay = true
		}
	}
	if s.r == s.n {
		return true
	}
	if s.relay {
		for _, c := range s.t.Children {
			nd.MustSend(c, congest.NewInt(s.v))
		}
		s.relay = false
	}
	s.r++
	return false
}

// Value returns the flooded value; valid once done.
func (s *StepBroadcastFromRoot) Value() int64 { return s.v }

// StepGatherAtRoot is the step form of GatherAtRoot: an internal
// convergecast and broadcast make the total item count common knowledge,
// then total+n pipeline slices stream every item to the root.
type StepGatherAtRoot struct {
	t         *Tree
	items     []congest.Message
	sub       int
	conv      *StepConvergecastSum
	bcast     *StepBroadcastFromRoot
	queue     []congest.Message
	collected []congest.Message
	r, rounds int
}

// NewStepGatherAtRoot starts gathering this node's items at the root of t.
func NewStepGatherAtRoot(nd *congest.Node, t *Tree, items []congest.Message) *StepGatherAtRoot {
	for i, it := range items {
		if it.Bits() > nd.Bandwidth() {
			panicCollective(fmt.Sprintf("primitives: item %d of node %d has %d bits > budget %d",
				i, nd.ID(), it.Bits(), nd.Bandwidth()))
		}
	}
	return &StepGatherAtRoot{t: t, items: items, conv: NewStepConvergecastSum(nd, t, int64(len(items)))}
}

// Step advances one round-slice.
func (s *StepGatherAtRoot) Step(nd *congest.Node) bool {
	for {
		switch s.sub {
		case 0:
			if !s.conv.Step(nd) {
				return false
			}
			s.bcast = NewStepBroadcastFromRoot(nd, s.t, s.conv.Sum())
			s.sub = 1
		case 1:
			if !s.bcast.Step(nd) {
				return false
			}
			s.rounds = int(s.bcast.Value()) + nd.N()
			s.queue = make([]congest.Message, len(s.items))
			copy(s.queue, s.items)
			s.sub = 2
		default:
			if s.r >= 1 {
				for _, in := range nd.Recv() {
					if contains(s.t.Children, in.From) {
						if s.t.Parent == -1 {
							s.collected = append(s.collected, in.Msg)
						} else {
							s.queue = append(s.queue, in.Msg)
						}
					}
				}
			}
			if s.r == s.rounds {
				if s.t.Parent == -1 {
					s.collected = append(s.collected, s.items...)
				}
				return true
			}
			if len(s.queue) > 0 && s.t.Parent != -1 {
				nd.MustSend(s.t.Parent, s.queue[0])
				s.queue = s.queue[1:]
			}
			s.r++
			return false
		}
	}
}

// Collected returns every gathered item at the root (nil elsewhere); valid
// once done.
func (s *StepGatherAtRoot) Collected() []congest.Message {
	if s.t.Parent == -1 {
		return s.collected
	}
	return nil
}

// StepFloodItemsFromRoot is the step form of FloodItemsFromRoot: the item
// count becomes common knowledge, then total+n pipeline slices stream the
// root's items to every node.
type StepFloodItemsFromRoot struct {
	t         *Tree
	sub       int
	conv      *StepConvergecastSum
	bcast     *StepBroadcastFromRoot
	queue     []congest.Message
	got       []congest.Message
	sendIdx   int
	r, rounds int
}

// NewStepFloodItemsFromRoot starts flooding the root's items down the tree;
// non-root callers pass nil items.
func NewStepFloodItemsFromRoot(nd *congest.Node, t *Tree, items []congest.Message) *StepFloodItemsFromRoot {
	s := &StepFloodItemsFromRoot{t: t}
	var total int64
	if t.Parent == -1 {
		total = int64(len(items))
		s.queue = append(s.queue, items...)
		s.got = append(s.got, items...)
	}
	s.conv = NewStepConvergecastSum(nd, t, total)
	return s
}

// Step advances one round-slice.
func (s *StepFloodItemsFromRoot) Step(nd *congest.Node) bool {
	for {
		switch s.sub {
		case 0:
			if !s.conv.Step(nd) {
				return false
			}
			s.bcast = NewStepBroadcastFromRoot(nd, s.t, s.conv.Sum())
			s.sub = 1
		case 1:
			if !s.bcast.Step(nd) {
				return false
			}
			s.rounds = int(s.bcast.Value()) + nd.N()
			s.sub = 2
		default:
			if s.r >= 1 && s.t.Parent != -1 {
				if m, ok := nd.RecvFrom(s.t.Parent); ok {
					s.queue = append(s.queue, m)
					s.got = append(s.got, m)
				}
			}
			if s.r == s.rounds {
				return true
			}
			if s.sendIdx < len(s.queue) {
				for _, c := range s.t.Children {
					nd.MustSend(c, s.queue[s.sendIdx])
				}
				s.sendIdx++
			}
			s.r++
			return false
		}
	}
}

// Items returns the root's items in root order; valid once done.
func (s *StepFloodItemsFromRoot) Items() []congest.Message { return s.got }
