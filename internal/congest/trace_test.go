package congest

import (
	"bytes"
	"fmt"
	"testing"

	"powergraph/internal/graph"
	"powergraph/internal/obs"
)

// traceExchange is the spanned version of the bench handler: rounds of full
// neighbor exchange wrapped in an outer "work" span, each round in its own
// "work-iter" span, with node 0 additionally emitting a zero-length
// "solo" span and an unmatched end that the engine must filter.
func traceExchange(rounds, width int) Handler[int] {
	return func(nd *Node) (int, error) {
		nd.SpanBegin("work", 0)
		nd.SpanEnd("never-begun", 0) // unmatched: must not reach the tracer
		sum := 0
		for r := 0; r < rounds; r++ {
			nd.SpanBegin("work-iter", r)
			nd.Broadcast(NewIntWidth(int64(nd.ID()), width))
			nd.NextRound()
			sum += len(nd.Recv())
			nd.SpanEnd("work-iter", r)
		}
		if nd.ID() == 0 {
			nd.SpanBegin("solo", 0)
			nd.SpanEnd("solo", 0)
		}
		nd.SpanEnd("work", 0)
		return sum, nil
	}
}

// TestTraceRoundConformance is the engine-level trace contract: with a
// rounds-subscribed tracer attached, both engines emit one RoundEvent per
// counted round (monotone, complete), the events' sums reproduce the
// end-of-run Stats exactly, and the span marks respect the refcount
// semantics. The two engines' event streams must also agree with each other.
func TestTraceRoundConformance(t *testing.T) {
	const rounds = 17
	g := graph.ConnectedGNP(40, 0.2, newRand(3))
	w := IDBits(g.N())

	type stream struct {
		events []obs.RoundEvent
		res    *Result[int]
		col    *obs.Collector
	}
	streams := map[EngineMode]*stream{}
	for _, mode := range []EngineMode{EngineGoroutine, EngineBatch} {
		col := &obs.Collector{CollectRounds: true}
		res, err := Run(Config{Graph: g, Engine: mode, Seed: 11, Tracer: col}, traceExchange(rounds, w))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		streams[mode] = &stream{events: col.RoundEvents(), res: res, col: col}
	}

	for mode, s := range streams {
		evs, stats := s.events, s.res.Stats
		if len(evs) != stats.Rounds {
			t.Fatalf("%v: %d round events for %d counted rounds", mode, len(evs), stats.Rounds)
		}
		var bits, msgs int64
		var maxBits, maxMsgs int64
		for i, ev := range evs {
			if ev.Round != i {
				t.Fatalf("%v: event %d carries round %d (not monotone-complete)", mode, i, ev.Round)
			}
			if ev.Active <= 0 || ev.Active > g.N() {
				t.Fatalf("%v: round %d has %d active nodes", mode, i, ev.Active)
			}
			if ev.MaxLink > ev.Bits || (ev.Messages > 0 && ev.MaxLink <= 0) {
				t.Fatalf("%v: round %d maxLink %d inconsistent with bits %d", mode, i, ev.MaxLink, ev.Bits)
			}
			bits += ev.Bits
			msgs += ev.Messages
			if ev.Bits > maxBits {
				maxBits = ev.Bits
			}
			if ev.Messages > maxMsgs {
				maxMsgs = ev.Messages
			}
		}
		if bits != stats.TotalBits || msgs != stats.Messages {
			t.Fatalf("%v: event sums bits=%d msgs=%d vs stats bits=%d msgs=%d",
				mode, bits, msgs, stats.TotalBits, stats.Messages)
		}
		if maxBits != stats.MaxRoundBits || maxMsgs != stats.MaxRoundMessages {
			t.Fatalf("%v: event maxima bits=%d msgs=%d vs stats bits=%d msgs=%d",
				mode, maxBits, maxMsgs, stats.MaxRoundBits, stats.MaxRoundMessages)
		}

		info, end, ok := s.col.Run()
		if !ok {
			t.Fatalf("%v: missing run-start/run-end", mode)
		}
		if info.N != g.N() || info.Engine == "" || info.Model != CONGEST.String() {
			t.Fatalf("%v: run info %+v", mode, info)
		}
		if end.Rounds != stats.Rounds || end.TotalBits != stats.TotalBits || end.Error != "" {
			t.Fatalf("%v: run end %+v vs stats %+v", mode, end, stats)
		}

		if open := s.col.OpenSpans(); len(open) != 0 {
			t.Fatalf("%v: unclosed spans %v", mode, open)
		}
		begins, ends := s.col.SpanMarks()
		if len(begins) != len(ends) {
			t.Fatalf("%v: %d begins vs %d ends", mode, len(begins), len(ends))
		}
		for _, mk := range begins {
			if mk.Name == "never-begun" {
				t.Fatalf("%v: unmatched end leaked through as a begin", mode)
			}
		}
		// work: one refcounted completion across all nodes; work-iter: one
		// completion per iteration; solo: node 0's zero-length span.
		sum := s.col.SpanSummary()
		want := fmt.Sprintf("work*1:%d;work-iter*%d:%d", stats.Rounds, rounds, rounds)
		if sum != want+";solo*1:0" && sum != want {
			t.Fatalf("%v: span summary %q, want %q(;solo*1:0)", mode, sum, want)
		}
	}

	// Engine differential on the trace itself.
	gor, bat := streams[EngineGoroutine], streams[EngineBatch]
	if len(gor.events) != len(bat.events) {
		t.Fatalf("engines emit different round counts: %d vs %d", len(gor.events), len(bat.events))
	}
	for i := range gor.events {
		if gor.events[i] != bat.events[i] {
			t.Fatalf("round %d diverges: goroutine %+v vs batch %+v", i, gor.events[i], bat.events[i])
		}
	}
	if gs, bs := gor.col.SpanSummary(), bat.col.SpanSummary(); gs != bs {
		t.Fatalf("span summaries diverge: goroutine %q vs batch %q", gs, bs)
	}
}

// TestTraceDoesNotPerturbRun pins the observation contract: the same seeded
// config produces identical Stats and outputs with a full tracer attached,
// with a span-only tracer attached, and with none.
func TestTraceDoesNotPerturbRun(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.25, newRand(5))
	w := IDBits(g.N())
	for _, mode := range []EngineMode{EngineGoroutine, EngineBatch} {
		run := func(tr obs.Tracer) *Result[int] {
			res, err := Run(Config{Graph: g, Engine: mode, Seed: 9, Tracer: tr}, traceExchange(12, w))
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			return res
		}
		bare := run(nil)
		spanOnly := run(&obs.Collector{})
		var buf bytes.Buffer
		jw := obs.NewJSONLWriter(&buf)
		full := run(obs.Multi{jw, &obs.Collector{CollectRounds: true}})
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		for name, traced := range map[string]*Result[int]{"span-only": spanOnly, "full": full} {
			if traced.Stats != bare.Stats {
				t.Fatalf("%v: %s tracer perturbed stats: %+v vs %+v", mode, name, traced.Stats, bare.Stats)
			}
			for i := range bare.Outputs {
				if traced.Outputs[i] != bare.Outputs[i] {
					t.Fatalf("%v: %s tracer perturbed node %d output", mode, name, i)
				}
			}
		}
		if buf.Len() == 0 {
			t.Fatal("JSONL tracer wrote nothing")
		}
	}
}
