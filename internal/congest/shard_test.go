package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"powergraph/internal/graph"
	"powergraph/internal/obs"
)

// probeProg is a step program built to stress every shard-staged side
// effect at once: per-node randomness, broadcasts and targeted sends,
// nested span marks, and nodes that finish at different rounds (so shard
// liveness counts actually move).
type probeProg struct {
	rounds int
	sum    int64
}

func (p *probeProg) Step(nd *Node) (bool, error) {
	r := nd.Round()
	if r == 0 {
		nd.SpanBegin("probe", 0)
	}
	for _, in := range nd.Recv() {
		p.sum += in.Msg.(Int).V
	}
	if r >= p.rounds {
		nd.SpanEnd("probe", 0)
		return true, nil
	}
	if (nd.ID()+r)%4 == 0 {
		nd.SpanBegin("burst", r)
		v := nd.Rand().Int63n(1 << 10)
		nd.BroadcastNeighbors(NewIntWidth(v, 11))
		nd.SpanEnd("burst", r)
	} else if nbrs := nd.Neighbors(); len(nbrs) > 0 && r%2 == 1 {
		to := nbrs[int(nd.Rand().Int31n(int32(len(nbrs))))]
		nd.MustSend(to, NewIntWidth(int64(nd.ID()), IDBits(nd.N())))
	}
	return false, nil
}

func (p *probeProg) Output() int64 { return p.sum }

// probeConfig builds the common config; shards ≤ 1 is the sequential sweep.
func probeConfig(g *graph.Graph, shards int, tr obs.Tracer) Config {
	// BandwidthFactor 16 keeps the probe's 11-bit payloads legal even on
	// the tiny graphs (n = 3 has a default budget of just 8 bits).
	return Config{Graph: g, Engine: EngineBatch, Shards: shards, Seed: 42, Tracer: tr, BandwidthFactor: 16}
}

func runProbe(t *testing.T, g *graph.Graph, shards int) (*Result[int64], *obs.Collector) {
	t.Helper()
	col := &obs.Collector{CollectRounds: true}
	res, err := RunProgram(probeConfig(g, shards, col), func(nd *Node) StepProgram[int64] {
		return &probeProg{rounds: 6 + nd.ID()%5}
	})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return res, col
}

// TestShardedBatchMatchesSequential is the core shard-barrier determinism
// contract: outputs, Stats, per-round trace events, and span mark streams
// are identical to the sequential batch sweep at every shard count,
// including adversarial ones (one-node shards, more shards than nodes —
// i.e. empty shards).
func TestShardedBatchMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle24": graph.Cycle(24),
		"star17":  graph.Star(17),
		"gnp40":   graph.ConnectedGNP(40, 0.15, rand.New(rand.NewSource(7))),
		"path3":   graph.Path(3),
		"single":  graph.Path(1),
		"tree100": graph.RandomTree(100, rand.New(rand.NewSource(9))),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			want, wantCol := runProbe(t, g, 0)
			n := g.N()
			shardCounts := []int{1, 2, 3, 7, n - 1, n, n + 1, 2*n + 5, runtime.GOMAXPROCS(0)}
			for _, sc := range shardCounts {
				if sc < 1 {
					continue
				}
				got, gotCol := runProbe(t, g, sc)
				if !reflect.DeepEqual(want.Outputs, got.Outputs) {
					t.Fatalf("shards=%d: outputs diverge", sc)
				}
				if want.Stats != got.Stats {
					t.Fatalf("shards=%d: stats diverge:\nseq:     %+v\nsharded: %+v", sc, want.Stats, got.Stats)
				}
				if !reflect.DeepEqual(wantCol.RoundEvents(), gotCol.RoundEvents()) {
					t.Fatalf("shards=%d: round event streams diverge", sc)
				}
				wb, we := wantCol.SpanMarks()
				gb, ge := gotCol.SpanMarks()
				if !reflect.DeepEqual(wb, gb) || !reflect.DeepEqual(we, ge) {
					t.Fatalf("shards=%d: span mark streams diverge", sc)
				}
				if wantCol.SpanSummary() != gotCol.SpanSummary() {
					t.Fatalf("shards=%d: span summaries diverge:\nseq:     %s\nsharded: %s",
						sc, wantCol.SpanSummary(), gotCol.SpanSummary())
				}
			}
		})
	}
}

// TestShardedBlockingHandlerMatchesSequential covers the coroutine adapter
// under sharding: each node's coroutine is created and resumed by its
// shard's fixed worker goroutine, which keeps iter.Pull's serialization
// contract; results must match the sequential adapter run exactly.
func TestShardedBlockingHandlerMatchesSequential(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, rand.New(rand.NewSource(3)))
	handler := func(nd *Node) (int64, error) {
		var sum int64
		for r := 0; r < 5; r++ {
			nd.BroadcastNeighbors(NewIntWidth(nd.Rand().Int63n(1<<10), 11))
			nd.NextRound()
			for _, in := range nd.Recv() {
				sum += in.Msg.(Int).V
			}
		}
		return sum, nil
	}
	want, err := Run(probeConfig(g, 0, nil), handler)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got, err := Run(probeConfig(g, sc, nil), handler)
		if err != nil {
			t.Fatalf("shards=%d: %v", sc, err)
		}
		if !reflect.DeepEqual(want.Outputs, got.Outputs) || want.Stats != got.Stats {
			t.Fatalf("shards=%d: adapter run diverges from sequential", sc)
		}
	}
}

// TestShardedErrorDeterminism: when several nodes fail in one round, the
// sharded barrier must surface exactly the error the sequential sweep
// surfaces — the lowest-id failure — regardless of which worker saw its
// failure first.
func TestShardedErrorDeterminism(t *testing.T) {
	g := graph.Cycle(40)
	run := func(shards int) error {
		_, err := RunProgram(probeConfig(g, shards, nil), func(nd *Node) StepProgram[int] {
			return stepFunc[int](func(nd *Node) (bool, error) {
				if nd.Round() == 2 && nd.ID()%5 == 3 {
					return false, fmt.Errorf("probe failure")
				}
				return false, nil
			})
		})
		return err
	}
	want := run(0)
	if want == nil {
		t.Fatal("sequential run did not fail")
	}
	for _, sc := range []int{2, 7, 40, 96} {
		got := run(sc)
		if got == nil || got.Error() != want.Error() {
			t.Fatalf("shards=%d: error %v, want %v", sc, got, want)
		}
	}
}

// TestShardedMaxRounds checks the round-limit abort path shuts the worker
// pool down cleanly and reports the identical error.
func TestShardedMaxRounds(t *testing.T) {
	g := graph.Path(12)
	for _, sc := range []int{0, 3, 12} {
		cfg := probeConfig(g, sc, nil)
		cfg.MaxRounds = 25
		_, err := RunProgram(cfg, func(nd *Node) StepProgram[int] {
			return stepFunc[int](func(nd *Node) (bool, error) { return false, nil })
		})
		if !errors.Is(err, ErrMaxRounds) {
			t.Fatalf("shards=%d: err = %v, want ErrMaxRounds", sc, err)
		}
	}
}

// TestShardedStress is the race-detector workout (run under make race-diff
// and the CI race-shard step): many short rounds, adversarial shard sizes
// (empty shards, one-node shards), heavy send and span traffic, and early
// finishers, across several seeds.
func TestShardedStress(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		g := graph.ConnectedGNP(n, 0.1, rng)
		var want *Result[int64]
		for _, sc := range []int{0, 1, 2, n, 3*n + 1, runtime.GOMAXPROCS(0)} {
			col := &obs.Collector{CollectRounds: true}
			cfg := probeConfig(g, sc, col)
			cfg.Seed = seed
			res, err := RunProgram(cfg, func(nd *Node) StepProgram[int64] {
				return &probeProg{rounds: 3 + nd.ID()%7}
			})
			if err != nil {
				t.Fatalf("seed=%d shards=%d: %v", seed, sc, err)
			}
			if want == nil {
				want = res
				continue
			}
			if !reflect.DeepEqual(want.Outputs, res.Outputs) || want.Stats != res.Stats {
				t.Fatalf("seed=%d shards=%d: diverges from sequential", seed, sc)
			}
		}
	}
}

// TestShardedMillionNodes is the scale smoke: the sharded batch engine
// drives a million-node ring through the probe program with a fixed worker
// pool — goroutine count stays O(shards), never O(n) — and still matches
// the sequential sweep exactly.
func TestShardedMillionNodes(t *testing.T) {
	if os.Getenv("MEGA_SMOKE") == "" {
		t.Skip("million-node engine smoke: several minutes; run via make sweep-mega-smoke")
	}
	const n = 1_000_000
	g := graph.Cycle(n)
	baseline := runtime.NumGoroutine()
	var maxG atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				if c := int64(runtime.NumGoroutine()); c > maxG.Load() {
					maxG.Store(c)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	prog := func(nd *Node) StepProgram[int64] {
		return &probeProg{rounds: 6 + nd.ID()%5}
	}
	want, err := RunProgram(probeConfig(g, 1, nil), prog)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunProgram(probeConfig(g, 8, nil), prog)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Outputs, got.Outputs) || want.Stats != got.Stats {
		t.Fatal("sharded million-node run diverges from sequential")
	}
	if peak := maxG.Load(); peak > int64(baseline)+64 {
		t.Fatalf("goroutine count peaked at %d (baseline %d): the engine must not spawn per-node goroutines", peak, baseline)
	}
}

// TestNegativeShardsRejected pins the validation error.
func TestNegativeShardsRejected(t *testing.T) {
	_, err := RunProgram(Config{Graph: graph.Path(3), Engine: EngineBatch, Shards: -2},
		func(nd *Node) StepProgram[int] {
			return stepFunc[int](func(nd *Node) (bool, error) { return true, nil })
		})
	if err == nil {
		t.Fatal("negative shard count accepted")
	}
}
