package congest

import (
	"errors"
	"fmt"
	"testing"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

func TestIDBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := IDBits(n); got != want {
			t.Errorf("IDBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSingleRoundNeighborExchange(t *testing.T) {
	// Every node sends its id to all neighbors; after one round, each node
	// must have received exactly its neighbor set.
	g := graph.Cycle(5)
	res, err := Run(Config{Graph: g}, func(nd *Node) ([]int, error) {
		nd.Broadcast(NewIntWidth(int64(nd.ID()), IDBits(nd.N())))
		nd.NextRound()
		var got []int
		for _, in := range nd.Recv() {
			m := in.Msg.(Int)
			if int64(in.From) != m.V {
				return nil, fmt.Errorf("sender mismatch: %d vs %d", in.From, m.V)
			}
			got = append(got, int(m.V))
		}
		return got, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Stats.Rounds)
	}
	if res.Stats.Messages != 10 {
		t.Fatalf("messages = %d, want 10", res.Stats.Messages)
	}
	for v := 0; v < 5; v++ {
		want := g.Neighbors(v)
		got := res.Outputs[v]
		if len(got) != len(want) {
			t.Fatalf("node %d: got %v want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d: got %v want %v", v, got, want)
			}
		}
	}
}

func TestMessagesArriveNextRoundOnly(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		if len(nd.Recv()) != 0 {
			return 0, errors.New("round-0 inbox not empty")
		}
		nd.MustSend(1-nd.ID(), Flag{})
		// Same round: still nothing.
		if len(nd.Recv()) != 0 {
			return 0, errors.New("message visible before barrier")
		}
		nd.NextRound()
		if len(nd.Recv()) != 1 {
			return 0, errors.New("message not delivered after barrier")
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	_, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		if nd.ID() != 0 {
			return 0, nil
		}
		if err := nd.Send(0, Flag{}); err == nil {
			return 0, errors.New("self-send accepted")
		}
		if err := nd.Send(5, Flag{}); err == nil {
			return 0, errors.New("out of range accepted")
		}
		if err := nd.Send(2, Flag{}); err == nil {
			return 0, errors.New("non-neighbor accepted in CONGEST")
		}
		if err := nd.Send(1, Flag{}); err != nil {
			return 0, err
		}
		if err := nd.Send(1, Flag{}); err == nil {
			return 0, errors.New("duplicate per-round send accepted")
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthEnforced(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(Config{Graph: g, BandwidthFactor: 1}, func(nd *Node) (int, error) {
		if nd.ID() == 0 {
			// n=2 ⇒ B = 1 bit; a 2-bit message must be rejected.
			if err := nd.Send(1, NewIntWidth(3, 2)); err == nil {
				return 0, errors.New("oversized message accepted")
			}
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMustSendViolationAbortsRun(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		if nd.ID() == 0 {
			nd.MustSend(2, Flag{}) // not a neighbor: must abort the run
		}
		for i := 0; i < 10; i++ {
			nd.NextRound()
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error from MustSend violation")
	}
}

func TestHandlerErrorAbortsRun(t *testing.T) {
	g := graph.Cycle(4)
	sentinel := errors.New("boom")
	_, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		if nd.ID() == 2 {
			return 0, sentinel
		}
		// Other nodes would wait forever without the abort.
		for {
			nd.NextRound()
		}
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		if nd.ID() == 1 {
			panic("algorithm bug")
		}
		nd.NextRound()
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error from panicking handler")
	}
}

func TestMaxRounds(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(Config{Graph: g, MaxRounds: 5}, func(nd *Node) (int, error) {
		for {
			nd.NextRound()
		}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestCliqueModelAllToAll(t *testing.T) {
	// In the CONGESTED CLIQUE over a path, node 0 can message node 3
	// directly even though they are not adjacent in G.
	g := graph.Path(4)
	res, err := Run(Config{Graph: g, Model: CongestedClique}, func(nd *Node) (int, error) {
		if nd.ID() == 0 {
			nd.MustSend(3, NewInt(42))
		}
		nd.NextRound()
		if nd.ID() == 3 {
			if len(nd.Recv()) != 1 || nd.Recv()[0].Msg.(Int).V != 42 {
				return 0, errors.New("clique message lost")
			}
			return 42, nil
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[3] != 42 {
		t.Fatal("output not propagated")
	}
	// Degree still reflects the input graph.
	_, err = Run(Config{Graph: g, Model: CongestedClique}, func(nd *Node) (int, error) {
		if nd.ID() == 1 && nd.Degree() != 2 {
			return 0, errors.New("clique model changed input degrees")
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCliqueBroadcastReachesEveryone(t *testing.T) {
	g := graph.Path(4)
	res, err := Run(Config{Graph: g, Model: CongestedClique}, func(nd *Node) (int, error) {
		nd.Broadcast(NewIntWidth(int64(nd.ID()), IDBits(nd.N())))
		nd.NextRound()
		return len(nd.Recv()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Outputs {
		if c != 3 {
			t.Fatalf("node %d received %d messages, want 3", v, c)
		}
	}
	if res.Stats.Messages != 12 {
		t.Fatalf("messages = %d, want 12", res.Stats.Messages)
	}
}

func TestStatsBitCounting(t *testing.T) {
	g := graph.Path(2)
	res, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		if nd.ID() == 0 {
			nd.MustSend(1, NewIntWidth(7, 3))
		}
		nd.NextRound()
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalBits != 3 || res.Stats.Messages != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestCutAccounting(t *testing.T) {
	// Path 0-1-2-3 with cut A = {0,1}: only messages over edge 1-2 cross.
	g := graph.Path(4)
	cut := bitset.FromIndices(4, 0, 1)
	res, err := Run(Config{Graph: g, CutA: cut}, func(nd *Node) (int, error) {
		nd.Broadcast(Flag{})
		nd.NextRound()
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CutMessages != 2 || res.Stats.CutBits != 2 {
		t.Fatalf("cut stats = %+v", res.Stats)
	}
	if res.Stats.Messages != 6 {
		t.Fatalf("messages = %d", res.Stats.Messages)
	}
}

func TestCongestionPeakAccounting(t *testing.T) {
	// Round 0: everyone broadcasts (peak). Round 1: only node 0 sends.
	g := graph.Cycle(6)
	res, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		nd.Broadcast(NewIntWidth(1, 2))
		nd.NextRound()
		if nd.ID() == 0 {
			nd.MustSend(nd.Neighbors()[0], NewIntWidth(1, 2))
		}
		nd.NextRound()
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxRoundMessages != 12 {
		t.Fatalf("peak messages = %d, want 12", res.Stats.MaxRoundMessages)
	}
	if res.Stats.MaxRoundBits != 24 {
		t.Fatalf("peak bits = %d, want 24", res.Stats.MaxRoundBits)
	}
	if res.Stats.Messages != 13 {
		t.Fatalf("total = %d, want 13", res.Stats.Messages)
	}
}

func TestConcurrentRunsShareGraphSafely(t *testing.T) {
	// Graphs are immutable; multiple simulations over the same graph must
	// be able to run concurrently (validated under -race).
	g := graph.Grid(5, 5)
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(seed int64) {
			_, err := Run(Config{Graph: g, Seed: seed}, func(nd *Node) (int, error) {
				for r := 0; r < 20; r++ {
					nd.Broadcast(NewIntWidth(int64(nd.ID()), IDBits(nd.N())))
					nd.NextRound()
				}
				return 0, nil
			})
			errs <- err
		}(int64(i))
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeterministicRandomness(t *testing.T) {
	g := graph.Cycle(6)
	run := func() []int64 {
		res, err := Run(Config{Graph: g, Seed: 99}, func(nd *Node) (int64, error) {
			return nd.Rand().Int63(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different node randomness")
		}
	}
	seen := map[int64]bool{}
	for _, v := range a {
		if seen[v] {
			t.Fatal("two nodes share a random stream")
		}
		seen[v] = true
	}
}

func TestEarlyFinisherDoesNotBlockOthers(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		if nd.ID() == 0 {
			return 1, nil // returns immediately, before any round
		}
		nd.NextRound()
		nd.NextRound()
		return 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 1 || res.Outputs[2] != 2 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Stats.Rounds)
	}
}

func TestMessagesFromEarlyFinisherStillDelivered(t *testing.T) {
	g := graph.Path(2)
	res, err := Run(Config{Graph: g}, func(nd *Node) (bool, error) {
		if nd.ID() == 0 {
			nd.MustSend(1, Flag{})
			return true, nil // finish without NextRound; message must still go out
		}
		nd.NextRound()
		return len(nd.Recv()) == 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs[1] {
		t.Fatal("message from finished node was dropped")
	}
}

func TestRecvFrom(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		nd.Broadcast(NewIntWidth(int64(nd.ID()), 4))
		nd.NextRound()
		if nd.ID() == 1 {
			m, ok := nd.RecvFrom(2)
			if !ok || m.(Int).V != 2 {
				return 0, errors.New("RecvFrom(2) failed")
			}
			if _, ok := nd.RecvFrom(1); ok {
				return 0, errors.New("RecvFrom(self) should be empty")
			}
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(Config{Graph: graph.NewBuilder(0).Build()}, func(nd *Node) (int, error) {
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Fatal("unexpected outputs")
	}
}

func TestNilGraphRejected(t *testing.T) {
	if _, err := Run(Config{}, func(nd *Node) (int, error) { return 0, nil }); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestManyRoundsStress(t *testing.T) {
	// 200 nodes × 100 rounds of full neighbor exchange over a random graph.
	g := graph.Grid(10, 20)
	res, err := Run(Config{Graph: g}, func(nd *Node) (int, error) {
		sum := 0
		for r := 0; r < 100; r++ {
			nd.Broadcast(NewIntWidth(int64(nd.ID()), IDBits(nd.N())))
			nd.NextRound()
			sum += len(nd.Recv())
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 100 {
		t.Fatalf("rounds = %d", res.Stats.Rounds)
	}
	for v, got := range res.Outputs {
		if got != 100*g.Degree(v) {
			t.Fatalf("node %d: received %d, want %d", v, got, 100*g.Degree(v))
		}
	}
}
