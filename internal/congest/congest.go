// Package congest simulates the synchronous CONGEST and CONGESTED CLIQUE
// models of distributed computing ([Pel00], [LPPP03]; footnotes 1–2 of the
// paper).
//
// A network is built from a communication graph G. Every node runs its
// algorithm against a Node handle; rounds are barrier synchronized. In each
// round a node may send at most one message per communication link — to each
// G-neighbor in CONGEST, to every other node in CONGESTED CLIQUE — and every
// message is accounted in bits and checked against the bandwidth budget
// B = BandwidthFactor·⌈log₂ n⌉, which is the "O(log n)-bit messages"
// constraint the paper's round bounds rely on. Messages sent in round r are
// delivered at the start of round r+1.
//
// The simulator reports rounds, message count, total bits, and (optionally)
// the bits crossing a vertex cut — the quantity bounded by the Alice–Bob
// framework of Section 5.1.
//
// # Engine modes
//
// Two execution engines serve the same Run/Config API and are selected by
// Config.Engine; for a fixed Config (including Seed) they produce identical
// outputs, round counts, and statistics:
//
//   - EngineGoroutine (the default) runs one goroutine per node with a
//     channel-rendezvous barrier per round. Node programs are ordinary
//     blocking functions, and handler work in one round runs concurrently
//     across nodes, which helps when per-round local computation is heavy.
//   - EngineBatch advances all nodes round-by-round on a single scheduler
//     goroutine over flat, reusable per-round message buffers. Blocking
//     handlers are adapted transparently (each node becomes a coroutine the
//     scheduler resumes once per round); step-structured programs run as
//     plain function calls with no per-node scheduling at all (see
//     RunProgram). This mode removes the barrier, the per-round outbox
//     maps, and almost all steady-state allocation, making thousand-node
//     sweeps practical — see ARCHITECTURE.md for measurements.
package congest

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
	"powergraph/internal/obs"
)

// Model selects the communication rule.
type Model int

const (
	// CONGEST allows one B-bit message per incident G-edge per round.
	CONGEST Model = iota
	// CongestedClique allows one B-bit message to every other node per round.
	CongestedClique
)

func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case CongestedClique:
		return "CONGESTED-CLIQUE"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// EngineMode selects the execution engine; both modes implement the same
// round semantics and produce identical results for a fixed Config.
type EngineMode int

const (
	// EngineGoroutine is the original engine: one goroutine per node,
	// barrier-synchronized via channel rendezvous.
	EngineGoroutine EngineMode = iota
	// EngineBatch is the batched event-driven engine: a single scheduler
	// goroutine advances every node once per round over flat per-round
	// message buffers. Preferred for large n and for sweeps that already
	// parallelize across jobs.
	EngineBatch
)

func (m EngineMode) String() string {
	switch m {
	case EngineGoroutine:
		return "goroutine"
	case EngineBatch:
		return "batch"
	default:
		return fmt.Sprintf("EngineMode(%d)", int(m))
	}
}

// ParseEngineMode maps a mode name to an EngineMode. The empty string means
// the default (EngineGoroutine), so callers can thread an optional config
// field straight through.
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "", "goroutine":
		return EngineGoroutine, nil
	case "batch", "event", "event-driven":
		return EngineBatch, nil
	default:
		return 0, fmt.Errorf("congest: unknown engine mode %q (want goroutine or batch)", s)
	}
}

// Message is any payload with an explicit size in bits. Implementations
// declare the size their fields would need on a real link; the simulator
// enforces the per-round budget against it.
type Message interface {
	Bits() int
}

// Incoming pairs a delivered message with its sender.
type Incoming struct {
	From int
	Msg  Message
}

// Config describes a simulation.
type Config struct {
	Graph *graph.Graph
	Model Model
	// Ctx, when non-nil, cancels an in-flight run: both engines check it at
	// every round barrier and abort with an error wrapping ErrCanceled (and
	// the context's cause) as soon as it is done. nil means never canceled.
	// This is what lets a server impose per-request deadlines on simulations
	// that would otherwise run a 10⁶-node job to completion.
	Ctx context.Context
	// Engine selects the execution engine (default EngineGoroutine). Both
	// engines yield identical results for identical configs; EngineBatch is
	// markedly faster at large n.
	Engine EngineMode
	// BandwidthFactor scales the per-message budget B =
	// BandwidthFactor·⌈log₂ n⌉ bits. Zero means the default of 4, enough
	// for a constant number of IDs/weights per message as the paper's
	// algorithms assume.
	BandwidthFactor int
	// MaxRounds aborts runaway algorithms. Zero means the default 1<<22.
	MaxRounds int
	// Shards splits the batch engine's per-round node sweep into that many
	// contiguous node-id ranges advanced by a persistent worker pool, with
	// per-shard staging buffers merged at the round barrier so results,
	// Stats, and span summaries are byte-identical to the sequential sweep
	// at any shard count (see shard.go). Values ≤ 1 mean the sequential
	// sweep; the goroutine engine ignores the field (it is already
	// concurrent per node). Negative values are rejected.
	Shards int
	// Seed derives every node's private random stream; runs are
	// deterministic given a seed.
	Seed int64
	// CutA, when non-nil, is a vertex set A: the simulator separately
	// counts the bits of messages crossing between A and V∖A (the cut
	// traffic of Section 5.1's two-party reductions).
	CutA *bitset.Set
	// Tracer, when non-nil, receives run/round/span events (see
	// internal/obs). nil disables tracing; the hot path then pays one
	// branch per event site and allocates nothing. Per-round events are
	// only emitted when Tracer.WantRounds() reports true at run start.
	Tracer obs.Tracer
}

// Stats aggregates the observable cost of a run.
type Stats struct {
	Rounds      int   // number of completed communication rounds
	Messages    int64 // total messages delivered
	TotalBits   int64 // total bits delivered
	CutBits     int64 // bits crossing the configured cut (0 if no cut set)
	CutMessages int64 // messages crossing the configured cut
	Bandwidth   int   // the enforced per-message budget B in bits
	// MaxRoundBits is the largest number of bits delivered in any single
	// round — the network-wide congestion peak. Algorithms that pipeline
	// (Lemma 2) keep it near m·B; bursty ones spike it.
	MaxRoundBits int64
	// MaxRoundMessages is the largest number of messages in any round.
	MaxRoundMessages int64
}

// Result carries per-node outputs and the run statistics.
type Result[T any] struct {
	Outputs []T
	Stats   Stats
}

// Handler is a node program in blocking form: it communicates via the Node
// handle, calls NextRound to cross round boundaries, and returns the node's
// output. On the goroutine engine each handler runs on its own goroutine;
// on the batch engine handlers are adapted transparently into per-round
// coroutine steps.
type Handler[T any] func(*Node) (T, error)

// StepProgram is a node program in explicit step form: the engine calls
// Step once per round, so each node's per-round logic runs as a plain
// function call with no goroutine or channel in the loop. This is the
// native (fastest) shape for the batch engine; on the goroutine engine the
// program is wrapped in a blocking handler, so one implementation serves
// both modes.
//
// Step sees the messages delivered this round via nd.Recv and queues sends
// for the next round; returning done = true finishes the node (messages it
// queued in that final step are still delivered, exactly as for a handler
// that sends and returns).
type StepProgram[T any] interface {
	// Step runs this node's logic for the current round.
	Step(nd *Node) (done bool, err error)
	// Output returns the node's final output; the engine calls it once,
	// after Step reports done.
	Output() T
}

// ErrMaxRounds reports that the round limit was hit before termination.
var ErrMaxRounds = errors.New("congest: exceeded maximum round count")

// ErrCanceled reports that Config.Ctx was done before the run terminated.
// The returned error also wraps the context's cause, so errors.Is matches
// both ErrCanceled and e.g. context.DeadlineExceeded.
var ErrCanceled = errors.New("congest: run canceled")

// IDBits returns the number of bits needed to address n distinct ids —
// the unit "O(log n)" in all of the paper's message-size accounting.
func IDBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// nodePanic is the sentinel carried by internal panics that abort a node
// goroutine; it never escapes the package.
type nodePanic struct{ err error }

// Node is the handle a node program uses to interact with the simulation.
// A Node must only be used from the goroutine running its handler (or, for
// step programs on the batch engine, from inside Step).
type Node struct {
	id int
	eng *engine
	// rng is created lazily on the first Rand call: a rand.Source carries a
	// multi-kilobyte state vector, so eagerly seeding every node costs
	// gigabytes at n ≈ 10⁶ while deterministic algorithms never draw at all.
	rng   *rand.Rand
	inbox []Incoming
	round int

	// sh points at this node's shard staging buffers during a sharded batch
	// round sweep (see shard.go); nil on the sequential sweep and on the
	// goroutine engine.
	sh *shardState

	// outbox is the goroutine engine's per-round send buffer, recreated
	// after every delivery.
	outbox map[int]Message

	// The batch engine's send buffers: flat parallel (destination, message)
	// slices truncated and reused across rounds, with a round-stamped map
	// replacing the per-round outbox map for duplicate-send detection.
	// Broadcasts take a fast path that skips the per-destination checks
	// (destinations are valid and duplicate-free by construction) and
	// record themselves in the round-stamped bcastAll/bcastNbrs guards so
	// later explicit sends still detect duplicates.
	outDst    []int
	outMsgs   []Message
	sentRound map[int]int
	bcastAll  int
	bcastNbrs int

	// yield parks this node's coroutine until the batch scheduler resumes
	// it for the next round; set by the coroutine adapter, nil for step
	// programs (which never call NextRound).
	yield func(struct{}) bool
}

// ID returns this node's identifier (0…n-1). The paper's algorithms use ids
// for symmetry breaking; uniqueness is all that is required.
func (nd *Node) ID() int { return nd.id }

// N returns the number of nodes in the network (global knowledge, as is
// standard in CONGEST).
func (nd *Node) N() int { return nd.eng.g.N() }

// Round returns the current round number, starting from 0.
func (nd *Node) Round() int { return nd.round }

// Bandwidth returns the per-message budget B in bits.
func (nd *Node) Bandwidth() int { return nd.eng.bandwidth }

// Degree returns this node's degree in the input graph G.
func (nd *Node) Degree() int { return nd.eng.g.Degree(nd.id) }

// Neighbors returns this node's G-neighbors as a shared, sorted, read-only
// slice (the knowledge a CONGEST node starts with).
func (nd *Node) Neighbors() []int { return nd.eng.g.Adj(nd.id) }

// Weight returns this node's input weight (1 on unweighted graphs).
func (nd *Node) Weight() int64 { return nd.eng.g.Weight(nd.id) }

// Rand returns this node's private deterministic random stream (created on
// first use; the stream depends only on Config.Seed and the node id, never
// on engine mode or shard count).
func (nd *Node) Rand() *rand.Rand {
	if nd.rng == nil {
		nd.rng = rand.New(rand.NewSource(nd.eng.seedBase + int64(nd.id) + 1))
	}
	return nd.rng
}

// Send queues a B-bit-bounded message to the given destination for delivery
// next round. It returns an error if the destination is not reachable under
// the model, if a message was already queued to it this round, or if the
// message exceeds the bandwidth budget.
func (nd *Node) Send(to int, m Message) error {
	if err := nd.sendCheck(to, m); err != nil {
		return err
	}
	if nd.eng.mode == EngineBatch {
		if nd.sentRound == nil {
			nd.sentRound = make(map[int]int, 8)
		}
		nd.sentRound[to] = nd.eng.stamp
		nd.queue(to, m)
	} else {
		nd.outbox[to] = m
	}
	return nil
}

// queue appends one message to the batch outbox, registering this node as a
// sender for the current round on its first send.
func (nd *Node) queue(to int, m Message) {
	if len(nd.outDst) == 0 {
		nd.registerSender()
	}
	nd.outDst = append(nd.outDst, to)
	nd.outMsgs = append(nd.outMsgs, m)
}

// registerSender records this node in the current round's sender list: the
// engine-wide list on the sequential sweep, the shard-local staging list on
// a sharded sweep (concatenated in shard order at the barrier, which is
// ascending id order — exactly the sequential sweep's order).
func (nd *Node) registerSender() {
	if sh := nd.sh; sh != nil {
		sh.senders = append(sh.senders, nd.id)
		return
	}
	nd.eng.senders = append(nd.eng.senders, nd.id)
}

func (nd *Node) sendCheck(to int, m Message) error {
	if to < 0 || to >= nd.eng.g.N() || to == nd.id {
		return fmt.Errorf("congest: node %d: invalid destination %d", nd.id, to)
	}
	if nd.eng.model == CONGEST && !nd.eng.g.HasEdge(nd.id, to) {
		return fmt.Errorf("congest: node %d: %d is not a neighbor", nd.id, to)
	}
	dup := false
	if nd.eng.mode == EngineBatch {
		dup = nd.sentRound[to] == nd.eng.stamp ||
			nd.bcastAll == nd.eng.stamp ||
			(nd.bcastNbrs == nd.eng.stamp && nd.eng.g.HasEdge(nd.id, to))
	} else {
		_, dup = nd.outbox[to]
	}
	if dup {
		return fmt.Errorf("congest: node %d: second message to %d in round %d", nd.id, to, nd.round)
	}
	if b := m.Bits(); b > nd.eng.bandwidth {
		return fmt.Errorf("congest: node %d: message of %d bits exceeds budget %d", nd.id, b, nd.eng.bandwidth)
	}
	return nil
}

// MustSend is Send for messages that are correct by construction; a failure
// aborts the whole simulation with the underlying error (it is converted to
// an error return of Run, never a caller-visible panic).
func (nd *Node) MustSend(to int, m Message) {
	if err := nd.Send(to, m); err != nil {
		panic(nodePanic{err})
	}
}

// Broadcast sends m to every neighbor (CONGEST) or every other node
// (CONGESTED CLIQUE).
func (nd *Node) Broadcast(m Message) {
	if nd.eng.model == CongestedClique {
		if nd.eng.mode == EngineBatch && len(nd.outDst) == 0 {
			nd.fastBroadcast(m, nil)
			return
		}
		for to := 0; to < nd.eng.g.N(); to++ {
			if to != nd.id {
				nd.MustSend(to, m)
			}
		}
		return
	}
	nd.BroadcastNeighbors(m)
}

// BroadcastNeighbors sends m to every G-neighbor regardless of model: the
// building block of protocols that keep their G-structure semantics even
// when the network runs in CONGESTED CLIQUE mode (all of
// congest/primitives does).
func (nd *Node) BroadcastNeighbors(m Message) {
	if nd.eng.mode == EngineBatch && len(nd.outDst) == 0 {
		nd.fastBroadcast(m, nd.eng.g.Adj(nd.id))
		return
	}
	for _, to := range nd.Neighbors() {
		nd.MustSend(to, m)
	}
}

// fastBroadcast is the batch engine's broadcast fast path, valid only when
// nothing was queued yet this round (the caller checked): destinations are
// distinct and reachable by construction, so the per-destination checks
// reduce to one bandwidth test, and the round-stamped guard keeps later
// explicit sends honest about duplicates. adj == nil means "every node but
// this one" (the CONGESTED CLIQUE rule).
func (nd *Node) fastBroadcast(m Message, adj []int) {
	n := nd.eng.g.N()
	count := len(adj)
	if adj == nil {
		count = n - 1
	}
	if count == 0 {
		return
	}
	if b := m.Bits(); b > nd.eng.bandwidth {
		// Same failure the goroutine engine reports from MustSend's check
		// on the first destination.
		panic(nodePanic{fmt.Errorf("congest: node %d: message of %d bits exceeds budget %d", nd.id, b, nd.eng.bandwidth)})
	}
	nd.registerSender()
	if adj == nil {
		for to := 0; to < n; to++ {
			if to != nd.id {
				nd.outDst = append(nd.outDst, to)
				nd.outMsgs = append(nd.outMsgs, m)
			}
		}
		nd.bcastAll = nd.eng.stamp
		return
	}
	nd.outDst = append(nd.outDst, adj...)
	for range adj {
		nd.outMsgs = append(nd.outMsgs, m)
	}
	nd.bcastNbrs = nd.eng.stamp
}

// SpanBegin marks the start of a named phase span at the current round.
// Spans are network-wide: when every node of a lockstep program calls
// SpanBegin with the same (name, index) at the same round, the tracer sees
// a single begin event (the engine reference-counts per-node marks).
// Repeated spans of the same name (Phase-I iterations, MDS phases) are
// distinguished by index. A nil tracer makes this a single-branch no-op.
func (nd *Node) SpanBegin(name string, index int) {
	if nd.eng.tracer == nil {
		return
	}
	if sh := nd.sh; sh != nil {
		// Sharded sweep: stage the mark shard-locally; the barrier replays
		// marks in shard order (= id order), reproducing the sequential
		// sweep's reference-count transitions and event order.
		sh.marks = append(sh.marks, spanMark{name: name, index: index, round: nd.round})
		return
	}
	nd.eng.spanBegin(name, index, nd.round)
}

// SpanEnd marks the close of a phase span. Spans are half-open round
// intervals [begin, end): ending at the begin round means the span consumed
// no communication rounds. Unmatched ends (no open span with that name and
// index) are silently ignored, so termination paths may call SpanEnd
// unconditionally.
func (nd *Node) SpanEnd(name string, index int) {
	if nd.eng.tracer == nil {
		return
	}
	if sh := nd.sh; sh != nil {
		sh.marks = append(sh.marks, spanMark{name: name, index: index, round: nd.round, end: true})
		return
	}
	nd.eng.spanEnd(name, index, nd.round)
}

// Recv returns the messages delivered at the start of the current round
// (i.e. sent during the previous round), sorted by sender id. The slice is
// shared and must not be modified.
func (nd *Node) Recv() []Incoming { return nd.inbox }

// RecvFrom returns the message delivered this round from the given sender,
// if any.
func (nd *Node) RecvFrom(from int) (Message, bool) {
	for _, in := range nd.inbox {
		if in.From == from {
			return in.Msg, true
		}
	}
	return nil, false
}

// NextRound submits this round's messages and blocks until every node has
// done the same; it then makes the messages sent to this node available via
// Recv. Step programs driven by the batch engine never call NextRound —
// returning from Step is the round boundary.
func (nd *Node) NextRound() {
	if nd.eng.mode == EngineBatch {
		if nd.yield == nil {
			panic(nodePanic{fmt.Errorf("congest: node %d: NextRound called from a StepProgram (returning from Step is the round boundary)", nd.id)})
		}
		// Hand control back to the batch scheduler; the yield returns when
		// the scheduler resumes this node for the next round, or reports
		// false when the run was aborted while the node was parked.
		if !nd.yield(struct{}{}) {
			panic(nodePanic{errAborted})
		}
		nd.round++
		return
	}
	nd.eng.arrive <- arrival{id: nd.id, done: false}
	select {
	case <-nd.eng.resume[nd.id]:
		nd.round++
	case <-nd.eng.abort:
		panic(nodePanic{errAborted})
	}
}

var errAborted = errors.New("congest: simulation aborted")
