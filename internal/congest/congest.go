// Package congest simulates the synchronous CONGEST and CONGESTED CLIQUE
// models of distributed computing ([Pel00], [LPPP03]; footnotes 1–2 of the
// paper).
//
// A network is built from a communication graph G. Every node runs its
// algorithm as a goroutine against a Node handle; rounds are barrier
// synchronized. In each round a node may send at most one message per
// communication link — to each G-neighbor in CONGEST, to every other node in
// CONGESTED CLIQUE — and every message is accounted in bits and checked
// against the bandwidth budget B = BandwidthFactor·⌈log₂ n⌉, which is the
// "O(log n)-bit messages" constraint the paper's round bounds rely on.
// Messages sent in round r are delivered at the start of round r+1.
//
// The simulator reports rounds, message count, total bits, and (optionally)
// the bits crossing a vertex cut — the quantity bounded by the Alice–Bob
// framework of Section 5.1.
package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// Model selects the communication rule.
type Model int

const (
	// CONGEST allows one B-bit message per incident G-edge per round.
	CONGEST Model = iota
	// CongestedClique allows one B-bit message to every other node per round.
	CongestedClique
)

func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case CongestedClique:
		return "CONGESTED-CLIQUE"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is any payload with an explicit size in bits. Implementations
// declare the size their fields would need on a real link; the simulator
// enforces the per-round budget against it.
type Message interface {
	Bits() int
}

// Incoming pairs a delivered message with its sender.
type Incoming struct {
	From int
	Msg  Message
}

// Config describes a simulation.
type Config struct {
	Graph *graph.Graph
	Model Model
	// BandwidthFactor scales the per-message budget B =
	// BandwidthFactor·⌈log₂ n⌉ bits. Zero means the default of 4, enough
	// for a constant number of IDs/weights per message as the paper's
	// algorithms assume.
	BandwidthFactor int
	// MaxRounds aborts runaway algorithms. Zero means the default 1<<22.
	MaxRounds int
	// Seed derives every node's private random stream; runs are
	// deterministic given a seed.
	Seed int64
	// CutA, when non-nil, is a vertex set A: the simulator separately
	// counts the bits of messages crossing between A and V∖A (the cut
	// traffic of Section 5.1's two-party reductions).
	CutA *bitset.Set
}

// Stats aggregates the observable cost of a run.
type Stats struct {
	Rounds      int   // number of completed communication rounds
	Messages    int64 // total messages delivered
	TotalBits   int64 // total bits delivered
	CutBits     int64 // bits crossing the configured cut (0 if no cut set)
	CutMessages int64 // messages crossing the configured cut
	Bandwidth   int   // the enforced per-message budget B in bits
	// MaxRoundBits is the largest number of bits delivered in any single
	// round — the network-wide congestion peak. Algorithms that pipeline
	// (Lemma 2) keep it near m·B; bursty ones spike it.
	MaxRoundBits int64
	// MaxRoundMessages is the largest number of messages in any round.
	MaxRoundMessages int64
}

// Result carries per-node outputs and the run statistics.
type Result[T any] struct {
	Outputs []T
	Stats   Stats
}

// Handler is a node program: it runs on its own goroutine, communicates via
// the Node handle, and returns the node's output.
type Handler[T any] func(*Node) (T, error)

// ErrMaxRounds reports that the round limit was hit before termination.
var ErrMaxRounds = errors.New("congest: exceeded maximum round count")

// IDBits returns the number of bits needed to address n distinct ids —
// the unit "O(log n)" in all of the paper's message-size accounting.
func IDBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// nodePanic is the sentinel carried by internal panics that abort a node
// goroutine; it never escapes the package.
type nodePanic struct{ err error }

// Node is the handle a handler uses to interact with the simulation.
// A Node must only be used from the goroutine running its handler.
type Node struct {
	id     int
	eng    *engine
	rng    *rand.Rand
	inbox  []Incoming
	outbox map[int]Message
	round  int
}

// ID returns this node's identifier (0…n-1). The paper's algorithms use ids
// for symmetry breaking; uniqueness is all that is required.
func (nd *Node) ID() int { return nd.id }

// N returns the number of nodes in the network (global knowledge, as is
// standard in CONGEST).
func (nd *Node) N() int { return nd.eng.g.N() }

// Round returns the current round number, starting from 0.
func (nd *Node) Round() int { return nd.round }

// Bandwidth returns the per-message budget B in bits.
func (nd *Node) Bandwidth() int { return nd.eng.bandwidth }

// Degree returns this node's degree in the input graph G.
func (nd *Node) Degree() int { return nd.eng.g.Degree(nd.id) }

// Neighbors returns this node's G-neighbors as a shared, sorted, read-only
// slice (the knowledge a CONGEST node starts with).
func (nd *Node) Neighbors() []int { return nd.eng.g.Adj(nd.id) }

// Weight returns this node's input weight (1 on unweighted graphs).
func (nd *Node) Weight() int64 { return nd.eng.g.Weight(nd.id) }

// Rand returns this node's private deterministic random stream.
func (nd *Node) Rand() *rand.Rand { return nd.rng }

// Send queues a B-bit-bounded message to the given destination for delivery
// next round. It returns an error if the destination is not reachable under
// the model, if a message was already queued to it this round, or if the
// message exceeds the bandwidth budget.
func (nd *Node) Send(to int, m Message) error {
	if err := nd.sendCheck(to, m); err != nil {
		return err
	}
	nd.outbox[to] = m
	return nil
}

func (nd *Node) sendCheck(to int, m Message) error {
	if to < 0 || to >= nd.eng.g.N() || to == nd.id {
		return fmt.Errorf("congest: node %d: invalid destination %d", nd.id, to)
	}
	if nd.eng.model == CONGEST && !nd.eng.g.HasEdge(nd.id, to) {
		return fmt.Errorf("congest: node %d: %d is not a neighbor", nd.id, to)
	}
	if _, dup := nd.outbox[to]; dup {
		return fmt.Errorf("congest: node %d: second message to %d in round %d", nd.id, to, nd.round)
	}
	if b := m.Bits(); b > nd.eng.bandwidth {
		return fmt.Errorf("congest: node %d: message of %d bits exceeds budget %d", nd.id, b, nd.eng.bandwidth)
	}
	return nil
}

// MustSend is Send for messages that are correct by construction; a failure
// aborts the whole simulation with the underlying error (it is converted to
// an error return of Run, never a caller-visible panic).
func (nd *Node) MustSend(to int, m Message) {
	if err := nd.Send(to, m); err != nil {
		panic(nodePanic{err})
	}
}

// Broadcast sends m to every neighbor (CONGEST) or every other node
// (CONGESTED CLIQUE).
func (nd *Node) Broadcast(m Message) {
	if nd.eng.model == CongestedClique {
		for to := 0; to < nd.eng.g.N(); to++ {
			if to != nd.id {
				nd.MustSend(to, m)
			}
		}
		return
	}
	for _, to := range nd.Neighbors() {
		nd.MustSend(to, m)
	}
}

// Recv returns the messages delivered at the start of the current round
// (i.e. sent during the previous round), sorted by sender id. The slice is
// shared and must not be modified.
func (nd *Node) Recv() []Incoming { return nd.inbox }

// RecvFrom returns the message delivered this round from the given sender,
// if any.
func (nd *Node) RecvFrom(from int) (Message, bool) {
	for _, in := range nd.inbox {
		if in.From == from {
			return in.Msg, true
		}
	}
	return nil, false
}

// NextRound submits this round's messages and blocks until every node has
// done the same; it then makes the messages sent to this node available via
// Recv.
func (nd *Node) NextRound() {
	nd.eng.arrive <- arrival{id: nd.id, done: false}
	select {
	case <-nd.eng.resume[nd.id]:
		nd.round++
	case <-nd.eng.abort:
		panic(nodePanic{errAborted})
	}
}

var errAborted = errors.New("congest: simulation aborted")
