package congest

import (
	"fmt"
	"iter"
	"sync/atomic"

	"powergraph/internal/obs"
)

// adapterRuns counts batch-engine runs that fell back to the coroutine
// adapter for a blocking handler (Run with EngineBatch) rather than stepping
// a native StepProgram (RunProgram).
var adapterRuns atomic.Int64

// AdapterRuns reports how many batch-engine runs in this process adapted a
// blocking handler via coroutines instead of stepping native StepPrograms.
// Every registry algorithm is a native step program, so sweeps keep this
// counter flat; it exists so tests can prove a hot path carries no coroutine
// adaptation (the adapter remains as a compatibility shim for user-supplied
// blocking handlers).
func AdapterRuns() int64 { return adapterRuns.Load() }

// The batched event-driven engine: a single scheduler goroutine advances
// every node once per round (in id order) and then moves all queued messages
// from the flat per-node outbox slices into the inbox slices, reusing the
// buffers across rounds. There is no barrier, no per-round map allocation,
// and — for step programs — no goroutine per node at all; blocking handlers
// are adapted by running each one inside an iter.Pull coroutine whose yield
// points are its NextRound calls, so resuming a node for one round is a
// direct coroutine switch (~100ns) rather than a trip through the runtime
// scheduler.
//
// Determinism and equivalence with the goroutine engine follow from three
// invariants shared by both drivers: nodes only interact at round
// boundaries, senders are processed in id order (so inboxes are sorted by
// sender), and a round is counted (and its messages delivered) exactly when
// at least one node is still running after the sweep.

// stepResult is the outcome of advancing one node by one round.
type stepResult uint8

const (
	stepYielded stepResult = iota
	stepDone
)

// stepper advances one node by one round. Implementations record outputs
// and errors themselves; the scheduler only tracks liveness.
type stepper interface {
	step() stepResult
	// unwind releases any resource still held after an aborted run (the
	// parked coroutine of a blocking handler); called once, after the
	// engine's abort channel is closed.
	unwind()
}

// runBatchToCompletion drives the steppers until quiescence, error, or the
// round limit, then unwinds whatever is still parked so no goroutine
// outlives the run.
func (e *engine) runBatchToCompletion(steppers []stepper) error {
	e.traceRunStart()
	runErr := e.runBatch(steppers)
	close(e.abort)
	for _, s := range steppers {
		s.unwind()
	}
	if runErr == nil {
		runErr = e.getErr()
	}
	e.traceRunEnd(runErr)
	return runErr
}

// errMaxRounds builds the round-limit abort error; both batch drivers and
// the goroutine loop report it identically.
func errMaxRounds(limit int) error {
	return fmt.Errorf("%w (%d)", ErrMaxRounds, limit)
}

// runBatch is the batch engine's round loop. Its control flow mirrors
// (*engine).loop exactly — same round counting, same MaxRounds check
// position, same "deliver only if someone is still running" rule — so the
// two engines are behaviorally indistinguishable. With Config.Shards > 1
// the sweep is delegated to the sharded driver (shard.go), which stages
// per-shard side effects and merges them at the barrier so its output is
// byte-identical to this sequential loop.
func (e *engine) runBatch(steppers []stepper) error {
	if e.shards > 1 {
		return e.runBatchSharded(steppers)
	}
	alive := make([]bool, len(steppers))
	for i := range alive {
		alive[i] = true
	}
	live := len(steppers)
	for round := 0; ; round++ {
		if round > e.maxRounds {
			return errMaxRounds(e.maxRounds)
		}
		if err := e.ctxErr(); err != nil {
			return err
		}
		// stamp doubles as the duplicate-send guard for this round; it is
		// round+1 so the zero value of a node's sentRound map never matches.
		e.stamp = round + 1
		for i, s := range steppers {
			if !alive[i] {
				continue
			}
			if s.step() == stepDone {
				alive[i] = false
				live--
			}
		}
		if err := e.getErr(); err != nil {
			return err
		}
		if live == 0 {
			return nil
		}
		e.stats.Rounds++
		e.deliverBatch()
		e.traceRound(round, live)
	}
}

// deliverBatch moves every sending node's flat outbox into the destination
// inboxes, accounting bits. Senders were registered in id order, so every
// inbox stays sorted by sender; within one sender the queue order is
// irrelevant because a sender queues at most one message per destination
// per round. Only last round's receivers need their inboxes cleared, so a
// quiet round costs nothing per idle node.
func (e *engine) deliverBatch() {
	for _, id := range e.receivers {
		e.nodes[id].inbox = e.nodes[id].inbox[:0]
	}
	e.receivers = e.receivers[:0]
	var roundBits, roundMsgs, maxLink int64
	for _, sid := range e.senders {
		nd := e.nodes[sid]
		for k, to := range nd.outDst {
			m := nd.outMsgs[k]
			b := int64(m.Bits())
			e.stats.TotalBits += b
			roundBits += b
			roundMsgs++
			// One message per directed link per round, so the largest
			// message is the max single-link bit volume this round.
			if e.wantRounds && b > maxLink {
				maxLink = b
			}
			if e.cutA != nil && e.cutA.Contains(nd.id) != e.cutA.Contains(to) {
				e.stats.CutBits += b
				e.stats.CutMessages++
			}
			dst := e.nodes[to]
			if len(dst.inbox) == 0 {
				e.receivers = append(e.receivers, to)
			}
			dst.inbox = append(dst.inbox, Incoming{From: nd.id, Msg: m})
		}
		nd.outDst = nd.outDst[:0]
		nd.outMsgs = nd.outMsgs[:0]
	}
	e.senders = e.senders[:0]
	e.lastBits, e.lastMsgs, e.lastMaxLink = roundBits, roundMsgs, maxLink
	e.stats.Messages += roundMsgs
	if roundBits > e.stats.MaxRoundBits {
		e.stats.MaxRoundBits = roundBits
	}
	if roundMsgs > e.stats.MaxRoundMessages {
		e.stats.MaxRoundMessages = roundMsgs
	}
}

// coroStepper adapts a blocking Handler to the batch engine: the handler
// runs inside an iter.Pull coroutine, with NextRound implemented as the
// coroutine's yield. Exactly one of (scheduler, node) is runnable at any
// moment, so rounds stay strictly sequential in node-id order, and the
// resume/yield pair is a direct coroutine switch with no channels involved.
type coroStepper[T any] struct {
	eng     *engine
	nd      *Node
	handler Handler[T]
	outputs []T
	// next resumes the coroutine until its next NextRound (or return);
	// stop tears it down, making the pending yield return false.
	next func() (struct{}, bool)
	stop func()
}

func (s *coroStepper[T]) step() stepResult {
	if s.next == nil {
		s.next, s.stop = iter.Pull(s.body())
	}
	if _, alive := s.next(); !alive {
		return stepDone
	}
	return stepYielded
}

// body builds the coroutine: the handler runs with nd.yield wired to the
// iterator's yield function, and every panic or error is recorded before
// the sequence returns (so the scheduler's next() never panics).
func (s *coroStepper[T]) body() iter.Seq[struct{}] {
	return func(yield func(struct{}) bool) {
		s.nd.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if np, ok := r.(nodePanic); ok {
					if np.err != errAborted {
						s.eng.nodeErr(s.nd, np.err)
					}
				} else {
					s.eng.nodeErr(s.nd, fmt.Errorf("congest: node %d panicked: %v [%s]", s.nd.id, r, obs.StackSummary(2, 6)))
				}
			}
		}()
		out, err := s.handler(s.nd)
		if err != nil {
			s.eng.nodeErr(s.nd, fmt.Errorf("congest: node %d: %w", s.nd.id, err))
			return
		}
		s.outputs[s.nd.id] = out
	}
}

// unwind tears down a coroutine that is still parked in NextRound after an
// aborted run: stop makes the pending yield return false, which NextRound
// converts into the errAborted panic, unwinding the handler's stack.
func (s *coroStepper[T]) unwind() {
	if s.stop != nil {
		s.stop()
	}
}

// progStepper drives a native StepProgram: one plain method call per round.
type progStepper[T any] struct {
	eng     *engine
	nd      *Node
	prog    StepProgram[T]
	outputs []T
}

func (s *progStepper[T]) step() (res stepResult) {
	s.nd.round = s.eng.stamp - 1
	defer func() {
		if r := recover(); r != nil {
			if np, ok := r.(nodePanic); ok {
				s.eng.nodeErr(s.nd, np.err)
			} else {
				s.eng.nodeErr(s.nd, fmt.Errorf("congest: node %d panicked: %v [%s]", s.nd.id, r, obs.StackSummary(2, 6)))
			}
			res = stepDone
		}
	}()
	done, err := s.prog.Step(s.nd)
	if err != nil {
		s.eng.nodeErr(s.nd, fmt.Errorf("congest: node %d: %w", s.nd.id, err))
		return stepDone
	}
	if done {
		s.outputs[s.nd.id] = s.prog.Output()
		return stepDone
	}
	return stepYielded
}

func (s *progStepper[T]) unwind() {}
