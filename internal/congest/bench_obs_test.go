package congest

import (
	"fmt"
	"testing"

	"powergraph/internal/graph"
	"powergraph/internal/obs"
)

// BenchmarkObs prices the observability hooks on the engine hot loop (the
// same full-exchange workload as BenchmarkEngineModes): "off" is the
// zero-cost-when-disabled baseline (nil Tracer — every emission site pays
// one branch and nothing else), "spans" a span-only collector (rounds not
// subscribed, so the per-round inbox walk is skipped), "rounds" the full
// per-round accounting. Run it with `make bench-obs` and compare "off"
// against `make bench-engine`: the contract is <2% and zero added
// allocations, enforced by TestDisabledTracerAddsNoAllocations below.
func BenchmarkObs(b *testing.B) {
	const rounds = 50
	for _, n := range []int{256, 1024} {
		g := graph.ConnectedGNP(n, 8/float64(n), newRand(1))
		w := IDBits(n)
		handler := func(nd *Node) (int, error) {
			sum := 0
			for r := 0; r < rounds; r++ {
				nd.Broadcast(NewIntWidth(int64(nd.ID()), w))
				nd.NextRound()
				sum += len(nd.Recv())
			}
			return sum, nil
		}
		for _, mode := range []EngineMode{EngineGoroutine, EngineBatch} {
			tracers := []struct {
				name string
				mk   func() obs.Tracer
			}{
				{"off", func() obs.Tracer { return nil }},
				{"spans", func() obs.Tracer { return &obs.Collector{} }},
				{"rounds", func() obs.Tracer { return &obs.Collector{CollectRounds: true} }},
			}
			for _, tc := range tracers {
				b.Run(fmt.Sprintf("n=%d/%s/%s", n, mode, tc.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := Run(Config{Graph: g, Engine: mode, Tracer: tc.mk()}, handler); err != nil {
							b.Fatal(err)
						}
					}
					reportNodeRounds(b, n, rounds)
				})
			}
		}
	}
}

// TestDisabledTracerAddsNoAllocations pins the cheap-path contract
// mechanically: attaching a span-only collector to a run that emits no
// spans must cost (to within the collector's own one-off lazy state) zero
// allocations over the nil-tracer run — i.e. the emission sites allocate
// nothing themselves; event structs stay on the stack and the per-round
// inbox walk only runs for rounds-subscribed tracers. The nil-vs-absent
// comparison the ISSUE's <2% figure refers to is the benchmark pair
// `make bench-obs` ("off") vs `make bench-engine`.
func TestDisabledTracerAddsNoAllocations(t *testing.T) {
	const rounds = 10
	g := graph.ConnectedGNP(64, 0.1, newRand(2))
	w := IDBits(64)
	handler := func(nd *Node) (int, error) {
		sum := 0
		for r := 0; r < rounds; r++ {
			nd.Broadcast(NewIntWidth(int64(nd.ID()), w))
			nd.NextRound()
			sum += len(nd.Recv())
		}
		return sum, nil
	}
	run := func(tr obs.Tracer) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(Config{Graph: g, Engine: EngineBatch, Tracer: tr}, handler); err != nil {
				t.Fatal(err)
			}
		})
	}
	// A span-only collector must not trigger the per-round accounting
	// either: WantRounds is sampled once, and an unsubscribed run allocates
	// no RoundEvent machinery.
	off := run(nil)
	spans := run(&obs.Collector{})
	if spans > off+1 { // the collector itself may lazily allocate once
		t.Fatalf("span-only tracer added %.0f allocations over disabled (%.0f)", spans-off, off)
	}
}
