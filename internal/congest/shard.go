package congest

import "sync"

// The sharded batch sweep: Config.Shards > 1 splits the per-round node
// sweep of the batch engine into contiguous node-id ranges advanced by a
// persistent worker pool, while everything with cross-node visibility —
// message delivery, statistics, span reference counting, tracer events,
// error selection — stays on the coordinator goroutine at the round
// barrier.
//
// Determinism is the whole design: the sequential sweep steps nodes in
// ascending id order and its observable side effects (sender registration
// order, span mark order, "first error wins") all inherit that order.
// Workers therefore never touch shared engine state; each side effect is
// staged in the worker's shardState, and the barrier merges the shards in
// ascending shard order — which, because shards are contiguous ascending id
// ranges swept in ascending id order, replays exactly the sequential
// sweep's global order. The merged state then drives the unchanged
// deliverBatch/traceRound path, so results, Stats, spans, and trace streams
// are byte-identical to Shards ≤ 1 at any shard count.
//
// Memory stays flat per round: the staging slices are truncated and reused
// across rounds, the worker pool is created once per run, and no goroutine
// is ever spawned per node or per round.

// spanMark is one staged SpanBegin/SpanEnd call recorded during a sharded
// sweep, replayed against the engine's span reference counts at the
// barrier.
type spanMark struct {
	name  string
	index int
	round int
	end   bool
}

// shardState is one worker's staging area. Only its owning worker touches
// it during a sweep; only the coordinator touches it between sweeps. The
// trailing pad keeps adjacent shardStates out of each other's cache lines.
type shardState struct {
	lo, hi int // node-id range [lo, hi)
	live   int // nodes of this shard still running

	// senders lists the shard's nodes that queued messages this round, in
	// ascending id order (the in-shard sweep order).
	senders []int
	// marks stages SpanBegin/SpanEnd calls in call order.
	marks []spanMark
	// err is the shard's first node error this round (= lowest failing id,
	// because the in-shard sweep is sequential in id order).
	err error

	_ [64]byte // false-sharing pad
}

// runBatchSharded is runBatch's control flow with the node sweep fanned out
// across a persistent worker pool. Round counting, the MaxRounds check, the
// "deliver only if someone is still running" rule, and the order of error
// checks are identical to the sequential driver.
func (e *engine) runBatchSharded(steppers []stepper) error {
	n := len(steppers)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	e.shardStates = make([]shardState, e.shards)
	starts := make([]chan struct{}, e.shards)
	var wg sync.WaitGroup
	for k := 0; k < e.shards; k++ {
		sh := &e.shardStates[k]
		sh.lo, sh.hi = k*n/e.shards, (k+1)*n/e.shards
		sh.live = sh.hi - sh.lo
		for i := sh.lo; i < sh.hi; i++ {
			e.nodes[i].sh = sh
		}
		starts[k] = make(chan struct{}, 1)
		go func(start <-chan struct{}, sh *shardState) {
			// One worker per shard for the whole run, so every node is
			// always stepped by the same goroutine (coroutine-adapted
			// handlers rely on their resumes being serialized).
			for range start {
				for i := sh.lo; i < sh.hi; i++ {
					if !alive[i] {
						continue
					}
					if steppers[i].step() == stepDone {
						alive[i] = false
						sh.live--
					}
				}
				wg.Done()
			}
		}(starts[k], sh)
	}
	defer func() {
		for _, c := range starts {
			close(c)
		}
	}()
	for round := 0; ; round++ {
		if round > e.maxRounds {
			return errMaxRounds(e.maxRounds)
		}
		if err := e.ctxErr(); err != nil {
			return err
		}
		e.stamp = round + 1
		wg.Add(e.shards)
		for _, c := range starts {
			c <- struct{}{}
		}
		wg.Wait()
		// Barrier merge, in shard order = ascending node-id order. Span
		// marks replay before the error check so an aborting run has
		// emitted exactly the span events the sequential sweep had at its
		// abort point.
		live := 0
		var firstErr error
		for k := range e.shardStates {
			sh := &e.shardStates[k]
			live += sh.live
			e.senders = append(e.senders, sh.senders...)
			sh.senders = sh.senders[:0]
			for _, mk := range sh.marks {
				if mk.end {
					e.spanEnd(mk.name, mk.index, mk.round)
				} else {
					e.spanBegin(mk.name, mk.index, mk.round)
				}
			}
			sh.marks = sh.marks[:0]
			if sh.err != nil && firstErr == nil {
				firstErr = sh.err
			}
			sh.err = nil
		}
		if firstErr != nil {
			e.setErr(firstErr)
		}
		if err := e.getErr(); err != nil {
			return err
		}
		if live == 0 {
			return nil
		}
		e.stats.Rounds++
		e.deliverBatch()
		e.traceRound(round, live)
	}
}
