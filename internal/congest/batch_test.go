package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// runBoth executes the same handler under both engines and requires
// identical outputs and statistics.
func runBoth[T any](t *testing.T, cfg Config, handler Handler[T]) *Result[T] {
	t.Helper()
	cfg.Engine = EngineGoroutine
	gor, gerr := Run(cfg, handler)
	cfg.Engine = EngineBatch
	bat, berr := Run(cfg, handler)
	if (gerr == nil) != (berr == nil) {
		t.Fatalf("engines disagree on error: goroutine=%v batch=%v", gerr, berr)
	}
	if gerr != nil {
		t.Fatalf("run failed on both engines: %v", gerr)
	}
	if !reflect.DeepEqual(gor.Outputs, bat.Outputs) {
		t.Fatalf("outputs differ:\ngoroutine: %v\nbatch:     %v", gor.Outputs, bat.Outputs)
	}
	if gor.Stats != bat.Stats {
		t.Fatalf("stats differ:\ngoroutine: %+v\nbatch:     %+v", gor.Stats, bat.Stats)
	}
	return bat
}

func TestParseEngineMode(t *testing.T) {
	for s, want := range map[string]EngineMode{
		"": EngineGoroutine, "goroutine": EngineGoroutine,
		"batch": EngineBatch, "event": EngineBatch, "event-driven": EngineBatch,
	} {
		got, err := ParseEngineMode(s)
		if err != nil || got != want {
			t.Errorf("ParseEngineMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEngineMode("threads"); err == nil {
		t.Error("ParseEngineMode accepted an unknown mode")
	}
	if got := EngineBatch.String(); got != "batch" {
		t.Errorf("EngineBatch.String() = %q", got)
	}
}

func TestBatchRejectsUnknownEngine(t *testing.T) {
	cfg := Config{Graph: graph.Path(2), Engine: EngineMode(7)}
	if _, err := Run(cfg, func(nd *Node) (int, error) { return 0, nil }); err == nil {
		t.Fatal("unknown engine mode accepted")
	}
}

func TestBatchNeighborExchange(t *testing.T) {
	g := graph.Grid(6, 7)
	res := runBoth(t, Config{Graph: g, Seed: 3}, func(nd *Node) ([]int, error) {
		var got []int
		for r := 0; r < 10; r++ {
			nd.Broadcast(NewIntWidth(int64(nd.ID()), IDBits(nd.N())))
			nd.NextRound()
			for _, in := range nd.Recv() {
				got = append(got, int(in.Msg.(Int).V))
			}
		}
		return got, nil
	})
	if res.Stats.Rounds != 10 {
		t.Fatalf("rounds = %d, want 10", res.Stats.Rounds)
	}
	for v, got := range res.Outputs {
		if len(got) != 10*g.Degree(v) {
			t.Fatalf("node %d received %d ids, want %d", v, len(got), 10*g.Degree(v))
		}
	}
}

func TestBatchSendValidation(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(Config{Graph: g, Engine: EngineBatch}, func(nd *Node) (int, error) {
		if nd.ID() != 0 {
			nd.NextRound()
			return 0, nil
		}
		if err := nd.Send(0, Flag{}); err == nil {
			return 0, errors.New("self-send accepted")
		}
		if err := nd.Send(5, Flag{}); err == nil {
			return 0, errors.New("out of range accepted")
		}
		if err := nd.Send(2, Flag{}); err == nil {
			return 0, errors.New("non-neighbor accepted in CONGEST")
		}
		if err := nd.Send(1, Flag{}); err != nil {
			return 0, err
		}
		if err := nd.Send(1, Flag{}); err == nil {
			return 0, errors.New("duplicate per-round send accepted")
		}
		// The duplicate guard must reset at the round boundary.
		nd.NextRound()
		if err := nd.Send(1, Flag{}); err != nil {
			return 0, fmt.Errorf("fresh-round send rejected: %w", err)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBatchEarlyFinisherAndDelivery(t *testing.T) {
	g := graph.Path(3)
	res := runBoth(t, Config{Graph: g}, func(nd *Node) (int, error) {
		if nd.ID() == 0 {
			nd.MustSend(1, Flag{})
			return 1, nil // message queued in the final step must still arrive
		}
		nd.NextRound()
		got := len(nd.Recv())
		nd.NextRound()
		return 10 + got, nil
	})
	if res.Outputs[0] != 1 || res.Outputs[1] != 11 || res.Outputs[2] != 10 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Stats.Rounds)
	}
}

func TestBatchMaxRounds(t *testing.T) {
	_, err := Run(Config{Graph: graph.Path(2), MaxRounds: 5, Engine: EngineBatch},
		func(nd *Node) (int, error) {
			for {
				nd.NextRound()
			}
		})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestBatchHandlerErrorAbortsRun(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(Config{Graph: graph.Cycle(4), Engine: EngineBatch}, func(nd *Node) (int, error) {
		if nd.ID() == 2 {
			return 0, sentinel
		}
		for {
			nd.NextRound()
		}
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestBatchHandlerPanicBecomesError(t *testing.T) {
	_, err := Run(Config{Graph: graph.Path(2), Engine: EngineBatch}, func(nd *Node) (int, error) {
		if nd.ID() == 1 {
			panic("algorithm bug")
		}
		nd.NextRound()
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error from panicking handler")
	}
}

func TestBatchMustSendViolationAbortsRun(t *testing.T) {
	_, err := Run(Config{Graph: graph.Path(3), Engine: EngineBatch}, func(nd *Node) (int, error) {
		if nd.ID() == 0 {
			nd.MustSend(2, Flag{}) // not a neighbor
		}
		for i := 0; i < 10; i++ {
			nd.NextRound()
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error from MustSend violation")
	}
}

func TestBatchCliqueAndCutAccounting(t *testing.T) {
	g := graph.Path(4)
	cut := bitset.FromIndices(4, 0, 1)
	res := runBoth(t, Config{Graph: g, Model: CongestedClique, CutA: cut},
		func(nd *Node) (int, error) {
			nd.Broadcast(NewIntWidth(int64(nd.ID()), IDBits(nd.N())))
			nd.NextRound()
			return len(nd.Recv()), nil
		})
	if res.Stats.Messages != 12 {
		t.Fatalf("messages = %d, want 12", res.Stats.Messages)
	}
	// 2×2 ordered pairs across the cut in each direction: 8 crossing messages.
	if res.Stats.CutMessages != 8 {
		t.Fatalf("cut messages = %d, want 8", res.Stats.CutMessages)
	}
}

func TestBatchDeterministicRandomness(t *testing.T) {
	g := graph.Cycle(6)
	run := func(mode EngineMode) []int64 {
		res, err := Run(Config{Graph: g, Seed: 99, Engine: mode}, func(nd *Node) (int64, error) {
			return nd.Rand().Int63(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	if !reflect.DeepEqual(run(EngineBatch), run(EngineGoroutine)) {
		t.Fatal("per-node random streams differ across engines")
	}
}

// TestEngineDifferentialRandomTraffic drives an adversarial random workload
// — per-node random sends, random message widths, random early exits —
// through both engines and requires identical outputs and stats.
func TestEngineDifferentialRandomTraffic(t *testing.T) {
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		model Model
	}{
		{"gnp-congest", graph.ConnectedGNP(40, 0.15, newRand(7)), CONGEST},
		{"grid-congest", graph.Grid(6, 6), CONGEST},
		{"path-clique", graph.Path(12), CongestedClique},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cut := bitset.New(tc.g.N())
			for v := 0; v < tc.g.N()/2; v++ {
				cut.Add(v)
			}
			runBoth(t, Config{Graph: tc.g, Model: tc.model, Seed: 42, CutA: cut},
				func(nd *Node) (int64, error) {
					rng := nd.Rand()
					sum := int64(0)
					rounds := 5 + rng.Intn(15) // nodes finish at different times
					for r := 0; r < rounds; r++ {
						var peers []int
						if nd.eng.model == CongestedClique {
							for v := 0; v < nd.N(); v++ {
								if v != nd.ID() {
									peers = append(peers, v)
								}
							}
						} else {
							peers = nd.Neighbors()
						}
						for _, u := range peers {
							if rng.Intn(3) == 0 {
								nd.MustSend(u, NewIntWidth(int64(rng.Intn(16)), 5))
							}
						}
						nd.NextRound()
						for _, in := range nd.Recv() {
							sum += in.Msg.(Int).V * int64(in.From+1)
						}
					}
					return sum, nil
				})
		})
	}
}

// floodProgram is a native step program: each node learns the minimum id in
// the network by flooding for n rounds. Used to prove the step path matches
// the equivalent blocking handler on both engines.
type floodProgram struct {
	best   int64
	rounds int
}

func (p *floodProgram) Step(nd *Node) (bool, error) {
	if p.rounds > 0 {
		for _, in := range nd.Recv() {
			if v := in.Msg.(Int).V; v < p.best {
				p.best = v
			}
		}
	}
	if p.rounds == nd.N() {
		return true, nil
	}
	for _, u := range nd.Neighbors() {
		nd.MustSend(u, NewIntWidth(p.best, IDBits(nd.N())))
	}
	p.rounds++
	return false, nil
}

func (p *floodProgram) Output() int64 { return p.best }

func TestRunProgramMatchesHandlerOnBothEngines(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.12, newRand(5))
	handler := func(nd *Node) (int64, error) {
		best := int64(nd.ID())
		for r := 0; r < nd.N(); r++ {
			for _, u := range nd.Neighbors() {
				nd.MustSend(u, NewIntWidth(best, IDBits(nd.N())))
			}
			nd.NextRound()
			for _, in := range nd.Recv() {
				if v := in.Msg.(Int).V; v < best {
					best = v
				}
			}
		}
		return best, nil
	}
	newProg := func(nd *Node) StepProgram[int64] {
		return &floodProgram{best: int64(nd.ID())}
	}
	var results []*Result[int64]
	for _, mode := range []EngineMode{EngineGoroutine, EngineBatch} {
		h, err := Run(Config{Graph: g, Engine: mode}, handler)
		if err != nil {
			t.Fatal(err)
		}
		p, err := RunProgram(Config{Graph: g, Engine: mode}, newProg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, h, p)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0].Outputs, results[i].Outputs) {
			t.Fatalf("variant %d outputs differ", i)
		}
		if results[0].Stats != results[i].Stats {
			t.Fatalf("variant %d stats differ: %+v vs %+v", i, results[0].Stats, results[i].Stats)
		}
	}
	for v, out := range results[0].Outputs {
		if out != 0 {
			t.Fatalf("node %d: min id = %d, want 0", v, out)
		}
	}
}

func TestRunProgramStepErrorAndPanic(t *testing.T) {
	g := graph.Path(3)
	sentinel := errors.New("step failed")
	_, err := RunProgram(Config{Graph: g, Engine: EngineBatch}, func(nd *Node) StepProgram[int] {
		return stepFunc[int](func(n *Node) (bool, error) {
			if n.ID() == 1 && n.Round() == 2 {
				return false, sentinel
			}
			return false, nil
		})
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	_, err = RunProgram(Config{Graph: g, Engine: EngineBatch}, func(nd *Node) StepProgram[int] {
		return stepFunc[int](func(n *Node) (bool, error) {
			if n.ID() == 2 {
				panic("native step bug")
			}
			return false, nil
		})
	})
	if err == nil {
		t.Fatal("expected error from panicking step")
	}
	// A MustSend violation inside a native step aborts the run, too.
	_, err = RunProgram(Config{Graph: g, Engine: EngineBatch}, func(nd *Node) StepProgram[int] {
		return stepFunc[int](func(n *Node) (bool, error) {
			if n.ID() == 0 {
				n.MustSend(2, Flag{}) // not a neighbor
			}
			return n.Round() >= 3, nil
		})
	})
	if err == nil {
		t.Fatal("expected error from MustSend violation in step")
	}
}

// stepFunc adapts a plain function to StepProgram for tests.
type stepFunc[T any] func(*Node) (bool, error)

func (f stepFunc[T]) Step(nd *Node) (bool, error) { return f(nd) }
func (f stepFunc[T]) Output() T                   { var zero T; return zero }
