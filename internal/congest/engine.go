package congest

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"powergraph/internal/bitset"
	"powergraph/internal/obs"
)

type arrival struct {
	id   int
	done bool
}

// engine is the per-run simulation state shared by both execution engines.
// Exactly one driver (loop for EngineGoroutine, runBatch for EngineBatch)
// touches the scheduling fields of a given instance.
type engine struct {
	g         graphLike
	model     Model
	mode      EngineMode
	bandwidth int
	maxRounds int
	cutA      *bitset.Set
	// ctx cancels the run at the next round barrier; nil means no
	// cancellation (checked via ctxErr, one poll per round).
	ctx context.Context

	nodes []*Node
	stats Stats

	mu       sync.Mutex
	firstErr error

	// abort, when closed, unblocks every node still parked at a round
	// boundary (both engines).
	abort chan struct{}

	// Goroutine-engine scheduling: nodes rendezvous on arrive, the driver
	// releases them via per-node resume channels.
	arrive    chan arrival
	resume    []chan struct{}
	doneCount int

	// Batch-engine scheduling: stamp is the current round's duplicate-send
	// guard value (round index + 1, never zero); senders lists the nodes
	// that queued messages this round (ascending, because the sweep runs in
	// id order) and receivers the nodes whose inboxes are non-empty, so
	// delivery cost scales with actual traffic instead of n.
	stamp     int
	senders   []int
	receivers []int

	// Sharded batch scheduling (see shard.go): shards is the worker count
	// for the per-round node sweep (≤ 1 means sequential), shardStates the
	// per-shard staging buffers, and nodeSlab the backing array all Node
	// values live in (one allocation instead of n).
	shards      int
	shardStates []shardState
	nodeSlab    []Node

	// Tracing (see internal/obs). tracer is nil when disabled; wantRounds
	// caches tracer.WantRounds() so delivery only pays the per-round
	// accounting when a tracer actually wants round events. seed is kept
	// for the run-start record; seedBase derives the per-node random
	// streams lazily (see Node.Rand).
	tracer     obs.Tracer
	wantRounds bool
	seed       int64
	seedBase   int64

	// Per-round trace accounting, filled by deliver/deliverBatch: bits and
	// messages delivered in the last completed round, and (only when
	// wantRounds) the largest single message — which, at one message per
	// directed link per round, is exactly the max single-link bit volume.
	lastBits    int64
	lastMsgs    int64
	lastMaxLink int64

	// Span reference counts: per-node begin/end marks collapse into one
	// network-wide span event on the 0→1 and →0 transitions. spanMu also
	// serializes tracer span calls from concurrent handler goroutines.
	spanMu sync.Mutex
	spans  map[spanKey]int
}

// spanKey identifies one open span instance.
type spanKey struct {
	name  string
	index int
}

// spanBegin records one node's span-begin mark, emitting the tracer event
// on the first mark for this (name, index). The emitted mark carries the
// cumulative message count as of the round boundary: marks fire while the
// round's handlers run (or, sharded, at the barrier replay) — in both cases
// before that round's delivery updates the counter — so the snapshot is the
// traffic delivered before the mark's round, identically on every engine.
func (e *engine) spanBegin(name string, index, round int) {
	e.spanMu.Lock()
	defer e.spanMu.Unlock()
	if e.spans == nil {
		e.spans = make(map[spanKey]int)
	}
	k := spanKey{name, index}
	refs := e.spans[k]
	e.spans[k] = refs + 1
	if refs == 0 {
		e.tracer.SpanBegin(obs.Span{Name: name, Index: index, Round: round, Msgs: e.stats.Messages})
	}
}

// spanEnd records one node's span-end mark, emitting the tracer event when
// the last mark is withdrawn. Ends without a matching open span are ignored
// so termination paths can close spans unconditionally.
func (e *engine) spanEnd(name string, index, round int) {
	e.spanMu.Lock()
	defer e.spanMu.Unlock()
	k := spanKey{name, index}
	refs := e.spans[k]
	if refs == 0 {
		return
	}
	if refs == 1 {
		delete(e.spans, k)
		e.tracer.SpanEnd(obs.Span{Name: name, Index: index, Round: round, Msgs: e.stats.Messages})
		return
	}
	e.spans[k] = refs - 1
}

// traceRunStart emits the run-start event, if a tracer is attached.
func (e *engine) traceRunStart() {
	if e.tracer == nil {
		return
	}
	e.tracer.RunStart(obs.RunInfo{
		N:         e.g.N(),
		Model:     e.model.String(),
		Engine:    e.mode.String(),
		Bandwidth: e.bandwidth,
		MaxRounds: e.maxRounds,
		Seed:      e.seed,
	})
}

// traceRound emits the per-round cost event for the round just delivered.
func (e *engine) traceRound(round, active int) {
	if !e.wantRounds {
		return
	}
	e.tracer.Round(obs.RoundEvent{
		Round:    round,
		Active:   active,
		Messages: e.lastMsgs,
		Bits:     e.lastBits,
		MaxLink:  e.lastMaxLink,
	})
}

// traceRunEnd emits the run-end event with the final aggregates.
func (e *engine) traceRunEnd(err error) {
	if e.tracer == nil {
		return
	}
	ev := obs.RunEnd{
		Rounds:           e.stats.Rounds,
		Messages:         e.stats.Messages,
		TotalBits:        e.stats.TotalBits,
		MaxRoundBits:     e.stats.MaxRoundBits,
		MaxRoundMessages: e.stats.MaxRoundMessages,
	}
	if err != nil {
		ev.Error = err.Error()
	}
	e.tracer.RunEnd(ev)
}

// graphLike is the slice of the graph API the engine needs; it exists so
// the engine never mutates the shared graph.
type graphLike interface {
	N() int
	Degree(v int) int
	Adj(v int) []int
	HasEdge(u, v int) bool
	Weight(v int) int64
}

// ctxErr polls the run's context without blocking: nil while the run may
// continue, an error wrapping ErrCanceled and the context's cause once it is
// done. Every round loop calls it at the same position — right after the
// MaxRounds check at the top of each round iteration — so all three drivers
// abort at the same granularity: a clean round boundary.
func (e *engine) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return fmt.Errorf("%w (%w)", ErrCanceled, context.Cause(e.ctx))
	default:
		return nil
	}
}

func (e *engine) setErr(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.firstErr == nil {
		e.firstErr = err
	}
}

func (e *engine) getErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firstErr
}

// nodeErr records a node failure. On a sharded batch sweep it is staged in
// the node's shard (each shard keeps its first error, i.e. its lowest-id
// failing node, because the in-shard sweep is sequential in id order); the
// barrier then adopts the lowest shard's error, reproducing exactly the
// "first error in id order" the sequential sweep records. Everywhere else
// it goes straight to the engine.
func (e *engine) nodeErr(nd *Node, err error) {
	if sh := nd.sh; sh != nil {
		if sh.err == nil {
			sh.err = err
		}
		return
	}
	e.setErr(err)
}

// newEngine validates cfg and builds the engine plus its nodes. It does not
// special-case the empty graph — each Run entry point returns an empty
// Result for n == 0 before driving the engine.
func newEngine(cfg Config) (*engine, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("congest: nil graph")
	}
	if cfg.Engine != EngineGoroutine && cfg.Engine != EngineBatch {
		return nil, fmt.Errorf("congest: unknown engine mode %d", int(cfg.Engine))
	}
	bwf := cfg.BandwidthFactor
	if bwf == 0 {
		bwf = 4
	}
	if bwf < 1 {
		return nil, fmt.Errorf("congest: bandwidth factor %d < 1", bwf)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 22
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("congest: negative shard count %d", cfg.Shards)
	}
	n := cfg.Graph.N()
	// Shard counts above n are allowed and simply leave some shards with
	// empty node ranges; the sharded driver's merge handles them like any
	// other shard (the stress suite runs such configurations on purpose).
	shards := cfg.Shards
	if shards < 1 || cfg.Engine != EngineBatch {
		shards = 1
	}
	eng := &engine{
		g:         cfg.Graph,
		model:     cfg.Model,
		mode:      cfg.Engine,
		bandwidth: bwf * IDBits(n),
		maxRounds: maxRounds,
		cutA:      cfg.CutA,
		ctx:       cfg.Ctx,
		shards:    shards,
		abort:     make(chan struct{}),
		tracer:    cfg.Tracer,
		seed:      cfg.Seed,
		seedBase:  cfg.Seed * 1_000_003,
	}
	if cfg.Tracer != nil {
		eng.wantRounds = cfg.Tracer.WantRounds()
	}
	eng.stats.Bandwidth = eng.bandwidth
	// One slab allocation for all node state; per-node maps (goroutine
	// outboxes, batch duplicate-send guards) and random streams are created
	// lazily so a million-node run pays only for what its algorithm uses.
	eng.nodeSlab = make([]Node, n)
	eng.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		nd := &eng.nodeSlab[i]
		nd.id = i
		nd.eng = eng
		if cfg.Engine != EngineBatch {
			nd.outbox = make(map[int]Message)
		}
		eng.nodes[i] = nd
	}
	if cfg.Engine == EngineGoroutine {
		eng.arrive = make(chan arrival, 2*n)
		eng.resume = make([]chan struct{}, n)
		for i := range eng.resume {
			eng.resume[i] = make(chan struct{}, 1)
		}
	}
	return eng, nil
}

// Run executes handler on every node of cfg.Graph under the configured
// model and engine and returns each node's output plus run statistics.
// Outputs[i] is node i's return value.
//
// The first error — from a handler, a MustSend violation, or the round
// limit — aborts the run and is returned. Runs are deterministic for a
// fixed Config (including Seed and Engine): nodes interact only at the
// round barrier, and every node's randomness comes from its private stream.
// The two engines produce identical results for identical configs.
func Run[T any](cfg Config, handler Handler[T]) (*Result[T], error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	if n == 0 {
		return &Result[T]{}, nil
	}
	outputs := make([]T, n)
	if eng.mode == EngineBatch {
		adapterRuns.Add(1)
		steppers := make([]stepper, n)
		for i := 0; i < n; i++ {
			steppers[i] = &coroStepper[T]{eng: eng, nd: eng.nodes[i], handler: handler, outputs: outputs}
		}
		if err := eng.runBatchToCompletion(steppers); err != nil {
			return nil, err
		}
		return &Result[T]{Outputs: outputs, Stats: eng.stats}, nil
	}

	eng.traceRunStart()
	for i := 0; i < n; i++ {
		go func(nd *Node) {
			defer func() {
				if r := recover(); r != nil {
					if np, ok := r.(nodePanic); ok {
						if np.err != errAborted {
							eng.setErr(np.err)
						}
					} else {
						eng.setErr(fmt.Errorf("congest: node %d panicked: %v [%s]", nd.id, r, obs.StackSummary(2, 6)))
					}
				}
				eng.arrive <- arrival{id: nd.id, done: true}
			}()
			out, err := handler(nd)
			if err != nil {
				eng.setErr(fmt.Errorf("congest: node %d: %w", nd.id, err))
				return
			}
			outputs[nd.id] = out
		}(eng.nodes[i])
	}

	runErr := eng.loop()
	// Unblock any node still parked at the barrier and wait for every
	// goroutine to finish, so no goroutine outlives Run.
	close(eng.abort)
	for eng.doneCount < n {
		if a := <-eng.arrive; a.done {
			eng.doneCount++
		}
	}
	if runErr == nil {
		runErr = eng.getErr()
	}
	eng.traceRunEnd(runErr)
	if runErr != nil {
		return nil, runErr
	}
	return &Result[T]{Outputs: outputs, Stats: eng.stats}, nil
}

// RunProgram executes a step-structured algorithm: newProgram is called once
// per node (in id order, before round 0) and the resulting program's Step
// runs once per round. On EngineBatch every step is a plain method call —
// no goroutines, channels, or barriers anywhere in the round loop; on
// EngineGoroutine the program is wrapped in a blocking handler, so one
// implementation serves both modes with identical results.
func RunProgram[T any](cfg Config, newProgram func(nd *Node) StepProgram[T]) (*Result[T], error) {
	if cfg.Engine != EngineBatch {
		return Run(cfg, func(nd *Node) (T, error) {
			prog := newProgram(nd)
			for {
				done, err := prog.Step(nd)
				if err != nil {
					var zero T
					return zero, err
				}
				if done {
					return prog.Output(), nil
				}
				nd.NextRound()
			}
		})
	}
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	if n == 0 {
		return &Result[T]{}, nil
	}
	outputs := make([]T, n)
	steppers := make([]stepper, n)
	for i := 0; i < n; i++ {
		steppers[i] = &progStepper[T]{eng: eng, nd: eng.nodes[i], prog: newProgram(eng.nodes[i]), outputs: outputs}
	}
	if err := eng.runBatchToCompletion(steppers); err != nil {
		return nil, err
	}
	return &Result[T]{Outputs: outputs, Stats: eng.stats}, nil
}

// loop drives barrier rounds until every node's handler has returned, a
// handler fails, or the round limit is reached. It returns the abort cause,
// or nil on clean termination.
func (e *engine) loop() error {
	active := len(e.nodes)
	for round := 0; ; round++ {
		if round > e.maxRounds {
			return errMaxRounds(e.maxRounds)
		}
		if err := e.ctxErr(); err != nil {
			return err
		}
		waiting := make([]int, 0, active)
		for got := 0; got < active; got++ {
			a := <-e.arrive
			if a.done {
				e.doneCount++
			} else {
				waiting = append(waiting, a.id)
			}
		}
		if err := e.getErr(); err != nil {
			return err
		}
		active = len(waiting)
		if active == 0 {
			return nil
		}
		e.stats.Rounds++
		e.deliver()
		e.traceRound(round, active)
		sort.Ints(waiting)
		for _, id := range waiting {
			e.resume[id] <- struct{}{}
		}
	}
}

// deliver moves all outboxes into inboxes, accounting bits. Senders are
// processed in id order so every inbox is sorted by sender.
func (e *engine) deliver() {
	for _, nd := range e.nodes {
		nd.inbox = nd.inbox[:0]
	}
	var roundBits, roundMsgs, maxLink int64
	for _, nd := range e.nodes {
		if len(nd.outbox) == 0 {
			continue
		}
		dests := make([]int, 0, len(nd.outbox))
		for to := range nd.outbox {
			dests = append(dests, to)
		}
		sort.Ints(dests)
		for _, to := range dests {
			m := nd.outbox[to]
			b := int64(m.Bits())
			e.stats.Messages++
			e.stats.TotalBits += b
			roundBits += b
			roundMsgs++
			// At one message per directed link per round, the largest
			// message is the max single-link bit volume; only paid for when
			// a tracer asked for round events.
			if e.wantRounds && b > maxLink {
				maxLink = b
			}
			if e.cutA != nil && e.cutA.Contains(nd.id) != e.cutA.Contains(to) {
				e.stats.CutBits += b
				e.stats.CutMessages++
			}
			e.nodes[to].inbox = append(e.nodes[to].inbox, Incoming{From: nd.id, Msg: m})
		}
		nd.outbox = make(map[int]Message, len(nd.outbox))
	}
	e.lastBits, e.lastMsgs, e.lastMaxLink = roundBits, roundMsgs, maxLink
	if roundBits > e.stats.MaxRoundBits {
		e.stats.MaxRoundBits = roundBits
	}
	if roundMsgs > e.stats.MaxRoundMessages {
		e.stats.MaxRoundMessages = roundMsgs
	}
}
