package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONLWriterEmitsTypedRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.RunStart(RunInfo{N: 4, Model: "CONGEST", Engine: "batch", Bandwidth: 16, MaxRounds: 100, Seed: 7})
	w.Round(RoundEvent{Round: 0, Active: 4, Messages: 8, Bits: 32, MaxLink: 4})
	w.SpanBegin(Span{Name: "phase1", Index: 0, Round: 0})
	w.SpanEnd(Span{Name: "phase1", Index: 0, Round: 3})
	w.KernelSolve(KernelSolveEvent{Path: "direct", InputN: 4, Cost: 2, Optimal: true})
	w.RunEnd(RunEnd{Rounds: 4, Messages: 8, TotalBits: 32})
	w.Emit("job", struct {
		Index int `json:"index"`
	}{5})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantTypes := []string{"run-start", "round", "span-begin", "span-end", "kernel-solve", "run-end", "job"}
	if len(lines) != len(wantTypes) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(wantTypes), buf.String())
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if m["type"] != wantTypes[i] {
			t.Fatalf("line %d type = %v, want %q", i, m["type"], wantTypes[i])
		}
	}
	// The type discriminator is spliced, not nested: the event payload's own
	// fields sit at the top level.
	var round struct {
		Type string `json:"type"`
		Bits int64  `json:"bits"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &round); err != nil || round.Bits != 32 {
		t.Fatalf("round record not flat: %s (err %v)", lines[1], err)
	}
}

func TestJSONLWriterRejectsNonObject(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Emit("bad", 42)
	if err := w.Close(); err == nil {
		t.Fatal("emitting a non-object record must surface an error")
	}
}

func TestCollectorSpanSummary(t *testing.T) {
	c := &Collector{}
	// Two phase1-iter completions (rounds 1-3 and 4-5), one leader-solve of
	// zero length, interleaved with an unmatched end that must be ignored.
	c.SpanEnd(Span{Name: "ghost", Round: 0})
	c.SpanBegin(Span{Name: "phase1-iter", Round: 1})
	c.SpanEnd(Span{Name: "phase1-iter", Round: 3})
	c.SpanBegin(Span{Name: "phase1-iter", Round: 4})
	c.SpanEnd(Span{Name: "phase1-iter", Round: 5})
	c.SpanBegin(Span{Name: "leader-solve", Round: 9})
	c.SpanEnd(Span{Name: "leader-solve", Round: 9})
	got := c.SpanSummary()
	want := "phase1-iter*2:3;leader-solve*1:0"
	if got != want {
		t.Fatalf("SpanSummary = %q, want %q", got, want)
	}
	if names := c.SpanNames(); len(names) != 2 || names[0] != "leader-solve" || names[1] != "phase1-iter" {
		t.Fatalf("SpanNames = %v", names)
	}
	if open := c.OpenSpans(); len(open) != 0 {
		t.Fatalf("OpenSpans = %v, want none", open)
	}
}

func TestCollectorRefcountedOverlap(t *testing.T) {
	c := &Collector{}
	// Nested begins of the same name collapse to one completion spanning the
	// outermost interval — the Collector mirrors the engine's refcounting
	// for tracers attached directly (unit tests, custom sinks).
	c.SpanBegin(Span{Name: "phase1", Round: 0})
	c.SpanBegin(Span{Name: "phase1", Round: 1})
	c.SpanEnd(Span{Name: "phase1", Round: 7})
	if open := c.OpenSpans(); len(open) != 1 || open[0] != "phase1" {
		t.Fatalf("OpenSpans = %v, want [phase1]", open)
	}
	c.SpanEnd(Span{Name: "phase1", Round: 8})
	if got := c.SpanSummary(); got != "phase1*1:8" {
		t.Fatalf("SpanSummary = %q, want phase1*1:8", got)
	}
}

func TestMultiRoutesRoundsBySubscription(t *testing.T) {
	spanOnly := &Collector{}
	full := &Collector{CollectRounds: true}
	m := Multi{spanOnly, full}
	if !m.WantRounds() {
		t.Fatal("Multi with a rounds subscriber must want rounds")
	}
	m.Round(RoundEvent{Round: 0, Bits: 8})
	if got := len(full.RoundEvents()); got != 1 {
		t.Fatalf("full collector saw %d rounds, want 1", got)
	}
	if got := len(spanOnly.RoundEvents()); got != 0 {
		t.Fatalf("span-only collector saw %d rounds, want 0", got)
	}
	if (Multi{spanOnly}).WantRounds() {
		t.Fatal("Multi of span-only tracers must not want rounds")
	}
}

func helperPanicsite() string { return StackSummary(0, 4) }

func TestStackSummaryDeterministicAndClean(t *testing.T) {
	a, b := helperPanicsite(), helperPanicsite()
	if a != b {
		t.Fatalf("two identical call sites differ:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "helperPanicsite") || !strings.Contains(a, "obs_test.go") {
		t.Fatalf("summary missing caller frame: %s", a)
	}
	if strings.Contains(a, "0x") || strings.Contains(a, "goroutine ") {
		t.Fatalf("summary contains nondeterministic material: %s", a)
	}
	if frames := strings.Count(a, " <- ") + 1; frames > 4 {
		t.Fatalf("max frames not honored: %d frames in %s", frames, a)
	}
}

func TestReadRuntimeMonotonicCounters(t *testing.T) {
	before := ReadRuntime()
	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	after := ReadRuntime()
	if after.AllocBytes < before.AllocBytes {
		t.Fatalf("alloc counter went backwards: %d -> %d", before.AllocBytes, after.AllocBytes)
	}
	if before.Goroutines <= 0 {
		t.Fatalf("goroutine count %d", before.Goroutines)
	}
}
