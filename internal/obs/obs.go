// Package obs is the observability substrate threaded through both CONGEST
// engines, the step primitives, the kernel solver, and the harness: a
// zero-cost-when-disabled Tracer interface plus ready-made sinks.
//
// The contract with the hot path is strict: a nil Tracer costs one pointer
// comparison and zero allocations per event site, and an attached Tracer
// must never perturb a seeded run — all event payloads are pure functions of
// the deterministic run state (wall-clock durations appear only in fields
// that are excluded from the determinism-checked result records).
//
// Three implementations ship with the package:
//
//   - JSONLWriter streams every event as one JSON object per line with a
//     "type" discriminator — the format cmd/powertrace parses;
//   - Collector aggregates in memory (span summaries, round totals) for the
//     harness and for tests;
//   - Multi fans events out to several tracers.
//
// Concurrency: the goroutine engine invokes SpanBegin/SpanEnd from handler
// goroutines (serialized by the engine's span mutex, but interleaved with
// driver-side Round calls), so Tracer implementations must be safe for
// concurrent use. Within one round the relative order of span marks from
// different nodes is unspecified; everything else is ordered.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
)

// Tracer receives run events from an engine (and kernel-solve events from
// the leader's local solver). A nil Tracer means tracing is disabled; every
// emission site guards with a nil check so the disabled path pays one branch.
type Tracer interface {
	// RunStart is emitted once, before round 0 begins.
	RunStart(RunInfo)
	// Round is emitted once per completed communication round, in round
	// order, only when WantRounds reported true at run start.
	Round(RoundEvent)
	// SpanBegin marks the opening of a phase span at the given round.
	SpanBegin(Span)
	// SpanEnd marks the close of a phase span. Spans are half-open round
	// intervals [begin, end): a span that begins and ends at the same round
	// consumed no communication rounds (e.g. a leader-local solve).
	SpanEnd(Span)
	// KernelSolve is emitted by the Phase-II leader's kernelize-then-solve
	// local computation.
	KernelSolve(KernelSolveEvent)
	// RunEnd is emitted once, after the run resolves (success or error).
	RunEnd(RunEnd)
	// WantRounds reports whether this tracer wants per-round events. The
	// engine samples it once at run start; returning false lets span-only
	// tracers skip the per-round accounting (max single-link bits requires
	// an inbox walk every round).
	WantRounds() bool
}

// RunInfo describes the run an engine is starting.
type RunInfo struct {
	N         int    `json:"n"`
	Model     string `json:"model"`
	Engine    string `json:"engine"`
	Bandwidth int    `json:"bandwidth"`
	MaxRounds int    `json:"maxRounds"`
	Seed      int64  `json:"seed"`
}

// RoundEvent is the per-round cost record: how many nodes were still
// active, and how much traffic the round carried. MaxLink is the largest
// bit volume any single directed link carried this round — the congestion
// figure the end-of-run MaxRoundBits scalar only hints at.
type RoundEvent struct {
	Round    int   `json:"round"`
	Active   int   `json:"active"`
	Messages int64 `json:"msgs"`
	Bits     int64 `json:"bits"`
	MaxLink  int64 `json:"maxLink"`
}

// Span identifies one phase-span mark. Index distinguishes repeated spans
// of the same name (Phase-I iteration number, MDS phase number); Round is
// the engine round at which the mark occurred. Msgs is the cumulative
// network message count delivered BEFORE that round — a round-boundary
// snapshot, so end.Msgs − begin.Msgs prices exactly the traffic of the
// half-open round interval [begin, end), deterministically on every engine.
type Span struct {
	Name  string `json:"name"`
	Index int    `json:"index"`
	Round int    `json:"round"`
	Msgs  int64  `json:"msgs,omitempty"`
}

// KernelSolveEvent describes one leader-local kernelize-then-solve call.
// The *NS durations are wall-clock and appear only in trace output, never
// in determinism-checked results.
type KernelSolveEvent struct {
	Path        string         `json:"path"`
	InputN      int            `json:"inputN"`
	InputM      int            `json:"inputM"`
	KernelN     int            `json:"kernelN"`
	KernelM     int            `json:"kernelM"`
	SearchNodes int64          `json:"searchNodes"`
	ForcedCost  int64          `json:"forcedCost"`
	LowerBound  int64          `json:"lowerBound"`
	Cost        int64          `json:"cost"`
	Optimal     bool           `json:"optimal"`
	Rules       map[string]int `json:"rules,omitempty"`
	DurationNS  int64          `json:"durationNS"`
	ReduceNS    int64          `json:"reduceNS"`
	SolveNS     int64          `json:"solveNS"`
}

// RunEnd carries the final run aggregates (mirroring congest.Stats) and the
// run error, if any.
type RunEnd struct {
	Rounds           int    `json:"rounds"`
	Messages         int64  `json:"messages"`
	TotalBits        int64  `json:"totalBits"`
	MaxRoundBits     int64  `json:"maxRoundBits"`
	MaxRoundMessages int64  `json:"maxRoundMessages"`
	Error            string `json:"error,omitempty"`
}

// JSONLWriter is a Tracer that streams every event as one JSON object per
// line, each carrying a "type" field ("run-start", "round", "span-begin",
// "span-end", "kernel-solve", "run-end"). It is safe for concurrent use and
// buffers internally; call Close (or Flush) to drain.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewJSONLWriter returns a JSONLWriter streaming to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriter(w)}
}

// Emit writes one record of the given type. The type discriminator is
// spliced in front of v's own fields, so v must marshal to a JSON object.
// Arbitrary record types (the harness's job records) go through here too.
func (w *JSONLWriter) Emit(typ string, v any) {
	body, err := json.Marshal(v)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err != nil {
		w.err = err
		return
	}
	if len(body) < 2 || body[0] != '{' {
		w.err = fmt.Errorf("obs: record %q did not marshal to an object", typ)
		return
	}
	w.bw.WriteString(`{"type":`)
	b, _ := json.Marshal(typ)
	w.bw.Write(b)
	if len(body) > 2 { // non-empty object: {"type":"x","field":...}
		w.bw.WriteByte(',')
		w.bw.Write(body[1 : len(body)-1])
	}
	w.bw.WriteByte('}')
	if err := w.bw.WriteByte('\n'); err != nil {
		w.err = err
	}
}

// RunStart implements Tracer.
func (w *JSONLWriter) RunStart(e RunInfo) { w.Emit("run-start", e) }

// Round implements Tracer.
func (w *JSONLWriter) Round(e RoundEvent) { w.Emit("round", e) }

// SpanBegin implements Tracer.
func (w *JSONLWriter) SpanBegin(s Span) { w.Emit("span-begin", s) }

// SpanEnd implements Tracer.
func (w *JSONLWriter) SpanEnd(s Span) { w.Emit("span-end", s) }

// KernelSolve implements Tracer.
func (w *JSONLWriter) KernelSolve(e KernelSolveEvent) { w.Emit("kernel-solve", e) }

// RunEnd implements Tracer.
func (w *JSONLWriter) RunEnd(e RunEnd) { w.Emit("run-end", e) }

// WantRounds implements Tracer: a trace file wants everything.
func (w *JSONLWriter) WantRounds() bool { return true }

// Flush drains the internal buffer and returns the first error seen.
func (w *JSONLWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Close flushes; the caller owns the underlying writer.
func (w *JSONLWriter) Close() error { return w.Flush() }

// spanAgg accumulates one (name, index) span instance inside a Collector.
// Aggregation is keyed by the full instance, not the name alone: the engines
// guarantee deterministic begin/end rounds per instance, but the emission
// ORDER of marks from different instances within one round is unspecified on
// the goroutine engine (a node's end(iter i) and begin(iter i+1) happen in
// one handler activation, racing against its peers). Per-instance
// aggregation makes the summary order-insensitive, hence deterministic.
type spanAgg struct {
	firstRound int   // round of the first begin — deterministic sort key
	count      int   // completed begin→end pairs
	rounds     int   // total rounds spanned across completions
	msgs       int64 // total messages delivered across completed spans
	open       int   // currently open marks
	openRound  int   // round of the open mark (for rounds accounting)
	openMsgs   int64 // cumulative-message snapshot of the open mark
}

// spanID keys a Collector's aggregation: one logical span instance.
type spanID struct {
	name  string
	index int
}

// Collector is a Tracer that aggregates in memory. The zero value collects
// spans, kernel solves, and run aggregates but skips per-round events; set
// CollectRounds before the run to keep those too. Safe for concurrent use.
type Collector struct {
	// CollectRounds makes WantRounds return true so the engine emits (and
	// the Collector retains) per-round events. Leave false for the cheap
	// span-only mode the harness attaches to every job.
	CollectRounds bool

	mu      sync.Mutex
	info    RunInfo
	end     RunEnd
	started bool
	ended   bool
	rounds  []RoundEvent
	spans   map[spanID]*spanAgg
	begins  []Span
	ends    []Span
	kernels []KernelSolveEvent
}

// RunStart implements Tracer.
func (c *Collector) RunStart(e RunInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.info = e
	c.started = true
}

// Round implements Tracer.
func (c *Collector) Round(e RoundEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rounds = append(c.rounds, e)
}

// SpanBegin implements Tracer.
func (c *Collector) SpanBegin(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spans == nil {
		c.spans = make(map[spanID]*spanAgg)
	}
	id := spanID{s.Name, s.Index}
	a := c.spans[id]
	if a == nil {
		a = &spanAgg{firstRound: s.Round}
		c.spans[id] = a
	}
	a.open++
	if a.open == 1 {
		a.openRound = s.Round
		a.openMsgs = s.Msgs
	}
	c.begins = append(c.begins, s)
}

// SpanEnd implements Tracer.
func (c *Collector) SpanEnd(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.spans[spanID{s.Name, s.Index}]
	if a == nil || a.open == 0 {
		return // unmatched end: engine filtering should prevent this
	}
	a.open--
	if a.open == 0 {
		a.count++
		a.rounds += s.Round - a.openRound
		a.msgs += s.Msgs - a.openMsgs
	}
	c.ends = append(c.ends, s)
}

// KernelSolve implements Tracer.
func (c *Collector) KernelSolve(e KernelSolveEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.kernels = append(c.kernels, e)
}

// RunEnd implements Tracer.
func (c *Collector) RunEnd(e RunEnd) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.end = e
	c.ended = true
}

// WantRounds implements Tracer.
func (c *Collector) WantRounds() bool { return c.CollectRounds }

// RoundEvents returns the collected per-round events in round order.
func (c *Collector) RoundEvents() []RoundEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RoundEvent(nil), c.rounds...)
}

// SpanMarks returns every begin and end mark seen, in arrival order.
func (c *Collector) SpanMarks() (begins, ends []Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.begins...), append([]Span(nil), c.ends...)
}

// KernelSolves returns the collected kernel-solve events.
func (c *Collector) KernelSolves() []KernelSolveEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]KernelSolveEvent(nil), c.kernels...)
}

// Run returns the run-start and run-end records and whether both arrived.
func (c *Collector) Run() (RunInfo, RunEnd, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.info, c.end, c.started && c.ended
}

// OpenSpans returns the names of spans left open (begin without end),
// sorted; empty on a well-formed completed run.
func (c *Collector) OpenSpans() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]bool{}
	for id, a := range c.spans {
		if a.open > 0 {
			seen[id.name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SpanSummary renders the completed spans as a deterministic single-line
// summary: entries "name*count:rounds" (count completions totalling rounds
// communication rounds), ordered by first-begin round then name, joined by
// ";". Determinism holds because span marks happen at engine-determined
// rounds — the summary is a pure function of the seeded run.
func (c *Collector) SpanSummary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	type entry struct {
		name       string
		firstRound int
		count      int
		rounds     int
	}
	byName := map[string]*entry{}
	for id, a := range c.spans {
		if a.count == 0 {
			continue
		}
		e := byName[id.name]
		if e == nil {
			e = &entry{name: id.name, firstRound: a.firstRound}
			byName[id.name] = e
		}
		if a.firstRound < e.firstRound {
			e.firstRound = a.firstRound
		}
		e.count += a.count
		e.rounds += a.rounds
	}
	entries := make([]*entry, 0, len(byName))
	for _, e := range byName {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].firstRound != entries[j].firstRound {
			return entries[i].firstRound < entries[j].firstRound
		}
		return entries[i].name < entries[j].name
	})
	var b strings.Builder
	for i, e := range entries {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s*%d:%d", e.name, e.count, e.rounds)
	}
	return b.String()
}

// SpanMessages returns, per span name, the total network messages delivered
// during completed spans of that name (summed over instances, computed from
// the round-boundary snapshots the engines stamp on every mark). Like
// SpanSummary it is a pure function of the seeded run, identical on every
// engine — it is how the harness prices the Phase-II gather for
// BENCH_sparsify.json's legacy-vs-sparsified comparison.
func (c *Collector) SpanMessages() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64)
	for id, a := range c.spans {
		if a.count > 0 {
			out[id.name] += a.msgs
		}
	}
	return out
}

// SpanNames returns the distinct names of completed spans, sorted.
func (c *Collector) SpanNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]bool{}
	for id, a := range c.spans {
		if a.count > 0 {
			seen[id.name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Multi fans every event out to each tracer in order.
type Multi []Tracer

// RunStart implements Tracer.
func (m Multi) RunStart(e RunInfo) {
	for _, t := range m {
		t.RunStart(e)
	}
}

// Round implements Tracer: only tracers that asked for rounds receive them.
func (m Multi) Round(e RoundEvent) {
	for _, t := range m {
		if t.WantRounds() {
			t.Round(e)
		}
	}
}

// SpanBegin implements Tracer.
func (m Multi) SpanBegin(s Span) {
	for _, t := range m {
		t.SpanBegin(s)
	}
}

// SpanEnd implements Tracer.
func (m Multi) SpanEnd(s Span) {
	for _, t := range m {
		t.SpanEnd(s)
	}
}

// KernelSolve implements Tracer.
func (m Multi) KernelSolve(e KernelSolveEvent) {
	for _, t := range m {
		t.KernelSolve(e)
	}
}

// RunEnd implements Tracer.
func (m Multi) RunEnd(e RunEnd) {
	for _, t := range m {
		t.RunEnd(e)
	}
}

// WantRounds implements Tracer: true if any member wants rounds.
func (m Multi) WantRounds() bool {
	for _, t := range m {
		if t.WantRounds() {
			return true
		}
	}
	return false
}

// StackSummary captures a deterministic one-line summary of the calling
// goroutine's stack: up to max frames of "func (file:line)" joined by
// " <- ", with runtime-internal frames dropped. Unlike debug.Stack it
// contains no goroutine IDs or hex words, so it is safe to embed in
// determinism-checked result records. skip counts frames above the caller
// to omit (0 = start at the caller of StackSummary).
func StackSummary(skip, max int) string {
	if max <= 0 {
		max = 8
	}
	pcs := make([]uintptr, max+8)
	n := runtime.Callers(skip+2, pcs)
	if n == 0 {
		return ""
	}
	frames := runtime.CallersFrames(pcs[:n])
	var b strings.Builder
	count := 0
	for count < max {
		f, more := frames.Next()
		if f.Function != "" && !strings.HasPrefix(f.Function, "runtime.") {
			if count > 0 {
				b.WriteString(" <- ")
			}
			fmt.Fprintf(&b, "%s (%s:%d)", f.Function, filepath.Base(f.File), f.Line)
			count++
		}
		if !more {
			break
		}
	}
	return b.String()
}

// RuntimeSnapshot is a point-in-time read of the runtime/metrics counters
// the harness attaches to job results. All values are machine- and
// timing-dependent: they never enter determinism-checked output.
type RuntimeSnapshot struct {
	HeapBytes  uint64 // /memory/classes/heap/objects:bytes
	AllocBytes uint64 // /gc/heap/allocs:bytes (monotonic)
	GCCycles   uint64 // /gc/cycles/total:gc-cycles (monotonic)
	Goroutines int
}

var runtimeSamples = []metrics.Sample{
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/heap/allocs:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
}

// ReadRuntime samples the runtime metrics snapshot.
func ReadRuntime() RuntimeSnapshot {
	samples := make([]metrics.Sample, len(runtimeSamples))
	copy(samples, runtimeSamples)
	metrics.Read(samples)
	var s RuntimeSnapshot
	if samples[0].Value.Kind() == metrics.KindUint64 {
		s.HeapBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		s.AllocBytes = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		s.GCCycles = samples[2].Value.Uint64()
	}
	s.Goroutines = runtime.NumGoroutine()
	return s
}

// JobMetrics is the per-job runner metrics record the harness attaches to
// JobResult. Everything here is wall-clock or machine state: the field is
// excluded from serialized results and neutralized in differential tests.
type JobMetrics struct {
	QueueNS    int64  `json:"queueNS"`    // submit-to-start latency
	WallNS     int64  `json:"wallNS"`     // job execution wall time
	HeapBytes  uint64 `json:"heapBytes"`  // heap objects after the job
	AllocBytes uint64 `json:"allocBytes"` // bytes allocated during the job
	GCCycles   uint64 `json:"gcCycles"`   // GC cycles during the job
	Goroutines int    `json:"goroutines"` // goroutines after the job
}
