package core

import (
	"math"
	"math/rand"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/graph"
)

// blockingMVCCliqueRandomized is the original goroutine-style handler
// implementation of Theorem 11, kept verbatim as a reference for
// TestStepCliqueRandMatchesBlockingReference.
func blockingMVCCliqueRandomized(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	n := g.N()
	solver := opts.localSolver()
	tau := int(math.Ceil(8/eps)) + 2
	randomIters := 8*congest.IDBits(n) + 16
	rankW := 4 * congest.IDBits(n)
	rankMax := int64(1) << uint(rankW)

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CongestedClique,
		Engine:          opts.engine(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		inR, inS := true, false
		succeeded := false
		idw := congest.IDBits(n)

		for it := 0; ; it++ {
			// Round 1: live-status exchange over G-edges.
			nd.BroadcastNeighbors(congest.NewIntWidth(boolBit(inR), 1))
			nd.NextRound()
			live := make([]int, 0, nd.Degree())
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					live = append(live, in.From)
				}
			}
			dR := len(live)
			candidate := !succeeded && dR > tau

			// Round 2: global termination OR via the clique.
			nd.Broadcast(congest.NewIntWidth(boolBit(candidate), 1))
			nd.NextRound()
			any := candidate
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					any = true
				}
			}
			if !any {
				break
			}

			// Round 3: candidates announce ranks to their G-neighbors.
			// After the w.h.p. horizon, ranks deterministically become the
			// candidate's id, forcing the global maximum to succeed.
			var myRank int64
			if candidate {
				if it < randomIters {
					myRank = nd.Rand().Int63n(rankMax)
				} else {
					myRank = int64(nd.ID())
				}
				nd.BroadcastNeighbors(rankMsg{Rank: myRank, Width: rankW})
			}
			nd.NextRound()
			voteFor := -1
			var bestRank int64 = -1
			if inR {
				for _, in := range nd.Recv() {
					m, ok := in.Msg.(rankMsg)
					if !ok {
						continue
					}
					// Highest rank wins; ties break toward the higher id
					// (deterministic, consistent at every voter).
					if m.Rank > bestRank || (m.Rank == bestRank && in.From > voteFor) {
						bestRank = m.Rank
						voteFor = in.From
					}
				}
			}

			// Round 4: voters announce their chosen candidate to all
			// G-neighbors; candidates count votes naming them.
			if voteFor != -1 {
				nd.BroadcastNeighbors(congest.NewIntWidth(int64(voteFor), idw))
			}
			nd.NextRound()
			votes := 0
			for _, in := range nd.Recv() {
				if m, ok := in.Msg.(congest.Int); ok && int(m.V) == nd.ID() {
					votes++
				}
			}
			success := candidate && votes*8 >= dR

			// Round 5: successful candidates move N(c) into S.
			if success {
				nd.BroadcastNeighbors(congest.Flag{})
				succeeded = true
			}
			nd.NextRound()
			if len(nd.Recv()) > 0 {
				inS = true
				inR = false
			}
		}

		sol := cliquePhaseII(nd, inR, tau, solver)
		return nodeOut{InSolution: inS || sol, InPhaseI: inS}, nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(res.Outputs, res.Stats), nil
}

func TestStepCliqueRandMatchesBlockingReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := map[string]*graph.Graph{
		"single":  graph.NewBuilder(1).Build(),
		"edge":    graph.Path(2),
		"path9":   graph.Path(9),
		"star16":  graph.Star(16),
		"cycle11": graph.Cycle(11),
		"grid4x5": graph.Grid(4, 5),
		"gnp30":   graph.ConnectedGNP(30, 0.2, rng),
		"tree35":  graph.RandomTree(35, rng),
	}
	for name, g := range graphs {
		for _, eps := range []float64{1, 0.5, 0.25} {
			for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
				opts := &Options{Seed: 7, Engine: mode}
				want, err := blockingMVCCliqueRandomized(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: reference: %v", name, eps, mode, err)
				}
				got, err := ApproxMVCCliqueRandomized(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: step: %v", name, eps, mode, err)
				}
				if !got.Solution.Equal(want.Solution) {
					t.Fatalf("%s eps=%v %v: solutions differ:\nstep:     %v\nblocking: %v",
						name, eps, mode, got.Solution.Elements(), want.Solution.Elements())
				}
				if got.PhaseISize != want.PhaseISize {
					t.Fatalf("%s eps=%v %v: PhaseISize %d vs %d", name, eps, mode, got.PhaseISize, want.PhaseISize)
				}
				if got.Stats != want.Stats {
					t.Fatalf("%s eps=%v %v: stats differ:\nstep:     %+v\nblocking: %+v",
						name, eps, mode, got.Stats, want.Stats)
				}
			}
		}
	}
}
