package core

import (
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// ApproxMVCCongestRandomized runs Algorithm 1 with the randomized voting
// Phase I of Section 3.3 in the plain CONGEST model. As the paper notes,
// "while this faster implementation itself works in the CONGEST model it
// still does not improve the overall running time" — Phase II's O(n/ε)
// leader gather dominates — but Phase I drains heavy neighborhoods in
// O(log n) iterations instead of O(εn), which this implementation makes
// measurable (compare Result.Stats against ApproxMVCCongest's).
//
// Without the clique's cheap global OR, termination detection is replaced
// by a fixed schedule: 8·log₂n + 16 random-rank iterations (enough w.h.p.
// by the potential argument of Theorem 11), then n/(τ+1)+1 deterministic
// iterations with rank = id, each of which is guaranteed to retire the
// globally maximal candidate.
func ApproxMVCCongestRandomized(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	if _, err := epsilonToL(eps); err != nil {
		return nil, err
	}
	if eps > 1 {
		return &Result{Solution: bitset.Full(g.N()), PhaseISize: g.N()}, nil
	}
	if err := requireConnected(g); err != nil {
		return nil, err
	}
	n := g.N()
	solver := opts.localSolver()
	tau := int(math.Ceil(8/eps)) + 2
	randomIters := 8*congest.IDBits(n) + 16
	fallbackIters := n/(tau+1) + 1
	totalIters := randomIters + fallbackIters
	rankW := 4 * congest.IDBits(n)
	rankMax := int64(1) << uint(rankW)

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		inR, inS := true, false
		succeeded := false
		idw := congest.IDBits(n)

		for it := 0; it < totalIters; it++ {
			// Round 1: live-status exchange.
			nd.BroadcastNeighbors(congest.NewIntWidth(boolBit(inR), 1))
			nd.NextRound()
			dR := 0
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					dR++
				}
			}
			candidate := !succeeded && dR > tau

			// Round 2: candidate ranks.
			var myRank int64
			if candidate {
				if it < randomIters {
					myRank = nd.Rand().Int63n(rankMax)
				} else {
					myRank = int64(nd.ID())
				}
				nd.BroadcastNeighbors(rankMsg{Rank: myRank, Width: rankW})
			}
			nd.NextRound()
			voteFor := -1
			var bestRank int64 = -1
			if inR {
				for _, in := range nd.Recv() {
					m, ok := in.Msg.(rankMsg)
					if !ok {
						continue
					}
					if m.Rank > bestRank || (m.Rank == bestRank && in.From > voteFor) {
						bestRank = m.Rank
						voteFor = in.From
					}
				}
			}

			// Round 3: votes.
			if voteFor != -1 {
				nd.BroadcastNeighbors(congest.NewIntWidth(int64(voteFor), idw))
			}
			nd.NextRound()
			votes := 0
			for _, in := range nd.Recv() {
				if m, ok := in.Msg.(congest.Int); ok && int(m.V) == nd.ID() {
					votes++
				}
			}
			success := candidate && votes*8 >= dR

			// Round 4: successful candidates retire their neighborhoods.
			if success {
				nd.BroadcastNeighbors(congest.Flag{})
				succeeded = true
			}
			nd.NextRound()
			if len(nd.Recv()) > 0 {
				inS = true
				inR = false
			}
		}

		// Standard CONGEST Phase II (as in Algorithm 1): every node now has
		// at most τ live neighbors.
		nd.Broadcast(congest.NewIntWidth(boolBit(inR), 1))
		nd.NextRound()
		uNbrs := make([]int, 0, nd.Degree())
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				uNbrs = append(uNbrs, in.From)
			}
		}
		leader := primitives.MinIDLeader(nd)
		tree := primitives.BFSTree(nd, leader)
		items := make([]congest.Message, 0, len(uNbrs))
		for _, u := range uNbrs {
			items = append(items, congest.NewPair(n, int64(nd.ID()), int64(u)))
		}
		gathered := primitives.GatherAtRoot(nd, tree, items)
		var solutionIDs []congest.Message
		if nd.ID() == leader {
			cover := leaderSolveRemainder(n, gathered, solver)
			for _, v := range cover.Elements() {
				solutionIDs = append(solutionIDs, congest.NewIntWidth(int64(v), idw))
			}
		}
		all := primitives.FloodItemsFromRoot(nd, tree, solutionIDs)
		inRStar := false
		for _, m := range all {
			if m.(congest.Int).V == int64(nd.ID()) {
				inRStar = true
			}
		}
		return nodeOut{InSolution: inS || inRStar, InPhaseI: inS}, nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(res.Outputs, res.Stats), nil
}
