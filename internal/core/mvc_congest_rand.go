package core

import (
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// ApproxMVCCongestRandomized runs Algorithm 1 with the randomized voting
// Phase I of Section 3.3 in the plain CONGEST model, targeting the power
// graph Gʳ selected by Options.Power (default r = 2; Phase II's
// reconstruction is r-aware, Phase I is power-independent for r ≥ 2 and
// skipped at r = 1). As the paper notes,
// "while this faster implementation itself works in the CONGEST model it
// still does not improve the overall running time" — Phase II's O(n/ε)
// leader gather dominates — but Phase I drains heavy neighborhoods in
// O(log n) iterations instead of O(εn), which this implementation makes
// measurable (compare Result.Stats against ApproxMVCCongest's).
//
// Without the clique's cheap global OR, termination detection is replaced
// by a fixed schedule: 8·log₂n + 16 random-rank iterations (enough w.h.p.
// by the potential argument of Theorem 11), then n/(τ+1)+1 deterministic
// iterations with rank = id, each of which is guaranteed to retire the
// globally maximal candidate.
//
// The algorithm is a congest.StepProgram (StepVotingPhase for Phase I,
// StepLeaderPipeline for Phase II); the blocking reference is preserved in
// mvc_congest_rand_equiv_test.go and TestStepMVCRandMatchesBlockingReference
// proves the two indistinguishable.
func ApproxMVCCongestRandomized(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	if _, err := epsilonToL(eps); err != nil {
		return nil, err
	}
	r, err := opts.power()
	if err != nil {
		return nil, err
	}
	if eps > 1 {
		return &Result{Solution: bitset.Full(g.N()), PhaseISize: g.N()}, nil
	}
	if err := requireConnected(g); err != nil {
		return nil, err
	}
	n := g.N()
	solver, solveRep := opts.leaderSolver()
	tau := int(math.Ceil(8/eps)) + 2
	randomIters := 8*congest.IDBits(n) + 16
	fallbackIters := n/(tau+1) + 1
	maxIters := randomIters + fallbackIters
	if r == 1 {
		// Phase I's committed neighborhoods are Gʳ-cliques only for r ≥ 2;
		// at r = 1 the voting phase is skipped entirely and Phase II solves
		// G itself.
		randomIters, maxIters = 0, 0
	}

	cfg := congest.Config{
		Graph:           g,
		Ctx:             opts.ctx(),
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		Shards:          opts.shards(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
		Tracer:          opts.tracer(),
	}
	res, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[nodeOut] {
		return &mvcRandCongestProgram{
			n: n, power: r, idw: congest.IDBits(n), solver: solver, gmode: opts.gatherMode(),
			voting: primitives.NewStepVotingPhase(primitives.VotingConfig{
				Tau:         tau,
				RandomIters: randomIters,
				MaxIters:    maxIters,
				RankWidth:   4 * congest.IDBits(n),
				IDWidth:     congest.IDBits(n),
			}),
		}
	})
	if err != nil {
		return nil, err
	}
	return assembleWithSolve(res.Outputs, res.Stats, solveRep), nil
}

// mvcRandCongestProgram is Section 3.3 in step form: the randomized voting
// phase, the final U-status exchange, then the standard leader pipeline.
type mvcRandCongestProgram struct {
	n, power, idw int
	solver        LocalSolver
	gmode         GatherMode

	voting  *primitives.StepVotingPhase
	status  *primitives.StepStatusExchange
	gather  *powerGather
	pipe    *primitives.StepLeaderPipeline
	stage   int
	inRStar bool
}

func (p *mvcRandCongestProgram) Step(nd *congest.Node) (bool, error) {
	for {
		switch p.stage {
		case 0:
			if !p.voting.Step(nd) {
				return false, nil
			}
			p.status = primitives.NewStepStatusExchange(p.voting.InR())
			p.stage = 1
		case 1:
			if !p.status.Step(nd) {
				return false, nil
			}
			if p.power == 2 {
				items := uEdgeItems(p.n, nd.ID(), p.status.On())
				p.pipe = primitives.NewStepLeaderPipeline(nd, items, func(gathered []congest.Message) []congest.Message {
					return coverIDItems(leaderSolveRemainder(p.n, gathered, p.solver), p.idw)
				})
				p.stage = 3
				continue
			}
			p.gather = newPowerGather(p.power, p.voting.InR(), p.status.On(), p.gmode)
			p.stage = 2
		case 2:
			if !p.gather.Step(nd) {
				return false, nil
			}
			items := powerEdgeItems(nd, p.gather, p.voting.InR())
			p.pipe = primitives.NewStepLeaderPipeline(nd, items, func(gathered []congest.Message) []congest.Message {
				return coverIDItems(leaderSolvePowerRemainder(p.n, p.power, gathered, p.solver), p.idw)
			})
			p.stage = 3
		default:
			if !p.pipe.Step(nd) {
				return false, nil
			}
			for _, m := range p.pipe.Items() {
				if m.(congest.Int).V == int64(nd.ID()) {
					p.inRStar = true
				}
			}
			return true, nil
		}
	}
}

func (p *mvcRandCongestProgram) Output() nodeOut {
	return nodeOut{InSolution: p.voting.InS() || p.inRStar, InPhaseI: p.voting.InS()}
}
