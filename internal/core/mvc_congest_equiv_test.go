package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// blockingMVCCongest is the original goroutine-style handler implementation
// of Algorithm 1, kept verbatim as a reference: the step-program rewrite
// must be message-for-message indistinguishable from it, which
// TestStepMVCMatchesBlockingReference checks via full output and statistics
// equality on both engines.
func blockingMVCCongest(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	l, err := epsilonToL(eps)
	if err != nil {
		return nil, err
	}
	n := g.N()
	solver := opts.localSolver()
	iterations := n/(l+1) + 1

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		inR, inC := true, true
		inS := false
		idw := congest.IDBits(n)

		// Phase I.
		for it := 0; it < iterations; it++ {
			nd.Broadcast(congest.NewIntWidth(boolBit(inR), 1))
			nd.NextRound()
			dR := 0
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					dR++
				}
			}
			candidate := inC && dR > l
			val := int64(0)
			if candidate {
				val = int64(nd.ID()) + 1
			}
			maxVal := primitives.TwoHopMax(nd, val)
			selected := candidate && maxVal == int64(nd.ID())+1
			if selected {
				nd.Broadcast(congest.Flag{})
				inC = false
			}
			nd.NextRound()
			for range nd.Recv() {
				inS = true
				inR = false
				break
			}
		}

		nd.Broadcast(congest.NewIntWidth(boolBit(inR), 1))
		nd.NextRound()
		uNbrs := make([]int, 0, nd.Degree())
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				uNbrs = append(uNbrs, in.From)
			}
		}

		// Phase II.
		leader := primitives.MinIDLeader(nd)
		tree := primitives.BFSTree(nd, leader)
		items := make([]congest.Message, 0, len(uNbrs))
		for _, u := range uNbrs {
			items = append(items, congest.NewPair(n, int64(nd.ID()), int64(u)))
		}
		gathered := primitives.GatherAtRoot(nd, tree, items)

		var solutionIDs []congest.Message
		if nd.ID() == leader {
			cover := leaderSolveRemainder(n, gathered, solver)
			for _, v := range cover.Elements() {
				solutionIDs = append(solutionIDs, congest.NewIntWidth(int64(v), idw))
			}
		}
		all := primitives.FloodItemsFromRoot(nd, tree, solutionIDs)
		inRStar := false
		for _, m := range all {
			if m.(congest.Int).V == int64(nd.ID()) {
				inRStar = true
			}
		}
		return nodeOut{InSolution: inS || inRStar, InPhaseI: inS}, nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(res.Outputs, res.Stats), nil
}

func TestStepMVCMatchesBlockingReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := map[string]*graph.Graph{
		"single":  graph.NewBuilder(1).Build(),
		"edge":    graph.Path(2),
		"path9":   graph.Path(9),
		"star12":  graph.Star(12),
		"cycle11": graph.Cycle(11),
		"grid4x5": graph.Grid(4, 5),
		"cat5x4":  graph.Caterpillar(5, 4),
		"gnp30":   graph.ConnectedGNP(30, 0.12, rng),
		"gnp45":   graph.ConnectedGNP(45, 0.08, rng),
		"tree40":  graph.RandomTree(40, rng),
	}
	for name, g := range graphs {
		for _, eps := range []float64{1, 0.5, 0.25} {
			for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
				opts := &Options{Seed: 7, Engine: mode}
				want, err := blockingMVCCongest(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: reference: %v", name, eps, mode, err)
				}
				got, err := ApproxMVCCongest(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: step: %v", name, eps, mode, err)
				}
				if !got.Solution.Equal(want.Solution) {
					t.Fatalf("%s eps=%v %v: solutions differ:\nstep:     %v\nblocking: %v",
						name, eps, mode, got.Solution.Elements(), want.Solution.Elements())
				}
				if got.PhaseISize != want.PhaseISize {
					t.Fatalf("%s eps=%v %v: PhaseISize %d vs %d", name, eps, mode, got.PhaseISize, want.PhaseISize)
				}
				if got.Stats != want.Stats {
					t.Fatalf("%s eps=%v %v: stats differ:\nstep:     %+v\nblocking: %+v",
						name, eps, mode, got.Stats, want.Stats)
				}
			}
		}
	}
}
