package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/estimate"
	"powergraph/internal/graph"
)

// The message types of the blocking Theorem 28 reference. The step program
// sends congest.Int / primitives.RankID / primitives.CandMin values of
// identical widths, so the two are bit-for-bit indistinguishable.

// quantMsg carries one quantized exponential sample (step-1 minima floods).
type quantMsg struct {
	Q     int64
	Width int
}

func (m quantMsg) Bits() int { return m.Width }

// candValMsg carries a per-candidate quantized minimum (step-4 vote
// estimation): the candidate id plus the sample.
type candValMsg struct {
	Cand   int64
	Q      int64
	WidthC int
	WidthQ int
}

func (m candValMsg) Bits() int { return m.WidthC + m.WidthQ }

// rankIDMsg floods the lexicographically minimal (rank, id) candidate
// within two hops (step-3 voting).
type rankIDMsg struct {
	Rank, ID       int64
	WidthR, WidthI int
}

func (m rankIDMsg) Bits() int { return m.WidthR + m.WidthI }

// blockingMDSCongest is the original goroutine-style handler implementation
// of Theorem 28, kept verbatim as a reference for
// TestStepMDSMatchesBlockingReference.
func blockingMDSCongest(g *graph.Graph, opts *MDSOptions) (*Result, error) {
	if opts == nil {
		opts = &MDSOptions{}
	}
	p, bwf, err := deriveMDSParams(g, opts)
	if err != nil {
		return nil, err
	}
	n, r, phases := p.n, p.r, p.phases
	idw, fracBits, qWidth, rankW := p.idw, p.fracBits, p.qWidth, p.rankW
	rankMax := p.rankMax

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		BandwidthFactor: bwf,
		MaxRounds:       opts.Options.MaxRounds,
		Seed:            opts.Options.Seed,
		CutA:            opts.Options.CutA,
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		covered := false
		inDS := false
		rng := nd.Rand()

		for phase := 0; phase < phases; phase++ {
			// Step 1: estimate C_v = |uncovered ∩ ball₂(v)| via r
			// two-round min-floods of quantized Exp(1) samples.
			minima := make([]float64, 0, r)
			sawAny := true
			for j := 0; j < r; j++ {
				var own int64 = -1 // -1 = no sample to contribute
				if !covered {
					own = estimate.Quantize(estimate.Sample(rng), fracBits)
				}
				m1 := minFlood(nd, own, qWidth)
				m2 := minFlood(nd, m1, qWidth)
				if m2 < 0 {
					sawAny = false
					continue
				}
				minima = append(minima, estimate.Dequantize(m2, fracBits))
			}
			var dTilde float64
			var rho int64
			if sawAny && len(minima) == r {
				dTilde = estimate.FromMinima(minima)
				if dTilde > float64(n) {
					dTilde = float64(n) // clamp: can never cover more than n
				}
				rho = estimate.RoundUpPow2(dTilde)
			}

			// Step 2: candidates are 4-hop (G-distance) maxima of ρ̃.
			maxRho := rho
			for hop := 0; hop < 4; hop++ {
				nd.BroadcastNeighbors(congest.NewIntWidth(maxRho, idw+2))
				nd.NextRound()
				for _, in := range nd.Recv() {
					if v := in.Msg.(congest.Int).V; v > maxRho {
						maxRho = v
					}
				}
			}
			candidate := rho > 0 && rho >= maxRho

			// Step 3: candidates draw ranks; uncovered vertices vote for
			// the minimal (rank, id) candidate within two hops.
			var myRank int64 = -1
			if candidate {
				myRank = rng.Int63n(rankMax)
			}
			r1, id1, fromNbr := rankFlood(nd, myRank, int64(nd.ID()), rankW, idw)
			_, id2, _ := rankFlood(nd, r1, id1, rankW, idw)
			candNbrs := fromNbr // which G-neighbors are candidates (direct senders in flood 1)
			voteFor := -1
			if !covered && id2 >= 0 {
				voteFor = int(id2)
			}

			// Step 4: estimate per-candidate vote counts with r repetitions
			// of a two-round per-candidate min-flood.
			voteMinima := make([]float64, 0, r)
			gotVotes := true
			for j := 0; j < r; j++ {
				var own int64 = -1
				if voteFor != -1 {
					own = estimate.Quantize(estimate.Sample(rng), fracBits)
				}
				// Round A: voters broadcast (candidate, sample).
				if own >= 0 {
					nd.BroadcastNeighbors(candValMsg{Cand: int64(voteFor), Q: own, WidthC: idw, WidthQ: qWidth})
				}
				nd.NextRound()
				perCand := map[int64]int64{}
				if own >= 0 {
					perCand[int64(voteFor)] = own
				}
				for _, in := range nd.Recv() {
					m, ok := in.Msg.(candValMsg)
					if !ok {
						continue
					}
					if cur, seen := perCand[m.Cand]; !seen || m.Q < cur {
						perCand[m.Cand] = m.Q
					}
				}
				// Round B: forward each neighboring candidate its minimum.
				for _, u := range nd.Neighbors() {
					if !candNbrs[u] {
						continue
					}
					if q, ok := perCand[int64(u)]; ok {
						nd.MustSend(u, candValMsg{Cand: int64(u), Q: q, WidthC: idw, WidthQ: qWidth})
					}
				}
				nd.NextRound()
				best := int64(-1)
				if candidate {
					if q, ok := perCand[int64(nd.ID())]; ok {
						best = q
					}
					for _, in := range nd.Recv() {
						m, ok := in.Msg.(candValMsg)
						if !ok || m.Cand != int64(nd.ID()) {
							continue
						}
						if best < 0 || m.Q < best {
							best = m.Q
						}
					}
				}
				if best < 0 {
					gotVotes = false
					continue
				}
				voteMinima = append(voteMinima, estimate.Dequantize(best, fracBits))
			}

			// Step 5: join on votes ≥ C̃_v/8.
			joined := false
			if candidate && gotVotes && len(voteMinima) == r {
				votes := estimate.FromMinima(voteMinima)
				if votes > float64(n) {
					votes = float64(n)
				}
				if votes >= dTilde/8 {
					inDS = true
					joined = true
					covered = true
				}
			}

			// Step 6: two-round coverage flood from new members.
			if joined {
				nd.BroadcastNeighbors(congest.Flag{})
			}
			nd.NextRound()
			relay := joined || len(nd.Recv()) > 0
			if len(nd.Recv()) > 0 {
				covered = true
			}
			if relay {
				nd.BroadcastNeighbors(congest.Flag{})
			}
			nd.NextRound()
			if len(nd.Recv()) > 0 {
				covered = true
			}
		}

		// Unconditional feasibility: leftover uncovered vertices join.
		fallback := false
		if !covered {
			inDS = true
			fallback = true
		}
		return nodeOut{InSolution: inDS, InPhaseI: fallback}, nil
	})
	if err != nil {
		return nil, err
	}
	out := assemble(res.Outputs, res.Stats)
	out.FallbackJoins = out.PhaseISize
	out.PhaseISize = -1
	return out, nil
}

// minFlood performs one round of minimum aggregation: nodes with own ≥ 0
// send it to all G-neighbors; everyone returns the minimum of its own value
// and everything received (-1 if nothing was seen).
func minFlood(nd *congest.Node, own int64, width int) int64 {
	if own >= 0 {
		nd.BroadcastNeighbors(quantMsg{Q: own, Width: width})
	}
	nd.NextRound()
	best := own
	for _, in := range nd.Recv() {
		m, ok := in.Msg.(quantMsg)
		if !ok {
			continue
		}
		if best < 0 || m.Q < best {
			best = m.Q
		}
	}
	return best
}

// rankFlood performs one round of lexicographic (rank, id) minimum
// aggregation; rank < 0 means "no value". It also reports which neighbors
// sent a value this round (used to detect neighboring candidates in the
// first hop of the flood).
func rankFlood(nd *congest.Node, rank, id int64, rankW, idW int) (int64, int64, map[int]bool) {
	if rank >= 0 {
		nd.BroadcastNeighbors(rankIDMsg{Rank: rank, ID: id, WidthR: rankW, WidthI: idW})
	}
	nd.NextRound()
	bestR, bestID := rank, id
	senders := make(map[int]bool)
	for _, in := range nd.Recv() {
		m, ok := in.Msg.(rankIDMsg)
		if !ok {
			continue
		}
		senders[in.From] = true
		if bestR < 0 || m.Rank < bestR || (m.Rank == bestR && m.ID < bestID) {
			bestR, bestID = m.Rank, m.ID
		}
	}
	if bestR < 0 {
		bestID = -1
	}
	return bestR, bestID, senders
}

func TestStepMDSMatchesBlockingReference(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	graphs := map[string]*graph.Graph{
		"single": graph.NewBuilder(1).Build(),
		"edge":   graph.Path(2),
		"path7":  graph.Path(7),
		"star9":  graph.Star(9),
		"grid34": graph.Grid(3, 4),
		"gnp16":  graph.ConnectedGNP(16, 0.25, rng),
		"tree14": graph.RandomTree(14, rng),
	}
	for name, g := range graphs {
		for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
			opts := &MDSOptions{Options: Options{Seed: 7, Engine: mode}, SampleFactor: 1, PhaseFactor: 1}
			want, err := blockingMDSCongest(g, opts)
			if err != nil {
				t.Fatalf("%s %v: reference: %v", name, mode, err)
			}
			got, err := ApproxMDSCongest(g, opts)
			if err != nil {
				t.Fatalf("%s %v: step: %v", name, mode, err)
			}
			if !got.Solution.Equal(want.Solution) {
				t.Fatalf("%s %v: solutions differ:\nstep:     %v\nblocking: %v",
					name, mode, got.Solution.Elements(), want.Solution.Elements())
			}
			if got.FallbackJoins != want.FallbackJoins {
				t.Fatalf("%s %v: FallbackJoins %d vs %d", name, mode, got.FallbackJoins, want.FallbackJoins)
			}
			if got.Stats != want.Stats {
				t.Fatalf("%s %v: stats differ:\nstep:     %+v\nblocking: %+v",
					name, mode, got.Stats, want.Stats)
			}
		}
	}
	// Default estimator parameters on one small instance, both engines.
	g := graph.ConnectedGNP(10, 0.3, rng)
	for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
		opts := &MDSOptions{Options: Options{Seed: 3, Engine: mode}}
		want, err := blockingMDSCongest(g, opts)
		if err != nil {
			t.Fatalf("defaults %v: reference: %v", mode, err)
		}
		got, err := ApproxMDSCongest(g, opts)
		if err != nil {
			t.Fatalf("defaults %v: step: %v", mode, err)
		}
		if !got.Solution.Equal(want.Solution) || got.Stats != want.Stats {
			t.Fatalf("defaults %v: step and blocking diverge", mode)
		}
	}
}
