package core

import (
	"fmt"

	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/estimate"
	"powergraph/internal/graph"
)

// MDSOptions tunes the Theorem 28 simulation.
type MDSOptions struct {
	Options
	// SampleFactor sets r = SampleFactor·⌈log₂ n⌉ estimator repetitions per
	// phase (Lemma 29 uses r = Θ(log n)). Zero selects the default of 3.
	SampleFactor int
	// PhaseFactor scales the number of phases
	// T = PhaseFactor·(⌈log₂ n⌉+1)·(⌈log₂ Δ²⌉+2); [CD18] needs
	// O(log n·log Δ) phases w.h.p. Zero selects the default of 2.
	PhaseFactor int
}

// ApproxMDSCongest runs Theorem 28: a randomized O(log Δ)-approximation for
// minimum dominating set on the power graph Gʳ (Options.Power, default the
// paper's r = 2), communicating over G in the CONGEST model, in polylog(n)
// rounds. It simulates the [CD18] MDS algorithm on Gʳ using the Lemma 29
// exponential-sketch estimator for every quantity a node would need from
// its r-hop neighborhood (described below for r = 2, whose schedule is
// reproduced exactly; other powers deepen every flood to r hops, and the
// step-4 vote estimation stays exact at every depth by routing each sample
// along the rank floods' adoption trees — see
// NewStepCandidateMinFloodRoutes, which replaced the conservative r ≥ 3
// spread):
//
//  1. each vertex estimates its coverage C_v (uncovered vertices within two
//     hops) with r = Θ(log n) two-round min-floods and rounds it to a power
//     of two (ρ̃_v);
//  2. vertices whose ρ̃ is maximal within four hops in G (two hops in G²)
//     become candidates;
//  3. candidates draw random ranks; every uncovered vertex votes for the
//     minimal (rank, id) candidate within two hops;
//  4. candidates estimate their vote count with per-candidate min-floods
//     (intermediate nodes forward, to each neighboring candidate, only that
//     candidate's minimum — the congestion-avoiding trick of Section 6.1);
//  5. a candidate with votes ≥ C̃_v/8 joins the dominating set;
//  6. a two-round flood marks everything within two hops of a new member
//     covered.
//
// After the w.h.p. phase budget, any still-uncovered vertex joins the
// dominating set itself (feasibility is unconditional; Result.FallbackJoins
// reports how many did, which is 0 w.h.p.).
//
// The algorithm is a congest.StepProgram over the greedy-cover step
// primitives (StepMinFlood, StepHopMax, StepRankFlood,
// StepCandidateMinFlood), so the batch engine drives it with no per-node
// goroutine; the blocking reference is preserved in
// mds_congest_equiv_test.go and TestStepMDSMatchesBlockingReference proves
// the two indistinguishable.
func ApproxMDSCongest(g *graph.Graph, opts *MDSOptions) (*Result, error) {
	if opts == nil {
		opts = &MDSOptions{}
	}
	p, bwf, err := deriveMDSParams(g, opts)
	if err != nil {
		return nil, err
	}

	cfg := congest.Config{
		Graph:           g,
		Ctx:             opts.Options.ctx(),
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		Shards:          opts.shards(),
		BandwidthFactor: bwf,
		MaxRounds:       opts.Options.MaxRounds,
		Seed:            opts.Options.Seed,
		CutA:            opts.Options.CutA,
		Tracer:          opts.Options.Tracer,
	}
	res, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[nodeOut] {
		prog := &mdsCongestProgram{mdsParams: *p}
		prog.startPhase(nd)
		return prog
	})
	if err != nil {
		return nil, err
	}
	out := assemble(res.Outputs, res.Stats)
	out.FallbackJoins = out.PhaseISize
	out.PhaseISize = -1
	return out, nil
}

// mdsParams derives the shared simulation parameters of Theorem 28 from the
// graph and options: the target power rpow, estimator repetitions r, phase
// budget, message widths, and the bandwidth factor wide enough for the
// largest estimator payload.
type mdsParams struct {
	n, rpow, r, phases           int
	idw, fracBits, qWidth, rankW int
	rankMax                      int64
}

// cappedPow returns base^exp, saturating well below int64 overflow (the
// result only ever feeds a logarithm).
func cappedPow(base int64, exp int) int64 {
	const limit = int64(1) << 50
	p := int64(1)
	for i := 0; i < exp; i++ {
		if base != 0 && p > limit/base {
			return limit
		}
		p *= base
	}
	return p
}

func deriveMDSParams(g *graph.Graph, opts *MDSOptions) (*mdsParams, int, error) {
	n := g.N()
	if n == 0 {
		return nil, 0, fmt.Errorf("core: empty graph")
	}
	rpow, err := opts.Options.power()
	if err != nil {
		return nil, 0, err
	}
	idw := congest.IDBits(n)
	sampleFactor := opts.SampleFactor
	if sampleFactor == 0 {
		sampleFactor = 3
	}
	phaseFactor := opts.PhaseFactor
	if phaseFactor == 0 {
		phaseFactor = 2
	}
	r := sampleFactor * idw
	if r < 4 {
		r = 4
	}
	// The [CD18] phase budget is O(log n · log Δ(Gʳ)); Δ(Gʳ) ≤ Δᵣ = Δ^rpow.
	delta := g.MaxDegree()
	logDeltaR := congest.IDBits(int(cappedPow(int64(delta), rpow))+2) + 1
	phases := phaseFactor * (idw + 1) * logDeltaR

	fracBits := 2*idw + 4
	qWidth := estimate.IntBits + fracBits
	rankW := 4 * idw
	// Largest message: candidate id + quantized value. Pick the bandwidth
	// factor so it fits (Θ(log n) with a bigger constant than the MVC
	// algorithms, as the estimator payloads are wider).
	needBits := idw + qWidth
	bwf := opts.Options.BandwidthFactor
	if bwf == 0 {
		bwf = (needBits + idw - 1) / idw
		if bwf < 8 {
			bwf = 8
		}
	}
	return &mdsParams{
		n: n, rpow: rpow, r: r, phases: phases,
		idw: idw, fracBits: fracBits, qWidth: qWidth, rankW: rankW,
		// Ranks travel as rankW-bit fields but are drawn from an int64, so
		// the draw space is capped below the int64 width: at idw ≥ 16
		// (n ≥ 2^15) an uncapped 1<<rankW is zero and Int63n panics.
		// Collision probability stays ≤ n²/2^62, far below the 1/n the
		// analysis needs.
		rankMax: int64(1) << uint(min(rankW, 62)),
	}, bwf, nil
}

// Sub-stages of one mdsCongestProgram phase, entered in order. Every stage's
// depth follows the target power rpow (rpow = 2 reproduces the paper's G²
// schedule exactly).
const (
	mdsEstimate = iota // step 1: r chained rpow-deep coverage min-floods
	mdsHop             // step 2: 2·rpow-hop ρ̃ maximum
	mdsRank            // step 3: rpow chained (rank, id) floods
	mdsVotes           // step 4: r chained per-candidate vote floods
	mdsCover           // step 6: rpow-round coverage flood
)

// mdsCongestProgram is Theorem 28 in step form: each phase chains the
// greedy-cover primitives — coverage estimation, candidate selection by
// 4-hop maximum, rank voting, vote estimation, and the coverage flood —
// with every stage starting in the slice its predecessor finishes, exactly
// like the blocking composition.
type mdsCongestProgram struct {
	mdsParams

	covered, inDS, fallback bool

	phase, sub, j int

	// Step 1 (coverage estimation) state.
	flood      *primitives.StepMinFlood
	floodStage int
	minima     []float64
	sawAny     bool
	dTilde     float64
	rho        int64

	// Step 2 (candidate selection) state.
	hop *primitives.StepHopMax

	// Step 3 (rank voting) state. routes records each adoption of a new
	// running-best candidate (level = stages completed, parent = delivering
	// neighbor) — the in-tree step 4's exact depth-r schedule routes along.
	rank       *primitives.StepRankFlood
	rankStage  int
	candNbrs   map[int]bool
	candidate  bool
	voteFor    int
	routes     []primitives.CandRoute
	prevBestID int

	// Step 4 (vote estimation) state.
	votes      *primitives.StepCandidateMinFlood
	voteMinima []float64
	gotVotes   bool

	// Step 6 (coverage flood) state.
	joined   bool
	covRound int
}

// startPhase resets the per-phase estimator state and stages the first
// coverage min-flood (its send is queued by the next Step call).
func (p *mdsCongestProgram) startPhase(nd *congest.Node) {
	nd.SpanBegin("mds-phase", p.phase)
	nd.SpanBegin("mds-estimate", p.phase)
	p.minima = p.minima[:0]
	p.sawAny = true
	p.j = 0
	p.floodStage = 0
	p.flood = primitives.NewStepMinFlood(p.coverageSample(nd), p.qWidth)
	p.sub = mdsEstimate
}

// coverageSample draws one quantized Exp(1) sample, or -1 when this node is
// already covered and contributes nothing.
func (p *mdsCongestProgram) coverageSample(nd *congest.Node) int64 {
	if p.covered {
		return -1
	}
	return estimate.Quantize(estimate.Sample(nd.Rand()), p.fracBits)
}

// voteSample draws one quantized sample toward the chosen candidate, or -1
// when this node votes for nobody.
func (p *mdsCongestProgram) voteSample(nd *congest.Node) int64 {
	if p.voteFor == -1 {
		return -1
	}
	return estimate.Quantize(estimate.Sample(nd.Rand()), p.fracBits)
}

func (p *mdsCongestProgram) Step(nd *congest.Node) (bool, error) {
	for {
		switch p.sub {
		case mdsEstimate:
			if !p.flood.Step(nd) {
				return false, nil
			}
			if p.floodStage < p.rpow-1 {
				// Next hop of the rpow-round min-flood (one chained
				// single-hop flood per hop of Gʳ).
				p.flood = primitives.NewStepMinFlood(p.flood.Min(), p.qWidth)
				p.floodStage++
				continue
			}
			if m2 := p.flood.Min(); m2 < 0 {
				p.sawAny = false
			} else {
				p.minima = append(p.minima, estimate.Dequantize(m2, p.fracBits))
			}
			p.j++
			if p.j < p.r {
				p.floodStage = 0
				p.flood = primitives.NewStepMinFlood(p.coverageSample(nd), p.qWidth)
				continue
			}
			p.dTilde = 0
			p.rho = 0
			if p.sawAny && len(p.minima) == p.r {
				p.dTilde = estimate.FromMinima(p.minima)
				if p.dTilde > float64(p.n) {
					p.dTilde = float64(p.n) // clamp: can never cover more than n
				}
				p.rho = estimate.RoundUpPow2(p.dTilde)
			}
			nd.SpanEnd("mds-estimate", p.phase)
			p.hop = primitives.NewStepHopMax(p.rho, p.idw+2, 2*p.rpow)
			p.sub = mdsHop
		case mdsHop:
			if !p.hop.Step(nd) {
				return false, nil
			}
			p.candidate = p.rho > 0 && p.rho >= p.hop.Max()
			var myRank int64 = -1
			if p.candidate {
				myRank = nd.Rand().Int63n(p.rankMax)
			}
			p.rank = primitives.NewStepRankFlood(myRank, int64(nd.ID()), p.rankW, p.idw)
			p.rankStage = 0
			p.routes = p.routes[:0]
			p.prevBestID = -1
			if p.candidate {
				p.routes = append(p.routes, primitives.CandRoute{Cand: nd.ID(), From: -1, Lvl: 0})
				p.prevBestID = nd.ID()
			}
			p.sub = mdsRank
		case mdsRank:
			if !p.rank.Step(nd) {
				return false, nil
			}
			if p.rankStage == 0 {
				// Direct senders in the first flood are the neighboring
				// candidates (used to route step 4's forwarded minima).
				p.candNbrs = p.rank.Senders()
			}
			if _, id := p.rank.Best(); id >= 0 && int(id) != p.prevBestID {
				// Adopted a new running best: record the delivering neighbor
				// as this candidate's relay parent at this level.
				p.routes = append(p.routes, primitives.CandRoute{
					Cand: int(id), From: p.rank.BestFrom(), Lvl: p.rankStage + 1})
				p.prevBestID = int(id)
			}
			if p.rankStage < p.rpow-1 {
				r1, id1 := p.rank.Best()
				p.rank = primitives.NewStepRankFlood(r1, id1, p.rankW, p.idw)
				p.rankStage++
				continue
			}
			_, idR := p.rank.Best()
			p.voteFor = -1
			if !p.covered && idR >= 0 {
				p.voteFor = int(idR)
			}
			p.voteMinima = p.voteMinima[:0]
			p.gotVotes = true
			p.j = 0
			p.votes = p.newVoteFlood(nd)
			nd.SpanBegin("mds-votes", p.phase)
			p.sub = mdsVotes
		case mdsVotes:
			if !p.votes.Step(nd) {
				return false, nil
			}
			if best := p.votes.Min(); best < 0 {
				p.gotVotes = false
			} else {
				p.voteMinima = append(p.voteMinima, estimate.Dequantize(best, p.fracBits))
			}
			p.j++
			if p.j < p.r {
				p.votes = p.newVoteFlood(nd)
				continue
			}
			// Step 5: join on votes ≥ C̃_v/8.
			p.joined = false
			if p.candidate && p.gotVotes && len(p.voteMinima) == p.r {
				votes := estimate.FromMinima(p.voteMinima)
				if votes > float64(p.n) {
					votes = float64(p.n)
				}
				if votes >= p.dTilde/8 {
					p.inDS = true
					p.joined = true
					p.covered = true
				}
			}
			// Step 6: rpow-round coverage flood from new members.
			if p.joined {
				nd.BroadcastNeighbors(congest.Flag{})
			}
			nd.SpanEnd("mds-votes", p.phase)
			p.covRound = 0
			p.sub = mdsCover
			return false, nil
		default: // mdsCover
			if p.covRound < p.rpow-1 {
				relay := p.joined || len(nd.Recv()) > 0
				if len(nd.Recv()) > 0 {
					p.covered = true
				}
				if relay {
					nd.BroadcastNeighbors(congest.Flag{})
				}
				p.covRound++
				return false, nil
			}
			if len(nd.Recv()) > 0 {
				p.covered = true
			}
			nd.SpanEnd("mds-phase", p.phase)
			p.phase++
			if p.phase < p.phases {
				p.startPhase(nd)
				continue
			}
			// Unconditional feasibility: leftover uncovered vertices join.
			if !p.covered {
				p.inDS = true
				p.fallback = true
			}
			return true, nil
		}
	}
}

// newVoteFlood starts one step-4 vote-estimation flood: the paper's exact
// broadcast trick at rpow ≤ 2 (byte-identical to the r = 2 schedule), the
// routed exact schedule along the captured adoption trees at rpow ≥ 3.
func (p *mdsCongestProgram) newVoteFlood(nd *congest.Node) *primitives.StepCandidateMinFlood {
	if p.rpow <= 2 {
		return primitives.NewStepCandidateMinFloodR(
			p.voteFor, p.voteSample(nd), p.candNbrs, p.candidate, p.idw, p.qWidth, p.rpow)
	}
	return primitives.NewStepCandidateMinFloodRoutes(
		p.voteFor, p.voteSample(nd), p.routes, p.candidate, p.idw, p.qWidth, p.rpow)
}

func (p *mdsCongestProgram) Output() nodeOut {
	return nodeOut{InSolution: p.inDS, InPhaseI: p.fallback}
}
