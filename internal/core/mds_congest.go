package core

import (
	"fmt"

	"powergraph/internal/congest"
	"powergraph/internal/estimate"
	"powergraph/internal/graph"
)

// MDSOptions tunes the Theorem 28 simulation.
type MDSOptions struct {
	Options
	// SampleFactor sets r = SampleFactor·⌈log₂ n⌉ estimator repetitions per
	// phase (Lemma 29 uses r = Θ(log n)). Zero selects the default of 3.
	SampleFactor int
	// PhaseFactor scales the number of phases
	// T = PhaseFactor·(⌈log₂ n⌉+1)·(⌈log₂ Δ²⌉+2); [CD18] needs
	// O(log n·log Δ) phases w.h.p. Zero selects the default of 2.
	PhaseFactor int
}

// quantMsg carries one quantized exponential sample (step-1 minima floods).
type quantMsg struct {
	Q     int64
	Width int
}

func (m quantMsg) Bits() int { return m.Width }

// candValMsg carries a per-candidate quantized minimum (step-4 vote
// estimation): the candidate id plus the sample.
type candValMsg struct {
	Cand   int64
	Q      int64
	WidthC int
	WidthQ int
}

func (m candValMsg) Bits() int { return m.WidthC + m.WidthQ }

// rankIDMsg floods the lexicographically minimal (rank, id) candidate
// within two hops (step-3 voting).
type rankIDMsg struct {
	Rank, ID       int64
	WidthR, WidthI int
}

func (m rankIDMsg) Bits() int { return m.WidthR + m.WidthI }

// ApproxMDSCongest runs Theorem 28: a randomized O(log Δ)-approximation for
// minimum dominating set on G², communicating over G in the CONGEST model,
// in polylog(n) rounds. It simulates the [CD18] MDS algorithm on G² using
// the Lemma 29 exponential-sketch estimator for every quantity a node would
// need from its 2-hop neighborhood:
//
//  1. each vertex estimates its coverage C_v (uncovered vertices within two
//     hops) with r = Θ(log n) two-round min-floods and rounds it to a power
//     of two (ρ̃_v);
//  2. vertices whose ρ̃ is maximal within four hops in G (two hops in G²)
//     become candidates;
//  3. candidates draw random ranks; every uncovered vertex votes for the
//     minimal (rank, id) candidate within two hops;
//  4. candidates estimate their vote count with per-candidate min-floods
//     (intermediate nodes forward, to each neighboring candidate, only that
//     candidate's minimum — the congestion-avoiding trick of Section 6.1);
//  5. a candidate with votes ≥ C̃_v/8 joins the dominating set;
//  6. a two-round flood marks everything within two hops of a new member
//     covered.
//
// After the w.h.p. phase budget, any still-uncovered vertex joins the
// dominating set itself (feasibility is unconditional; Result.FallbackJoins
// reports how many did, which is 0 w.h.p.).
func ApproxMDSCongest(g *graph.Graph, opts *MDSOptions) (*Result, error) {
	if opts == nil {
		opts = &MDSOptions{}
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	idw := congest.IDBits(n)
	sampleFactor := opts.SampleFactor
	if sampleFactor == 0 {
		sampleFactor = 3
	}
	phaseFactor := opts.PhaseFactor
	if phaseFactor == 0 {
		phaseFactor = 2
	}
	r := sampleFactor * idw
	if r < 4 {
		r = 4
	}
	delta := g.MaxDegree()
	logDelta2 := congest.IDBits(delta*delta+2) + 1
	phases := phaseFactor * (idw + 1) * logDelta2

	fracBits := 2*idw + 4
	qWidth := estimate.IntBits + fracBits
	rankW := 4 * idw
	rankMax := int64(1) << uint(rankW)
	// Largest message: candidate id + quantized value. Pick the bandwidth
	// factor so it fits (Θ(log n) with a bigger constant than the MVC
	// algorithms, as the estimator payloads are wider).
	needBits := idw + qWidth
	bwf := opts.Options.BandwidthFactor
	if bwf == 0 {
		bwf = (needBits + idw - 1) / idw
		if bwf < 8 {
			bwf = 8
		}
	}

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		BandwidthFactor: bwf,
		MaxRounds:       opts.Options.MaxRounds,
		Seed:            opts.Options.Seed,
		CutA:            opts.Options.CutA,
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		covered := false
		inDS := false
		rng := nd.Rand()

		for phase := 0; phase < phases; phase++ {
			// Step 1: estimate C_v = |uncovered ∩ ball₂(v)| via r
			// two-round min-floods of quantized Exp(1) samples.
			minima := make([]float64, 0, r)
			sawAny := true
			for j := 0; j < r; j++ {
				var own int64 = -1 // -1 = no sample to contribute
				if !covered {
					own = estimate.Quantize(estimate.Sample(rng), fracBits)
				}
				m1 := minFlood(nd, own, qWidth)
				m2 := minFlood(nd, m1, qWidth)
				if m2 < 0 {
					sawAny = false
					continue
				}
				minima = append(minima, estimate.Dequantize(m2, fracBits))
			}
			var dTilde float64
			var rho int64
			if sawAny && len(minima) == r {
				dTilde = estimate.FromMinima(minima)
				if dTilde > float64(n) {
					dTilde = float64(n) // clamp: can never cover more than n
				}
				rho = estimate.RoundUpPow2(dTilde)
			}

			// Step 2: candidates are 4-hop (G-distance) maxima of ρ̃.
			maxRho := rho
			for hop := 0; hop < 4; hop++ {
				nd.BroadcastNeighbors(congest.NewIntWidth(maxRho, idw+2))
				nd.NextRound()
				for _, in := range nd.Recv() {
					if v := in.Msg.(congest.Int).V; v > maxRho {
						maxRho = v
					}
				}
			}
			candidate := rho > 0 && rho >= maxRho

			// Step 3: candidates draw ranks; uncovered vertices vote for
			// the minimal (rank, id) candidate within two hops.
			var myRank int64 = -1
			if candidate {
				myRank = rng.Int63n(rankMax)
			}
			r1, id1, fromNbr := rankFlood(nd, myRank, int64(nd.ID()), rankW, idw)
			_, id2, _ := rankFlood(nd, r1, id1, rankW, idw)
			candNbrs := fromNbr // which G-neighbors are candidates (direct senders in flood 1)
			voteFor := -1
			if !covered && id2 >= 0 {
				voteFor = int(id2)
			}

			// Step 4: estimate per-candidate vote counts with r repetitions
			// of a two-round per-candidate min-flood.
			voteMinima := make([]float64, 0, r)
			gotVotes := true
			for j := 0; j < r; j++ {
				var own int64 = -1
				if voteFor != -1 {
					own = estimate.Quantize(estimate.Sample(rng), fracBits)
				}
				// Round A: voters broadcast (candidate, sample).
				if own >= 0 {
					nd.BroadcastNeighbors(candValMsg{Cand: int64(voteFor), Q: own, WidthC: idw, WidthQ: qWidth})
				}
				nd.NextRound()
				perCand := map[int64]int64{}
				if own >= 0 {
					perCand[int64(voteFor)] = own
				}
				for _, in := range nd.Recv() {
					m, ok := in.Msg.(candValMsg)
					if !ok {
						continue
					}
					if cur, seen := perCand[m.Cand]; !seen || m.Q < cur {
						perCand[m.Cand] = m.Q
					}
				}
				// Round B: forward each neighboring candidate its minimum.
				for _, u := range nd.Neighbors() {
					if !candNbrs[u] {
						continue
					}
					if q, ok := perCand[int64(u)]; ok {
						nd.MustSend(u, candValMsg{Cand: int64(u), Q: q, WidthC: idw, WidthQ: qWidth})
					}
				}
				nd.NextRound()
				best := int64(-1)
				if candidate {
					if q, ok := perCand[int64(nd.ID())]; ok {
						best = q
					}
					for _, in := range nd.Recv() {
						m, ok := in.Msg.(candValMsg)
						if !ok || m.Cand != int64(nd.ID()) {
							continue
						}
						if best < 0 || m.Q < best {
							best = m.Q
						}
					}
				}
				if best < 0 {
					gotVotes = false
					continue
				}
				voteMinima = append(voteMinima, estimate.Dequantize(best, fracBits))
			}

			// Step 5: join on votes ≥ C̃_v/8.
			joined := false
			if candidate && gotVotes && len(voteMinima) == r {
				votes := estimate.FromMinima(voteMinima)
				if votes > float64(n) {
					votes = float64(n)
				}
				if votes >= dTilde/8 {
					inDS = true
					joined = true
					covered = true
				}
			}

			// Step 6: two-round coverage flood from new members.
			if joined {
				nd.BroadcastNeighbors(congest.Flag{})
			}
			nd.NextRound()
			relay := joined || len(nd.Recv()) > 0
			if len(nd.Recv()) > 0 {
				covered = true
			}
			if relay {
				nd.BroadcastNeighbors(congest.Flag{})
			}
			nd.NextRound()
			if len(nd.Recv()) > 0 {
				covered = true
			}
		}

		// Unconditional feasibility: leftover uncovered vertices join.
		fallback := false
		if !covered {
			inDS = true
			fallback = true
		}
		return nodeOut{InSolution: inDS, InPhaseI: fallback}, nil
	})
	if err != nil {
		return nil, err
	}
	out := assemble(res.Outputs, res.Stats)
	out.FallbackJoins = out.PhaseISize
	out.PhaseISize = -1
	return out, nil
}

// minFlood performs one round of minimum aggregation: nodes with own ≥ 0
// send it to all G-neighbors; everyone returns the minimum of its own value
// and everything received (-1 if nothing was seen).
func minFlood(nd *congest.Node, own int64, width int) int64 {
	if own >= 0 {
		nd.BroadcastNeighbors(quantMsg{Q: own, Width: width})
	}
	nd.NextRound()
	best := own
	for _, in := range nd.Recv() {
		m, ok := in.Msg.(quantMsg)
		if !ok {
			continue
		}
		if best < 0 || m.Q < best {
			best = m.Q
		}
	}
	return best
}

// rankFlood performs one round of lexicographic (rank, id) minimum
// aggregation; rank < 0 means "no value". It also reports which neighbors
// sent a value this round (used to detect neighboring candidates in the
// first hop of the flood).
func rankFlood(nd *congest.Node, rank, id int64, rankW, idW int) (int64, int64, map[int]bool) {
	if rank >= 0 {
		nd.BroadcastNeighbors(rankIDMsg{Rank: rank, ID: id, WidthR: rankW, WidthI: idW})
	}
	nd.NextRound()
	bestR, bestID := rank, id
	senders := make(map[int]bool)
	for _, in := range nd.Recv() {
		m, ok := in.Msg.(rankIDMsg)
		if !ok {
			continue
		}
		senders[in.From] = true
		if bestR < 0 || m.Rank < bestR || (m.Rank == bestR && m.ID < bestID) {
			bestR, bestID = m.Rank, m.ID
		}
	}
	if bestR < 0 {
		bestID = -1
	}
	return bestR, bestID, senders
}
