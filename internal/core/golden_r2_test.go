package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
)

// The golden r = 2 seed matrix pins the exact pre-generalization behavior of
// every distributed algorithm: solutions, phase statistics, and the full
// simulator accounting. The Gʳ generalization must leave the r = 2 path
// bit-identical — same messages, same rounds, same solutions — so this test
// is the refactoring guard the equivalence tests cannot provide (they compare
// step form against blocking form, not new code against old).
//
// Since the kernelize-then-solve subsystem became the default leader solver,
// the matrix runs under that default (i.e. it covers the "kernel-exact"
// localSolver), and every record is additionally replayed with the legacy
// raw exact solver pinned via Options.LocalSolver: the two must agree byte
// for byte. That agreement is by construction — below kernel.DefaultDirectN
// the ladder's direct path calls the legacy solver verbatim, and every
// golden instance is smaller than that — so the fixtures survive the solver
// swap untouched.
//
// Regenerate with:
//
//	go test ./internal/core/ -run TestGoldenR2Regression -update-golden
//
// but only ever from a commit whose r = 2 outputs are known-good, and only
// when behavior legitimately changes. If a future kernel change makes the
// ladder return a *different optimal* cover on these instances (tie-breaks
// among equal-cost optima), the right fix is to regenerate with the flag and
// say so in the commit — cost drift, by contrast, is always a bug.

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_r2.json from the current implementation")

// goldenRecord is one cell of the seed matrix: everything observable about a
// run that must survive the Gʳ generalization unchanged.
type goldenRecord struct {
	Solution      []int `json:"solution"`
	PhaseISize    int   `json:"phaseISize"`
	FallbackJoins int   `json:"fallbackJoins"`
	Rounds        int   `json:"rounds"`
	Messages      int64 `json:"messages"`
	TotalBits     int64 `json:"totalBits"`
	MaxRoundBits  int64 `json:"maxRoundBits"`
	Bandwidth     int   `json:"bandwidth"`
}

// goldenGraphs builds the deterministic instance set of the seed matrix.
// Weighted variants exercise Theorem 7's weight reports.
func goldenGraphs() map[string]*graph.Graph {
	gnp16 := graph.ConnectedGNP(16, 0.25, rand.New(rand.NewSource(41)))
	gnp24 := graph.ConnectedGNP(24, 8.0/24, rand.New(rand.NewSource(42)))
	wgnp16 := graph.WithRandomWeights(
		graph.ConnectedGNP(16, 0.25, rand.New(rand.NewSource(43))), 9,
		rand.New(rand.NewSource(44)))
	return map[string]*graph.Graph{
		"gnp16":  gnp16,
		"gnp24":  gnp24,
		"wgnp16": wgnp16,
		"cat":    graph.Caterpillar(5, 3),
		"grid":   graph.Grid(4, 5),
	}
}

// goldenAlgorithms maps registry-style names to direct invocations. Each is
// run with a fixed seed under both engines; the record stores the (identical)
// measurements once.
var goldenAlgorithms = map[string]func(g *graph.Graph, opts *Options) (*Result, error){
	"mvc-congest": func(g *graph.Graph, opts *Options) (*Result, error) {
		return ApproxMVCCongest(g, 0.5, opts)
	},
	"mvc-congest-eps4": func(g *graph.Graph, opts *Options) (*Result, error) {
		return ApproxMVCCongest(g, 0.25, opts)
	},
	"mvc-congest-rand": func(g *graph.Graph, opts *Options) (*Result, error) {
		return ApproxMVCCongestRandomized(g, 0.5, opts)
	},
	"mwvc-congest": func(g *graph.Graph, opts *Options) (*Result, error) {
		return ApproxMWVCCongest(g, 0.5, opts)
	},
	"mvc-clique-det": func(g *graph.Graph, opts *Options) (*Result, error) {
		return ApproxMVCCliqueDeterministic(g, 0.5, opts)
	},
	"mvc-clique-rand": func(g *graph.Graph, opts *Options) (*Result, error) {
		return ApproxMVCCliqueRandomized(g, 0.5, opts)
	},
	"mds-congest": func(g *graph.Graph, opts *Options) (*Result, error) {
		return ApproxMDSCongest(g, &MDSOptions{Options: *opts})
	},
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden_r2.json")
}

func goldenRecordOf(res *Result) goldenRecord {
	return goldenRecord{
		Solution:      res.Solution.Elements(),
		PhaseISize:    res.PhaseISize,
		FallbackJoins: res.FallbackJoins,
		Rounds:        res.Stats.Rounds,
		Messages:      res.Stats.Messages,
		TotalBits:     res.Stats.TotalBits,
		MaxRoundBits:  res.Stats.MaxRoundBits,
		Bandwidth:     res.Stats.Bandwidth,
	}
}

// TestGoldenR2Regression runs the whole seed matrix under both engines and
// compares every record against testdata/golden_r2.json.
func TestGoldenR2Regression(t *testing.T) {
	graphs := goldenGraphs()
	got := make(map[string]goldenRecord)
	for gName, g := range graphs {
		for aName, run := range goldenAlgorithms {
			key := fmt.Sprintf("%s|%s|seed7", aName, gName)
			var records [2]goldenRecord
			for i, engine := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
				res, err := run(g, &Options{Seed: 7, Engine: engine})
				if err != nil {
					t.Fatalf("%s (%s): %v", key, engine, err)
				}
				records[i] = goldenRecordOf(res)
			}
			if !reflect.DeepEqual(records[0], records[1]) {
				t.Fatalf("%s: engines diverge:\ngoroutine: %+v\nbatch:     %+v", key, records[0], records[1])
			}
			// The default (kernel-exact) and the pinned legacy raw exact
			// solver must be byte-identical on the golden matrix: the
			// ladder's direct path guarantees it below DefaultDirectN.
			legacy, err := run(g, &Options{Seed: 7, Engine: congest.EngineBatch, LocalSolver: exact.VertexCover})
			if err != nil {
				t.Fatalf("%s (legacy solver): %v", key, err)
			}
			if lr := goldenRecordOf(legacy); !reflect.DeepEqual(records[0], lr) {
				t.Fatalf("%s: kernel-exact default diverges from the legacy exact solver:\nkernel: %+v\nlegacy: %+v",
					key, records[0], lr)
			}
			got[key] = records[0]
		}
	}

	if *updateGolden {
		// json.Marshal sorts map keys, so the file is stable across runs.
		payload, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath(t)), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), append(payload, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden records to %s", len(got), goldenPath(t))
		return
	}

	raw, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden from a known-good commit): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d records, matrix produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from the current matrix", key)
			continue
		}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s: r = 2 behavior drifted:\ngolden:  %+v\ncurrent: %+v", key, w, g)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: not in the golden file (regenerate with -update-golden)", key)
		}
	}
}
