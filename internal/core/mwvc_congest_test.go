package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func checkMWVCResult(t *testing.T, g *graph.Graph, eps float64, res *Result) {
	t.Helper()
	if ok, w := verify.IsSquareVertexCover(g, res.Solution); !ok {
		t.Fatalf("not a vertex cover of G², witness %v", w)
	}
	sq := g.Square()
	opt := verify.Cost(sq, exact.VertexCover(sq))
	got := verify.Cost(sq, res.Solution)
	if opt == 0 {
		if got != 0 {
			t.Fatalf("OPT=0 but cover weighs %d", got)
		}
		return
	}
	if float64(got) > (1+eps)*float64(opt)+1e-6 {
		t.Fatalf("weighted ratio %d/%d = %.4f exceeds 1+ε = %.4f",
			got, opt, float64(got)/float64(opt), 1+eps)
	}
}

func TestApproxMWVCCongestUnitWeights(t *testing.T) {
	// With all-1 weights the weighted algorithm must match the unweighted
	// guarantee.
	for _, g := range []*graph.Graph{graph.Path(8), graph.Star(9), graph.Caterpillar(4, 3)} {
		for _, eps := range []float64{1, 0.5} {
			res, err := ApproxMWVCCongest(g, eps, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkMWVCResult(t, g, eps, res)
		}
	}
}

func TestApproxMWVCCongestRandomWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(14)
		g := graph.WithRandomWeights(graph.ConnectedGNP(n, 0.2, rng), 30, rng)
		eps := []float64{1, 0.5, 0.25}[trial%3]
		res, err := ApproxMWVCCongest(g, eps, &Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		checkMWVCResult(t, g, eps, res)
	}
}

func TestApproxMWVCCongestZeroWeights(t *testing.T) {
	// Zero-weight vertices join the cover for free (Section 3.2 WLOG), so
	// the solution weight must ignore them entirely.
	b := graph.NewBuilder(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	for v := 0; v < 6; v++ {
		if v%2 == 0 {
			b.SetWeight(v, 0)
		} else {
			b.SetWeight(v, 5)
		}
	}
	g := b.Build()
	res, err := ApproxMWVCCongest(g, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkMWVCResult(t, g, 0.5, res)
	// All zero-weight vertices must be in the cover (they're free).
	for v := 0; v < 6; v += 2 {
		if !res.Solution.Contains(v) {
			t.Fatalf("zero-weight vertex %d missing from cover", v)
		}
	}
}

func TestApproxMWVCCongestHeavyLightMix(t *testing.T) {
	// A star with a heavy center and light leaves: in the square (a
	// clique), the optimum avoids exactly one vertex — the heaviest.
	b := graph.NewBuilder(7)
	for v := 1; v < 7; v++ {
		b.MustAddEdge(0, v)
		b.SetWeight(v, 1)
	}
	b.SetWeight(0, 100)
	g := b.Build()
	res, err := ApproxMWVCCongest(g, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkMWVCResult(t, g, 0.25, res)
	if res.Solution.Contains(0) {
		// OPT = 6 (all leaves); taking the center costs 100+. A (1+ε)
		// solution can't afford it.
		t.Fatal("heavy center selected despite cheap alternative")
	}
}

func TestApproxMWVCCongestRejectsBadInput(t *testing.T) {
	g := graph.Path(4)
	if _, err := ApproxMWVCCongest(g, 0, nil); err == nil {
		t.Fatal("eps=0 accepted")
	}
	// Oversized weight: exceeds the O(log n)-bit assumption.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.SetWeight(0, 1<<40)
	if _, err := ApproxMWVCCongest(b.Build(), 0.5, nil); err == nil {
		t.Fatal("oversized weight accepted")
	}
}

func TestApproxMWVCPhaseIFiresOnWeightedCaterpillar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.WithRandomWeights(graph.Caterpillar(5, 8), 4, rng)
	res, err := ApproxMWVCCongest(g, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseISize == 0 {
		t.Fatal("expected Phase I selections on a heavy-degree caterpillar")
	}
	checkMWVCResult(t, g, 0.5, res)
}
