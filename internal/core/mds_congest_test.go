package core

import (
	"math"
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func checkMDSResult(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if ok, w := verify.IsSquareDominatingSet(g, res.Solution); !ok {
		t.Fatalf("not a dominating set of G², witness %d", w)
	}
}

func TestApproxMDSCongestSmallGraphs(t *testing.T) {
	cases := map[string]*graph.Graph{
		"single": graph.NewBuilder(1).Build(),
		"edge":   graph.Path(2),
		"path9":  graph.Path(9),
		"star8":  graph.Star(8),
		"cycle9": graph.Cycle(9),
		"grid":   graph.Grid(3, 4),
	}
	for name, g := range cases {
		res, err := ApproxMDSCongest(g, &MDSOptions{Options: Options{Seed: 7}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkMDSResult(t, g, res)
	}
}

func TestApproxMDSCongestApproximationQuality(t *testing.T) {
	// Theorem 28: O(log Δ)-approximation. Check against the exact optimum
	// of G² on small random graphs with the generous 8·H_{Δ²+1} bound the
	// [CD18] analysis gives (footnote 4).
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(12)
		g := graph.ConnectedGNP(n, 0.2, rng)
		res, err := ApproxMDSCongest(g, &MDSOptions{Options: Options{Seed: int64(trial)}})
		if err != nil {
			t.Fatal(err)
		}
		checkMDSResult(t, g, res)
		sq := g.Square()
		opt := verify.Cost(sq, exact.DominatingSet(sq))
		got := verify.Cost(sq, res.Solution)
		h := 0.0
		for k := 1; k <= g.MaxDegree()*g.MaxDegree()+1; k++ {
			h += 1.0 / float64(k)
		}
		bound := 8 * h * float64(opt)
		if float64(got) > bound {
			t.Fatalf("n=%d: MDS size %d exceeds 8·H_{Δ²+1}·OPT = %.1f (opt %d)", n, got, bound, opt)
		}
	}
}

func TestApproxMDSCongestStarIsNearOptimal(t *testing.T) {
	// The square of a star is a clique: OPT = 1. The algorithm should find
	// a tiny dominating set (the density estimates make the center or any
	// vertex a winner fast).
	g := graph.Star(16)
	res, err := ApproxMDSCongest(g, &MDSOptions{Options: Options{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	checkMDSResult(t, g, res)
	if res.Solution.Count() > 4 {
		t.Fatalf("star: dominating set of %d vertices, want ≤ 4", res.Solution.Count())
	}
}

func TestApproxMDSCongestNoFallbackOnTypicalRuns(t *testing.T) {
	// The fallback is a w.h.p. safety net; on these sizes it should never
	// fire with the default phase budget.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		g := graph.ConnectedGNP(16, 0.2, rng)
		res, err := ApproxMDSCongest(g, &MDSOptions{Options: Options{Seed: int64(trial)}})
		if err != nil {
			t.Fatal(err)
		}
		if res.FallbackJoins != 0 {
			t.Fatalf("fallback fired: %d joins", res.FallbackJoins)
		}
	}
}

func TestApproxMDSCongestPolylogRounds(t *testing.T) {
	// Rounds must scale polylogarithmically in n (for fixed degree
	// profile): going from n=16 to n=64 (4×) may only grow rounds by the
	// polylog factor, far below 4×... but constants matter, so just check
	// the growth is well below linear.
	rounds := func(n int) int {
		g := graph.Cycle(n)
		res, err := ApproxMDSCongest(g, &MDSOptions{Options: Options{Seed: 2}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	r16, r64 := rounds(16), rounds(64)
	if float64(r64) > 2.5*float64(r16) {
		t.Fatalf("rounds grew too fast: n=16→%d, n=64→%d", r16, r64)
	}
}

func TestApproxMDSCongestDeterministicPerSeed(t *testing.T) {
	g := graph.Grid(3, 5)
	run := func() string {
		res, err := ApproxMDSCongest(g, &MDSOptions{Options: Options{Seed: 11}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Solution.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different solutions: %s vs %s", a, b)
	}
}

func TestApproxMDSCongestEmptyGraphRejected(t *testing.T) {
	if _, err := ApproxMDSCongest(graph.NewBuilder(0).Build(), nil); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestApproxMDSCongestP7NeedsAtLeastTwo(t *testing.T) {
	// P7²: one vertex dominates at most positions within distance 2; OPT=2.
	g := graph.Path(7)
	res, err := ApproxMDSCongest(g, &MDSOptions{Options: Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	checkMDSResult(t, g, res)
	if res.Solution.Count() < 2 {
		t.Fatal("impossible: P7² needs ≥ 2 dominators")
	}
	if math.IsNaN(float64(res.Stats.Rounds)) || res.Stats.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}
