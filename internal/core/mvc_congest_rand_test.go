package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func TestApproxMVCCongestRandomizedSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(18)
		g := graph.ConnectedGNP(n, 0.25, rng)
		eps := []float64{1, 0.5}[trial%2]
		res, err := ApproxMVCCongestRandomized(g, eps, &Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		checkMVCResult(t, g, eps, res)
	}
}

func TestApproxMVCCongestRandomizedDenseFiresPhaseI(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := graph.ConnectedGNP(48, 0.5, rng)
	res, err := ApproxMVCCongestRandomized(g, 0.5, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseISize == 0 {
		t.Fatal("voting Phase I never fired on a dense graph")
	}
	if ok, _ := verify.IsSquareVertexCover(g, res.Solution); !ok {
		t.Fatal("infeasible")
	}
}

func TestApproxMVCCongestRandomizedMatchesGuaranteeAcrossSeeds(t *testing.T) {
	g := graph.Caterpillar(6, 6)
	sq := g.Square()
	opt := verify.Cost(sq, exact.VertexCover(sq))
	for seed := int64(0); seed < 5; seed++ {
		res, err := ApproxMVCCongestRandomized(g, 0.5, &Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := verify.IsSquareVertexCover(g, res.Solution); !ok {
			t.Fatalf("seed %d infeasible", seed)
		}
		got := verify.Cost(sq, res.Solution)
		if float64(got) > 1.5*float64(opt)+1e-9 {
			t.Fatalf("seed %d: ratio %d/%d", seed, got, opt)
		}
	}
}

func TestApproxMVCCongestRandomizedRejectsBadInput(t *testing.T) {
	if _, err := ApproxMVCCongestRandomized(graph.Path(4), 0, nil); err == nil {
		t.Fatal("eps=0 accepted")
	}
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	if _, err := ApproxMVCCongestRandomized(b.Build(), 0.5, nil); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestConnectivityValidationAcrossAlgorithms(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	g := b.Build()
	if _, err := ApproxMVCCongest(g, 0.5, nil); err == nil {
		t.Fatal("MVC accepted disconnected graph")
	}
	if _, err := ApproxMWVCCongest(g, 0.5, nil); err == nil {
		t.Fatal("MWVC accepted disconnected graph")
	}
	if _, err := ApproxMVCCliqueDeterministic(g, 0.5, nil); err == nil {
		t.Fatal("clique-det accepted disconnected graph")
	}
	if _, err := ApproxMVCCliqueRandomized(g, 0.5, nil); err == nil {
		t.Fatal("clique-rand accepted disconnected graph")
	}
	// MDS has no leader: disconnected inputs are legitimate (each
	// component runs independently).
	res, err := ApproxMDSCongest(g, &MDSOptions{Options: Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := verify.IsSquareDominatingSet(g, res.Solution); !ok {
		t.Fatalf("disconnected MDS leaves %d undominated", v)
	}
}
