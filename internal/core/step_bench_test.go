package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/bitset"
	"powergraph/internal/centralized"
	"powergraph/internal/congest"
	"powergraph/internal/graph"
)

// BenchmarkStepVsCoroutine compares, per algorithm, the batch engine's two
// execution paths on one mid-size instance: the coroutine adapter driving
// the preserved blocking reference (the only batch path PR 2 had for these
// algorithms) against the native step program the registry now dispatches
// to. Run it with `make bench-step`.
func BenchmarkStepVsCoroutine(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ConnectedGNP(256, 8.0/256, rng)
	gw := graph.WithRandomWeights(g, 20, rng)
	opts := &Options{Seed: 1, Engine: congest.EngineBatch}
	// The randomized variants never fire Phase I on a sparse instance
	// (τ ≥ 10 > average degree), so their leader solves essentially the
	// whole of G²; the polynomial 5/3 solver (Corollary 17) keeps that
	// identical-in-both-paths local solve from drowning the engine numbers.
	fastOpts := &Options{Seed: 1, Engine: congest.EngineBatch,
		LocalSolver: func(h *graph.Graph) *bitset.Set { return centralized.FiveThirdsOnGraph(h).Cover }}
	// Reduced estimator factors keep the MDS rounds benchable; both paths
	// run the identical schedule.
	mdsOpts := &MDSOptions{Options: *opts, SampleFactor: 1, PhaseFactor: 1}

	// Larger weighted/MDS instances pin the speedup the scale sweep relies
	// on at n = 1000 (the acceptance numbers quoted in ARCHITECTURE.md).
	g1k := graph.ConnectedGNP(1000, 8.0/1000, rng)
	gw1k := graph.WithRandomWeights(g1k, 20, rng)
	mdsOpts1k := &MDSOptions{Options: *opts}

	cases := []struct {
		name      string
		coroutine func() (*Result, error)
		native    func() (*Result, error)
	}{
		{
			"mvc-congest",
			func() (*Result, error) { return blockingMVCCongest(g, 0.5, opts) },
			func() (*Result, error) { return ApproxMVCCongest(g, 0.5, opts) },
		},
		{
			"mwvc-congest",
			func() (*Result, error) { return blockingMWVCCongest(gw, 0.5, opts) },
			func() (*Result, error) { return ApproxMWVCCongest(gw, 0.5, opts) },
		},
		{
			"mwvc-congest-n1000",
			func() (*Result, error) { return blockingMWVCCongest(gw1k, 0.5, fastOpts) },
			func() (*Result, error) { return ApproxMWVCCongest(gw1k, 0.5, fastOpts) },
		},
		{
			"mds-congest-n1000",
			func() (*Result, error) { return blockingMDSCongest(g1k, mdsOpts1k) },
			func() (*Result, error) { return ApproxMDSCongest(g1k, mdsOpts1k) },
		},
		{
			"mvc-congest-rand",
			func() (*Result, error) { return blockingMVCCongestRandomized(g, 0.5, fastOpts) },
			func() (*Result, error) { return ApproxMVCCongestRandomized(g, 0.5, fastOpts) },
		},
		{
			"mvc-clique-det",
			func() (*Result, error) { return blockingMVCCliqueDeterministic(g, 0.5, opts) },
			func() (*Result, error) { return ApproxMVCCliqueDeterministic(g, 0.5, opts) },
		},
		{
			"mvc-clique-rand",
			func() (*Result, error) { return blockingMVCCliqueRandomized(g, 0.5, fastOpts) },
			func() (*Result, error) { return ApproxMVCCliqueRandomized(g, 0.5, fastOpts) },
		},
		{
			"mds-congest",
			func() (*Result, error) { return blockingMDSCongest(g, mdsOpts) },
			func() (*Result, error) { return ApproxMDSCongest(g, mdsOpts) },
		},
	}
	for _, c := range cases {
		b.Run(c.name+"/coroutine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.coroutine(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.native(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
