package core

import (
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// ApproxMVCCliqueRandomized runs Theorem 11: a randomized
// (1+ε)-approximation for G²-MVC in the CONGESTED CLIQUE in O(log n + 1/ε)
// rounds, w.h.p.
//
// Each iteration, every live vertex votes for its incident candidate with
// the highest random rank; a candidate succeeding on ≥ dR(c)/8 votes moves
// its whole neighborhood into the cover. The potential Φ = Σ_c dR(c) drops
// by an expected constant factor per iteration (Claim 1), so O(log n)
// iterations suffice w.h.p.; after 8·log₂n + 16 iterations the ranks switch
// to the node ids, which makes the globally maximal candidate always
// succeed and guarantees termination unconditionally. Phase II is Lemma 9's
// direct O(1/ε)-round gather.
//
// The algorithm is a congest.StepProgram (StepVotingPhase in clique mode
// for Phase I, the clique-model broadcast primitives for Phase II); the
// blocking reference is preserved in mvc_clique_rand_equiv_test.go and
// TestStepCliqueRandMatchesBlockingReference proves the two
// indistinguishable.
func ApproxMVCCliqueRandomized(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	if _, err := epsilonToL(eps); err != nil {
		return nil, err
	}
	r, err := opts.power()
	if err != nil {
		return nil, err
	}
	if eps > 1 {
		return &Result{Solution: bitset.Full(g.N()), PhaseISize: g.N()}, nil
	}
	if err := requireConnected(g); err != nil {
		return nil, err
	}
	n := g.N()
	solver, solveRep := opts.leaderSolver()
	// Threshold: a vertex is a candidate while dR(c) > 8/ε + 2 (it "leaves
	// C" as soon as its live degree drops to the threshold or below).
	tau := int(math.Ceil(8/eps)) + 2
	if r == 1 {
		// No live degree can exceed n, so candidacy never fires and the
		// clique's global OR ends Phase I after one iteration: at r = 1 the
		// committed neighborhoods would not be Gʳ-cliques.
		tau = n
	}

	cfg := congest.Config{
		Graph:           g,
		Ctx:             opts.ctx(),
		Model:           congest.CongestedClique,
		Engine:          opts.engine(),
		Shards:          opts.shards(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
		Tracer:          opts.tracer(),
	}
	res, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[nodeOut] {
		return &mvcCliqueRandProgram{
			n: n, tau: tau, power: r, solver: solver, gmode: opts.gatherMode(),
			voting: primitives.NewStepVotingPhase(primitives.VotingConfig{
				Tau:         tau,
				RandomIters: 8*congest.IDBits(n) + 16,
				Clique:      true,
				RankWidth:   4 * congest.IDBits(n),
				IDWidth:     congest.IDBits(n),
			}),
		}
	})
	if err != nil {
		return nil, err
	}
	return assembleWithSolve(res.Outputs, res.Stats, solveRep), nil
}

// mvcCliqueRandProgram is Theorem 11 in step form: the clique-mode voting
// phase (terminated by the per-iteration global OR), then the step-form
// Lemma 9 Phase II.
type mvcCliqueRandProgram struct {
	n, tau, power int
	solver        LocalSolver
	gmode         GatherMode

	voting *primitives.StepVotingPhase
	phase2 *cliqueStepPhaseII
}

func (p *mvcCliqueRandProgram) Step(nd *congest.Node) (bool, error) {
	for {
		if p.phase2 != nil {
			if !p.phase2.Step(nd) {
				return false, nil
			}
			return true, nil
		}
		if !p.voting.Step(nd) {
			return false, nil
		}
		p.phase2 = newCliqueStepPhaseII(nd, p.voting.InR(), p.tau, p.n, p.solver, p.power, p.gmode)
	}
}

func (p *mvcCliqueRandProgram) Output() nodeOut {
	return nodeOut{InSolution: p.voting.InS() || p.phase2.InCover(), InPhaseI: p.voting.InS()}
}
