package core

import (
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/graph"
)

// rankMsg announces a candidate's random rank (drawn from [n⁴], exactly the
// 4·⌈log₂ n⌉ bits the paper's voting scheme budgets for).
type rankMsg struct {
	Rank  int64
	Width int
}

func (m rankMsg) Bits() int { return m.Width }

// ApproxMVCCliqueRandomized runs Theorem 11: a randomized
// (1+ε)-approximation for G²-MVC in the CONGESTED CLIQUE in O(log n + 1/ε)
// rounds, w.h.p.
//
// Each iteration, every live vertex votes for its incident candidate with
// the highest random rank; a candidate succeeding on ≥ dR(c)/8 votes moves
// its whole neighborhood into the cover. The potential Φ = Σ_c dR(c) drops
// by an expected constant factor per iteration (Claim 1), so O(log n)
// iterations suffice w.h.p.; after 8·log₂n + 16 iterations the ranks switch
// to the node ids, which makes the globally maximal candidate always
// succeed and guarantees termination unconditionally. Phase II is Lemma 9's
// direct O(1/ε)-round gather.
func ApproxMVCCliqueRandomized(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	if _, err := epsilonToL(eps); err != nil {
		return nil, err
	}
	if eps > 1 {
		return &Result{Solution: bitset.Full(g.N()), PhaseISize: g.N()}, nil
	}
	if err := requireConnected(g); err != nil {
		return nil, err
	}
	n := g.N()
	solver := opts.localSolver()
	// Threshold: a vertex is a candidate while dR(c) > 8/ε + 2 (it "leaves
	// C" as soon as its live degree drops to the threshold or below).
	tau := int(math.Ceil(8/eps)) + 2
	randomIters := 8*congest.IDBits(n) + 16
	rankW := 4 * congest.IDBits(n)
	rankMax := int64(1) << uint(rankW)

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CongestedClique,
		Engine:          opts.engine(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		inR, inS := true, false
		succeeded := false
		idw := congest.IDBits(n)

		for it := 0; ; it++ {
			// Round 1: live-status exchange over G-edges.
			nd.BroadcastNeighbors(congest.NewIntWidth(boolBit(inR), 1))
			nd.NextRound()
			live := make([]int, 0, nd.Degree())
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					live = append(live, in.From)
				}
			}
			dR := len(live)
			candidate := !succeeded && dR > tau

			// Round 2: global termination OR via the clique.
			nd.Broadcast(congest.NewIntWidth(boolBit(candidate), 1))
			nd.NextRound()
			any := candidate
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					any = true
				}
			}
			if !any {
				break
			}

			// Round 3: candidates announce ranks to their G-neighbors.
			// After the w.h.p. horizon, ranks deterministically become the
			// candidate's id, forcing the global maximum to succeed.
			var myRank int64
			if candidate {
				if it < randomIters {
					myRank = nd.Rand().Int63n(rankMax)
				} else {
					myRank = int64(nd.ID())
				}
				nd.BroadcastNeighbors(rankMsg{Rank: myRank, Width: rankW})
			}
			nd.NextRound()
			voteFor := -1
			var bestRank int64 = -1
			if inR {
				for _, in := range nd.Recv() {
					m, ok := in.Msg.(rankMsg)
					if !ok {
						continue
					}
					// Highest rank wins; ties break toward the higher id
					// (deterministic, consistent at every voter).
					if m.Rank > bestRank || (m.Rank == bestRank && in.From > voteFor) {
						bestRank = m.Rank
						voteFor = in.From
					}
				}
			}

			// Round 4: voters announce their chosen candidate to all
			// G-neighbors; candidates count votes naming them.
			if voteFor != -1 {
				nd.BroadcastNeighbors(congest.NewIntWidth(int64(voteFor), idw))
			}
			nd.NextRound()
			votes := 0
			for _, in := range nd.Recv() {
				if m, ok := in.Msg.(congest.Int); ok && int(m.V) == nd.ID() {
					votes++
				}
			}
			success := candidate && votes*8 >= dR

			// Round 5: successful candidates move N(c) into S.
			if success {
				nd.BroadcastNeighbors(congest.Flag{})
				succeeded = true
			}
			nd.NextRound()
			if len(nd.Recv()) > 0 {
				inS = true
				inR = false
			}
		}

		sol := cliquePhaseII(nd, inR, tau, solver)
		return nodeOut{InSolution: inS || sol, InPhaseI: inS}, nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(res.Outputs, res.Stats), nil
}
