package core

import (
	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// ApproxMVCCliqueDeterministic runs Corollary 10: a deterministic
// (1+ε)-approximation for G²-MVC in the CONGESTED CLIQUE, in O(εn + 1/ε)
// rounds. Phase I is Algorithm 1's (run over G-edges); Phase II uses the
// clique's all-to-all links: every node ships its ≤ 1/ε F-edges straight to
// the leader in parallel (Lemma 9) and the leader answers in one round.
//
// The algorithm is a congest.StepProgram (clique-model broadcast primitives
// StepCliqueLeader and StepDirectGather serve Phase II); the blocking
// reference is preserved in mvc_clique_equiv_test.go and
// TestStepCliqueDetMatchesBlockingReference proves the two
// indistinguishable.
func ApproxMVCCliqueDeterministic(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	l, err := epsilonToL(eps)
	if err != nil {
		return nil, err
	}
	r, err := opts.power()
	if err != nil {
		return nil, err
	}
	if eps > 1 {
		return &Result{Solution: bitset.Full(g.N()), PhaseISize: g.N()}, nil
	}
	if err := requireConnected(g); err != nil {
		return nil, err
	}
	n := g.N()
	solver, solveRep := opts.leaderSolver()
	iterations := n/(l+1) + 1
	if r == 1 {
		// Committed neighborhoods are Gʳ-cliques only for r ≥ 2.
		iterations = 0
	}

	cfg := congest.Config{
		Graph:           g,
		Ctx:             opts.ctx(),
		Model:           congest.CongestedClique,
		Engine:          opts.engine(),
		Shards:          opts.shards(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
		Tracer:          opts.tracer(),
	}
	res, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[nodeOut] {
		return &mvcCliqueDetProgram{
			n: n, l: l, power: r, iterations: iterations, solver: solver,
			gmode: opts.gatherMode(),
			inR:   true, inC: true,
		}
	})
	if err != nil {
		return nil, err
	}
	return assembleWithSolve(res.Outputs, res.Stats, solveRep), nil
}

// Phase-I states of mvcCliqueDetProgram.
const (
	cliqueDetStatus = iota // join read + status broadcast (or Phase II entry)
	cliqueDetDR            // status read + clique OR start
	cliqueDetOR            // OR read: early exit, or 2-hop max start
	cliqueDetHop           // 2-hop max in flight, JOINs on its final slice
)

// mvcCliqueDetProgram is Corollary 10 in step form. Phase I mirrors
// Algorithm 1's center selection over G-edges with one extra clique round
// per iteration computing the global "any candidate left?" OR, so quiet
// instances stop in O(1) iterations; Phase II is the step-form Lemma 9
// gather (cliqueStepPhaseII).
type mvcCliqueDetProgram struct {
	n, l, power, iterations int
	solver                  LocalSolver
	gmode                   GatherMode

	sub, it       int
	inR, inC, inS bool
	candidate     bool
	hop           *primitives.StepHopMax
	phase2        *cliqueStepPhaseII
}

func (p *mvcCliqueDetProgram) Step(nd *congest.Node) (bool, error) {
	for {
		if p.phase2 != nil {
			if !p.phase2.Step(nd) {
				return false, nil
			}
			return true, nil
		}
		switch p.sub {
		case cliqueDetStatus:
			if p.it > 0 && len(nd.Recv()) > 0 {
				p.inS = true
				p.inR = false
			}
			if p.it == p.iterations {
				nd.SpanEnd("phase1", 0) // no-op when Phase I never began
				p.enterPhaseII(nd)
				continue
			}
			if p.it == 0 {
				nd.SpanBegin("phase1", 0)
			}
			nd.SpanBegin("phase1-iter", p.it)
			nd.BroadcastNeighbors(congest.NewIntWidth(boolBit(p.inR), 1))
			p.sub = cliqueDetDR
			return false, nil
		case cliqueDetDR:
			dR := 0
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					dR++
				}
			}
			p.candidate = p.inC && dR > p.l
			// Global OR via the clique.
			nd.Broadcast(congest.NewIntWidth(boolBit(p.candidate), 1))
			p.sub = cliqueDetOR
			return false, nil
		case cliqueDetOR:
			any := p.candidate
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					any = true
				}
			}
			if !any {
				nd.SpanEnd("phase1-iter", p.it)
				nd.SpanEnd("phase1", 0)
				p.enterPhaseII(nd)
				continue
			}
			val := int64(0)
			if p.candidate {
				val = int64(nd.ID()) + 1
			}
			p.hop = primitives.NewStepTwoHopMax(val)
			p.hop.Step(nd)
			p.sub = cliqueDetHop
			return false, nil
		default: // cliqueDetHop
			if !p.hop.Step(nd) {
				return false, nil
			}
			if p.candidate && p.hop.Max() == int64(nd.ID())+1 {
				nd.BroadcastNeighbors(congest.Flag{})
				p.inC = false
			}
			nd.SpanEnd("phase1-iter", p.it)
			p.it++
			p.sub = cliqueDetStatus
			return false, nil
		}
	}
}

// enterPhaseII starts the clique Phase II in the current slice (its first
// send, the leader-election broadcast, is queued by the caller's next
// phase2.Step call in the same slice).
func (p *mvcCliqueDetProgram) enterPhaseII(nd *congest.Node) {
	p.phase2 = newCliqueStepPhaseII(nd, p.inR, p.l, p.n, p.solver, p.power, p.gmode)
}

func (p *mvcCliqueDetProgram) Output() nodeOut {
	return nodeOut{InSolution: p.inS || p.phase2.InCover(), InPhaseI: p.inS}
}

// cliqueStepPhaseII is the step form of the shared CONGESTED CLIQUE Phase II
// (Lemma 9): a one-round leader election, a final U-status exchange over
// G-edges, maxItems parallel rounds of direct item shipping to the leader, a
// local solve, and a one-round answer. At r = 2 the shipped items are the
// F-edges of Lemma 2 and maxItems must upper-bound every node's F-edge
// count; at other powers the near-U gather of power_phase2.go runs instead
// (grown over G-edges), every near node ships its gather-selected incident
// edges — the sparsified certificate subset by default, all of them under
// GatherLegacy — and the common-knowledge item bound is n (a node never
// holds more than its degree plus one membership pair).
type cliqueStepPhaseII struct {
	n, power, maxItems int
	inR                bool
	solver             LocalSolver
	gmode              GatherMode

	sub      int
	started  bool
	leader   *primitives.StepCliqueLeader
	status   *primitives.StepStatusExchange
	near     *powerGather
	gather   *primitives.StepDirectGather
	leaderID int
	inCover  bool
}

func newCliqueStepPhaseII(nd *congest.Node, inR bool, maxItems, n int, solver LocalSolver, power int, gmode GatherMode) *cliqueStepPhaseII {
	if power != 2 {
		maxItems = n
	}
	return &cliqueStepPhaseII{
		n: n, power: power, maxItems: maxItems, inR: inR, solver: solver, gmode: gmode,
		leader: primitives.NewStepCliqueLeader(nd),
	}
}

// startGather ships this node's items toward the elected leader.
func (p *cliqueStepPhaseII) startGather(items []congest.Message) {
	if len(items) > p.maxItems {
		// Protocol invariant broken: Phase I should have bounded U-degrees
		// (r = 2), or the degree+1 bound failed (other powers).
		panic("core: clique Phase II item bound violated")
	}
	p.gather = primitives.NewStepDirectGather(p.leaderID, items, p.maxItems)
}

func (p *cliqueStepPhaseII) Step(nd *congest.Node) bool {
	for {
		switch p.sub {
		case 0:
			if !p.started {
				p.started = true
				nd.SpanBegin("leader-elect", 0)
			}
			if !p.leader.Step(nd) {
				return false
			}
			nd.SpanEnd("leader-elect", 0)
			p.leaderID = p.leader.Leader()
			p.status = primitives.NewStepStatusExchange(p.inR)
			p.sub = 1
		case 1:
			if !p.status.Step(nd) {
				return false
			}
			if p.power == 2 {
				p.startGather(uEdgeItems(p.n, nd.ID(), p.status.On()))
				nd.SpanBegin("phase2-gather", 0)
				p.sub = 3
				continue
			}
			p.near = newPowerGather(p.power, p.inR, p.status.On(), p.gmode)
			p.sub = 2
		case 2:
			if !p.near.Step(nd) {
				return false
			}
			p.startGather(powerEdgeItems(nd, p.near, p.inR))
			nd.SpanBegin("phase2-gather", 0)
			p.sub = 3
		case 3:
			if !p.gather.Step(nd) {
				return false
			}
			nd.SpanEnd("phase2-gather", 0)
			// Leader solves locally and answers every cover member in one
			// round.
			if nd.ID() == p.leaderID {
				nd.SpanBegin("leader-solve", 0)
				var cover *bitset.Set
				if p.power == 2 {
					cover = leaderSolveRemainder(p.n, p.gather.Collected(), p.solver)
				} else {
					cover = leaderSolvePowerRemainder(p.n, p.power, p.gather.Collected(), p.solver)
				}
				p.inCover = cover.Contains(nd.ID())
				cover.ForEach(func(v int) bool {
					if v != nd.ID() {
						nd.MustSend(v, congest.Flag{})
					}
					return true
				})
				nd.SpanEnd("leader-solve", 0)
			}
			nd.SpanBegin("phase2-flood", 0)
			p.sub = 4
			return false
		default:
			if len(nd.Recv()) > 0 {
				p.inCover = true
			}
			nd.SpanEnd("phase2-flood", 0)
			return true
		}
	}
}

// InCover reports whether this node is in the leader's cover; valid once
// done.
func (p *cliqueStepPhaseII) InCover() bool { return p.inCover }
