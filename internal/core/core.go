// Package core implements the paper's primary contributions as executable
// distributed algorithms on the CONGEST / CONGESTED CLIQUE simulator:
//
//   - Theorem 1: deterministic (1+ε)-approximate G²-MVC in O(n/ε) CONGEST
//     rounds (Algorithm 1);
//   - Theorem 7: deterministic (1+ε)-approximate G²-MWVC in O(n·log n/ε)
//     CONGEST rounds;
//   - Corollary 10: deterministic (1+ε)-approximate G²-MVC in O(εn + 1/ε)
//     CONGESTED CLIQUE rounds;
//   - Theorem 11: randomized (1+ε)-approximate G²-MVC in O(log n + 1/ε)
//     CONGESTED CLIQUE rounds via the voting scheme;
//   - Corollary 17: 5/3-approximate G²-MVC in O(n) CONGEST rounds with
//     polynomial-time local computation;
//   - Theorem 28: randomized O(log Δ)-approximate G²-MDS in polylog(n)
//     CONGEST rounds, simulating the [CD18] algorithm with the Lemma 29
//     2-hop cardinality estimator.
//
// All algorithms communicate over the input graph G only; the square G² is
// never materialized by the distributed code (only by checkers and local
// leader computations, as in the paper).
//
// Beyond the paper, every algorithm is generalized to arbitrary power
// graphs Gʳ via Options.Power (default r = 2, reproducing the paper's
// behavior bit for bit): Phase I is power-independent for r ≥ 2 and
// disabled at r = 1, Phase II rebuilds Gʳ[U] from the near-U edge gather of
// power_phase2.go, and the Theorem 28 estimator floods run at depth r. See
// ARCHITECTURE.md, "Parametric Gʳ collectives".
//
// Every algorithm runs on either simulator engine via Options.Engine with
// identical results (seeds fix the whole run). All of them are written as
// congest.StepPrograms — each node's per-round logic is a plain function
// call — so the batch engine executes them with no per-node goroutines or
// coroutine adaptation at all, which is what makes the n ≥ 2000 sweeps of
// specs/step-sweep.json practical. Each algorithm's original blocking
// handler is preserved verbatim in its *_equiv_test.go file, where an
// equivalence test proves the step program message-for-message and
// stat-for-stat indistinguishable from it on both engines.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/graph"
	"powergraph/internal/kernel"
	"powergraph/internal/obs"
)

// LocalSolver computes a vertex cover of a (small, reconstructed) graph at
// the leader during Phase II. Algorithm 1 uses an exact-quality solver;
// Corollary 17 swaps in the centralized 5/3-approximation for polynomial
// local work. The default is the kernelize-then-solve ladder of
// internal/kernel — reduction rules, then bounded branch and bound, then a
// polynomial local-ratio fallback — which matches the legacy raw exact
// solver bit for bit on small instances (its direct path) and cracks the
// large sparse leader instances the raw solver could not.
type LocalSolver func(*graph.Graph) *bitset.Set

// Options tune a distributed run. The zero value is ready to use.
type Options struct {
	// Ctx, when non-nil, cancels an in-flight simulation at its next round
	// barrier (congest.Config.Ctx): the run aborts with an error wrapping
	// congest.ErrCanceled and the context's cause. nil means never canceled.
	Ctx context.Context
	// Seed drives all node-local randomness (deterministic per seed).
	Seed int64
	// Engine selects the simulator's execution engine
	// (congest.EngineGoroutine by default, congest.EngineBatch for the
	// batched event-driven engine). Both produce identical results for
	// identical seeds; batch is the fast choice at large n.
	Engine congest.EngineMode
	// Shards splits the batch engine's per-round node sweep across that
	// many workers (congest.Config.Shards). Output is byte-identical at
	// any shard count; the goroutine engine ignores the knob. Zero or one
	// means the sequential sweep.
	Shards int
	// BandwidthFactor overrides the per-message budget multiplier
	// (B = factor·⌈log₂ n⌉ bits). Zero selects each algorithm's default.
	BandwidthFactor int
	// MaxRounds aborts runaway executions; zero selects the engine default.
	MaxRounds int
	// Power selects the graph power r the run targets: the solution is a
	// cover / dominating set of Gʳ while communication still happens over G
	// only. Zero selects the paper's default r = 2. r = 1 degenerates the
	// MVC/MWVC algorithms to a pure Phase II (1-hop neighborhoods are not
	// G¹-cliques, so Phase I's charging argument needs r ≥ 2); r ≥ 3 keeps
	// Phase I verbatim (a 1-hop neighborhood is a clique of every Gʳ with
	// r ≥ 2) and widens Phase II's reconstruction and the MDS estimator
	// floods to depth r. See ARCHITECTURE.md, "Parametric Gʳ collectives".
	Power int
	// LocalSolver overrides the leader's Phase-II solver (default exact).
	LocalSolver LocalSolver
	// Gather selects the generalized Phase-II gather mode at power ≠ 2:
	// GatherSparsified (zero value, the default) ships each near node's
	// certificate edge subset after the bounded-round StepSparsify labeling;
	// GatherLegacy pins the PR-4 all-incident-edges wire format for
	// differential runs. The paper's r = 2 path ignores the knob.
	Gather GatherMode
	// CutA, when non-nil, makes the run report bits crossing the given
	// vertex cut (Section 5.1 instrumentation).
	CutA *bitset.Set
	// Tracer, when non-nil, receives engine round/span events plus the
	// leader's kernel-solve event (see internal/obs). nil disables tracing
	// at zero cost; an attached tracer never perturbs the seeded run.
	Tracer obs.Tracer
}

func (o *Options) localSolver() LocalSolver {
	s, _ := o.leaderSolver()
	return s
}

// leaderSolver resolves the Phase-II solver. For the default
// kernelize-then-solve path it also returns a report slot that the solver
// fills when the leader invokes it (nil for custom LocalSolvers, whose
// internals the core cannot see).
func (o *Options) leaderSolver() (LocalSolver, *kernel.Report) {
	if o != nil && o.LocalSolver != nil {
		return o.LocalSolver, nil
	}
	tr := o.tracer()
	ks := kernel.NewSolver(kernel.Config{})
	rep := new(kernel.Report)
	return func(h *graph.Graph) *bitset.Set {
		start := time.Now()
		cover, r := ks.VertexCover(h)
		*rep = r
		if tr != nil {
			tr.KernelSolve(obs.KernelSolveEvent{
				Path:        r.Path,
				InputN:      r.InputN,
				InputM:      r.InputM,
				KernelN:     r.KernelN,
				KernelM:     r.KernelM,
				SearchNodes: r.SearchNodes,
				ForcedCost:  r.ForcedCost,
				LowerBound:  r.LowerBound,
				Cost:        r.Cost,
				Optimal:     r.Optimal,
				Rules:       r.Rules.Map(),
				DurationNS:  time.Since(start).Nanoseconds(),
				ReduceNS:    r.ReduceNS,
				SolveNS:     r.SolveNS,
			})
		}
		return cover
	}, rep
}

func (o *Options) ctx() context.Context {
	if o == nil {
		return nil
	}
	return o.Ctx
}

func (o *Options) seed() int64 {
	if o == nil {
		return 0
	}
	return o.Seed
}

func (o *Options) engine() congest.EngineMode {
	if o == nil {
		return congest.EngineGoroutine
	}
	return o.Engine
}

func (o *Options) shards() int {
	if o == nil {
		return 0
	}
	return o.Shards
}

func (o *Options) bandwidthFactor(def int) int {
	if o != nil && o.BandwidthFactor != 0 {
		return o.BandwidthFactor
	}
	return def
}

func (o *Options) maxRounds() int {
	if o == nil {
		return 0
	}
	return o.MaxRounds
}

// power resolves Options.Power, rejecting non-positive explicit values.
func (o *Options) power() (int, error) {
	if o == nil || o.Power == 0 {
		return 2, nil
	}
	if o.Power < 0 {
		return 0, fmt.Errorf("core: power must be ≥ 1, got %d", o.Power)
	}
	return o.Power, nil
}

func (o *Options) gatherMode() GatherMode {
	if o == nil {
		return GatherSparsified
	}
	return o.Gather
}

func (o *Options) cutA() *bitset.Set {
	if o == nil {
		return nil
	}
	return o.CutA
}

func (o *Options) tracer() obs.Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Result is the outcome of a distributed cover/dominating-set computation.
type Result struct {
	// Solution holds the selected vertices (cover or dominating set).
	Solution *bitset.Set
	// PhaseISize is the number of vertices committed during Phase I
	// (the set S of Algorithm 1); -1 when not applicable.
	PhaseISize int
	// FallbackJoins counts vertices that joined the MDS solution through
	// the unconditional-feasibility fallback after the w.h.p. phase budget
	// (0 w.h.p.; only set by ApproxMDSCongest).
	FallbackJoins int
	// LeaderSolve reports how the Phase-II leader solved its reconstructed
	// Gʳ[U] instance when the default kernelize-then-solve solver ran: the
	// path taken (direct / kernel-exact / kernel-fallback), kernel size,
	// and bounds. Nil for custom LocalSolvers and for runs without a leader
	// solve (MDS, the ε > 1 shortcut).
	LeaderSolve *kernel.Report
	// Stats is the simulator's cost accounting for the whole run.
	Stats congest.Stats
}

// nodeOut is the per-node output assembled into a Result.
type nodeOut struct {
	InSolution bool
	InPhaseI   bool
}

func assemble(outs []nodeOut, stats congest.Stats) *Result {
	sol := bitset.New(len(outs))
	phase1 := 0
	for i, o := range outs {
		if o.InSolution {
			sol.Add(i)
		}
		if o.InPhaseI {
			phase1++
		}
	}
	return &Result{Solution: sol, PhaseISize: phase1, Stats: stats}
}

// assembleWithSolve is assemble plus the leader-solve report (attached only
// when the default solver actually ran — custom solvers pass nil, and a
// zero Path means the leader never invoked it).
func assembleWithSolve(outs []nodeOut, stats congest.Stats, solveRep *kernel.Report) *Result {
	res := assemble(outs, stats)
	if solveRep != nil && solveRep.Path != "" {
		res.LeaderSolve = solveRep
	}
	return res
}

// coverIDItems encodes a cover as the width-idw vertex-id messages Phase II
// floods back from the leader.
func coverIDItems(cover *bitset.Set, idw int) []congest.Message {
	var out []congest.Message
	cover.ForEach(func(v int) bool {
		out = append(out, congest.NewIntWidth(int64(v), idw))
		return true
	})
	return out
}

// uEdgeItems encodes node id's F-edge reports {id, u}, one per live
// neighbor u ∈ U, as the (v, u) pairs of Lemma 2's gather.
func uEdgeItems(n, id int, uNbrs []int) []congest.Message {
	items := make([]congest.Message, 0, len(uNbrs))
	for _, u := range uNbrs {
		items = append(items, congest.NewPair(n, int64(id), int64(u)))
	}
	return items
}

// epsilonToL converts ε into the paper's l = ⌈1/ε⌉ so that ε' = 1/l ≤ ε is
// the unit fraction Algorithm 1 actually runs with (proof of Theorem 1).
func epsilonToL(eps float64) (int, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return 0, fmt.Errorf("core: epsilon must be positive, got %v", eps)
	}
	if eps > 1 {
		eps = 1
	}
	l := int(math.Ceil(1/eps - 1e-12))
	if l < 1 {
		l = 1
	}
	return l, nil
}

// requireConnected rejects inputs the leader-based Phase II cannot serve:
// on a disconnected graph the BFS tree and the gather/flood primitives
// would silently operate on one component only.
func requireConnected(g *graph.Graph) error {
	if g.N() > 0 && !g.Connected() {
		return fmt.Errorf("core: input graph must be connected (run per component)")
	}
	return nil
}
