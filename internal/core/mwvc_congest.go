package core

import (
	"fmt"
	"math/bits"

	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// edgeOrWeight is the Phase-II gather item of the weighted algorithm: either
// an F-edge report {A,B} with B ∈ U, or a weight report (A = vertex, B =
// its weight). One tag bit distinguishes them.
type edgeOrWeight struct {
	IsWeight bool
	A, B     int64
	WA, WB   int
}

func (m edgeOrWeight) Bits() int { return 1 + m.WA + m.WB }

// ApproxMWVCCongest runs the weighted variant of Algorithm 1 (Theorem 7): a
// deterministic (1+ε)-approximation for minimum weighted vertex cover on
// the power graph Gʳ (Options.Power, default r = 2) — in O(n·log n/ε)
// CONGEST rounds at r = 2. The payment loop is power-independent for r ≥ 2
// (ripe classes are cliques of every such Gʳ) and skipped at r = 1; Phase
// II's reconstruction is r-aware (see power_phase2.go).
//
// Phase I picks centers by weight classes: N(c) is partitioned into the
// classes N_i(c) of geometrically increasing weight, and a class is "ripe"
// when its maximum live weight w*_i(c) is at most W_i(c)·ε/(1+ε) — then
// adding N_i(c) ∩ R to the cover costs at most (1+ε) times what any optimal
// cover pays on that clique of G². A fidelity note: the paper's pseudocode
// removes a processed center from C after handling a single class; we keep
// the center eligible while any class remains ripe, which is what the |F|
// bound of Lemma 8 (and hence the Phase-II round bound) actually requires.
//
// The algorithm is a congest.StepProgram over the step-form primitives
// (StepWeightedLocalRatio for Phase I, StepLeaderPipeline for Phase II), so
// the batch engine drives it with no per-node goroutine; the blocking
// reference implementation is preserved in mwvc_congest_equiv_test.go and
// TestStepMWVCMatchesBlockingReference proves the two indistinguishable.
//
// Vertex weights must be non-negative and fit in 3·⌈log₂ n⌉-1 bits (the
// paper's O(log n)-bit weight assumption); zero-weight vertices join the
// cover for free upfront, as in Section 3.2. The graph must be connected.
func ApproxMWVCCongest(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %v", eps)
	}
	r, err := opts.power()
	if err != nil {
		return nil, err
	}
	if err := requireConnected(g); err != nil {
		return nil, err
	}
	n := g.N()
	idw := congest.IDBits(n)
	maxWBits := 3*idw - 1
	if maxWBits < 1 {
		maxWBits = 1
	}
	for v := 0; v < n; v++ {
		w := g.Weight(v)
		if w < 0 {
			return nil, fmt.Errorf("core: negative weight %d at vertex %d", w, v)
		}
		if bits.Len64(uint64(w)) > maxWBits {
			return nil, fmt.Errorf("core: weight %d at vertex %d exceeds the O(log n)-bit budget (%d bits)", w, v, maxWBits)
		}
	}
	solver, solveRep := opts.leaderSolver()
	ratio := eps / (1 + eps)

	// Every ripe class has at least (1+ε)/ε = 1 + 1/ε members, so a
	// productive iteration removes at least ⌊1+1/ε⌋ vertices from R and
	// this many lockstep iterations guarantees quiescence.
	minRemoval := int(1 + 1/eps)
	if minRemoval < 1 {
		minRemoval = 1
	}
	iterations := n/minRemoval + 1
	if r == 1 {
		// The payment loop's ripe classes are Gʳ-cliques only for r ≥ 2; at
		// r = 1 only the zero-weight pre-covering runs and Phase II solves
		// the weighted G exactly.
		iterations = 0
	}

	cfg := congest.Config{
		Graph:           g,
		Ctx:             opts.ctx(),
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		Shards:          opts.shards(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
		Tracer:          opts.tracer(),
	}
	res, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[nodeOut] {
		return &mwvcCongestProgram{
			n: n, power: r, idw: idw, maxWBits: maxWBits, solver: solver, gmode: opts.gatherMode(),
			phase1: primitives.NewStepWeightedLocalRatio(nd, iterations, maxWBits, ripeSelector(ratio)),
		}
	})
	if err != nil {
		return nil, err
	}
	return assembleWithSolve(res.Outputs, res.Stats, solveRep), nil
}

// ripeSelector builds the PayeeSelector implementing condition (7) of
// Theorem 7: partition the live neighborhood into weight classes of
// geometrically increasing weight (anchored at the smallest positive
// neighbor weight) and return the union of N_i(c) ∩ R over every class
// whose maximum live weight is at most the class total times ε/(1+ε).
func ripeSelector(ratio float64) primitives.PayeeSelector {
	return func(nd *congest.Node, nbrWeight map[int]int64, inRNbr map[int]bool) []int {
		wMin := int64(0)
		for _, w := range nbrWeight {
			if w > 0 && (wMin == 0 || w < wMin) {
				wMin = w
			}
		}
		classOf := func(u int) int {
			w := nbrWeight[u]
			if w <= 0 || wMin == 0 {
				return -1 // zero-weight: pre-covered, never in a class
			}
			c := 0
			for t := wMin; t*2 <= w; t *= 2 {
				c++
			}
			return c
		}
		type agg struct {
			sum, max int64
			members  []int
		}
		classes := map[int]*agg{}
		for _, u := range nd.Neighbors() {
			if !inRNbr[u] {
				continue
			}
			ci := classOf(u)
			if ci < 0 {
				continue
			}
			a := classes[ci]
			if a == nil {
				a = &agg{}
				classes[ci] = a
			}
			w := nbrWeight[u]
			a.sum += w
			if w > a.max {
				a.max = w
			}
			a.members = append(a.members, u)
		}
		var out []int
		for _, a := range classes {
			if float64(a.max) <= float64(a.sum)*ratio+1e-12 {
				out = append(out, a.members...)
			}
		}
		return out
	}
}

// mwvcCongestProgram is Theorem 7 in step form: the weighted local-ratio
// Phase I, then the standard leader pipeline gathering F plus the weights of
// U-vertices and flooding the leader's cover of H = G²[U] back.
type mwvcCongestProgram struct {
	n, power, idw, maxWBits int
	solver                  LocalSolver
	gmode                   GatherMode

	phase1  *primitives.StepWeightedLocalRatio
	gather  *powerGather
	pipe    *primitives.StepLeaderPipeline
	stage   int
	inRStar bool
}

// weightedItems builds this node's Phase-II contribution: edge reports for
// the given neighbors plus, when the node is still live, its weight report
// (which also marks U-membership at the leader).
func (p *mwvcCongestProgram) weightedItems(nd *congest.Node, edgeNbrs []int) []congest.Message {
	items := make([]congest.Message, 0, len(edgeNbrs)+1)
	for _, u := range edgeNbrs {
		items = append(items, edgeOrWeight{A: int64(nd.ID()), B: int64(u), WA: p.idw, WB: p.idw})
	}
	if p.phase1.InR() {
		items = append(items, edgeOrWeight{IsWeight: true, A: int64(nd.ID()), B: nd.Weight(), WA: p.idw, WB: p.maxWBits})
	}
	return items
}

func (p *mwvcCongestProgram) Step(nd *congest.Node) (bool, error) {
	for {
		switch p.stage {
		case 0:
			if !p.phase1.Step(nd) {
				return false, nil
			}
			if p.power == 2 {
				// Lemma 8's F-edges: only edges into the live set U.
				items := p.weightedItems(nd, p.phase1.UNbrs())
				p.pipe = primitives.NewStepLeaderPipeline(nd, items, func(gathered []congest.Message) []congest.Message {
					return coverIDItems(leaderSolveWeightedRemainder(p.n, gathered, p.solver), p.idw)
				})
				p.stage = 2
				continue
			}
			p.gather = newPowerGather(p.power, p.phase1.InR(), p.phase1.UNbrs(), p.gmode)
			p.stage = 1
		case 1:
			if !p.gather.Step(nd) {
				return false, nil
			}
			// Near nodes report their gather-selected incident edges (relay
			// paths of Gʳ[U] may route outside U); membership travels on
			// weight reports.
			items := p.weightedItems(nd, p.gather.EdgeNbrs(nd))
			p.pipe = primitives.NewStepLeaderPipeline(nd, items, func(gathered []congest.Message) []congest.Message {
				return coverIDItems(leaderSolveWeightedPowerRemainder(p.n, p.power, gathered, p.solver), p.idw)
			})
			p.stage = 2
		default:
			if !p.pipe.Step(nd) {
				return false, nil
			}
			for _, m := range p.pipe.Items() {
				if m.(congest.Int).V == int64(nd.ID()) {
					p.inRStar = true
				}
			}
			return true, nil
		}
	}
}

func (p *mwvcCongestProgram) Output() nodeOut {
	return nodeOut{InSolution: p.phase1.InS() || p.inRStar, InPhaseI: p.phase1.InS()}
}

// leaderSolveWeightedRemainder rebuilds the weighted H = G²[U] from the
// gathered F-edges and weight reports, and solves it with the given solver.
func leaderSolveWeightedRemainder(n int, gathered []congest.Message, solver LocalSolver) *bitset.Set {
	u := bitset.New(n)
	weights := make(map[int]int64)
	b := graph.NewBuilder(n)
	for _, m := range gathered {
		p := m.(edgeOrWeight)
		if p.IsWeight {
			u.Add(int(p.A))
			weights[int(p.A)] = p.B
			continue
		}
		u.Add(int(p.B))
		if _, err := b.AddEdgeIfAbsent(int(p.A), int(p.B)); err != nil {
			panic(err)
		}
	}
	for v, w := range weights {
		b.SetWeight(v, w)
	}
	fGraph := b.Build()
	h, orig := fGraph.Square().InducedSubgraph(u)
	local := solver(h)
	out := bitset.New(n)
	local.ForEach(func(i int) bool {
		out.Add(orig[i])
		return true
	})
	return out
}
