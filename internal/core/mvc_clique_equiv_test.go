package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// blockingMVCCliqueDeterministic is the original goroutine-style handler
// implementation of Corollary 10, kept verbatim as a reference for
// TestStepCliqueDetMatchesBlockingReference.
func blockingMVCCliqueDeterministic(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	l, err := epsilonToL(eps)
	if err != nil {
		return nil, err
	}
	n := g.N()
	solver := opts.localSolver()
	iterations := n/(l+1) + 1

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CongestedClique,
		Engine:          opts.engine(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		inR, inC, inS := true, true, false

		// Phase I (identical to Algorithm 1's, over G-edges), with an
		// early-exit check per iteration: the clique's all-to-all round
		// computes the global "any candidate left?" OR for one extra round
		// per iteration, so quiet instances stop in O(1) iterations.
		for it := 0; it < iterations; it++ {
			nd.BroadcastNeighbors(congest.NewIntWidth(boolBit(inR), 1))
			nd.NextRound()
			dR := 0
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					dR++
				}
			}
			candidate := inC && dR > l
			// Global OR via the clique.
			nd.Broadcast(congest.NewIntWidth(boolBit(candidate), 1))
			nd.NextRound()
			any := candidate
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					any = true
				}
			}
			if !any {
				break
			}
			val := int64(0)
			if candidate {
				val = int64(nd.ID()) + 1
			}
			maxVal := primitives.TwoHopMax(nd, val)
			selected := candidate && maxVal == int64(nd.ID())+1
			if selected {
				nd.BroadcastNeighbors(congest.Flag{})
				inC = false
			}
			nd.NextRound()
			if len(nd.Recv()) > 0 {
				inS = true
				inR = false
			}
		}

		sol := cliquePhaseII(nd, inR, l, solver)
		return nodeOut{InSolution: inS || sol, InPhaseI: inS}, nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(res.Outputs, res.Stats), nil
}

// cliquePhaseII is the blocking form of the shared CONGESTED CLIQUE Phase II
// (Lemma 9), kept verbatim as the reference for cliqueStepPhaseII: a
// one-round leader election, a final U-status exchange, maxItems parallel
// rounds of direct F-edge shipping to the leader, a local solve, and a
// one-round answer. It returns whether this node is in the leader's cover.
// maxItems must upper-bound every node's F-edge count.
func cliquePhaseII(nd *congest.Node, inR bool, maxItems int, solver LocalSolver) bool {
	n := nd.N()
	// Leader election: everyone flags everyone; min id wins (always 0, but
	// paid for honestly with one clique round).
	nd.Broadcast(congest.Flag{})
	nd.NextRound()
	leader := nd.ID()
	for _, in := range nd.Recv() {
		if in.From < leader {
			leader = in.From
		}
	}
	// U-status exchange over G-edges.
	nd.BroadcastNeighbors(congest.NewIntWidth(boolBit(inR), 1))
	nd.NextRound()
	var items []congest.Message
	for _, in := range nd.Recv() {
		if in.Msg.(congest.Int).V == 1 {
			items = append(items, congest.NewPair(n, int64(nd.ID()), int64(in.From)))
		}
	}
	if len(items) > maxItems {
		// Protocol invariant broken: Phase I should have bounded U-degrees.
		panic("core: clique Phase II item bound violated")
	}
	// Parallel direct shipping: round j sends each node's j-th item.
	var gathered []congest.Message
	for j := 0; j < maxItems; j++ {
		if j < len(items) && nd.ID() != leader {
			nd.MustSend(leader, items[j])
		}
		nd.NextRound()
		if nd.ID() == leader {
			for _, in := range nd.Recv() {
				gathered = append(gathered, in.Msg)
			}
		}
	}
	// Leader solves locally and answers every cover member in one round.
	inCover := false
	if nd.ID() == leader {
		gathered = append(gathered, items...)
		cover := leaderSolveRemainder(n, gathered, solver)
		inCover = cover.Contains(nd.ID())
		cover.ForEach(func(v int) bool {
			if v != nd.ID() {
				nd.MustSend(v, congest.Flag{})
			}
			return true
		})
	}
	nd.NextRound()
	if len(nd.Recv()) > 0 {
		inCover = true
	}
	return inCover
}

func TestStepCliqueDetMatchesBlockingReference(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	graphs := map[string]*graph.Graph{
		"single":  graph.NewBuilder(1).Build(),
		"edge":    graph.Path(2),
		"path9":   graph.Path(9),
		"star12":  graph.Star(12),
		"cycle11": graph.Cycle(11),
		"grid4x5": graph.Grid(4, 5),
		"gnp30":   graph.ConnectedGNP(30, 0.12, rng),
		"tree35":  graph.RandomTree(35, rng),
	}
	for name, g := range graphs {
		for _, eps := range []float64{1, 0.5, 0.25} {
			for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
				opts := &Options{Seed: 7, Engine: mode}
				want, err := blockingMVCCliqueDeterministic(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: reference: %v", name, eps, mode, err)
				}
				got, err := ApproxMVCCliqueDeterministic(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: step: %v", name, eps, mode, err)
				}
				if !got.Solution.Equal(want.Solution) {
					t.Fatalf("%s eps=%v %v: solutions differ:\nstep:     %v\nblocking: %v",
						name, eps, mode, got.Solution.Elements(), want.Solution.Elements())
				}
				if got.PhaseISize != want.PhaseISize {
					t.Fatalf("%s eps=%v %v: PhaseISize %d vs %d", name, eps, mode, got.PhaseISize, want.PhaseISize)
				}
				if got.Stats != want.Stats {
					t.Fatalf("%s eps=%v %v: stats differ:\nstep:     %+v\nblocking: %+v",
						name, eps, mode, got.Stats, want.Stats)
				}
			}
		}
	}
}
