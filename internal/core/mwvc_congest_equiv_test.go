package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// blockingMWVCCongest is the original goroutine-style handler implementation
// of Theorem 7, kept verbatim as a reference: the step-program rewrite must
// be message-for-message indistinguishable from it, which
// TestStepMWVCMatchesBlockingReference checks via full output and statistics
// equality on both engines.
func blockingMWVCCongest(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	n := g.N()
	idw := congest.IDBits(n)
	maxWBits := 3*idw - 1
	if maxWBits < 1 {
		maxWBits = 1
	}
	solver := opts.localSolver()
	ratio := eps / (1 + eps)
	minRemoval := int(1 + 1/eps)
	if minRemoval < 1 {
		minRemoval = 1
	}
	iterations := n/minRemoval + 1

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		inR := nd.Weight() > 0 // zero-weight vertices start in the cover
		inS := !inR

		// Round 0: learn neighbor weights (w is already bounded to fit).
		nd.Broadcast(congest.NewIntWidth(nd.Weight(), maxWBits))
		nd.NextRound()
		nbrWeight := make(map[int]int64, nd.Degree())
		for _, in := range nd.Recv() {
			nbrWeight[in.From] = in.Msg.(congest.Int).V
		}
		// Fixed class structure over the full neighborhood N(c).
		wMin := int64(0)
		for _, w := range nbrWeight {
			if w > 0 && (wMin == 0 || w < wMin) {
				wMin = w
			}
		}
		classOf := func(u int) int {
			w := nbrWeight[u]
			if w <= 0 || wMin == 0 {
				return -1 // zero-weight: pre-covered, never in a class
			}
			c := 0
			for t := wMin; t*2 <= w; t *= 2 {
				c++
			}
			return c
		}

		inRNbr := make(map[int]bool, nd.Degree())
		for _, u := range nd.Neighbors() {
			inRNbr[u] = nbrWeight[u] > 0
		}

		// ripeMembers returns the union of N_i(c) ∩ R over all ripe classes
		// i (condition (7): w*_i ≤ W_i · ε/(1+ε)).
		ripeMembers := func() []int {
			type agg struct {
				sum, max int64
				members  []int
			}
			classes := map[int]*agg{}
			for _, u := range nd.Neighbors() {
				if !inRNbr[u] {
					continue
				}
				ci := classOf(u)
				if ci < 0 {
					continue
				}
				a := classes[ci]
				if a == nil {
					a = &agg{}
					classes[ci] = a
				}
				w := nbrWeight[u]
				a.sum += w
				if w > a.max {
					a.max = w
				}
				a.members = append(a.members, u)
			}
			var out []int
			for _, a := range classes {
				if float64(a.max) <= float64(a.sum)*ratio+1e-12 {
					out = append(out, a.members...)
				}
			}
			return out
		}

		// Phase I.
		for it := 0; it < iterations; it++ {
			nd.Broadcast(congest.NewIntWidth(boolBit(inR), 1))
			nd.NextRound()
			for _, in := range nd.Recv() {
				inRNbr[in.From] = in.Msg.(congest.Int).V == 1
			}
			ripe := ripeMembers()
			val := int64(0)
			if len(ripe) > 0 {
				val = int64(nd.ID()) + 1
			}
			maxVal := primitives.TwoHopMax(nd, val)
			selected := len(ripe) > 0 && maxVal == int64(nd.ID())+1
			if selected {
				for _, u := range ripe {
					nd.MustSend(u, congest.Flag{})
				}
			}
			nd.NextRound()
			if len(nd.Recv()) > 0 {
				inS = true
				inR = false
			}
		}

		// Final status round: learn which neighbors are in U = R.
		nd.Broadcast(congest.NewIntWidth(boolBit(inR), 1))
		nd.NextRound()
		uNbrs := make([]int, 0, nd.Degree())
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				uNbrs = append(uNbrs, in.From)
			}
		}

		// Phase II: gather F plus the weights of U-vertices, solve at the
		// leader, flood the solution.
		leader := primitives.MinIDLeader(nd)
		tree := primitives.BFSTree(nd, leader)
		items := make([]congest.Message, 0, len(uNbrs)+1)
		for _, u := range uNbrs {
			items = append(items, edgeOrWeight{A: int64(nd.ID()), B: int64(u), WA: idw, WB: idw})
		}
		if inR {
			items = append(items, edgeOrWeight{IsWeight: true, A: int64(nd.ID()), B: nd.Weight(), WA: idw, WB: maxWBits})
		}
		gathered := primitives.GatherAtRoot(nd, tree, items)

		var solutionIDs []congest.Message
		if nd.ID() == leader {
			cover := leaderSolveWeightedRemainder(n, gathered, solver)
			for _, v := range cover.Elements() {
				solutionIDs = append(solutionIDs, congest.NewIntWidth(int64(v), idw))
			}
		}
		all := primitives.FloodItemsFromRoot(nd, tree, solutionIDs)
		inRStar := false
		for _, m := range all {
			if m.(congest.Int).V == int64(nd.ID()) {
				inRStar = true
			}
		}
		return nodeOut{InSolution: inS || inRStar, InPhaseI: inS}, nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(res.Outputs, res.Stats), nil
}

// weighted overlays deterministic pseudo-random weights in [1, maxW] so the
// class machinery is exercised beyond the all-ones case.
func weighted(g *graph.Graph, maxW int64, seed int64) *graph.Graph {
	return graph.WithRandomWeights(g, maxW, rand.New(rand.NewSource(seed)))
}

func TestStepMWVCMatchesBlockingReference(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// A path with zero-weight interior vertices exercises the pre-covered
	// fast path of Section 3.2.
	zb := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		zb.AddEdge(i, i+1)
	}
	zb.SetWeight(1, 0)
	zb.SetWeight(4, 0)
	graphs := map[string]*graph.Graph{
		"zeroes":   zb.Build(),
		"single":   graph.NewBuilder(1).Build(),
		"edge":     graph.Path(2),
		"path9w":   weighted(graph.Path(9), 12, 1),
		"star12w":  weighted(graph.Star(12), 30, 2),
		"cycle11":  graph.Cycle(11),
		"grid4x5w": weighted(graph.Grid(4, 5), 9, 3),
		"gnp30w":   weighted(graph.ConnectedGNP(30, 0.12, rng), 25, 4),
		"tree35w":  weighted(graph.RandomTree(35, rng), 7, 5),
	}
	for name, g := range graphs {
		for _, eps := range []float64{1, 0.5, 0.25} {
			for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
				opts := &Options{Seed: 7, Engine: mode}
				want, err := blockingMWVCCongest(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: reference: %v", name, eps, mode, err)
				}
				got, err := ApproxMWVCCongest(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: step: %v", name, eps, mode, err)
				}
				if !got.Solution.Equal(want.Solution) {
					t.Fatalf("%s eps=%v %v: solutions differ:\nstep:     %v\nblocking: %v",
						name, eps, mode, got.Solution.Elements(), want.Solution.Elements())
				}
				if got.PhaseISize != want.PhaseISize {
					t.Fatalf("%s eps=%v %v: PhaseISize %d vs %d", name, eps, mode, got.PhaseISize, want.PhaseISize)
				}
				if got.Stats != want.Stats {
					t.Fatalf("%s eps=%v %v: stats differ:\nstep:     %+v\nblocking: %+v",
						name, eps, mode, got.Stats, want.Stats)
				}
			}
		}
	}
}
