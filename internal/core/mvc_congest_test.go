package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/bitset"
	"powergraph/internal/centralized"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func checkMVCResult(t *testing.T, g *graph.Graph, eps float64, res *Result) {
	t.Helper()
	if ok, w := verify.IsSquareVertexCover(g, res.Solution); !ok {
		t.Fatalf("not a vertex cover of G², witness %v", w)
	}
	sq := g.Square()
	opt := verify.Cost(sq, exact.VertexCover(sq))
	got := verify.Cost(sq, res.Solution)
	if opt == 0 {
		if got != 0 {
			t.Fatalf("OPT=0 but got %d", got)
		}
		return
	}
	if float64(got) > (1+eps)*float64(opt)+1e-9 {
		t.Fatalf("ratio %d/%d = %.4f exceeds 1+ε = %.4f",
			got, opt, float64(got)/float64(opt), 1+eps)
	}
}

func TestApproxMVCCongestSmallGraphs(t *testing.T) {
	cases := map[string]*graph.Graph{
		"single":  graph.NewBuilder(1).Build(),
		"edge":    graph.Path(2),
		"path7":   graph.Path(7),
		"cycle8":  graph.Cycle(8),
		"star10":  graph.Star(10),
		"grid3x4": graph.Grid(3, 4),
		"cat":     graph.Caterpillar(4, 3),
	}
	for name, g := range cases {
		for _, eps := range []float64{1, 0.5, 0.25} {
			res, err := ApproxMVCCongest(g, eps, nil)
			if err != nil {
				t.Fatalf("%s eps=%v: %v", name, eps, err)
			}
			checkMVCResult(t, g, eps, res)
		}
	}
}

func TestApproxMVCCongestRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(20)
		g := graph.ConnectedGNP(n, 0.15, rng)
		eps := []float64{1, 0.5, 1.0 / 3}[trial%3]
		res, err := ApproxMVCCongest(g, eps, &Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		checkMVCResult(t, g, eps, res)
	}
}

func TestApproxMVCCongestEpsGreaterThanOne(t *testing.T) {
	g := graph.Cycle(6)
	res, err := ApproxMVCCongest(g, 2.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Count() != 6 {
		t.Fatalf("expected all-vertices shortcut, got %d", res.Solution.Count())
	}
	if res.Stats.Rounds != 0 {
		t.Fatalf("shortcut should use 0 rounds, used %d", res.Stats.Rounds)
	}
	// Lemma 6: all-vertices is a 2-approximation on G².
	sq := g.Square()
	opt := verify.Cost(sq, exact.VertexCover(sq))
	if float64(6) > 2*float64(opt) {
		t.Fatalf("all-vertices ratio exceeds 2: 6 vs opt %d", opt)
	}
}

func TestApproxMVCCongestInvalidEps(t *testing.T) {
	g := graph.Path(3)
	for _, eps := range []float64{0, -1} {
		if _, err := ApproxMVCCongest(g, eps, nil); err == nil {
			t.Fatalf("eps=%v accepted", eps)
		}
	}
}

func TestApproxMVCCongestPhaseIBound(t *testing.T) {
	// Lemma 5: the Phase-I set S alone is a (1+ε)-approximation of the
	// optimum cover of G²[S]. Check it on caterpillars, which force Phase I
	// to fire (high-degree spine vertices).
	g := graph.Caterpillar(6, 6)
	eps := 0.5
	res, err := ApproxMVCCongest(g, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseISize == 0 {
		t.Fatal("expected Phase I to select at least one center on a caterpillar")
	}
	checkMVCResult(t, g, eps, res)
}

func TestApproxMVCCongestRoundsScaling(t *testing.T) {
	// Theorem 1: rounds = O(n/ε). Check rounds grow ≈ linearly in n for
	// fixed ε (ratio n=120 vs n=60 below 3×) and are finite for small ε.
	rounds := func(n int, eps float64) int {
		g := graph.Path(n)
		res, err := ApproxMVCCongest(g, eps, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	r60 := rounds(60, 0.5)
	r120 := rounds(120, 0.5)
	if r120 < r60 {
		t.Fatalf("rounds shrank with n: %d vs %d", r60, r120)
	}
	if float64(r120) > 3.2*float64(r60) {
		t.Fatalf("rounds super-linear: n=60→%d, n=120→%d", r60, r120)
	}
}

func TestApproxMVCCongestWithFiveThirdsSolver(t *testing.T) {
	// Corollary 17 configuration: Phase II solves with the centralized 5/3
	// algorithm instead of the exact solver; with ε = 1/2 the overall
	// guarantee is max(3/2, 5/3) = 5/3.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(14)
		g := graph.ConnectedGNP(n, 0.2, rng)
		res, err := ApproxMVCCongest(g, 0.5, &Options{
			LocalSolver: func(h *graph.Graph) *bitset.Set { return centralized.FiveThirdsOnGraph(h).Cover },
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := verify.IsSquareVertexCover(g, res.Solution); !ok {
			t.Fatal("5/3-solver run produced infeasible cover")
		}
		sq := g.Square()
		opt := verify.Cost(sq, exact.VertexCover(sq))
		got := verify.Cost(sq, res.Solution)
		if opt > 0 && float64(got) > 5.0/3.0*float64(opt)+1e-9 {
			t.Fatalf("ratio %d/%d exceeds 5/3", got, opt)
		}
	}
}
