package core

import (
	"math"
	"math/rand"
	"testing"

	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// rankMsg announces a candidate's random rank (drawn from [n⁴], exactly the
// 4·⌈log₂ n⌉ bits the paper's voting scheme budgets for). It is the message
// type of the blocking references; the step programs send congest.Int values
// of identical width, so the two are bit-for-bit indistinguishable.
type rankMsg struct {
	Rank  int64
	Width int
}

func (m rankMsg) Bits() int { return m.Width }

// blockingMVCCongestRandomized is the original goroutine-style handler
// implementation of Section 3.3, kept verbatim as a reference for
// TestStepMVCRandMatchesBlockingReference.
func blockingMVCCongestRandomized(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	n := g.N()
	solver := opts.localSolver()
	tau := int(math.Ceil(8/eps)) + 2
	randomIters := 8*congest.IDBits(n) + 16
	fallbackIters := n/(tau+1) + 1
	totalIters := randomIters + fallbackIters
	rankW := 4 * congest.IDBits(n)
	rankMax := int64(1) << uint(rankW)

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		inR, inS := true, false
		succeeded := false
		idw := congest.IDBits(n)

		for it := 0; it < totalIters; it++ {
			// Round 1: live-status exchange.
			nd.BroadcastNeighbors(congest.NewIntWidth(boolBit(inR), 1))
			nd.NextRound()
			dR := 0
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					dR++
				}
			}
			candidate := !succeeded && dR > tau

			// Round 2: candidate ranks.
			var myRank int64
			if candidate {
				if it < randomIters {
					myRank = nd.Rand().Int63n(rankMax)
				} else {
					myRank = int64(nd.ID())
				}
				nd.BroadcastNeighbors(rankMsg{Rank: myRank, Width: rankW})
			}
			nd.NextRound()
			voteFor := -1
			var bestRank int64 = -1
			if inR {
				for _, in := range nd.Recv() {
					m, ok := in.Msg.(rankMsg)
					if !ok {
						continue
					}
					if m.Rank > bestRank || (m.Rank == bestRank && in.From > voteFor) {
						bestRank = m.Rank
						voteFor = in.From
					}
				}
			}

			// Round 3: votes.
			if voteFor != -1 {
				nd.BroadcastNeighbors(congest.NewIntWidth(int64(voteFor), idw))
			}
			nd.NextRound()
			votes := 0
			for _, in := range nd.Recv() {
				if m, ok := in.Msg.(congest.Int); ok && int(m.V) == nd.ID() {
					votes++
				}
			}
			success := candidate && votes*8 >= dR

			// Round 4: successful candidates retire their neighborhoods.
			if success {
				nd.BroadcastNeighbors(congest.Flag{})
				succeeded = true
			}
			nd.NextRound()
			if len(nd.Recv()) > 0 {
				inS = true
				inR = false
			}
		}

		// Standard CONGEST Phase II (as in Algorithm 1): every node now has
		// at most τ live neighbors.
		nd.Broadcast(congest.NewIntWidth(boolBit(inR), 1))
		nd.NextRound()
		uNbrs := make([]int, 0, nd.Degree())
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				uNbrs = append(uNbrs, in.From)
			}
		}
		leader := primitives.MinIDLeader(nd)
		tree := primitives.BFSTree(nd, leader)
		items := make([]congest.Message, 0, len(uNbrs))
		for _, u := range uNbrs {
			items = append(items, congest.NewPair(n, int64(nd.ID()), int64(u)))
		}
		gathered := primitives.GatherAtRoot(nd, tree, items)
		var solutionIDs []congest.Message
		if nd.ID() == leader {
			cover := leaderSolveRemainder(n, gathered, solver)
			for _, v := range cover.Elements() {
				solutionIDs = append(solutionIDs, congest.NewIntWidth(int64(v), idw))
			}
		}
		all := primitives.FloodItemsFromRoot(nd, tree, solutionIDs)
		inRStar := false
		for _, m := range all {
			if m.(congest.Int).V == int64(nd.ID()) {
				inRStar = true
			}
		}
		return nodeOut{InSolution: inS || inRStar, InPhaseI: inS}, nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(res.Outputs, res.Stats), nil
}

func TestStepMVCRandMatchesBlockingReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	graphs := map[string]*graph.Graph{
		"single":  graph.NewBuilder(1).Build(),
		"edge":    graph.Path(2),
		"path9":   graph.Path(9),
		"star16":  graph.Star(16),
		"cycle11": graph.Cycle(11),
		"grid4x5": graph.Grid(4, 5),
		"gnp30":   graph.ConnectedGNP(30, 0.2, rng),
		"tree35":  graph.RandomTree(35, rng),
	}
	for name, g := range graphs {
		for _, eps := range []float64{1, 0.5, 0.25} {
			for _, mode := range []congest.EngineMode{congest.EngineGoroutine, congest.EngineBatch} {
				opts := &Options{Seed: 7, Engine: mode}
				want, err := blockingMVCCongestRandomized(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: reference: %v", name, eps, mode, err)
				}
				got, err := ApproxMVCCongestRandomized(g, eps, opts)
				if err != nil {
					t.Fatalf("%s eps=%v %v: step: %v", name, eps, mode, err)
				}
				if !got.Solution.Equal(want.Solution) {
					t.Fatalf("%s eps=%v %v: solutions differ:\nstep:     %v\nblocking: %v",
						name, eps, mode, got.Solution.Elements(), want.Solution.Elements())
				}
				if got.PhaseISize != want.PhaseISize {
					t.Fatalf("%s eps=%v %v: PhaseISize %d vs %d", name, eps, mode, got.PhaseISize, want.PhaseISize)
				}
				if got.Stats != want.Stats {
					t.Fatalf("%s eps=%v %v: stats differ:\nstep:     %+v\nblocking: %+v",
						name, eps, mode, got.Stats, want.Stats)
				}
			}
		}
	}
}
