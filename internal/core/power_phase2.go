package core

import (
	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// Gʳ Phase II: the parametric generalization of Lemma 2/3's gather.
//
// For r = 2 the algorithms keep the paper's exact wire format: every node
// reports its live neighbors as F-edges and the leader squares the union
// (Lemma 3). That reconstruction is a G²-specific trick — a G-path of
// length ≤ 2 between U-vertices has both edges incident to U, so F suffices.
// For general r a shortest ≤ r path between U-vertices may route through
// vertices far from U, but every edge of such a path has an endpoint within
// d = ⌊(r-1)/2⌋ hops of U. The generalized gather therefore
//
//  1. labels the near-U region — by default with the layered
//     StepSparsify flood (truncated U-distance layers in exactly
//     primitives.SparsifyRounds(r) communication rounds; silent at
//     r ≤ 4 where the seeded 1-ball already resolves the
//     certificates), or under GatherLegacy with the one-bit
//     StepNearFlood (membership only, max(0, d-1) slices),
//  2. has every near node report incident G-edges — only its certificate
//     subset under the sparsified default (each edge that can lie on a
//     ≤ r-hop U-to-U path, shipped once by a designated endpoint; see
//     primitives/sparsify.go), or all of them under GatherLegacy — and
//     every U-member a self-pair marking membership, and
//  3. lets the leader rebuild the subgraph, take its r-th power, and induce
//     on U — which equals Gʳ[U] exactly under either mode, because the
//     reported edges contain a witness for every ≤ r U-to-U path and
//     nothing that is not a real G-edge.
//
// The |F| = O(n/ε) bound of Lemma 2 is G²-specific; the legacy gather ships
// O(m) items in the worst case. The sparsified certificate stream is
// duplicate-free and drops every edge no ≤ r-hop U-to-U path can use, which
// is what makes the r ∈ {3,4} sweeps of specs/sparsify-sweep.json tractable
// (BENCH_sparsify.json prices both modes). Correctness and the (1+ε)
// charging argument are power-independent: Phase I only ever commits 1-hop
// neighborhoods, which are cliques of every Gʳ with r ≥ 2.

// GatherMode selects how the generalized Phase II (power ≠ 2) collects the
// near-U subgraph; the paper's r = 2 F-edge path is unaffected by it.
type GatherMode int

const (
	// GatherSparsified is the default: the StepSparsify labeled flood plus
	// per-node certificate edge selection — bounded label rounds, each
	// surviving edge shipped exactly once.
	GatherSparsified GatherMode = iota
	// GatherLegacy pins the PR-4 wire format — one-bit near flood, every
	// near node reporting all incident edges — for differential runs
	// (harness jobs with gather "legacy" replay the identical instance).
	GatherLegacy
)

// nearRadius returns d = ⌊(r-1)/2⌋, the distance from U within which a node
// must report its edges for the leader to reconstruct Gʳ[U].
func nearRadius(r int) int { return (r - 1) / 2 }

// powerGather is the near-U labeling stage of the generalized Phase II.
// After the final U-status exchange every node knows whether it is in U and
// which neighbors are, so distance ≤ 1 is seeded for free; the flood grows
// (legacy) or layers (sparsified) the rest.
type powerGather struct {
	mode    GatherMode
	flood   *primitives.StepNearFlood // legacy
	sp      *primitives.StepSparsify  // sparsified
	started bool
}

// newPowerGather starts the near-U stage at this node; inU and uNbrs come
// from Phase I's final status exchange.
func newPowerGather(r int, inU bool, uNbrs []int, mode GatherMode) *powerGather {
	if mode == GatherSparsified {
		return &powerGather{mode: mode, sp: primitives.NewStepSparsify(r, inU, uNbrs)}
	}
	d := nearRadius(r)
	start := inU
	hops := 0
	if d >= 1 {
		start = inU || len(uNbrs) > 0
		hops = d - 1
	}
	return &powerGather{mode: mode, flood: primitives.NewStepNearFlood(start, hops)}
}

// Step advances one round-slice; done when the near region is labeled.
func (pg *powerGather) Step(nd *congest.Node) bool {
	first := !pg.started
	pg.started = true
	var done bool
	if pg.sp != nil {
		done = pg.sp.Step(nd)
		// The sparsified stage spends SparsifyRounds(r)+1 ≥ 2 handler
		// activations at every r, so begin and end always land in distinct
		// activations and the span covers exactly SparsifyRounds(r) rounds.
		if first {
			nd.SpanBegin("phase2-sparsify", 0)
		}
		if done {
			nd.SpanEnd("phase2-sparsify", 0)
		}
		return done
	}
	done = pg.flood.Step(nd)
	// The span is emitted only when the stage actually spends rounds. A
	// zero-hop flood (r ≤ 2) would begin and end within one handler
	// activation — on the goroutine engine concurrent nodes' marks for the
	// same key would then interleave nondeterministically through the
	// engine's refcount, so the degenerate case emits nothing at all.
	if first && !done {
		nd.SpanBegin("phase2-near", 0)
	}
	if !first && done {
		nd.SpanEnd("phase2-near", 0)
	}
	return done
}

// Near reports whether this node must contribute edges; valid once done.
// Both modes agree on the set (distance ≤ d from U).
func (pg *powerGather) Near() bool {
	if pg.sp != nil {
		return pg.sp.Near()
	}
	return pg.flood.Near()
}

// EdgeNbrs returns the neighbors whose edges this node reports: the
// deterministic certificate subset under the sparsified default, every
// neighbor under GatherLegacy (nil when the node is not near). Valid once
// done.
func (pg *powerGather) EdgeNbrs(nd *congest.Node) []int {
	if pg.sp != nil {
		return pg.sp.Certificate(nd)
	}
	if !pg.flood.Near() {
		return nil
	}
	return nd.Neighbors()
}

// powerEdgeItems encodes a node's generalized Phase-II contribution: near
// nodes report their gather-selected incident G-edges as (id, u) pairs, and
// U-members add an (id, id) self-pair marking membership (edges alone must
// not imply membership — a relay's edges name vertices outside U). Under
// GatherLegacy duplicate reports from two near endpoints are deduped at the
// leader; the sparsified certificate ships almost every edge once (only the
// r = 4 blind keep can name a shell-internal edge from both ends).
func powerEdgeItems(nd *congest.Node, pg *powerGather, inU bool) []congest.Message {
	nbrs := pg.EdgeNbrs(nd)
	if len(nbrs) == 0 && !inU {
		return nil
	}
	items := make([]congest.Message, 0, len(nbrs)+1)
	for _, u := range nbrs {
		items = append(items, congest.NewPair(nd.N(), int64(nd.ID()), int64(u)))
	}
	if inU {
		items = append(items, congest.NewPair(nd.N(), int64(nd.ID()), int64(nd.ID())))
	}
	return items
}

// leaderSolvePowerRemainder rebuilds Gʳ[U] from the generalized gather —
// self-pairs mark U-membership, other pairs are G-edges — and returns the
// configured solver's cover of it, in original ids. With the default
// kernelize-then-solve solver (internal/kernel) the reconstructed instance
// is reduced to its hard core before any branching, which is what lets the
// leader absorb essentially-all-of-Gʳ gathers on sparse thousand-node runs.
func leaderSolvePowerRemainder(n, r int, gathered []congest.Message, solver LocalSolver) *bitset.Set {
	u := bitset.New(n)
	b := graph.NewBuilder(n)
	for _, m := range gathered {
		p := m.(congest.Pair)
		if p.A == p.B {
			u.Add(int(p.A))
			continue
		}
		if _, err := b.AddEdgeIfAbsent(int(p.A), int(p.B)); err != nil {
			panic(err) // malformed item: an engine/protocol bug, not user input
		}
	}
	return solvePowerInduced(n, r, b, u, solver)
}

// solvePowerInduced is the shared tail of the generalized leader solves:
// power the reported subgraph, induce on U, solve, and translate the cover
// back to original ids.
func solvePowerInduced(n, r int, b *graph.Builder, u *bitset.Set, solver LocalSolver) *bitset.Set {
	h, orig := b.Build().Power(r).InducedSubgraph(u)
	local := solver(h)
	out := bitset.New(n)
	local.ForEach(func(i int) bool {
		out.Add(orig[i])
		return true
	})
	return out
}

// leaderSolveWeightedPowerRemainder is the weighted form: weight reports
// mark U-membership (every live vertex sends one), edge reports carry no
// membership information.
func leaderSolveWeightedPowerRemainder(n, r int, gathered []congest.Message, solver LocalSolver) *bitset.Set {
	u := bitset.New(n)
	weights := make(map[int]int64)
	b := graph.NewBuilder(n)
	for _, m := range gathered {
		p := m.(edgeOrWeight)
		if p.IsWeight {
			u.Add(int(p.A))
			weights[int(p.A)] = p.B
			continue
		}
		if _, err := b.AddEdgeIfAbsent(int(p.A), int(p.B)); err != nil {
			panic(err)
		}
	}
	for v, w := range weights {
		b.SetWeight(v, w)
	}
	return solvePowerInduced(n, r, b, u, solver)
}
