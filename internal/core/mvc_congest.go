package core

import (
	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// ApproxMVCCongest runs Algorithm 1 (Theorem 1): a deterministic
// (1+ε)-approximation for minimum vertex cover on the power graph Gʳ
// (Options.Power, default the paper's r = 2), communicating only over G in
// the CONGEST model — in O(n/ε) rounds at r = 2.
//
// Phase I repeatedly selects centers c whose live neighborhood N(c) ∩ R
// exceeds 1/ε and moves that whole neighborhood (a clique of every Gʳ,
// r ≥ 2) into the cover; simultaneous selections are made conflict-free by
// the paper's 2-hop maximum-ID rule. Phase II elects a leader, gathers an
// edge set sufficient to reconstruct H = Gʳ[U] (the O(n/ε)-size F of
// Lemma 2 at r = 2; the near-U gather of power_phase2.go otherwise), solves
// H with the configured LocalSolver (exact by default), and floods the
// solution back. At r = 1 Phase I is disabled — 1-hop neighborhoods are not
// G¹-cliques — and the run degenerates to Phase II solving G itself.
//
// The algorithm is implemented as a congest.StepProgram — each node's
// per-round logic is a plain function call — so the batch engine drives it
// with no per-node goroutine at all; on the goroutine engine the program is
// wrapped in a blocking handler. Both engines produce identical results.
//
// The input graph must be connected (Phase II routes everything through one
// leader). ε must be positive; for ε > 1 the paper's trivial 0-round
// 2-approximation (all vertices, Lemma 6) is returned.
func ApproxMVCCongest(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	l, err := epsilonToL(eps)
	if err != nil {
		return nil, err
	}
	r, err := opts.power()
	if err != nil {
		return nil, err
	}
	if eps > 1 {
		return &Result{Solution: bitset.Full(g.N()), PhaseISize: g.N()}, nil
	}
	if err := requireConnected(g); err != nil {
		return nil, err
	}
	n := g.N()
	solver, solveRep := opts.leaderSolver()

	// Each productive Phase-I iteration removes at least l+1 vertices from
	// R, so ⌊n/(l+1)⌋+1 lockstep iterations guarantee global quiescence
	// without a termination-detection protocol. At r = 1 Phase I must not
	// run at all (its committed neighborhoods are only Gʳ-cliques for
	// r ≥ 2).
	iterations := n/(l+1) + 1
	if r == 1 {
		iterations = 0
	}

	cfg := congest.Config{
		Graph:           g,
		Ctx:             opts.ctx(),
		Model:           congest.CONGEST,
		Engine:          opts.engine(),
		Shards:          opts.shards(),
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
		Tracer:          opts.tracer(),
	}
	res, err := congest.RunProgram(cfg, func(nd *congest.Node) congest.StepProgram[nodeOut] {
		return &mvcCongestProgram{
			n: n, l: l, power: r, iterations: iterations, idw: congest.IDBits(n),
			solver: solver, gmode: opts.gatherMode(),
			inR: true, inC: true,
		}
	})
	if err != nil {
		return nil, err
	}
	return assembleWithSolve(res.Outputs, res.Stats, solveRep), nil
}

// mvcCongestProgram is Algorithm 1 in step form. Phase I runs a fixed
// 4-slice schedule per iteration (status exchange, two 2-hop-max slices,
// join announcements); Phase II is the shared leader pipeline — leader
// election, BFS tree, pipelined gather of F at the leader, local solve
// (Lemma 3), pipelined flood of the solution — with each stage starting in
// the slice its predecessor finishes, exactly like the blocking composition.
type mvcCongestProgram struct {
	n, l, power, iterations, idw int
	solver                       LocalSolver
	gmode                        GatherMode

	// Phase I state. sr counts Phase-I round-slices: slice 0 sends the
	// first R-status broadcast, then each iteration occupies 4 slices, and
	// slice 4·iterations+1 collects the final U-status exchange.
	sr                  int
	inR, inC, inS       bool
	candidate, selected bool
	maxVal              int64
	uNbrs               []int

	stage   int
	gather  *powerGather
	pipe    *primitives.StepLeaderPipeline
	inRStar bool
}

func (p *mvcCongestProgram) Step(nd *congest.Node) (bool, error) {
	for {
		switch p.stage {
		case 0:
			if !p.stepPhaseI(nd) {
				return false, nil
			}
			if p.power == 2 {
				// The paper's exact F-edge wire format (Lemma 2/3).
				items := uEdgeItems(p.n, nd.ID(), p.uNbrs)
				p.pipe = primitives.NewStepLeaderPipeline(nd, items, func(gathered []congest.Message) []congest.Message {
					return coverIDItems(leaderSolveRemainder(p.n, gathered, p.solver), p.idw)
				})
				p.stage = 2
				continue
			}
			p.gather = newPowerGather(p.power, p.inR, p.uNbrs, p.gmode)
			p.stage = 1
		case 1:
			if !p.gather.Step(nd) {
				return false, nil
			}
			items := powerEdgeItems(nd, p.gather, p.inR)
			p.pipe = primitives.NewStepLeaderPipeline(nd, items, func(gathered []congest.Message) []congest.Message {
				return coverIDItems(leaderSolvePowerRemainder(p.n, p.power, gathered, p.solver), p.idw)
			})
			p.stage = 2
		default:
			if !p.pipe.Step(nd) {
				return false, nil
			}
			for _, m := range p.pipe.Items() {
				if m.(congest.Int).V == int64(nd.ID()) {
					p.inRStar = true
				}
			}
			return true, nil
		}
	}
}

func (p *mvcCongestProgram) Output() nodeOut {
	return nodeOut{InSolution: p.inS || p.inRStar, InPhaseI: p.inS}
}

// stepPhaseI advances one Phase-I round-slice; it reports done in the slice
// that collects the final U-status exchange (queuing nothing, so Phase II's
// leader election starts in that same slice).
func (p *mvcCongestProgram) stepPhaseI(nd *congest.Node) bool {
	switch {
	case p.sr == 4*p.iterations+1:
		// Final status exchange: learn which neighbors are in U = V \ S.
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				p.uNbrs = append(p.uNbrs, in.From)
			}
		}
		nd.SpanEnd("phase1", 0) // no-op at r = 1, where Phase I never began
		return true
	case p.sr == 0:
		// Round 1 of iteration 0: exchange R-status.
		if p.iterations > 0 {
			nd.SpanBegin("phase1", 0)
		}
		nd.Broadcast(congest.NewIntWidth(boolBit(p.inR), 1))
	default:
		switch (p.sr - 1) % 4 {
		case 0:
			nd.SpanBegin("phase1-iter", (p.sr-1)/4)
			// Count live neighbors; candidates are potential centers with
			// more than 1/ε = l live neighbors (the loop guard of
			// Algorithm 1). First slice of the 2-hop max: flood own value.
			dR := 0
			for _, in := range nd.Recv() {
				if in.Msg.(congest.Int).V == 1 {
					dR++
				}
			}
			p.candidate = p.inC && dR > p.l
			val := int64(0)
			if p.candidate {
				val = int64(nd.ID()) + 1
			}
			p.maxVal = val
			nd.Broadcast(congest.NewInt(val))
		case 1:
			// Second slice of the 2-hop max: flood the 1-hop maximum.
			for _, in := range nd.Recv() {
				if v := in.Msg.(congest.Int).V; v > p.maxVal {
					p.maxVal = v
				}
			}
			nd.Broadcast(congest.NewInt(p.maxVal))
		case 2:
			// Selected centers (2-hop maxima) move N(c) into S.
			for _, in := range nd.Recv() {
				if v := in.Msg.(congest.Int).V; v > p.maxVal {
					p.maxVal = v
				}
			}
			p.selected = p.candidate && p.maxVal == int64(nd.ID())+1
			if p.selected {
				nd.Broadcast(congest.Flag{})
				p.inC = false
			}
		case 3:
			// A JOIN from any selected center puts us into the cover; then
			// the next iteration's status exchange (or the final U-status
			// exchange) starts in this same slice.
			for range nd.Recv() {
				p.inS = true
				p.inR = false
				break
			}
			nd.SpanEnd("phase1-iter", (p.sr-1)/4)
			nd.Broadcast(congest.NewIntWidth(boolBit(p.inR), 1))
		}
	}
	p.sr++
	return false
}

// leaderSolveRemainder rebuilds H = G²[U] from the gathered edge set F per
// Lemma 3 and returns the configured solver's cover of H, in original ids.
// Each gathered item is a (v, u) pair asserting edge {v,u} ∈ E with u ∈ U.
func leaderSolveRemainder(n int, gathered []congest.Message, solver LocalSolver) *bitset.Set {
	u := bitset.New(n)
	b := graph.NewBuilder(n)
	for _, m := range gathered {
		p := m.(congest.Pair)
		u.Add(int(p.B))
		if _, err := b.AddEdgeIfAbsent(int(p.A), int(p.B)); err != nil {
			panic(err) // malformed item: an engine/protocol bug, not user input
		}
	}
	fGraph := b.Build()
	h, orig := fGraph.Square().InducedSubgraph(u)
	local := solver(h)
	out := bitset.New(n)
	local.ForEach(func(i int) bool {
		out.Add(orig[i])
		return true
	})
	return out
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
