package core

import (
	"powergraph/internal/bitset"
	"powergraph/internal/congest"
	"powergraph/internal/congest/primitives"
	"powergraph/internal/graph"
)

// ApproxMVCCongest runs Algorithm 1 (Theorem 1): a deterministic
// (1+ε)-approximation for minimum vertex cover on G², communicating only
// over G in the CONGEST model, in O(n/ε) rounds.
//
// Phase I repeatedly selects centers c whose live neighborhood N(c) ∩ R
// exceeds 1/ε and moves that whole neighborhood (a clique of G²) into the
// cover; simultaneous selections are made conflict-free by the paper's
// 2-hop maximum-ID rule. Phase II elects a leader, gathers the O(n/ε)-size
// edge set F of Lemma 2 with pipelining over a BFS tree, reconstructs
// H = G²[U] locally (Lemma 3), solves it with the configured LocalSolver
// (exact by default), and floods the solution back.
//
// The input graph must be connected (Phase II routes everything through one
// leader). ε must be positive; for ε > 1 the paper's trivial 0-round
// 2-approximation (all vertices, Lemma 6) is returned.
func ApproxMVCCongest(g *graph.Graph, eps float64, opts *Options) (*Result, error) {
	l, err := epsilonToL(eps)
	if err != nil {
		return nil, err
	}
	if eps > 1 {
		return &Result{Solution: bitset.Full(g.N()), PhaseISize: g.N()}, nil
	}
	if err := requireConnected(g); err != nil {
		return nil, err
	}
	n := g.N()
	solver := opts.localSolver()

	// Each productive Phase-I iteration removes at least l+1 vertices from
	// R, so ⌊n/(l+1)⌋+1 lockstep iterations guarantee global quiescence
	// without a termination-detection protocol.
	iterations := n/(l+1) + 1

	cfg := congest.Config{
		Graph:           g,
		Model:           congest.CONGEST,
		BandwidthFactor: opts.bandwidthFactor(4),
		MaxRounds:       opts.maxRounds(),
		Seed:            opts.seed(),
		CutA:            opts.cutA(),
	}
	res, err := congest.Run(cfg, func(nd *congest.Node) (nodeOut, error) {
		inR, inC := true, true
		inS := false
		idw := congest.IDBits(n)

		inRNbrs := make(map[int]bool, nd.Degree())
		for _, u := range nd.Neighbors() {
			inRNbrs[u] = true
		}

		// Phase I.
		for it := 0; it < iterations; it++ {
			// Round 1: exchange R-status.
			nd.Broadcast(congest.NewIntWidth(boolBit(inR), 1))
			nd.NextRound()
			dR := 0
			for _, in := range nd.Recv() {
				live := in.Msg.(congest.Int).V == 1
				inRNbrs[in.From] = live
				if live {
					dR++
				}
			}
			// Candidate: still a potential center with > 1/ε = l live
			// neighbors (the loop guard of Algorithm 1).
			candidate := inC && dR > l
			// Rounds 2–3: 2-hop max-ID symmetry breaking among candidates.
			val := int64(0)
			if candidate {
				val = int64(nd.ID()) + 1
			}
			maxVal := primitives.TwoHopMax(nd, val)
			selected := candidate && maxVal == int64(nd.ID())+1
			// Round 4: selected centers move N(c) into S.
			if selected {
				nd.Broadcast(congest.Flag{})
				inC = false
			} else {
				// Stay in lockstep; no message.
			}
			nd.NextRound()
			for range nd.Recv() {
				// A JOIN from any selected center puts us into the cover.
				inS = true
				inR = false
				break
			}
		}

		// One more status round so everyone knows which neighbors are in
		// U = V \ S = R.
		nd.Broadcast(congest.NewIntWidth(boolBit(inR), 1))
		nd.NextRound()
		uNbrs := make([]int, 0, nd.Degree())
		for _, in := range nd.Recv() {
			if in.Msg.(congest.Int).V == 1 {
				uNbrs = append(uNbrs, in.From)
			}
		}

		// Phase II: leader learns F = {{v,u} ∈ E : u ∈ U} (Lemma 2).
		leader := primitives.MinIDLeader(nd)
		tree := primitives.BFSTree(nd, leader)
		items := make([]congest.Message, 0, len(uNbrs))
		for _, u := range uNbrs {
			items = append(items, congest.NewPair(n, int64(nd.ID()), int64(u)))
		}
		gathered := primitives.GatherAtRoot(nd, tree, items)

		// Leader-local reconstruction (Lemma 3) and solve.
		var solutionIDs []congest.Message
		if nd.ID() == leader {
			cover := leaderSolveRemainder(n, gathered, solver)
			for _, v := range cover.Elements() {
				solutionIDs = append(solutionIDs, congest.NewIntWidth(int64(v), idw))
			}
		}
		all := primitives.FloodItemsFromRoot(nd, tree, solutionIDs)
		inRStar := false
		for _, m := range all {
			if m.(congest.Int).V == int64(nd.ID()) {
				inRStar = true
			}
		}
		return nodeOut{InSolution: inS || inRStar, InPhaseI: inS}, nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(res.Outputs, res.Stats), nil
}

// leaderSolveRemainder rebuilds H = G²[U] from the gathered edge set F per
// Lemma 3 and returns the configured solver's cover of H, in original ids.
// Each gathered item is a (v, u) pair asserting edge {v,u} ∈ E with u ∈ U.
func leaderSolveRemainder(n int, gathered []congest.Message, solver LocalSolver) *bitset.Set {
	u := bitset.New(n)
	b := graph.NewBuilder(n)
	for _, m := range gathered {
		p := m.(congest.Pair)
		u.Add(int(p.B))
		if _, err := b.AddEdgeIfAbsent(int(p.A), int(p.B)); err != nil {
			panic(err) // malformed item: an engine/protocol bug, not user input
		}
	}
	fGraph := b.Build()
	h, orig := fGraph.Square().InducedSubgraph(u)
	local := solver(h)
	out := bitset.New(n)
	local.ForEach(func(i int) bool {
		out.Add(orig[i])
		return true
	})
	return out
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
