package core

import (
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func TestCliqueDeterministicSmallGraphs(t *testing.T) {
	cases := map[string]*graph.Graph{
		"edge":    graph.Path(2),
		"path9":   graph.Path(9),
		"cycle7":  graph.Cycle(7),
		"star11":  graph.Star(11),
		"grid3x3": graph.Grid(3, 3),
		"cat":     graph.Caterpillar(5, 4),
	}
	for name, g := range cases {
		for _, eps := range []float64{1, 0.5, 0.25} {
			res, err := ApproxMVCCliqueDeterministic(g, eps, nil)
			if err != nil {
				t.Fatalf("%s eps=%v: %v", name, eps, err)
			}
			checkMVCResult(t, g, eps, res)
		}
	}
}

func TestCliqueRandomizedSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(18)
		g := graph.ConnectedGNP(n, 0.25, rng)
		eps := []float64{1, 0.5}[trial%2]
		res, err := ApproxMVCCliqueRandomized(g, eps, &Options{Seed: int64(trial * 7)})
		if err != nil {
			t.Fatal(err)
		}
		checkMVCResult(t, g, eps, res)
	}
}

func TestCliqueRandomizedDense(t *testing.T) {
	// Dense graphs make Phase I fire heavily under the voting scheme.
	rng := rand.New(rand.NewSource(77))
	g := graph.ConnectedGNP(40, 0.4, rng)
	res, err := ApproxMVCCliqueRandomized(g, 0.5, &Options{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := verify.IsSquareVertexCover(g, res.Solution); !ok {
		t.Fatalf("infeasible, witness %v", w)
	}
	if res.PhaseISize == 0 {
		t.Fatal("voting Phase I never fired on a dense graph")
	}
}

func TestCliqueRoundsBeatCongestOnDenseGraphs(t *testing.T) {
	// Corollary 10 / Theorem 11's point: the clique's Phase II costs O(1/ε)
	// instead of O(n/ε). Compare round counts on one graph.
	rng := rand.New(rand.NewSource(5))
	g := graph.ConnectedGNP(60, 0.2, rng)
	eps := 0.5
	congestRes, err := ApproxMVCCongest(g, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	cliqueRes, err := ApproxMVCCliqueDeterministic(g, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cliqueRes.Stats.Rounds >= congestRes.Stats.Rounds {
		t.Fatalf("clique (%d rounds) not faster than CONGEST (%d rounds)",
			cliqueRes.Stats.Rounds, congestRes.Stats.Rounds)
	}
}

func TestCliqueRandomizedLogRoundsScaling(t *testing.T) {
	// Theorem 11: O(log n + 1/ε) rounds. Rounds should grow far slower than
	// linearly: quadrupling n must not even double the rounds.
	rounds := func(n int) int {
		rng := rand.New(rand.NewSource(11))
		g := graph.ConnectedGNP(n, float64(8)/float64(n), rng)
		res, err := ApproxMVCCliqueRandomized(g, 0.5, &Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	r40, r160 := rounds(40), rounds(160)
	if float64(r160) > 2.0*float64(r40)+16 {
		t.Fatalf("rounds not logarithmic-ish: n=40→%d, n=160→%d", r40, r160)
	}
}

func TestCliqueInvalidEps(t *testing.T) {
	g := graph.Path(3)
	if _, err := ApproxMVCCliqueDeterministic(g, 0, nil); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := ApproxMVCCliqueRandomized(g, -0.5, nil); err == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestCliqueEpsGreaterThanOneShortcut(t *testing.T) {
	g := graph.Cycle(5)
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return ApproxMVCCliqueDeterministic(g, 1.5, nil) },
		func() (*Result, error) { return ApproxMVCCliqueRandomized(g, 1.5, nil) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Solution.Count() != 5 || res.Stats.Rounds != 0 {
			t.Fatalf("shortcut wrong: %d vertices, %d rounds", res.Solution.Count(), res.Stats.Rounds)
		}
	}
}

func TestCliqueRandomizedSeedsAgreeOnFeasibility(t *testing.T) {
	g := graph.Caterpillar(6, 5)
	sq := g.Square()
	opt := verify.Cost(sq, exact.VertexCover(sq))
	for seed := int64(0); seed < 6; seed++ {
		res, err := ApproxMVCCliqueRandomized(g, 0.5, &Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := verify.IsSquareVertexCover(g, res.Solution); !ok {
			t.Fatalf("seed %d: infeasible", seed)
		}
		got := verify.Cost(sq, res.Solution)
		if float64(got) > 1.5*float64(opt)+1e-9 {
			t.Fatalf("seed %d: ratio %d/%d exceeds 1.5", seed, got, opt)
		}
	}
}
