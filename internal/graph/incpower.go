package graph

import (
	"fmt"
	"slices"
)

// IncPowerStats reports what IncrementalPower did: how many vertices' Gʳ
// rows it classified dirty, and whether it abandoned splicing for a full
// Power(r) recompute because the dirty region covered too much of the graph.
type IncPowerStats struct {
	Dirty int
	Full  bool
}

// incPowerFullFraction is the dirty-region fallback threshold: when more
// than half the vertices need their rows recomputed, a full Power(r) sweep
// is at most a small constant factor more work than splicing and avoids the
// overhead of the union-graph BFS bookkeeping.
const incPowerFullFraction = 2

// IncrementalPower maintains a power graph under edge churn. Given
//
//   - view: the communication graph after applying edits,
//   - oldPower: the power graph of the view before the edits
//     (i.e. oldView.Power(r) for view = oldView ± edits),
//   - the batch of edits itself,
//
// it returns a graph byte-identical to view.Power(r) — same CSR arrays,
// weights, and names — by recomputing only the rows of *dirty* vertices and
// splicing the rest from oldPower.
//
// The dirty-region invariant: if the Gʳ row of a vertex w differs between
// oldView and view, then some path of length ≤ r from w runs through a
// churned edge {u, v}, so w is within distance r-1 of u or v — in whichever
// of the two graphs realizes the path. The BFS therefore runs on the union
// graph (view plus the batch-deleted edges, a supergraph of both oldView and
// view), whose distances lower-bound both, making the computed dirty set a
// superset of every vertex whose row can have changed. Clean rows are
// spliced verbatim; since every Power construction emits sorted rows, the
// splice is byte-exact.
//
// When the dirty set exceeds 1/incPowerFullFraction of the vertices the
// function falls back to view.Power(r) outright (Stats.Full reports this);
// the result is identical either way.
func IncrementalPower(view, oldPower *Graph, r int, edits []EdgeEdit) (*Graph, IncPowerStats) {
	if r < 1 {
		panic(fmt.Sprintf("graph: IncrementalPower(%d) with r < 1", r))
	}
	if view.n != oldPower.n {
		panic(fmt.Sprintf("graph: IncrementalPower vertex count mismatch: view %d, oldPower %d", view.n, oldPower.n))
	}
	n := view.n
	if len(edits) == 0 {
		return oldPower, IncPowerStats{}
	}

	// Adjacency of the union graph = view plus batch-deleted edges. Inserted
	// edges are already in view; deleted edges are re-attached here so the
	// BFS can also follow paths that existed only before the batch.
	extra := make(map[int][]int32)
	for _, e := range edits {
		if e.Del {
			extra[e.U] = append(extra[e.U], int32(e.V))
			extra[e.V] = append(extra[e.V], int32(e.U))
		}
	}

	// Multi-source BFS to depth r-1 from every churned endpoint.
	dirty := make([]bool, n)
	var cur, next []int32
	seed := func(v int) {
		if !dirty[v] {
			dirty[v] = true
			cur = append(cur, int32(v))
		}
	}
	for _, e := range edits {
		seed(e.U)
		seed(e.V)
	}
	nDirty := len(cur)
	for depth := 0; depth < r-1 && len(cur) > 0; depth++ {
		next = next[:0]
		for _, u := range cur {
			lo, hi := view.indptr[u], view.indptr[u+1]
			for _, w := range view.indices[lo:hi] {
				if !dirty[w] {
					dirty[w] = true
					nDirty++
					next = append(next, w)
				}
			}
			for _, w := range extra[int(u)] {
				if !dirty[w] {
					dirty[w] = true
					nDirty++
					next = append(next, w)
				}
			}
		}
		cur, next = next, cur
	}

	if nDirty*incPowerFullFraction > n {
		return view.Power(r), IncPowerStats{Dirty: nDirty, Full: true}
	}

	// Splice: recomputed sorted rows for dirty vertices (the same bounded
	// BFS powerBFS runs, so rows come out identical), verbatim oldPower rows
	// for clean ones.
	indptr := make([]int32, n+1)
	indices := make([]int32, 0, len(oldPower.indices))
	visited := make([]int32, n)
	var bcur, bnext []int32
	for v := 0; v < n; v++ {
		if !dirty[v] {
			indices = append(indices, oldPower.indices[oldPower.indptr[v]:oldPower.indptr[v+1]]...)
			indptr[v+1] = int32(len(indices))
			continue
		}
		epoch := int32(v + 1)
		visited[v] = epoch
		bcur = append(bcur[:0], int32(v))
		rowStart := len(indices)
		for depth := 0; depth < r && len(bcur) > 0; depth++ {
			bnext = bnext[:0]
			for _, u := range bcur {
				lo, hi := view.indptr[u], view.indptr[u+1]
				for _, w := range view.indices[lo:hi] {
					if visited[w] != epoch {
						visited[w] = epoch
						bnext = append(bnext, w)
						indices = append(indices, w)
					}
				}
			}
			bcur, bnext = bnext, bcur
		}
		slices.Sort(indices[rowStart:])
		indptr[v+1] = int32(len(indices))
	}
	p := fromCSR(n, indptr, indices)
	if view.weights != nil {
		p.weights = make([]int64, n)
		copy(p.weights, view.weights)
	}
	if view.names != nil {
		p.names = make([]string, n)
		copy(p.names, view.names)
	}
	return p, IncPowerStats{Dirty: nDirty}
}
