package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	g := b.Build()

	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 4, 3", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge(0,1) false")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 0) {
		t.Fatal("spurious edge")
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatal("bad degrees")
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("negative accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate (reversed) accepted")
	}
	added, err := b.AddEdgeIfAbsent(1, 0)
	if err != nil || added {
		t.Fatalf("AddEdgeIfAbsent dup: added=%v err=%v", added, err)
	}
	added, err = b.AddEdgeIfAbsent(1, 2)
	if err != nil || !added {
		t.Fatalf("AddEdgeIfAbsent new: added=%v err=%v", added, err)
	}
	if _, err := b.AddEdgeIfAbsent(0, 0); err == nil {
		t.Fatal("AddEdgeIfAbsent self-loop accepted")
	}
}

func TestWeights(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	g := b.Build()
	if g.Weighted() {
		t.Fatal("unweighted graph reports Weighted")
	}
	if g.Weight(0) != 1 || g.TotalWeight() != 3 {
		t.Fatal("default weights wrong")
	}

	b2 := NewBuilder(3)
	b2.MustAddEdge(0, 1)
	b2.SetWeight(2, 10)
	g2 := b2.Build()
	if !g2.Weighted() {
		t.Fatal("weighted graph reports unweighted")
	}
	if g2.Weight(0) != 1 || g2.Weight(2) != 10 || g2.TotalWeight() != 12 {
		t.Fatalf("weights: %d %d %d", g2.Weight(0), g2.Weight(2), g2.TotalWeight())
	}
}

func TestNames(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1)
	b.SetName(0, "alpha")
	g := b.Build()
	if g.Name(0) != "alpha" || g.Name(1) != "v1" {
		t.Fatalf("names: %q %q", g.Name(0), g.Name(1))
	}
}

func TestEdgesCanonical(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(3, 1)
	b.MustAddEdge(2, 0)
	g := b.Build()
	want := [][2]int{{0, 2}, {1, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestSquareOfPath(t *testing.T) {
	// P5 squared: i~j iff |i-j| ≤ 2.
	g := Path(5).Square()
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			want := v-u <= 2
			if g.HasEdge(u, v) != want {
				t.Errorf("P5²: edge {%d,%d} = %v, want %v", u, v, g.HasEdge(u, v), want)
			}
		}
	}
}

func TestSquareOfStarIsClique(t *testing.T) {
	// A star's square is complete: every leaf pair is at distance 2.
	g := Star(6).Square()
	if g.M() != 15 {
		t.Fatalf("Star(6)² has %d edges, want 15", g.M())
	}
}

func TestPowerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ConnectedGNP(20, 0.1, rng)
	if d := g.Diameter(); d < 2 {
		t.Skip("diameter too small for meaningful power test")
	}
	p1 := g.Power(1)
	if p1.M() != g.M() {
		t.Fatalf("Power(1) changed edge count: %d vs %d", p1.M(), g.M())
	}
	p2 := g.Power(2)
	p3 := g.Power(3)
	// Distance characterization.
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			d := g.Dist(u, v)
			if got, want := p2.HasEdge(u, v), d >= 1 && d <= 2; got != want {
				t.Fatalf("G²: {%d,%d} edge=%v dist=%d", u, v, got, d)
			}
			if got, want := p3.HasEdge(u, v), d >= 1 && d <= 3; got != want {
				t.Fatalf("G³: {%d,%d} edge=%v dist=%d", u, v, got, d)
			}
		}
	}
}

func TestQuickPowerMonotoneAndSymmetric(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		g := GNP(n, 0.25, rng)
		g2 := g.Square()
		// G ⊆ G² and symmetry (HasEdge is symmetric by construction; check
		// via both orders anyway).
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if g.HasEdge(u, v) && !g2.HasEdge(u, v) {
					return false
				}
				if g2.HasEdge(u, v) != g2.HasEdge(v, u) {
					return false
				}
			}
		}
		// (G²)² == G⁴.
		g4a := g2.Square()
		g4b := g.Power(4)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if g4a.HasEdge(u, v) != g4b.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoHopNeighborhood(t *testing.T) {
	g := Path(5)
	got := g.TwoHopNeighborhood(0).Elements()
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("N²(0) = %v", got)
	}
	got = g.TwoHopNeighborhood(2).Elements()
	if !reflect.DeepEqual(got, []int{0, 1, 3, 4}) {
		t.Fatalf("N²(2) = %v", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(5)
	keep := g.AdjRow(0).Clone() // {1, 4}
	keep.Add(0)
	sub, orig := g.InducedSubgraph(keep)
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d", sub.N())
	}
	if !reflect.DeepEqual(orig, []int{0, 1, 4}) {
		t.Fatalf("orig = %v", orig)
	}
	// 0-1 and 0-4 edges survive; 1-4 is not an edge of C5.
	if sub.M() != 2 {
		t.Fatalf("sub.M = %d", sub.M())
	}
}

func TestSquareInducedMeasuresDistanceInG(t *testing.T) {
	// Section 2: G²[S] keeps an edge {u,v}, u,v ∈ S iff dist_G(u,v) ≤ 2 —
	// even when every connecting path leaves S.
	g := Path(3) // 0-1-2
	s := g.AdjRow(1).Clone()
	s.Add(0)
	s.Add(2)
	s.Remove(1) // S = {0, 2}
	sub, orig := g.SquareInduced(s)
	if sub.N() != 2 || sub.M() != 1 {
		t.Fatalf("G²[{0,2}]: n=%d m=%d, want 2,1", sub.N(), sub.M())
	}
	if !reflect.DeepEqual(orig, []int{0, 2}) {
		t.Fatalf("orig = %v", orig)
	}
}
