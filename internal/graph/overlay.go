package graph

import (
	"fmt"
	"slices"
)

// EdgeEdit is one staged mutation of an overlay: insertion (Del == false) or
// deletion (Del == true) of the undirected edge {U, V}.
type EdgeEdit struct {
	U, V int
	Del  bool
}

// Overlay is a mutable delta view over an immutable base Graph: edge
// insertions and deletions are staged in per-vertex delta sets and merged
// with the base CSR rows on Materialize. The base never changes, so
// previously materialized graphs (and anything derived from them — power
// graphs, running simulations) stay valid while the overlay keeps moving.
//
// Invariants maintained by Insert/Delete:
//
//   - added ∩ E(base) = ∅ (an added edge is never already in the base)
//   - removed ⊆ E(base) (only base edges can be removed)
//   - added ∩ removed = ∅
//
// Deleting an added edge un-adds it; inserting a removed edge un-removes it.
// Pending() counts the staged differences from the base, which is the
// quantity a compaction threshold should watch: it can only grow to
// m(base) + m(added), never unboundedly with churn volume.
//
// Overlay is not safe for concurrent use; callers serialize access.
type Overlay struct {
	base    *Graph
	added   map[int]map[int]struct{} // v -> neighbors added to v's row
	removed map[int]map[int]struct{} // v -> neighbors removed from v's row
	pending int                      // staged edge-level differences from base
}

// NewOverlay returns an overlay with no staged edits over base.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{
		base:    base,
		added:   make(map[int]map[int]struct{}),
		removed: make(map[int]map[int]struct{}),
	}
}

// Base returns the immutable graph the overlay's deltas apply to.
func (o *Overlay) Base() *Graph { return o.base }

// N returns the vertex count (fixed: overlays edit edges, not vertices).
func (o *Overlay) N() int { return o.base.n }

// M returns the edge count of the current view.
func (o *Overlay) M() int {
	m := o.base.m
	for _, s := range o.added {
		m += len(s)
	}
	for _, s := range o.removed {
		m -= len(s)
	}
	// added/removed store both directions; each edge contributes 2.
	return o.base.m + (m-o.base.m)/2
}

// Pending returns the number of staged edge-level differences from the base.
func (o *Overlay) Pending() int { return o.pending }

// HasEdge reports whether {u, v} is an edge of the current view.
func (o *Overlay) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if _, ok := o.added[u][v]; ok {
		return true
	}
	if _, ok := o.removed[u][v]; ok {
		return false
	}
	return o.base.HasEdge(u, v)
}

// Insert stages the insertion of edge {u, v} into the view. It rejects
// out-of-range endpoints, self-loops, and edges already present in the view.
func (o *Overlay) Insert(u, v int) error {
	if u < 0 || u >= o.base.n || v < 0 || v >= o.base.n {
		return fmt.Errorf("graph: insert {%d,%d} out of range [0,%d)", u, v, o.base.n)
	}
	if u == v {
		return fmt.Errorf("graph: insert self-loop at %d", u)
	}
	if _, ok := o.removed[u][v]; ok { // re-inserting a removed base edge
		o.unstage(o.removed, u, v)
		o.pending--
		return nil
	}
	if o.HasEdge(u, v) {
		return fmt.Errorf("graph: insert duplicate edge {%d,%d}", u, v)
	}
	o.stage(o.added, u, v)
	o.pending++
	return nil
}

// Delete stages the deletion of edge {u, v} from the view. It rejects
// out-of-range endpoints, self-loops, and edges absent from the view.
func (o *Overlay) Delete(u, v int) error {
	if u < 0 || u >= o.base.n || v < 0 || v >= o.base.n {
		return fmt.Errorf("graph: delete {%d,%d} out of range [0,%d)", u, v, o.base.n)
	}
	if u == v {
		return fmt.Errorf("graph: delete self-loop at %d", u)
	}
	if _, ok := o.added[u][v]; ok { // deleting a staged insertion
		o.unstage(o.added, u, v)
		o.pending--
		return nil
	}
	if _, ok := o.removed[u][v]; ok {
		return fmt.Errorf("graph: delete missing edge {%d,%d}", u, v)
	}
	if !o.base.HasEdge(u, v) {
		return fmt.Errorf("graph: delete missing edge {%d,%d}", u, v)
	}
	o.stage(o.removed, u, v)
	o.pending++
	return nil
}

func (o *Overlay) stage(m map[int]map[int]struct{}, u, v int) {
	for _, p := range [2][2]int{{u, v}, {v, u}} {
		s := m[p[0]]
		if s == nil {
			s = make(map[int]struct{})
			m[p[0]] = s
		}
		s[p[1]] = struct{}{}
	}
}

func (o *Overlay) unstage(m map[int]map[int]struct{}, u, v int) {
	for _, p := range [2][2]int{{u, v}, {v, u}} {
		delete(m[p[0]], p[1])
		if len(m[p[0]]) == 0 {
			delete(m, p[0])
		}
	}
}

// Apply stages every edit in order. On the first failure it rolls back the
// already-applied prefix (insert and delete are exact inverses under the
// overlay's state transitions) and returns an error identifying the failing
// edit by index, so a batch either lands whole or not at all.
func (o *Overlay) Apply(edits []EdgeEdit) error {
	for i, e := range edits {
		var err error
		if e.Del {
			err = o.Delete(e.U, e.V)
		} else {
			err = o.Insert(e.U, e.V)
		}
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				u := edits[j]
				if u.Del {
					if ierr := o.Insert(u.U, u.V); ierr != nil {
						panic(fmt.Sprintf("graph: overlay rollback failed: %v", ierr))
					}
				} else {
					if derr := o.Delete(u.U, u.V); derr != nil {
						panic(fmt.Sprintf("graph: overlay rollback failed: %v", derr))
					}
				}
			}
			return fmt.Errorf("edit %d: %w", i, err)
		}
	}
	return nil
}

// viewRow returns the sorted neighbor row of v in the current view.
func (o *Overlay) viewRow(v int, buf []int32) []int32 {
	row := buf[:0]
	rem := o.removed[v]
	for _, u := range o.base.indices[o.base.indptr[v]:o.base.indptr[v+1]] {
		if _, gone := rem[int(u)]; !gone {
			row = append(row, u)
		}
	}
	for u := range o.added[v] {
		row = append(row, int32(u))
	}
	slices.Sort(row)
	return row
}

// Materialize builds an immutable Graph of the current view by merging the
// staged deltas with the base CSR rows. Weights and names carry over from
// the base. The overlay keeps its deltas; use Compact to also adopt the
// result as the new base.
func (o *Overlay) Materialize() *Graph {
	n := o.base.n
	indptr := make([]int32, n+1)
	indices := make([]int32, 0, len(o.base.indices)+2*o.pending)
	var buf []int32
	for v := 0; v < n; v++ {
		row := o.viewRow(v, buf)
		indices = append(indices, row...)
		indptr[v+1] = int32(len(indices))
		buf = row // reuse backing array across rows
	}
	g := fromCSR(n, indptr, indices)
	if o.base.weights != nil {
		g.weights = make([]int64, n)
		copy(g.weights, o.base.weights)
	}
	if o.base.names != nil {
		g.names = make([]string, n)
		copy(g.names, o.base.names)
	}
	return g
}

// Compact adopts view (which must be a graph previously returned by
// Materialize with no edits staged since) as the overlay's new base and
// clears all staged deltas. Callers trigger it when Pending crosses a
// threshold so view-row merging stays cheap under sustained churn.
func (o *Overlay) Compact(view *Graph) {
	o.base = view
	o.added = make(map[int]map[int]struct{})
	o.removed = make(map[int]map[int]struct{})
	o.pending = 0
}
