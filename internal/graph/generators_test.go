package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestPathCycleComplete(t *testing.T) {
	if g := Path(1); g.M() != 0 {
		t.Fatal("Path(1) has edges")
	}
	if g := Path(4); g.M() != 3 || g.Diameter() != 3 {
		t.Fatalf("Path(4): m=%d diam=%d", g.M(), g.Diameter())
	}
	if g := Cycle(5); g.M() != 5 || g.MaxDegree() != 2 {
		t.Fatalf("Cycle(5): m=%d Δ=%d", g.M(), g.MaxDegree())
	}
	if g := Complete(6); g.M() != 15 || g.Diameter() != 1 {
		t.Fatalf("K6: m=%d diam=%d", g.M(), g.Diameter())
	}
	if g := Star(7); g.M() != 6 || g.Degree(0) != 6 {
		t.Fatalf("Star(7): m=%d deg0=%d", g.M(), g.Degree(0))
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 10, 50} {
		g := RandomTree(n, rng)
		if g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Fatalf("tree n=%d m=%d", n, g.M())
			}
		}
		if !g.Connected() {
			t.Fatalf("tree n=%d disconnected", n)
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 4+15 {
		t.Fatalf("M = %d", g.M())
	}
	if !g.Connected() {
		t.Fatal("caterpillar disconnected")
	}
	// Spine vertex 2 has degree 2 (spine) + 3 (legs).
	if g.Degree(2) != 5 {
		t.Fatalf("Degree(2) = %d", g.Degree(2))
	}
}

func TestConnectedGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10; i++ {
		g := ConnectedGNP(30, 0.02, rng)
		if !g.Connected() {
			t.Fatal("ConnectedGNP produced disconnected graph")
		}
		if g.M() < 29 {
			t.Fatalf("too few edges for connectivity: %d", g.M())
		}
	}
}

func TestConnectedUnitDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ConnectedUnitDisk(40, 0.2, rng)
	if !g.Connected() {
		t.Fatal("ConnectedUnitDisk disconnected")
	}
}

func TestRandomBipartiteIsBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomBipartite(10, 12, 0.5, rng)
	for _, e := range g.Edges() {
		inLeft := func(v int) bool { return v < 10 }
		if inLeft(e[0]) == inLeft(e[1]) {
			t.Fatalf("same-side edge %v", e)
		}
	}
}

func TestWithRandomWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := WithRandomWeights(Path(10), 100, rng)
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	for v := 0; v < g.N(); v++ {
		if w := g.Weight(v); w < 1 || w > 100 {
			t.Fatalf("weight out of range: %d", w)
		}
	}
	if g.M() != 9 {
		t.Fatal("edges changed")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := WithRandomWeights(ConnectedGNP(25, 0.15, rng), 50, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g2.Weight(v) != g.Weight(v) {
			t.Fatalf("weight of %d changed", v)
		}
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.HasEdge(u, v) != g2.HasEdge(u, v) {
				t.Fatalf("edge {%d,%d} changed", u, v)
			}
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"e 0 1",             // edge before n
		"n 2\nn 3",          // duplicate n
		"n 2\ne 0 2",        // out of range
		"n 2\ne 0 0",        // self loop
		"n 2\nz 1 2",        // unknown directive
		"n -1",              // negative n
		"n 2\ne 0 1\ne 0 1", // duplicate edge
		"",                  // missing n
		"n 2\nw 0",          // malformed weight
		"n 2\ne 0",          // malformed edge
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestReadEdgeListLimit(t *testing.T) {
	// A header above the cap fails with a line-numbered error before any
	// allocation proportional to the declared count.
	_, err := ReadEdgeListLimit(strings.NewReader("# big\nn 2000000000\n"), 1000)
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized header: %v", err)
	}
	// At or below the cap the loader behaves exactly like ReadEdgeList.
	g, err := ReadEdgeListLimit(strings.NewReader("n 3\ne 0 1\n"), 3)
	if err != nil || g.N() != 3 || g.M() != 1 {
		t.Fatalf("within limit: g=%v err=%v", g, err)
	}
	if _, err := ReadEdgeListLimit(strings.NewReader("n 3\ne 0 1\n"), 0); err != nil {
		t.Fatalf("maxN=0 must mean unlimited: %v", err)
	}
}

func TestReadEdgeListIgnoresComments(t *testing.T) {
	in := "# comment\n\nn 3\n# another\ne 0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestDOTOutput(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1)
	b.SetName(0, "hub")
	out := DOT(b.Build())
	if !strings.Contains(out, `"hub"`) || !strings.Contains(out, "0 -- 1") {
		t.Fatalf("DOT output missing parts:\n%s", out)
	}
}

func TestTraversalHelpers(t *testing.T) {
	g := Path(6)
	dist, parent := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist[%d] = %d", i, d)
		}
	}
	if parent[0] != -1 || parent[3] != 2 {
		t.Fatalf("parents: %v", parent)
	}
	if g.Eccentricity(0) != 5 || g.Eccentricity(3) != 3 {
		t.Fatal("eccentricity wrong")
	}
	if g.Dist(1, 4) != 3 {
		t.Fatal("Dist wrong")
	}

	// Disconnected graph.
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	h := b.Build()
	if h.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if h.Diameter() != -1 {
		t.Fatal("diameter of disconnected should be -1")
	}
	comps := h.Components()
	if len(comps) != 2 || comps[0].Count() != 2 || comps[1].Count() != 2 {
		t.Fatalf("components: %v", comps)
	}
}

func TestTriangles(t *testing.T) {
	if _, ok := Path(5).FindTriangle(); ok {
		t.Fatal("path has a triangle?")
	}
	tri, ok := Complete(4).FindTriangle()
	if !ok || tri != [3]int{0, 1, 2} {
		t.Fatalf("K4 triangle = %v ok=%v", tri, ok)
	}
	if got := Complete(4).CountTriangles(); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	if got := Complete(5).CountTriangles(); got != 10 {
		t.Fatalf("K5 triangles = %d, want 10", got)
	}
	if got := Cycle(3).CountTriangles(); got != 1 {
		t.Fatalf("C3 triangles = %d", got)
	}
}

func TestGreedyMaximalMatchingIsMaximalMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20; i++ {
		g := GNP(20, 0.2, rng)
		m := g.GreedyMaximalMatching()
		used := make(map[int]bool)
		for _, e := range m {
			if used[e[0]] || used[e[1]] {
				t.Fatal("not a matching")
			}
			used[e[0]] = true
			used[e[1]] = true
			if !g.HasEdge(e[0], e[1]) {
				t.Fatal("matched non-edge")
			}
		}
		// Maximality: no edge with both endpoints unmatched.
		for _, e := range g.Edges() {
			if !used[e[0]] && !used[e[1]] {
				t.Fatalf("matching not maximal: edge %v free", e)
			}
		}
	}
}

func TestIsClique(t *testing.T) {
	g := Complete(5)
	all := g.AdjRow(0).Clone()
	all.Add(0)
	if !g.IsClique(all) {
		t.Fatal("K5 not a clique?")
	}
	p := Path(4)
	s := p.AdjRow(1).Clone() // {0, 2}
	s.Add(1)
	if p.IsClique(s) {
		t.Fatal("path segment is not a clique")
	}
}
