// Package graph provides the static undirected graph substrate used by every
// other package in this repository: adjacency storage with both sorted
// neighbor lists and bitset rows, vertex weights, power-graph (G², Gʳ)
// computation, generators, and basic traversal algorithms.
//
// Graphs are immutable after construction via Builder, which makes them safe
// to share — across the CONGEST simulator's nodes (either engine) and across
// harness workers running simulations on the same instance — without
// locking.
package graph

import (
	"fmt"
	"sort"

	"powergraph/internal/bitset"
)

// Graph is an immutable, simple (no self-loops, no multi-edges), undirected
// graph on vertices {0, …, n-1} with optional positive vertex weights.
//
// All accessors are safe for concurrent use because the structure never
// changes after Build.
type Graph struct {
	n       int
	m       int
	adj     [][]int       // sorted neighbor lists
	rows    []*bitset.Set // adjacency bitsets, rows[v].Contains(u) iff {u,v} ∈ E
	weights []int64       // per-vertex weights; nil means all weights are 1
	names   []string      // optional debug names; nil means "v<i>"
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n       int
	edges   map[[2]int]struct{}
	weights []int64
	names   []string
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[[2]int]struct{})}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate edges
// are rejected with an error so construction bugs in gadget builders surface
// immediately rather than silently producing the wrong graph.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if _, dup := b.edges[key]; dup {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	b.edges[key] = struct{}{}
	return nil
}

// MustAddEdge is AddEdge that panics on error; for use in generators and
// tests where the arguments are known valid by construction.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// AddEdgeIfAbsent inserts {u,v} unless it already exists; it still rejects
// out-of-range endpoints and self-loops. It reports whether the edge was
// newly added. Gadget constructions that share vertices use this to merge
// parallel requirements.
func (b *Builder) AddEdgeIfAbsent(u, v int) (added bool, err error) {
	err = b.AddEdge(u, v)
	if err == nil {
		return true, nil
	}
	if u != v && u >= 0 && v >= 0 && u < b.n && v < b.n {
		return false, nil // duplicate: tolerated
	}
	return false, err
}

// SetWeight assigns weight w to vertex v. Weights default to 1.
func (b *Builder) SetWeight(v int, w int64) {
	if v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: SetWeight index %d out of range", v))
	}
	if b.weights == nil {
		b.weights = make([]int64, b.n)
		for i := range b.weights {
			b.weights[i] = 1
		}
	}
	b.weights[v] = w
}

// SetName assigns a debug name to vertex v (used by gadget constructions so
// test failures identify vertices as e.g. "a1_3" or "DP[e]{2}").
func (b *Builder) SetName(v int, name string) {
	if v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: SetName index %d out of range", v))
	}
	if b.names == nil {
		b.names = make([]string, b.n)
	}
	b.names[v] = name
}

// Build produces the immutable Graph. The Builder may be reused afterwards,
// but further mutations do not affect the built graph.
func (b *Builder) Build() *Graph {
	g := &Graph{
		n:    b.n,
		m:    len(b.edges),
		adj:  make([][]int, b.n),
		rows: make([]*bitset.Set, b.n),
	}
	deg := make([]int, b.n)
	for e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for v := 0; v < b.n; v++ {
		g.adj[v] = make([]int, 0, deg[v])
		g.rows[v] = bitset.New(b.n)
	}
	for e := range b.edges {
		u, v := e[0], e[1]
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
		g.rows[u].Add(v)
		g.rows[v].Add(u)
	}
	for v := 0; v < b.n; v++ {
		sort.Ints(g.adj[v])
	}
	if b.weights != nil {
		g.weights = make([]int64, b.n)
		copy(g.weights, b.weights)
	}
	if b.names != nil {
		g.names = make([]string, b.n)
		copy(g.names, b.names)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree Δ of the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Adj returns the sorted neighbor list of v as a shared read-only view.
// Callers must not modify the returned slice; use Neighbors for a copy.
func (g *Graph) Adj(v int) []int { return g.adj[v] }

// Neighbors returns a fresh copy of the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// AdjRow returns the adjacency bitset of v as a shared read-only view.
// Callers must not modify the returned set; Clone it before mutating.
func (g *Graph) AdjRow(v int) *bitset.Set { return g.rows[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	return g.rows[u].Contains(v)
}

// Weighted reports whether the graph carries non-default vertex weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Weight returns the weight of vertex v (1 if the graph is unweighted).
func (g *Graph) Weight(v int) int64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[v]
}

// TotalWeight returns the sum of all vertex weights.
func (g *Graph) TotalWeight() int64 {
	var t int64
	for v := 0; v < g.n; v++ {
		t += g.Weight(v)
	}
	return t
}

// SetWeightOf returns a fresh sum of weights over the vertex set s.
func (g *Graph) SetWeightOf(s *bitset.Set) int64 {
	var t int64
	s.ForEach(func(v int) bool {
		t += g.Weight(v)
		return true
	})
	return t
}

// Name returns the debug name of v, defaulting to "v<i>".
func (g *Graph) Name(v int) string {
	if g.names != nil && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Edges returns all edges as canonical (u < v) pairs, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// ClosedNeighborhood returns N[v] = N(v) ∪ {v} as a fresh bitset.
func (g *Graph) ClosedNeighborhood(v int) *bitset.Set {
	s := g.rows[v].Clone()
	s.Add(v)
	return s
}
