// Package graph provides the static undirected graph substrate used by every
// other package in this repository: flat CSR adjacency storage (indptr /
// indices arrays in the style of large-scale graph engines), vertex weights,
// power-graph (G², Gʳ) computation, generators, and basic traversal
// algorithms. Dense-graph helpers (adjacency bitset rows) are kept for small
// graphs, where O(n) bits per vertex is cheap, and elided above a size
// cutoff so million-node graphs stay O(n + m) memory.
//
// Graphs are immutable after construction via Builder, which makes them safe
// to share — across the CONGEST simulator's nodes (either engine, any shard
// count) and across harness workers running simulations on the same
// instance — without locking.
package graph

import (
	"fmt"
	"math"
	"sort"

	"powergraph/internal/bitset"
)

// rowsCutoff bounds the vertex count up to which adjacency bitset rows are
// materialized eagerly at Build time. Rows cost n bits per vertex (O(n²)
// total), which is fine at kernel/oracle scale but fatal at n ≈ 10⁶
// (≈ 125 GB); above the cutoff HasEdge falls back to binary search over the
// CSR row and AdjRow materializes on demand.
const rowsCutoff = 1 << 14

// Graph is an immutable, simple (no self-loops, no multi-edges), undirected
// graph on vertices {0, …, n-1} with optional positive vertex weights.
//
// Adjacency is stored once, in compressed sparse row form: indptr[v] ..
// indptr[v+1] delimits v's sorted neighbor row inside indices. A widened
// copy (flat) backs the []int views handed out by Adj so hot loops keep
// zero-allocation access without converting element widths.
//
// All accessors are safe for concurrent use because the structure never
// changes after Build.
type Graph struct {
	n       int
	m       int
	indptr  []int32       // CSR row offsets, len n+1
	indices []int32       // CSR neighbor ids, len 2m, sorted within each row
	flat    []int         // same content as indices, widened; backs Adj views
	rows    []*bitset.Set // adjacency bitsets; nil when n > rowsCutoff
	weights []int64       // per-vertex weights; nil means all weights are 1
	names   []string      // optional debug names; nil means "v<i>"
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n       int
	edges   map[[2]int]struct{}
	weights []int64
	names   []string
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[[2]int]struct{})}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate edges
// are rejected with an error so construction bugs in gadget builders surface
// immediately rather than silently producing the wrong graph.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if _, dup := b.edges[key]; dup {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	b.edges[key] = struct{}{}
	return nil
}

// MustAddEdge is AddEdge that panics on error; for use in generators and
// tests where the arguments are known valid by construction.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// AddEdgeIfAbsent inserts {u,v} unless it already exists; it still rejects
// out-of-range endpoints and self-loops. It reports whether the edge was
// newly added. Gadget constructions that share vertices use this to merge
// parallel requirements.
func (b *Builder) AddEdgeIfAbsent(u, v int) (added bool, err error) {
	err = b.AddEdge(u, v)
	if err == nil {
		return true, nil
	}
	if u != v && u >= 0 && v >= 0 && u < b.n && v < b.n {
		return false, nil // duplicate: tolerated
	}
	return false, err
}

// SetWeight assigns weight w to vertex v. Weights default to 1.
func (b *Builder) SetWeight(v int, w int64) {
	if v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: SetWeight index %d out of range", v))
	}
	if b.weights == nil {
		b.weights = make([]int64, b.n)
		for i := range b.weights {
			b.weights[i] = 1
		}
	}
	b.weights[v] = w
}

// SetName assigns a debug name to vertex v (used by gadget constructions so
// test failures identify vertices as e.g. "a1_3" or "DP[e]{2}").
func (b *Builder) SetName(v int, name string) {
	if v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: SetName index %d out of range", v))
	}
	if b.names == nil {
		b.names = make([]string, b.n)
	}
	b.names[v] = name
}

// Build produces the immutable Graph in CSR form. The Builder may be reused
// afterwards, but further mutations do not affect the built graph.
func (b *Builder) Build() *Graph {
	if 2*int64(len(b.edges)) > math.MaxInt32 {
		panic(fmt.Sprintf("graph: %d edges exceed the int32 CSR index space", len(b.edges)))
	}
	deg := make([]int32, b.n+1)
	for e := range b.edges {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	indptr := deg // reuse: prefix-summed in place
	for v := 0; v < b.n; v++ {
		indptr[v+1] += indptr[v]
	}
	indices := make([]int32, 2*len(b.edges))
	fill := make([]int32, b.n)
	for e := range b.edges {
		u, v := e[0], e[1]
		indices[indptr[u]+fill[u]] = int32(v)
		indices[indptr[v]+fill[v]] = int32(u)
		fill[u]++
		fill[v]++
	}
	g := &Graph{
		n:       b.n,
		m:       len(b.edges),
		indptr:  indptr,
		indices: indices,
	}
	for v := 0; v < b.n; v++ {
		row := indices[indptr[v]:indptr[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	g.finish()
	if b.weights != nil {
		g.weights = make([]int64, b.n)
		copy(g.weights, b.weights)
	}
	if b.names != nil {
		g.names = make([]string, b.n)
		copy(g.names, b.names)
	}
	return g
}

// finish derives the widened flat view and (below the cutoff) the bitset
// rows from the already-sorted CSR arrays.
func (g *Graph) finish() {
	g.flat = make([]int, len(g.indices))
	for i, u := range g.indices {
		g.flat[i] = int(u)
	}
	if g.n <= rowsCutoff {
		g.rows = make([]*bitset.Set, g.n)
		for v := 0; v < g.n; v++ {
			g.rows[v] = bitset.FromIndices(g.n, g.Adj(v)...)
		}
	}
}

// fromCSR assembles a Graph directly from sorted CSR arrays (each row
// strictly increasing, symmetric, no self-loops). Bulk constructors — the
// bounded-BFS power expansion — use it to bypass the Builder's edge map.
func fromCSR(n int, indptr, indices []int32) *Graph {
	g := &Graph{n: n, m: len(indices) / 2, indptr: indptr, indices: indices}
	g.finish()
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.indptr[v+1] - g.indptr[v]) }

// MaxDegree returns the maximum degree Δ of the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	d := int32(0)
	for v := 0; v < g.n; v++ {
		if w := g.indptr[v+1] - g.indptr[v]; w > d {
			d = w
		}
	}
	return int(d)
}

// IndPtr returns the CSR row-offset array (length n+1) as a shared read-only
// view: vertex v's neighbors occupy Indices()[IndPtr()[v]:IndPtr()[v+1]].
func (g *Graph) IndPtr() []int32 { return g.indptr }

// Indices returns the CSR neighbor array (length 2m, sorted within each row)
// as a shared read-only view.
func (g *Graph) Indices() []int32 { return g.indices }

// NeighborRange returns the half-open [lo, hi) range of v's row inside
// Indices — the allocation-free iteration form consumed by the engines.
func (g *Graph) NeighborRange(v int) (lo, hi int32) {
	return g.indptr[v], g.indptr[v+1]
}

// Adj returns the sorted neighbor list of v as a shared read-only view into
// the flat CSR buffer. Callers must not modify the returned slice; use
// Neighbors for a copy.
func (g *Graph) Adj(v int) []int {
	return g.flat[g.indptr[v]:g.indptr[v+1]:g.indptr[v+1]]
}

// Neighbors returns a fresh copy of the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	adj := g.Adj(v)
	out := make([]int, len(adj))
	copy(out, adj)
	return out
}

// AdjRow returns the adjacency bitset of v. Below the rows cutoff this is a
// shared read-only view (callers must Clone before mutating); above it a
// fresh set is materialized from the CSR row on every call, so large-graph
// hot paths should iterate Adj instead.
func (g *Graph) AdjRow(v int) *bitset.Set {
	if g.rows != nil {
		return g.rows[v]
	}
	return bitset.FromIndices(g.n, g.Adj(v)...)
}

// HasEdge reports whether {u, v} is an edge: one bitset probe below the rows
// cutoff, binary search over the smaller CSR row above it.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if g.rows != nil {
		return g.rows[u].Contains(v)
	}
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	row := g.indices[g.indptr[u]:g.indptr[u+1]]
	t := int32(v)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == t
}

// Weighted reports whether the graph carries non-default vertex weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Weight returns the weight of vertex v (1 if the graph is unweighted).
func (g *Graph) Weight(v int) int64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[v]
}

// TotalWeight returns the sum of all vertex weights.
func (g *Graph) TotalWeight() int64 {
	var t int64
	for v := 0; v < g.n; v++ {
		t += g.Weight(v)
	}
	return t
}

// SetWeightOf returns a fresh sum of weights over the vertex set s.
func (g *Graph) SetWeightOf(s *bitset.Set) int64 {
	var t int64
	s.ForEach(func(v int) bool {
		t += g.Weight(v)
		return true
	})
	return t
}

// Name returns the debug name of v, defaulting to "v<i>".
func (g *Graph) Name(v int) string {
	if g.names != nil && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Edges returns all edges as canonical (u < v) pairs, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Adj(u) {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// ClosedNeighborhood returns N[v] = N(v) ∪ {v} as a fresh bitset.
func (g *Graph) ClosedNeighborhood(v int) *bitset.Set {
	s := bitset.FromIndices(g.n, g.Adj(v)...)
	s.Add(v)
	return s
}
