package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickPowerChainMonotone: G ⊆ G² ⊆ G³ ⊆ … as edge sets, and every Gʳ
// degree respects deg_{Gʳ}(v) ≤ Δ + Δ² + … + Δʳ.
func TestQuickPowerChainMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		g := GNP(n, 0.25, rng)
		prev := g
		for r := 2; r <= 4; r++ {
			cur := g.Power(r)
			for u := 0; u < n; u++ {
				for _, v := range prev.Adj(u) {
					if !cur.HasEdge(u, v) {
						return false
					}
				}
			}
			prev = cur
		}
		// Degree bound on the square.
		sq := g.Square()
		d := g.MaxDegree()
		for v := 0; v < n; v++ {
			if sq.Degree(v) > d+d*d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPowerStabilizesAtDiameter: for r ≥ diameter, Gʳ is complete
// (connected inputs).
func TestQuickPowerStabilizesAtDiameter(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := ConnectedGNP(n, 0.3, rng)
		d := g.Diameter()
		gr := g.Power(d)
		return gr.M() == n*(n-1)/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSquareNeighborhoodCharacterization: N_{G²}(v) equals the 2-hop
// neighborhood helper for every vertex.
func TestQuickSquareNeighborhoodCharacterization(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		g := GNP(n, 0.3, rng)
		sq := g.Square()
		for v := 0; v < n; v++ {
			ball := g.TwoHopNeighborhood(v)
			if ball.Count() != sq.Degree(v) {
				return false
			}
			okAll := true
			ball.ForEach(func(u int) bool {
				if !sq.HasEdge(u, v) {
					okAll = false
				}
				return okAll
			})
			if !okAll {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPowerPreservesWeightsAndNames: attributes survive Power and
// InducedSubgraph.
func TestPowerPreservesWeightsAndNames(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.SetWeight(2, 7)
	b.SetName(3, "tail")
	g := b.Build()
	sq := g.Square()
	if sq.Weight(2) != 7 || sq.Name(3) != "tail" {
		t.Fatal("square dropped attributes")
	}
	keep := g.AdjRow(2).Clone()
	keep.Add(2)
	sub, orig := sq.InducedSubgraph(keep)
	for i, v := range orig {
		if sub.Weight(i) != sq.Weight(v) {
			t.Fatal("induced subgraph dropped weights")
		}
	}
}

func TestPowerInvalidR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Power(0) should panic")
		}
	}()
	Path(3).Power(0)
}
