package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The edge-list format is a line-oriented text encoding used by the cmd/
// tools to pass graphs between runs:
//
//	n <vertexCount>
//	w <v> <weight>        (optional, any number of lines)
//	e <u> <v>             (one line per edge)
//
// Lines starting with '#' and blank lines are ignored.

// WriteEdgeList encodes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	if g.Weighted() {
		for v := 0; v < g.N(); v++ {
			if _, err := fmt.Fprintf(bw, "w %d %d\n", v, g.Weight(v)); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList decodes a graph from the edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListLimit(r, 0)
}

// ReadEdgeListLimit decodes a graph from the edge-list format, rejecting a
// vertex count above maxN (maxN ≤ 0 means unlimited) before any allocation
// proportional to it happens. Servers parsing untrusted input use this so a
// tiny body declaring `n 2000000000` cannot allocate gigabytes.
func ReadEdgeListLimit(r io.Reader, maxN int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate n directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed n directive", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[1])
			}
			if maxN > 0 && n > maxN {
				return nil, fmt.Errorf("graph: line %d: vertex count %d exceeds the limit %d", lineNo, n, maxN)
			}
			b = NewBuilder(n)
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before n directive", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge endpoints", lineNo)
			}
			if err := b.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		case "w":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: weight before n directive", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed weight", lineNo)
			}
			v, err1 := strconv.Atoi(fields[1])
			wt, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight line", lineNo)
			}
			if v < 0 || v >= b.n {
				// Range-check here rather than letting SetWeight panic: a
				// malformed input file must surface as a line-numbered error.
				return nil, fmt.Errorf("graph: line %d: weight vertex %d out of range [0,%d)", lineNo, v, b.n)
			}
			b.SetWeight(v, wt)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing n directive")
	}
	return b.Build(), nil
}

// DOT renders the graph in Graphviz DOT format for debugging gadget
// constructions.
func DOT(g *Graph) string {
	var sb strings.Builder
	sb.WriteString("graph G {\n")
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&sb, "  %d [label=%q];\n", v, g.Name(v))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}
