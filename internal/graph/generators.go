package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Generators for the workloads used throughout the experiment harness.
// All randomized generators take an explicit *rand.Rand so every experiment
// is reproducible from a seed.

// Path returns the path graph P_n (v0 - v1 - … - v_{n-1}).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle(%d) needs n ≥ 3", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with vertex 0 as the center.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// RandomTree returns a uniform random labelled tree on n vertices, built by
// attaching each vertex i ≥ 1 to a uniformly random earlier vertex.
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(v, rng.Intn(v))
	}
	return b.Build()
}

// Caterpillar returns a caterpillar: a spine path of length spine with legs
// pendant vertices attached to each spine vertex. Caterpillars make G²
// dramatically denser than G (each spine neighborhood becomes a clique),
// which is exactly the structure Algorithm 1's Phase I exploits.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		b.MustAddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.MustAddEdge(i, next)
			next++
		}
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n, p) random graph.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// ConnectedGNP returns G(n, p) conditioned on connectivity by first laying
// down a random spanning tree and then adding each remaining pair with
// probability p. Connected inputs are required by the CONGEST algorithms
// (a leader must be reachable from everywhere).
func ConnectedGNP(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(perm[i], perm[rng.Intn(i)])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				_, _ = b.AddEdgeIfAbsent(u, v)
			}
		}
	}
	return b.Build()
}

// GNM returns a uniform-ish random graph with (up to) m edges sampled by
// endpoint pairs with rejection of self-loops and duplicates. Unlike GNP's
// O(n²) Bernoulli sweep this is O(m) work and memory, which makes it the
// generator of choice for sparse million-node instances; the number of
// sampling attempts is capped so adversarial (n, m) combinations terminate
// with fewer edges instead of looping.
func GNM(n, m int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	if n > 1 {
		attempts := 20*m + 100
		for added := 0; added < m && attempts > 0; attempts-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if ok, _ := b.AddEdgeIfAbsent(u, v); ok {
				added++
			}
		}
	}
	return b.Build()
}

// ConnectedGNM returns a connected sparse random graph with (up to) m edges:
// a random spanning tree (each vertex i ≥ 1 attaches to a random earlier
// vertex, under a random relabeling) plus m-(n-1) extra uniformly sampled
// edges as in GNM. Connected inputs are required by the leader-based CONGEST
// algorithms, and at O(m) cost this is the only connectivity-conditioned
// generator usable at n ≈ 10⁶.
func ConnectedGNM(n, m int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	if n > 1 {
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			b.MustAddEdge(perm[i], perm[rng.Intn(i)])
		}
		extra := m - (n - 1)
		attempts := 20*extra + 100
		for added := 0; added < extra && attempts > 0; attempts-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if ok, _ := b.AddEdgeIfAbsent(u, v); ok {
				added++
			}
		}
	}
	return b.Build()
}

// UnitDisk returns a random unit-disk graph: n points uniform in the unit
// square, connected iff within Euclidean distance radius. This is the
// classical model for the radio networks that motivate computing on G²
// (frequency assignment: two transmitters interfere iff they share a
// listener, i.e. are adjacent in G²).
func UnitDisk(n int, radius float64, rng *rand.Rand) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// ConnectedUnitDisk retries UnitDisk until the result is connected, growing
// the radius by 10% every maxTries failures so termination is guaranteed.
func ConnectedUnitDisk(n int, radius float64, rng *rand.Rand) *Graph {
	const maxTries = 20
	for {
		for try := 0; try < maxTries; try++ {
			g := UnitDisk(n, radius, rng)
			if g.Connected() {
				return g
			}
		}
		radius *= 1.1
		if radius > math.Sqrt2 {
			return Complete(n) // radius covers the square: degenerate but safe
		}
	}
}

// RandomBipartite returns a random bipartite graph with sides of size left
// and right and edge probability p; vertices 0…left-1 form the left side.
func RandomBipartite(left, right int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(left + right)
	for u := 0; u < left; u++ {
		for v := 0; v < right; v++ {
			if rng.Float64() < p {
				b.MustAddEdge(u, left+v)
			}
		}
	}
	return b.Build()
}

// WithRandomWeights returns a copy of g with independent uniform vertex
// weights in [1, maxW]. The paper's MWVC algorithm assumes O(log n)-bit
// weights; callers pick maxW = poly(n) accordingly.
func WithRandomWeights(g *Graph, maxW int64, rng *rand.Rand) *Graph {
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.MustAddEdge(e[0], e[1])
	}
	for v := 0; v < g.N(); v++ {
		b.SetWeight(v, 1+rng.Int63n(maxW))
	}
	if g.names != nil {
		for v := 0; v < g.N(); v++ {
			if g.names[v] != "" {
				b.SetName(v, g.names[v])
			}
		}
	}
	return b.Build()
}
