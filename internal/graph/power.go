package graph

import (
	"fmt"
	"slices"

	"powergraph/internal/bitset"
)

// powerDenseCutoff selects the Gʳ construction strategy. At or below the
// cutoff the classical bitset reach-set expansion wins (word-parallel ORs,
// O(n²/64) per expansion, unbeatable on dense balls); above it the
// bounded-BFS sweep over the CSR arrays is used, whose work is
// Σ_v |ball_r(v)| + |edges(ball_r(v))| — linear-ish on the sparse graphs
// that are the only feasible inputs at that scale — and whose memory stays
// O(n + m(Gʳ)) instead of O(n²).
const powerDenseCutoff = 1 << 12

// Square returns G² = (V, F) where {u,v} ∈ F iff 0 < dist_G(u,v) ≤ 2.
//
// Vertex weights and names carry over unchanged. This is the object the
// paper's problems (G²-MVC, G²-MDS) are defined on; the distributed
// algorithms never materialize it (they communicate over G only), but the
// checkers, exact solvers, and centralized algorithms do.
func (g *Graph) Square() *Graph {
	return g.Power(2)
}

// Power returns Gʳ, connecting u and v iff 0 < dist_G(u,v) ≤ r.
// Power(1) returns a structural copy of g. r must be ≥ 1.
func (g *Graph) Power(r int) *Graph {
	if r < 1 {
		panic(fmt.Sprintf("graph: Power(%d) with r < 1", r))
	}
	var p *Graph
	if g.n <= powerDenseCutoff {
		p = g.powerDense(r)
	} else {
		p = g.powerBFS(r)
	}
	if g.weights != nil {
		p.weights = make([]int64, g.n)
		copy(p.weights, g.weights)
	}
	if g.names != nil {
		p.names = make([]string, g.n)
		copy(p.names, g.names)
	}
	return p
}

// powerDense is the reach-set expansion: reach_{k+1}[v] = reach_k[v] ∪
// ⋃_{u ∈ N(v)} reach_k[u]. Starting from reach_1 = N[v], after r-1
// expansions reach[v] = ball of radius r around v.
func (g *Graph) powerDense(r int) *Graph {
	reach := make([]*bitset.Set, g.n)
	for v := 0; v < g.n; v++ {
		reach[v] = g.ClosedNeighborhood(v)
	}
	for k := 1; k < r; k++ {
		next := make([]*bitset.Set, g.n)
		for v := 0; v < g.n; v++ {
			s := reach[v].Clone()
			for _, u := range g.Adj(v) {
				s.Or(reach[u])
			}
			next[v] = s
		}
		reach = next
	}
	indptr := make([]int32, g.n+1)
	total := 0
	for v := 0; v < g.n; v++ {
		total += reach[v].Count() - 1 // ball minus v itself
	}
	indices := make([]int32, 0, total)
	for v := 0; v < g.n; v++ {
		reach[v].ForEach(func(u int) bool {
			if u != v {
				indices = append(indices, int32(u))
			}
			return true
		})
		indptr[v+1] = int32(len(indices))
	}
	return fromCSR(g.n, indptr, indices)
}

// powerBFS computes each vertex's radius-r ball with a bounded breadth-first
// search over the CSR arrays, writing the result CSR directly: no per-vertex
// sets, no intermediate adjacency maps, no Builder edge map. The visited
// array is epoch-stamped so it is cleared once, not once per vertex, keeping
// the whole construction alloc-flat (a handful of amortized slice growths
// regardless of n — see BenchmarkPowerSparse and TestPowerSparseAllocsFlat).
func (g *Graph) powerBFS(r int) *Graph {
	indptr := make([]int32, g.n+1)
	indices := make([]int32, 0, len(g.indices))
	visited := make([]int32, g.n) // epoch mark: visited[u] == v+1 ⇔ u in v's ball
	var cur, next []int32
	for v := 0; v < g.n; v++ {
		epoch := int32(v + 1)
		visited[v] = epoch
		cur = append(cur[:0], int32(v))
		rowStart := len(indices)
		for depth := 0; depth < r && len(cur) > 0; depth++ {
			next = next[:0]
			for _, u := range cur {
				lo, hi := g.indptr[u], g.indptr[u+1]
				for _, w := range g.indices[lo:hi] {
					if visited[w] != epoch {
						visited[w] = epoch
						next = append(next, w)
						indices = append(indices, w)
					}
				}
			}
			cur, next = next, cur
		}
		// slices.Sort, not sort.Slice: the reflection-based sorter
		// allocates per call, which would turn the sweep's allocation
		// count O(n).
		slices.Sort(indices[rowStart:])
		indptr[v+1] = int32(len(indices))
	}
	return fromCSR(g.n, indptr, indices)
}

// InducedSubgraph returns the subgraph of g induced by the vertex set keep,
// along with the mapping orig[i] = original id of new vertex i.
// Weights and names of kept vertices carry over.
func (g *Graph) InducedSubgraph(keep *bitset.Set) (sub *Graph, orig []int) {
	orig = keep.Elements()
	index := make(map[int]int, len(orig))
	for i, v := range orig {
		index[v] = i
	}
	b := NewBuilder(len(orig))
	for i, v := range orig {
		if g.weights != nil {
			b.SetWeight(i, g.weights[v])
		}
		if g.names != nil && g.names[v] != "" {
			b.SetName(i, g.names[v])
		}
		for _, u := range g.Adj(v) {
			if j, ok := index[u]; ok && i < j {
				b.MustAddEdge(i, j)
			}
		}
	}
	return b.Build(), orig
}

// SquareInduced returns G²[S]: the subgraph of the square induced by S,
// where distance is measured in g (the paper's notation, Section 2). The
// returned mapping orig translates new ids back to ids in g.
func (g *Graph) SquareInduced(s *bitset.Set) (sub *Graph, orig []int) {
	return g.Square().InducedSubgraph(s)
}

// TwoHopNeighborhood returns N²(v): all vertices at distance 1 or 2 from v
// in g, excluding v itself. Built by walking the CSR rows, so it needs no
// adjacency bitsets and works at any scale (one O(n)-bit set is allocated
// for the result).
func (g *Graph) TwoHopNeighborhood(v int) *bitset.Set {
	s := bitset.New(g.n)
	for _, u := range g.Adj(v) {
		s.Add(u)
		for _, w := range g.Adj(u) {
			s.Add(w)
		}
	}
	s.Remove(v)
	return s
}
