package graph

import (
	"fmt"

	"powergraph/internal/bitset"
)

// Square returns G² = (V, F) where {u,v} ∈ F iff 0 < dist_G(u,v) ≤ 2.
//
// Vertex weights and names carry over unchanged. This is the object the
// paper's problems (G²-MVC, G²-MDS) are defined on; the distributed
// algorithms never materialize it (they communicate over G only), but the
// checkers, exact solvers, and centralized algorithms do.
func (g *Graph) Square() *Graph {
	return g.Power(2)
}

// Power returns Gʳ, connecting u and v iff 0 < dist_G(u,v) ≤ r.
// Power(1) returns a structural copy of g. r must be ≥ 1.
func (g *Graph) Power(r int) *Graph {
	if r < 1 {
		panic(fmt.Sprintf("graph: Power(%d) with r < 1", r))
	}
	// Iteratively expand reach sets: reach_{k+1}[v] = reach_k[v] ∪
	// ⋃_{u ∈ N(v)} reach_k[u]. Starting from reach_1 = N[v], after r-1
	// expansions reach[v] = ball of radius r around v.
	reach := make([]*bitset.Set, g.n)
	for v := 0; v < g.n; v++ {
		reach[v] = g.ClosedNeighborhood(v)
	}
	for k := 1; k < r; k++ {
		next := make([]*bitset.Set, g.n)
		for v := 0; v < g.n; v++ {
			s := reach[v].Clone()
			for _, u := range g.adj[v] {
				s.Or(reach[u])
			}
			next[v] = s
		}
		reach = next
	}
	b := NewBuilder(g.n)
	for v := 0; v < g.n; v++ {
		reach[v].ForEach(func(u int) bool {
			if u > v {
				b.MustAddEdge(v, u)
			}
			return true
		})
	}
	g.copyAttrsTo(b)
	return b.Build()
}

func (g *Graph) copyAttrsTo(b *Builder) {
	if g.weights != nil {
		for v := 0; v < g.n; v++ {
			b.SetWeight(v, g.weights[v])
		}
	}
	if g.names != nil {
		for v := 0; v < g.n; v++ {
			if g.names[v] != "" {
				b.SetName(v, g.names[v])
			}
		}
	}
}

// InducedSubgraph returns the subgraph of g induced by the vertex set keep,
// along with the mapping orig[i] = original id of new vertex i.
// Weights and names of kept vertices carry over.
func (g *Graph) InducedSubgraph(keep *bitset.Set) (sub *Graph, orig []int) {
	orig = keep.Elements()
	index := make(map[int]int, len(orig))
	for i, v := range orig {
		index[v] = i
	}
	b := NewBuilder(len(orig))
	for i, v := range orig {
		if g.weights != nil {
			b.SetWeight(i, g.weights[v])
		}
		if g.names != nil && g.names[v] != "" {
			b.SetName(i, g.names[v])
		}
		for _, u := range g.adj[v] {
			if j, ok := index[u]; ok && i < j {
				b.MustAddEdge(i, j)
			}
		}
	}
	return b.Build(), orig
}

// SquareInduced returns G²[S]: the subgraph of the square induced by S,
// where distance is measured in g (the paper's notation, Section 2). The
// returned mapping orig translates new ids back to ids in g.
func (g *Graph) SquareInduced(s *bitset.Set) (sub *Graph, orig []int) {
	return g.Square().InducedSubgraph(s)
}

// TwoHopNeighborhood returns N²(v): all vertices at distance 1 or 2 from v
// in g, excluding v itself.
func (g *Graph) TwoHopNeighborhood(v int) *bitset.Set {
	s := g.rows[v].Clone()
	for _, u := range g.adj[v] {
		s.Or(g.rows[u])
	}
	s.Remove(v)
	return s
}
