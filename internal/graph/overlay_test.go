package graph

import (
	"math/rand"
	"slices"
	"strings"
	"testing"
)

// sameCSR asserts byte-identity of the two graphs' CSR arrays, weights, and
// names — the contract the incremental paths promise against a fresh build.
func sameCSR(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: n = %d, want %d", label, got.N(), want.N())
	}
	if !slices.Equal(got.indptr, want.indptr) {
		t.Fatalf("%s: indptr differs", label)
	}
	if !slices.Equal(got.indices, want.indices) {
		t.Fatalf("%s: indices differs", label)
	}
	if !slices.Equal(got.weights, want.weights) {
		t.Fatalf("%s: weights differ", label)
	}
	if !slices.Equal(got.names, want.names) {
		t.Fatalf("%s: names differ", label)
	}
}

func TestOverlayInsertDelete(t *testing.T) {
	o := NewOverlay(Path(5)) // edges 0-1, 1-2, 2-3, 3-4
	if o.M() != 4 || o.Pending() != 0 {
		t.Fatalf("m=%d pending=%d", o.M(), o.Pending())
	}
	if err := o.Insert(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(1, 2); err != nil {
		t.Fatal(err)
	}
	if o.M() != 4 || o.Pending() != 2 {
		t.Fatalf("after edits: m=%d pending=%d", o.M(), o.Pending())
	}
	if !o.HasEdge(0, 2) || !o.HasEdge(2, 0) {
		t.Fatal("inserted edge missing")
	}
	if o.HasEdge(1, 2) || o.HasEdge(2, 1) {
		t.Fatal("deleted edge still present")
	}
	// Inverse edits cancel the staged ones exactly.
	if err := o.Delete(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(2, 1); err != nil {
		t.Fatal(err)
	}
	if o.Pending() != 0 {
		t.Fatalf("pending=%d after cancel", o.Pending())
	}
	sameCSR(t, o.Materialize(), Path(5), "cancelled edits")
}

func TestOverlayRejectsBadEdits(t *testing.T) {
	o := NewOverlay(Path(4))
	bad := []struct {
		name string
		err  error
	}{
		{"insert out of range", o.Insert(0, 4)},
		{"insert negative", o.Insert(-1, 2)},
		{"insert self-loop", o.Insert(2, 2)},
		{"insert duplicate base edge", o.Insert(0, 1)},
		{"delete out of range", o.Delete(0, 9)},
		{"delete self-loop", o.Delete(1, 1)},
		{"delete missing edge", o.Delete(0, 3)},
	}
	for _, c := range bad {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := o.Insert(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(0, 2); err == nil {
		t.Error("duplicate staged insert: expected error")
	}
	if err := o.Delete(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(0, 2); err == nil {
		t.Error("double delete: expected error")
	}
	if o.Pending() != 0 {
		t.Fatalf("pending=%d, want 0", o.Pending())
	}
}

func TestOverlayApplyRollsBackOnFailure(t *testing.T) {
	o := NewOverlay(Path(5))
	if err := o.Insert(0, 4); err != nil {
		t.Fatal(err)
	}
	before := o.Materialize()
	batch := []EdgeEdit{
		{U: 0, V: 2},           // fine
		{U: 1, V: 2, Del: true}, // fine
		{U: 3, V: 3},           // self-loop: fails
	}
	err := o.Apply(batch)
	if err == nil || !strings.Contains(err.Error(), "edit 2") {
		t.Fatalf("err = %v, want edit-2 failure", err)
	}
	if o.Pending() != 1 {
		t.Fatalf("pending=%d after rollback, want 1", o.Pending())
	}
	sameCSR(t, o.Materialize(), before, "rollback")
}

func TestOverlayMaterializeMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := WithRandomWeights(ConnectedGNP(40, 0.1, rng), 30, rng)
	o := NewOverlay(base)
	// Mirror edge set to drive random valid edits.
	edges := make(map[[2]int]bool)
	for _, e := range base.Edges() {
		edges[e] = true
	}
	for step := 0; step < 300; step++ {
		u, v := rng.Intn(40), rng.Intn(40)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if edges[key] {
			if err := o.Delete(u, v); err != nil {
				t.Fatal(err)
			}
			delete(edges, key)
		} else {
			if err := o.Insert(u, v); err != nil {
				t.Fatal(err)
			}
			edges[key] = true
		}
		if step%37 == 0 {
			b := NewBuilder(40)
			for e := range edges {
				b.MustAddEdge(e[0], e[1])
			}
			for w := 0; w < 40; w++ {
				b.SetWeight(w, base.Weight(w))
			}
			want := b.Build()
			got := o.Materialize()
			sameCSR(t, got, want, "materialize")
			if got.M() != o.M() {
				t.Fatalf("o.M()=%d, materialized M=%d", o.M(), got.M())
			}
		}
	}
}

func TestOverlayCompact(t *testing.T) {
	o := NewOverlay(Path(20)) // only consecutive vertices are adjacent
	if err := o.Apply([]EdgeEdit{{U: 0, V: 19}, {U: 1, V: 18}}); err != nil {
		t.Fatal(err)
	}
	view := o.Materialize()
	o.Compact(view)
	if o.Pending() != 0 || o.Base() != view {
		t.Fatal("compact did not adopt the view")
	}
	// Edits after compaction still behave.
	if err := o.Delete(0, 19); err != nil {
		t.Fatal(err)
	}
	if o.HasEdge(0, 19) {
		t.Fatal("edge survives delete after compact")
	}
}

// TestIncrementalPowerMatchesFull is the graph-layer half of the churn
// property: after every random batch, the spliced dirty-region power graph
// must be byte-identical to a fresh view.Power(r), for r ∈ 1..4, on both
// unweighted and weighted bases.
func TestIncrementalPowerMatchesFull(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(1234))
		// A grid keeps radius-3 balls small relative to n, so small batches
		// exercise the splice path even at r = 4; the large burst still
		// trips the full-recompute fallback.
		const n = 400
		base := Grid(20, 20)
		if weighted {
			base = WithRandomWeights(base, 20, rng)
		}
		for r := 1; r <= 4; r++ {
			o := NewOverlay(base)
			view := o.Materialize()
			power := view.Power(r)
			sawFull, sawInc := false, false
			for batchNo := 0; batchNo < 12; batchNo++ {
				size := 1 + rng.Intn(3)
				if batchNo == 5 {
					size = 150 // large burst: should trip the full-recompute fallback at high r
				}
				var batch []EdgeEdit
				for len(batch) < size {
					u, v := rng.Intn(n), rng.Intn(n)
					if u == v {
						continue
					}
					if o.HasEdge(u, v) {
						if err := o.Delete(u, v); err != nil {
							t.Fatal(err)
						}
						batch = append(batch, EdgeEdit{U: u, V: v, Del: true})
					} else {
						if err := o.Insert(u, v); err != nil {
							t.Fatal(err)
						}
						batch = append(batch, EdgeEdit{U: u, V: v})
					}
				}
				view = o.Materialize()
				var st IncPowerStats
				power, st = IncrementalPower(view, power, r, batch)
				if st.Full {
					sawFull = true
				} else {
					sawInc = true
				}
				sameCSR(t, power, view.Power(r), "incremental power")
			}
			if r >= 2 && !sawFull {
				t.Errorf("r=%d weighted=%v: fallback never exercised", r, weighted)
			}
			if !sawInc {
				t.Errorf("r=%d weighted=%v: splice path never exercised", r, weighted)
			}
		}
	}
}

func TestIncrementalPowerEmptyBatch(t *testing.T) {
	g := Path(10)
	p := g.Power(3)
	got, st := IncrementalPower(g, p, 3, nil)
	if got != p || st.Dirty != 0 || st.Full {
		t.Fatalf("empty batch: got %p (want %p), stats %+v", got, p, st)
	}
}

func TestReadEdgeListWeightOutOfRange(t *testing.T) {
	for _, in := range []string{"n 2\nw 5 7", "n 2\nw -1 7"} {
		_, err := ReadEdgeList(strings.NewReader(in))
		if err == nil {
			t.Fatalf("input %q: expected error, got nil", in)
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("input %q: error %q lacks line number", in, err)
		}
	}
}
