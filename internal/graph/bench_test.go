package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// sparseBench builds the canonical sparse benchmark instance: a connected
// GNM graph with average degree ~4, the regime where the bounded-BFS power
// expansion must stay linear-ish.
func sparseBench(n int) *Graph {
	return ConnectedGNM(n, 2*n, rand.New(rand.NewSource(int64(n))))
}

// BenchmarkPowerSparse pins the cost of Gʳ on sparse graphs past the dense
// cutoff, where Power routes to the bounded-BFS sweep. Watch allocs/op: it
// must stay a small constant (slice-growth events only), not O(n).
func BenchmarkPowerSparse(b *testing.B) {
	for _, n := range []int{20_000, 80_000} {
		for _, r := range []int{2, 3} {
			g := sparseBench(n)
			b.Run(fmt.Sprintf("n=%d/r=%d", n, r), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					g.Power(r)
				}
			})
		}
	}
}

// TestPowerSparseAllocsFlat is the allocation guard for the bounded-BFS
// power expansion: the whole construction performs a bounded number of
// allocations — the fixed output arrays plus amortized slice growths —
// independent of n. A per-vertex allocation anywhere in the sweep (the old
// densification built a map row per vertex) blows the budget by three
// orders of magnitude at this size.
func TestPowerSparseAllocsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting at n=20k")
	}
	// n must clear both cutoffs: powerDenseCutoff so Power routes to the
	// BFS sweep, and rowsCutoff so the result graph skips eager bitset
	// rows (those are deliberately O(n) allocations for small graphs).
	g := sparseBench(20_000)
	for _, r := range []int{2, 3} {
		allocs := testing.AllocsPerRun(3, func() { g.Power(r) })
		if allocs > 100 {
			t.Errorf("Power(%d) at n=%d performed %.0f allocations, want a flat handful",
				r, g.N(), allocs)
		}
	}
}
