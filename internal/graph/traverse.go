package graph

import "powergraph/internal/bitset"

// BFS runs a breadth-first search from src and returns the distance to every
// vertex (-1 for unreachable) and the BFS parent of every vertex (-1 for src
// and unreachable vertices). Ties between parents are broken toward the
// smallest id, which keeps distributed-tree constructions deterministic.
func (g *Graph) BFS(src int) (dist, parent []int) {
	dist = make([]int, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Adj(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	return dist, parent
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as vertex sets, ordered by
// their smallest member.
func (g *Graph) Components() []*bitset.Set {
	seen := bitset.New(g.n)
	var comps []*bitset.Set
	for v := 0; v < g.n; v++ {
		if seen.Contains(v) {
			continue
		}
		dist, _ := g.BFS(v)
		comp := bitset.New(g.n)
		for u, d := range dist {
			if d >= 0 {
				comp.Add(u)
				seen.Add(u)
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Eccentricity returns the maximum distance from v to any reachable vertex.
func (g *Graph) Eccentricity(v int) int {
	dist, _ := g.BFS(v)
	e := 0
	for _, d := range dist {
		if d > e {
			e = d
		}
	}
	return e
}

// Diameter returns the diameter of a connected graph (max pairwise
// distance); it returns -1 if the graph is disconnected.
func (g *Graph) Diameter() int {
	if !g.Connected() {
		return -1
	}
	d := 0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > d {
			d = e
		}
	}
	return d
}

// Dist returns the length of a shortest u–v path, or -1 if disconnected.
func (g *Graph) Dist(u, v int) int {
	dist, _ := g.BFS(u)
	return dist[v]
}

// commonAfter merges the two sorted neighbor rows a and b, invoking fn for
// every common element strictly greater than floor until fn returns false.
// Row-free replacement for the bitset intersections the triangle helpers
// used to rely on — works at any graph scale.
func commonAfter(a, b []int, floor int, fn func(w int) bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > floor && !fn(a[i]) {
				return
			}
			i++
			j++
		}
	}
}

// FindTriangle returns the lexicographically smallest triangle (u < v < w,
// mutually adjacent) if one exists, and ok=false otherwise. The centralized
// 5/3-approximation's part-1 loop uses this repeatedly.
func (g *Graph) FindTriangle() (t [3]int, ok bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Adj(u) {
			if v <= u {
				continue
			}
			commonAfter(g.Adj(u), g.Adj(v), v, func(w int) bool {
				t, ok = [3]int{u, v, w}, true
				return false
			})
			if ok {
				return t, true
			}
		}
	}
	return [3]int{}, false
}

// CountTriangles returns the number of triangles in the graph.
func (g *Graph) CountTriangles() int {
	c := 0
	for u := 0; u < g.n; u++ {
		for _, v := range g.Adj(u) {
			if v <= u {
				continue
			}
			commonAfter(g.Adj(u), g.Adj(v), v, func(int) bool {
				c++
				return true
			})
		}
	}
	return c
}

// GreedyMaximalMatching returns an inclusion-maximal matching computed by
// scanning edges in lexicographic order. Used both as the Gavril 2-approx
// substrate and as a lower bound inside the exact VC solver.
func (g *Graph) GreedyMaximalMatching() [][2]int {
	matched := bitset.New(g.n)
	var match [][2]int
	for u := 0; u < g.n; u++ {
		if matched.Contains(u) {
			continue
		}
		for _, v := range g.Adj(u) {
			if v > u && !matched.Contains(v) {
				matched.Add(u)
				matched.Add(v)
				match = append(match, [2]int{u, v})
				break
			}
		}
	}
	return match
}

// IsClique reports whether the vertex set s induces a clique in g.
func (g *Graph) IsClique(s *bitset.Set) bool {
	ok := true
	s.ForEach(func(u int) bool {
		s.ForEach(func(v int) bool {
			if v > u && !g.HasEdge(u, v) {
				ok = false
			}
			return ok
		})
		return ok
	})
	return ok
}
