package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"powergraph/internal/graph"
)

// samePower asserts byte-identity of two power graphs: CSR arrays, weights,
// degree structure.
func samePower(t *testing.T, label string, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", label, got.N(), got.M(), want.N(), want.M())
	}
	if !slices.Equal(got.IndPtr(), want.IndPtr()) || !slices.Equal(got.Indices(), want.Indices()) {
		t.Fatalf("%s: CSR arrays diverge", label)
	}
	for v := 0; v < got.N(); v++ {
		if got.Weight(v) != want.Weight(v) {
			t.Fatalf("%s: weight of %d: %d vs %d", label, v, got.Weight(v), want.Weight(v))
		}
	}
}

// TestChurnPropertyIncrementalMatchesFull is the serving layer's churn
// property test: a resident instance with all four powers cached absorbs
// random edit batches, and after every batch
//
//  1. each incrementally-maintained Gʳ is byte-identical to a from-scratch
//     view.Power(r), and
//  2. a solve on the churned instance returns identical deterministic
//     results on both engines and at shard counts {1, GOMAXPROCS}.
func TestChurnPropertyIncrementalMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	base := graph.WithRandomWeights(graph.Grid(8, 8), 25, rng) // n=64, sparse: real splices
	inst := NewInstance("churn", base)
	for r := 1; r <= MaxServePower; r++ {
		if _, err := inst.power(r); err != nil {
			t.Fatal(err)
		}
	}

	n := base.N()
	sawSplice := false
	for step := 0; step < 12; step++ {
		batch := 1 + rng.Intn(3)
		if step == 6 {
			batch = 40 // burst: forces the full-recompute fallback at high r
		}
		var edits []graph.EdgeEdit
		for len(edits) < batch {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			dup := false
			for _, e := range edits {
				if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			edits = append(edits, graph.EdgeEdit{U: u, V: v, Del: inst.ov.HasEdge(u, v)})
		}
		res, err := inst.Churn(edits)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, up := range res.Updates {
			if !up.Full {
				sawSplice = true
			}
		}
		for r := 1; r <= MaxServePower; r++ {
			samePower(t, "step "+string(rune('0'+step))+" r="+string(rune('0'+r)),
				inst.powers[r], inst.view.Power(r))
		}
	}
	if !sawSplice {
		t.Fatal("no churn batch exercised the incremental splice path")
	}

	// Engine / shard invariance on the churned instance: identical
	// deterministic responses for every execution mode.
	shards := []int{1, runtime.GOMAXPROCS(0)}
	for _, alg := range []string{"mvc-congest", "mwvc-congest", "mds-congest"} {
		var want []byte
		for _, engine := range []string{"goroutine", "batch"} {
			for _, sh := range shards {
				if engine == "goroutine" && sh != 1 {
					continue // the goroutine engine ignores the shard knob
				}
				resp, err := inst.Solve(context.Background(), SolveRequest{
					Algorithm: alg, Power: 2, Epsilon: 0.5, Seed: 9,
					Engine: engine, Shards: sh, Oracle: true,
				})
				if err != nil {
					t.Fatalf("%s %s shards=%d: %v", alg, engine, sh, err)
				}
				norm := *resp
				norm.Cached = false
				norm.DurationMs = 0
				payload, _ := json.Marshal(norm)
				if want == nil {
					want = payload
				} else if string(payload) != string(want) {
					t.Fatalf("%s %s shards=%d diverges:\n got: %s\nwant: %s",
						alg, engine, sh, payload, want)
				}
			}
		}
	}
}

// TestChurnCompaction drives enough edits through an instance to trip the
// overlay compaction threshold and checks the view survives intact.
func TestChurnCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("compaction needs >4096 pending edits")
	}
	rng := rand.New(rand.NewSource(5))
	base := graph.GNP(200, 0.02, rng)
	inst := NewInstance("compact", base)
	if _, err := inst.power(2); err != nil {
		t.Fatal(err)
	}
	compacted := false
	for step := 0; step < 12 && !compacted; step++ {
		var edits []graph.EdgeEdit
		seen := map[[2]int]bool{}
		for len(edits) < 512 {
			u, v := rng.Intn(200), rng.Intn(200)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edits = append(edits, graph.EdgeEdit{U: u, V: v, Del: inst.ov.HasEdge(u, v)})
		}
		res, err := inst.Churn(edits)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		compacted = compacted || res.Compacted
	}
	if !compacted {
		t.Fatal("compaction threshold never tripped")
	}
	if inst.ov.Pending() != 0 {
		t.Fatalf("compaction left %d pending edits", inst.ov.Pending())
	}
	samePower(t, "post-compaction", inst.powers[2], inst.view.Power(2))
}
