package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"powergraph/internal/harness"
)

// LoadSpec declares one serving benchmark: a resident graph, a query mix,
// and a churn cadence, driven for a fixed duration by concurrent clients
// over real HTTP. Loaded from JSON (specs/serve-load.json) with the same
// strictness as harness specs: unknown fields and trailing garbage are
// rejected.
type LoadSpec struct {
	Name string `json:"name"`
	// DurationMs bounds the drive phase's wall-clock time.
	DurationMs int `json:"durationMs"`
	// Clients is the number of concurrent load-generating clients.
	Clients int `json:"clients"`
	// Seed drives every client's request randomness.
	Seed int64 `json:"seed"`

	// Graph is the resident instance under load.
	Graph struct {
		Generator harness.GeneratorSpec `json:"generator"`
		N         int                   `json:"n"`
		Seed      int64                 `json:"seed"`
	} `json:"graph"`

	// Solves is the query mix, drawn uniformly per request.
	Solves []SolveRequest `json:"solves"`
	// ChurnEvery inserts one churn request after every ChurnEvery solves
	// per client (0 disables churn). ChurnBatch is the edits per batch.
	ChurnEvery int `json:"churnEvery,omitempty"`
	ChurnBatch int `json:"churnBatch,omitempty"`
}

// LoadLoadSpec reads and validates a load spec file.
func LoadLoadSpec(path string) (*LoadSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var s LoadSpec
	if err := decodeStrict(f, &s); err != nil {
		return nil, fmt.Errorf("serve: parsing load spec %s: %w", path, err)
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("serve: load spec %s: %w", path, err)
	}
	return &s, nil
}

func (s *LoadSpec) validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("missing name")
	case s.DurationMs <= 0:
		return fmt.Errorf("durationMs must be > 0")
	case s.Clients <= 0:
		return fmt.Errorf("clients must be > 0")
	case s.Graph.N <= 0:
		return fmt.Errorf("graph.n must be > 0")
	case len(s.Solves) == 0:
		return fmt.Errorf("need at least one solve in the mix")
	case s.ChurnEvery > 0 && s.ChurnBatch <= 0:
		return fmt.Errorf("churnBatch must be > 0 when churnEvery is set")
	}
	return nil
}

// BenchReport is the serialized outcome of a load run (BENCH_serve.json).
// QPS and latency quantiles are wall-clock measurements; Checks carries the
// invariants the run verified (request failures are a hard error instead).
type BenchReport struct {
	Name       string  `json:"name"`
	GraphN     int     `json:"graphN"`
	GraphM     int     `json:"graphM"`
	Clients    int     `json:"clients"`
	DurationMs float64 `json:"durationMs"`

	Requests int64   `json:"requests"`
	Solves   int64   `json:"solves"`
	Churns   int64   `json:"churns"`
	QPS      float64 `json:"qps"`

	// Endpoints holds the server-side per-endpoint latency summary
	// (p50/p95 in milliseconds) for the load phase.
	Endpoints map[string]EndpointStats `json:"endpoints"`

	// Instance is the resident graph's final stats: how much churn it
	// absorbed and how often the incremental splice path served it.
	Instance InstanceStats `json:"instance"`
}

// RunLoad builds the spec's resident graph in a fresh in-process Server,
// drives the mixed load over real HTTP for the configured duration, and
// returns the measured report. Any non-2xx response aborts the run.
func RunLoad(spec *LoadSpec) (*BenchReport, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	g, err := spec.Graph.Generator.Build(spec.Graph.N, rand.New(rand.NewSource(spec.Graph.Seed)))
	if err != nil {
		return nil, err
	}
	srv := New(Options{})
	inst, err := srv.AddGraph("bench", g)
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var requests, solves, churns atomic.Int64
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	post := func(client *http.Client, path string, body any) error {
		payload, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			diag, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, diag)
		}
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}

	start := time.Now()
	deadline := start.Add(time.Duration(spec.DurationMs) * time.Millisecond)
	var wg sync.WaitGroup
	for c := 0; c < spec.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			rng := rand.New(rand.NewSource(spec.Seed + int64(c)*0x9e3779b9))
			n := spec.Graph.N
			sinceChurn := 0
			for time.Now().Before(deadline) && !failed() {
				if spec.ChurnEvery > 0 && sinceChurn >= spec.ChurnEvery {
					sinceChurn = 0
					// Each batch inserts random non-edges of the base graph
					// and deletes them again within the same batch. Batches
					// are net-zero, so the view always equals the base
					// between batches; since the server applies batches
					// atomically, concurrent clients can never invalidate
					// each other's edits — while the server still pays the
					// full incremental-recompute path for every batch.
					var edits []edgeEditJSON
					for len(edits) < 2*spec.ChurnBatch {
						u, v := rng.Intn(n), rng.Intn(n)
						if u == v || g.HasEdge(u, v) {
							continue
						}
						edits = append(edits,
							edgeEditJSON{U: u, V: v},
							edgeEditJSON{U: u, V: v, Del: true})
					}
					if err := post(client, "/v1/graphs/bench/edges", edgeBatch{Edits: edits}); err != nil {
						fail(err)
						return
					}
					requests.Add(1)
					churns.Add(1)
					continue
				}
				req := spec.Solves[rng.Intn(len(spec.Solves))]
				if err := post(client, "/v1/graphs/bench/solve", req); err != nil {
					fail(err)
					return
				}
				requests.Add(1)
				solves.Add(1)
				sinceChurn++
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failed() {
		return nil, firstErr
	}

	info := inst.Info()
	rep := &BenchReport{
		Name: spec.Name, GraphN: info.N, GraphM: info.M,
		Clients: spec.Clients, DurationMs: float64(elapsed.Nanoseconds()) / 1e6,
		Requests: requests.Load(), Solves: solves.Load(), Churns: churns.Load(),
		Endpoints: srv.metrics.snapshot(),
		Instance:  info.Stats,
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep, nil
}
