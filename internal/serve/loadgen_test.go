package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powergraph/internal/harness"
)

// TestRunLoadSmoke runs a short mixed load against an in-process server and
// checks the report's accounting invariants.
func TestRunLoadSmoke(t *testing.T) {
	spec := &LoadSpec{
		Name: "smoke", DurationMs: 300, Clients: 3, Seed: 1,
		Solves: []SolveRequest{
			{Algorithm: "mvc-congest", Power: 2, Epsilon: 0.5, Engine: "batch"},
			{Algorithm: "gavril", Power: 2},
		},
		ChurnEvery: 4, ChurnBatch: 2,
	}
	spec.Graph.Generator = harness.GeneratorSpec{Name: "connected-gnp"}
	spec.Graph.N = 32
	spec.Graph.Seed = 9

	rep, err := RunLoad(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Requests != rep.Solves+rep.Churns {
		t.Fatalf("request accounting broken: %+v", rep)
	}
	if rep.QPS <= 0 {
		t.Fatalf("no throughput measured: %+v", rep)
	}
	if spec.ChurnEvery > 0 && rep.Churns == 0 {
		t.Fatalf("churn never ran: %+v", rep)
	}
	if _, ok := rep.Endpoints["solve"]; !ok {
		t.Fatalf("no solve endpoint stats: %+v", rep.Endpoints)
	}
	if rep.Instance.Batches != rep.Churns {
		t.Fatalf("instance absorbed %d batches for %d churn requests", rep.Instance.Batches, rep.Churns)
	}
}

// TestLoadLoadSpecStrict mirrors the harness spec-loader contract: unknown
// fields, trailing garbage, and invalid values are rejected with a
// diagnostic naming the file.
func TestLoadLoadSpecStrict(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "load.json")
	good := `{"name":"x","durationMs":100,"clients":1,"graph":{"generator":{"name":"path"},"n":8},"solves":[{"algorithm":"gavril"}]}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLoadSpec(path); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	for label, bad := range map[string]string{
		"unknown field":    strings.Replace(good, `"clients"`, `"cleints"`, 1),
		"trailing garbage": good + "\n{}",
		"no solves":        strings.Replace(good, `"solves":[{"algorithm":"gavril"}]`, `"solves":[]`, 1),
		"zero duration":    strings.Replace(good, `"durationMs":100`, `"durationMs":0`, 1),
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadLoadSpec(path); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	// The real checked-in spec must load.
	if _, err := LoadLoadSpec(filepath.Join("..", "..", "specs", "serve-load.json")); err != nil {
		t.Errorf("specs/serve-load.json: %v", err)
	}
}
