package serve

import "testing"

// TestQuantileNearestRank pins the advertised nearest-rank definition: the
// q-quantile of n ascending samples is the ⌈q·n⌉-th smallest, so p95 of
// 1..100 is exactly 95 (not the floor-interpolated 94).
func TestQuantileNearestRank(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 50}, {0.95, 95}, {1.0, 100}, {0.0, 1},
	} {
		if got := quantile(samples, tc.q); got != tc.want {
			t.Errorf("quantile(1..100, %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantile([]float64{7}, 0.95); got != 7 {
		t.Errorf("single sample: %v", got)
	}
	if got := quantile(nil, 0.95); got != 0 {
		t.Errorf("empty: %v", got)
	}
}
