package serve

import (
	"math/rand"
	"testing"

	"powergraph/internal/graph"
	"powergraph/internal/harness"
)

// harnessGeneratorSpec keeps the HTTP test bodies readable.
type harnessGeneratorSpec = harness.GeneratorSpec

func seededRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// mustGNP builds a small seeded connected instance for server tests.
func mustGNP(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	return graph.ConnectedGNP(n, 0.15, rand.New(rand.NewSource(seed)))
}
