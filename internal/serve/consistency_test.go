package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"powergraph/internal/graph"
)

// TestSolveChurnVersionConsistency hammers Solve and Churn concurrently and
// checks that every response's Version labels exactly the graph content the
// solve ran on. The churner toggles one fixed edge per batch, so the edge
// count of version v is known in closed form: a response pairing version N
// with the view of version N±1 (the TOCTOU this test pins down) shows up as
// an impossible (Version, M) combination.
func TestSolveChurnVersionConsistency(t *testing.T) {
	base := mustGNP(t, 32, 3)
	inst := NewInstance("race", base)
	if _, err := inst.power(2); err != nil {
		t.Fatal(err)
	}

	cu, cv := -1, -1
	for u := 0; u < base.N() && cu < 0; u++ {
		for v := u + 1; v < base.N(); v++ {
			if !base.HasEdge(u, v) {
				cu, cv = u, v
				break
			}
		}
	}
	m0 := base.M()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			if _, err := inst.Churn([]graph.EdgeEdit{{U: cu, V: cv, Del: i%2 == 1}}); err != nil {
				t.Errorf("churn %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Distinct seeds make every request a fresh execution rather
				// than a cache hit.
				resp, err := inst.Solve(context.Background(), SolveRequest{
					Algorithm: "gavril", Power: 2, Seed: int64(w*100000 + i),
				})
				if err != nil {
					t.Errorf("solve: %v", err)
					return
				}
				// Version v is the result of v one-edit batches alternating
				// insert/delete, so its view has m0 + v%2 edges.
				if want := m0 + int(resp.Version%2); resp.M != want {
					t.Errorf("version %d paired with M=%d, want %d", resp.Version, resp.M, want)
					return
				}
			}
		}(w)
	}
	<-done
	wg.Wait()
}

// TestSolveWaiterRetriggersAfterLeaderCancel pins the single-flight
// semantics: when the leading execution dies with its own client's
// cancellation, a duplicate waiter whose context is still live must elect
// itself leader and produce a real result instead of inheriting the 499.
func TestSolveWaiterRetriggersAfterLeaderCancel(t *testing.T) {
	inst := NewInstance("g", mustGNP(t, 24, 7))
	req := SolveRequest{Algorithm: "gavril", Power: 2}
	version, _, _, err := inst.snapshot(req.Power)
	if err != nil {
		t.Fatal(err)
	}

	// Plant an in-flight leader's entry by hand so the test controls when and
	// how it fails.
	key := inst.cacheKey(req, version)
	e := &resEntry{done: make(chan struct{})}
	inst.resMu.Lock()
	inst.results[key] = e
	inst.resMu.Unlock()

	type result struct {
		resp *SolveResponse
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := inst.Solve(context.Background(), req)
		got <- result{resp, err}
	}()

	// Let the waiter park on the leader's done channel, then fail the leader
	// exactly the way Solve's error path does: clear the flight, drop the
	// entry, wake the waiters with no result recorded.
	time.Sleep(20 * time.Millisecond)
	e.mu.Lock()
	ch := e.done
	e.done = nil
	e.mu.Unlock()
	inst.resMu.Lock()
	delete(inst.results, key)
	inst.resMu.Unlock()
	close(ch)

	r := <-got
	if r.err != nil {
		t.Fatalf("waiter inherited the leader's failure: %v", r.err)
	}
	if r.resp.Cached {
		t.Fatal("waiter's re-execution reported itself as cached")
	}

	// A waiter whose own context dies while parked still gets the 499.
	e2 := &resEntry{done: make(chan struct{})}
	inst.resMu.Lock()
	inst.results[key] = e2
	inst.resMu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := inst.Solve(ctx, req); err == nil {
		t.Fatal("canceled waiter returned without error")
	}
	inst.resMu.Lock()
	delete(inst.results, key)
	inst.resMu.Unlock()
	close(e2.done)
}

// TestResultCacheBounded: at the entry cap the per-version result cache
// resets instead of growing without limit.
func TestResultCacheBounded(t *testing.T) {
	inst := NewInstance("g", mustGNP(t, 12, 1))
	inst.resMu.Lock()
	for i := 0; i < maxCachedResults; i++ {
		inst.results[fmt.Sprintf("pad%d", i)] = &resEntry{resp: &SolveResponse{}}
	}
	inst.resMu.Unlock()
	if _, err := inst.Solve(context.Background(), SolveRequest{Algorithm: "gavril"}); err != nil {
		t.Fatal(err)
	}
	inst.resMu.Lock()
	n := len(inst.results)
	inst.resMu.Unlock()
	if n != 1 {
		t.Fatalf("cache not reset at cap: %d entries", n)
	}
}

// TestServerRequestBounds: client-controlled allocations are capped — graph
// size on create (generator n and edge-list header), edits per churn batch,
// and request body bytes.
func TestServerRequestBounds(t *testing.T) {
	srv := New(Options{})
	if _, err := srv.AddGraph("g", mustGNP(t, 16, 11)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := doJSON(t, ts, "POST", "/v1/graphs", CreateGraphRequest{
		ID: "big", N: MaxGraphN + 1, Generator: &harnessGeneratorSpec{Name: "path"},
	})
	if status != http.StatusBadRequest || !strings.Contains(body["error"].(string), "limit") {
		t.Errorf("oversized generator n accepted: HTTP %d %v", status, body)
	}

	// An edge-list header declaring more vertices than the cap is rejected
	// before the CSR builder allocates for it.
	status, body = doJSON(t, ts, "POST", "/v1/graphs", CreateGraphRequest{
		ID: "big", EdgeList: fmt.Sprintf("n %d\n", MaxGraphN+1),
	})
	if status != http.StatusBadRequest || !strings.Contains(body["error"].(string), "limit") {
		t.Errorf("oversized edge-list header accepted: HTTP %d %v", status, body)
	}

	edits := make([]map[string]any, MaxChurnEdits+1)
	for i := range edits {
		edits[i] = map[string]any{"u": 0, "v": 1}
	}
	status, body = doJSON(t, ts, "POST", "/v1/graphs/g/edges", map[string]any{"edits": edits})
	if status != http.StatusBadRequest || !strings.Contains(body["error"].(string), "limit") {
		t.Errorf("oversized churn batch accepted: HTTP %d %v", status, body)
	}

	var nd strings.Builder
	for i := 0; i <= MaxChurnEdits; i++ {
		nd.WriteString("{\"u\":0,\"v\":1}\n")
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/graphs/g/edges", "application/x-ndjson",
		strings.NewReader(nd.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized NDJSON churn accepted: HTTP %d", resp.StatusCode)
	}

	// A solve body past its byte bound comes back as 413, not an OOM.
	resp, err = ts.Client().Post(ts.URL+"/v1/graphs/g/solve", "application/json",
		strings.NewReader(`{"algorithm":"`+strings.Repeat("a", MaxSolveBodyBytes+1)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized solve body: HTTP %d, want 413", resp.StatusCode)
	}
}
