// Package serve is the always-on serving layer: it holds graphs resident in
// memory and answers MVC / MWVC / MDS queries for concurrent clients over
// HTTP/JSON, accepting streaming edge insertions and deletions between
// queries.
//
// The layer's central object is the Instance — a resident graph made of the
// delta-overlay of internal/graph plus the power graphs Gʳ the queries have
// touched. Edge churn goes through graph.IncrementalPower, which recomputes
// only the Gʳ rows within distance r-1 of the churned endpoints and splices
// the rest, so a small batch against a large graph costs O(affected region)
// instead of O(n·m); the result is byte-identical to a full Power(r)
// recompute (the churn property tests assert this at every step). Exact
// oracle queries ride the component-level cache of kernel.Incremental, which
// keys solves by component content and therefore survives churn: only
// components that actually changed pay the exponential solver again.
//
// Queries execute through harness.SolveInstance — the same code path the
// sweep harness runs — under a bounded worker pool, with per-version result
// caching (a repeated query on an unchanged graph is served from cache,
// byte-identically) and per-request obs spans threaded into responses. See
// Server for the HTTP surface and cmd/powerserve for the binary.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"powergraph/internal/graph"
	"powergraph/internal/harness"
	"powergraph/internal/kernel"
	"powergraph/internal/obs"
	"powergraph/internal/verify"
)

// MaxServePower bounds the powers an instance will materialize: the
// distributed algorithms serve r ∈ [1, 4] (see internal/harness), and
// unbounded r would let one request allocate a dense n² power graph.
const MaxServePower = 4

// compactPending is the overlay compaction threshold: once more pending
// edits than this accumulate, the instance adopts the materialized view as
// its new base so per-row merge costs stay bounded.
const compactPending = 1 << 12

// maxCachedResults bounds the per-version solve-result cache. Churn already
// swaps the map wholesale, but between churns distinct requests (varying
// seeds, epsilons, …) would otherwise grow it without limit; at the cap the
// map is reset, trading a few recomputes for flat memory.
const maxCachedResults = 1 << 10

// InstanceStats counts what churn and recomputation did over an instance's
// lifetime. All fields are cumulative.
type InstanceStats struct {
	// Batches and Edits count accepted churn batches and the edits in them.
	Batches int64 `json:"batches"`
	Edits   int64 `json:"edits"`
	// DirtyRows is the total number of Gʳ rows recomputed by the
	// incremental splice path; SplicedUpdates and FullUpdates split the
	// per-(batch, r) updates by path taken.
	DirtyRows      int64 `json:"dirtyRows"`
	SplicedUpdates int64 `json:"splicedUpdates"`
	FullUpdates    int64 `json:"fullUpdates"`
	// Compactions counts overlay compactions (base adoption).
	Compactions int64 `json:"compactions"`
	// Solves and CacheHits count query executions and result-cache hits.
	Solves    int64 `json:"solves"`
	CacheHits int64 `json:"cacheHits"`
}

// Instance is one resident graph: the mutable overlay, the current
// materialized view, and every power graph queries have touched, all kept
// consistent under churn. Safe for concurrent use.
type Instance struct {
	id string

	mu      sync.RWMutex
	ov      *graph.Overlay
	view    *graph.Graph
	powers  map[int]*graph.Graph
	version uint64
	stats   InstanceStats

	// results is the per-version solve cache; Churn swaps in a fresh map,
	// so entries never outlive the graph content they were computed on.
	resMu   sync.Mutex
	results map[string]*resEntry

	// oracle is the component-content-keyed exact solver cache. Content
	// keys stay valid across churn, so it persists for the instance's
	// lifetime and only re-solves components that changed.
	oracle *kernel.Incremental
}

// resEntry is one single-flight slot in the per-version result cache.
// Execution is channel-based rather than sync.Once so that when the leader's
// request context is canceled mid-run, waiters whose own contexts are still
// live elect a new leader and re-execute instead of inheriting the 499.
type resEntry struct {
	mu   sync.Mutex
	done chan struct{} // non-nil while an execution is in flight
	resp *SolveResponse
}

// NewInstance wraps g as a resident instance under the given id.
func NewInstance(id string, g *graph.Graph) *Instance {
	return &Instance{
		id:      id,
		ov:      graph.NewOverlay(g),
		view:    g,
		powers:  make(map[int]*graph.Graph),
		results: make(map[string]*resEntry),
		oracle:  kernel.NewIncremental(),
	}
}

// InstanceInfo is the serialized shape of an instance's current state.
type InstanceInfo struct {
	ID      string        `json:"id"`
	N       int           `json:"n"`
	M       int           `json:"m"`
	Version uint64        `json:"version"`
	Powers  []int         `json:"powersCached,omitempty"`
	Pending int           `json:"pendingEdits"`
	Stats   InstanceStats `json:"stats"`
}

// Info snapshots the instance.
func (inst *Instance) Info() InstanceInfo {
	inst.mu.RLock()
	defer inst.mu.RUnlock()
	powers := make([]int, 0, len(inst.powers))
	for r := range inst.powers {
		powers = append(powers, r)
	}
	sort.Ints(powers)
	return InstanceInfo{
		ID: inst.id, N: inst.view.N(), M: inst.view.M(),
		Version: inst.version, Powers: powers,
		Pending: inst.ov.Pending(), Stats: inst.stats,
	}
}

// snapshot reads one mutually consistent (version, view, Gʳ) triple,
// computing and caching the power graph on first use. Churn swaps all three
// under the exclusive lock, so reading them inside a single critical section
// is what guarantees a solve never pairs a view from version N+1 with a Gʳ
// from version N; callers must carry the whole triple rather than re-reading
// any part of it later.
func (inst *Instance) snapshot(r int) (version uint64, view, power *graph.Graph, err error) {
	if r < 1 || r > MaxServePower {
		return 0, nil, nil, fmt.Errorf("serve: power must be in [1, %d], got %d", MaxServePower, r)
	}
	inst.mu.RLock()
	if p := inst.powers[r]; p != nil {
		version, view = inst.version, inst.view
		inst.mu.RUnlock()
		return version, view, p, nil
	}
	inst.mu.RUnlock()
	inst.mu.Lock()
	defer inst.mu.Unlock()
	p := inst.powers[r]
	if p == nil {
		// Computed against the state the exclusive lock pins, so the triple
		// returned below is consistent even if churn ran between the RUnlock
		// above and this Lock.
		p = inst.view.Power(r)
		inst.powers[r] = p
	}
	return inst.version, inst.view, p, nil
}

// power returns Gʳ of the current view, computing and caching it on first
// use. Subsequent churn maintains every cached power incrementally.
func (inst *Instance) power(r int) (*graph.Graph, error) {
	_, _, p, err := inst.snapshot(r)
	return p, err
}

// PowerUpdate reports how one cached Gʳ was brought up to date by a churn
// batch.
type PowerUpdate struct {
	R     int  `json:"r"`
	Dirty int  `json:"dirty"`
	Full  bool `json:"full"`
}

// ChurnResult reports what one accepted churn batch did.
type ChurnResult struct {
	Graph     string        `json:"graph"`
	Version   uint64        `json:"version"`
	Applied   int           `json:"applied"`
	Pending   int           `json:"pendingEdits"`
	Updates   []PowerUpdate `json:"powerUpdates,omitempty"`
	Compacted bool          `json:"compacted"`
}

// Churn applies one batch of edge edits atomically: either every edit is
// applied and every cached power graph is brought up to date (incrementally
// where the dirty region is small), or the overlay is left untouched and the
// offending edit is reported. The solve cache is invalidated either way the
// batch succeeds; the component-keyed oracle cache survives.
func (inst *Instance) Churn(edits []graph.EdgeEdit) (*ChurnResult, error) {
	if len(edits) == 0 {
		return nil, fmt.Errorf("serve: empty churn batch")
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if err := inst.ov.Apply(edits); err != nil {
		return nil, err
	}
	view := inst.ov.Materialize()
	res := &ChurnResult{Graph: inst.id, Applied: len(edits)}
	rs := make([]int, 0, len(inst.powers))
	for r := range inst.powers {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	for _, r := range rs {
		p, st := graph.IncrementalPower(view, inst.powers[r], r, edits)
		inst.powers[r] = p
		res.Updates = append(res.Updates, PowerUpdate{R: r, Dirty: st.Dirty, Full: st.Full})
		inst.stats.DirtyRows += int64(st.Dirty)
		if st.Full {
			inst.stats.FullUpdates++
		} else {
			inst.stats.SplicedUpdates++
		}
	}
	inst.view = view
	if inst.ov.Pending() > compactPending {
		inst.ov.Compact(view)
		inst.stats.Compactions++
		res.Compacted = true
	}
	inst.version++
	inst.stats.Batches++
	inst.stats.Edits += int64(len(edits))
	res.Version = inst.version
	res.Pending = inst.ov.Pending()

	inst.resMu.Lock()
	inst.results = make(map[string]*resEntry)
	inst.resMu.Unlock()
	return res, nil
}

// SolveRequest selects one query against a resident graph. The zero values
// of Power, Engine, Shards pick the defaults the sweep harness uses.
type SolveRequest struct {
	Algorithm string  `json:"algorithm"`
	Power     int     `json:"power,omitempty"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Engine    string  `json:"engine,omitempty"`
	Shards    int     `json:"shards,omitempty"`
	MaxRounds int     `json:"maxRounds,omitempty"`
	Gather    string  `json:"gather,omitempty"`
	// Oracle requests the exact optimum and approximation ratio, computed
	// through the instance's component-cached exact solver.
	Oracle bool `json:"oracle,omitempty"`
}

// SolveResponse is one query's result. Every field except DurationMs is a
// deterministic function of (graph content, request), which is what the
// golden smoke tests pin down.
type SolveResponse struct {
	Graph   string `json:"graph"`
	Version uint64 `json:"version"`
	// Cached reports that the response was served from the per-version
	// result cache rather than a fresh solve.
	Cached    bool   `json:"cached"`
	Algorithm string `json:"algorithm"`
	Model     string `json:"model,omitempty"`
	Problem   string `json:"problem,omitempty"`
	Power     int    `json:"power"`
	N         int    `json:"n"`
	M         int    `json:"m"`

	Cost         int64   `json:"cost"`
	SolutionSize int     `json:"solutionSize"`
	Verified     bool    `json:"verified"`
	Optimum      int64   `json:"optimum,omitempty"`
	Ratio        float64 `json:"ratio,omitempty"`

	Rounds    int    `json:"rounds,omitempty"`
	Messages  int64  `json:"messages,omitempty"`
	TotalBits int64  `json:"totalBits,omitempty"`
	Bandwidth int    `json:"bandwidth,omitempty"`
	Spans     string `json:"spans,omitempty"`

	// DurationMs is the solve's wall-clock time (0 on cache hits);
	// excluded from golden comparisons.
	DurationMs float64 `json:"durationMs"`

	Error    string `json:"error,omitempty"`
	Canceled bool   `json:"canceled,omitempty"`
}

// cacheKey canonicalizes a request for the per-version result cache. The
// version is part of the key defensively (the map is already swapped on
// churn).
func (inst *Instance) cacheKey(req SolveRequest, version uint64) string {
	b, _ := json.Marshal(req)
	return fmt.Sprintf("v%d:%s", version, b)
}

// Solve answers one query. Identical requests against the same graph
// version share one execution and return identical responses (the repeat
// marked Cached); ctx cancels an in-flight distributed run at its next
// round barrier. The (version, view, Gʳ) triple the solve runs on is read in
// one snapshot, so the response's Version always labels the exact content it
// was computed on even while churn runs concurrently.
func (inst *Instance) Solve(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	if req.Power == 0 {
		req.Power = 2
	}
	version, view, power, err := inst.snapshot(req.Power)
	if err != nil {
		return nil, err
	}

	key := inst.cacheKey(req, version)
	inst.resMu.Lock()
	e := inst.results[key]
	if e == nil {
		if len(inst.results) >= maxCachedResults {
			inst.results = make(map[string]*resEntry)
		}
		e = &resEntry{}
		inst.results[key] = e
	}
	inst.resMu.Unlock()

	for {
		e.mu.Lock()
		if e.resp != nil {
			resp := *e.resp
			e.mu.Unlock()
			resp.Cached = true
			resp.DurationMs = 0
			inst.mu.Lock()
			inst.stats.CacheHits++
			inst.mu.Unlock()
			return &resp, nil
		}
		if e.done == nil {
			// No execution in flight: lead one under this request's context.
			ch := make(chan struct{})
			e.done = ch
			e.mu.Unlock()
			resp, err := inst.solveUncached(ctx, req, version, view, power)
			e.mu.Lock()
			e.done = nil
			if err == nil {
				e.resp = resp
			}
			e.mu.Unlock()
			close(ch)
			if err != nil {
				// A canceled or failed execution must not poison the cache
				// for the next identical request.
				inst.resMu.Lock()
				if inst.results[key] == e {
					delete(inst.results, key)
				}
				inst.resMu.Unlock()
				return nil, err
			}
			out := *resp
			return &out, nil
		}
		ch := e.done
		e.mu.Unlock()
		select {
		case <-ch:
			// Leader finished: either a result is cached now, or its run was
			// aborted (typically by its own client disconnecting), in which
			// case the loop elects a new leader under this caller's still-live
			// context instead of propagating someone else's cancellation.
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %v", ErrSolveCanceled, ctx.Err())
		}
	}
}

func (inst *Instance) solveUncached(ctx context.Context, req SolveRequest, version uint64, view, power *graph.Graph) (*SolveResponse, error) {
	job := harness.Job{
		Generator: harness.GeneratorSpec{Name: "resident"},
		N:         view.N(),
		Power:     req.Power,
		Algorithm: req.Algorithm,
		Epsilon:   req.Epsilon,
		Engine:    req.Engine,
		Seed:      req.Seed,
		Shards:    req.Shards,
		MaxRounds: req.MaxRounds,
		Gather:    req.Gather,
	}
	col := &obs.Collector{}
	jr := harness.SolveInstance(ctx, view, power, job, col, nil)
	if jr.Canceled {
		return nil, fmt.Errorf("%w: %s", ErrSolveCanceled, jr.Error)
	}
	resp := &SolveResponse{
		Graph: inst.id, Version: version,
		Algorithm: req.Algorithm, Model: jr.Model, Problem: jr.Problem,
		Power: req.Power, N: view.N(), M: view.M(),
		Cost: jr.Cost, SolutionSize: jr.SolutionSize, Verified: jr.Verified,
		Rounds: jr.Rounds, Messages: jr.Messages, TotalBits: jr.TotalBits,
		Bandwidth: jr.Bandwidth, Spans: jr.Spans,
		DurationMs: float64(jr.Elapsed.Nanoseconds()) / 1e6,
		Error:      jr.Error,
	}
	if jr.Error == "" && req.Oracle {
		var optSol = inst.oracle.VertexCover
		if jr.Problem == harness.ProblemMDS {
			optSol = inst.oracle.DominatingSet
		}
		resp.Optimum = verify.Cost(power, optSol(power))
		resp.Ratio = verify.RatioOf(resp.Cost, resp.Optimum).Value
	}
	inst.mu.Lock()
	inst.stats.Solves++
	inst.mu.Unlock()
	return resp, nil
}

// ErrSolveCanceled marks a query aborted by its request context.
var ErrSolveCanceled = fmt.Errorf("serve: solve canceled")
