package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"powergraph/internal/graph"
	"powergraph/internal/harness"
	"powergraph/internal/obs"
)

// StatusClientClosedRequest is the status reported when a solve is aborted
// because the client's request context was canceled (nginx's 499
// convention; net/http has no standard constant for it).
const StatusClientClosedRequest = 499

// Resource bounds on client-controlled allocations: without them a single
// request (a generator with a huge n, an edge-list header declaring 10⁹
// vertices, an endless NDJSON stream) could exhaust server memory.
const (
	// MaxGraphN caps the vertex count of a created graph, whether it comes
	// from a registry generator or an edge-list header.
	MaxGraphN = 2_000_000
	// MaxChurnEdits caps the edits accepted in one churn batch (both the
	// JSON and the NDJSON form).
	MaxChurnEdits = 1 << 16
	// MaxCreateBodyBytes, MaxEdgesBodyBytes, and MaxSolveBodyBytes bound
	// the request bodies of the corresponding endpoints; beyond them the
	// request fails with 413 before anything is buffered.
	MaxCreateBodyBytes = 64 << 20
	MaxEdgesBodyBytes  = 16 << 20
	MaxSolveBodyBytes  = 1 << 20
)

// Options tunes a Server. The zero value is ready to use.
type Options struct {
	// Workers bounds concurrent solve executions across all graphs
	// (≤ 0 → GOMAXPROCS). Requests beyond the bound queue on their own
	// context, so a client that gives up stops waiting for a slot.
	Workers int
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Server hosts resident graph instances behind an HTTP/JSON API:
//
//	GET    /healthz                  liveness + runtime snapshot
//	GET    /v1/graphs                list resident instances
//	POST   /v1/graphs                create (generator or edge-list body)
//	GET    /v1/graphs/{id}           one instance's info
//	DELETE /v1/graphs/{id}           drop an instance
//	POST   /v1/graphs/{id}/solve     run a query (SolveRequest body)
//	POST   /v1/graphs/{id}/edges     churn (JSON batch or NDJSON stream)
//	GET    /v1/stats                 per-endpoint latency quantiles
//
// Construct with New, mount Handler on any http.Server.
type Server struct {
	opts    Options
	mu      sync.RWMutex
	graphs  map[string]*Instance
	sem     chan struct{}
	metrics *metrics
	start   time.Time
}

// New returns an empty server.
func New(opts Options) *Server {
	return &Server{
		opts:    opts,
		graphs:  make(map[string]*Instance),
		sem:     make(chan struct{}, opts.workers()),
		metrics: newMetrics(),
		start:   time.Now(),
	}
}

// AddGraph registers a pre-built graph under id (the preload path of
// cmd/powerserve and the tests' shortcut past the HTTP create endpoint).
func (s *Server) AddGraph(id string, g *graph.Graph) (*Instance, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: empty graph id")
	}
	inst := NewInstance(id, g)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.graphs[id]; dup {
		return nil, fmt.Errorf("serve: graph %q already exists", id)
	}
	s.graphs[id] = inst
	return inst, nil
}

func (s *Server) instance(id string) *Instance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graphs[id]
}

// Handler builds the routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/graphs", s.instrument("graphs-list", s.handleListGraphs))
	mux.HandleFunc("POST /v1/graphs", s.instrument("graphs-create", s.handleCreateGraph))
	mux.HandleFunc("GET /v1/graphs/{id}", s.instrument("graphs-get", s.handleGetGraph))
	mux.HandleFunc("DELETE /v1/graphs/{id}", s.instrument("graphs-delete", s.handleDeleteGraph))
	mux.HandleFunc("POST /v1/graphs/{id}/solve", s.instrument("solve", s.handleSolve))
	mux.HandleFunc("POST /v1/graphs/{id}/edges", s.instrument("edges", s.handleEdges))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	return mux
}

// httpError carries a status code out of a handler.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errStatus(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// instrument adapts an error-returning handler: it serializes failures as
// {"error": ...} with the carried status and records the request latency
// under the endpoint label.
func (s *Server) instrument(label string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		err := h(w, r)
		s.metrics.observe(label, time.Since(start), err != nil)
		if err == nil {
			return
		}
		status := http.StatusInternalServerError
		var he *httpError
		if errors.As(err, &he) {
			status = he.status
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// decodeStrict decodes one JSON value from r into v, rejecting unknown
// fields and trailing garbage (the same contract harness.LoadSpec enforces
// on spec files).
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if tok, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing content after JSON body (next token %v)", tok)
	}
	return nil
}

// bodyStatus maps a request-body decode failure to its HTTP status: 413 when
// the MaxBytesReader bound tripped, 400 for everything else.
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	snap := obs.ReadRuntime()
	s.mu.RLock()
	n := len(s.graphs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "graphs": n, "goroutines": snap.Goroutines,
	})
	return nil
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) error {
	s.mu.RLock()
	ids := make([]string, 0, len(s.graphs))
	for id := range s.graphs {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	infos := make([]InstanceInfo, 0, len(ids))
	for _, id := range ids {
		if inst := s.instance(id); inst != nil {
			infos = append(infos, inst.Info())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
	return nil
}

// CreateGraphRequest describes a new resident graph: either a registry
// generator (Generator + N + Seed, optionally weighted through the spec's
// MaxWeight) or an inline edge list in the `n`/`e`/`w` text format of
// graph.ReadEdgeList. Exactly one of the two must be present.
type CreateGraphRequest struct {
	ID        string                 `json:"id"`
	Generator *harness.GeneratorSpec `json:"generator,omitempty"`
	N         int                    `json:"n,omitempty"`
	Seed      int64                  `json:"seed,omitempty"`
	EdgeList  string                 `json:"edgeList,omitempty"`
}

func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) error {
	var req CreateGraphRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, MaxCreateBodyBytes), &req); err != nil {
		return errStatus(bodyStatus(err), "serve: create: %v", err)
	}
	if req.ID == "" {
		return errStatus(http.StatusBadRequest, "serve: create: missing graph id")
	}
	var g *graph.Graph
	switch {
	case req.Generator != nil && req.EdgeList != "":
		return errStatus(http.StatusBadRequest, "serve: create: generator and edgeList are mutually exclusive")
	case req.Generator != nil:
		if req.N <= 0 {
			return errStatus(http.StatusBadRequest, "serve: create: generator needs n > 0")
		}
		if req.N > MaxGraphN {
			return errStatus(http.StatusBadRequest, "serve: create: n %d exceeds the limit %d", req.N, MaxGraphN)
		}
		built, err := req.Generator.Build(req.N, rand.New(rand.NewSource(req.Seed)))
		if err != nil {
			return errStatus(http.StatusBadRequest, "serve: create: %v", err)
		}
		g = built
	case req.EdgeList != "":
		parsed, err := graph.ReadEdgeListLimit(strings.NewReader(req.EdgeList), MaxGraphN)
		if err != nil {
			return errStatus(http.StatusBadRequest, "serve: create: %v", err)
		}
		g = parsed
	default:
		return errStatus(http.StatusBadRequest, "serve: create: need generator or edgeList")
	}
	inst, err := s.AddGraph(req.ID, g)
	if err != nil {
		return errStatus(http.StatusConflict, "%v", err)
	}
	writeJSON(w, http.StatusCreated, inst.Info())
	return nil
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) error {
	inst := s.instance(r.PathValue("id"))
	if inst == nil {
		return errStatus(http.StatusNotFound, "serve: no graph %q", r.PathValue("id"))
	}
	writeJSON(w, http.StatusOK, inst.Info())
	return nil
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.graphs[id]
	delete(s.graphs, id)
	s.mu.Unlock()
	if !ok {
		return errStatus(http.StatusNotFound, "serve: no graph %q", id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
	return nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) error {
	inst := s.instance(r.PathValue("id"))
	if inst == nil {
		return errStatus(http.StatusNotFound, "serve: no graph %q", r.PathValue("id"))
	}
	var req SolveRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, MaxSolveBodyBytes), &req); err != nil {
		return errStatus(bodyStatus(err), "serve: solve: %v", err)
	}
	if req.Algorithm == "" {
		return errStatus(http.StatusBadRequest, "serve: solve: missing algorithm")
	}

	// Bound concurrent executions; a client that disconnects while queued
	// stops waiting.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		return errStatus(StatusClientClosedRequest, "serve: solve: %v", r.Context().Err())
	}

	resp, err := inst.Solve(r.Context(), req)
	switch {
	case errors.Is(err, ErrSolveCanceled):
		return errStatus(StatusClientClosedRequest, "%v", err)
	case err != nil:
		return errStatus(http.StatusBadRequest, "%v", err)
	case resp.Error != "":
		// The harness isolated an algorithm-level failure (unknown
		// algorithm, unsupported power, panic): a client error, with the
		// diagnostic in the standard envelope.
		return errStatus(http.StatusBadRequest, "serve: solve: %s", resp.Error)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// edgeBatch is the JSON body of a churn request.
type edgeBatch struct {
	Edits []edgeEditJSON `json:"edits"`
}

type edgeEditJSON struct {
	U   int  `json:"u"`
	V   int  `json:"v"`
	Del bool `json:"del,omitempty"`
}

// handleEdges accepts churn as either a JSON batch {"edits":[...]} or, with
// Content-Type application/x-ndjson, a stream of one {"u","v","del"} object
// per line. Either way the whole request is applied as one atomic batch:
// cached powers update incrementally, or nothing changes and the offending
// edit's error is returned.
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) error {
	inst := s.instance(r.PathValue("id"))
	if inst == nil {
		return errStatus(http.StatusNotFound, "serve: no graph %q", r.PathValue("id"))
	}
	body := http.MaxBytesReader(w, r.Body, MaxEdgesBodyBytes)
	var edits []graph.EdgeEdit
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-ndjson") {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			if len(edits) >= MaxChurnEdits {
				return errStatus(http.StatusBadRequest, "serve: edges: line %d: batch exceeds the limit of %d edits", line, MaxChurnEdits)
			}
			var e edgeEditJSON
			if err := decodeStrict(strings.NewReader(text), &e); err != nil {
				return errStatus(http.StatusBadRequest, "serve: edges: line %d: %v", line, err)
			}
			edits = append(edits, graph.EdgeEdit{U: e.U, V: e.V, Del: e.Del})
		}
		if err := sc.Err(); err != nil {
			return errStatus(bodyStatus(err), "serve: edges: %v", err)
		}
	} else {
		var batch edgeBatch
		if err := decodeStrict(body, &batch); err != nil {
			return errStatus(bodyStatus(err), "serve: edges: %v", err)
		}
		if len(batch.Edits) > MaxChurnEdits {
			return errStatus(http.StatusBadRequest, "serve: edges: batch of %d edits exceeds the limit %d", len(batch.Edits), MaxChurnEdits)
		}
		for _, e := range batch.Edits {
			edits = append(edits, graph.EdgeEdit{U: e.U, V: e.V, Del: e.Del})
		}
	}
	res, err := inst.Churn(edits)
	if err != nil {
		return errStatus(http.StatusBadRequest, "serve: edges: %v", err)
	}
	writeJSON(w, http.StatusOK, res)
	return nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	snap := obs.ReadRuntime()
	s.mu.RLock()
	n := len(s.graphs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeMs":   float64(time.Since(s.start).Nanoseconds()) / 1e6,
		"graphs":     n,
		"goroutines": snap.Goroutines,
		"heapBytes":  snap.HeapBytes,
		"endpoints":  s.metrics.snapshot(),
	})
	return nil
}
