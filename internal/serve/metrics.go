package serve

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latencyWindow bounds the per-endpoint sample ring: quantiles are computed
// over the most recent latencyWindow observations, which keeps memory flat
// under sustained load.
const latencyWindow = 1 << 14

// EndpointStats is one endpoint's latency summary.
type EndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
}

// metrics records per-endpoint request latencies in a bounded ring and
// serves p50/p95 snapshots. Safe for concurrent use.
type metrics struct {
	mu sync.Mutex
	m  map[string]*epRing
}

type epRing struct {
	count, errors int64
	samples       []float64 // ms, ring of latencyWindow
	next          int
	full          bool
}

func newMetrics() *metrics { return &metrics{m: make(map[string]*epRing)} }

func (m *metrics) observe(endpoint string, d time.Duration, isErr bool) {
	ms := float64(d.Nanoseconds()) / 1e6
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.m[endpoint]
	if r == nil {
		r = &epRing{samples: make([]float64, 0, 256)}
		m.m[endpoint] = r
	}
	r.count++
	if isErr {
		r.errors++
	}
	if len(r.samples) < latencyWindow {
		r.samples = append(r.samples, ms)
	} else {
		r.samples[r.next] = ms
		r.full = true
	}
	r.next = (r.next + 1) % latencyWindow
}

// snapshot summarizes every endpoint seen so far.
func (m *metrics) snapshot() map[string]EndpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointStats, len(m.m))
	for ep, r := range m.m {
		s := EndpointStats{Count: r.count, Errors: r.errors}
		if n := len(r.samples); n > 0 {
			sorted := make([]float64, n)
			copy(sorted, r.samples)
			sort.Float64s(sorted)
			s.P50Ms = quantile(sorted, 0.50)
			s.P95Ms = quantile(sorted, 0.95)
		}
		out[ep] = s
	}
	return out
}

// quantile reads the q-quantile from an ascending slice using the
// nearest-rank definition: the ⌈q·n⌉-th smallest sample (so p95 of 100
// samples is the 95th, not the floor-interpolated 94th).
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}
