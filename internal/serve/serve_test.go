package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// doJSON posts body to path on ts and decodes the JSON response.
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(payload)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, path, err)
	}
	return resp.StatusCode, out
}

// TestServerSmokeGolden drives the whole HTTP surface once — create via
// generator, solve on two engines, churn, cached re-solve — and pins the
// deterministic part of each response against testdata/golden_smoke.json.
// Regenerate with GOLDEN_UPDATE=1 go test ./internal/serve/ -run Golden.
// It also checks that no goroutines leak once the server is closed.
func TestServerSmokeGolden(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := New(Options{Workers: 4})
	ts := httptest.NewServer(srv.Handler())

	var golden []map[string]any
	record := func(label string, status int, body map[string]any) {
		delete(body, "durationMs")
		if st, ok := body["stats"].(map[string]any); ok {
			// Instance stats counters depend on request interleaving only
			// in the cacheHits/solves split under concurrency; this test is
			// sequential, so keep them.
			_ = st
		}
		golden = append(golden, map[string]any{"label": label, "status": status, "body": body})
	}

	status, body := doJSON(t, ts, "POST", "/v1/graphs", CreateGraphRequest{
		ID: "smoke", N: 24, Seed: 5,
		Generator: &harnessGeneratorSpec{Name: "connected-gnp"},
	})
	record("create", status, body)
	if status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %v", status, body)
	}

	for _, engine := range []string{"goroutine", "batch"} {
		status, body = doJSON(t, ts, "POST", "/v1/graphs/smoke/solve", SolveRequest{
			Algorithm: "mvc-congest", Power: 2, Epsilon: 0.5, Engine: engine, Oracle: true,
		})
		record("solve-"+engine, status, body)
		if status != http.StatusOK {
			t.Fatalf("solve (%s): HTTP %d: %v", engine, status, body)
		}
		// The two engines replay the identical run, but the requests differ
		// in the engine field — distinct cache keys, so both solves must be
		// fresh executions.
		if cached, _ := body["cached"].(bool); cached {
			t.Fatalf("solve (%s) unexpectedly served from cache", engine)
		}
	}

	// Identical repeat: served from cache, byte-identical payload.
	status, body = doJSON(t, ts, "POST", "/v1/graphs/smoke/solve", SolveRequest{
		Algorithm: "mvc-congest", Power: 2, Epsilon: 0.5, Engine: "batch", Oracle: true,
	})
	record("solve-cached", status, body)
	if cached, _ := body["cached"].(bool); !cached {
		t.Fatalf("repeat solve not served from cache: %v", body)
	}

	// Churn: insert the graph's first non-edge, then delete it again in the
	// same batch; cached powers update incrementally. The pair is found by
	// rebuilding the seeded instance locally, so the batch is deterministic.
	local, err := (&harnessGeneratorSpec{Name: "connected-gnp"}).Build(24, seededRng(5))
	if err != nil {
		t.Fatal(err)
	}
	cu, cv := -1, -1
	for u := 0; u < local.N() && cu < 0; u++ {
		for v := u + 1; v < local.N(); v++ {
			if !local.HasEdge(u, v) {
				cu, cv = u, v
				break
			}
		}
	}
	status, body = doJSON(t, ts, "POST", "/v1/graphs/smoke/edges", map[string]any{
		"edits": []map[string]any{
			{"u": cu, "v": cv},
			{"u": cu, "v": cv, "del": true},
		},
	})
	record("churn", status, body)
	if status != http.StatusOK {
		t.Fatalf("churn: HTTP %d: %v", status, body)
	}

	// Post-churn solve: fresh execution (version bumped), same graph
	// content, so the same deterministic result as before.
	status, body = doJSON(t, ts, "POST", "/v1/graphs/smoke/solve", SolveRequest{
		Algorithm: "mvc-congest", Power: 2, Epsilon: 0.5, Engine: "batch", Oracle: true,
	})
	record("solve-postchurn", status, body)
	if cached, _ := body["cached"].(bool); cached {
		t.Fatal("churn did not invalidate the result cache")
	}

	status, body = doJSON(t, ts, "GET", "/v1/graphs/smoke", nil)
	record("info", status, body)

	goldenPath := filepath.Join("testdata", "golden_smoke.json")
	got, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with GOLDEN_UPDATE=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden mismatch (regenerate with GOLDEN_UPDATE=1 if intended)\n got: %s\nwant: %s", got, want)
	}

	// Leak check: closing the test server must return the goroutine count
	// to its baseline (worker slots are per-request, solves all finished).
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestServerValidation: malformed and invalid requests come back as clean
// 4xx envelopes, never 500s or panics.
func TestServerValidation(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		label  string
		method string
		path   string
		body   any
		status int
	}{
		{"missing id", "POST", "/v1/graphs", CreateGraphRequest{N: 8, Generator: &harnessGeneratorSpec{Name: "path"}}, http.StatusBadRequest},
		{"no source", "POST", "/v1/graphs", CreateGraphRequest{ID: "x"}, http.StatusBadRequest},
		{"bad generator", "POST", "/v1/graphs", CreateGraphRequest{ID: "x", N: 8, Generator: &harnessGeneratorSpec{Name: "nope"}}, http.StatusBadRequest},
		{"bad edge list", "POST", "/v1/graphs", CreateGraphRequest{ID: "x", EdgeList: "n 4\ne 0 9\n"}, http.StatusBadRequest},
		{"unknown graph solve", "POST", "/v1/graphs/ghost/solve", SolveRequest{Algorithm: "gavril"}, http.StatusNotFound},
		{"unknown graph churn", "POST", "/v1/graphs/ghost/edges", map[string]any{"edits": []any{}}, http.StatusNotFound},
		{"unknown graph delete", "DELETE", "/v1/graphs/ghost", nil, http.StatusNotFound},
	} {
		status, body := doJSON(t, ts, tc.method, tc.path, tc.body)
		if status != tc.status {
			t.Errorf("%s: HTTP %d (want %d): %v", tc.label, status, tc.status, body)
		}
		if msg, _ := body["error"].(string); status/100 == 4 && msg == "" {
			t.Errorf("%s: 4xx without error message: %v", tc.label, body)
		}
	}

	// Edge-list line numbers survive to the client.
	status, body := doJSON(t, ts, "POST", "/v1/graphs", CreateGraphRequest{
		ID: "x", EdgeList: "n 4\ne 0 1\ne 0 9\n",
	})
	if status != http.StatusBadRequest || !strings.Contains(body["error"].(string), "line 3") {
		t.Errorf("edge-list error lost its line number: %d %v", status, body)
	}

	// Solve of an unknown algorithm and an unsupported power: 400s.
	if _, err := srv.AddGraph("g", mustGNP(t, 16, 11)); err != nil {
		t.Fatal(err)
	}
	status, _ = doJSON(t, ts, "POST", "/v1/graphs/g/solve", SolveRequest{Algorithm: "no-such"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown algorithm: HTTP %d", status)
	}
	status, _ = doJSON(t, ts, "POST", "/v1/graphs/g/solve", SolveRequest{Algorithm: "gavril", Power: 9})
	if status != http.StatusBadRequest {
		t.Errorf("power out of range: HTTP %d", status)
	}

	// Trailing garbage after a JSON body is rejected like spec files.
	resp, err := ts.Client().Post(ts.URL+"/v1/graphs/g/solve", "application/json",
		strings.NewReader(`{"algorithm":"gavril"} {"algorithm":"gavril"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing garbage accepted: HTTP %d", resp.StatusCode)
	}
}

// TestServerNDJSONChurn streams edits line by line and checks the atomic
// batch semantics, including mid-stream validation failures leaving the
// graph untouched.
func TestServerNDJSONChurn(t *testing.T) {
	srv := New(Options{})
	inst, err := srv.AddGraph("g", mustGNP(t, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := inst.power(2); err != nil {
		t.Fatal(err)
	}
	before := inst.Info()

	// Find two non-edges to insert.
	var lines []string
	count := 0
	for u := 0; u < 20 && count < 2; u++ {
		for v := u + 1; v < 20 && count < 2; v++ {
			if !inst.ov.HasEdge(u, v) {
				lines = append(lines, fmt.Sprintf(`{"u":%d,"v":%d}`, u, v))
				count++
			}
		}
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/graphs/g/edges", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	var res ChurnResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Applied != 2 || res.Version != before.Version+1 {
		t.Fatalf("ndjson churn: HTTP %d %+v", resp.StatusCode, res)
	}
	if len(res.Updates) != 1 || res.Updates[0].R != 2 {
		t.Fatalf("cached power not updated: %+v", res.Updates)
	}

	// A batch with an invalid edit (self-loop) is rejected wholesale.
	resp, err = ts.Client().Post(ts.URL+"/v1/graphs/g/edges", "application/x-ndjson",
		strings.NewReader(`{"u":3,"v":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self-loop accepted: HTTP %d", resp.StatusCode)
	}
	if got := inst.Info(); got.Version != before.Version+1 {
		t.Fatalf("failed batch changed version: %d", got.Version)
	}
}

// TestSolveCanceledRequest: a canceled request context aborts an in-flight
// distributed solve and surfaces as 499, leaving the cache clean so the
// next identical request runs fresh.
func TestSolveCanceledRequest(t *testing.T) {
	srv := New(Options{})
	if _, err := srv.AddGraph("g", mustGNP(t, 24, 7)); err != nil {
		t.Fatal(err)
	}
	handler := srv.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	payload, _ := json.Marshal(SolveRequest{Algorithm: "mvc-congest", Epsilon: 0.5, Engine: "batch"})
	req := httptest.NewRequest("POST", "/v1/graphs/g/solve", bytes.NewReader(payload)).WithContext(ctx)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled solve: HTTP %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body)
	}

	// Same request with a live context succeeds (the canceled attempt must
	// not have poisoned the result cache).
	req = httptest.NewRequest("POST", "/v1/graphs/g/solve", bytes.NewReader(payload))
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-cancel solve: HTTP %d: %s", rec.Code, rec.Body)
	}
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("canceled execution left a cache entry behind")
	}
}
