package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTrip(t *testing.T) {
	const fb = 16
	for _, w := range []float64{0, 0.001, 0.5, 1, 3.25, 62.9} {
		q := Quantize(w, fb)
		back := Dequantize(q, fb)
		if math.Abs(back-w) > 1.0/float64(int64(1)<<fb)+1e-12 {
			t.Fatalf("round trip %f -> %d -> %f", w, q, back)
		}
	}
	// Saturation.
	if q := Quantize(1e9, fb); q != maxValue(fb) {
		t.Fatalf("no saturation: %d", q)
	}
	if q := Quantize(-1, fb); q != 0 {
		t.Fatalf("negative not clamped: %d", q)
	}
}

func TestQuantizeMonotone(t *testing.T) {
	// Floor quantization commutes with min: w1 ≤ w2 ⇒ Q(w1) ≤ Q(w2).
	prop := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return Quantize(a, 20) <= Quantize(b, 20)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromMinima(t *testing.T) {
	// Mean of minima 0.5 ⇒ estimated rate 1/0.5 = 2.
	if got := FromMinima([]float64{0.5, 0.5}); got != 2 {
		t.Fatalf("FromMinima = %f", got)
	}
	if got := FromMinima([]float64{0.25, 0.25, 0.25, 0.25}); got != 4 {
		t.Fatalf("FromMinima = %f", got)
	}
	if !math.IsInf(FromMinima([]float64{0, 0}), 1) {
		t.Fatal("zero sum should be +Inf")
	}
}

func TestCardinalityConcentration(t *testing.T) {
	// Lemma 30: with r = Θ(log n) samples the estimate is within (1±ε)·k
	// w.h.p. Use r = 96 and ε = 0.5; failures should be ≪ 1% per trial.
	rng := rand.New(rand.NewSource(42))
	const r = 96
	for _, k := range []int{1, 2, 5, 20, 100, 1000} {
		bad := 0
		const trials = 50
		for i := 0; i < trials; i++ {
			est := Cardinality(k, r, rng)
			if est < 0.5*float64(k) || est > 1.5*float64(k) {
				bad++
			}
		}
		if bad > 2 {
			t.Fatalf("k=%d: %d/%d estimates outside (0.5k, 1.5k)", k, bad, trials)
		}
	}
}

func TestQuantizedCardinalityMatchesExact(t *testing.T) {
	// Quantization with enough fractional bits must not change the
	// concentration behaviour.
	rng := rand.New(rand.NewSource(7))
	const r, fb = 96, 20
	for _, k := range []int{3, 50, 500} {
		bad := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			est := QuantizedCardinality(k, r, fb, rng)
			if est < 0.5*float64(k) || est > 1.5*float64(k) {
				bad++
			}
		}
		if bad > 2 {
			t.Fatalf("k=%d: %d/%d quantized estimates off", k, bad, trials)
		}
	}
}

func TestCardinalityZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Cardinality(0, 10, rng) != 0 {
		t.Fatal("k=0 should estimate 0")
	}
	if QuantizedCardinality(0, 10, 16, rng) != 0 {
		t.Fatal("k=0 quantized should estimate 0")
	}
}

func TestErrorShrinksWithSamples(t *testing.T) {
	// More repetitions → smaller relative error (on average). Compare mean
	// absolute relative error at r=8 vs r=256.
	rng := rand.New(rand.NewSource(9))
	meanErr := func(r int) float64 {
		const k, trials = 50, 60
		var sum float64
		for i := 0; i < trials; i++ {
			est := Cardinality(k, r, rng)
			sum += math.Abs(est-k) / k
		}
		return sum / trials
	}
	e8, e256 := meanErr(8), meanErr(256)
	if e256 >= e8 {
		t.Fatalf("error did not shrink: r=8→%.3f r=256→%.3f", e8, e256)
	}
}

func TestRoundUpPow2(t *testing.T) {
	cases := map[float64]int64{0: 1, 0.3: 1, 1: 1, 1.1: 2, 2: 2, 2.5: 4, 17: 32, 1024: 1024}
	for in, want := range cases {
		if got := RoundUpPow2(in); got != want {
			t.Errorf("RoundUpPow2(%f) = %d, want %d", in, got, want)
		}
	}
}

func TestSampleIsExponential(t *testing.T) {
	// Mean ≈ 1, P(X > 1) ≈ 1/e.
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	var sum float64
	over := 0
	for i := 0; i < n; i++ {
		w := Sample(rng)
		sum += w
		if w > 1 {
			over++
		}
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean = %f", mean)
	}
	if p := float64(over) / n; math.Abs(p-1/math.E) > 0.01 {
		t.Fatalf("P(X>1) = %f", p)
	}
}
