// Package estimate implements the randomized cardinality estimator of
// Lemma 29/30 (a simplified Mosk-Aoyama–Shah [MS06] sketch): to estimate
// k = |U|, every element of U draws r independent Exp(1) variables; the
// coordinate-wise minimum over U is Exp(k)-distributed, so the reciprocal
// of the average of the r minima concentrates around k (Cramér / Lemma 30).
//
// The distributed MDS algorithm (Theorem 28) aggregates these minima over
// 2-hop neighborhoods with two CONGEST rounds per repetition; messages
// carry fixed-point quantized values so the O(log n)-bit accounting stays
// honest ("O(log n) bits of precision suffice", Section 6.1).
package estimate

import (
	"math"
	"math/rand"
)

// IntBits is the integer part width of quantized exponential samples. An
// Exp(1) draw exceeds 63 with probability e⁻⁶³, so capping there biases
// minima by a negligible amount.
const IntBits = 6

// maxValue is the largest representable quantized sample for a given
// fractional width.
func maxValue(fracBits int) int64 {
	return (int64(1) << uint(IntBits+fracBits)) - 1
}

// Sample draws a standard exponential variable.
func Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64()
}

// Quantize converts w ≥ 0 to fixed point with the given fractional width,
// saturating at the representable maximum. Quantization uses floor, which
// commutes with minimum — the aggregate of quantized values equals the
// quantized aggregate.
func Quantize(w float64, fracBits int) int64 {
	if w < 0 {
		w = 0
	}
	q := int64(math.Floor(w * float64(int64(1)<<uint(fracBits))))
	if m := maxValue(fracBits); q > m {
		return m
	}
	return q
}

// Dequantize converts a fixed-point value back to float.
func Dequantize(q int64, fracBits int) float64 {
	return float64(q) / float64(int64(1)<<uint(fracBits))
}

// FromMinima converts the r collected minima W̃_1…W̃_r into the cardinality
// estimate d̃ = r / Σ W̃_j (the reciprocal of the empirical mean of Exp(k)
// variables). A zero sum — possible after quantization when k is huge —
// returns +Inf; callers clamp to their known universe size.
func FromMinima(minima []float64) float64 {
	var sum float64
	for _, w := range minima {
		sum += w
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(len(minima)) / sum
}

// Cardinality simulates the full estimator centrally: k elements, r
// repetitions. Used by tests and benchmarks to validate the concentration
// bound of Lemma 30 independently of the network machinery.
func Cardinality(k, r int, rng *rand.Rand) float64 {
	if k <= 0 {
		return 0
	}
	minima := make([]float64, r)
	for j := range minima {
		m := math.Inf(1)
		for i := 0; i < k; i++ {
			if w := Sample(rng); w < m {
				m = w
			}
		}
		minima[j] = m
	}
	return FromMinima(minima)
}

// QuantizedCardinality is Cardinality with the same fixed-point pipeline the
// distributed algorithm uses, validating that quantization does not break
// the concentration guarantee.
func QuantizedCardinality(k, r, fracBits int, rng *rand.Rand) float64 {
	if k <= 0 {
		return 0
	}
	minima := make([]float64, r)
	for j := range minima {
		m := maxValue(fracBits)
		for i := 0; i < k; i++ {
			if q := Quantize(Sample(rng), fracBits); q < m {
				m = q
			}
		}
		minima[j] = Dequantize(m, fracBits)
	}
	return FromMinima(minima)
}

// RoundUpPow2 rounds d up to the next power of two (the "rounded density"
// ρ_v of [CD18] step 1); values ≤ 1 round to 1.
func RoundUpPow2(d float64) int64 {
	if d <= 1 {
		return 1
	}
	p := int64(1)
	for float64(p) < d {
		p <<= 1
	}
	return p
}
