package centralized

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func TestGavril2Approx(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		n := 2 + rng.Intn(14)
		g := graph.GNP(n, 0.3, rng)
		s := Gavril2Approx(g)
		if ok, w := verify.IsVertexCover(g, s); !ok {
			t.Fatalf("not a cover, witness %v", w)
		}
		opt := verify.Cost(g, exact.VertexCover(g))
		if got := verify.Cost(g, s); got > 2*opt {
			t.Fatalf("Gavril cost %d > 2·OPT (%d)", got, opt)
		}
	}
}

func TestFiveThirdsFeasibleOnSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		n := 3 + rng.Intn(20)
		g := graph.ConnectedGNP(n, 0.15, rng)
		res := FiveThirdsSquareMVC(g)
		if ok, w := verify.IsSquareVertexCover(g, res.Cover); !ok {
			t.Fatalf("n=%d: not a cover of G², witness %v", n, w)
		}
		// Parts partition the cover.
		union := res.V1.Union(res.V2)
		union.Or(res.V3)
		if !union.Equal(res.Cover) {
			t.Fatal("V1 ∪ V2 ∪ V3 ≠ cover")
		}
		if res.V1.Intersects(res.V2) || res.V1.Intersects(res.V3) || res.V2.Intersects(res.V3) {
			t.Fatal("parts overlap")
		}
		// Part 1 takes whole triangles: |V1| divisible by 3.
		if res.V1.Count()%3 != 0 {
			t.Fatalf("|V1| = %d not divisible by 3", res.V1.Count())
		}
	}
}

func TestFiveThirdsRatioOnSquares(t *testing.T) {
	// Theorem 12: ratio ≤ 5/3 against the optimum of G².
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		n := 3 + rng.Intn(13)
		g := graph.ConnectedGNP(n, 0.2, rng)
		sq := g.Square()
		res := FiveThirdsSquareMVC(g)
		opt := verify.Cost(sq, exact.VertexCover(sq))
		got := verify.Cost(sq, res.Cover)
		if opt == 0 {
			if got != 0 {
				t.Fatalf("opt 0 but cover %d", got)
			}
			continue
		}
		if float64(got) > 5.0/3.0*float64(opt)+1e-9 {
			t.Fatalf("n=%d: ratio %d/%d exceeds 5/3", n, got, opt)
		}
	}
}

func TestFiveThirdsOnPathsAndStars(t *testing.T) {
	// Star squared is a clique K_n: OPT = n-1; triangles dominate part 1.
	g := graph.Star(7)
	res := FiveThirdsSquareMVC(g)
	sq := g.Square()
	if ok, _ := verify.IsVertexCover(sq, res.Cover); !ok {
		t.Fatal("star: infeasible")
	}
	opt := verify.Cost(sq, exact.VertexCover(sq)) // = 6
	if opt != 6 {
		t.Fatalf("K7 MVC = %d, want 6", opt)
	}
	if got := res.Cover.Count(); float64(got) > 5.0/3.0*float64(opt) {
		t.Fatalf("star ratio too big: %d vs %d", got, opt)
	}

	// Long path: P_n² has triangles everywhere.
	p := graph.Path(20)
	resP := FiveThirdsSquareMVC(p)
	if ok, _ := verify.IsSquareVertexCover(p, resP.Cover); !ok {
		t.Fatal("path: infeasible")
	}
}

func TestQuickFiveThirdsRatioBound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := graph.ConnectedGNP(n, 0.25, rng)
		sq := g.Square()
		res := FiveThirdsSquareMVC(g)
		if ok, _ := verify.IsVertexCover(sq, res.Cover); !ok {
			return false
		}
		opt := verify.Cost(sq, exact.VertexCover(sq))
		got := verify.Cost(sq, res.Cover)
		if opt == 0 {
			return got == 0
		}
		return float64(got) <= 5.0/3.0*float64(opt)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFiveThirdsOnGraphArbitraryInputFeasible(t *testing.T) {
	// On non-square inputs the 5/3 factor is not guaranteed, but the output
	// must still be a feasible cover (used by Corollary 17 on G²[U]).
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(16)
		g := graph.GNP(n, 0.3, rng)
		res := FiveThirdsOnGraph(g)
		if ok, w := verify.IsVertexCover(g, res.Cover); !ok {
			t.Fatalf("infeasible on arbitrary graph, witness %v", w)
		}
	}
}

func TestLemma6AllVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		n := 4 + rng.Intn(8)
		g := graph.ConnectedGNP(n, 0.25, rng)
		for r := 2; r <= 5; r++ {
			gr := g.Power(r)
			all := AllVerticesPowerMVC(g)
			if ok, _ := verify.IsVertexCover(gr, all); !ok {
				t.Fatal("all vertices fails to cover?!")
			}
			opt := verify.Cost(gr, exact.VertexCover(gr))
			if opt == 0 {
				continue
			}
			bound := Lemma6Bound(r)
			if float64(n) > bound*float64(opt)+1e-9 {
				t.Fatalf("n=%d r=%d: all-vertices ratio %f exceeds Lemma 6 bound %f (opt=%d)",
					n, r, float64(n)/float64(opt), bound, opt)
			}
		}
	}
}

func TestLemma6BoundValues(t *testing.T) {
	if Lemma6Bound(2) != 2 {
		t.Fatalf("bound(2) = %f", Lemma6Bound(2))
	}
	if Lemma6Bound(4) != 1.5 {
		t.Fatalf("bound(4) = %f", Lemma6Bound(4))
	}
	if Lemma6Bound(6) != 1+1.0/3 {
		t.Fatalf("bound(6) = %f", Lemma6Bound(6))
	}
}

func TestFiveThirdsPart2Cases(t *testing.T) {
	// Hand-built triangle-free squares exercising each degree case.
	// Path(2) squared is a single edge: degree-1 case.
	res := FiveThirdsSquareMVC(graph.Path(2))
	if res.Cover.Count() != 1 || res.V2.Count() != 1 {
		t.Fatalf("P2: cover=%v V2=%v", res.Cover, res.V2)
	}

	// C6 squared: every vertex degree 4... use plain C5 as explicit graph
	// (triangle-free, all degree 2) through FiveThirdsOnGraph: the deg-2
	// case fires.
	resC := FiveThirdsOnGraph(graph.Cycle(5))
	if ok, _ := verify.IsVertexCover(graph.Cycle(5), resC.Cover); !ok {
		t.Fatal("C5 infeasible")
	}
	if resC.V2.Empty() {
		t.Fatal("C5 should trigger part-2 degree-2 case")
	}

	// Petersen graph: 3-regular, triangle-free — degree-3 case fires.
	pet := petersen()
	resP := FiveThirdsOnGraph(pet)
	if ok, _ := verify.IsVertexCover(pet, resP.Cover); !ok {
		t.Fatal("Petersen infeasible")
	}
	if resP.V2.Empty() {
		t.Fatal("Petersen should trigger part-2 degree-3 case")
	}
}

func TestFiveThirdsHandlesIsolatedVertices(t *testing.T) {
	// Isolated vertices must be dropped, never covered.
	b := graph.NewBuilder(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2) // triangle in the square? no — explicit graph here
	b.MustAddEdge(0, 2) // triangle 0-1-2
	// vertices 3, 4, 5 isolated
	g := b.Build()
	res := FiveThirdsOnGraph(g)
	if ok, _ := verify.IsVertexCover(g, res.Cover); !ok {
		t.Fatal("infeasible")
	}
	for v := 3; v < 6; v++ {
		if res.Cover.Contains(v) {
			t.Fatalf("isolated vertex %d in cover", v)
		}
	}
	if res.V1.Count() != 3 {
		t.Fatalf("triangle not taken whole: %v", res.V1)
	}
}

func TestFiveThirdsDegreeOneChain(t *testing.T) {
	// A triangle with a pendant path: part 1 removes the triangle, leaving
	// a path whose ends hit the degree-1 case of part 2 repeatedly.
	b := graph.NewBuilder(7)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(5, 6)
	g := b.Build()
	res := FiveThirdsOnGraph(g)
	if ok, _ := verify.IsVertexCover(g, res.Cover); !ok {
		t.Fatal("infeasible")
	}
	opt := verify.Cost(g, exact.VertexCover(g))
	if got := int64(res.Cover.Count()); float64(got) > 2*float64(opt) {
		t.Fatalf("cover %d vs opt %d beyond sanity", got, opt)
	}
}

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.MustAddEdge(i, (i+1)%5)     // outer C5
		b.MustAddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.MustAddEdge(i, 5+i)         // spokes
	}
	return b.Build()
}
