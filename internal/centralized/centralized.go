// Package centralized implements the paper's centralized algorithms and the
// classical baselines they are measured against:
//
//   - Gavril's maximal-matching 2-approximation for MVC (the "part-3"
//     subroutine of Algorithm 2 and the classical baseline);
//   - the paper's Algorithm 2, a 5/3-approximation for MVC on G²
//     (Theorem 12), with the V₁/V₂/V₃ phase accounting exposed so tests can
//     check the local-ratio invariants of Lemmas 13–15;
//   - the trivial all-vertices (1 + 1/⌊r/2⌋)-approximation for MVC on Gʳ
//     (Lemma 6).
package centralized

import (
	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// Gavril2Approx returns a vertex cover of g of size at most twice the
// optimum: both endpoints of every edge of a greedy maximal matching.
func Gavril2Approx(g *graph.Graph) *bitset.Set {
	s := bitset.New(g.N())
	for _, e := range g.GreedyMaximalMatching() {
		s.Add(e[0])
		s.Add(e[1])
	}
	return s
}

// FiveThirdsResult carries the cover produced by Algorithm 2 together with
// the per-part vertex sets (V₁ triangles, V₂ low-degree gadget picks, V₃
// matching endpoints) used by the paper's approximation-factor accounting.
type FiveThirdsResult struct {
	Cover *bitset.Set
	V1    *bitset.Set // part 1: triangle vertices
	V2    *bitset.Set // part 2: degree ≤ 3 processing
	V3    *bitset.Set // part 3: maximal-matching 2-approximation
}

// FiveThirdsSquareMVC runs the paper's Algorithm 2 on the square of g and
// returns a vertex cover of g² of size at most 5/3 of the optimum
// (Theorem 12). The input is the communication graph G; the algorithm
// materializes G² internally (it is centralized).
func FiveThirdsSquareMVC(g *graph.Graph) FiveThirdsResult {
	return FiveThirdsOnGraph(g.Square())
}

// FiveThirdsOnGraph runs Algorithm 2 directly on an explicit graph sq
// (intended to be the square of some communication graph, which is what the
// 5/3 guarantee is proved for; the algorithm itself is well-defined and
// feasible on any graph). Corollary 17 uses this entry point on the
// remaining graph H = G²[U] reconstructed at the leader.
func FiveThirdsOnGraph(sq *graph.Graph) FiveThirdsResult {
	n := sq.N()
	active := bitset.Full(n)
	res := FiveThirdsResult{
		Cover: bitset.New(n),
		V1:    bitset.New(n),
		V2:    bitset.New(n),
		V3:    bitset.New(n),
	}

	take := func(part *bitset.Set, vs ...int) {
		for _, v := range vs {
			part.Add(v)
			res.Cover.Add(v)
			active.Remove(v)
		}
	}
	activeDeg := func(v int) int { return sq.AdjRow(v).IntersectionCount(active) }
	activeNbrs := func(v int) *bitset.Set { return sq.AdjRow(v).Intersect(active) }

	// Part 1: repeatedly take whole triangles. We pay 3 where OPT pays ≥ 2.
	for {
		t, ok := findActiveTriangle(sq, active)
		if !ok {
			break
		}
		take(res.V1, t[0], t[1], t[2])
	}

	// Part 2: eliminate vertices of degree ≤ 3 in the remaining
	// (triangle-free) graph, processing the lowest-degree case available
	// each iteration exactly as Algorithm 2 specifies.
part2:
	for {
		x1, x2, x3 := -1, -1, -1
		for v := active.First(); v != -1; v = active.NextAfter(v) {
			switch activeDeg(v) {
			case 0:
				active.Remove(v) // isolated: drop, never needed in a cover
			case 1:
				if x1 == -1 {
					x1 = v
				}
			case 2:
				if x2 == -1 {
					x2 = v
				}
			case 3:
				if x3 == -1 {
					x3 = v
				}
			}
		}
		switch {
		case x1 != -1:
			// Degree-1 vertex: its single neighbor covers the edge; OPT pays ≥ 1.
			y := activeNbrs(x1).First()
			take(res.V2, y)
		case x2 != -1:
			// Degree-2 vertex x with neighbors y1, y2. No degree-1 vertices
			// remain, so y1 has a neighbor z ∉ {x, y2} (z = y2 would close a
			// triangle). We pay 3 for {z, y1, y2}; OPT pays ≥ 2 for the
			// vertex-disjoint edges {z, y1}, {x, y2}.
			nbrs := activeNbrs(x2)
			y1 := nbrs.First()
			y2 := nbrs.NextAfter(y1)
			zs := activeNbrs(y1)
			zs.Remove(x2)
			zs.Remove(y2)
			z := zs.First()
			take(res.V2, z, y1, y2)
		case x3 != -1:
			// Degree-3 vertex x with neighbors y1, y2, y3; min degree is now
			// 3 and the graph is triangle-free, so y1 and y2 each have ≥ 2
			// neighbors outside {x, y1, y2, y3}, giving distinct z1 ≠ z2.
			// We pay 5 for {y1, y2, y3, z1, z2}; OPT pays ≥ 3 for the
			// disjoint edges {y1, z1}, {y2, z2}, {x, y3}.
			nbrs := activeNbrs(x3)
			y1 := nbrs.First()
			y2 := nbrs.NextAfter(y1)
			y3 := nbrs.NextAfter(y2)
			z1s := activeNbrs(y1)
			z1s.Remove(x3)
			z1s.Remove(y2)
			z1s.Remove(y3)
			z1 := z1s.First()
			z2s := activeNbrs(y2)
			z2s.Remove(x3)
			z2s.Remove(y1)
			z2s.Remove(y3)
			z2s.Remove(z1)
			z2 := z2s.First()
			take(res.V2, y1, y2, y3, z1, z2)
		default:
			break part2
		}
	}

	// Part 3: the remaining graph has min degree ≥ 4; a maximal matching's
	// endpoints give a 2-approximation there, and Lemma 14's accounting
	// (s₁ ≥ (3/2)|V_R'|) absorbs the slack into the 5/3 total.
	matched := bitset.New(n)
	for u := active.First(); u != -1; u = active.NextAfter(u) {
		if matched.Contains(u) {
			continue
		}
		cand := activeNbrs(u)
		cand.AndNot(matched)
		if v := cand.First(); v != -1 {
			matched.Add(u)
			matched.Add(v)
			res.V3.Add(u)
			res.V3.Add(v)
			res.Cover.Add(u)
			res.Cover.Add(v)
		}
	}
	return res
}

// findActiveTriangle finds a triangle inside the subgraph induced by the
// active set, lexicographically smallest first.
func findActiveTriangle(g *graph.Graph, active *bitset.Set) ([3]int, bool) {
	for u := active.First(); u != -1; u = active.NextAfter(u) {
		nbrs := g.AdjRow(u).Intersect(active)
		for v := nbrs.NextAfter(u); v != -1; v = nbrs.NextAfter(v) {
			common := g.AdjRow(u).Intersect(g.AdjRow(v))
			common.And(active)
			if w := common.NextAfter(v); w != -1 {
				return [3]int{u, v, w}, true
			}
		}
	}
	return [3]int{}, false
}

// AllVerticesPowerMVC returns the set of all vertices, which by Lemma 6 is a
// (1 + 1/⌊r/2⌋)-approximation to MVC on Gʳ for any connected graph G — in
// particular a 2-approximation on G², with zero communication.
func AllVerticesPowerMVC(g *graph.Graph) *bitset.Set {
	return bitset.Full(g.N())
}

// Lemma6Bound returns the approximation factor 1 + 1/⌊r/2⌋ guaranteed by
// Lemma 6 for the all-vertices solution on Gʳ.
func Lemma6Bound(r int) float64 {
	return 1 + 1/float64(r/2)
}
