package kernel_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"powergraph/internal/congest"
	"powergraph/internal/core"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/kernel"
	"powergraph/internal/verify"
)

// The leader-ceiling regression stress test reproduces the ROADMAP failure
// mode end to end: a sparse instance at n ≥ 500 whose degrees never reach
// the randomized variants' candidacy threshold τ, so Phase I commits nothing
// and the leader receives essentially all of G². The old default solver
// (raw branch and bound) must report budget exhaustion on that instance; the
// kernelize-then-solve ladder must crack it — exactly — under the same node
// budget and a strict wall-clock guard, both standalone and inside the full
// distributed run.

// stressBudget is deliberately small: the legacy solver burns through it in
// well under a second, and the kernel path solves the whole instance without
// spending a single search node on most seeds.
const stressBudget = 25_000

// ceilingInstance is the pinned stress instance: a weighted random tree at
// n = 1000. Weighted tree squares are the sharpest known split between the
// two solvers — the weight-gated dominance rule of the raw search stalls
// while the kernel's pendant weight transfer, weighted folding, and
// Nemhauser–Trotter decomposition collapse the square to a handful of
// vertices.
func ceilingInstance() *graph.Graph {
	g := graph.RandomTree(1000, rand.New(rand.NewSource(1)))
	return graph.WithRandomWeights(g, 16, rand.New(rand.NewSource(101)))
}

func TestLeaderCeilingRegression(t *testing.T) {
	g := ceilingInstance()
	eps := 0.5
	// τ = ⌈8/ε⌉ + 2 = 18 for ε = ½ (mvc-congest-rand and mvc-clique-rand);
	// the instance must sit below it everywhere or it does not reproduce
	// the ceiling regime.
	tau := 18
	if d := g.MaxDegree(); d > tau {
		t.Fatalf("instance max degree %d exceeds τ = %d; not the ceiling regime", d, tau)
	}
	sq := g.Square()

	// The old default: raw branch and bound exhausts the budget.
	if _, err := exact.VertexCoverBounded(sq, stressBudget); !errors.Is(err, exact.ErrBudgetExceeded) {
		t.Fatalf("legacy exact solve was expected to exhaust %d nodes, got err=%v", stressBudget, err)
	}

	// The kernel ladder under the same node budget and a wall-clock guard.
	start := time.Now()
	cover, rep := kernel.NewSolver(kernel.Config{MaxNodes: stressBudget}).VertexCover(sq)
	elapsed := time.Since(start)
	if rep.Path != kernel.PathKernelExact || !rep.Optimal {
		t.Fatalf("kernel solve did not stay exact under the budget: %+v", rep)
	}
	if ok, witness := verify.IsVertexCover(sq, cover); !ok {
		t.Fatalf("kernel cover infeasible (edge %v)", witness)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("kernel solve took %s; the ceiling is not cracked", elapsed)
	}
	optCost := sq.SetWeightOf(cover)
	if rep.Cost != optCost || rep.LowerBound > optCost {
		t.Fatalf("inconsistent report %+v for cost %d", rep, optCost)
	}

	// The full distributed runs with the default (kernel) leader solver.
	//
	// Randomized congest MVC targets cardinality, and its Phase-II wire
	// format carries no weights, so it runs on the unweighted topology:
	// Phase I must commit nothing — that is the failure mode — and Phase
	// II must still land exactly on the (unweighted) optimum.
	unweighted := graph.RandomTree(1000, rand.New(rand.NewSource(1)))
	usq := unweighted.Square()
	uOpt := usq.SetWeightOf(kernel.VertexCover(usq))
	res, err := core.ApproxMVCCongestRandomized(unweighted, eps, &core.Options{Seed: 7, Engine: congest.EngineBatch})
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseISize != 0 {
		t.Fatalf("Phase I committed %d vertices; τ fired and the regime is wrong", res.PhaseISize)
	}
	if ok, _ := verify.IsVertexCover(usq, res.Solution); !ok {
		t.Fatal("distributed solution is not a G² cover")
	}
	if res.LeaderSolve == nil || res.LeaderSolve.Path != kernel.PathKernelExact {
		t.Fatalf("leader solve did not take the kernel-exact path: %+v", res.LeaderSolve)
	}
	if got := int64(res.Solution.Count()); got != uOpt {
		t.Fatalf("distributed cover size %d differs from the exact optimum %d", got, uOpt)
	}

	// Weighted congest MVC (Theorem 7) ships weights to the leader, so on
	// the weighted instance its exact kernel-backed solve must keep the
	// whole run within (1+ε) of the weighted optimum.
	wres, err := core.ApproxMWVCCongest(g, eps, &core.Options{Seed: 7, Engine: congest.EngineBatch})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := verify.IsVertexCover(sq, wres.Solution); !ok {
		t.Fatal("weighted distributed solution is not a G² cover")
	}
	if wres.LeaderSolve == nil || wres.LeaderSolve.Path != kernel.PathKernelExact {
		t.Fatalf("weighted leader solve did not take the kernel-exact path: %+v", wres.LeaderSolve)
	}
	if got := sq.SetWeightOf(wres.Solution); float64(got) > (1+eps)*float64(optCost)+1e-9 {
		t.Fatalf("weighted distributed cost %d exceeds (1+ε)·OPT = %.1f", got, (1+eps)*float64(optCost))
	}
}

// TestLeaderCeilingAcrossSeeds widens the regression over more seeds and
// sizes so the split cannot silently rot into a single lucky instance: the
// kernel must stay sub-second exact while the legacy solver keeps
// exhausting the budget.
func TestLeaderCeilingAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep in -short mode")
	}
	for seed := int64(2); seed <= 4; seed++ {
		for _, n := range []int{600, 1500} {
			g := graph.WithRandomWeights(graph.RandomTree(n, rand.New(rand.NewSource(seed))),
				16, rand.New(rand.NewSource(seed+100)))
			sq := g.Square()
			if _, err := exact.VertexCoverBounded(sq, stressBudget); !errors.Is(err, exact.ErrBudgetExceeded) {
				t.Errorf("n=%d seed=%d: legacy solve no longer exhausts the budget (err=%v)", n, seed, err)
			}
			cover, rep := kernel.NewSolver(kernel.Config{MaxNodes: stressBudget}).VertexCover(sq)
			if rep.Path != kernel.PathKernelExact {
				t.Errorf("n=%d seed=%d: kernel path %s", n, seed, rep.Path)
			}
			if ok, _ := verify.IsVertexCover(sq, cover); !ok {
				t.Errorf("n=%d seed=%d: infeasible", n, seed)
			}
		}
	}
}
