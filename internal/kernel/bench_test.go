package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/graph"
)

// BenchmarkKernelVsExact compares the kernelize-then-solve ladder against
// the legacy raw branch and bound on leader-shaped instances (squares of
// sparse graphs), per generator and size. The raw solver runs under the
// stress budget so the hard cells finish (reported as exhausted-per-op cost
// rather than hanging); kernel cells also report the kernel size left after
// reductions. Run via `make bench-kernel`.
func BenchmarkKernelVsExact(b *testing.B) {
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"tree/n=500", graph.RandomTree(500, rand.New(rand.NewSource(3)))},
		{"tree/n=2000", graph.RandomTree(2000, rand.New(rand.NewSource(3)))},
		{"wtree/n=500", graph.WithRandomWeights(graph.RandomTree(500, rand.New(rand.NewSource(3))), 16, rand.New(rand.NewSource(103)))},
		{"wtree/n=2000", graph.WithRandomWeights(graph.RandomTree(2000, rand.New(rand.NewSource(3))), 16, rand.New(rand.NewSource(103)))},
		{"caterpillar/n=1000", graph.Caterpillar(250, 3)},
		{"gnp1.5/n=500", graph.ConnectedGNP(500, 1.5/500, rand.New(rand.NewSource(7)))},
	}
	for _, inst := range instances {
		sq := inst.g.Square()
		b.Run(fmt.Sprintf("kernel/%s", inst.name), func(b *testing.B) {
			var kernelN int
			for i := 0; i < b.N; i++ {
				_, rep := NewSolver(Config{}).VertexCover(sq)
				kernelN = rep.KernelN
			}
			b.ReportMetric(float64(kernelN), "kernelN")
			b.ReportMetric(float64(sq.N()), "inputN")
		})
		b.Run(fmt.Sprintf("raw-exact/%s", inst.name), func(b *testing.B) {
			exhausted := 0
			for i := 0; i < b.N; i++ {
				if _, err := exact.VertexCoverBounded(sq, 25_000); err != nil {
					exhausted++
				}
			}
			b.ReportMetric(float64(exhausted)/float64(b.N), "exhausted/op")
		})
	}
}

// BenchmarkKernelizeOnly isolates the reduction rules (no search): the cost
// a leader pays before any branching happens.
func BenchmarkKernelizeOnly(b *testing.B) {
	g := graph.WithRandomWeights(graph.RandomTree(2000, rand.New(rand.NewSource(3))), 16, rand.New(rand.NewSource(103)))
	sq := g.Square()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := kernelizeVC(sq, nil)
		_ = k.offset
	}
}
