package kernel

import (
	"math/rand"
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

// Per-reduction-rule unit tests. Each rule is checked for
//
//   - safeness: on instances constructed so that (mostly) only the rule
//     under test fires, the lifted solution must still be an optimal cover
//     (cost equal to brute force), and
//   - idempotence: re-kernelizing the extracted kernel applies no further
//     reductions — the fixpoint loop really reached a fixpoint.

// liftedOptimal kernelizes g, solves the kernel exhaustively, lifts, and
// compares against brute force.
func liftedOptimal(t *testing.T, g *graph.Graph, name string) RuleCounts {
	t.Helper()
	var counts RuleCounts
	k := kernelizeVC(g, &counts)
	kg, orig := k.kernelGraph()
	sol, err := exact.VertexCoverBoundedSplit(kg, 0, nil)
	if err != nil {
		t.Fatalf("%s: kernel solve: %v", name, err)
	}
	cover := k.lift(sol, orig)
	if ok, witness := verify.IsVertexCover(g, cover); !ok {
		t.Fatalf("%s: lifted cover infeasible (edge %v uncovered)", name, witness)
	}
	want := costOf(g, exact.BruteVertexCover(g))
	if got := costOf(g, cover); got != want {
		t.Fatalf("%s: lifted cost %d, brute optimum %d (counts %+v)", name, got, want, counts)
	}
	return counts
}

// assertIdempotent re-runs the kernelization on the extracted kernel and
// demands zero further change.
func assertIdempotent(t *testing.T, g *graph.Graph, name string) {
	t.Helper()
	k := kernelizeVC(g, nil)
	kg, _ := k.kernelGraph()
	var again RuleCounts
	k2 := kernelizeVC(kg, &again)
	kg2, _ := k2.kernelGraph()
	if kg2.N() != kg.N() || kg2.M() != kg.M() || k2.offset != 0 {
		t.Fatalf("%s: kernel not a fixpoint: %d/%d → %d/%d (offset %d, counts %+v)",
			name, kg.N(), kg.M(), kg2.N(), kg2.M(), k2.offset, again)
	}
}

func TestRulePendantUnweighted(t *testing.T) {
	// A star: the hub has too high a degree for fold or domination, so the
	// first leaf the sweep reaches must resolve it via the pendant rule
	// (force the hub, cascade the rest away).
	g := graph.Star(6)
	counts := liftedOptimal(t, g, "pendant/unweighted")
	if counts.Pendant == 0 {
		t.Fatalf("expected pendant applications, got %+v", counts)
	}
	assertIdempotent(t, g, "pendant/unweighted")
}

func TestRulePendantWeightTransfer(t *testing.T) {
	// Pendant v (weight 2) on hub u (weight 5): the exact rule must pay 2,
	// reduce u to 3, and lift v in exactly when u stays out.
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1) // hub 0 — pendant 1
	b.MustAddEdge(0, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	for v, w := range map[int]int64{0: 5, 1: 2, 2: 1, 3: 4, 4: 3} {
		b.SetWeight(v, w)
	}
	g := b.Build()
	counts := liftedOptimal(t, g, "pendant/weight-transfer")
	if counts.Pendant == 0 {
		t.Fatalf("expected pendant applications, got %+v", counts)
	}
	assertIdempotent(t, g, "pendant/weight-transfer")
}

func TestRuleDomination(t *testing.T) {
	// A triangle with a tail: 1's closed neighborhood contains 2's.
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(1, 3)
	b.MustAddEdge(3, 4)
	g := b.Build()
	counts := liftedOptimal(t, g, "domination")
	if counts.Domination == 0 && counts.Pendant == 0 {
		t.Fatalf("expected domination applications, got %+v", counts)
	}
	assertIdempotent(t, g, "domination")
}

func TestRuleDominationWeightGate(t *testing.T) {
	// Same shape, but the dominator is heavier than the dominated vertex:
	// the rule must NOT fire blindly — optimality after lifting is the
	// whole assertion.
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(1, 3)
	b.MustAddEdge(3, 4)
	for v, w := range map[int]int64{0: 1, 1: 9, 2: 1, 3: 1, 4: 1} {
		b.SetWeight(v, w)
	}
	liftedOptimal(t, b.Build(), "domination/weight-gate")
}

func TestRuleFoldUnweighted(t *testing.T) {
	// A 6-cycle: every vertex has degree 2 with non-adjacent neighbors, so
	// folding is the only applicable rule and must cascade to a solved
	// instance (OPT(C6) = 3).
	g := graph.Cycle(6)
	counts := liftedOptimal(t, g, "fold/C6")
	if counts.Fold == 0 {
		t.Fatalf("expected fold applications on C6, got %+v", counts)
	}
	assertIdempotent(t, g, "fold/C6")
}

func TestRuleFoldWeighted(t *testing.T) {
	// Folding across every weight regime of the center (w(a), w(v), w(b)):
	// foldable (max ≤ w(v) < sum), too light (unsound to fold — the rule
	// must hold off), and heavy (take both neighbors).
	for name, ws := range map[string][3]int64{
		"foldable":     {4, 5, 3}, // max(4,3) ≤ 5 < 7 → fold
		"light-center": {5, 2, 4}, // w(v)=2 < max → no fold, search solves
		"heavy-center": {2, 7, 3}, // w(v)=7 ≥ 2+3 → take neighbors
		"equal-center": {2, 5, 3}, // w(v)=5 = 2+3 → take neighbors
	} {
		b := graph.NewBuilder(5)
		b.MustAddEdge(0, 1) // path 0–1–2 plus tails keeps degree(1) = 2
		b.MustAddEdge(1, 2)
		b.MustAddEdge(0, 3)
		b.MustAddEdge(2, 4)
		b.SetWeight(0, ws[0])
		b.SetWeight(1, ws[1])
		b.SetWeight(2, ws[2])
		b.SetWeight(3, 6)
		b.SetWeight(4, 6)
		liftedOptimal(t, b.Build(), "fold/"+name)
	}
}

func TestRuleTwin(t *testing.T) {
	// K_{3,4}: both sides are non-adjacent twin classes of degree ≥ 3 (so
	// neither pendant nor fold can pre-empt the merge); OPT = 3.
	buildK34 := func() *graph.Builder {
		b := graph.NewBuilder(7)
		for _, l := range []int{0, 1, 2} {
			for _, r := range []int{3, 4, 5, 6} {
				b.MustAddEdge(l, r)
			}
		}
		return b
	}
	g := buildK34().Build()
	counts := liftedOptimal(t, g, "twin/K34")
	if counts.Twin == 0 {
		t.Fatalf("expected twin merges on K_{3,4}, got %+v", counts)
	}
	assertIdempotent(t, g, "twin/K34")

	// Weighted twins must merge weights, keeping the side totals intact.
	b2 := buildK34()
	for v, w := range map[int]int64{0: 3, 1: 4, 2: 2, 3: 2, 4: 2, 5: 3, 6: 1} {
		b2.SetWeight(v, w)
	}
	liftedOptimal(t, b2.Build(), "twin/weighted")
}

func TestRuleNemhauserTrotter(t *testing.T) {
	// A crown: an independent set of 4 hanging off a matching of 2 — the
	// classical structure the LP decomposition (and crown rule) eliminates
	// entirely. Weighted asymmetry pushes the LP off the all-½ point.
	b := graph.NewBuilder(6)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(0, 3)
	b.MustAddEdge(1, 4)
	b.MustAddEdge(1, 5)
	b.MustAddEdge(0, 1)
	for v, w := range map[int]int64{0: 1, 1: 1, 2: 5, 3: 5, 4: 5, 5: 5} {
		b.SetWeight(v, w)
	}
	g := b.Build()
	liftedOptimal(t, g, "nt/crown")
	assertIdempotent(t, g, "nt/crown")
}

func TestRuleZeroWeightAndDegreeZero(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.SetWeight(0, 0) // free cover vertex
	b.SetWeight(1, 3)
	// 2, 3 isolated.
	g := b.Build()
	counts := liftedOptimal(t, g, "zero-weight")
	if counts.ZeroWeight == 0 || counts.Deg0 == 0 {
		t.Fatalf("expected zero-weight and degree-0 applications, got %+v", counts)
	}
}

// TestRulesRandomizedSafeness is the rule-level fuzz: many tiny random
// weighted graphs, each fully kernelized with per-rule counters, each lift
// compared against brute force. Rules that never fire across the corpus
// fail the test — the corpus must actually exercise the ladder.
func TestRulesRandomizedSafeness(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	var totals RuleCounts
	for i := 0; i < 300; i++ {
		n := 3 + rng.Intn(10)
		g := graph.GNP(n, 0.15+0.5*rng.Float64(), rng)
		if i%2 == 0 {
			g = graph.WithRandomWeights(g, 6, rng)
		}
		var counts RuleCounts
		k := kernelizeVC(g, &counts)
		kg, orig := k.kernelGraph()
		sol, err := exact.VertexCoverBoundedSplit(kg, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		cover := k.lift(sol, orig)
		if ok, _ := verify.IsVertexCover(g, cover); !ok {
			t.Fatalf("instance %d: lifted cover infeasible", i)
		}
		if got, want := costOf(g, cover), costOf(g, exact.BruteVertexCover(g)); got != want {
			t.Fatalf("instance %d: cost %d vs brute %d", i, got, want)
		}
		totals.Deg0 += counts.Deg0
		totals.ZeroWeight += counts.ZeroWeight
		totals.Pendant += counts.Pendant
		totals.Domination += counts.Domination
		totals.Twin += counts.Twin
		totals.Fold += counts.Fold
		totals.NTForced += counts.NTForced
	}
	if totals.Pendant == 0 || totals.Domination == 0 || totals.Fold == 0 ||
		totals.Twin == 0 || totals.NTForced == 0 || totals.Deg0 == 0 {
		t.Fatalf("corpus failed to exercise every rule: %+v", totals)
	}
}

// TestDSRulesSafeness drives the set-cover reductions the dominating-set
// pipeline uses, again against brute force, and checks idempotence of the
// reduced instance.
func TestDSRulesSafeness(t *testing.T) {
	rng := rand.New(rand.NewSource(54321))
	var totals RuleCounts
	for i := 0; i < 250; i++ {
		n := 2 + rng.Intn(11)
		g := graph.GNP(n, 0.1+0.5*rng.Float64(), rng)
		if i%2 == 0 {
			g = graph.WithRandomWeights(g, 6, rng)
		}
		var counts RuleCounts
		k := kernelizeDS(g, &counts)
		inst, setIDs := k.kernelInstance()
		chosen, err := exact.SetCoverBounded(inst, 0)
		if err != nil {
			t.Fatal(err)
		}
		ds := k.lift(chosen, setIDs)
		if ok, _ := verify.IsDominatingSet(g, ds); !ok {
			t.Fatalf("instance %d: lifted set not dominating", i)
		}
		if got, want := costOf(g, ds), costOf(g, exact.BruteDominatingSet(g)); got != want {
			t.Fatalf("instance %d: cost %d vs brute %d", i, got, want)
		}
		// Idempotence: a second reduction pass on the survivors does
		// nothing.
		var again RuleCounts
		if k.sweep(&again) {
			t.Fatalf("instance %d: DS reduction not a fixpoint (counts %+v)", i, again)
		}
		totals.UniqueCoverer += counts.UniqueCoverer
		totals.SetDominated += counts.SetDominated
		totals.ElemDominated += counts.ElemDominated
	}
	if totals.UniqueCoverer == 0 || totals.SetDominated == 0 || totals.ElemDominated == 0 {
		t.Fatalf("corpus failed to exercise the set-cover rules: %+v", totals)
	}
}
