// Package kernel is the kernelize-then-solve subsystem behind the Phase-II
// leader solves: it shrinks minimum (weighted) vertex-cover and
// dominating-set instances to their hard core with exhaustive safeness-proven
// reduction rules before handing them to the exponential branch-and-bound
// solvers of internal/exact, and falls back to a polynomial approximation
// when even the kernel exceeds the search budget.
//
// The paper's algorithms assume unbounded local computation at the leader
// ("compute an optimal solution R* of the VC problem on H = G²[U]"). In
// practice that assumption was the repo's scale ceiling: on sparse graphs the
// randomized variants' candidacy threshold never fires, the leader receives
// essentially all of G², and raw branch and bound cannot crack it at
// n ≥ 500. Power-graph structure is exactly what classic kernelization
// (Nemhauser–Trotter LP decomposition, degree folding, domination) exploits
// best — squares of sparse graphs are triangle-rich and pendant-rich — so the
// kernel routinely collapses thousand-node leader instances to a few dozen
// hard vertices.
//
// The solve ladder of a Solver is:
//
//  1. direct: instances with n ≤ Config.DirectN skip kernelization entirely
//     and run the legacy unbounded exact solver, bit-for-bit compatible with
//     the pre-kernel default (this is what keeps the golden r = 2 fixtures
//     byte-identical);
//  2. kernel-exact: reduction rules run to fixpoint (degree-0, zero-weight,
//     weighted pendant, weighted domination, twin merge, weighted degree-2
//     folding, Nemhauser–Trotter LP decomposition via max-flow on the
//     bipartite double cover), then branch and bound solves the kernel under
//     Config.MaxNodes search nodes and the solution is lifted back — still
//     an exact optimum;
//  3. kernel-fallback: if the budget trips, the weighted local-ratio
//     2-approximation (Bar-Yehuda–Even) covers the kernel in polynomial
//     time; the lift preserves feasibility and the Report says the result
//     is no longer guaranteed optimal.
//
// Every rule is individually safeness-tested (lifted solution optimal) and
// the whole pipeline is conformance-tested against the brute-force reference
// solvers on randomized instance families; FuzzKernelLiftFeasible
// additionally asserts lift feasibility and the LP lower bound on arbitrary
// graph encodings.
package kernel

import (
	"time"

	"powergraph/internal/bitset"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
)

// Solve paths reported by Report.Path.
const (
	// PathDirect marks an instance small enough (n ≤ Config.DirectN) to be
	// handed to the legacy unbounded exact solver without kernelization.
	PathDirect = "direct"
	// PathKernelExact marks a kernelized instance whose kernel the
	// branch-and-bound solver cracked within budget: the lifted solution is
	// an exact optimum.
	PathKernelExact = "kernel-exact"
	// PathKernelFallback marks a kernelized instance whose kernel exhausted
	// the search budget: the kernel part of the lifted solution comes from
	// the polynomial local-ratio 2-approximation (VC) or the greedy
	// set-cover heuristic (DS).
	PathKernelFallback = "kernel-fallback"
)

// Default knob values; see Config.
const (
	DefaultDirectN  = 64
	DefaultMaxNodes = 300_000
)

// Config tunes a Solver. The zero value selects the defaults used by the
// distributed algorithms' Phase-II leaders.
type Config struct {
	// DirectN is the largest n solved by the legacy unbounded exact solver
	// without kernelization (bit-compatible with the pre-kernel default
	// leader solver). 0 selects DefaultDirectN; negative forces the kernel
	// path for every instance (what the conformance and rule tests use).
	DirectN int
	// MaxNodes is the branch-and-bound search budget for the post-kernel
	// exact solve. 0 selects DefaultMaxNodes; negative means unlimited —
	// the solve is then always exact and never falls back, which is the
	// configuration the harness oracle runs with.
	MaxNodes int64
}

func (c Config) directN() int {
	if c.DirectN == 0 {
		return DefaultDirectN
	}
	return c.DirectN
}

func (c Config) maxNodes() int64 {
	if c.MaxNodes == 0 {
		return DefaultMaxNodes
	}
	if c.MaxNodes < 0 {
		return 0 // exact.*Bounded treat 0 as unlimited
	}
	return c.MaxNodes
}

// RuleCounts tallies how often each reduction rule fired during one solve.
type RuleCounts struct {
	Deg0       int `json:"deg0,omitempty"`
	ZeroWeight int `json:"zeroWeight,omitempty"`
	Pendant    int `json:"pendant,omitempty"`
	Domination int `json:"domination,omitempty"`
	Twin       int `json:"twin,omitempty"`
	Fold       int `json:"fold,omitempty"`
	NTForced   int `json:"ntForced,omitempty"`
	// Set-cover rules (dominating set only).
	UniqueCoverer int `json:"uniqueCoverer,omitempty"`
	SetDominated  int `json:"setDominated,omitempty"`
	ElemDominated int `json:"elemDominated,omitempty"`
}

// Map returns the nonzero rule counts keyed by their JSON names — the form
// the tracing subsystem embeds in kernel-solve events. Map keys marshal in
// sorted order, so the encoding is deterministic.
func (rc RuleCounts) Map() map[string]int {
	out := make(map[string]int)
	put := func(name string, v int) {
		if v != 0 {
			out[name] = v
		}
	}
	put("deg0", rc.Deg0)
	put("zeroWeight", rc.ZeroWeight)
	put("pendant", rc.Pendant)
	put("domination", rc.Domination)
	put("twin", rc.Twin)
	put("fold", rc.Fold)
	put("ntForced", rc.NTForced)
	put("uniqueCoverer", rc.UniqueCoverer)
	put("setDominated", rc.SetDominated)
	put("elemDominated", rc.ElemDominated)
	return out
}

// Report describes one solve: which path it took and how hard the instance
// really was. With the sole exception of the wall-clock ReduceNS/SolveNS
// fields (excluded from serialization), it is a pure function of the input
// graph, so identical instances yield identical reports on every engine and
// worker.
type Report struct {
	// Path is PathDirect, PathKernelExact, or PathKernelFallback.
	Path string `json:"path"`
	// InputN and InputM describe the instance as handed in.
	InputN int `json:"inputN"`
	InputM int `json:"inputM"`
	// KernelN and KernelM describe the kernel after all reductions
	// (0/0 when the rules solved the instance outright; InputN/InputM on
	// the direct path, which never kernelizes). For vertex cover they are
	// the kernel's vertex and edge counts; for dominating set, the
	// surviving candidate-set and universe-element counts of the set-cover
	// kernel.
	KernelN int `json:"kernelN"`
	KernelM int `json:"kernelM"`
	// ForcedCost is the solution weight committed by the reduction rules
	// alone (offset such that OPT(input) = OPT(kernel) + ForcedCost).
	ForcedCost int64 `json:"forcedCost"`
	// LowerBound is a proven lower bound on the optimum of the whole
	// instance (ForcedCost plus the kernel's LP bound for VC, the
	// element-packing bound for DS). Always ≤ Cost.
	LowerBound int64 `json:"lowerBound"`
	// Cost is the weight of the returned solution.
	Cost int64 `json:"cost"`
	// Optimal reports whether the returned solution is a guaranteed exact
	// optimum (true on the direct and kernel-exact paths).
	Optimal bool `json:"optimal"`
	// Rules tallies the reduction-rule applications.
	Rules RuleCounts `json:"rules"`
	// SearchNodes counts the branch-and-bound nodes the solve expanded
	// (deterministic: the search draws no randomness).
	SearchNodes int64 `json:"searchNodes,omitempty"`
	// ReduceNS and SolveNS are the wall-clock nanoseconds spent in the
	// reduction rules and in the post-kernel search respectively — the time
	// per ladder rung. Wall-clock and therefore machine-dependent: excluded
	// from JSON so serialized results stay deterministic (they surface only
	// through trace events).
	ReduceNS int64 `json:"-"`
	SolveNS  int64 `json:"-"`
}

// Solver runs the kernelize-then-solve ladder with fixed knobs. The zero
// value is ready to use (default knobs); Solvers are stateless between calls
// and safe to reuse, but not for concurrent use of the same instance by
// multiple goroutines (each call allocates its own working state — the type
// exists to carry configuration, not state).
type Solver struct {
	cfg Config
}

// NewSolver returns a Solver with the given knobs.
func NewSolver(cfg Config) *Solver { return &Solver{cfg: cfg} }

// VertexCover solves minimum (weighted) vertex cover on g through the
// ladder, returning the cover and the solve report.
func (s *Solver) VertexCover(g *graph.Graph) (*bitset.Set, Report) {
	rep := Report{InputN: g.N(), InputM: g.M()}
	if g.N() <= s.cfg.directN() {
		start := time.Now()
		cover, nodes := exact.VertexCoverCounted(g)
		rep.SolveNS = time.Since(start).Nanoseconds()
		rep.SearchNodes = nodes
		rep.Path, rep.Optimal = PathDirect, true
		rep.KernelN, rep.KernelM = g.N(), g.M()
		rep.Cost = g.SetWeightOf(cover)
		rep.LowerBound = rep.Cost
		return cover, rep
	}

	reduceStart := time.Now()
	k := kernelizeVC(g, &rep.Rules)
	rep.ReduceNS = time.Since(reduceStart).Nanoseconds()
	rep.ForcedCost = k.offset
	kg, orig := k.kernelGraph()
	rep.KernelN, rep.KernelM = kg.N(), kg.M()
	rep.LowerBound = k.offset + k.lpLowerBound()

	var kernelCover *bitset.Set
	incumbent := bestIncumbent(kg)
	solveStart := time.Now()
	sol, nodes, err := exact.VertexCoverBoundedSplitCounted(kg, s.cfg.maxNodes(), incumbent)
	rep.SolveNS = time.Since(solveStart).Nanoseconds()
	rep.SearchNodes = nodes
	if err == nil {
		kernelCover = sol
		rep.Path, rep.Optimal = PathKernelExact, true
	} else {
		// Budget tripped: the search hands back its best-so-far cover,
		// which is never worse than the polynomial incumbent it was seeded
		// with — so the fallback keeps the local-ratio factor-2 guarantee
		// and any improvement the interrupted search already paid for.
		kernelCover = sol
		if kernelCover == nil {
			kernelCover = incumbent
		}
		rep.Path, rep.Optimal = PathKernelFallback, false
	}
	cover := k.lift(kernelCover, orig)
	rep.Cost = g.SetWeightOf(cover)
	return cover, rep
}

// DominatingSet solves minimum (weighted) dominating set on g through the
// ladder: the instance is kernelized as weighted set cover (sets = closed
// neighborhoods), solved by branch and bound under the budget, and lifted.
func (s *Solver) DominatingSet(g *graph.Graph) (*bitset.Set, Report) {
	rep := Report{InputN: g.N(), InputM: g.M()}
	if g.N() <= s.cfg.directN() {
		start := time.Now()
		ds, nodes := exact.DominatingSetCounted(g)
		rep.SolveNS = time.Since(start).Nanoseconds()
		rep.SearchNodes = nodes
		rep.Path, rep.Optimal = PathDirect, true
		rep.KernelN, rep.KernelM = g.N(), g.M()
		rep.Cost = g.SetWeightOf(ds)
		rep.LowerBound = rep.Cost
		return ds, rep
	}

	reduceStart := time.Now()
	k := kernelizeDS(g, &rep.Rules)
	rep.ReduceNS = time.Since(reduceStart).Nanoseconds()
	rep.ForcedCost = k.offset
	inst, setIDs := k.kernelInstance()
	rep.KernelN, rep.KernelM = len(setIDs), inst.UniverseSize
	rep.LowerBound = k.offset + scPackingLowerBound(inst)

	var chosen []int
	solveStart := time.Now()
	sol, nodes, scErr := exact.SetCoverBoundedCounted(inst, s.cfg.maxNodes())
	rep.SolveNS = time.Since(solveStart).Nanoseconds()
	rep.SearchNodes = nodes
	if scErr == nil {
		chosen = sol
		rep.Path, rep.Optimal = PathKernelExact, true
	} else {
		chosen = greedySetCover(inst)
		rep.Path, rep.Optimal = PathKernelFallback, false
	}
	ds := k.lift(chosen, setIDs)
	rep.Cost = g.SetWeightOf(ds)
	return ds, rep
}

// VertexCover returns an exact minimum-weight vertex cover of g via the
// kernelize-then-solve pipeline with an unlimited search budget (kernelizing
// first is what lets this succeed on instances the raw branch and bound of
// internal/exact cannot crack). This is the harness oracle's solver.
func VertexCover(g *graph.Graph) *bitset.Set {
	cover, _ := NewSolver(Config{MaxNodes: -1}).VertexCover(g)
	return cover
}

// DominatingSet returns an exact minimum-weight dominating set of g via the
// kernelize-then-solve pipeline with an unlimited search budget.
func DominatingSet(g *graph.Graph) *bitset.Set {
	ds, _ := NewSolver(Config{MaxNodes: -1}).DominatingSet(g)
	return ds
}
