package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"powergraph/internal/bitset"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

// The solver conformance suite: on hundreds of randomized small instances —
// Erdős–Rényi, paths, stars, cliques, cycles, trees, and disjoint unions,
// unweighted and weighted — the kernelize-then-solve pipeline (forced
// through the kernel path, never the direct shortcut) must return solutions
// of exactly the brute-force optimal cost. Set membership may legitimately
// differ (multiple optima); cost equality plus feasibility is the contract.

// forceKernelPath makes every instance take the kernelization path with an
// unlimited search budget, so the rules and the lift are what is under test.
func forceKernelPath() *Solver {
	return NewSolver(Config{DirectN: -1, MaxNodes: -1})
}

// conformanceInstances builds the instance families: index i of count drives
// both the topology mix and the weight overlay (every third instance is
// weighted).
func conformanceInstances(t *testing.T, count int) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var out []*graph.Graph
	for i := 0; i < count; i++ {
		n := 2 + rng.Intn(13) // 2..14: brute force stays fast
		var g *graph.Graph
		switch i % 7 {
		case 0:
			g = graph.GNP(n, 0.25, rng)
		case 1:
			g = graph.GNP(n, 0.5, rng)
		case 2:
			g = graph.Path(n)
		case 3:
			g = graph.Star(n)
		case 4:
			g = graph.Complete(n)
		case 5:
			g = graph.Cycle(n + 2) // Cycle needs ≥ 3 vertices
		default:
			// Disjoint union: two GNP halves with no cross edges.
			b := graph.NewBuilder(n + 4)
			h1 := graph.GNP(n/2+2, 0.4, rng)
			h2 := graph.GNP(n-n/2+2, 0.4, rng)
			for _, e := range h1.Edges() {
				b.MustAddEdge(e[0], e[1])
			}
			off := h1.N()
			for _, e := range h2.Edges() {
				b.MustAddEdge(e[0]+off, e[1]+off)
			}
			g = b.Build()
		}
		if i%3 == 0 {
			g = graph.WithRandomWeights(g, 9, rng)
		}
		out = append(out, g)
	}
	return out
}

func TestKernelVertexCoverConformance(t *testing.T) {
	s := forceKernelPath()
	for i, g := range conformanceInstances(t, 280) {
		name := fmt.Sprintf("instance %d (n=%d m=%d weighted=%v)", i, g.N(), g.M(), g.Weighted())
		cover, rep := s.VertexCover(g)
		if ok, witness := verify.IsVertexCover(g, cover); !ok {
			t.Fatalf("%s: infeasible cover (uncovered edge %v)", name, witness)
		}
		want := g.SetWeightOf(exact.BruteVertexCover(g))
		got := g.SetWeightOf(cover)
		if got != want {
			t.Fatalf("%s: cost %d, brute optimum %d (report %+v)", name, got, want, rep)
		}
		if !rep.Optimal || rep.Path != PathKernelExact {
			t.Fatalf("%s: expected optimal kernel-exact solve, got %+v", name, rep)
		}
		if rep.Cost != got {
			t.Fatalf("%s: report cost %d does not match solution cost %d", name, rep.Cost, got)
		}
		if rep.LowerBound > got {
			t.Fatalf("%s: lower bound %d exceeds optimal cost %d", name, rep.LowerBound, got)
		}
	}
}

func TestKernelDominatingSetConformance(t *testing.T) {
	s := forceKernelPath()
	for i, g := range conformanceInstances(t, 220) {
		name := fmt.Sprintf("instance %d (n=%d m=%d weighted=%v)", i, g.N(), g.M(), g.Weighted())
		ds, rep := s.DominatingSet(g)
		if ok, witness := verify.IsDominatingSet(g, ds); !ok {
			t.Fatalf("%s: not dominating (vertex %v undominated)", name, witness)
		}
		want := g.SetWeightOf(exact.BruteDominatingSet(g))
		got := g.SetWeightOf(ds)
		if got != want {
			t.Fatalf("%s: cost %d, brute optimum %d (report %+v)", name, got, want, rep)
		}
		if !rep.Optimal {
			t.Fatalf("%s: expected optimal solve, got %+v", name, rep)
		}
		if rep.LowerBound > got {
			t.Fatalf("%s: lower bound %d exceeds optimal cost %d", name, rep.LowerBound, got)
		}
	}
}

// TestKernelMatchesLegacyExactOnSquares pins the pipeline against the legacy
// solver on the instances that matter most here: squares of sparse graphs,
// where the kernel rules fire heavily. Costs must agree exactly.
func TestKernelMatchesLegacyExactOnSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := forceKernelPath()
	for i := 0; i < 40; i++ {
		n := 8 + rng.Intn(20)
		g := graph.ConnectedGNP(n, 2.5/float64(n), rng)
		if i%2 == 1 {
			g = graph.WithRandomWeights(g, 7, rng)
		}
		sq := g.Square()
		cover, _ := s.VertexCover(sq)
		want := sq.SetWeightOf(exact.VertexCover(sq))
		if got := sq.SetWeightOf(cover); got != want {
			t.Fatalf("square instance %d (n=%d): kernel cost %d, legacy exact %d", i, n, got, want)
		}
	}
}

// TestKernelDirectPathBitCompatible proves the ladder's direct path returns
// the exact solver's cover set (not merely its cost) below the DirectN
// threshold — the property that keeps the golden r = 2 fixtures and the
// engine-equivalence records byte-identical under the new default solver.
func TestKernelDirectPathBitCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewSolver(Config{}) // default DirectN
	for i := 0; i < 40; i++ {
		n := 4 + rng.Intn(40)
		g := graph.ConnectedGNP(n, 0.2, rng)
		if i%2 == 1 {
			g = graph.WithRandomWeights(g, 9, rng)
		}
		cover, rep := s.VertexCover(g)
		if rep.Path != PathDirect {
			t.Fatalf("n=%d: expected direct path below DirectN=%d, got %s", n, DefaultDirectN, rep.Path)
		}
		if want := exact.VertexCover(g); !cover.Equal(want) {
			t.Fatalf("n=%d: direct path diverged from the legacy exact cover", n)
		}
	}
}

// TestKernelDeterministic runs the full pipeline twice on identical
// instances and demands identical covers — the property the engine
// differential and byte-identical JSONL contracts inherit.
func TestKernelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10; i++ {
		n := 200 + rng.Intn(100)
		g := graph.WithRandomWeights(graph.RandomTree(n, rng), 16, rng)
		sq := g.Square()
		c1, r1 := NewSolver(Config{}).VertexCover(sq)
		c2, r2 := NewSolver(Config{}).VertexCover(sq)
		if !c1.Equal(c2) {
			t.Fatalf("instance %d: covers differ across runs", i)
		}
		// ReduceNS/SolveNS are wall-clock (json:"-") — the only fields the
		// determinism contract exempts.
		r1.ReduceNS, r1.SolveNS = 0, 0
		r2.ReduceNS, r2.SolveNS = 0, 0
		if r1 != r2 {
			t.Fatalf("instance %d: reports differ: %+v vs %+v", i, r1, r2)
		}
	}
}

// TestKernelFallbackLadder forces the budget to trip and checks the
// polynomial fallback still yields a feasible cover within factor 2 of the
// lower bound, reported as such.
func TestKernelFallbackLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.ConnectedGNP(300, 8.0/300, rng) // dense-core square: rules barely fire
	sq := g.Square()
	cover, rep := NewSolver(Config{DirectN: -1, MaxNodes: 10}).VertexCover(sq)
	if rep.Path != PathKernelFallback || rep.Optimal {
		t.Fatalf("expected non-optimal kernel-fallback path, got %+v", rep)
	}
	if ok, _ := verify.IsVertexCover(sq, cover); !ok {
		t.Fatal("fallback cover infeasible")
	}
	if rep.LowerBound <= 0 {
		t.Fatalf("fallback run reports no lower bound: %+v", rep)
	}
	if got := sq.SetWeightOf(cover); got > 2*rep.LowerBound {
		t.Fatalf("fallback cost %d exceeds twice the LP lower bound %d", got, rep.LowerBound)
	}

	// The interrupted search must pay out its best-so-far: the fallback can
	// never be worse than the polynomial incumbent the search was seeded
	// with (exact.VertexCoverBoundedSplit returns the incumbent-or-better
	// alongside ErrBudgetExceeded).
	kernelized := kernelizeVC(sq, nil)
	kg, _ := kernelized.kernelGraph()
	seed := bestIncumbent(kg)
	sol, err := exact.VertexCoverBoundedSplit(kg, 10, seed)
	if err == nil {
		t.Fatal("expected the 10-node budget to trip on the dense-core kernel")
	}
	if sol == nil {
		t.Fatal("budget-tripped split search returned no best-so-far cover")
	}
	if ok, _ := verify.IsVertexCover(kg, sol); !ok {
		t.Fatal("best-so-far cover infeasible")
	}
	if kg.SetWeightOf(sol) > kg.SetWeightOf(seed) {
		t.Fatalf("best-so-far cover (%d) worse than the seed incumbent (%d)",
			kg.SetWeightOf(sol), kg.SetWeightOf(seed))
	}
}

// TestKernelEmptyAndTiny covers the degenerate shapes the leader can hand
// the solver: empty graphs, a single vertex, a single edge.
func TestKernelEmptyAndTiny(t *testing.T) {
	s := forceKernelPath()
	empty, rep := s.VertexCover(graph.NewBuilder(0).Build())
	if empty.Count() != 0 || rep.Cost != 0 {
		t.Fatalf("empty graph: %v / %+v", empty, rep)
	}
	one, _ := s.VertexCover(graph.NewBuilder(1).Build())
	if one.Count() != 0 {
		t.Fatalf("isolated vertex must not be covered: %v", one)
	}
	edge, _ := s.VertexCover(graph.Path(2))
	if edge.Count() != 1 {
		t.Fatalf("single edge needs exactly one endpoint, got %v", edge)
	}
	dsEmpty, _ := s.DominatingSet(graph.NewBuilder(0).Build())
	if dsEmpty.Count() != 0 {
		t.Fatalf("empty graph dominating set: %v", dsEmpty)
	}
	dsOne, _ := s.DominatingSet(graph.NewBuilder(1).Build())
	if dsOne.Count() != 1 {
		t.Fatalf("an isolated vertex must dominate itself: %v", dsOne)
	}
}

// costOf is a tiny helper shared with the rule tests.
func costOf(g *graph.Graph, s *bitset.Set) int64 { return g.SetWeightOf(s) }
