package kernel

import (
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/exact"
	"powergraph/internal/graph"
)

// Dominating set kernelizes naturally as weighted set cover: the universe is
// the vertices still needing domination, and each vertex v contributes the
// candidate set N[v] at weight w(v). The classical safe set-cover reductions
// then apply directly — and, unlike graph-side DS rules, they never need the
// annotated black/white domination model, so the kernel stays a plain
// instance the branch-and-bound solver of internal/exact understands.
//
// Rules (each exhaustively safeness-tested in rules_test.go):
//
//   - zero-weight set: taking it is free and only helps — force it;
//   - unique coverer: an element covered by exactly one candidate forces
//     that candidate;
//   - set domination: a candidate whose set is contained in another's with
//     no smaller weight can be dropped (ties break to the smaller vertex id
//     so exactly one of two identical candidates survives);
//   - element domination: if every candidate covering e also covers f,
//     covering e covers f for free — drop f from the universe.
type dsKernel struct {
	n      int
	weight []int64
	sets   []*bitset.Set // sets[v] = N[v] ∩ elements (nil once dropped)
	cands  *bitset.Set   // vertices still usable as dominators
	elems  *bitset.Set   // vertices still needing domination
	forced *bitset.Set   // vertices committed to the dominating set
	offset int64
}

func newDSKernel(g *graph.Graph) *dsKernel {
	n := g.N()
	k := &dsKernel{
		n:      n,
		weight: make([]int64, n),
		sets:   make([]*bitset.Set, n),
		cands:  bitset.Full(n),
		elems:  bitset.Full(n),
		forced: bitset.New(n),
	}
	for v := 0; v < n; v++ {
		k.weight[v] = g.Weight(v)
		k.sets[v] = g.ClosedNeighborhood(v)
	}
	return k
}

// take commits candidate v to the dominating set: its elements stop needing
// domination and every other candidate's set shrinks accordingly.
func (k *dsKernel) take(v int) {
	k.offset += k.weight[v]
	k.forced.Add(v)
	covered := k.sets[v]
	k.elems.AndNot(covered)
	k.dropCand(v)
	for u := k.cands.First(); u != -1; u = k.cands.NextAfter(u) {
		k.sets[u].AndNot(covered)
	}
}

func (k *dsKernel) dropCand(v int) {
	k.cands.Remove(v)
	k.sets[v] = nil
}

// kernelizeDS runs the set-cover rules to fixpoint.
func kernelizeDS(g *graph.Graph, counts *RuleCounts) *dsKernel {
	k := newDSKernel(g)
	if counts == nil {
		counts = &RuleCounts{}
	}
	for k.sweep(counts) {
	}
	return k
}

// sweep runs each rule once over the instance; reports whether any fired.
func (k *dsKernel) sweep(counts *RuleCounts) bool {
	changed := false

	// Zero-weight and empty candidates.
	for v := k.cands.First(); v != -1; v = k.cands.NextAfter(v) {
		if k.sets[v].Empty() {
			k.dropCand(v)
			changed = true
			continue
		}
		if k.weight[v] == 0 {
			k.take(v)
			counts.ZeroWeight++
			changed = true
		}
	}

	// Unique coverer: count candidates per element.
	for e := k.elems.First(); e != -1; e = k.elems.NextAfter(e) {
		only, cnt := -1, 0
		for v := k.cands.First(); v != -1 && cnt < 2; v = k.cands.NextAfter(v) {
			if k.sets[v].Contains(e) {
				only = v
				cnt++
			}
		}
		if cnt == 1 {
			k.take(only)
			counts.UniqueCoverer++
			changed = true
		}
	}

	// Set domination: drop candidates subset of a no-heavier candidate.
	cands := k.cands.Elements()
	for _, v := range cands {
		if !k.cands.Contains(v) {
			continue
		}
		for _, u := range cands {
			if u == v || !k.cands.Contains(u) || !k.cands.Contains(v) {
				continue
			}
			if k.weight[u] > k.weight[v] || !k.sets[v].SubsetOf(k.sets[u]) {
				continue
			}
			// Ties (equal sets and weights) keep the smaller id.
			if k.sets[v].Equal(k.sets[u]) && k.weight[u] == k.weight[v] && u > v {
				continue
			}
			k.dropCand(v)
			counts.SetDominated++
			changed = true
			break
		}
	}

	// Element domination: drop elements whose coverers all cover another
	// element too (covering that element covers this one for free).
	elems := k.elems.Elements()
	coverers := make(map[int]*bitset.Set, len(elems))
	for _, e := range elems {
		c := bitset.New(k.n)
		for v := k.cands.First(); v != -1; v = k.cands.NextAfter(v) {
			if k.sets[v].Contains(e) {
				c.Add(v)
			}
		}
		coverers[e] = c
	}
	for _, f := range elems {
		if !k.elems.Contains(f) {
			continue
		}
		for _, e := range elems {
			if e == f || !k.elems.Contains(e) {
				continue
			}
			if !coverers[e].SubsetOf(coverers[f]) {
				continue
			}
			// Ties (identical coverer sets) keep the smaller id.
			if coverers[e].Equal(coverers[f]) && e > f {
				continue
			}
			k.elems.Remove(f)
			for v := k.cands.First(); v != -1; v = k.cands.NextAfter(v) {
				k.sets[v].Remove(f)
			}
			counts.ElemDominated++
			changed = true
			break
		}
	}
	return changed
}

// kernelInstance materializes the surviving instance for the exact set-cover
// solver; setIDs maps instance set indices back to vertex ids.
func (k *dsKernel) kernelInstance() (*exact.SetCoverInstance, []int) {
	setIDs := k.cands.Elements()
	elems := k.elems.Elements()
	eIdx := make(map[int]int, len(elems))
	for i, e := range elems {
		eIdx[e] = i
	}
	inst := &exact.SetCoverInstance{
		UniverseSize: len(elems),
		Sets:         make([]*bitset.Set, len(setIDs)),
		Weights:      make([]int64, len(setIDs)),
	}
	for i, v := range setIDs {
		s := bitset.New(len(elems))
		k.sets[v].ForEach(func(e int) bool {
			s.Add(eIdx[e])
			return true
		})
		inst.Sets[i] = s
		inst.Weights[i] = k.weight[v]
	}
	return inst, setIDs
}

// lift maps chosen kernel sets back to vertices and adds the forced ones.
func (k *dsKernel) lift(chosen []int, setIDs []int) *bitset.Set {
	ds := k.forced.Clone()
	for _, i := range chosen {
		ds.Add(setIDs[i])
	}
	return ds
}

// scPackingLowerBound is the element-packing bound: elements with pairwise
// disjoint coverer collections each need their own set, costing at least the
// cheapest of their own coverers.
func scPackingLowerBound(inst *exact.SetCoverInstance) int64 {
	marked := bitset.New(len(inst.Sets))
	var lb int64
	for e := 0; e < inst.UniverseSize; e++ {
		disjoint := true
		cheapest := int64(math.MaxInt64)
		var mine []int
		for i, s := range inst.Sets {
			if !s.Contains(e) {
				continue
			}
			if marked.Contains(i) {
				disjoint = false
				break
			}
			if w := inst.Weights[i]; w < cheapest {
				cheapest = w
			}
			mine = append(mine, i)
		}
		if !disjoint || len(mine) == 0 {
			continue
		}
		lb += cheapest
		for _, i := range mine {
			marked.Add(i)
		}
	}
	return lb
}

// greedySetCover is the classical ln(Δ+1)-style greedy: repeatedly take the
// set with the best newly-covered-per-weight ratio. The fallback when the
// kernel exhausts the exact budget.
func greedySetCover(inst *exact.SetCoverInstance) []int {
	covered := bitset.New(inst.UniverseSize)
	var out []int
	for covered.Count() < inst.UniverseSize {
		best, bestScore := -1, -1.0
		for i, s := range inst.Sets {
			gain := s.Count() - s.IntersectionCount(covered)
			if gain == 0 {
				continue
			}
			score := math.Inf(1)
			if w := inst.Weights[i]; w > 0 {
				score = float64(gain) / float64(w)
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			break // uncoverable element: cannot happen for DS instances
		}
		out = append(out, best)
		covered.Or(inst.Sets[best])
	}
	return out
}
