package kernel

import (
	"testing"

	"powergraph/internal/exact"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

// FuzzKernelLiftFeasible drives the whole kernelize-then-solve ladder over
// arbitrary graph encodings and asserts the two invariants every path must
// keep regardless of which rules fired or whether the budget tripped:
//
//   - the lifted solution is a feasible vertex cover of the input, and
//   - its cost is never below the reported LP-based lower bound (and the
//     report's own cost bookkeeping matches).
//
// Small instances additionally get a brute-force optimality check whenever
// the ladder claims the solve was exact. Run the short CI pass with
// `make fuzz-kernel`.
func FuzzKernelLiftFeasible(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{12, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0, 9, 9, 9})
	f.Add([]byte{20, 250, 3, 77, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeFuzzGraph(data)
		// A tight budget keeps the fuzz fast and exercises the fallback arm
		// as often as the exact one.
		cover, rep := NewSolver(Config{DirectN: -1, MaxNodes: 400}).VertexCover(g)
		if ok, witness := verify.IsVertexCover(g, cover); !ok {
			t.Fatalf("lifted cover infeasible (edge %v uncovered) on n=%d m=%d", witness, g.N(), g.M())
		}
		cost := g.SetWeightOf(cover)
		if cost != rep.Cost {
			t.Fatalf("report cost %d != actual cost %d", rep.Cost, cost)
		}
		if cost < rep.LowerBound {
			t.Fatalf("cost %d below the LP lower bound %d (path %s)", cost, rep.LowerBound, rep.Path)
		}
		if rep.Optimal && g.N() <= 14 {
			if want := g.SetWeightOf(exact.BruteVertexCover(g)); cost != want {
				t.Fatalf("claimed-exact cost %d, brute optimum %d", cost, want)
			}
		}
	})
}

// decodeFuzzGraph maps an arbitrary byte string to a graph: byte 0 sets n
// (2..33), then alternating bytes add edges (u, v mod n) and every fifth
// byte contributes a vertex weight in [0, 7] — zero weights included, so the
// free-vertex rule stays under fuzz too.
func decodeFuzzGraph(data []byte) *graph.Graph {
	n := 2
	if len(data) > 0 {
		n = 2 + int(data[0])%32
	}
	b := graph.NewBuilder(n)
	for i := 1; i+1 < len(data); i += 2 {
		u := int(data[i]) % n
		v := int(data[i+1]) % n
		if u != v {
			if _, err := b.AddEdgeIfAbsent(u, v); err != nil {
				panic(err) // unreachable: endpoints are in range and u != v
			}
		}
		if i%5 == 0 {
			b.SetWeight(u, int64(data[i+1]%8))
		}
	}
	return b.Build()
}
