package kernel

import (
	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// vcKernel is the mutable working state of the vertex-cover kernelization:
// adjacency bitsets (capacity fixed at the input size so original vertex ids
// stay valid throughout), per-vertex weights that the pendant rule may
// reduce, the set of still-undecided vertices, and the replay log that lifts
// a kernel cover back to a cover of the input graph.
type vcKernel struct {
	n      int
	adj    []*bitset.Set
	weight []int64
	alive  *bitset.Set
	offset int64 // weight committed by the rules: OPT(input) = OPT(kernel) + offset
	ops    []liftOp
	// lpCut is the min-cut value (twice the LP optimum) of the surviving
	// instance, recorded by the final reduceNT pass — the one that found
	// nothing left to decompose — so the solver's lower bound does not pay
	// for a second max-flow on the identical network.
	lpCut int64
}

// liftOp is one reduction decision. Lift replays the log in reverse order on
// the kernel cover, so every op sees exactly the membership state it needs.
type liftOp struct {
	kind    opKind
	v, a, b int
}

type opKind uint8

const (
	// opForce: v is in every produced cover (lift adds it unconditionally).
	opForce opKind = iota
	// opPendant: pendant v hung off a, with w(a) > w(v); a's weight was
	// reduced by w(v). Lift adds v iff a is not in the cover.
	opPendant
	// opTwin: non-adjacent twin a was merged into representative v
	// (weights summed). Lift adds a iff v is in the cover.
	opTwin
	// opFold: degree-2 vertex v with non-adjacent neighbors a, b was folded
	// into representative v (weight w(a)+w(b)-w(v), adjacency
	// N(a) ∪ N(b) \ {v}). Lift replaces v by {a, b} if v is in the cover,
	// and adds v otherwise.
	opFold
)

// newVCKernel snapshots g into mutable working state.
func newVCKernel(g *graph.Graph) *vcKernel {
	n := g.N()
	k := &vcKernel{
		n:      n,
		adj:    make([]*bitset.Set, n),
		weight: make([]int64, n),
		alive:  bitset.Full(n),
	}
	for v := 0; v < n; v++ {
		k.adj[v] = g.AdjRow(v).Clone()
		k.weight[v] = g.Weight(v)
	}
	return k
}

// drop removes v from the instance without any cover decision (degree-0 and
// NT's zero-side vertices, whose edges are all covered by forced vertices).
func (k *vcKernel) drop(v int) {
	k.alive.Remove(v)
	k.adj[v].ForEach(func(u int) bool {
		k.adj[u].Remove(v)
		return true
	})
	k.adj[v].Clear()
}

// force commits v to the cover at its current weight and removes it.
func (k *vcKernel) force(v int) {
	k.offset += k.weight[v]
	k.ops = append(k.ops, liftOp{kind: opForce, v: v})
	k.drop(v)
}

// liveDegree is |N(v) ∩ alive|; rows only ever contain alive vertices, so
// it is just the row count.
func (k *vcKernel) liveDegree(v int) int { return k.adj[v].Count() }

// kernelizeVC runs every reduction rule to global fixpoint and returns the
// working state, ready for kernel extraction and lifting. counts, when
// non-nil, tallies rule applications.
func kernelizeVC(g *graph.Graph, counts *RuleCounts) *vcKernel {
	k := newVCKernel(g)
	if counts == nil {
		counts = &RuleCounts{}
	}
	for {
		for k.reduceLocal(counts) {
		}
		// Local rules are at fixpoint; if the LP decomposition also finds
		// nothing, that is the global fixpoint (and the pass just recorded
		// the kernel's LP cut for the lower bound). Otherwise NT exposed
		// new local structure — rescan.
		if !k.reduceNT(counts) {
			return k
		}
	}
}

// reduceLocal runs one sweep of the cheap local rules (degree-0,
// zero-weight, pendant, domination, twin merge, degree-2 fold) and reports
// whether anything fired.
func (k *vcKernel) reduceLocal(counts *RuleCounts) bool {
	changed := false
	for v := k.alive.First(); v != -1; v = k.alive.NextAfter(v) {
		if !k.alive.Contains(v) {
			continue // removed earlier in this sweep
		}
		if k.ruleDegreeZero(v, counts) || k.ruleZeroWeight(v, counts) ||
			k.rulePendant(v, counts) || k.ruleDomination(v, counts) ||
			k.ruleFold(v, counts) {
			changed = true
		}
	}
	if k.ruleTwinSweep(counts) {
		changed = true
	}
	return changed
}

// ruleDegreeZero drops isolated vertices: they cover nothing.
func (k *vcKernel) ruleDegreeZero(v int, counts *RuleCounts) bool {
	if k.liveDegree(v) != 0 {
		return false
	}
	k.drop(v)
	counts.Deg0++
	return true
}

// ruleZeroWeight takes zero-weight vertices: they cover their edges for
// free, so some optimal cover contains them.
func (k *vcKernel) ruleZeroWeight(v int, counts *RuleCounts) bool {
	if k.weight[v] != 0 || k.liveDegree(v) == 0 {
		return false
	}
	k.force(v)
	counts.ZeroWeight++
	return true
}

// rulePendant reduces a degree-1 vertex v with neighbor u:
//
//   - w(u) ≤ w(v): N[v] ⊆ N[u] and u is no dearer, so some optimal cover
//     takes u (the domination argument) — force u;
//   - w(u) > w(v): transfer w(v) onto the edge (the exact weighted pendant
//     rule): remove v, reduce w(u) by w(v), and pay w(v) up front. Any
//     cover of the reduced instance lifts by adding v exactly when u is
//     absent; both directions of the cost accounting are exact, so the rule
//     is safe for optimality, not just approximation.
func (k *vcKernel) rulePendant(v int, counts *RuleCounts) bool {
	if k.liveDegree(v) != 1 {
		return false
	}
	u := k.adj[v].First()
	if k.weight[u] <= k.weight[v] {
		k.force(u)
	} else {
		k.offset += k.weight[v]
		k.weight[u] -= k.weight[v]
		k.ops = append(k.ops, liftOp{kind: opPendant, v: v, a: u})
		k.drop(v)
	}
	counts.Pendant++
	return true
}

// ruleDomination applies the weighted dominance rule to v's edges: if some
// neighbor u satisfies N[v] ⊆ N[u] (within the live instance) and
// w(u) ≤ w(v), then swapping v for u in any cover avoiding u stays feasible
// and no dearer, so u can be forced. Squares of graphs are triangle-rich,
// which is where this rule collapses most of the instance.
func (k *vcKernel) ruleDomination(v int, counts *RuleCounts) bool {
	nv := k.adj[v]
	for u := nv.First(); u != -1; u = nv.NextAfter(u) {
		if k.weight[u] > k.weight[v] {
			continue
		}
		rest := nv.Clone()
		rest.Remove(u)
		if rest.SubsetOf(k.adj[u]) {
			k.force(u)
			counts.Domination++
			return true
		}
	}
	return false
}

// ruleFold reduces a degree-2 vertex v with neighbors a, b:
//
//   - a–b adjacent (triangle): handled by domination when a weight
//     condition holds; otherwise left for the search.
//   - a–b non-adjacent, w(v) ≥ w(a) + w(b): {a, b} covers everything v
//     covers and more, no dearer — force both.
//   - a–b non-adjacent, max(w(a), w(b)) ≤ w(v) < w(a) + w(b):
//     Nemhauser–Trotter degree-2 folding. Contract {a, v, b} into v with
//     weight w(a)+w(b)−w(v) and adjacency N(a) ∪ N(b) \ {v}, paying w(v)
//     up front. A kernel cover containing the folded v lifts to {a, b};
//     one avoiding it lifts to {v}. Both cost exactly the kernel cost plus
//     w(v). The max-weight condition is essential: when the center is
//     lighter than a neighbor, an optimal cover may contain v plus exactly
//     one of {a, b}, a shape the folded instance cannot express (the
//     randomized safeness corpus catches the unsound variant immediately).
func (k *vcKernel) ruleFold(v int, counts *RuleCounts) bool {
	if k.liveDegree(v) != 2 {
		return false
	}
	a := k.adj[v].First()
	b := k.adj[v].NextAfter(a)
	if k.adj[a].Contains(b) {
		return false
	}
	if k.weight[v] >= k.weight[a]+k.weight[b] {
		k.force(a)
		if k.alive.Contains(b) {
			k.force(b)
		}
		counts.Fold++
		return true
	}
	if k.weight[v] < k.weight[a] || k.weight[v] < k.weight[b] {
		return false
	}
	folded := k.weight[a] + k.weight[b] - k.weight[v]
	k.offset += k.weight[v]
	k.ops = append(k.ops, liftOp{kind: opFold, v: v, a: a, b: b})
	merged := k.adj[a].Union(k.adj[b])
	k.drop(a)
	k.drop(b)
	merged.Remove(v)
	merged.And(k.alive)
	k.adj[v].CopyFrom(merged)
	merged.ForEach(func(u int) bool {
		k.adj[u].Add(v)
		return true
	})
	k.weight[v] = folded
	counts.Fold++
	return true
}

// ruleTwinSweep merges non-adjacent vertices with identical neighborhoods:
// if N(a) = N(v) and a ∉ N(v), every cover either contains all of N(v)
// (making both redundant) or must contain both a and v, so they act as one
// vertex of weight w(a) + w(v). One sweep buckets live vertices by
// neighborhood and merges each bucket into its smallest id.
func (k *vcKernel) ruleTwinSweep(counts *RuleCounts) bool {
	// rep[key] is the smallest-id vertex seen with that neighborhood; the
	// ascending vertex scan (never map iteration) drives every merge, so
	// the ops log — and with it the lifted cover — is deterministic.
	// Dropping a twin removes the same vertex from every row containing
	// it, so rows that were equal stay equal and the keys remain valid
	// within the sweep; rows that only become equal are caught by the
	// fixpoint loop's next sweep.
	rep := make(map[string]int)
	changed := false
	for v := k.alive.First(); v != -1; v = k.alive.NextAfter(v) {
		if k.liveDegree(v) == 0 {
			continue
		}
		key := k.adj[v].String()
		r, seen := rep[key]
		if !seen {
			rep[key] = v
			continue
		}
		k.weight[r] += k.weight[v]
		k.ops = append(k.ops, liftOp{kind: opTwin, v: r, a: v})
		k.drop(v)
		counts.Twin++
		changed = true
	}
	return changed
}

// reduceNT runs the Nemhauser–Trotter LP decomposition: solve the VC linear
// relaxation exactly via max-flow on the bipartite double cover, force the
// x = 1 side into the cover, and drop the x = 0 side (whose neighbors are
// all forced). By LP persistency some optimal integral cover agrees with
// every integral coordinate of an optimal half-integral LP solution, so the
// rule is exact; the surviving kernel is the all-½ part.
func (k *vcKernel) reduceNT(counts *RuleCounts) bool {
	if k.alive.Empty() {
		k.lpCut = 0
		return false
	}
	one, zero, cut := ntDecompose(k)
	if one.Empty() && zero.Empty() {
		k.lpCut = cut // the instance will not change again: cut stays valid
		return false
	}
	one.ForEach(func(v int) bool {
		if k.alive.Contains(v) {
			k.force(v)
			counts.NTForced++
		}
		return true
	})
	zero.ForEach(func(v int) bool {
		if k.alive.Contains(v) {
			k.drop(v)
		}
		return true
	})
	return true
}

// kernelGraph materializes the surviving instance as an immutable graph with
// the (possibly reduced) working weights; orig maps kernel ids back to input
// ids.
func (k *vcKernel) kernelGraph() (*graph.Graph, []int) {
	orig := k.alive.Elements()
	idx := make(map[int]int, len(orig))
	for i, v := range orig {
		idx[v] = i
	}
	b := graph.NewBuilder(len(orig))
	for i, v := range orig {
		b.SetWeight(i, k.weight[v])
		k.adj[v].ForEach(func(u int) bool {
			if u > v {
				b.MustAddEdge(i, idx[u])
			}
			return true
		})
	}
	return b.Build(), orig
}

// lift translates a cover of the kernel back into a cover of the input
// graph: map kernel ids to input ids, then replay the reduction log in
// reverse so each decision sees the membership state it recorded against.
func (k *vcKernel) lift(kernelCover *bitset.Set, orig []int) *bitset.Set {
	cover := bitset.New(k.n)
	kernelCover.ForEach(func(i int) bool {
		cover.Add(orig[i])
		return true
	})
	for i := len(k.ops) - 1; i >= 0; i-- {
		op := k.ops[i]
		switch op.kind {
		case opForce:
			cover.Add(op.v)
		case opPendant:
			if !cover.Contains(op.a) {
				cover.Add(op.v)
			}
		case opTwin:
			if cover.Contains(op.v) {
				cover.Add(op.a)
			}
		case opFold:
			if cover.Contains(op.v) {
				cover.Remove(op.v)
				cover.Add(op.a)
				cover.Add(op.b)
			} else {
				cover.Add(op.v)
			}
		}
	}
	return cover
}
