package kernel

import (
	"math"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// The vertex-cover LP relaxation always has an optimal half-integral
// solution, computable exactly in polynomial time from a minimum s–t cut on
// the bipartite double cover (Nemhauser–Trotter): vertices split into a left
// and a right copy, each edge {u,v} becomes Lu–Rv and Lv–Ru, copies connect
// to source/sink with capacity w(v), and x_v = (½)·([Lv ∈ C] + [Rv ∈ C])
// for the canonical min-cut vertex cover C of the bipartite graph. The LP
// value is half the cut. This file implements that construction plus the
// Dinic max-flow it runs on.

// infCap is the capacity of the Lu→Rv edge arcs: effectively infinite, but
// far enough from overflow that summing many of them stays safe.
const infCap = int64(1) << 60

// flowEdge is one directed arc with its residual twin at index ^1.
type flowEdge struct {
	to  int
	cap int64
}

// dinic is a deterministic Dinic max-flow solver over an explicit arc list.
type dinic struct {
	n     int
	edges []flowEdge
	head  [][]int32 // head[v] lists arc indices out of v
	level []int32
	iter  []int32
}

func newDinic(n int) *dinic {
	return &dinic{n: n, head: make([][]int32, n), level: make([]int32, n), iter: make([]int32, n)}
}

// addEdge inserts the arc u→v with the given capacity (plus its zero-cap
// residual twin).
func (d *dinic) addEdge(u, v int, cap int64) {
	d.head[u] = append(d.head[u], int32(len(d.edges)))
	d.edges = append(d.edges, flowEdge{to: v, cap: cap})
	d.head[v] = append(d.head[v], int32(len(d.edges)))
	d.edges = append(d.edges, flowEdge{to: u, cap: 0})
}

// bfs builds the level graph; reports whether t is reachable.
func (d *dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	queue := make([]int, 0, d.n)
	queue = append(queue, s)
	d.level[s] = 0
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, ei := range d.head[v] {
			e := d.edges[ei]
			if e.cap > 0 && d.level[e.to] < 0 {
				d.level[e.to] = d.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return d.level[t] >= 0
}

// dfs sends blocking flow along the level graph.
func (d *dinic) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; d.iter[v] < int32(len(d.head[v])); d.iter[v]++ {
		ei := d.head[v][d.iter[v]]
		e := &d.edges[ei]
		if e.cap <= 0 || d.level[e.to] != d.level[v]+1 {
			continue
		}
		send := f
		if e.cap < send {
			send = e.cap
		}
		if got := d.dfs(e.to, t, send); got > 0 {
			e.cap -= got
			d.edges[ei^1].cap += got
			return got
		}
	}
	return 0
}

// maxflow computes the s–t max flow (= min cut).
func (d *dinic) maxflow(s, t int) int64 {
	var flow int64
	for d.bfs(s, t) {
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(s, t, infCap)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// reachable marks the source side of the final residual graph.
func (d *dinic) reachable(s int) []bool {
	seen := make([]bool, d.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range d.head[v] {
			e := d.edges[ei]
			if e.cap > 0 && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

// halfLP solves the VC LP on the instance described by (vertices, weight,
// forEachEdge) and returns the integral sides of the canonical optimal
// half-integral solution plus the min-cut value (twice the LP optimum).
// one holds the x = 1 vertices, zero the x = 0 vertices; everything else is
// x = ½.
func halfLP(capacity int, vertices []int, weight func(int) int64,
	forEachEdge func(yield func(u, v int))) (one, zero *bitset.Set, cut int64) {
	idx := make(map[int]int, len(vertices))
	for i, v := range vertices {
		idx[v] = i
	}
	// Node layout: 0 = source, 1 = sink, 2+2i = L_i, 3+2i = R_i.
	d := newDinic(2 + 2*len(vertices))
	left := func(i int) int { return 2 + 2*i }
	right := func(i int) int { return 3 + 2*i }
	for i, v := range vertices {
		d.addEdge(0, left(i), weight(v))
		d.addEdge(right(i), 1, weight(v))
	}
	forEachEdge(func(u, v int) {
		ui, vi := idx[u], idx[v]
		d.addEdge(left(ui), right(vi), infCap)
		d.addEdge(left(vi), right(ui), infCap)
	})
	cut = d.maxflow(0, 1)
	reach := d.reachable(0)

	// König: the canonical minimum-weight bipartite cover takes unreachable
	// left copies and reachable right copies; its weight equals the cut.
	one, zero = bitset.New(capacity), bitset.New(capacity)
	for i, v := range vertices {
		inL := !reach[left(i)]
		inR := reach[right(i)]
		switch {
		case inL && inR:
			one.Add(v)
		case !inL && !inR:
			zero.Add(v)
		}
	}
	return one, zero, cut
}

// ntDecompose runs the LP on the live working instance and returns the
// x = 1 and x = 0 vertex sets (input-graph ids) plus the min-cut value
// (twice the LP optimum of the current instance).
func ntDecompose(k *vcKernel) (one, zero *bitset.Set, cut int64) {
	vertices := k.alive.Elements()
	return halfLP(k.n, vertices, func(v int) int64 { return k.weight[v] },
		func(yield func(u, v int)) {
			for _, v := range vertices {
				k.adj[v].ForEach(func(u int) bool {
					if u > v {
						yield(v, u)
					}
					return true
				})
			}
		})
}

// lpLowerBound returns ⌈LP⌉ for the surviving kernel — a proven lower bound
// on any (weighted) vertex cover of it, read off the final NT pass's cut.
func (k *vcKernel) lpLowerBound() int64 { return (k.lpCut + 1) / 2 }

// localRatioVC is the Bar-Yehuda–Even local-ratio 2-approximation for
// weighted vertex cover: sweep the edges once, pay min(residual(u),
// residual(v)) on each, and take every vertex whose residual hits zero.
// Polynomial, deterministic, and the fallback when even the kernel exceeds
// the branch-and-bound budget.
func localRatioVC(g *graph.Graph) *bitset.Set {
	n := g.N()
	res := make([]int64, n)
	for v := 0; v < n; v++ {
		res[v] = g.Weight(v)
	}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if res[u] > 0 && res[v] > 0 {
			d := res[u]
			if res[v] < d {
				d = res[v]
			}
			res[u] -= d
			res[v] -= d
		}
	}
	cover := bitset.New(n)
	for v := 0; v < n; v++ {
		if res[v] == 0 && g.Degree(v) > 0 {
			cover.Add(v)
		}
	}
	return cover
}

// greedyVC is the classical max-degree-per-weight greedy cover. No worst-case
// guarantee (unlike localRatioVC's factor 2), but usually much closer to the
// optimum in practice, which makes it the better branch-and-bound incumbent.
func greedyVC(g *graph.Graph) *bitset.Set {
	n := g.N()
	deg := make([]int, n)
	uncovered := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		uncovered += deg[v]
	}
	uncovered /= 2
	inCover := bitset.New(n)
	for uncovered > 0 {
		best, bestScore := -1, -1.0
		for v := 0; v < n; v++ {
			if deg[v] == 0 || inCover.Contains(v) {
				continue
			}
			score := math.Inf(1)
			if w := g.Weight(v); w > 0 {
				score = float64(deg[v]) / float64(w)
			}
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		inCover.Add(best)
		uncovered -= deg[best]
		for _, u := range g.Adj(best) {
			if !inCover.Contains(u) {
				deg[u]--
			}
		}
		deg[best] = 0
	}
	return inCover
}

// bestIncumbent returns the cheaper of the greedy and local-ratio covers —
// the seed handed to the post-kernel branch and bound.
func bestIncumbent(g *graph.Graph) *bitset.Set {
	gr := greedyVC(g)
	lr := localRatioVC(g)
	if g.SetWeightOf(lr) < g.SetWeightOf(gr) {
		return lr
	}
	return gr
}
