package kernel

import (
	"math/rand"
	"slices"
	"testing"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
	"powergraph/internal/verify"
)

func sameSet(a, b *bitset.Set) bool {
	return slices.Equal(a.Elements(), b.Elements())
}

// TestIncrementalMatchesColdSolve: on sparse multi-component graphs
// (weighted and not), the cached solver must return exactly what a cold
// instance returns, with exact cost and feasibility for both problems.
func TestIncrementalMatchesColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		g := graph.GNP(60, 0.04, rng) // sparse: several components w.h.p.
		if trial%2 == 1 {
			g = graph.WithRandomWeights(g, 30, rng)
		}
		inc := NewIncremental()

		vc := inc.VertexCover(g)
		if ok, w := verify.IsVertexCover(g, vc); !ok {
			t.Fatalf("trial %d: uncovered edge %v", trial, w)
		}
		if got, want := g.SetWeightOf(vc), g.SetWeightOf(VertexCover(g)); got != want {
			t.Fatalf("trial %d: VC cost %d, exact optimum %d", trial, got, want)
		}
		if !sameSet(vc, NewIncremental().VertexCover(g)) {
			t.Fatalf("trial %d: VC diverges from a cold instance", trial)
		}

		ds := inc.DominatingSet(g)
		if ok, w := verify.IsDominatingSet(g, ds); !ok {
			t.Fatalf("trial %d: undominated vertex %d", trial, w)
		}
		if got, want := g.SetWeightOf(ds), g.SetWeightOf(DominatingSet(g)); got != want {
			t.Fatalf("trial %d: DS cost %d, exact optimum %d", trial, got, want)
		}
		if !sameSet(ds, NewIncremental().DominatingSet(g)) {
			t.Fatalf("trial %d: DS diverges from a cold instance", trial)
		}
	}
}

// TestIncrementalChurnReusesComponents drives an overlay through random
// edge churn and checks, at every step, that the warm cache's answer is
// byte-identical to a cold solve of the current graph — and that the warm
// instance really is skipping solves for untouched components.
func TestIncrementalChurnReusesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := graph.WithRandomWeights(graph.GNP(50, 0.05, rng), 20, rng)
	ov := graph.NewOverlay(base)
	inc := NewIncremental()
	var coldSolves int64

	for step := 0; step < 15; step++ {
		var edits []graph.EdgeEdit
		for len(edits) < 1+rng.Intn(3) {
			u, v := rng.Intn(50), rng.Intn(50)
			if u == v {
				continue
			}
			cur := ov.HasEdge(u, v)
			edits = append(edits, graph.EdgeEdit{U: u, V: v, Del: cur})
		}
		if err := ov.Apply(edits); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		g := ov.Materialize()

		cold := NewIncremental()
		want := cold.VertexCover(g)
		coldSolves += cold.Solves()
		got := inc.VertexCover(g)
		if !sameSet(got, want) {
			t.Fatalf("step %d: warm cache diverged from cold solve", step)
		}
		if ok, w := verify.IsVertexCover(g, got); !ok {
			t.Fatalf("step %d: uncovered edge %v", step, w)
		}
	}
	if inc.Solves() >= coldSolves {
		t.Fatalf("cache ineffective: %d warm solves vs %d cold", inc.Solves(), coldSolves)
	}
}

// TestIncrementalSharesIdenticalComponents: components with equal canonical
// content resolve through a single solver invocation.
func TestIncrementalSharesIdenticalComponents(t *testing.T) {
	b := graph.NewBuilder(8) // two disjoint copies of P4
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}} {
		b.MustAddEdge(e[0], e[1])
	}
	g := b.Build()
	inc := NewIncremental()
	vc := inc.VertexCover(g)
	if inc.Solves() != 1 {
		t.Fatalf("two identical components took %d solves, want 1", inc.Solves())
	}
	if ok, w := verify.IsVertexCover(g, vc); !ok {
		t.Fatalf("uncovered edge %v", w)
	}
}
