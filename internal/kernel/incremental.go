package kernel

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"powergraph/internal/bitset"
	"powergraph/internal/graph"
)

// Incremental memoizes exact solves per connected component, so that a
// churning resident graph (the serving layer's workload) only pays the
// exponential solver for components whose content actually changed. A churn
// batch touches the components containing its endpoints; every other
// component keeps its content key and resolves from cache.
//
// Correctness rests on two facts. First, minimum vertex cover and minimum
// dominating set both decompose exactly across connected components: the
// union of per-component optima is an optimum of the whole graph. Second,
// the solvers are deterministic pure functions of the component's content
// (adjacency and weights, in the canonical vertex order InducedSubgraph
// produces), so replaying a cached local solution is byte-for-byte the
// solution a fresh solve of that component would return — which makes the
// cached path indistinguishable from a cold one (TestIncrementalChurn).
//
// An Incremental is safe for concurrent use; concurrent solves of the same
// component content block on one solver invocation, like the harness's
// oracle cache.
type Incremental struct {
	mu sync.Mutex
	m  map[incKey]*incEntry
	// solves counts solver-closure invocations — one per distinct component
	// content, however many graphs or churn steps share it.
	solves atomic.Int64
}

// incKey identifies a component's content for one problem: the canonical
// encoding of its adjacency and weights plus the problem tag.
type incKey struct {
	problem string
	content string
}

// incEntry resolves through a per-key sync.Once, holding the chosen local
// vertex ids (in the component's canonical order) and the local cost.
type incEntry struct {
	once  sync.Once
	local []int32
}

// maxIncrementalEntries bounds the component cache: a long-lived serving
// instance under churn sees an unbounded stream of distinct component
// contents, and the keys embed full adjacency encodings. At the cap the
// cache resets wholesale — the entries are pure memoization, so dropping
// them costs recomputation, never correctness.
const maxIncrementalEntries = 1 << 16

// NewIncremental returns an empty component cache.
func NewIncremental() *Incremental {
	return &Incremental{m: make(map[incKey]*incEntry)}
}

// Solves reports how many component solves actually ran (cache misses).
func (inc *Incremental) Solves() int64 { return inc.solves.Load() }

// VertexCover returns an exact minimum-weight vertex cover of g, solving
// each connected component through the unlimited-budget kernelize-then-solve
// pipeline and memoizing per component content.
func (inc *Incremental) VertexCover(g *graph.Graph) *bitset.Set {
	return inc.solve(g, "vc", VertexCover)
}

// DominatingSet returns an exact minimum-weight dominating set of g, with
// the same per-component memoization.
func (inc *Incremental) DominatingSet(g *graph.Graph) *bitset.Set {
	return inc.solve(g, "ds", DominatingSet)
}

func (inc *Incremental) solve(g *graph.Graph, problem string, solver func(*graph.Graph) *bitset.Set) *bitset.Set {
	out := bitset.New(g.N())
	for _, comp := range g.Components() {
		sub, orig := g.InducedSubgraph(comp)
		e := inc.entry(incKey{problem: problem, content: componentContent(sub)})
		e.once.Do(func() {
			inc.solves.Add(1)
			sol := solver(sub)
			locals := make([]int32, 0, sol.Count())
			sol.ForEach(func(v int) bool {
				locals = append(locals, int32(v))
				return true
			})
			e.local = locals
		})
		for _, v := range e.local {
			out.Add(orig[v])
		}
	}
	return out
}

func (inc *Incremental) entry(key incKey) *incEntry {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	e := inc.m[key]
	if e == nil {
		if len(inc.m) >= maxIncrementalEntries {
			// Entries already handed out keep resolving through their own
			// pointers; only future lookups re-solve.
			inc.m = make(map[incKey]*incEntry)
		}
		e = &incEntry{}
		inc.m[key] = e
	}
	return e
}

// componentContent canonically encodes everything the solvers can observe
// about a component: vertex count, per-vertex weights (when weighted), and
// the CSR adjacency in local ids. Names are deliberately excluded — no
// solver reads them. Two components with equal content strings are
// isomorphic under the identity mapping of their canonical local ids, so
// they share one cached solution.
func componentContent(sub *graph.Graph) string {
	n := sub.N()
	buf := make([]byte, 0, 16+8*n+5*len(sub.Indices()))
	buf = binary.AppendVarint(buf, int64(n))
	if sub.Weighted() {
		buf = append(buf, 1)
		for v := 0; v < n; v++ {
			buf = binary.AppendVarint(buf, sub.Weight(v))
		}
	} else {
		buf = append(buf, 0)
	}
	for _, p := range sub.IndPtr() {
		buf = binary.AppendVarint(buf, int64(p))
	}
	for _, ix := range sub.Indices() {
		buf = binary.AppendVarint(buf, int64(ix))
	}
	return string(buf)
}
