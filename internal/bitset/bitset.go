// Package bitset provides a fixed-capacity bitset backed by 64-bit words.
//
// It is the storage substrate for adjacency rows in internal/graph and for
// the branch-and-bound solvers in internal/exact, where dense bit-parallel
// set operations (intersection, difference, popcount) dominate the running
// time. All operations treat the set as a subset of {0, …, n-1} where n is
// the capacity fixed at construction.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset over the universe {0, …, n-1}.
//
// The zero value is an empty set of capacity zero; use New to create a set
// with a usable capacity. Methods that combine two sets (Or, And, …) require
// both operands to have the same capacity and panic otherwise, because a
// capacity mismatch is always a programming error in this codebase.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity n.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set of capacity n containing exactly the given
// elements.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Full returns a set of capacity n containing all of {0, …, n-1}.
func Full(n int) *Set {
	s := New(n)
	for w := range s.words {
		s.words[w] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears any bits beyond capacity in the last word.
func (s *Set) trim() {
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(r)) - 1
	}
}

// Cap returns the capacity (universe size) of the set.
func (s *Set) Cap() int { return s.n }

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. Capacities must match.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts element i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes element i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Or sets s = s ∪ o.
func (s *Set) Or(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// And sets s = s ∩ o.
func (s *Set) And(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndNot sets s = s \ o.
func (s *Set) AndNot(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Xor sets s = s △ o (symmetric difference).
func (s *Set) Xor(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] ^= w
	}
}

// Complement sets s = {0,…,n-1} \ s.
func (s *Set) Complement() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
}

// Union returns a new set s ∪ o.
func (s *Set) Union(o *Set) *Set {
	c := s.Clone()
	c.Or(o)
	return c
}

// Intersect returns a new set s ∩ o.
func (s *Set) Intersect(o *Set) *Set {
	c := s.Clone()
	c.And(o)
	return c
}

// Difference returns a new set s \ o.
func (s *Set) Difference(o *Set) *Set {
	c := s.Clone()
	c.AndNot(o)
	return c
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s *Set) IntersectionCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// Intersects reports whether s ∩ o is nonempty.
func (s *Set) Intersects(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether s ⊆ o.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// First returns the smallest element of the set, or -1 if empty.
func (s *Set) First() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the smallest element strictly greater than i, or -1.
func (s *Set) NextAfter(i int) int {
	if i < -1 {
		i = -1
	}
	j := i + 1
	if j >= s.n {
		return -1
	}
	w := j / wordBits
	cur := s.words[w] >> uint(j%wordBits)
	if cur != 0 {
		return j + bits.TrailingZeros64(cur)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// ForEach calls fn on each element in increasing order. If fn returns false,
// iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns the elements of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{a b c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
		return true
	})
	b.WriteByte('}')
	return b.String()
}
